// Seeded random mini-C program generator for the differential fuzz
// harness (tests/test_fuzz.cpp). Programs are small by construction:
// bounded loops only (for and do-while), nested ifs, switches (with
// occasional fallthrough), comparison and &&/|| guards, shift and
// division operators with safe constant right-hand sides, and inputs
// declared as `__input(lo, hi)` globals with tiny domains — so the
// reference interpreter can brute-force every input, the explicit-state
// explorer can reach its fixpoint, and the BMC pipeline stays conclusive.
#pragma once

#include <cstdint>
#include <string>

namespace tmg::fuzz {

struct FuzzConfig {
  /// Input globals (each with a 2..4-value declared range).
  int max_inputs = 3;
  /// Locals, always initialised at declaration (write-before-read, so the
  /// free-initial-value encoding cannot diverge from C semantics).
  int max_locals = 3;
  /// Maximum if/switch-nesting depth.
  int max_depth = 3;
  /// Statements per block arm.
  int max_stmts = 4;
  /// Structural path budget; generation retries (deterministically) until
  /// the estimate fits, so enumeration is always complete downstream.
  std::uint64_t max_paths = 200;
  /// Cap on the input-domain cross product (brute-force budget).
  std::uint64_t max_input_product = 64;
  /// Permit `__loopbound` loops — bounded `for` and `do-while` (never
  /// nested inside another loop).
  bool allow_loops = true;
};

/// One generated program plus the shape facts the oracle needs. The
/// feature flags double as the generator's reach matrix (see TESTING.md):
/// a regression that stops a construct from being emitted shows up as a
/// zero count over a seed range.
struct GeneratedProgram {
  std::string source;
  /// Function and input bookkeeping for the oracle.
  int num_inputs = 0;
  bool has_loop = false;
  /// A decision inside a loop body revisits its decision block with
  /// varying outcomes. The per-iteration decision-schedule encoding in
  /// BmcQuery resolves those paths exactly, so the oracle demands
  /// equality for these programs too (it used to downgrade to bounds).
  bool has_branch_in_loop = false;
  // ------------------------------------------------ feature reach matrix
  bool has_switch = false;
  bool has_fallthrough = false;
  bool has_do_while = false;
  bool has_div = false;    // `/` or `%` (constant nonzero divisor)
  bool has_shift = false;  // `<<` or `>>` (constant 0..3 amount)
  bool has_logical = false;  // `&&` / `||` guard
};

/// Deterministic: the same (seed, cfg) always yields the same program, on
/// every platform (support/rng.h xoshiro).
GeneratedProgram generate_program(std::uint64_t seed,
                                  const FuzzConfig& cfg = {});

}  // namespace tmg::fuzz
