#include "fuzz_gen.h"

#include <sstream>
#include <vector>

#include "support/rng.h"

namespace tmg::fuzz {

namespace {

/// Distinct prime cycle costs so different call mixes price differently.
constexpr int kOpCosts[] = {3, 5, 11};
constexpr int kNumOps = 3;

class Generator {
 public:
  Generator(std::uint64_t seed, const FuzzConfig& cfg)
      : rng_(seed), cfg_(cfg) {}

  /// Builds one program; returns false when the structural-path estimate
  /// blew the budget (caller retries with a derived seed).
  bool build(GeneratedProgram& out) {
    paths_ = 1;
    body_.str("");
    locals_.clear();
    inputs_.clear();
    counters_.clear();
    counter_decls_.clear();
    loop_counter_ = 0;
    dowhile_counter_ = 0;
    out = GeneratedProgram{};
    features_ = &out;

    // Inputs: tiny declared domains; the product caps the brute force.
    const int num_inputs = 1 + static_cast<int>(rng_.below(
                                   static_cast<std::uint64_t>(cfg_.max_inputs)));
    std::uint64_t product = 1;
    std::ostringstream header;
    for (int i = 0; i < num_inputs; ++i) {
      const std::int64_t lo = rng_.range(-2, 1);
      const std::int64_t width = rng_.range(1, 3);  // 2..4 values
      if (product * static_cast<std::uint64_t>(width + 1) >
          cfg_.max_input_product)
        break;
      product *= static_cast<std::uint64_t>(width + 1);
      header << "__input(" << lo << ", " << (lo + width) << ") int in" << i
             << ";\n";
      inputs_.push_back("in" + std::to_string(i));
    }
    for (int i = 0; i < kNumOps; ++i)
      header << "extern void op" << i << "(void) __cost(" << kOpCosts[i]
             << ");\n";

    const int num_locals =
        1 + static_cast<int>(
                rng_.below(static_cast<std::uint64_t>(cfg_.max_locals)));
    std::ostringstream decls;
    for (int i = 0; i < num_locals; ++i) {
      decls << "  int x" << i << " = " << rng_.range(-2, 3) << ";\n";
      locals_.push_back("x" + std::to_string(i));
    }

    const int top_stmts = 2 + static_cast<int>(rng_.below(
                                  static_cast<std::uint64_t>(cfg_.max_stmts)));
    for (int i = 0; i < top_stmts; ++i) statement(1, /*in_loop=*/false);
    if (paths_ > cfg_.max_paths) return false;

    std::ostringstream src;
    src << header.str() << "\nvoid fz(void)\n{\n" << decls.str();
    // Do-while iteration counters: plain top-of-function locals, outside
    // the assignable pool so every do-while runs its full bound.
    for (const std::string& d : counter_decls_) src << d;
    src << body_.str() << "}\n";
    out.source = src.str();
    out.num_inputs = static_cast<int>(inputs_.size());
    features_ = nullptr;
    return true;
  }

 private:
  void indent(int depth) {
    for (int i = 0; i < depth; ++i) body_ << "  ";
  }

  /// Any readable variable (inputs, locals, enclosing loop counters).
  std::string read_var(bool in_loop) {
    std::vector<const std::string*> pool;
    for (const std::string& v : inputs_) pool.push_back(&v);
    for (const std::string& v : locals_) pool.push_back(&v);
    if (in_loop)
      for (const std::string& c : counters_) pool.push_back(&c);
    return *pool[rng_.below(pool.size())];
  }

  std::string expr(int depth, bool in_loop) {
    if (depth >= 2 || rng_.chance(0.45)) {
      if (rng_.chance(0.3)) return std::to_string(rng_.range(-4, 7));
      return read_var(in_loop);
    }
    const double roll = rng_.unit();
    if (roll < 0.12) {
      // Shift by a constant amount in [0, 3]: semantically total in
      // mini-C, and the constant keeps generated programs clear of the
      // C-level UB the harness is not trying to test.
      features_->has_shift = true;
      static const char* kShifts[] = {"<<", ">>"};
      return "(" + expr(depth + 1, in_loop) + " " + kShifts[rng_.below(2)] +
             " " + std::to_string(rng_.range(0, 3)) + ")";
    }
    if (roll < 0.24) {
      // Division/remainder by a nonzero constant (div-by-zero is defined
      // in mini-C but guarded out here — C ground truth has no answer).
      features_->has_div = true;
      static const std::int64_t kDivisors[] = {1, 2, 3, 5, 7};
      return "(" + expr(depth + 1, in_loop) + " " +
             (rng_.chance(0.5) ? "/" : "%") + " " +
             std::to_string(kDivisors[rng_.below(5)]) + ")";
    }
    static const char* kOps[] = {"+", "-", "*", "&", "|", "^"};
    const char* op = kOps[rng_.below(6)];
    return "(" + expr(depth + 1, in_loop) + " " + op + " " +
           expr(depth + 1, in_loop) + ")";
  }

  std::string compare(bool in_loop) {
    static const char* kCmps[] = {"==", "!=", "<", "<=", ">", ">="};
    return expr(1, in_loop) + " " + kCmps[rng_.below(6)] + " " +
           expr(1, in_loop);
  }

  std::string guard(bool in_loop) {
    if (rng_.chance(0.25)) {
      features_->has_logical = true;
      return "(" + compare(in_loop) + ")" +
             (rng_.chance(0.5) ? " && " : " || ") + "(" + compare(in_loop) +
             ")";
    }
    return compare(in_loop);
  }

  void assignment(int depth, bool in_loop) {
    // Inputs are assignable too (b4's `state` machine idiom), just rarely.
    const std::string target =
        (!inputs_.empty() && rng_.chance(0.2))
            ? inputs_[rng_.below(inputs_.size())]
            : locals_[rng_.below(locals_.size())];
    indent(depth);
    if (rng_.chance(0.3))
      body_ << target << " += " << expr(0, in_loop) << ";\n";
    else
      body_ << target << " = " << expr(0, in_loop) << ";\n";
  }

  void call(int depth) {
    indent(depth);
    body_ << "op" << rng_.below(kNumOps) << "();\n";
  }

  void block(int depth, bool in_loop, std::uint64_t& block_paths) {
    const std::uint64_t before = paths_;
    paths_ = 1;
    const int n = 1 + static_cast<int>(rng_.below(2));
    for (int i = 0; i < n; ++i) statement(depth, in_loop);
    block_paths = paths_;
    paths_ = before;
  }

  void if_statement(int depth, bool in_loop) {
    if (in_loop) features_->has_branch_in_loop = true;
    indent(depth);
    body_ << "if (" << guard(in_loop) << ") {\n";
    std::uint64_t then_paths = 1;
    block(depth + 1, in_loop, then_paths);
    std::uint64_t else_paths = 1;
    if (rng_.chance(0.5)) {
      indent(depth);
      body_ << "} else {\n";
      block(depth + 1, in_loop, else_paths);
    }
    indent(depth);
    body_ << "}\n";
    paths_ = saturating_mul(paths_, saturating_add(then_paths, else_paths));
  }

  void switch_statement(int depth, bool in_loop) {
    features_->has_switch = true;
    if (in_loop) features_->has_branch_in_loop = true;
    indent(depth);
    body_ << "switch (" << read_var(in_loop) << ") {\n";
    const int cases = 2 + static_cast<int>(rng_.below(2));  // 2..3 + default
    std::int64_t label = rng_.range(-2, 0);
    std::vector<std::uint64_t> arm_paths;
    std::vector<bool> breaks;
    for (int c = 0; c <= cases; ++c) {
      const bool is_default = c == cases;
      indent(depth + 1);
      if (is_default)
        body_ << "default: {\n";
      else
        body_ << "case " << label << ": {\n";
      label += 1 + rng_.range(0, 1);  // strictly increasing: distinct labels
      std::uint64_t ap = 1;
      block(depth + 2, in_loop, ap);
      arm_paths.push_back(ap);
      // Occasional fallthrough into the next arm (never off the end).
      const bool brk = is_default || !rng_.chance(0.2);
      breaks.push_back(brk);
      if (brk) {
        indent(depth + 2);
        body_ << "break;\n";
      } else {
        features_->has_fallthrough = true;
      }
      indent(depth + 1);
      body_ << "}\n";
    }
    indent(depth);
    body_ << "}\n";
    // Exact structural count: entering at arm k runs the fallthrough
    // chain k..j (j = first arm with break), multiplying the arms' own
    // decision fan-outs along the chain.
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < arm_paths.size(); ++k) {
      std::uint64_t chain = 1;
      for (std::size_t j = k; j < arm_paths.size(); ++j) {
        chain = saturating_mul(chain, arm_paths[j]);
        if (breaks[j]) break;
      }
      total = saturating_add(total, chain);
    }
    paths_ = saturating_mul(paths_, total);
  }

  void for_statement(int depth) {
    features_->has_loop = true;
    const int bound = 1 + static_cast<int>(rng_.below(3));  // 1..3
    const std::string iv = "i" + std::to_string(loop_counter_++);
    indent(depth);
    body_ << "__loopbound(" << bound << ") for (int " << iv << " = 0; " << iv
          << " < " << bound << "; " << iv << " += 1) {\n";
    counters_.push_back(iv);
    std::uint64_t body_paths = 1;
    block(depth + 1, /*in_loop=*/true, body_paths);
    counters_.pop_back();
    indent(depth);
    body_ << "}\n";
    --loop_counter_;
    // Structural estimate: 0..bound iterations, each multiplying in the
    // body's decision fan-out.
    paths_ = saturating_mul(paths_, loop_paths(body_paths, bound,
                                               /*include_zero=*/true));
  }

  void do_while_statement(int depth) {
    features_->has_loop = true;
    features_->has_do_while = true;
    const int bound = 1 + static_cast<int>(rng_.below(3));  // 1..3
    const std::string dv = "d" + std::to_string(dowhile_counter_++);
    counter_decls_.push_back("  int " + dv + " = 0;\n");
    indent(depth);
    body_ << "__loopbound(" << bound << ") do {\n";
    counters_.push_back(dv);
    std::uint64_t body_paths = 1;
    block(depth + 1, /*in_loop=*/true, body_paths);
    counters_.pop_back();
    indent(depth + 1);
    body_ << dv << " += 1;\n";
    indent(depth);
    body_ << "} while (" << dv << " < " << bound << ");\n";
    // A do-while body runs 1..bound times.
    paths_ = saturating_mul(paths_, loop_paths(body_paths, bound,
                                               /*include_zero=*/false));
  }

  /// sum of body^k over the iteration counts a bounded loop can take.
  std::uint64_t loop_paths(std::uint64_t body_paths, int bound,
                           bool include_zero) {
    std::uint64_t total = include_zero ? 1 : 0;
    std::uint64_t pow = 1;
    for (int k = 1; k <= bound; ++k) {
      pow = saturating_mul(pow, body_paths);
      total = saturating_add(total, pow);
      if (total > cfg_.max_paths) break;
    }
    return total;
  }

  static std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
    if (a != 0 && b > UINT64_MAX / a) return UINT64_MAX;
    return a * b;
  }
  static std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
    return a > UINT64_MAX - b ? UINT64_MAX : a + b;
  }

  void statement(int depth, bool in_loop) {
    const double roll = rng_.unit();
    if (depth < cfg_.max_depth && roll < 0.22) {
      if_statement(depth, in_loop);
    } else if (depth < cfg_.max_depth && roll < 0.30) {
      switch_statement(depth, in_loop);
    } else if (cfg_.allow_loops && !in_loop && depth < 2 && roll < 0.42) {
      for_statement(depth);
    } else if (cfg_.allow_loops && !in_loop && depth < 2 && roll < 0.50) {
      do_while_statement(depth);
    } else if (roll < 0.64) {
      call(depth);
    } else {
      assignment(depth, in_loop);
    }
  }

  Rng rng_;
  const FuzzConfig& cfg_;
  std::ostringstream body_;
  std::vector<std::string> inputs_;
  std::vector<std::string> locals_;
  /// Counters of the enclosing loops, readable inside their bodies.
  std::vector<std::string> counters_;
  /// Top-of-function declarations for do-while counters.
  std::vector<std::string> counter_decls_;
  int loop_counter_ = 0;
  int dowhile_counter_ = 0;
  std::uint64_t paths_ = 1;
  GeneratedProgram* features_ = nullptr;
};

}  // namespace

GeneratedProgram generate_program(std::uint64_t seed, const FuzzConfig& cfg) {
  GeneratedProgram out;
  // Deterministic retry: over-budget drafts are discarded and the seed is
  // re-derived, so every (seed, cfg) still maps to exactly one program.
  for (std::uint64_t attempt = 0;; ++attempt) {
    Generator gen(seed + attempt * 0x9e3779b97f4a7c15ULL, cfg);
    if (gen.build(out)) return out;
  }
}

}  // namespace tmg::fuzz
