#include "fuzz_gen.h"

#include <sstream>
#include <vector>

#include "support/rng.h"

namespace tmg::fuzz {

namespace {

/// Distinct prime cycle costs so different call mixes price differently.
constexpr int kOpCosts[] = {3, 5, 11};
constexpr int kNumOps = 3;

class Generator {
 public:
  Generator(std::uint64_t seed, const FuzzConfig& cfg)
      : rng_(seed), cfg_(cfg) {}

  /// Builds one program; returns false when the structural-path estimate
  /// blew the budget (caller retries with a derived seed).
  bool build(GeneratedProgram& out) {
    paths_ = 1;
    body_.str("");
    locals_.clear();
    inputs_.clear();
    loop_counter_ = 0;
    has_loop_ = false;
    has_branch_in_loop_ = false;

    // Inputs: tiny declared domains; the product caps the brute force.
    const int num_inputs = 1 + static_cast<int>(rng_.below(
                                   static_cast<std::uint64_t>(cfg_.max_inputs)));
    std::uint64_t product = 1;
    std::ostringstream header;
    for (int i = 0; i < num_inputs; ++i) {
      const std::int64_t lo = rng_.range(-2, 1);
      const std::int64_t width = rng_.range(1, 3);  // 2..4 values
      if (product * static_cast<std::uint64_t>(width + 1) >
          cfg_.max_input_product)
        break;
      product *= static_cast<std::uint64_t>(width + 1);
      header << "__input(" << lo << ", " << (lo + width) << ") int in" << i
             << ";\n";
      inputs_.push_back("in" + std::to_string(i));
    }
    for (int i = 0; i < kNumOps; ++i)
      header << "extern void op" << i << "(void) __cost(" << kOpCosts[i]
             << ");\n";

    const int num_locals =
        1 + static_cast<int>(
                rng_.below(static_cast<std::uint64_t>(cfg_.max_locals)));
    std::ostringstream decls;
    for (int i = 0; i < num_locals; ++i) {
      decls << "  int x" << i << " = " << rng_.range(-2, 3) << ";\n";
      locals_.push_back("x" + std::to_string(i));
    }

    const int top_stmts = 2 + static_cast<int>(rng_.below(
                                  static_cast<std::uint64_t>(cfg_.max_stmts)));
    for (int i = 0; i < top_stmts; ++i) statement(1, /*in_loop=*/false);
    if (paths_ > cfg_.max_paths) return false;

    std::ostringstream src;
    src << header.str() << "\nvoid fz(void)\n{\n" << decls.str()
        << body_.str() << "}\n";
    out.source = src.str();
    out.num_inputs = static_cast<int>(inputs_.size());
    out.has_loop = has_loop_;
    out.has_branch_in_loop = has_branch_in_loop_;
    return true;
  }

 private:
  void indent(int depth) {
    for (int i = 0; i < depth; ++i) body_ << "  ";
  }

  /// Any readable variable (inputs, locals, enclosing loop counters).
  std::string read_var(bool in_loop) {
    std::vector<const std::string*> pool;
    for (const std::string& v : inputs_) pool.push_back(&v);
    for (const std::string& v : locals_) pool.push_back(&v);
    std::string loop_var;
    if (in_loop && loop_counter_ > 0) {
      loop_var = "i" + std::to_string(loop_counter_ - 1);
      pool.push_back(&loop_var);
    }
    return *pool[rng_.below(pool.size())];
  }

  std::string expr(int depth, bool in_loop) {
    if (depth >= 2 || rng_.chance(0.45)) {
      if (rng_.chance(0.3)) return std::to_string(rng_.range(-4, 7));
      return read_var(in_loop);
    }
    static const char* kOps[] = {"+", "-", "*", "&", "|", "^"};
    const char* op = kOps[rng_.below(6)];
    return "(" + expr(depth + 1, in_loop) + " " + op + " " +
           expr(depth + 1, in_loop) + ")";
  }

  std::string guard(bool in_loop) {
    static const char* kCmps[] = {"==", "!=", "<", "<=", ">", ">="};
    return expr(1, in_loop) + " " + kCmps[rng_.below(6)] + " " +
           expr(1, in_loop);
  }

  void assignment(int depth, bool in_loop) {
    // Inputs are assignable too (b4's `state` machine idiom), just rarely.
    const std::string target =
        (!inputs_.empty() && rng_.chance(0.2))
            ? inputs_[rng_.below(inputs_.size())]
            : locals_[rng_.below(locals_.size())];
    indent(depth);
    if (rng_.chance(0.3))
      body_ << target << " += " << expr(0, in_loop) << ";\n";
    else
      body_ << target << " = " << expr(0, in_loop) << ";\n";
  }

  void call(int depth) {
    indent(depth);
    body_ << "op" << rng_.below(kNumOps) << "();\n";
  }

  void block(int depth, bool in_loop, std::uint64_t& block_paths) {
    const std::uint64_t before = paths_;
    paths_ = 1;
    const int n = 1 + static_cast<int>(rng_.below(2));
    for (int i = 0; i < n; ++i) statement(depth, in_loop);
    block_paths = paths_;
    paths_ = before;
  }

  void if_statement(int depth, bool in_loop) {
    if (in_loop) has_branch_in_loop_ = true;
    indent(depth);
    body_ << "if (" << guard(in_loop) << ") {\n";
    std::uint64_t then_paths = 1;
    block(depth + 1, in_loop, then_paths);
    std::uint64_t else_paths = 1;
    if (rng_.chance(0.5)) {
      indent(depth);
      body_ << "} else {\n";
      block(depth + 1, in_loop, else_paths);
    }
    indent(depth);
    body_ << "}\n";
    paths_ *= then_paths + else_paths;
  }

  void loop_statement(int depth) {
    has_loop_ = true;
    const int bound = 1 + static_cast<int>(rng_.below(3));  // 1..3
    const std::string iv = "i" + std::to_string(loop_counter_++);
    indent(depth);
    body_ << "__loopbound(" << bound << ") for (int " << iv << " = 0; " << iv
          << " < " << bound << "; " << iv << " += 1) {\n";
    std::uint64_t body_paths = 1;
    block(depth + 1, /*in_loop=*/true, body_paths);
    indent(depth);
    body_ << "}\n";
    --loop_counter_;
    // Structural estimate: 0..bound iterations, each multiplying in the
    // body's decision fan-out.
    std::uint64_t total = 1, pow = 1;
    for (int k = 1; k <= bound; ++k) {
      pow *= body_paths;
      total += pow;
      if (total > cfg_.max_paths) break;
    }
    paths_ *= total;
  }

  void statement(int depth, bool in_loop) {
    const double roll = rng_.unit();
    if (depth < cfg_.max_depth && roll < 0.25) {
      if_statement(depth, in_loop);
    } else if (cfg_.allow_loops && !in_loop && depth < 2 && roll < 0.40) {
      loop_statement(depth);
    } else if (roll < 0.60) {
      call(depth);
    } else {
      assignment(depth, in_loop);
    }
  }

  Rng rng_;
  const FuzzConfig& cfg_;
  std::ostringstream body_;
  std::vector<std::string> inputs_;
  std::vector<std::string> locals_;
  int loop_counter_ = 0;
  std::uint64_t paths_ = 1;
  bool has_loop_ = false;
  bool has_branch_in_loop_ = false;
};

}  // namespace

GeneratedProgram generate_program(std::uint64_t seed, const FuzzConfig& cfg) {
  GeneratedProgram out;
  // Deterministic retry: over-budget drafts are discarded and the seed is
  // re-derived, so every (seed, cfg) still maps to exactly one program.
  for (std::uint64_t attempt = 0;; ++attempt) {
    Generator gen(seed + attempt * 0x9e3779b97f4a7c15ULL, cfg);
    if (gen.build(out)) return out;
  }
}

}  // namespace tmg::fuzz
