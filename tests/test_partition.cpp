#include <gtest/gtest.h>

#include <algorithm>

#include "core/partition.h"
#include "minic/frontend.h"
#include "paper_examples.h"

namespace tmg::core {
namespace {

struct Built {
  std::unique_ptr<minic::Program> program;
  std::unique_ptr<cfg::FunctionCfg> f;
  std::unique_ptr<cfg::PathAnalysis> pa;
};

Built build(const char* src) {
  Built b;
  b.program = minic::compile_or_die(
      src, minic::SemaOptions{.warn_unbounded_loops = false});
  b.f = cfg::build_cfg(*b.program->functions.front());
  b.pa = std::make_unique<cfg::PathAnalysis>(*b.f);
  return b;
}

Partition part(const Built& b, std::uint64_t bound) {
  Partition p = partition_function(*b.f, *b.pa, PartitionOptions{bound});
  EXPECT_EQ(validate_partition(*b.f, p), "");
  return p;
}

// ------------------------------------------------ Table 1 (paper, exact)

struct Table1Row {
  std::uint64_t bound;
  std::uint64_t ip;
  std::uint64_t m;
};

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, MatchesPaperExactly) {
  Built b = build(testing::kFigure1Source);
  const Partition p = part(b, GetParam().bound);
  EXPECT_EQ(p.instrumentation_points(), GetParam().ip);
  ASSERT_FALSE(p.measurements().saturated());
  EXPECT_EQ(p.measurements().exact(), GetParam().m);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1,
    ::testing::Values(Table1Row{1, 22, 11}, Table1Row{2, 16, 9},
                      Table1Row{3, 16, 9}, Table1Row{4, 16, 9},
                      Table1Row{5, 16, 9}, Table1Row{6, 2, 6},
                      Table1Row{7, 2, 6}),
    [](const ::testing::TestParamInfo<Table1Row>& info) {
      return "b" + std::to_string(info.param.bound);
    });

TEST(Table1Detail, BoundOneIsPerBlock) {
  Built b = build(testing::kFigure1Source);
  const Partition p = part(b, 1);
  EXPECT_EQ(p.segments.size(), 11u);
  for (const Segment& s : p.segments) {
    // every segment is a single block (1-path arms may carry Region kind)
    EXPECT_EQ(s.blocks.size(), 1u);
    EXPECT_EQ(s.paths.exact(), 1u);
  }
}

TEST(Table1Detail, BoundTwoMergesInnerIf) {
  Built b = build(testing::kFigure1Source);
  const Partition p = part(b, 2);
  // exactly one 4-block region segment (the outer then branch) and one
  // 1-block region segment (then branch of the second if)
  int four_block_regions = 0;
  for (const Segment& s : p.segments) {
    if (s.kind == SegmentKind::Region && s.blocks.size() == 4) {
      ++four_block_regions;
      EXPECT_EQ(s.paths.exact(), 2u);
    }
  }
  EXPECT_EQ(four_block_regions, 1);
}

TEST(Table1Detail, BoundSixIsEndToEnd) {
  Built b = build(testing::kFigure1Source);
  const Partition p = part(b, 6);
  ASSERT_EQ(p.segments.size(), 1u);
  EXPECT_TRUE(p.segments[0].whole_function);
  EXPECT_EQ(p.segments[0].blocks.size(), 11u);
  EXPECT_EQ(p.segments[0].paths.exact(), 6u);
}

// --------------------------------------------------------------- fusing

TEST(FusedPoints, StraightLineFunctionMergesAtAnyBound) {
  // A straight chain has exactly one path, so even b = 1 measures it
  // end-to-end: 2 points, 2 fused sites.
  Built b = build(
      "extern void leaf(void) __cost(1);"
      "void f(void) { leaf(); leaf(); leaf(); }");
  const Partition p = part(b, 1);
  EXPECT_EQ(p.instrumentation_points(), 2u);
  EXPECT_EQ(fused_instrumentation_points(*b.f, p), 2u);
}

TEST(FusedPoints, PerBlockFusingOnFigure1) {
  // At b = 1 every block is bracketed (ip = 22); fusing merges coincident
  // markers onto edges: 13 CFG edges + function entry + function exit.
  Built b = build(testing::kFigure1Source);
  const Partition p = part(b, 1);
  std::size_t edge_count = 0;
  for (const auto& blk : b.f->graph.blocks()) edge_count += blk.succs.size();
  EXPECT_EQ(edge_count, 13u);
  EXPECT_EQ(fused_instrumentation_points(*b.f, p), 15u);
}

TEST(FusedPoints, NeverExceedsIp) {
  Built b = build(testing::kFigure1Source);
  for (std::uint64_t bound = 1; bound <= 8; ++bound) {
    const Partition p = part(b, bound);
    EXPECT_LE(fused_instrumentation_points(*b.f, p),
              p.instrumentation_points());
  }
}

TEST(FusedPoints, EndToEndIsTwo) {
  Built b = build(testing::kFigure1Source);
  const Partition p = part(b, 6);
  EXPECT_EQ(fused_instrumentation_points(*b.f, p), 2u);
}

// ------------------------------------------------------------ properties

const char* kNestedSource = R"(
void nested(int a, int b2, int c, int d)
{
  if (a) { if (b2) { a = 1; } else { a = 2; } } else { a = 3; }
  switch (c) {
    case 0: if (d) { c = 1; } break;
    case 1: c = 2; break;
    case 2: if (d) { c = 3; } else { c = 4; } break;
    default: c = 0; break;
  }
  if (d) { d = 0; }
}
)";

TEST(Properties, IpMonotoneNonIncreasingInBound) {
  Built b = build(kNestedSource);
  std::uint64_t prev = UINT64_MAX;
  for (std::uint64_t bound = 1; bound <= 64; ++bound) {
    const Partition p = part(b, bound);
    EXPECT_LE(p.instrumentation_points(), prev) << "bound " << bound;
    prev = p.instrumentation_points();
  }
}

TEST(Properties, LargeBoundAlwaysEndToEnd) {
  Built b = build(kNestedSource);
  const Partition p = part(b, 1u << 30);
  ASSERT_EQ(p.segments.size(), 1u);
  EXPECT_TRUE(p.segments[0].whole_function);
}

TEST(Properties, MeasurementsAtLeastSegmentCount) {
  Built b = build(kNestedSource);
  for (std::uint64_t bound : {1, 2, 3, 5, 8, 13, 21}) {
    const Partition p = part(b, bound);
    ASSERT_FALSE(p.measurements().saturated());
    EXPECT_GE(p.measurements().exact(), p.segments.size());
  }
}

TEST(Properties, SegmentPathsNeverExceedBound) {
  Built b = build(kNestedSource);
  for (std::uint64_t bound : {1, 2, 4, 8}) {
    const Partition p = part(b, bound);
    for (const Segment& s : p.segments)
      EXPECT_TRUE(s.paths.le(bound))
          << "segment " << s.id << " at bound " << bound;
  }
}

// -------------------------------------------------------------- loops

TEST(Loops, UnboundedLoopIsAlwaysDecomposed) {
  Built b = build("void f(int a) { while (a) { a -= 1; } }");
  const Partition p = part(b, 1u << 20);
  // The loop as a whole (decision + body) must never merge; the body arm
  // alone (one per-iteration path) may.
  const cfg::Construct& loop = *b.f->body.items[1].construct;
  for (const Segment& s : p.segments) {
    EXPECT_FALSE(s.whole_function);
    const bool has_decision =
        std::find(s.blocks.begin(), s.blocks.end(), loop.decision) !=
        s.blocks.end();
    if (has_decision) EXPECT_EQ(s.blocks.size(), 1u);
  }
}

TEST(Loops, BoundedLoopBodyMerges) {
  Built b = build(
      "void f(int a, int b2) { __loopbound(4) while (a) {"
      " if (b2) { a -= 2; } else { a -= 1; } } }");
  // body has 2 paths; with b = 2 the body arm becomes one segment
  const Partition p = part(b, 2);
  int region_segments = 0;
  for (const Segment& s : p.segments)
    if (s.kind == SegmentKind::Region) {
      ++region_segments;
      EXPECT_EQ(s.paths.exact(), 2u);
    }
  EXPECT_EQ(region_segments, 1);
}

TEST(Loops, WholeLoopMergesWhenCountFits) {
  // paths = sum_{k=0..2} 1 = 3 <= 4, and the function is just the loop:
  // whole-function merge applies.
  Built b = build("void f(int a) { __loopbound(2) while (a) { a -= 1; } }");
  const Partition p = part(b, 4);
  ASSERT_EQ(p.segments.size(), 1u);
  EXPECT_TRUE(p.segments[0].whole_function);
  EXPECT_EQ(p.segments[0].paths.exact(), 3u);
}

// -------------------------------------------------- switch-heavy programs

TEST(SwitchPartition, EachCaseBecomesOneSegment) {
  // The wiper case study shape: "each case block equals one PS".
  Built b = build(R"(
    void step(int state, int in1) {
      switch (state) {
        case 0: if (in1) { state = 1; } break;
        case 1: if (in1) { state = 2; } else { state = 0; } break;
        case 2: state = 0; break;
        default: state = 0; break;
      }
    }
  )");
  // case paths: 2, 2, 1, 1 -> function paths 6; with b = 2 every case arm
  // merges into one segment.
  const Partition p = part(b, 2);
  int case_regions = 0;
  for (const Segment& s : p.segments)
    if (s.kind == SegmentKind::Region) ++case_regions;
  EXPECT_EQ(case_regions, 4);
  // segments: start, decision, 4 cases, end = 7
  EXPECT_EQ(p.segments.size(), 7u);
}

TEST(SwitchPartition, FallthroughArmIsNotMerged) {
  Built b = build(R"(
    void f(int a) {
      switch (a) {
        case 0: a = 1;
        case 1: a = 2; break;
        default: a = 0; break;
      }
    }
  )");
  const Partition p = part(b, 3);
  for (const Segment& s : p.segments) {
    if (s.kind == SegmentKind::Region) {
      // only single-entry arms may merge; the fallthrough target must not
      for (cfg::BlockId bl : s.blocks)
        EXPECT_TRUE(s.region->single_entry) << "block " << bl;
    }
  }
}

}  // namespace
}  // namespace tmg::core
