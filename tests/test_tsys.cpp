#include <gtest/gtest.h>

#include "cfg/structure.h"
#include "mc/explicit.h"
#include "minic/frontend.h"
#include "tsys/translate.h"

namespace tmg::tsys {
namespace {

struct Built {
  std::unique_ptr<minic::Program> program;
  std::unique_ptr<cfg::FunctionCfg> f;
  std::unique_ptr<TranslationResult> tr;
};

Built build(const char* src) {
  Built b;
  b.program = minic::compile_or_die(
      src, minic::SemaOptions{.warn_unbounded_loops = false});
  b.f = cfg::build_cfg(*b.program->functions.front());
  DiagnosticEngine diags;
  b.tr = translate(*b.program, *b.f, diags);
  EXPECT_TRUE(b.tr != nullptr) << diags.str();
  return b;
}

// ----------------------------------------------------------------- TExpr

TEST(TExpr, CloneEquals) {
  TExprPtr e = t_binary(minic::BinOp::Add, t_var(0, minic::Type::Int16),
                        t_const(5), minic::Type::Int16);
  TExprPtr c = e->clone();
  EXPECT_TRUE(e->equals(*c));
  c->args[1]->value = 6;
  EXPECT_FALSE(e->equals(*c));
}

TEST(TExpr, EvalMatchesSemantics) {
  // (x + 1) * 2 with x = 7 -> 16
  TExprPtr e = t_binary(
      minic::BinOp::Mul,
      t_binary(minic::BinOp::Add, t_var(0, minic::Type::Int16), t_const(1),
               minic::Type::Int16),
      t_const(2), minic::Type::Int16);
  EXPECT_EQ(eval_texpr(*e, {7}), 16);
}

TEST(TExpr, EvalWrapsToType) {
  TExprPtr e = t_binary(minic::BinOp::Add, t_var(0, minic::Type::Int16),
                        t_const(1), minic::Type::Int16);
  EXPECT_EQ(eval_texpr(*e, {32767}), -32768);
}

TEST(TExpr, SubstituteReplacesAllUses) {
  // x + x, substitute x -> (y * 2)
  TExprPtr e = t_binary(minic::BinOp::Add, t_var(0, minic::Type::Int16),
                        t_var(0, minic::Type::Int16), minic::Type::Int16);
  TExprPtr repl = t_binary(minic::BinOp::Mul, t_var(1, minic::Type::Int16),
                           t_const(2), minic::Type::Int16);
  EXPECT_EQ(substitute(e, 0, *repl), 2u);
  EXPECT_FALSE(e->references(0));
  EXPECT_TRUE(e->references(1));
  EXPECT_EQ(eval_texpr(*e, {99, 3}), 12);
}

TEST(TExpr, CollectVarsWithMultiplicity) {
  TExprPtr e = t_binary(minic::BinOp::Add, t_var(2, minic::Type::Int16),
                        t_var(2, minic::Type::Int16), minic::Type::Int16);
  std::vector<VarId> vars;
  e->collect_vars(vars);
  EXPECT_EQ(vars.size(), 2u);
}

// ------------------------------------------------------------ VarInfo bits

TEST(VarBits, RangeDrivesWidth) {
  VarInfo v;
  v.lo = 0;
  v.hi = 1;
  EXPECT_EQ(v.bits(), 1);
  v.hi = 2;
  EXPECT_EQ(v.bits(), 2);
  v.hi = 255;
  EXPECT_EQ(v.bits(), 8);
  v.lo = -1;
  v.hi = 0;
  EXPECT_EQ(v.bits(), 1);
  v.lo = -32768;
  v.hi = 32767;
  EXPECT_EQ(v.bits(), 16);
  v.lo = -3;
  v.hi = 3;
  EXPECT_EQ(v.bits(), 3);
}

// ------------------------------------------------------------- translation

TEST(Translate, StatementPerTransition) {
  Built b = build("void f(int a) { a = 1; a = 2; a = 3; }");
  // 3 statement transitions, no decisions
  EXPECT_EQ(b.tr->ts.transitions.size(), 3u);
  for (const Transition& t : b.tr->ts.transitions)
    EXPECT_EQ(t.guard, nullptr);
}

TEST(Translate, BranchMakesTwoGuardedTransitions) {
  Built b = build("void f(int a) { if (a > 0) { a = 1; } }");
  int guarded = 0;
  for (const Transition& t : b.tr->ts.transitions)
    if (t.guard) ++guarded;
  EXPECT_EQ(guarded, 2);
}

TEST(Translate, InputsAreMarked) {
  Built b = build(
      "__input(0, 2) int sel; int state; void f(int a) { state = a + sel; }");
  const TransitionSystem& ts = b.tr->ts;
  int inputs = 0;
  for (const VarInfo& v : ts.vars) {
    if (v.is_input) ++inputs;
    if (v.name == "sel") {
      EXPECT_TRUE(v.is_input);
      EXPECT_EQ(v.lo, 0);
      EXPECT_EQ(v.hi, 2);
      EXPECT_EQ(v.bits(), 2);
    }
    if (v.name == "state") EXPECT_FALSE(v.is_input);
  }
  EXPECT_EQ(inputs, 2);  // param a + sel
}

TEST(Translate, UninitialisedByDefault) {
  // The paper's baseline: non-input variables are NOT initialised.
  Built b = build("int g = 5; void f(int a) { a = g; }");
  for (const VarInfo& v : b.tr->ts.vars) EXPECT_FALSE(v.has_init);
}

TEST(Translate, SixteenBitBooleansByDefault) {
  // "In C, boolean values are mostly encoded as 16 bit integers": an int
  // flag occupies 16 bits before range analysis.
  Built b = build("void f(int a) { int flag; flag = a > 0; a = flag; }");
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.name == "flag") EXPECT_EQ(v.bits(), 16);
}

TEST(Translate, SwitchDefaultGuardExcludesLabels) {
  Built b = build(
      "void f(int a) { switch (a) { case 1: a = 1; break; case 2: a = 2; "
      "break; default: a = 0; break; } }");
  // default transition guard references both labels
  bool found_default = false;
  const auto names = b.tr->ts.var_names();
  for (const Transition& t : b.tr->ts.transitions) {
    if (!t.guard || !t.is_decision()) continue;
    const std::string s = texpr_to_string(*t.guard, names);
    if (s.find("/=") != std::string::npos) {
      found_default = true;
      EXPECT_NE(s.find('1'), std::string::npos);
      EXPECT_NE(s.find('2'), std::string::npos);
    }
  }
  EXPECT_TRUE(found_default);
}

TEST(Translate, EmptyBlocksAddNoLocations) {
  Built b1 = build("void f(int a) { a = 1; }");
  // one statement + start/end aliasing: 2 locations (L0 final + L1)
  EXPECT_LE(b1.tr->ts.num_locs, 3u);
}

TEST(Translate, DeclWithoutInitEmitsNothing) {
  Built b = build("void f(int a) { int x; x = a; }");
  EXPECT_EQ(b.tr->ts.transitions.size(), 1u);
}

TEST(Translate, ReturnWritesRetVar) {
  Built b = build("int f(int a) { return a + 1; }");
  bool found = false;
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.name == "__ret") found = true;
  EXPECT_TRUE(found);
}

TEST(Translate, ValueCallInExpressionRejected) {
  auto program = minic::compile_or_die(
      "extern int probe(void); void f(int a) { a = probe(); }");
  auto f = cfg::build_cfg(*program->functions.front());
  DiagnosticEngine diags;
  auto tr = translate(*program, *f, diags);
  EXPECT_EQ(tr, nullptr);
  EXPECT_NE(diags.str().find("cannot be modelled"), std::string::npos);
}

TEST(Translate, StateBitsAccounting) {
  Built b = build("void f(int a, int b2) { if (a) { b2 = 1; } }");
  // two 16-bit vars + pc
  EXPECT_EQ(b.tr->ts.data_bits(), 32);
  EXPECT_GE(b.tr->ts.state_bits(), 33);
}

TEST(Translate, OutOfDomainStoreWidensEncodingButNotInitDomain) {
  // `__input(lo, hi)` is an initial-value domain, not an invariant: the
  // program may assign past it, and assignments wrap to the TYPE. The
  // encoding must cover such stores (else the bit-level BMC semantics
  // diverge from the interpreter), while test data stays in the domain.
  Built b = build(
      "__input(0, 2) int a;"
      "void f(void) { int x = 0; if (a == 1) { a = a + 100; x = 1; } }");
  const VarInfo* a = nullptr;
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.name == "a") a = &v;
  ASSERT_NE(a, nullptr);
  // Encoding: full type range (the += store is not a constant).
  EXPECT_EQ(a->lo, minic::type_min(minic::Type::Int16));
  EXPECT_EQ(a->hi, minic::type_max(minic::Type::Int16));
  // Initial domain: the annotation.
  EXPECT_EQ(a->init_lo(), 0);
  EXPECT_EQ(a->init_hi(), 2);
}

TEST(Translate, ConstantStoresWidenByExactlyTheConstant) {
  // b4's idiom: a state machine assigning constants within (or near) its
  // domain keeps a narrow encoding.
  Built b = build(
      "__input(0, 3) int state;"
      "void f(void) { if (state == 3) { state = 0; } else { state = 5; } }");
  const VarInfo* s = nullptr;
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.name == "state") s = &v;
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->lo, 0);
  EXPECT_EQ(s->hi, 5);  // domain [0,3] joined with stored constants {0,5}
  EXPECT_EQ(s->init_lo(), 0);
  EXPECT_EQ(s->init_hi(), 3);
}

TEST(Translate, InDomainStateMachineKeepsNarrowEncoding) {
  // The b4 regression proper: all stores inside the domain, 2-bit state.
  Built b = build(
      "__input(0, 3) int state;"
      "void f(int in1) { if (state == 0) { if (in1 > 0) { state = 1; } } "
      "else { state = 0; } }");
  const VarInfo* s = nullptr;
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.name == "state") s = &v;
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->lo, 0);
  EXPECT_EQ(s->hi, 3);
  EXPECT_EQ(s->bits(), 2);
}

TEST(Translate, SalExportContainsStructure) {
  Built b = build("__input(0, 1) int x; void f(void) { if (x == 1) { x = 0; } }");
  const std::string sal = b.tr->ts.to_sal();
  EXPECT_NE(sal.find("MODULE"), std::string::npos);
  EXPECT_NE(sal.find("INPUT"), std::string::npos);
  EXPECT_NE(sal.find("TRANSITION"), std::string::npos);
  EXPECT_NE(sal.find("pc"), std::string::npos);
  EXPECT_NE(sal.find("-->"), std::string::npos);
}

// --------------------------------------------------- explicit exploration

TEST(Explicit, ClosedSystemTerminates) {
  Built b = build(
      "__input(0, 2) int sel; int out;"
      "void f(void) { if (sel == 0) { out = 1; } else { out = 2; } }");
  // make non-input state initialised so the initial set is just |sel| = 3
  for (VarInfo& v : b.tr->ts.vars)
    if (!v.is_input) {
      v.has_init = true;
      v.init = 0;
    }
  auto r = mc::explore(b.tr->ts);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.initial_states, 3u);
  EXPECT_TRUE(r.goal_reached == false);
  EXPECT_GT(r.states, 3u);
}

TEST(Explicit, GoalDepthIsShortestPath) {
  Built b = build(
      "__input(0, 1) int x;"
      "void f(void) { int a; a = 1; a = 2; a = 3; }");
  for (VarInfo& v : b.tr->ts.vars)
    if (!v.is_input) {
      v.has_init = true;
      v.init = 0;
    }
  auto r = mc::explore(b.tr->ts, b.tr->ts.final);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.goal_reached);
  EXPECT_EQ(r.goal_depth, 3u);
}

TEST(Explicit, HugeInitialSpaceRefused) {
  Built b = build("void f(int a) { a = 1; }");  // 16-bit free input
  auto r = mc::explore(b.tr->ts, std::nullopt,
                       mc::ExploreOptions{.max_initial_states = 1000});
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.initial_states, UINT64_MAX);
}

TEST(Explicit, MemoryEstimateUsesPackedEncodedBits) {
  // The estimate models a PACKED state store: states * ceil(state_bits/8),
  // not the unpacked int64 vectors actually held (ROADMAP hardening item).
  Built b = build(
      "__input(0, 2) int sel; int out;"
      "void f(void) { if (sel == 0) { out = 1; } else { out = 2; } }");
  for (VarInfo& v : b.tr->ts.vars)
    if (!v.is_input) {
      v.has_init = true;
      v.init = 0;
    }
  const auto r = mc::explore(b.tr->ts);
  ASSERT_TRUE(r.complete);
  ASSERT_GT(r.states, 0u);
  const std::uint64_t bits =
      static_cast<std::uint64_t>(b.tr->ts.state_bits());
  EXPECT_EQ(r.memory_bytes, r.states * ((bits + 7) / 8));
  // Narrowing the encoding must shrink the estimate proportionally — the
  // honesty property the Table 2 comparison relies on.
  EXPECT_LT(r.memory_bytes, r.states * sizeof(std::int64_t) *
                                (b.tr->ts.vars.size() + 1));
}

TEST(Explicit, InitialStatesDrawFromDeclaredDomainNotEncoding) {
  // An out-of-domain store widens the ENCODING (soundness), but the free
  // initial enumeration must stay on the declared __input domain.
  Built b = build(
      "__input(0, 2) int sel;"
      "void f(void) { int x = 0; if (sel == 1) { sel = 100; x = 1; } }");
  for (VarInfo& v : b.tr->ts.vars)
    if (!v.is_input) {
      v.has_init = true;
      v.init = 0;
    }
  const auto r = mc::explore(b.tr->ts);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.initial_states, 3u);  // sel in {0, 1, 2}, not the encoding
}

TEST(Explicit, UninitialisedVariableEnlargesStateSpace) {
  // The Section 3.2.5 effect: initialising a variable shrinks |D_R|.
  Built b = build(
      "__input(0, 1) int x; bool flag;"
      "void f(void) { if (x == 1) { flag = true; } }");
  TransitionSystem& ts = b.tr->ts;
  // force 'flag' bool range but uninitialised
  auto r_uninit = mc::explore(ts);
  for (VarInfo& v : ts.vars)
    if (!v.is_input) {
      v.has_init = true;
      v.init = 0;
    }
  auto r_init = mc::explore(ts);
  EXPECT_TRUE(r_uninit.complete);
  EXPECT_TRUE(r_init.complete);
  EXPECT_GT(r_uninit.states, r_init.states);
  EXPECT_GT(r_uninit.initial_states, r_init.initial_states);
}

}  // namespace
}  // namespace tmg::tsys
