#include <gtest/gtest.h>

#include "minic/eval.h"
#include "minic/frontend.h"
#include "minic/lexer.h"
#include "minic/printer.h"

namespace tmg::minic {
namespace {

// ------------------------------------------------------------------ lexer

TEST(Lexer, TokenizesOperators) {
  DiagnosticEngine d;
  auto toks = lex("+ += ++ << <<= < <= == = != ! && & || |", d);
  ASSERT_TRUE(d.ok());
  std::vector<Tok> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<Tok>{
                       Tok::Plus, Tok::PlusAssign, Tok::PlusPlus, Tok::Shl,
                       Tok::ShlAssign, Tok::Lt, Tok::Le, Tok::EqEq,
                       Tok::Assign, Tok::Ne, Tok::Bang, Tok::AmpAmp, Tok::Amp,
                       Tok::PipePipe, Tok::Pipe, Tok::Eof}));
}

TEST(Lexer, Keywords) {
  DiagnosticEngine d;
  auto toks = lex("if else while switch __loopbound __input __cost", d);
  EXPECT_EQ(toks[0].kind, Tok::KwIf);
  EXPECT_EQ(toks[1].kind, Tok::KwElse);
  EXPECT_EQ(toks[2].kind, Tok::KwWhile);
  EXPECT_EQ(toks[3].kind, Tok::KwSwitch);
  EXPECT_EQ(toks[4].kind, Tok::KwLoopbound);
  EXPECT_EQ(toks[5].kind, Tok::KwInput);
  EXPECT_EQ(toks[6].kind, Tok::KwCost);
}

TEST(Lexer, DecimalAndHexLiterals) {
  DiagnosticEngine d;
  auto toks = lex("42 0x2A 0 0xff", d);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].int_value, 42);
  EXPECT_EQ(toks[2].int_value, 0);
  EXPECT_EQ(toks[3].int_value, 255);
}

TEST(Lexer, LineAndColumnTracking) {
  DiagnosticEngine d;
  auto toks = lex("a\n  b", d);
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.column, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

TEST(Lexer, CommentsSkipped) {
  DiagnosticEngine d;
  auto toks = lex("a // comment\nb /* block\ncomment */ c", d);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(toks.size(), 4u);  // a b c eof
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, UnterminatedCommentIsError) {
  DiagnosticEngine d;
  lex("a /* never closed", d);
  EXPECT_FALSE(d.ok());
}

TEST(Lexer, StrayCharacterIsError) {
  DiagnosticEngine d;
  auto toks = lex("a $ b", d);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(toks[1].kind, Tok::Error);
}

TEST(Lexer, HexWithoutDigitsIsError) {
  DiagnosticEngine d;
  lex("0x", d);
  EXPECT_FALSE(d.ok());
}

// ------------------------------------------------------------------ types

TEST(Types, Widths) {
  EXPECT_EQ(type_bits(Type::Bool), 1);
  EXPECT_EQ(type_bits(Type::Int8), 8);
  EXPECT_EQ(type_bits(Type::Int16), 16);
  EXPECT_EQ(type_bits(Type::UInt32), 32);
}

TEST(Types, WrapToType) {
  EXPECT_EQ(wrap_to_type(300, Type::Int8), 300 - 256);
  EXPECT_EQ(wrap_to_type(300, Type::UInt8), 44);
  EXPECT_EQ(wrap_to_type(-1, Type::UInt16), 65535);
  EXPECT_EQ(wrap_to_type(65536, Type::Int16), 0);
  EXPECT_EQ(wrap_to_type(2, Type::Bool), 0);
  EXPECT_EQ(wrap_to_type(3, Type::Bool), 1);
}

TEST(Types, ArithResultPromotion) {
  EXPECT_EQ(arith_result(Type::Int8, Type::Int16), Type::Int16);
  EXPECT_EQ(arith_result(Type::Bool, Type::Bool), Type::Int16);
  EXPECT_EQ(arith_result(Type::Int16, Type::UInt16), Type::UInt16);
  EXPECT_EQ(arith_result(Type::UInt8, Type::Int32), Type::Int32);
}

TEST(Types, MinMax) {
  EXPECT_EQ(type_min(Type::Int16), -32768);
  EXPECT_EQ(type_max(Type::Int16), 32767);
  EXPECT_EQ(type_min(Type::UInt8), 0);
  EXPECT_EQ(type_max(Type::UInt8), 255);
}

// ------------------------------------------------------------------- eval

TEST(Eval, WrapAroundAdd) {
  EXPECT_EQ(eval_binop(BinOp::Add, 32767, 1, Type::Int16, Type::Int16),
            -32768);
}

TEST(Eval, TotalDivision) {
  EXPECT_EQ(eval_binop(BinOp::Div, 7, 0, Type::Int16, Type::Int16), 0);
  EXPECT_EQ(eval_binop(BinOp::Rem, 7, 0, Type::Int16, Type::Int16), 7);
  EXPECT_EQ(eval_binop(BinOp::Div, -32768, -1, Type::Int16, Type::Int16),
            -32768);
  EXPECT_EQ(eval_binop(BinOp::Rem, -32768, -1, Type::Int16, Type::Int16), 0);
}

TEST(Eval, SignedVsUnsignedComparison) {
  EXPECT_EQ(eval_binop(BinOp::Lt, -1, 1, Type::Int16, Type::Bool), 1);
  // -1 as UInt16 is 65535
  EXPECT_EQ(eval_binop(BinOp::Lt, 65535, 1, Type::UInt16, Type::Bool), 0);
}

TEST(Eval, ShiftSemantics) {
  EXPECT_EQ(eval_binop(BinOp::Shl, 1, 3, Type::Int16, Type::Int16), 8);
  EXPECT_EQ(eval_binop(BinOp::Shl, 1, 16, Type::Int16, Type::Int16), 0);
  EXPECT_EQ(eval_binop(BinOp::Shr, -4, 1, Type::Int16, Type::Int16), -2);
  EXPECT_EQ(eval_binop(BinOp::Shr, -1, 20, Type::Int16, Type::Int16), -1);
  EXPECT_EQ(eval_binop(BinOp::Shr, 65535, 8, Type::UInt16, Type::UInt16), 255);
}

TEST(Eval, LogicalOps) {
  EXPECT_EQ(eval_binop(BinOp::LogicalAnd, 5, 0, Type::Int16, Type::Bool), 0);
  EXPECT_EQ(eval_binop(BinOp::LogicalAnd, 5, -2, Type::Int16, Type::Bool), 1);
  EXPECT_EQ(eval_binop(BinOp::LogicalOr, 0, 0, Type::Int16, Type::Bool), 0);
  EXPECT_EQ(eval_unop(UnOp::LogicalNot, 0, Type::Int16, Type::Bool), 1);
  EXPECT_EQ(eval_unop(UnOp::LogicalNot, 3, Type::Int16, Type::Bool), 0);
}

TEST(Eval, NegationWraps) {
  EXPECT_EQ(eval_unop(UnOp::Neg, -32768, Type::Int16, Type::Int16), -32768);
  EXPECT_EQ(eval_unop(UnOp::BitNot, 0, Type::UInt8, Type::UInt8), 255);
}

// ----------------------------------------------------------------- parser

std::unique_ptr<Program> parse_ok(std::string_view src) {
  DiagnosticEngine d;
  auto p = compile(src, d, SemaOptions{.warn_unbounded_loops = false});
  EXPECT_TRUE(p != nullptr) << d.str();
  return p;
}

void expect_error(std::string_view src, std::string_view needle) {
  DiagnosticEngine d;
  auto p = compile(src, d);
  EXPECT_EQ(p, nullptr) << "expected failure for: " << src;
  EXPECT_NE(d.str().find(needle), std::string::npos)
      << "diagnostics were:\n"
      << d.str();
}

TEST(Parser, MinimalFunction) {
  auto p = parse_ok("void f(void) { }");
  ASSERT_EQ(p->functions.size(), 1u);
  EXPECT_EQ(p->functions[0]->name, "f");
  EXPECT_EQ(p->functions[0]->return_type, Type::Void);
}

TEST(Parser, ParamsAndLocals) {
  auto p = parse_ok("int f(int a, unsigned char b) { int x = a + b; return x; }");
  const FunctionDef& f = *p->functions[0];
  ASSERT_EQ(f.params.size(), 2u);
  EXPECT_EQ(f.params[0]->type, Type::Int16);
  EXPECT_EQ(f.params[1]->type, Type::UInt8);
}

TEST(Parser, GlobalsWithInitialisers) {
  auto p = parse_ok("int g = 5; __input int s; bool b = true; void f(void){}");
  ASSERT_EQ(p->globals.size(), 3u);
  EXPECT_EQ(p->globals[0]->init_value, 5);
  EXPECT_FALSE(p->globals[0]->is_input);
  EXPECT_TRUE(p->globals[1]->is_input);
  EXPECT_EQ(p->globals[2]->init_value, 1);
}

TEST(Parser, NegativeGlobalInitialiser) {
  auto p = parse_ok("int g = -7; void f(void){}");
  EXPECT_EQ(p->globals[0]->init_value, -7);
}

TEST(Parser, MultiDeclaratorGlobal) {
  auto p = parse_ok("int a = 1, b = 2, c; void f(void){}");
  ASSERT_EQ(p->globals.size(), 3u);
  EXPECT_EQ(p->globals[1]->init_value, 2);
  EXPECT_EQ(p->globals[2]->init_value, 0);
}

TEST(Parser, ExternWithCost) {
  auto p = parse_ok("extern void task(int) __cost(25); void f(void){ task(1); }");
  ASSERT_EQ(p->externs.size(), 1u);
  EXPECT_EQ(p->externs[0]->call_cost, 25);
  ASSERT_EQ(p->externs[0]->param_types.size(), 1u);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto p = parse_ok("int f(int a) { return 1 + a * 2; }");
  const Stmt& ret = *p->functions[0]->body->body[0];
  const Expr& e = *ret.children[0];
  ASSERT_EQ(e.kind, ExprKind::Binary);
  EXPECT_EQ(e.bin_op, BinOp::Add);
  EXPECT_EQ(e.child(1).bin_op, BinOp::Mul);
}

TEST(Parser, TernaryNested) {
  auto p = parse_ok("int f(int a) { return a ? 1 : a ? 2 : 3; }");
  const Expr& e = *p->functions[0]->body->body[0]->children[0];
  ASSERT_EQ(e.kind, ExprKind::Cond);
  EXPECT_EQ(e.child(2).kind, ExprKind::Cond);
}

TEST(Parser, ForDesugarsToWhile) {
  auto p = parse_ok(
      "void f(void) { int s; s = 0;"
      " __loopbound(10) for (int i = 0; i < 10; i++) { s += i; } }");
  // The for loop becomes a Block containing [Decl, While].
  const Stmt& body = *p->functions[0]->body;
  const Stmt& wrapper = *body.body[2];
  ASSERT_EQ(wrapper.kind, StmtKind::Block);
  const Stmt& loop = *wrapper.body[1];
  ASSERT_EQ(loop.kind, StmtKind::While);
  EXPECT_EQ(loop.loop_bound, 10u);
  ASSERT_TRUE(loop.body[1] != nullptr);  // step statement
  EXPECT_EQ(loop.body[1]->kind, StmtKind::Assign);
}

TEST(Parser, DoWhile) {
  auto p = parse_ok(
      "void f(int a) { __loopbound(3) do { a += 1; } while (a < 10); }");
  const Stmt& loop = *p->functions[0]->body->body[0];
  EXPECT_EQ(loop.kind, StmtKind::DoWhile);
  EXPECT_EQ(loop.loop_bound, 3u);
}

TEST(Parser, SwitchWithCasesAndDefault) {
  auto p = parse_ok(
      "void f(int a) { switch (a) { case 1: a = 2; break;"
      " case 2 + 1: a = 3; break; default: a = 0; break; } }");
  const Stmt& sw = *p->functions[0]->body->body[0];
  ASSERT_EQ(sw.kind, StmtKind::Switch);
  ASSERT_EQ(sw.cases.size(), 3u);
  EXPECT_EQ(sw.cases[0].label, 1);
  EXPECT_EQ(sw.cases[1].label, 3);  // constant-folded 2 + 1
  EXPECT_FALSE(sw.cases[2].label.has_value());
}

TEST(Parser, CompoundAssignAndIncrement) {
  auto p = parse_ok("void f(int a) { a += 2; a <<= 1; a++; --a; }");
  const auto& body = p->functions[0]->body->body;
  EXPECT_EQ(body[0]->assign_op, BinOp::Add);
  EXPECT_EQ(body[1]->assign_op, BinOp::Shl);
  EXPECT_EQ(body[2]->assign_op, BinOp::Add);
  EXPECT_EQ(body[3]->assign_op, BinOp::Sub);
}

TEST(Parser, BlockScopingAllowsShadowing) {
  auto p = parse_ok("void f(void) { int x = 1; { int x = 2; x = 3; } x = 4; }");
  EXPECT_EQ(p->functions.size(), 1u);
}

TEST(Parser, ErrorUndeclaredIdentifier) {
  expect_error("void f(void) { x = 1; }", "undeclared identifier 'x'");
}

TEST(Parser, ErrorRedeclaration) {
  expect_error("void f(void) { int x; int x; }", "redeclaration of 'x'");
}

TEST(Parser, ErrorMissingSemicolon) {
  expect_error("void f(int a) { a = 1 }", "expected ';'");
}

TEST(Parser, ErrorCallUndeclaredFunction) {
  expect_error("void f(void) { g(); }", "undeclared function 'g'");
}

TEST(Parser, ErrorInputOnLocal) {
  expect_error("void f(void) { __input int x; }", "__input");
}

// ------------------------------------- lexical / truncation error paths

TEST(LexerErrors, UnterminatedBlockComment) {
  expect_error("void f(void) { } /* never closed", "unterminated block comment");
}

TEST(LexerErrors, DecimalLiteralTooLarge) {
  // One above INT64_MAX: must be rejected, not silently wrapped.
  expect_error("void f(int a) { a = 9223372036854775808; }",
               "integer literal too large");
}

TEST(LexerErrors, HexLiteralTooLarge) {
  expect_error("void f(int a) { a = 0xffffffffffffffff1; }",
               "integer literal too large");
}

TEST(LexerErrors, HexLiteralWithoutDigits) {
  expect_error("void f(int a) { a = 0x; }", "hexadecimal literal has no digits");
}

TEST(LexerErrors, LiteralWithIdentifierSuffix) {
  // `123abc` must not silently lex as 123 followed by `abc`.
  expect_error("void f(int a) { a = 123abc; }",
               "invalid suffix on integer literal '123abc'");
}

TEST(LexerErrors, DirectLexReportsSuffix) {
  DiagnosticEngine d;
  auto toks = lex("42xyz", d);
  EXPECT_FALSE(d.ok());
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::IntLiteral);
  EXPECT_EQ(toks[1].kind, Tok::Eof);  // the suffix is consumed, not re-lexed
}

TEST(ParserErrors, LoopboundOutOfRange) {
  // 2^32 would silently truncate to 0 iterations and unsoundly shrink the
  // WCET of everything derived from the bound.
  expect_error("void f(int a) { __loopbound(4294967296) while (a) { a -= 1; } }",
               "__loopbound value is out of range");
}

TEST(ParserErrors, LoopboundMaxU32Accepted) {
  auto p = parse_ok(
      "void f(int a) { __loopbound(4294967295) while (a) { a -= 1; } }");
  EXPECT_EQ(p->functions[0]->body->body[0]->loop_bound, 4294967295u);
}

TEST(ParserErrors, GlobalInitialiserOutOfRange) {
  // int is 16-bit on the target: 40000 does not fit and must not wrap.
  expect_error("int g = 40000; void f(void){}", "out of range for 'g'");
}

TEST(ParserErrors, GlobalInitialiserNegativeOutOfRange) {
  expect_error("int g = -40000; void f(void){}", "out of range for 'g'");
}

TEST(ParserErrors, GlobalInitialiserBoundaryAccepted) {
  auto p = parse_ok("int g = 32767, h = -32768; void f(void){}");
  EXPECT_EQ(p->globals[0]->init_value, 32767);
  EXPECT_EQ(p->globals[1]->init_value, -32768);
}

TEST(ParserErrors, InputRangeClampWarns) {
  DiagnosticEngine d;
  auto p = compile("__input(0, 100000) int s; void f(void){}", d,
                   SemaOptions{.warn_unbounded_loops = false});
  ASSERT_TRUE(p != nullptr) << d.str();  // a warning, not an error
  EXPECT_NE(d.str().find("__input range clamped"), std::string::npos);
  ASSERT_TRUE(p->globals[0]->input_range.has_value());
  EXPECT_EQ(p->globals[0]->input_range->second, 32767);
}

TEST(ParserErrors, UnexpectedEofInFunctionBody) {
  expect_error("void f(void) { if (1) {", "expected '}'");
}

TEST(ParserErrors, UnexpectedEofInExpression) {
  expect_error("void f(int a) { a = 1 +", "expected expression");
}

TEST(ParserErrors, UnexpectedEofInSwitch) {
  expect_error("void f(int a) { switch (a) { case 1: a = 2;", "expected");
}

TEST(ParserErrors, UnexpectedEofInParameterList) {
  expect_error("void f(int a,", "expected");
}

TEST(ParserErrors, UnexpectedEofAfterExtern) {
  expect_error("extern void g(void) __cost(", "expected");
}

// ------------------------------------------------------------------- sema

TEST(Sema, TypesPropagate) {
  auto p = parse_ok("int f(char a, long b) { return a + b; }");
  const Expr& e = *p->functions[0]->body->body[0]->children[0];
  EXPECT_EQ(e.type, Type::Int32);  // char + long -> long
}

TEST(Sema, ComparisonYieldsBool) {
  auto p = parse_ok("bool f(int a) { return a < 3; }");
  const Expr& e = *p->functions[0]->body->body[0]->children[0];
  EXPECT_EQ(e.type, Type::Bool);
}

TEST(Sema, ErrorBreakOutsideLoop) {
  expect_error("void f(void) { break; }", "'break' outside");
}

TEST(Sema, ErrorContinueOutsideLoop) {
  expect_error("void f(void) { continue; }", "'continue' outside");
}

TEST(Sema, ErrorContinueInSwitchOnly) {
  expect_error("void f(int a) { switch (a) { case 1: continue; } }",
               "'continue' outside");
}

TEST(Sema, ErrorDuplicateCaseLabels) {
  expect_error("void f(int a) { switch (a) { case 1: break; case 1: break; } }",
               "duplicate case label");
}

TEST(Sema, ErrorNonConstantCaseLabel) {
  expect_error("void f(int a) { switch (a) { case a: break; } }",
               "not a constant");
}

TEST(Sema, ErrorVoidReturnMismatch) {
  expect_error("int f(void) { return; }", "must return a value");
  expect_error("void f(void) { return 1; }", "cannot return a value");
}

TEST(Sema, ErrorCallInCondition) {
  expect_error(
      "extern int probe(void); void f(void) { if (probe()) { } }",
      "side-effect free");
}

TEST(Sema, ErrorVoidValueUse) {
  expect_error("extern void g(void); void f(int a) { a = g(); }",
               "void value");
}

TEST(Sema, ErrorWrongArgumentCount) {
  expect_error("extern void g(int); void f(void) { g(1, 2); }",
               "expects 1 argument");
}

TEST(Sema, WarnsOnUnboundedLoop) {
  DiagnosticEngine d;
  auto p = compile("void f(int a) { while (a) { a -= 1; } }", d);
  ASSERT_NE(p, nullptr);
  EXPECT_NE(d.str().find("__loopbound"), std::string::npos);
}

// ---------------------------------------------------------------- printer

TEST(Printer, RoundTripParsesBack) {
  const char* src =
      "extern void leaf(void) __cost(5);\n"
      "__input int mode;\n"
      "int work(int a, int b)\n"
      "{\n"
      "  int acc = 0;\n"
      "  if (a > b) { acc = a - b; } else { acc = b - a; }\n"
      "  switch (mode) {\n"
      "    case 0: acc += 1; break;\n"
      "    case 1: acc <<= 2; break;\n"
      "    default: leaf(); break;\n"
      "  }\n"
      "  __loopbound(4) while (acc > 16) { acc >>= 1; }\n"
      "  return acc;\n"
      "}\n";
  auto p1 = parse_ok(src);
  const std::string printed = print_program(*p1);
  auto p2 = parse_ok(printed);  // printed source must be valid mini-C
  EXPECT_EQ(print_program(*p2), printed);  // and print-stable
}

TEST(Printer, ParenthesisationPreservesMeaning) {
  auto p = parse_ok("int f(int a) { return (a + 1) * 2; }");
  const std::string s = print_expr(*p->functions[0]->body->body[0]->children[0]);
  EXPECT_EQ(s, "(a + 1) * 2");
}

TEST(Printer, NoRedundantParens) {
  auto p = parse_ok("int f(int a) { return a * 2 + 1; }");
  const std::string s = print_expr(*p->functions[0]->body->body[0]->children[0]);
  EXPECT_EQ(s, "a * 2 + 1");
}

}  // namespace
}  // namespace tmg::minic
