// Session-reuse equivalence suite (ISSUE 6 satellite): a warm
// bmc::Session must be observationally identical to the fresh-solver
// path for every default report field — reports, witnesses, CNF
// accounting — across worker counts and optimisation settings. These
// tests pin the Session determinism contract (bmc/session.h) at three
// levels: rendered pipeline reports, direct Session queries, and the
// SessionPool handing warm state to workers.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bmc/bmc.h"
#include "bmc/session.h"
#include "cfg/cfg.h"
#include "cfg/structure.h"
#include "driver/pipeline.h"
#include "driver/report.h"
#include "engine/session_pool.h"
#include "fuzz_gen.h"
#include "minic/frontend.h"
#include "opt/passes.h"
#include "paper_examples.h"
#include "tsys/translate.h"

namespace tmg::bmc {
namespace {

// ------------------------------------------- rendered-report equivalence

std::string render_all_formats(const driver::PipelineResult& result,
                               const driver::PipelineOptions& opts) {
  std::ostringstream os;
  for (const driver::ReportFormat fmt :
       {driver::ReportFormat::Text, driver::ReportFormat::Csv,
        driver::ReportFormat::Json}) {
    render_report(result, opts, fmt, /*with_stages=*/false, os);
    os << "\n---\n";
  }
  return os.str();
}

driver::PipelineResult run_with_sessions(const char* src, unsigned jobs,
                                         bool optimised, bool sessions) {
  driver::PipelineOptions opts;
  opts.jobs = jobs;
  opts.use_sessions = sessions;
  if (optimised) opts.opt_passes = opt::all_passes();
  driver::Pipeline p(opts);
  return p.run(src);
}

/// Every paper example, at --jobs 1 and 4, optimised and not: the warm
/// session path and the fresh-solver path must render byte-identical
/// reports in every format (the acceptance criterion's "byte-identical
/// timing models and witnesses").
TEST(SessionEquivalence, ReportsByteIdenticalAcrossJobsAndOpt) {
  for (const testing::PaperExample& ex : testing::kPaperExamples) {
    for (const unsigned jobs : {1u, 4u}) {
      for (const bool optimised : {false, true}) {
        SCOPED_TRACE(std::string(ex.name) + " jobs=" +
                     std::to_string(jobs) +
                     (optimised ? " opt" : " plain"));
        driver::PipelineOptions opts;
        opts.jobs = jobs;
        if (optimised) opts.opt_passes = opt::all_passes();

        const driver::PipelineResult warm =
            run_with_sessions(ex.source, jobs, optimised, true);
        const driver::PipelineResult fresh =
            run_with_sessions(ex.source, jobs, optimised, false);
        ASSERT_TRUE(warm.ok) << warm.error;
        ASSERT_TRUE(fresh.ok) << fresh.error;
        EXPECT_EQ(render_all_formats(warm, opts),
                  render_all_formats(fresh, opts));
      }
    }
  }
}

/// Structured equivalence for one loop-bearing example: not just the
/// rendered bytes but the raw witnesses, decision traces and verdicts.
TEST(SessionEquivalence, WitnessesAndVerdictsMatchFreshPath) {
  const driver::PipelineResult warm =
      run_with_sessions(testing::kExampleB4, 1, false, true);
  const driver::PipelineResult fresh =
      run_with_sessions(testing::kExampleB4, 1, false, false);
  ASSERT_TRUE(warm.ok) << warm.error;
  ASSERT_TRUE(fresh.ok) << fresh.error;
  ASSERT_EQ(warm.functions.size(), fresh.functions.size());
  for (std::size_t f = 0; f < warm.functions.size(); ++f) {
    const driver::FunctionTiming& wf = warm.functions[f];
    const driver::FunctionTiming& ff = fresh.functions[f];
    ASSERT_EQ(wf.segments.size(), ff.segments.size());
    for (std::size_t s = 0; s < wf.segments.size(); ++s) {
      const driver::SegmentTiming& ws = wf.segments[s];
      const driver::SegmentTiming& fs = ff.segments[s];
      EXPECT_EQ(ws.bcet, fs.bcet);
      EXPECT_EQ(ws.wcet, fs.wcet);
      ASSERT_EQ(ws.paths.size(), fs.paths.size());
      for (std::size_t p = 0; p < ws.paths.size(); ++p) {
        SCOPED_TRACE("segment " + std::to_string(s) + " path " +
                     std::to_string(p));
        EXPECT_EQ(ws.paths[p].verdict, fs.paths[p].verdict);
        EXPECT_EQ(ws.paths[p].witness, fs.paths[p].witness);
        EXPECT_EQ(ws.paths[p].decision_trace, fs.paths[p].decision_trace);
        EXPECT_EQ(ws.paths[p].replay, fs.paths[p].replay);
      }
    }
  }
}

/// Fuzz-oracle-shaped programs (generator seed range) with sessions on
/// and off: byte-identical whole-function reports. Exercises loop
/// schedules and anchored windows the paper examples may not reach.
TEST(SessionEquivalence, GeneratedProgramsMatchFreshPath) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const fuzz::GeneratedProgram gen = fuzz::generate_program(seed);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + gen.source);
    driver::PipelineOptions opts;
    opts.path_bound = 1'000'000;  // whole function = one segment
    opts.max_paths_per_segment = 512;
    opts.jobs = 1;

    driver::PipelineOptions warm_opts = opts;
    warm_opts.use_sessions = true;
    driver::PipelineOptions fresh_opts = opts;
    fresh_opts.use_sessions = false;
    const driver::PipelineResult warm =
        driver::Pipeline(warm_opts).run(gen.source);
    const driver::PipelineResult fresh =
        driver::Pipeline(fresh_opts).run(gen.source);
    ASSERT_EQ(warm.ok, fresh.ok);
    if (!warm.ok) continue;  // generator programs always compile, but
                             // equivalence is the property under test
    EXPECT_EQ(render_all_formats(warm, opts),
              render_all_formats(fresh, opts));
  }
}

// ------------------------------------------------ direct Session queries

struct Built {
  std::unique_ptr<minic::Program> program;
  std::unique_ptr<cfg::FunctionCfg> f;
  std::unique_ptr<tsys::TranslationResult> tr;
};

Built build(const char* src) {
  Built b;
  b.program = minic::compile_or_die(
      src, minic::SemaOptions{.warn_unbounded_loops = false});
  b.f = cfg::build_cfg(*b.program->functions.front());
  DiagnosticEngine diags;
  b.tr = tsys::translate(*b.program, *b.f, diags);
  EXPECT_TRUE(b.tr != nullptr) << diags.str();
  return b;
}

std::vector<cfg::EdgeRef> true_edges(const Built& b) {
  std::vector<cfg::EdgeRef> out;
  for (const auto& blk : b.f->graph.blocks())
    if (blk.is_decision())
      for (std::uint32_t i = 0; i < blk.succs.size(); ++i)
        if (blk.succs[i].kind == cfg::EdgeKind::True)
          out.push_back(cfg::EdgeRef{blk.id, i});
  return out;
}

void expect_same_default_fields(const BmcResult& warm,
                                const BmcResult& fresh) {
  EXPECT_EQ(warm.status, fresh.status);
  EXPECT_EQ(warm.initial_values, fresh.initial_values);
  EXPECT_EQ(warm.decision_trace, fresh.decision_trace);
  EXPECT_EQ(warm.steps, fresh.steps);
  EXPECT_EQ(warm.exact_path, fresh.exact_path);
  EXPECT_EQ(warm.cnf_vars, fresh.cnf_vars);
  EXPECT_EQ(warm.cnf_clauses, fresh.cnf_clauses);
}

/// One session answering the same query repeatedly, and interleaved
/// queries, always returns what a fresh bmc::solve returns — including
/// the as-if-fresh CNF accounting.
TEST(Session, WarmRepeatMatchesFreshSolve) {
  Built b = build(
      "void f(int i) { int x = 0; if (i == 0) { x = 1; } if (i != 0) { x = 2; "
      "} }");
  const std::vector<cfg::EdgeRef> tes = true_edges(b);
  ASSERT_EQ(tes.size(), 2u);

  BmcQuery sat_query;  // first decision true only: satisfiable
  sat_query.forced_choices = {tes[0]};
  sat_query.must_take = tes[0];
  BmcQuery unsat_query;  // both true edges: the paper's infeasible path
  unsat_query.forced_choices = {tes[0], tes[1]};

  const BmcOptions opts;
  const BmcResult fresh_sat = solve(b.tr->ts, sat_query, opts);
  const BmcResult fresh_unsat = solve(b.tr->ts, unsat_query, opts);
  ASSERT_EQ(fresh_sat.status, BmcStatus::TestData);
  ASSERT_EQ(fresh_unsat.status, BmcStatus::Infeasible);

  Session session(b.tr->ts, opts);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    expect_same_default_fields(session.solve(sat_query), fresh_sat);
    expect_same_default_fields(session.solve(unsat_query), fresh_unsat);
  }
  EXPECT_EQ(session.stats().queries, 6u);
}

/// Session aggregates per-query solver effort; a solved query must have
/// registered at least one propagation.
TEST(Session, StatsAccumulateAcrossQueries) {
  Built b = build("void f(int a) { if (a > 5) { a = 1; } }");
  Session session(b.tr->ts, BmcOptions{});
  EXPECT_EQ(session.stats().queries, 0u);
  (void)session.solve(BmcQuery{});
  const SessionStats after_one = session.stats();
  EXPECT_EQ(after_one.queries, 1u);
  EXPECT_GT(after_one.solver_propagations, 0u);
  (void)session.solve(BmcQuery{});
  EXPECT_EQ(session.stats().queries, 2u);
  EXPECT_GE(session.stats().solver_propagations,
            after_one.solver_propagations);
}

// ------------------------------------------------------- SessionPool

TEST(SessionPool, PerWorkerSlotsAreIndependentAndStable) {
  engine::SessionPool<int, std::unique_ptr<int>> pool(2);
  ASSERT_EQ(pool.workers(), 2u);
  const auto never_retired = [](int) { return false; };
  int builds = 0;
  const auto make = [&] { return std::make_unique<int>(++builds); };

  int* w0_k1 = pool.acquire(0, 1, never_retired, make).get();
  int* w1_k1 = pool.acquire(1, 1, never_retired, make).get();
  EXPECT_NE(w0_k1, w1_k1);  // same key, distinct workers: distinct state
  EXPECT_EQ(builds, 2);

  // Re-acquire returns the same warm instance, no rebuild.
  EXPECT_EQ(pool.acquire(0, 1, never_retired, make).get(), w0_k1);
  EXPECT_EQ(builds, 2);
}

TEST(SessionPool, RetiredKeysAreDroppedBeforeBuilding) {
  engine::SessionPool<int, int> pool(1);
  int builds = 0;
  const auto make = [&] { return ++builds; };
  const auto none = [](int) { return false; };

  (void)pool.acquire(0, 1, none, make);
  (void)pool.acquire(0, 2, none, make);
  EXPECT_EQ(builds, 2);

  // Key 1 retires: the next acquire drops it, and a later re-acquire of
  // key 1 must rebuild rather than resurrect stale state.
  const auto one_retired = [](int k) { return k == 1; };
  (void)pool.acquire(0, 3, one_retired, make);
  EXPECT_EQ(builds, 3);
  EXPECT_EQ(pool.acquire(0, 1, none, make), 4);
}

}  // namespace
}  // namespace tmg::bmc
