// Failing-program minimisation for the fuzz harness: given a mini-C
// program that trips the differential oracle, greedily delete statements
// and whole brace blocks and reduce integer constants while the failure
// persists. The shrinker is syntax-light (line and token based) — any
// candidate that no longer parses simply stops failing and is rejected by
// the oracle predicate, so structural validity never has to be tracked.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace tmg::fuzz {

/// Predicate over candidate programs: true when the candidate still
/// exhibits the failure being minimised. Implementations should treat
/// non-compiling candidates as NOT failing (see CheckOutcome::failing).
using StillFails = std::function<bool(const std::string&)>;

struct ShrinkStats {
  /// Oracle invocations spent.
  std::size_t attempts = 0;
  /// Candidates that kept the failure and were adopted.
  std::size_t accepted = 0;
};

/// Minimises `source` under `still_fails`, which must hold for `source`
/// itself. Deterministic: the same (source, predicate) yields the same
/// minimised program. `max_attempts` bounds the total number of predicate
/// calls; the best program found so far is returned when it runs out.
///
/// Reduction passes, iterated to a fixpoint:
///   1. brace-block deletion — an `if`/`switch`/loop construct vanishes
///      with its whole body (largest candidates first);
///   2. single-line deletion — statements and declarations;
///   3. constant reduction — every integer literal tried as 0, then
///      halved toward 0.
std::string shrink_program(std::string source, const StillFails& still_fails,
                           std::size_t max_attempts = 1000,
                           ShrinkStats* stats = nullptr);

}  // namespace tmg::fuzz
