#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/diagnostics.h"
#include "support/json.h"
#include "support/path_count.h"
#include "support/rng.h"
#include "support/table.h"

namespace tmg {
namespace {

// ---------------------------------------------------------------- PathCount

TEST(PathCount, DefaultIsZero) {
  PathCount pc;
  EXPECT_FALSE(pc.saturated());
  EXPECT_EQ(pc.exact(), 0u);
}

TEST(PathCount, ExactAddition) {
  PathCount a(3), b(4);
  EXPECT_EQ((a + b).exact(), 7u);
}

TEST(PathCount, ExactMultiplication) {
  PathCount a(6), b(7);
  EXPECT_EQ((a * b).exact(), 42u);
}

TEST(PathCount, MultiplyByZero) {
  PathCount a(123), z(0);
  EXPECT_EQ((a * z).exact(), 0u);
  EXPECT_EQ((z * a).exact(), 0u);
}

TEST(PathCount, AddZeroIdentity) {
  PathCount a(55), z(0);
  EXPECT_EQ((a + z).exact(), 55u);
  EXPECT_EQ((z + a).exact(), 55u);
}

TEST(PathCount, SaturatesOnOverflowMul) {
  PathCount a(std::uint64_t{1} << 40);
  PathCount b(std::uint64_t{1} << 40);
  PathCount c = a * b;
  EXPECT_TRUE(c.saturated());
  EXPECT_NEAR(c.log2(), 80.0, 0.01);
}

TEST(PathCount, SaturatesOnOverflowAdd) {
  PathCount a((std::uint64_t{1} << 63) - 1);
  PathCount c = a + a;
  EXPECT_TRUE(c.saturated());
  EXPECT_NEAR(c.log2(), 64.0, 0.01);
}

TEST(PathCount, SaturatedAdditionLogDomain) {
  PathCount a = PathCount::from_log2(100.0);
  PathCount b = PathCount::from_log2(100.0);
  PathCount c = a + b;
  EXPECT_TRUE(c.saturated());
  EXPECT_NEAR(c.log2(), 101.0, 0.01);
}

TEST(PathCount, PowSmallExact) {
  PathCount two(2);
  EXPECT_EQ(two.pow(10).exact(), 1024u);
}

TEST(PathCount, PowLargeSaturates) {
  PathCount two(2);
  PathCount big = two.pow(300);
  EXPECT_TRUE(big.saturated());
  EXPECT_NEAR(big.log2(), 300.0, 0.1);
}

TEST(PathCount, PowZeroExponentIsOne) {
  EXPECT_EQ(PathCount(7).pow(0).exact(), 1u);
  EXPECT_EQ(PathCount(0).pow(0).exact(), 1u);
}

TEST(PathCount, PowOfZeroIsZero) {
  EXPECT_EQ(PathCount(0).pow(5).exact(), 0u);
}

// ------------------------------------------- saturation boundary (2^63)

TEST(PathCountSaturation, AdditionJustBelowLimitStaysExact) {
  // (2^62 - 1) + 2^62 == 2^63 - 1: the largest exact sum.
  PathCount a((std::uint64_t{1} << 62) - 1);
  PathCount b(std::uint64_t{1} << 62);
  PathCount c = a + b;
  EXPECT_FALSE(c.saturated());
  EXPECT_EQ(c.exact(), (std::uint64_t{1} << 63) - 1);
}

TEST(PathCountSaturation, AdditionAtLimitSaturates) {
  // 2^62 + 2^62 == 2^63 == kSatLimit: must switch to the log domain.
  PathCount a(std::uint64_t{1} << 62);
  PathCount c = a + a;
  EXPECT_TRUE(c.saturated());
  EXPECT_NEAR(c.log2(), 63.0, 0.01);
}

TEST(PathCountSaturation, MultiplicationJustBelowLimitStaysExact) {
  PathCount a(std::uint64_t{1} << 31);
  PathCount c = a * a;  // 2^62
  EXPECT_FALSE(c.saturated());
  EXPECT_EQ(c.exact(), std::uint64_t{1} << 62);
}

TEST(PathCountSaturation, MultiplicationAtLimitSaturates) {
  PathCount a(std::uint64_t{1} << 32);
  PathCount b(std::uint64_t{1} << 31);
  PathCount c = a * b;  // 2^63 == kSatLimit
  EXPECT_TRUE(c.saturated());
  EXPECT_NEAR(c.log2(), 63.0, 0.01);
}

TEST(PathCountSaturation, PowCrossingTheBoundarySaturates) {
  PathCount two(2);
  PathCount exact = two.pow(61);
  EXPECT_FALSE(exact.saturated());
  EXPECT_EQ(exact.exact(), std::uint64_t{1} << 61);
  PathCount sat = two.pow(63);
  EXPECT_TRUE(sat.saturated());
  EXPECT_NEAR(sat.log2(), 63.0, 0.1);
}

TEST(PathCountSaturation, PowOnSaturatedValueStaysInLogDomain) {
  PathCount base = PathCount::from_log2(100.0);
  PathCount p = base.pow(3);
  EXPECT_TRUE(p.saturated());
  EXPECT_NEAR(p.log2(), 300.0, 0.01);
  // pow(1) must be a fixpoint.
  EXPECT_NEAR(base.pow(1).log2(), 100.0, 0.01);
  // pow(0) is one even for saturated bases.
  EXPECT_FALSE(base.pow(0).saturated());
  EXPECT_EQ(base.pow(0).exact(), 1u);
}

TEST(PathCount, LeBound) {
  EXPECT_TRUE(PathCount(6).le(6));
  EXPECT_FALSE(PathCount(7).le(6));
  EXPECT_FALSE(PathCount::from_log2(100).le(1000000));
}

TEST(PathCount, ComparisonMixed) {
  EXPECT_LT(PathCount(10), PathCount(20));
  EXPECT_LT(PathCount(10), PathCount::from_log2(80));
  EXPECT_LT(PathCount::from_log2(80), PathCount::from_log2(90));
}

TEST(PathCount, StrFormat) {
  EXPECT_EQ(PathCount(42).str(), "42");
  EXPECT_EQ(PathCount::from_log2(123.44).str(), "2^123.4");
}

TEST(PathCount, AsDoubleMatches) {
  EXPECT_DOUBLE_EQ(PathCount(1000).as_double(), 1000.0);
  EXPECT_NEAR(PathCount::from_log2(70).as_double(), std::exp2(70.0), 1e18);
}

// --------------------------------------------------------------------- Rng

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowZeroGivesZero) {
  Rng r(7);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, FullInt64RangeIsNotDegenerate) {
  // Regression: span = hi - lo + 1 wraps to 0 for [INT64_MIN, INT64_MAX],
  // and below(0) == 0 collapsed every draw to lo.
  Rng r(17);
  constexpr std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  std::set<std::int64_t> seen;
  bool non_lo = false;
  for (int i = 0; i < 64; ++i) {
    const std::int64_t v = r.range(lo, hi);
    seen.insert(v);
    if (v != lo) non_lo = true;
  }
  EXPECT_TRUE(non_lo);
  EXPECT_GT(seen.size(), 32u);  // 64 draws over 2^64 values: no repeats
}

TEST(Rng, AlmostFullInt64RangeStaysInBounds) {
  Rng r(23);
  constexpr std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max() - 1;
  for (int i = 0; i < 256; ++i) {
    const std::int64_t v = r.range(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

// ------------------------------------------------------------- Diagnostics

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine d;
  d.warning({1, 1}, "w");
  EXPECT_TRUE(d.ok());
  d.error({2, 3}, "e");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_EQ(d.diagnostics().size(), 2u);
}

TEST(Diagnostics, StrRendersLocations) {
  DiagnosticEngine d;
  d.error({12, 5}, "boom");
  EXPECT_EQ(d.str(), "12:5: error: boom\n");
}

TEST(Diagnostics, UnknownLocation) {
  DiagnosticEngine d;
  d.report(Severity::Note, {}, "hi");
  EXPECT_NE(d.str().find("<unknown>"), std::string::npos);
}

// ------------------------------------------------------------------ Table

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22);
  const std::string s = t.str();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| b     |    22 |"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add(1, 2);
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, CsvQuotesDelimitersAndQuotes) {
  // Batch reports put user-supplied file paths in the first column; a
  // comma in a path must not shift the machine-readable columns.
  TextTable t({"file", "n"});
  t.add(std::string("my,progs/a.mc"), 1);
  t.add(std::string("say \"hi\".mc"), 2);
  t.add(std::string("plain.mc"), 3);
  EXPECT_EQ(t.csv(),
            "file,n\n"
            "\"my,progs/a.mc\",1\n"
            "\"say \"\"hi\"\".mc\",2\n"
            "plain.mc,3\n");
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add(1);
  t.add(2);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 1), "2.0");
}

TEST(JsonQuote, EscapesSpecialsAndControls) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(json_quote(std::string("a\x01z")), "\"a\\u0001z\"");
}

// ------------------------------------------------- JSON parser (shard IPC)

TEST(JsonParse, Scalars) {
  EXPECT_EQ(json_parse("null")->kind(), JsonValue::Kind::Null);
  EXPECT_TRUE(json_parse("true")->as_bool());
  EXPECT_FALSE(json_parse("false")->as_bool());
  const JsonValue i = *json_parse("-42");
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(i.as_int(), -42);
  EXPECT_DOUBLE_EQ(i.as_double(), -42.0);
  const JsonValue d = *json_parse("2.5e-3");
  EXPECT_FALSE(d.is_int());
  EXPECT_DOUBLE_EQ(d.as_double(), 0.0025);
  EXPECT_EQ(json_parse("\"hi\\n\"")->as_string(), "hi\n");
}

TEST(JsonParse, RoundTripsQuoteAndDouble) {
  // The parser must invert our own emitters exactly: json_quote for
  // strings, json_double (%.17g) for wall clocks.
  const std::string original = "a\"b\\c\nd\te\x01f";
  EXPECT_EQ(json_parse(json_quote(original))->as_string(), original);
  for (const double v : {0.0, 1.0 / 3.0, 6.02e23, 2.5e-17, -0.125}) {
    const JsonValue parsed = *json_parse(json_double(v));
    EXPECT_EQ(parsed.as_double(), v) << json_double(v);
  }
}

TEST(JsonParse, NestedStructures) {
  const std::optional<JsonValue> v =
      json_parse(R"({"files":[{"index":3,"ok":true},{"index":4}],"n":2})");
  ASSERT_TRUE(v.has_value());
  const JsonValue& files = v->get("files");
  ASSERT_EQ(files.kind(), JsonValue::Kind::Array);
  ASSERT_EQ(files.items().size(), 2u);
  EXPECT_EQ(files.items()[0].get("index").as_int(), 3);
  EXPECT_TRUE(files.items()[0].get("ok").as_bool());
  EXPECT_EQ(files.items()[1].get("index").as_int(), 4);
  EXPECT_EQ(v->get("n").as_int(), 2);
  // Absent keys are a Null sentinel, not a crash.
  EXPECT_TRUE(v->get("missing").is_null());
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json_parse("", &error).has_value());
  EXPECT_FALSE(json_parse("{", &error).has_value());
  EXPECT_FALSE(json_parse("[1,]", &error).has_value());
  EXPECT_FALSE(json_parse("{\"a\" 1}", &error).has_value());
  EXPECT_FALSE(json_parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(json_parse("1 2", &error).has_value());
  EXPECT_FALSE(json_parse("nul", &error).has_value());
  EXPECT_NE(error.find("at offset"), std::string::npos);
  // Depth bomb: fails cleanly instead of overflowing the stack.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(json_parse(deep, &error).has_value());
}

/// The parser now reads untrusted socket bytes (tmg serve): nesting is
/// bounded explicitly, with a clean error at the boundary instead of a
/// stack overflow on hostile input.
std::string nested_arrays(std::size_t n) {
  std::string s(n, '[');
  s += '0';
  s.append(n, ']');
  return s;
}

TEST(JsonParse, NestingDepthBoundaryIsExact) {
  // 64 nested arrays are accepted...
  std::optional<JsonValue> ok = json_parse(nested_arrays(64));
  ASSERT_TRUE(ok.has_value());
  const JsonValue* inner = &*ok;
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(inner->kind(), JsonValue::Kind::Array);
    ASSERT_EQ(inner->items().size(), 1u);
    inner = &inner->items()[0];
  }
  EXPECT_EQ(inner->as_int(), 0);

  // ...and 65 fail with the depth diagnostic, not a malformed-input one.
  std::string error;
  EXPECT_FALSE(json_parse(nested_arrays(65), &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
}

TEST(JsonParse, DeepNestingBombsFailCleanly) {
  std::string error;
  // Array bomb far past the limit: would be a guaranteed stack overflow
  // without the explicit depth counter.
  EXPECT_FALSE(json_parse(nested_arrays(100'000), &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);

  // Object bomb.
  std::string objs;
  for (int i = 0; i < 100'000; ++i) objs += "{\"k\":";
  objs += "0";
  for (int i = 0; i < 100'000; ++i) objs += '}';
  EXPECT_FALSE(json_parse(objs, &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);

  // Mixed and unterminated bombs (hostile input need not be balanced).
  std::string mixed;
  for (int i = 0; i < 50'000; ++i) mixed += "[{\"a\":";
  EXPECT_FALSE(json_parse(mixed, &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);
}

TEST(JsonParse, Int64BoundaryStaysExact) {
  const JsonValue v = *json_parse("9223372036854775807");
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), INT64_MAX);
}

}  // namespace
}  // namespace tmg
