#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.h"
#include "support/rng.h"

namespace tmg::sat {
namespace {

TEST(Sat, EmptyInstanceIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, SingleUnit) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.value(a));
}

TEST(Sat, ContradictingUnitsUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  EXPECT_FALSE(s.add_clause(neg(a)));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, ImplicationChainPropagates) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 20; ++i) s.add_clause(neg(v[i]), pos(v[i + 1]));
  s.add_clause(pos(v[0]));
  ASSERT_EQ(s.solve(), Result::Sat);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(s.value(v[i]));
}

TEST(Sat, SimpleConflictIsUnsat) {
  // (a | b) & (a | ~b) & (~a | b) & (~a | ~b)
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b));
  s.add_clause(pos(a), neg(b));
  s.add_clause(neg(a), pos(b));
  s.add_clause(neg(a), neg(b));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, TautologyIgnored) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause(pos(a), neg(a)));
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, DuplicateLiteralsCollapse) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(std::vector<Lit>{pos(a), pos(a), pos(a)});
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.value(a));
}

TEST(Sat, XorChainSatisfiable) {
  // x0 ^ x1 = 1 encoded via 4 clauses each, chained
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) {
    // v[i] != v[i+1]
    s.add_clause(pos(v[i]), pos(v[i + 1]));
    s.add_clause(neg(v[i]), neg(v[i + 1]));
  }
  ASSERT_EQ(s.solve(), Result::Sat);
  for (int i = 0; i + 1 < 10; ++i) EXPECT_NE(s.value(v[i]), s.value(v[i + 1]));
}

/// Pigeonhole principle PHP(n+1, n): unsatisfiable, forces real conflict
/// analysis and learning.
void pigeonhole(int holes) {
  Solver s;
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
  for (auto& row : at)
    for (auto& v : row) v = s.new_var();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(pos(at[p][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause(neg(at[p1][h]), neg(at[p2][h]));
  EXPECT_EQ(s.solve(), Result::Unsat) << "PHP(" << pigeons << "," << holes
                                      << ")";
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Sat, Pigeonhole4) { pigeonhole(4); }
TEST(Sat, Pigeonhole5) { pigeonhole(5); }
TEST(Sat, Pigeonhole6) { pigeonhole(6); }

TEST(Sat, AssumptionsRestrictModels) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b));
  ASSERT_EQ(s.solve({neg(a)}), Result::Sat);
  EXPECT_FALSE(s.value(a));
  EXPECT_TRUE(s.value(b));
  // incompatible assumptions
  s.add_clause(neg(a), neg(b));
  EXPECT_EQ(s.solve({pos(a), pos(b)}), Result::Unsat);
}

TEST(Sat, SolveIsRepeatable) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_EQ(s.solve({neg(a)}), Result::Sat);
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  Solver s;
  // a moderately hard unsat instance with a tiny budget
  const int holes = 7;
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
  for (auto& row : at)
    for (auto& v : row) v = s.new_var();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(pos(at[p][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause(neg(at[p1][h]), neg(at[p2][h]));
  EXPECT_EQ(s.solve({}, 5), Result::Unknown);
}

TEST(Sat, StatsArePopulated) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause(pos(a), pos(b), pos(c));
  s.add_clause(neg(a), pos(b));
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_GT(s.stats().memory_bytes, 0u);
}

TEST(Sat, DeferredVarsBranchAfterLiveOnes) {
  // (a | b) with both free: which variable gets branched first decides the
  // model. The default order branches a (index order, phase false), so
  // propagation sets b; deferring a flips the branch to b and propagation
  // sets a. Moving a back to the live tier restores the original model.
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b));
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_FALSE(s.value(a));
  EXPECT_TRUE(s.value(b));

  s.set_deferred(a, true);
  s.reset_heuristics();
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.value(a));
  EXPECT_FALSE(s.value(b));

  s.set_deferred(a, false);
  s.reset_heuristics();
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_FALSE(s.value(a));
  EXPECT_TRUE(s.value(b));
}

TEST(Sat, AssumptionPrefixReuseKeepsVerdictsSound) {
  // Incremental trail reuse: consecutive solves whose assumption vectors
  // share a prefix skip re-propagating it. Verdicts and model validity
  // must match a fresh solver on every call pattern, including the
  // tricky one — a previously-true assumption turning false only under
  // carried-over branch decisions (not implications), which must trigger
  // re-examination, not a bogus Unsat.
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var(),
            d = s.new_var();
  s.add_clause(neg(a), pos(b));  // a -> b
  s.add_clause(neg(b), neg(c), pos(d));

  ASSERT_EQ(s.solve({pos(a)}), Result::Sat);
  EXPECT_TRUE(s.value(b));
  // Shares the [a] prefix; the previous model's free choice for c was a
  // branch decision, so flipping it must re-search, not fail.
  ASSERT_EQ(s.solve({pos(a), pos(c)}), Result::Sat);
  EXPECT_TRUE(s.value(b));
  EXPECT_TRUE(s.value(c));
  EXPECT_TRUE(s.value(d));
  ASSERT_EQ(s.solve({pos(a), pos(c), neg(d)}), Result::Unsat);
  // Disjoint assumptions after an Unsat: full rewind path.
  ASSERT_EQ(s.solve({neg(b)}), Result::Sat);
  EXPECT_FALSE(s.value(a));
  // Repeat of an earlier vector still answers the same.
  ASSERT_EQ(s.solve({pos(a), pos(c), neg(d)}), Result::Unsat);
  ASSERT_EQ(s.solve({pos(a), pos(c)}), Result::Sat);
}

// -------------------------- randomized differential test vs brute force

/// Evaluates a CNF under an assignment bitmask.
bool eval_cnf(const std::vector<std::vector<Lit>>& cnf, std::uint32_t bits) {
  for (const auto& clause : cnf) {
    bool sat = false;
    for (const Lit& l : clause) {
      const bool val = (bits >> l.var()) & 1;
      if (val != l.sign()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

TEST(Sat, AssumptionReuseAgreesWithFreshSolverOnRandomCnf) {
  // Differential check: one warm solver answering a chain of
  // prefix-sharing assumption queries vs a fresh solver per query.
  // Verdicts must agree everywhere; Sat models must satisfy the CNF.
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    const int nvars = 6 + static_cast<int>(rng.below(6));
    std::vector<std::vector<Lit>> cnf;
    Solver warm;
    for (int v = 0; v < nvars; ++v) warm.new_var();
    const int nclauses = 10 + static_cast<int>(rng.below(30));
    for (int c = 0; c < nclauses; ++c) {
      std::vector<Lit> clause;
      const int len = 1 + static_cast<int>(rng.below(3));
      for (int k = 0; k < len; ++k)
        clause.push_back(
            Lit(static_cast<Var>(rng.below(nvars)), rng.chance(0.5)));
      cnf.push_back(clause);
      warm.add_clause(clause);
    }
    std::vector<Lit> assumptions;
    for (int q = 0; q < 8; ++q) {
      // Grow, shrink or replace the assumption tail to exercise every
      // prefix-overlap shape.
      if (!assumptions.empty() && rng.chance(0.3)) assumptions.pop_back();
      assumptions.push_back(
          Lit(static_cast<Var>(rng.below(nvars)), rng.chance(0.5)));

      Solver fresh;
      for (int v = 0; v < nvars; ++v) fresh.new_var();
      for (const auto& clause : cnf) fresh.add_clause(clause);

      const Result rw = warm.solve(assumptions);
      const Result rf = fresh.solve(assumptions);
      ASSERT_EQ(rw, rf) << "iter " << iter << " query " << q;
      if (rw == Result::Sat) {
        std::uint32_t model = 0;
        for (Var v = 0; v < nvars; ++v)
          if (warm.value(v)) model |= 1u << v;
        EXPECT_TRUE(eval_cnf(cnf, model)) << "iter " << iter;
        for (const Lit& l : assumptions)
          EXPECT_NE(warm.value(l.var()), l.sign()) << "iter " << iter;
      }
    }
  }
}

class RandomCnf : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnf, AgreesWithBruteForce) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    const int nvars = 4 + static_cast<int>(rng.below(9));  // 4..12
    const int nclauses = 3 + static_cast<int>(rng.below(50));
    std::vector<std::vector<Lit>> cnf;
    Solver s;
    for (int v = 0; v < nvars; ++v) s.new_var();
    for (int c = 0; c < nclauses; ++c) {
      std::vector<Lit> clause;
      const int len = 1 + static_cast<int>(rng.below(3));
      for (int k = 0; k < len; ++k) {
        const Var v = static_cast<Var>(rng.below(nvars));
        clause.push_back(Lit(v, rng.chance(0.5)));
      }
      cnf.push_back(clause);
      s.add_clause(clause);
    }
    bool brute_sat = false;
    for (std::uint32_t bits = 0; bits < (1u << nvars); ++bits)
      if (eval_cnf(cnf, bits)) {
        brute_sat = true;
        break;
      }
    const Result r = s.solve();
    ASSERT_EQ(r == Result::Sat, brute_sat) << "iter " << iter;
    if (r == Result::Sat) {
      std::uint32_t model = 0;
      for (Var v = 0; v < nvars; ++v)
        if (s.value(v)) model |= 1u << v;
      EXPECT_TRUE(eval_cnf(cnf, model)) << "model must satisfy the CNF";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnf, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tmg::sat
