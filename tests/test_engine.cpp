#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/bench.h"
#include "engine/once_cache.h"
#include "engine/scheduler.h"

namespace tmg::engine {
namespace {

// --------------------------------------------------------------- Scheduler

std::vector<AnalysisJob> counting_jobs(std::size_t n,
                                       std::vector<std::atomic<int>>& hits) {
  std::vector<AnalysisJob> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    jobs.push_back(AnalysisJob{[&hits, i](unsigned) { ++hits[i]; }});
  return jobs;
}

TEST(Scheduler, RunsEveryJobExactlyOnceSerially) {
  std::vector<std::atomic<int>> hits(17);
  const Scheduler s(1);
  const SchedulerStats stats = s.run(counting_jobs(17, hits));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(stats.jobs, 17u);
  EXPECT_EQ(stats.workers, 1u);
  ASSERT_EQ(stats.jobs_per_worker.size(), 1u);
  EXPECT_EQ(stats.jobs_per_worker[0], 17u);
}

TEST(Scheduler, RunsEveryJobExactlyOnceInParallel) {
  std::vector<std::atomic<int>> hits(101);
  const Scheduler s(4);
  const SchedulerStats stats = s.run(counting_jobs(101, hits));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(stats.jobs, 101u);
  EXPECT_EQ(stats.workers, 4u);
  const std::size_t total = std::accumulate(
      stats.jobs_per_worker.begin(), stats.jobs_per_worker.end(),
      std::size_t{0});
  EXPECT_EQ(total, 101u);
}

TEST(Scheduler, WorkerIdsStayBelowPoolSize) {
  const Scheduler s(3);
  std::atomic<bool> bad{false};
  std::vector<AnalysisJob> jobs;
  for (int i = 0; i < 50; ++i)
    jobs.push_back(AnalysisJob{[&](unsigned w) {
      if (w >= 3) bad = true;
    }});
  s.run(jobs);
  EXPECT_FALSE(bad.load());
}

TEST(Scheduler, PoolShrinksToJobCount) {
  const Scheduler s(16);
  std::vector<std::atomic<int>> hits(2);
  const SchedulerStats stats = s.run(counting_jobs(2, hits));
  // No point spawning 16 threads for 2 jobs.
  EXPECT_LE(stats.workers, 2u);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ZeroSelectsHardwareConcurrency) {
  const Scheduler s(0);
  EXPECT_EQ(s.workers(), Scheduler::hardware_workers());
  EXPECT_GE(s.workers(), 1u);
}

TEST(Scheduler, EmptyBatchIsANoOp) {
  const Scheduler s(4);
  const SchedulerStats stats = s.run({});
  EXPECT_EQ(stats.jobs, 0u);
}

TEST(Scheduler, JobExceptionIsRethrownOnCaller) {
  const Scheduler s(4);
  std::vector<AnalysisJob> jobs;
  for (int i = 0; i < 8; ++i)
    jobs.push_back(AnalysisJob{[i](unsigned) {
      if (i == 5) throw std::runtime_error("job 5 failed");
    }});
  EXPECT_THROW(s.run(jobs), std::runtime_error);
}

// --------------------------------------------------------------- OnceCache

TEST(OnceCache, ComputesEachKeyOnce) {
  OnceCache<int, int> cache;
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  std::atomic<bool> wrong_value{false};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int k = 0; k < 20; ++k) {
        const int v = cache.get_or_compute(k, [&] {
          ++computes;
          return k * 10;
        });
        if (v != k * 10) wrong_value = true;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(wrong_value.load());
  EXPECT_EQ(computes.load(), 20);  // one compute per key across 8 threads
  EXPECT_EQ(cache.size(), 20u);
}

TEST(OnceCache, ReportsWhoComputed) {
  OnceCache<int, int> cache;
  bool mine = false;
  EXPECT_EQ(cache.get_or_compute(7, [] { return 1; }, &mine), 1);
  EXPECT_TRUE(mine);
  EXPECT_EQ(cache.get_or_compute(7, [] { return 2; }, &mine), 1);
  EXPECT_FALSE(mine);
}

TEST(OnceCache, ExceptionReachesEveryRequester) {
  OnceCache<int, int> cache;
  EXPECT_THROW(
      cache.get_or_compute(1, []() -> int { throw std::logic_error("x"); }),
      std::logic_error);
  // The failed slot stays poisoned: later requesters see the error too
  // (a pure compute function fails deterministically).
  EXPECT_THROW(cache.get_or_compute(1, [] { return 3; }), std::logic_error);
}

// -------------------------------------------------------------- BenchReport

TEST(BenchReport, AggregatesAndSpeedup) {
  BenchReport r;
  r.workers = 4;
  r.repeats = 3;
  BenchFile a;
  a.path = "a.mc";
  a.analysis_jobs = 10;
  a.serial_seconds = 2.0;
  a.parallel_seconds = 1.0;
  r.files.push_back(std::move(a));
  BenchFile b;
  b.path = "b.mc";
  b.analysis_jobs = 30;
  b.serial_seconds = 4.0;
  b.parallel_seconds = 1.0;
  r.files.push_back(std::move(b));
  EXPECT_EQ(r.total_jobs(), 40u);
  EXPECT_DOUBLE_EQ(r.total_serial_seconds(), 6.0);
  EXPECT_DOUBLE_EQ(r.total_parallel_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(r.speedup(), 3.0);
  EXPECT_DOUBLE_EQ(r.files[0].speedup(), 2.0);
  EXPECT_DOUBLE_EQ(r.files[1].jobs_per_second(), 30.0);
}

TEST(BenchReport, JsonSchema) {
  BenchReport r;
  r.workers = 2;
  r.repeats = 5;
  BenchFile f;
  f.path = "examples/fig1.mc";
  f.analysis_jobs = 9;
  f.workers_used = 2;
  f.serial_seconds = 0.5;
  f.parallel_seconds = 0.25;
  f.stages.push_back(BenchStage{"frontend", 0.001});
  f.stages.push_back(BenchStage{"bmc", 0.4});
  r.files.push_back(std::move(f));

  std::ostringstream os;
  r.render_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"bench\":{"), std::string::npos);
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"repeats\":5"), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"examples/fig1.mc\""), std::string::npos);
  EXPECT_NE(json.find("\"analysis_jobs\":9"), std::string::npos);
  EXPECT_NE(json.find("\"workers_used\":2"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\":2.000000"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_per_second\":36.000000"), std::string::npos);
  EXPECT_NE(json.find("\"frontend\":0.001000"), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\":{"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(BenchReport, EmptyParallelSecondsYieldZeroNotInf) {
  BenchFile f;
  EXPECT_DOUBLE_EQ(f.speedup(), 0.0);
  EXPECT_DOUBLE_EQ(f.jobs_per_second(), 0.0);
  EXPECT_DOUBLE_EQ(f.opt_speedup(), 0.0);
  BenchReport r;
  EXPECT_DOUBLE_EQ(r.speedup(), 0.0);
  EXPECT_DOUBLE_EQ(r.opt_speedup(), 0.0);
}

TEST(BenchReport, OptimisedRunTracksItsOwnSpeedup) {
  BenchFile f;
  f.parallel_seconds = 0.3;
  f.optimised_seconds = 0.1;
  EXPECT_DOUBLE_EQ(f.opt_speedup(), 3.0);

  BenchReport r;
  r.files.push_back(f);
  BenchFile g;
  g.parallel_seconds = 0.1;
  g.optimised_seconds = 0.1;
  r.files.push_back(g);
  EXPECT_DOUBLE_EQ(r.total_optimised_seconds(), 0.2);
  EXPECT_DOUBLE_EQ(r.opt_speedup(), 2.0);

  std::ostringstream os;
  r.render_json(os);
  EXPECT_NE(os.str().find("\"optimised_seconds\":0.100000"),
            std::string::npos);
  EXPECT_NE(os.str().find("\"opt_speedup\":3.000000"), std::string::npos);
  EXPECT_NE(os.str().find("\"opt_speedup\":2.000000"), std::string::npos);
}

TEST(BenchReport, BatchSpeedupComparesPoolSumToFrontier) {
  BenchReport r;
  BenchFile a;
  a.parallel_seconds = 0.3;
  r.files.push_back(a);
  BenchFile b;
  b.parallel_seconds = 0.3;
  r.files.push_back(b);
  EXPECT_DOUBLE_EQ(r.batch_speedup(), 0.0);  // unmeasured: no inf
  r.batch_seconds = 0.4;
  EXPECT_DOUBLE_EQ(r.batch_speedup(), 1.5);

  std::ostringstream os;
  r.render_json(os);
  EXPECT_NE(os.str().find("\"batch_seconds\":0.400000"), std::string::npos);
  EXPECT_NE(os.str().find("\"batch_speedup\":1.500000"), std::string::npos);
}

// ---------------------------------------------------------------- Frontier

TEST(Frontier, DrainsSeededJobsSerially) {
  std::vector<std::atomic<int>> hits(9);
  Frontier f(1);
  for (std::size_t i = 0; i < hits.size(); ++i)
    f.push(AnalysisJob{[&hits, i](unsigned) { ++hits[i]; }});
  const SchedulerStats stats = f.run();
  EXPECT_EQ(stats.jobs, hits.size());
  EXPECT_EQ(stats.workers, 1u);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Frontier, JobsCanPushJobs) {
  // The batch pipeline's shape: a "front half" job expands into per-path
  // jobs, whose completion pushes a merge job.
  for (const unsigned workers : {1u, 4u}) {
    std::atomic<int> leaves{0};
    std::atomic<int> merges{0};
    Frontier f(workers);
    for (int file = 0; file < 3; ++file) {
      f.push(AnalysisJob{[&f, &leaves, &merges](unsigned) {
        auto remaining = std::make_shared<std::atomic<int>>(5);
        for (int j = 0; j < 5; ++j) {
          f.push(AnalysisJob{[&f, &leaves, &merges, remaining](unsigned) {
            ++leaves;
            if (remaining->fetch_sub(1) == 1)
              f.push(AnalysisJob{[&merges](unsigned) { ++merges; }});
          }});
        }
      }});
    }
    const SchedulerStats stats = f.run();
    EXPECT_EQ(leaves.load(), 15) << "workers=" << workers;
    EXPECT_EQ(merges.load(), 3) << "workers=" << workers;
    EXPECT_EQ(stats.jobs, 3u + 15u + 3u);
  }
}

TEST(Frontier, RunReturnsOnlyWhenNoJobInFlight) {
  // A slow job that pushes at the last moment must still have its push
  // executed before run() returns.
  std::atomic<bool> late_ran{false};
  Frontier f(4);
  f.push(AnalysisJob{[&f, &late_ran](unsigned) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    f.push(AnalysisJob{[&late_ran](unsigned) { late_ran = true; }});
  }});
  f.run();
  EXPECT_TRUE(late_ran.load());
}

TEST(Frontier, FirstExceptionPropagatesAndStopsDrain) {
  for (const unsigned workers : {1u, 4u}) {
    Frontier f(workers);
    std::atomic<int> ran{0};
    f.push(AnalysisJob{[](unsigned) { throw std::runtime_error("boom"); }});
    for (int i = 0; i < 32; ++i)
      f.push(AnalysisJob{[&ran](unsigned) { ++ran; }});
    EXPECT_THROW(f.run(), std::runtime_error) << "workers=" << workers;
    // The queue was discarded; a later run() must not resurrect it.
    const SchedulerStats stats = f.run();
    EXPECT_EQ(stats.jobs, 0u);
  }
}

TEST(Frontier, ReusableAcrossRuns) {
  Frontier f(2);
  std::atomic<int> count{0};
  f.push(AnalysisJob{[&count](unsigned) { ++count; }});
  f.run();
  EXPECT_EQ(count.load(), 1);
  f.push(AnalysisJob{[&count](unsigned) { ++count; }});
  f.push(AnalysisJob{[&count](unsigned) { ++count; }});
  f.run();
  EXPECT_EQ(count.load(), 3);
}

TEST(Frontier, WorkerIdsStayInRange) {
  Frontier f(3);
  std::atomic<bool> bad{false};
  for (int i = 0; i < 64; ++i)
    f.push(AnalysisJob{[&f, &bad](unsigned w) {
      if (w >= f.workers()) bad = true;
    }});
  f.run();
  EXPECT_FALSE(bad.load());
}

// --------------------------------------------------------- service mode

TEST(Frontier, HeldOpenPoolParksAcrossEmptyQueueUntilClosed) {
  // The serve daemon's shape: run() on its own thread, a producer pushes
  // jobs in bursts with idle gaps in between, close() ends the run. The
  // idle gap is the regression surface — without hold_open() the pool
  // returns the moment the queue first empties.
  for (const unsigned workers : {1u, 4u}) {
    Frontier f(workers);
    f.hold_open();
    std::atomic<int> done{0};
    std::thread pool([&f] { f.run(); });
    f.push(AnalysisJob{[&done](unsigned) { ++done; }});
    while (done.load() < 1) std::this_thread::yield();
    // The queue is now empty and nothing is in flight; the pool must
    // still accept and run a late job.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    f.push(AnalysisJob{[&done](unsigned) { ++done; }});
    while (done.load() < 2) std::this_thread::yield();
    f.close();
    pool.join();
    EXPECT_EQ(done.load(), 2) << "workers=" << workers;
  }
}

TEST(Frontier, CloseFromInsideAJobEndsTheRun) {
  // A worker handling a shutdown request closes its own pool; close()
  // must not self-deadlock and queued work still completes first.
  for (const unsigned workers : {1u, 3u}) {
    Frontier f(workers);
    f.hold_open();
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i)
      f.push(AnalysisJob{[&done](unsigned) { ++done; }});
    f.push(AnalysisJob{[&f](unsigned) { f.close(); }});
    f.run();  // returns instead of parking: the hold was released
    EXPECT_EQ(done.load(), 8) << "workers=" << workers;
  }
}

TEST(Frontier, ClosedPoolDrainsLikeABatchAgain) {
  // hold_open() + close() before run(): the hold is gone, so run()
  // behaves exactly like the plain batch drain (terminates when empty).
  Frontier f(2);
  f.hold_open();
  f.close();
  std::atomic<int> done{0};
  f.push(AnalysisJob{[&done](unsigned) { ++done; }});
  const SchedulerStats stats = f.run();
  EXPECT_EQ(done.load(), 1);
  EXPECT_EQ(stats.jobs, 1u);
}

}  // namespace
}  // namespace tmg::engine
