#include "fuzz_oracle.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "cfg/structure.h"
#include "driver/pipeline.h"
#include "mc/explicit.h"
#include "minic/frontend.h"
#include "opt/passes.h"
#include "testgen/interp.h"
#include "tsys/translate.h"

namespace tmg::fuzz {

namespace {

using driver::PathVerdict;
using driver::Pipeline;
using driver::PipelineOptions;
using driver::PipelineResult;

struct Built {
  std::unique_ptr<minic::Program> program;
  std::unique_ptr<cfg::FunctionCfg> f;
  std::unique_ptr<tsys::TranslationResult> tr;
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

Built build(const std::string& src) {
  Built b;
  DiagnosticEngine diags;
  b.program = minic::compile(
      src, diags, minic::SemaOptions{.warn_unbounded_loops = false});
  if (!b.program) {
    b.error = "frontend: " + diags.str();
    return b;
  }
  if (b.program->functions.empty()) {
    b.error = "frontend: no function definitions";
    return b;
  }
  b.f = cfg::build_cfg(*b.program->functions.front());
  b.tr = tsys::translate(*b.program, *b.f, diags);
  if (!b.tr) b.error = "translate: " + diags.str();
  return b;
}

/// All input combinations over the declared __input domains, in
/// Program::inputs_of order (the interpreter's input order).
std::vector<std::vector<std::int64_t>> input_combos(const Built& b) {
  const std::vector<minic::Symbol*> inputs = b.program->inputs_of(*b.f->fn);
  std::vector<std::vector<std::int64_t>> out;
  std::vector<std::int64_t> cursor;
  for (const minic::Symbol* s : inputs)
    cursor.push_back(s->value_range().first);
  for (;;) {
    out.push_back(cursor);
    std::size_t i = 0;
    for (; i < inputs.size(); ++i) {
      if (++cursor[i] <= inputs[i]->value_range().second) break;
      cursor[i] = inputs[i]->value_range().first;
    }
    if (i == inputs.size()) break;
    if (inputs.empty()) break;
  }
  return out;
}

/// Reorders one interpreter-order combo into transition-system VarId
/// order (what run_concrete expects). Returns false when an input symbol
/// has no transition-system variable.
bool to_varid_order(const Built& b, const std::vector<std::int64_t>& combo,
                    std::vector<std::int64_t>& out) {
  const std::vector<minic::Symbol*> inputs = b.program->inputs_of(*b.f->fn);
  std::map<tsys::VarId, std::int64_t> by_var;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const tsys::VarId v = b.tr->var_of_symbol[inputs[i]->id];
    if (v == tsys::kNoVar) return false;
    by_var[v] = combo[i];
  }
  out.clear();
  out.reserve(by_var.size());
  for (const auto& [var, value] : by_var) out.push_back(value);
  return true;
}

/// Shrinks non-input free variables (uninitialised-encoding locals) to a
/// tiny window so explicit exploration stays tractable; identical shrink
/// on both systems keeps the comparison fair (see tests/test_opt.cpp).
void restrict_domains(tsys::TransitionSystem& ts) {
  for (tsys::VarInfo& v : ts.vars) {
    if (v.is_input || v.has_init) continue;
    if (v.hi - v.lo <= 4) continue;
    v.lo = std::max<std::int64_t>(v.lo, -1);
    v.hi = std::min<std::int64_t>(v.hi, 1);
  }
}

/// Cost of one executed trace under the default cost model — the ground
/// truth the pipeline's path costs must reproduce.
std::int64_t trace_cost(const Built& b, const testgen::ExecTrace& trace) {
  const driver::CostModel cm;
  std::int64_t total = 0;
  for (const cfg::BlockId blk : trace.blocks)
    total += cm.block_cost(b.f->graph.block(blk));
  return total;
}

std::string fmt_trace(const std::vector<cfg::EdgeRef>& t) {
  std::ostringstream os;
  for (const cfg::EdgeRef& e : t) os << " " << e.from << ":" << e.succ_index;
  return os.str();
}

}  // namespace

CheckOutcome check_program(const std::string& source,
                           const CheckOptions& opts) {
  CheckOutcome oc;
  const auto fail = [&](const std::string& what) {
    oc.failure = what;
    return oc;
  };

  Built b = build(source);
  if (!b.ok()) {
    oc.failure = b.error;
    return oc;  // compiled stays false: not a differential failure
  }
  oc.compiled = true;
  testgen::Interpreter interp(*b.program, *b.f);

  // ------------------------------------------------ ground truth (interp)
  const std::vector<std::vector<std::int64_t>> combos = input_combos(b);
  if (combos.empty()) return fail("harness: no input combinations");
  std::vector<testgen::ExecTrace> traces;
  std::int64_t min_cost = 0, max_cost = 0;
  std::set<std::vector<cfg::BlockId>> executed_paths;
  for (std::size_t i = 0; i < combos.size(); ++i) {
    testgen::ExecTrace t = interp.run(combos[i]);
    if (!t.terminated)
      return fail("interp: generated program did not terminate");
    const std::int64_t cost = trace_cost(b, t);
    if (i == 0) {
      min_cost = max_cost = cost;
    } else {
      min_cost = std::min(min_cost, cost);
      max_cost = std::max(max_cost, cost);
    }
    executed_paths.insert(t.blocks);
    traces.push_back(std::move(t));
  }

  // -------------------------------------- translator oracle: run_concrete
  // The transition system must take the interpreter's exact decision
  // sequence on every input, before and after the optimisation passes.
  Built plain = build(source);
  Built optim = build(source);
  if (!plain.ok() || !optim.ok()) return fail("rebuild: not deterministic");
  opt::run_passes(optim.tr->ts, opt::all_passes());
  for (std::size_t i = 0; i < combos.size(); ++i) {
    std::vector<std::int64_t> ts_inputs;
    if (!to_varid_order(b, combos[i], ts_inputs))
      return fail("translate: input symbol lost its variable");
    const auto concrete = opt::run_concrete(plain.tr->ts, ts_inputs);
    if (concrete.size() != traces[i].choices.size())
      return fail("run_concrete: decision count diverged from interpreter");
    for (std::size_t c = 0; c < concrete.size(); ++c) {
      if (concrete[c].first != traces[i].choices[c].from ||
          concrete[c].second != traces[i].choices[c].succ_index)
        return fail("run_concrete: decision trace diverged from interpreter");
    }
    if (opt::run_concrete(optim.tr->ts, ts_inputs) != concrete)
      return fail("opt: optimisation passes changed the decision trace");
  }

  // ----------------------------------- explicit-state oracle: mc::explore
  restrict_domains(plain.tr->ts);
  restrict_domains(optim.tr->ts);
  const mc::ExploreResult ex_plain =
      mc::explore(plain.tr->ts, plain.tr->ts.final);
  const mc::ExploreResult ex_opt =
      mc::explore(optim.tr->ts, optim.tr->ts.final);
  if (!ex_plain.complete) return fail("mc: exploration incomplete");
  if (!ex_plain.goal_reached)
    return fail("mc: final location unreachable in a terminating program");
  if (!ex_opt.complete) return fail("mc: optimised exploration incomplete");
  if (ex_opt.goal_reached != ex_plain.goal_reached)
    return fail("mc: optimised goal reachability diverged");

  // --------------------------------------------- BMC oracle: the pipeline
  PipelineOptions popts;
  popts.path_bound = 1'000'000;  // whole function = one segment
  popts.max_paths_per_segment = 512;
  popts.jobs = 1;
  const PipelineResult plain_run = Pipeline(popts).run(source);
  if (!plain_run.ok) return fail("pipeline: " + plain_run.error);
  if (plain_run.functions.size() != 1)
    return fail("pipeline: expected exactly one function");
  const driver::FunctionTiming& ft = plain_run.functions.front();
  if (ft.segments.size() != 1)
    return fail("pipeline: expected one whole-function segment");
  const driver::SegmentTiming& st = ft.segments.front();
  if (!st.whole_function) return fail("pipeline: segment not whole-function");
  if (!st.enumeration_complete)
    return fail("pipeline: generator path budget must keep enumeration "
                "complete");

  oc.total_segments = 1;
  oc.conclusive_segments = st.conclusive() ? 1 : 0;

  // Witness replay must never diverge — and with per-iteration decision
  // traces the replay check is trace-exact, not just block-subsequence.
  if (st.mismatched != 0)
    return fail("pipeline: " + std::to_string(st.mismatched) +
                " witness replays mismatched");

  // Soundness for every program: executed paths are enumerated and never
  // classified Infeasible.
  for (const std::vector<cfg::BlockId>& path : executed_paths) {
    const driver::PathTiming* found = nullptr;
    for (const driver::PathTiming& pt : st.paths)
      if (pt.blocks == path) {
        found = &pt;
        break;
      }
    if (found == nullptr)
      return fail("pipeline: an executed path was not enumerated");
    if (found->verdict == PathVerdict::Infeasible)
      return fail("pipeline: BMC pruned a path the interpreter executes");
  }

  // Exactness for EVERY program, loops included: the per-iteration
  // decision-schedule encoding leaves no Unknown verdicts, so the model
  // equals the brute-force extrema and the feasible set is exactly the
  // executed set.
  if (st.unknown != 0)
    return fail("pipeline: " + std::to_string(st.unknown) +
                " paths inconclusive (schedule encoding regressed)");
  if (st.bcet != min_cost)
    return fail("pipeline: BCET " + std::to_string(st.bcet) +
                " != brute-force minimum " + std::to_string(min_cost));
  if (st.wcet != max_cost)
    return fail("pipeline: WCET " + std::to_string(st.wcet) +
                " != brute-force maximum " + std::to_string(max_cost));
  if (st.feasible != executed_paths.size())
    return fail("pipeline: " + std::to_string(st.feasible) +
                " feasible paths but " +
                std::to_string(executed_paths.size()) + " executed");
  for (const driver::PathTiming& pt : st.paths) {
    if (pt.verdict != PathVerdict::Feasible) continue;
    if (!executed_paths.contains(pt.blocks))
      return fail("pipeline: BMC claims feasibility of a path no input "
                  "executes");
    // The witness's decision trace must be the path's own choice
    // schedule: whole-function paths carry their complete per-iteration
    // decision sequence.
    if (pt.decision_trace.empty() && !pt.witness.empty())
      return fail("pipeline: feasible path witness carries no decision "
                  "trace");
  }

  // ------------------------------------- optimiser oracle: identical model
  PipelineOptions oopts = popts;
  oopts.opt_passes = opt::all_passes();
  const PipelineResult opt_run = Pipeline(oopts).run(source);
  if (!opt_run.ok) return fail("pipeline(opt): " + opt_run.error);
  if (opt_run.functions.size() != 1)
    return fail("pipeline(opt): expected exactly one function");
  const driver::SegmentTiming& ot = opt_run.functions.front().segments.front();
  if (ot.bcet != st.bcet || ot.wcet != st.wcet)
    return fail("opt: optimised BCET/WCET diverged");
  if (ot.feasible != st.feasible || ot.infeasible != st.infeasible ||
      ot.unknown != st.unknown)
    return fail("opt: optimised verdict tallies diverged");
  if (ot.mismatched != 0) return fail("opt: optimised witness replay failed");
  if (ot.paths.size() != st.paths.size())
    return fail("opt: optimised path set diverged");
  for (std::size_t p = 0; p < st.paths.size(); ++p) {
    if (ot.paths[p].verdict != st.paths[p].verdict)
      return fail("opt: optimised path verdict diverged");
    if (ot.paths[p].cost != st.paths[p].cost)
      return fail("opt: optimised path cost diverged");
    // Decision traces survive the passes verbatim (origins are kept).
    if (ot.paths[p].verdict == PathVerdict::Feasible &&
        ot.paths[p].decision_trace != st.paths[p].decision_trace)
      return fail("opt: optimised decision trace diverged:" +
                  fmt_trace(st.paths[p].decision_trace) + " vs" +
                  fmt_trace(ot.paths[p].decision_trace));
  }

  // ----------------------- slicing oracle: byte-identical with slicing off
  // Per-segment slicing must be invisible in the timing model: same
  // verdicts, same minimised witnesses, same per-iteration decision
  // traces (sliced witnesses are expanded back to the full variable set
  // and their traces recomputed by full-system replay). Encoding metrics
  // (CNF sizes, solver effort) are allowed to shrink. Run at the default
  // path bound so the partition has real region segments — that is where
  // the per-segment and per-edge slices actually fire (whole-function
  // schedules constrain every decision and stay unsliced).
  {
    PipelineOptions son;
    son.jobs = 1;
    PipelineOptions soff = son;
    soff.slice = false;
    const PipelineResult srun = Pipeline(son).run(source);
    if (!srun.ok) return fail("pipeline(slice): " + srun.error);
    const PipelineResult nrun = Pipeline(soff).run(source);
    if (!nrun.ok) return fail("pipeline(noslice): " + nrun.error);
    if (srun.functions.size() != nrun.functions.size())
      return fail("slice: function set diverged with slicing off");
    for (std::size_t fi = 0; fi < srun.functions.size(); ++fi) {
      const driver::FunctionTiming& af = srun.functions[fi];
      const driver::FunctionTiming& cf = nrun.functions[fi];
      if (af.segments.size() != cf.segments.size())
        return fail("slice: segment set diverged with slicing off");
      for (std::size_t si = 0; si < af.segments.size(); ++si) {
        const driver::SegmentTiming& as = af.segments[si];
        const driver::SegmentTiming& cs = cf.segments[si];
        if (as.bcet != cs.bcet || as.wcet != cs.wcet)
          return fail("slice: segment BCET/WCET diverged with slicing off");
        if (as.feasible != cs.feasible || as.infeasible != cs.infeasible ||
            as.unknown != cs.unknown || as.validated != cs.validated ||
            as.mismatched != cs.mismatched)
          return fail("slice: segment tallies diverged with slicing off");
        if (as.paths.size() != cs.paths.size())
          return fail("slice: path set diverged with slicing off");
        for (std::size_t p = 0; p < as.paths.size(); ++p) {
          if (as.paths[p].blocks != cs.paths[p].blocks ||
              as.paths[p].verdict != cs.paths[p].verdict ||
              as.paths[p].cost != cs.paths[p].cost)
            return fail("slice: path timing diverged with slicing off");
          if (as.paths[p].witness != cs.paths[p].witness)
            return fail("slice: witness diverged with slicing off");
          if (as.paths[p].decision_trace != cs.paths[p].decision_trace)
            return fail("slice: decision trace diverged with slicing off:" +
                        fmt_trace(as.paths[p].decision_trace) + " vs" +
                        fmt_trace(cs.paths[p].decision_trace));
        }
      }
    }
  }

  // ------------------------- witness stability (minimisation determinism)
  // Witnesses are preference-minimal models, so a repeated run must
  // reproduce them bit for bit.
  if (opts.check_witness_stability) {
    const PipelineResult again = Pipeline(popts).run(source);
    if (!again.ok) return fail("pipeline(again): " + again.error);
    const driver::SegmentTiming& at =
        again.functions.front().segments.front();
    if (at.paths.size() != st.paths.size())
      return fail("stability: path set changed across runs");
    for (std::size_t p = 0; p < st.paths.size(); ++p)
      if (at.paths[p].witness != st.paths[p].witness)
        return fail("stability: witness not stable across runs");
  }

  return oc;
}

}  // namespace tmg::fuzz
