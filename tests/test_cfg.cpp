#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cfg/paths.h"
#include "cfg/structure.h"
#include "minic/frontend.h"
#include "paper_examples.h"

namespace tmg::cfg {
namespace {

using minic::compile_or_die;

struct Built {
  std::unique_ptr<minic::Program> program;
  std::unique_ptr<FunctionCfg> f;
};

Built build(const char* src, const char* fn_name = nullptr) {
  Built b;
  b.program = compile_or_die(
      src, minic::SemaOptions{.warn_unbounded_loops = false});
  const minic::FunctionDef* fn = fn_name
                                     ? b.program->find_function(fn_name)
                                     : b.program->functions.front().get();
  b.f = build_cfg(*fn);
  return b;
}

std::uint64_t fn_paths(const Built& b) {
  PathAnalysis pa(*b.f);
  const PathCount pc = pa.function_paths();
  EXPECT_FALSE(pc.saturated());
  return pc.exact();
}

// ------------------------------------------------- Figure 1 (paper example)

TEST(Figure1, HasElevenBlocks) {
  Built b = build(testing::kFigure1Source);
  EXPECT_EQ(b.f->graph.size(), 11u);
}

TEST(Figure1, HasSixEndToEndPaths) {
  Built b = build(testing::kFigure1Source);
  EXPECT_EQ(fn_paths(b), 6u);
}

TEST(Figure1, ThreeDecisions) {
  Built b = build(testing::kFigure1Source);
  EXPECT_EQ(b.f->graph.decision_count(), 3u);
}

TEST(Figure1, OuterThenArmIsFourBlocksTwoPaths) {
  // "the four basic blocks having the id values 6, 3, 4, 5" — the then
  // branch of the first if: printf3-block, inner decision, printf4, printf5.
  Built b = build(testing::kFigure1Source);
  // function arm items: start, [p1p2], if1, if2, [p8], end
  ASSERT_EQ(b.f->body.items.size(), 6u);
  const Construct& if1 = *b.f->body.items[2].construct;
  ASSERT_EQ(if1.kind, ConstructKind::If);
  ASSERT_EQ(if1.arms.size(), 1u);  // no else
  const Arm& then_arm = if1.arms[0];
  EXPECT_EQ(then_arm.blocks().size(), 4u);
  PathAnalysis pa(*b.f);
  EXPECT_EQ(pa.arm_paths(then_arm).exact(), 2u);
  EXPECT_TRUE(then_arm.single_entry);
  ASSERT_TRUE(then_arm.entry.has_value());
  EXPECT_EQ(b.f->graph.edge(*then_arm.entry).kind, EdgeKind::True);
}

TEST(Figure1, StartAndEndAreEmptyBlocks) {
  Built b = build(testing::kFigure1Source);
  EXPECT_TRUE(b.f->graph.block(b.f->graph.entry()).empty());
  EXPECT_TRUE(b.f->graph.block(b.f->graph.exit_block()).empty());
}

TEST(Figure1, AllBlocksReachable) {
  Built b = build(testing::kFigure1Source);
  const auto reach = b.f->graph.reachable();
  EXPECT_TRUE(std::all_of(reach.begin(), reach.end(), [](bool r) { return r; }));
}

TEST(Figure1, EnumerationMatchesCount) {
  Built b = build(testing::kFigure1Source);
  std::vector<PathSpec> paths;
  const bool complete = enumerate_paths(*b.f, b.f->graph.entry(),
                                        b.f->body.blocks(), 100, paths);
  EXPECT_TRUE(complete);
  EXPECT_EQ(paths.size(), 6u);
  // Each path must have one choice per decision traversed.
  for (const PathSpec& p : paths) {
    EXPECT_GE(p.choices.size(), 2u);
    EXPECT_LE(p.choices.size(), 3u);
  }
}

TEST(Figure1, DotOutputMentionsAllBlocks) {
  Built b = build(testing::kFigure1Source);
  const std::string dot = b.f->graph.to_dot();
  for (BlockId i = 0; i < b.f->graph.size(); ++i)
    EXPECT_NE(dot.find("b" + std::to_string(i) + " "), std::string::npos);
}

// --------------------------------------------------------- shape: if/else

TEST(Shape, EmptyFunction) {
  Built b = build("void f(void) { }");
  // start and end only; start -> end
  EXPECT_EQ(b.f->graph.size(), 2u);
  EXPECT_EQ(fn_paths(b), 1u);
}

TEST(Shape, StraightLineSingleBlock) {
  Built b = build("void f(int a) { a = 1; a = 2; a = 3; }");
  EXPECT_EQ(b.f->graph.size(), 3u);  // start, body, end
  EXPECT_EQ(b.f->graph.block(2).stmts.size(), 3u);
  EXPECT_EQ(fn_paths(b), 1u);
}

TEST(Shape, IfWithoutElse) {
  Built b = build("void f(int a) { if (a) { a = 1; } }");
  // start, decision, then, end
  EXPECT_EQ(b.f->graph.size(), 4u);
  EXPECT_EQ(fn_paths(b), 2u);
}

TEST(Shape, IfElse) {
  Built b = build("void f(int a) { if (a) { a = 1; } else { a = 2; } }");
  EXPECT_EQ(b.f->graph.size(), 5u);
  EXPECT_EQ(fn_paths(b), 2u);
}

TEST(Shape, DecisionBlocksCarryNoStatements) {
  Built b = build(
      "void f(int a) { a = 1; if (a) { a = 2; } a = 3; if (a) { a = 4; } }");
  for (const BasicBlock& blk : b.f->graph.blocks()) {
    if (blk.is_decision()) {
      EXPECT_TRUE(blk.stmts.empty());
    }
  }
}

TEST(Shape, SequentialIfsShareNoBlocks) {
  Built b = build("void f(int a) { if (a) { a = 1; } if (a) { a = 2; } }");
  // start, d1, then1, d2, then2, end
  EXPECT_EQ(b.f->graph.size(), 6u);
  EXPECT_EQ(fn_paths(b), 4u);
}

TEST(Shape, NestedIfPathProduct) {
  Built b = build(
      "void f(int a, int b2) {"
      " if (a) { if (b2) { a = 1; } else { a = 2; } } else { a = 3; }"
      "}");
  EXPECT_EQ(fn_paths(b), 3u);
}

TEST(Shape, EmptyThenArm) {
  Built b = build("void f(int a) { if (a) { } a = 1; }");
  EXPECT_EQ(fn_paths(b), 2u);
  const Construct& c = *b.f->body.items[1].construct;
  EXPECT_TRUE(c.arms[0].empty());
}

TEST(Shape, ReturnCreatesEdgeToExit) {
  Built b = build("int f(int a) { if (a) { return 1; } return 2; }");
  EXPECT_EQ(fn_paths(b), 2u);
  int return_edges = 0;
  for (const BasicBlock& blk : b.f->graph.blocks())
    for (const Edge& e : blk.succs)
      if (e.kind == EdgeKind::Return) {
        ++return_edges;
        EXPECT_EQ(e.to, b.f->graph.exit_block());
      }
  EXPECT_EQ(return_edges, 2);
}

// -------------------------------------------------------------- switches

TEST(Shape, SwitchBreakTerminated) {
  Built b = build(
      "void f(int a) { switch (a) {"
      " case 1: a = 1; break; case 2: a = 2; break; default: a = 0; break;"
      "} }");
  // start, decision, 3 arms, end
  EXPECT_EQ(b.f->graph.size(), 6u);
  EXPECT_EQ(fn_paths(b), 3u);
}

TEST(Shape, SwitchWithoutDefaultAddsSkipPath) {
  Built b = build(
      "void f(int a) { switch (a) { case 1: a = 1; break; case 2: a = 2; "
      "break; } }");
  EXPECT_EQ(fn_paths(b), 3u);  // case1, case2, no-match
}

TEST(Shape, SwitchFallthroughCountsExactly) {
  // case 1 falls into case 2: paths are {1->body1->body2, 2->body2, skip}.
  Built b = build(
      "void f(int a) { switch (a) { case 1: a = 1; case 2: a = 2; break; } }");
  EXPECT_EQ(fn_paths(b), 3u);
  const Construct& sw = *b.f->body.items[1].construct;
  EXPECT_TRUE(sw.has_fallthrough);
  EXPECT_FALSE(sw.arms[1].single_entry);
}

TEST(Shape, SwitchSharedLabelsEmptyArm) {
  // `case 1: case 2: body` — the empty arm for label 1 falls through.
  Built b = build(
      "void f(int a) { switch (a) { case 1: case 2: a = 2; break; } }");
  EXPECT_EQ(fn_paths(b), 3u);
  const Construct& sw = *b.f->body.items[1].construct;
  // empty-arm fallthrough is label aliasing, not real fallthrough
  EXPECT_FALSE(sw.has_fallthrough);
}

TEST(Shape, SwitchCaseEdgeLabels) {
  Built b = build(
      "void f(int a) { switch (a) { case 4: a = 1; break; case 9: a = 2; "
      "break; } }");
  std::set<std::int64_t> labels;
  for (const Edge& e : b.f->graph.block(2).succs)
    if (e.kind == EdgeKind::Case) labels.insert(e.case_label);
  EXPECT_EQ(labels, (std::set<std::int64_t>{4, 9}));
}

TEST(Shape, NestedSwitchInCase) {
  Built b = build(
      "void f(int a, int b2) { switch (a) {"
      " case 1: switch (b2) { case 1: a = 1; break; default: a = 2; break; }"
      "         break;"
      " default: a = 0; break; } }");
  EXPECT_EQ(fn_paths(b), 3u);
}

// ------------------------------------------------------------------ loops

TEST(Loops, WhileBoundedPathCount) {
  // body has 1 path; k = 0..3 iterations -> 4 paths
  Built b = build("void f(int a) { __loopbound(3) while (a) { a -= 1; } }");
  EXPECT_EQ(fn_paths(b), 4u);
}

TEST(Loops, WhileWithBranchInBody) {
  // body has 2 paths; sum_{k=0..2} 2^k = 7
  Built b = build(
      "void f(int a) { __loopbound(2) while (a) {"
      " if (a > 2) { a -= 2; } else { a -= 1; } } }");
  EXPECT_EQ(fn_paths(b), 7u);
}

TEST(Loops, DoWhileBoundedPathCount) {
  // body runs 1..3 times, 1 path each -> 3 paths
  Built b = build(
      "void f(int a) { __loopbound(3) do { a -= 1; } while (a); }");
  EXPECT_EQ(fn_paths(b), 3u);
}

TEST(Loops, UnboundedLoopSaturates) {
  Built b = build("void f(int a) { while (a) { a -= 1; } }");
  PathAnalysis pa(*b.f);
  EXPECT_TRUE(pa.function_paths().saturated());
}

TEST(Loops, LoopWithBreakSaturates) {
  Built b = build(
      "void f(int a) { __loopbound(5) while (a) {"
      " if (a == 3) { break; } a -= 1; } }");
  PathAnalysis pa(*b.f);
  EXPECT_TRUE(pa.function_paths().saturated());
  const Construct& loop = *b.f->body.items[1].construct;
  EXPECT_TRUE(loop.loop_has_escape);
}

TEST(Loops, BackEdgeIsMarked) {
  Built b = build("void f(int a) { __loopbound(2) while (a) { a -= 1; } }");
  int back_edges = 0;
  for (const BasicBlock& blk : b.f->graph.blocks())
    for (const Edge& e : blk.succs)
      if (e.back) ++back_edges;
  EXPECT_EQ(back_edges, 1);
}

TEST(Loops, ForLoopStepIsContinueTarget) {
  Built b = build(
      "void f(void) { int s = 0;"
      " __loopbound(4) for (int i = 0; i < 4; i++) {"
      "   if (i == 2) { continue; } s += i; } }");
  // continue must reach the step block, then the decision
  PathAnalysis pa(*b.f);
  EXPECT_FALSE(pa.function_paths().saturated());
}

TEST(Loops, NestedLoopFactorsMultiply) {
  // inner: sum_{k=0..2} 1 = 3 paths per outer-iteration body.
  // outer: sum_{k=0..2} 3^k = 1 + 3 + 9 = 13.
  Built b = build(
      "void f(int a, int b2) { __loopbound(2) while (a) {"
      " __loopbound(2) while (b2) { b2 -= 1; } a -= 1; } }");
  EXPECT_EQ(fn_paths(b), 13u);
}

TEST(Loops, EnumerationMatchesCountWithLoops) {
  Built b = build("void f(int a) { __loopbound(3) while (a) { a -= 1; } }");
  std::vector<PathSpec> paths;
  const bool complete = enumerate_paths(*b.f, b.f->graph.entry(),
                                        b.f->body.blocks(), 100, paths);
  EXPECT_TRUE(complete);
  EXPECT_EQ(paths.size(), 4u);
}

TEST(Loops, DoWhileEnumerationMatchesCount) {
  Built b = build(
      "void f(int a) { __loopbound(3) do { a -= 1; } while (a); }");
  std::vector<PathSpec> paths;
  const bool complete = enumerate_paths(*b.f, b.f->graph.entry(),
                                        b.f->body.blocks(), 100, paths);
  EXPECT_TRUE(complete);
  EXPECT_EQ(paths.size(), 3u);
}

// ------------------------------------------------------------- invariants

const char* kMixedSource = R"(
extern void leaf(void) __cost(3);
void mixed(int a, int b2, int c)
{
  int acc = 0;
  if (a > 0) { acc += 1; } else { acc -= 1; }
  switch (b2) {
    case 0: acc = 0; break;
    case 1: if (c) { acc = 1; } break;
    default: leaf(); break;
  }
  __loopbound(3) while (c > 0) { c -= 1; acc += c; }
  if (acc > 10) { acc = 10; }
}
)";

TEST(Invariants, PredsConsistentWithSuccs) {
  Built b = build(kMixedSource, "mixed");
  const auto& preds = b.f->graph.preds();
  std::size_t succ_count = 0, pred_count = 0;
  for (const BasicBlock& blk : b.f->graph.blocks()) succ_count += blk.succs.size();
  for (const auto& p : preds) pred_count += p.size();
  EXPECT_EQ(succ_count, pred_count);
}

TEST(Invariants, StructureTreeCoversEveryBlockOnce) {
  Built b = build(kMixedSource, "mixed");
  std::vector<BlockId> all = b.f->body.blocks();
  std::set<BlockId> unique(all.begin(), all.end());
  EXPECT_EQ(all.size(), unique.size()) << "no block appears in two regions";
  EXPECT_EQ(all.size(), b.f->graph.size()) << "every block is covered";
}

TEST(Invariants, SingleEntryArmsReallyHaveOneEntry) {
  Built b = build(kMixedSource, "mixed");
  b.f->graph.finalize();
  std::function<void(const Arm&)> check_arm = [&](const Arm& arm) {
    if (!arm.empty() && arm.single_entry && arm.entry.has_value()) {
      const BlockId first = arm_entry_block(arm);
      std::set<BlockId> members;
      for (BlockId bl : arm.blocks()) members.insert(bl);
      // every predecessor of `first` outside the arm must be the entry edge
      int external = 0;
      for (BlockId p : b.f->graph.preds()[first])
        if (!members.count(p)) ++external;
      EXPECT_EQ(external, 1) << "arm entry block " << first;
    }
    for (const ArmItem& item : arm.items)
      if (!item.is_block())
        for (const Arm& sub : item.construct->arms) check_arm(sub);
  };
  check_arm(b.f->body);
}

TEST(Invariants, TopoOrderRespectsForwardEdges) {
  Built b = build(kMixedSource, "mixed");
  const auto order = b.f->graph.topo_order();
  std::vector<std::size_t> pos(b.f->graph.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const BasicBlock& blk : b.f->graph.blocks())
    for (const Edge& e : blk.succs)
      if (!e.back) {
        EXPECT_LT(pos[blk.id], pos[e.to]);
      }
}

TEST(Invariants, EnumerationAgreesWithCountingOnMixed) {
  Built b = build(kMixedSource, "mixed");
  PathAnalysis pa(*b.f);
  const PathCount pc = pa.function_paths();
  ASSERT_FALSE(pc.saturated());
  std::vector<PathSpec> paths;
  const bool complete = enumerate_paths(*b.f, b.f->graph.entry(),
                                        b.f->body.blocks(), 10000, paths);
  EXPECT_TRUE(complete);
  EXPECT_EQ(paths.size(), pc.exact());
}

// ------------------------------------------- parameterized: path counting

struct PathCase {
  const char* name;
  const char* src;
  std::uint64_t expected;
};

class PathCounting : public ::testing::TestWithParam<PathCase> {};

TEST_P(PathCounting, CountMatchesAndEnumerationAgrees) {
  Built b = build(GetParam().src);
  EXPECT_EQ(fn_paths(b), GetParam().expected);
  std::vector<PathSpec> paths;
  const bool complete = enumerate_paths(*b.f, b.f->graph.entry(),
                                        b.f->body.blocks(), 100000, paths);
  EXPECT_TRUE(complete);
  EXPECT_EQ(paths.size(), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PathCounting,
    ::testing::Values(
        PathCase{"two_ifs", "void f(int a){ if(a){a=1;} if(a){a=2;} }", 4},
        PathCase{"three_ifs",
                 "void f(int a){ if(a){a=1;} if(a){a=2;} if(a){a=3;} }", 8},
        PathCase{"if_else_chain",
                 "void f(int a){ if(a>1){a=1;} else { if(a>2){a=2;} else "
                 "{a=3;} } }",
                 3},
        PathCase{"switch4",
                 "void f(int a){ switch(a){ case 1: a=1; break; case 2: a=2; "
                 "break; case 3: a=3; break; default: a=0; break; } }",
                 4},
        PathCase{"ternary_is_not_branching",
                 "void f(int a){ a = a > 0 ? 1 : 2; }", 1},
        PathCase{"early_return",
                 "int f(int a){ if(a){ return 1; } a = 2; return 0; }", 2},
        PathCase{"loop2_if",
                 "void f(int a){ __loopbound(2) while(a){ if(a>1){a-=2;} else "
                 "{a-=1;} } }",
                 7},
        PathCase{"if_then_loop",
                 "void f(int a){ if(a){a=1;} __loopbound(1) while(a){ a-=1; } "
                 "}",
                 4},
        PathCase{"dowhile_if",
                 "void f(int a){ __loopbound(2) do { if(a>1){a-=2;} else "
                 "{a-=1;} } while(a); }",
                 6}),  // 2 + 4
    [](const ::testing::TestParamInfo<PathCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tmg::cfg
