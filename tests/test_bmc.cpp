#include <gtest/gtest.h>

#include "bmc/bitblast.h"
#include "bmc/bmc.h"
#include "cfg/paths.h"
#include "cfg/structure.h"
#include "minic/eval.h"
#include "minic/frontend.h"
#include "opt/passes.h"
#include "support/rng.h"
#include "testgen/interp.h"
#include "tsys/translate.h"

namespace tmg::bmc {
namespace {

using minic::BinOp;
using minic::Type;

// ------------------------------------------------- bit-blaster vs. eval

/// Checks one binary operator over all pairs of a small operand set.
void check_binop(BinOp op, Type type) {
  const std::vector<std::int64_t> samples = {
      0, 1, 2, 3, 5, 7, 8, 15, 16, 100, -1, -2, -7, -128, 127,
      minic::type_min(type), minic::type_max(type)};
  const int w = minic::type_bits(type);
  const bool sg = minic::type_is_signed(type);
  for (std::int64_t a : samples) {
    for (std::int64_t b : samples) {
      const std::int64_t aw = minic::wrap_to_type(a, type);
      const std::int64_t bw = minic::wrap_to_type(b, type);
      const bool boolean = minic::binop_is_boolean(op);
      const std::int64_t expected =
          minic::eval_binop(op, aw, bw, type, boolean ? Type::Bool : type);

      sat::Solver solver;
      BitBlaster bb(solver);
      const BitVec av = bb.constant(aw, w, sg);
      const BitVec bv = bb.constant(bw, w, sg);
      BitVec r;
      switch (op) {
        case BinOp::Add: r = bb.add(av, bv); break;
        case BinOp::Sub: r = bb.sub(av, bv); break;
        case BinOp::Mul: r = bb.mul(av, bv); break;
        case BinOp::Div: r = bb.div(av, bv); break;
        case BinOp::Rem: r = bb.rem(av, bv); break;
        case BinOp::BitAnd: r = bb.bit_and(av, bv); break;
        case BinOp::BitOr: r = bb.bit_or(av, bv); break;
        case BinOp::BitXor: r = bb.bit_xor(av, bv); break;
        case BinOp::Shl: r = bb.shl(av, bv); break;
        case BinOp::Shr: r = bb.shr(av, bv); break;
        case BinOp::Eq: r = bb.from_lit(bb.eq(av, bv)); break;
        case BinOp::Ne: r = bb.from_lit(bb.ne(av, bv)); break;
        case BinOp::Lt: r = bb.from_lit(bb.lt(av, bv)); break;
        case BinOp::Le: r = bb.from_lit(bb.le(av, bv)); break;
        case BinOp::Gt: r = bb.from_lit(bb.lt(bv, av)); break;
        case BinOp::Ge: r = bb.from_lit(bb.le(bv, av)); break;
        default: return;
      }
      ASSERT_EQ(solver.solve(), sat::Result::Sat);
      std::int64_t got = bb.decode(r);
      if (boolean) got = got & 1;
      EXPECT_EQ(got, expected)
          << minic::binop_spelling(op) << " on " << aw << ", " << bw
          << " type " << minic::type_name(type);
    }
  }
}

class BitBlastOps
    : public ::testing::TestWithParam<std::tuple<BinOp, Type>> {};

TEST_P(BitBlastOps, MatchesEvalSemantics) {
  check_binop(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BitBlastOps,
    ::testing::Combine(
        ::testing::Values(BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div,
                          BinOp::Rem, BinOp::BitAnd, BinOp::BitOr,
                          BinOp::BitXor, BinOp::Shl, BinOp::Shr, BinOp::Eq,
                          BinOp::Ne, BinOp::Lt, BinOp::Le, BinOp::Gt,
                          BinOp::Ge),
        ::testing::Values(Type::UInt8, Type::Int8, Type::Int16)),
    [](const auto& info) {
      std::string op = minic::binop_spelling(std::get<0>(info.param));
      std::string nice;
      for (char c : op) {
        switch (c) {
          case '+': nice += "Add"; break;
          case '-': nice += "Sub"; break;
          case '*': nice += "Mul"; break;
          case '/': nice += "Div"; break;
          case '%': nice += "Rem"; break;
          case '&': nice += "And"; break;
          case '|': nice += "Or"; break;
          case '^': nice += "Xor"; break;
          case '<': nice += "Lt"; break;
          case '>': nice += "Gt"; break;
          case '=': nice += "Eq"; break;
          case '!': nice += "Not"; break;
          default: nice += c;
        }
      }
      return nice + "_" + std::to_string(minic::type_bits(std::get<1>(info.param))) +
             (minic::type_is_signed(std::get<1>(info.param)) ? "s" : "u");
    });

TEST(BitBlast, FreshVariableSolvesToAnyValue) {
  sat::Solver solver;
  BitBlaster bb(solver);
  const BitVec x = bb.fresh(8, false);
  const BitVec c = bb.constant(42, 8, false);
  solver.add_clause(bb.eq(x, c));
  ASSERT_EQ(solver.solve(), sat::Result::Sat);
  EXPECT_EQ(bb.decode(x), 42);
}

TEST(BitBlast, UnsatisfiableEquality) {
  sat::Solver solver;
  BitBlaster bb(solver);
  const BitVec x = bb.fresh(8, false);
  solver.add_clause(bb.eq(x, bb.constant(1, 8, false)));
  solver.add_clause(bb.eq(x, bb.constant(2, 8, false)));
  EXPECT_EQ(solver.solve(), sat::Result::Unsat);
}

TEST(BitBlast, MuxSelects) {
  sat::Solver solver;
  BitBlaster bb(solver);
  const BitVec a = bb.constant(10, 8, false);
  const BitVec b = bb.constant(20, 8, false);
  const BitVec sel_true = bb.mux(bb.true_lit(), a, b);
  const BitVec sel_false = bb.mux(bb.false_lit(), a, b);
  ASSERT_EQ(solver.solve(), sat::Result::Sat);
  EXPECT_EQ(bb.decode(sel_true), 10);
  EXPECT_EQ(bb.decode(sel_false), 20);
}

TEST(BitBlast, AndAllConjunction) {
  sat::Solver solver;
  BitBlaster bb(solver);
  const BitVec x = bb.fresh(4, false);
  // and_all over the bits of x == 15.
  const sat::Lit all = bb.and_all(x.bits);
  EXPECT_EQ(bb.and_all({}), bb.true_lit());
  EXPECT_EQ(bb.and_all({bb.false_lit(), x.bits[0]}), bb.false_lit());
  EXPECT_EQ(bb.and_all({bb.true_lit(), x.bits[0]}), x.bits[0]);
  solver.add_clause(all);
  ASSERT_EQ(solver.solve(), sat::Result::Sat);
  EXPECT_EQ(bb.decode(x), 15);
  solver.add_clause(~x.bits[2]);
  EXPECT_EQ(solver.solve(), sat::Result::Unsat);
}

TEST(BitBlast, SignExtension) {
  sat::Solver solver;
  BitBlaster bb(solver);
  const BitVec a = bb.constant(-3, 8, true);
  const BitVec wide = bb.resize(a, 16);
  ASSERT_EQ(solver.solve(), sat::Result::Sat);
  EXPECT_EQ(bb.decode(wide), -3);
  const BitVec u = bb.constant(200, 8, false);
  const BitVec uw = bb.resize(u, 16);
  EXPECT_EQ(bb.decode(uw), 200);
}

// ---------------------------------------------------------- BMC on programs

struct Built {
  std::unique_ptr<minic::Program> program;
  std::unique_ptr<cfg::FunctionCfg> f;
  std::unique_ptr<tsys::TranslationResult> tr;
};

Built build(const char* src) {
  Built b;
  b.program = minic::compile_or_die(
      src, minic::SemaOptions{.warn_unbounded_loops = false});
  b.f = cfg::build_cfg(*b.program->functions.front());
  DiagnosticEngine diags;
  b.tr = tsys::translate(*b.program, *b.f, diags);
  EXPECT_TRUE(b.tr != nullptr) << diags.str();
  return b;
}

/// Extracts the test-data vector (inputs in Program::inputs_of order) from
/// a BMC result.
std::vector<std::int64_t> test_data(const Built& b, const BmcResult& r) {
  std::vector<std::int64_t> out;
  for (const minic::Symbol* s : b.program->inputs_of(*b.f->fn)) {
    const tsys::VarId v = b.tr->var_of_symbol[s->id];
    out.push_back(r.initial_values[v]);
  }
  return out;
}

TEST(Bmc, FindsInputForSimpleBranch) {
  Built b = build("void f(int a) { if (a == 1234) { a = 0; } }");
  // force the true edge of the only decision
  const auto& blk = b.f->graph;
  cfg::EdgeRef true_edge{};
  for (const auto& bb2 : blk.blocks())
    if (bb2.is_decision())
      for (std::uint32_t i = 0; i < bb2.succs.size(); ++i)
        if (bb2.succs[i].kind == cfg::EdgeKind::True)
          true_edge = cfg::EdgeRef{bb2.id, i};
  BmcQuery q;
  q.forced_choices = {true_edge};
  q.must_take = true_edge;
  const BmcResult r = solve(b.tr->ts, q);
  ASSERT_EQ(r.status, BmcStatus::TestData);
  EXPECT_EQ(test_data(b, r)[0], 1234);
}

TEST(Bmc, InfeasiblePathDetected) {
  // i == 0 and then i != 0 with no write in between: the paper's infeasible
  // path case — UNSAT proves infeasibility.
  Built b = build(
      "void f(int i) { int x = 0; if (i == 0) { x = 1; } if (i != 0) { x = 2; "
      "} }");
  // force both true edges
  BmcQuery q;
  for (const auto& bb2 : b.f->graph.blocks())
    if (bb2.is_decision())
      for (std::uint32_t i = 0; i < bb2.succs.size(); ++i)
        if (bb2.succs[i].kind == cfg::EdgeKind::True)
          q.forced_choices.push_back(cfg::EdgeRef{bb2.id, i});
  const BmcResult r = solve(b.tr->ts, q);
  EXPECT_EQ(r.status, BmcStatus::Infeasible);
}

TEST(Bmc, StepsCountsTransitions) {
  Built b = build("void f(int a) { a = 1; a = 2; a = 3; }");
  const BmcResult r = solve(b.tr->ts, BmcQuery{});
  ASSERT_EQ(r.status, BmcStatus::TestData);
  EXPECT_EQ(r.steps, 3u);
}

TEST(Bmc, ReportsCnfMetrics) {
  Built b = build("void f(int a) { if (a > 5) { a = 1; } }");
  const BmcResult r = solve(b.tr->ts, BmcQuery{});
  EXPECT_GT(r.cnf_vars, 0u);
  EXPECT_GT(r.cnf_clauses, 0u);
  EXPECT_GT(r.memory_bytes, 0u);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Bmc, MustTakeWithoutForcedChoicesReachesArm) {
  // only require the then-arm to be entered; prefix free
  Built b = build(
      "void f(int a, int b2) { if (a > 0) { a = 1; } if (b2 == 77) { b2 = 0; "
      "} }");
  cfg::EdgeRef second_true{};
  int decision_no = 0;
  for (const auto& bb2 : b.f->graph.blocks()) {
    if (!bb2.is_decision()) continue;
    ++decision_no;
    if (decision_no == 2)
      for (std::uint32_t i = 0; i < bb2.succs.size(); ++i)
        if (bb2.succs[i].kind == cfg::EdgeKind::True)
          second_true = cfg::EdgeRef{bb2.id, i};
  }
  BmcQuery q;
  q.must_take = second_true;
  const BmcResult r = solve(b.tr->ts, q);
  ASSERT_EQ(r.status, BmcStatus::TestData);
  EXPECT_EQ(test_data(b, r)[1], 77);
}

TEST(Bmc, SwitchCaseReachable) {
  Built b = build(
      "__input(0, 5) int sel;"
      "void f(void) { int x; switch (sel) { case 3: x = 1; break; "
      "default: x = 0; break; } }");
  // force the case-3 edge
  BmcQuery q;
  for (const auto& bb2 : b.f->graph.blocks())
    if (bb2.term == cfg::TermKind::Switch)
      for (std::uint32_t i = 0; i < bb2.succs.size(); ++i)
        if (bb2.succs[i].kind == cfg::EdgeKind::Case &&
            bb2.succs[i].case_label == 3) {
          q.forced_choices.push_back(cfg::EdgeRef{bb2.id, i});
          q.must_take = cfg::EdgeRef{bb2.id, i};
        }
  const BmcResult r = solve(b.tr->ts, q);
  ASSERT_EQ(r.status, BmcStatus::TestData);
  EXPECT_EQ(test_data(b, r)[0], 3);
}

TEST(Bmc, InputRangeRespected) {
  // sel is constrained to [0,2]; case 4 is structurally present but
  // unreachable within the input domain.
  Built b = build(
      "__input(0, 2) int sel;"
      "void f(void) { int x; switch (sel) { case 4: x = 1; break; "
      "default: x = 0; break; } }");
  BmcQuery q;
  for (const auto& bb2 : b.f->graph.blocks())
    if (bb2.term == cfg::TermKind::Switch)
      for (std::uint32_t i = 0; i < bb2.succs.size(); ++i)
        if (bb2.succs[i].kind == cfg::EdgeKind::Case)
          q.must_take = cfg::EdgeRef{bb2.id, i};
  const BmcResult r = solve(b.tr->ts, q);
  EXPECT_EQ(r.status, BmcStatus::Infeasible);
}

// -------------------------- differential: every feasible enumerated path

const char* kDiffSources[] = {
    // nested ifs with arithmetic
    "void f(int a, int b2) {"
    " int x = 0;"
    " if (a + b2 > 10) { x = 1; } else { x = 2; }"
    " if (a * 2 == b2) { x += 10; }"
    "}",
    // switch + if
    "__input(0, 3) int m;"
    "void f(int a) {"
    " int r = 0;"
    " switch (m) { case 0: r = 1; break; case 1: if (a > 0) { r = 2; } "
    "break; default: r = 3; break; }"
    "}",
    // correlated conditions (some paths infeasible)
    "void f(int i) {"
    " int x = 0;"
    " if (i == 0) { x = 1; }"
    " if (i == 1) { x = 2; }"
    " if (i == 2) { x = 3; }"
    "}",
};

class BmcDifferential : public ::testing::TestWithParam<int> {};

TEST_P(BmcDifferential, AgreesWithInterpreterOnEveryPath) {
  Built b = build(kDiffSources[GetParam()]);
  std::vector<cfg::PathSpec> paths;
  const bool complete = cfg::enumerate_paths(
      *b.f, b.f->graph.entry(), b.f->body.blocks(), 1000, paths);
  ASSERT_TRUE(complete);

  testgen::Interpreter interp(*b.program, *b.f);
  int feasible = 0, infeasible = 0;
  for (const cfg::PathSpec& p : paths) {
    BmcQuery q;
    q.forced_choices = p.choices;
    const BmcResult r = solve(b.tr->ts, q);
    ASSERT_NE(r.status, BmcStatus::Unknown);
    if (r.status == BmcStatus::TestData) {
      ++feasible;
      // replay: the interpreter must take exactly the forced choices
      const auto trace = interp.run(test_data(b, r));
      ASSERT_TRUE(trace.terminated);
      ASSERT_EQ(trace.choices.size(), p.choices.size());
      for (std::size_t i = 0; i < p.choices.size(); ++i) {
        EXPECT_EQ(trace.choices[i].from, p.choices[i].from);
        EXPECT_EQ(trace.choices[i].succ_index, p.choices[i].succ_index);
      }
    } else {
      ++infeasible;
    }
  }
  EXPECT_GT(feasible, 0);
  if (GetParam() == 2) {
    // the correlated-ifs program has 8 structural but 4 feasible paths
    EXPECT_EQ(feasible, 4);
    EXPECT_EQ(infeasible, 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, BmcDifferential,
                         ::testing::Values(0, 1, 2));

// --------------------------------------- per-iteration decision schedules

/// A loop whose body branches on the loop counter: the only feasible
/// whole-run schedule takes the then-arm in iteration 0 and the else-arm
/// in iteration 1 — inexpressible as a global forced-choice policy.
constexpr const char* kCounterLoop =
    "void f(int n) {"
    " int acc = 0;"
    " __loopbound(2) for (int i = 0; i < 2; i += 1) {"
    "  if (i == 0) { acc += 1; } else { acc += 2; }"
    " }"
    "}";

/// All whole-function PathSpecs of a built program.
std::vector<cfg::PathSpec> whole_function_paths(const Built& b) {
  std::vector<cfg::PathSpec> paths;
  EXPECT_TRUE(cfg::enumerate_paths(*b.f, b.f->graph.entry(),
                                   b.f->body.blocks(), 1000, paths));
  return paths;
}

TEST(Schedule, WalkRealisesEveryEnumeratedPath) {
  Built b = build(kCounterLoop);
  const std::vector<cfg::PathSpec> paths = whole_function_paths(b);
  ASSERT_FALSE(paths.empty());
  for (const cfg::PathSpec& p : paths) {
    const auto seq =
        walk_schedule(b.tr->ts, DecisionSchedule{p.choices, false}, 1000);
    ASSERT_TRUE(seq.has_value());
    EXPECT_GE(seq->size(), p.choices.size());
    // The walk ends at the final location having consumed every choice:
    // its transitions must chain from initial to final.
    tsys::Loc loc = b.tr->ts.initial;
    for (const std::uint32_t tid : *seq) {
      EXPECT_EQ(b.tr->ts.transitions[tid].from, loc);
      loc = b.tr->ts.transitions[tid].to;
    }
    EXPECT_EQ(loc, b.tr->ts.final);
  }
}

TEST(Schedule, PerIterationChoicesAreConclusive) {
  Built b = build(kCounterLoop);
  testgen::Interpreter interp(*b.program, *b.f);
  int feasible = 0;
  for (const cfg::PathSpec& p : whole_function_paths(b)) {
    BmcQuery q;
    q.schedule = DecisionSchedule{p.choices, false};
    const BmcResult r = solve(b.tr->ts, q);
    // Every verdict is definite: the exact path encoding leaves no
    // Unknown even though the loop revisits its decisions.
    ASSERT_NE(r.status, BmcStatus::Unknown);
    if (r.status != BmcStatus::TestData) continue;
    ++feasible;
    EXPECT_TRUE(r.exact_path);
    EXPECT_TRUE(r.schedule_realised);
    // The witness's decision trace IS the schedule, and the reference
    // interpreter reproduces it decision for decision.
    EXPECT_EQ(r.decision_trace, p.choices);
    const auto trace = interp.run(test_data(b, r));
    ASSERT_TRUE(trace.terminated);
    EXPECT_EQ(trace.choices, p.choices);
  }
  // Exactly one schedule is feasible: then in iteration 0, else in 1
  // (the loop always runs both iterations).
  EXPECT_EQ(feasible, 1);
}

TEST(Schedule, MixedIterationScheduleFeasibleWherePolicyCannotSay) {
  Built b = build(kCounterLoop);
  // The feasible mixed schedule, located via the interpreter's own trace.
  testgen::Interpreter interp(*b.program, *b.f);
  const auto trace = interp.run({0});
  ASSERT_TRUE(trace.terminated);

  // As a global policy the mixed trace is contradictory — the legacy
  // encoding cannot even pose the query (solve falls back to Unknown).
  BmcQuery legacy;
  legacy.forced_choices = trace.choices;
  legacy.schedule = DecisionSchedule{trace.choices, false};
  // Force a walk failure by lying about the system: cap the walk at 1.
  // (Direct API check; the full query path is covered below.)
  EXPECT_FALSE(
      walk_schedule(b.tr->ts, DecisionSchedule{trace.choices, false}, 1)
          .has_value());

  // Through the real query the schedule is realised and SAT.
  BmcQuery q;
  q.schedule = DecisionSchedule{trace.choices, false};
  const BmcResult r = solve(b.tr->ts, q);
  EXPECT_EQ(r.status, BmcStatus::TestData);
  EXPECT_TRUE(r.exact_path);
}

/// The if construct nested in kCounterLoop's loop body, via the
/// structure tree (edge-kind heuristics cannot tell the loop decision
/// from the if decision — both are Branch blocks with mixed outcomes).
const cfg::Construct* counter_loop_if(const Built& b) {
  const cfg::Construct* loop = nullptr;
  for (const cfg::ArmItem& it : b.f->body.items)
    if (!it.is_block() && (it.construct->kind == cfg::ConstructKind::While ||
                           it.construct->kind == cfg::ConstructKind::DoWhile))
      loop = it.construct.get();
  if (loop == nullptr) return nullptr;
  for (const cfg::ArmItem& it : loop->arms[0].items)
    if (!it.is_block() && it.construct->kind == cfg::ConstructKind::If)
      return it.construct.get();
  return nullptr;
}

/// The (from, succ_index) of the given edge kind at a decision block.
cfg::EdgeRef decision_edge(const Built& b, cfg::BlockId block,
                           cfg::EdgeKind kind) {
  const cfg::BasicBlock& blk = b.f->graph.block(block);
  for (std::uint32_t i = 0; i < blk.succs.size(); ++i)
    if (blk.succs[i].kind == kind) return cfg::EdgeRef{block, i};
  return cfg::EdgeRef{};
}

TEST(Schedule, InfeasibleScheduleProvenAtExactDepth) {
  Built b = build(kCounterLoop);
  // Build the all-then schedule: replace every choice at the if decision
  // in the feasible trace with its then edge.
  testgen::Interpreter interp(*b.program, *b.f);
  const auto trace = interp.run({0});
  const cfg::Construct* ifc = counter_loop_if(b);
  ASSERT_NE(ifc, nullptr);
  const cfg::EdgeRef then_edge =
      decision_edge(b, ifc->decision, cfg::EdgeKind::True);
  std::vector<cfg::EdgeRef> all_then = trace.choices;
  bool replaced = false;
  for (cfg::EdgeRef& c : all_then) {
    if (c.from == ifc->decision && c.succ_index != then_edge.succ_index) {
      c = then_edge;  // iteration 1 now also claims the then-arm
      replaced = true;
    }
  }
  ASSERT_TRUE(replaced);

  BmcQuery q;
  q.schedule = DecisionSchedule{all_then, false};
  const BmcResult r = solve(b.tr->ts, q);
  // i == 0 fails in iteration 1: conclusively infeasible, not Unknown.
  EXPECT_EQ(r.status, BmcStatus::Infeasible);
  EXPECT_TRUE(r.exact_path);
}

TEST(Schedule, AnchoredWindowFindsSomeTraversal) {
  Built b = build(kCounterLoop);
  // One traversal of the loop body taking the ELSE arm exists (iteration
  // 1) even though a global else-policy is contradictory for iteration 0.
  const cfg::Construct* ifc = counter_loop_if(b);
  ASSERT_NE(ifc, nullptr);
  const cfg::EdgeRef else_edge =
      decision_edge(b, ifc->decision, cfg::EdgeKind::False);
  ASSERT_NE(else_edge.from, cfg::kInvalidBlock);

  BmcQuery q;
  q.schedule = DecisionSchedule{{else_edge}, /*anchored=*/true};
  // Anchored windows need the full loop unrolled (the pipeline computes
  // this from the loop bounds; here it is explicit).
  BmcOptions opts;
  opts.max_steps = 40;
  const BmcResult r = solve(b.tr->ts, q, opts);
  ASSERT_EQ(r.status, BmcStatus::TestData);
  EXPECT_TRUE(r.schedule_realised);
  EXPECT_FALSE(r.exact_path);  // window encoding, not the exact path
  // The witness's full trace contains the else edge.
  bool seen = false;
  for (const cfg::EdgeRef& c : r.decision_trace) seen |= c == else_edge;
  EXPECT_TRUE(seen);
}

TEST(Schedule, UnrealisableScheduleFallsBackGracefully) {
  Built b = build(kCounterLoop);
  // A schedule naming a nonexistent decision edge cannot be walked; with
  // conflicting outcomes it cannot be pinned as a policy either.
  std::vector<cfg::EdgeRef> nonsense = {cfg::EdgeRef{9999, 0},
                                        cfg::EdgeRef{9999, 1}};
  BmcQuery q;
  q.schedule = DecisionSchedule{nonsense, false};
  const BmcResult r = solve(b.tr->ts, q);
  EXPECT_EQ(r.status, BmcStatus::Unknown);
  EXPECT_FALSE(r.schedule_realised);
}

TEST(Schedule, SurvivesOptimisationPasses) {
  // Decision origins survive the Section 3.2 passes, so the same
  // schedules walk and solve identically on the optimised system.
  Built b = build(kCounterLoop);
  Built o = build(kCounterLoop);
  opt::run_passes(o.tr->ts, opt::all_passes());
  for (const cfg::PathSpec& p : whole_function_paths(b)) {
    BmcQuery q;
    q.schedule = DecisionSchedule{p.choices, false};
    const BmcResult rb = solve(b.tr->ts, q);
    const BmcResult ro = solve(o.tr->ts, q);
    EXPECT_EQ(static_cast<int>(rb.status), static_cast<int>(ro.status));
    if (rb.status == BmcStatus::TestData)
      EXPECT_EQ(rb.decision_trace, ro.decision_trace);
  }
}

// ------------------------------------------------- witness minimisation

TEST(WitnessMinimisation, PrefersZeroWhenDomainAllowsIt) {
  // `a >= -5` admits many inputs; the minimised witness must settle on 0.
  Built b = build("void f(int a) { if (a >= -5) { a = 1; } }");
  cfg::EdgeRef true_edge{};
  for (const auto& bb2 : b.f->graph.blocks())
    if (bb2.is_decision())
      for (std::uint32_t i = 0; i < bb2.succs.size(); ++i)
        if (bb2.succs[i].kind == cfg::EdgeKind::True)
          true_edge = cfg::EdgeRef{bb2.id, i};
  BmcQuery q;
  q.forced_choices = {true_edge};
  q.must_take = true_edge;
  const BmcResult r = solve(b.tr->ts, q);
  ASSERT_EQ(r.status, BmcStatus::TestData);
  EXPECT_EQ(test_data(b, r)[0], 0);
}

TEST(WitnessMinimisation, FindsSmallestFeasibleWhenZeroInfeasible) {
  // 0 fails the guard; the smallest feasible value is 43.
  Built b = build("void f(int a) { if (a > 42) { a = 1; } }");
  cfg::EdgeRef true_edge{};
  for (const auto& bb2 : b.f->graph.blocks())
    if (bb2.is_decision())
      for (std::uint32_t i = 0; i < bb2.succs.size(); ++i)
        if (bb2.succs[i].kind == cfg::EdgeKind::True)
          true_edge = cfg::EdgeRef{bb2.id, i};
  BmcQuery q;
  q.forced_choices = {true_edge};
  q.must_take = true_edge;
  const BmcResult r = solve(b.tr->ts, q);
  ASSERT_EQ(r.status, BmcStatus::TestData);
  EXPECT_EQ(test_data(b, r)[0], 43);
}

TEST(WitnessMinimisation, AnchorsOnDomainLowerBoundWithoutZero) {
  // The declared domain excludes 0: the anchor is the domain lower bound.
  Built b = build(
      "__input(5, 9) int sel;"
      "void f(void) { int x = 0; if (sel >= 5) { x = 1; } }");
  const BmcResult r = solve(b.tr->ts, BmcQuery{});
  ASSERT_EQ(r.status, BmcStatus::TestData);
  const tsys::VarId v =
      b.tr->var_of_symbol[b.program->inputs_of(*b.f->fn)[0]->id];
  EXPECT_EQ(r.initial_values[v], 5);
}

TEST(WitnessMinimisation, LaterVariablesMinimiseUnderEarlierPins) {
  // Greedy VarId order: a settles on its minimum first, then b2
  // minimises under a's pin (a + b2 == 10 -> a = 0, b2 = 10).
  Built b = build(
      "void f(int a, int b2) { if (a + b2 == 10) { a = 1; } "
      "if (a >= -30000) { b2 = 1; } }");
  cfg::EdgeRef first_true{};
  bool found = false;
  for (const auto& bb2 : b.f->graph.blocks()) {
    if (!bb2.is_decision() || found) continue;
    for (std::uint32_t i = 0; i < bb2.succs.size(); ++i)
      if (bb2.succs[i].kind == cfg::EdgeKind::True) {
        first_true = cfg::EdgeRef{bb2.id, i};
        found = true;
      }
  }
  BmcQuery q;
  q.forced_choices = {first_true};
  q.must_take = first_true;
  const BmcResult r = solve(b.tr->ts, q);
  ASSERT_EQ(r.status, BmcStatus::TestData);
  const auto data = test_data(b, r);
  EXPECT_EQ(data[0], 0);
  EXPECT_EQ(data[1], 10);
}

TEST(WitnessMinimisation, DisablingItStillYieldsAValidWitness) {
  Built b = build("void f(int a) { if (a > 42) { a = 1; } }");
  cfg::EdgeRef true_edge{};
  for (const auto& bb2 : b.f->graph.blocks())
    if (bb2.is_decision())
      for (std::uint32_t i = 0; i < bb2.succs.size(); ++i)
        if (bb2.succs[i].kind == cfg::EdgeKind::True)
          true_edge = cfg::EdgeRef{bb2.id, i};
  BmcQuery q;
  q.forced_choices = {true_edge};
  q.must_take = true_edge;
  BmcOptions opts;
  opts.minimize_witness = false;
  const BmcResult r = solve(b.tr->ts, q, opts);
  ASSERT_EQ(r.status, BmcStatus::TestData);
  EXPECT_GT(test_data(b, r)[0], 42);  // valid, but not necessarily minimal
}

TEST(WitnessMinimisation, DeterministicAcrossRepeatedSolves) {
  Built b = build(
      "void f(int a, int b2) { if ((a ^ b2) > 100) { a = 1; } }");
  cfg::EdgeRef true_edge{};
  for (const auto& bb2 : b.f->graph.blocks())
    if (bb2.is_decision())
      for (std::uint32_t i = 0; i < bb2.succs.size(); ++i)
        if (bb2.succs[i].kind == cfg::EdgeKind::True)
          true_edge = cfg::EdgeRef{bb2.id, i};
  BmcQuery q;
  q.forced_choices = {true_edge};
  q.must_take = true_edge;
  const BmcResult r1 = solve(b.tr->ts, q);
  const BmcResult r2 = solve(b.tr->ts, q);
  ASSERT_EQ(r1.status, BmcStatus::TestData);
  EXPECT_EQ(r1.initial_values, r2.initial_values);
}

TEST(WitnessMinimisation, CnfMetricsUnaffectedByMinimisation) {
  // The solver memory proxy (Table 2) must not absorb the minimisation's
  // extra comparison circuits.
  Built b = build("void f(int a) { if (a > 42) { a = 1; } }");
  BmcOptions with, without;
  without.minimize_witness = false;
  const BmcResult r1 = solve(b.tr->ts, BmcQuery{}, with);
  const BmcResult r2 = solve(b.tr->ts, BmcQuery{}, without);
  EXPECT_EQ(r1.cnf_vars, r2.cnf_vars);
  EXPECT_EQ(r1.cnf_clauses, r2.cnf_clauses);
}

}  // namespace
}  // namespace tmg::bmc
