// Tests for the fault-tolerant shard fabric (driver/fabric.h): output
// determinism across pool sizes, crash recovery via the TMG_FABRIC_FAULT
// injection hook, size-aware unit splitting, and the `--corpus` driver
// (streamed rows, checkpoint resume) built on top of it.
#include "driver/fabric.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "driver/cli.h"
#include "driver/report.h"
#include "paper_examples.h"
#include "support/json.h"

namespace tmg::driver {
namespace {

#if !defined(_WIN32)

/// Two independent functions in one file, so a whole-file unit of it can
/// be split into per-function retries.
constexpr const char* kTwoFunctionSource = R"(
extern void low(void) __cost(4);
extern void high(void) __cost(9);

void alpha(int level)
{
  int mode = 0;
  if (level < 10) {
    low();
    mode = 1;
  } else {
    high();
    mode = 2;
  }
}

void beta(int i)
{
  int x = 0;
  if (i == 0) { x = 1; }
  if (i == 1) { x = 2; }
}
)";

/// Sets TMG_FABRIC_FAULT for one scope; always unset again on exit so a
/// failing assertion cannot poison later tests with a live fault.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    ::setenv(kFabricFaultEnv, spec.c_str(), 1);
  }
  ~FaultGuard() { ::unsetenv(kFabricFaultEnv); }
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;
};

/// Writes a small corpus to unique temp paths and drives run_cli over it,
/// capturing both streams.
class FabricCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = std::filesystem::path(::testing::TempDir()) / ("tmg_fabric_" + tag);
    std::filesystem::create_directories(dir_);
    write("b1.mc", testing::kExampleB1);
    write("b2.mc", testing::kExampleB2);
    write("b3.mc", testing::kExampleB3);
    write("two.mc", kTwoFunctionSource);
    write("fig1.mc", testing::kFigure1Source);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void write(const char* name, const char* content) {
    std::ofstream f(dir_ / name);
    f << content;
    files_.push_back((dir_ / name).string());
  }

  int run(std::vector<std::string> extra_args) {
    std::vector<const char*> argv = {"tmg"};
    for (const std::string& a : extra_args) argv.push_back(a.c_str());
    for (const std::string& f : files_) argv.push_back(f.c_str());
    out_.str("");
    err_.str("");
    return run_cli(static_cast<int>(argv.size()), argv.data(), out_, err_);
  }

  std::filesystem::path dir_;
  std::vector<std::string> files_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(FabricCliTest, ShardedOutputMatchesInProcessEveryFormatAndPool) {
  for (const std::string format : {"text", "csv", "json"}) {
    ASSERT_EQ(run({"--format=" + format, "--jobs=2"}), 0) << err_.str();
    const std::string in_process = out_.str();
    for (const std::string shards : {"2", "4", "8"}) {
      ASSERT_EQ(run({"--format=" + format, "--jobs=2", "--shards=" + shards}),
                0)
          << err_.str();
      EXPECT_EQ(out_.str(), in_process)
          << "format=" << format << " shards=" << shards;
    }
  }
}

TEST_F(FabricCliTest, EveryCrashKindRecoversByteIdentically) {
  ASSERT_EQ(run({"--format=json", "--jobs=2"}), 0) << err_.str();
  const std::string clean = out_.str();
  // A worker dying mid-frame (kill), exiting nonzero (exit3), returning a
  // framed non-JSON payload (garbage) or a short frame (truncate) must all
  // be detected, retried on a fresh worker, and leave no trace in stdout.
  for (const std::string kind : {"kill", "exit3", "garbage", "truncate"}) {
    const FaultGuard fault(kind + ":b2.mc");
    ASSERT_EQ(run({"--format=json", "--jobs=2", "--shards=4"}), 0)
        << kind << ": " << err_.str();
    EXPECT_EQ(out_.str(), clean) << kind;
    EXPECT_NE(err_.str().find("retrying"), std::string::npos) << err_.str();
  }
}

TEST_F(FabricCliTest, CrashSplitsMultiFunctionFileAndCrashDuringRetryRecovers) {
  ASSERT_EQ(run({"--format=text", "--jobs=2"}), 0) << err_.str();
  const std::string clean = out_.str();
  // two.mc has two functions: the whole-file crash splits it per-function
  // (attempt counters reset), and the per-function units each crash once
  // more (max_attempt 2) before succeeding on their third attempt.
  const FaultGuard fault("kill:two.mc:2");
  ASSERT_EQ(run({"--format=text", "--jobs=2", "--shards=4"}), 0)
      << err_.str();
  EXPECT_EQ(out_.str(), clean);
  EXPECT_NE(err_.str().find("per-function"), std::string::npos) << err_.str();
  EXPECT_NE(err_.str().find("attempt 2 of"), std::string::npos) << err_.str();
}

TEST_F(FabricCliTest, PersistentCrashHardFailsOnlyThatFile) {
  // A unit that crashes on every attempt is hard-failed with a diagnostic
  // row; the run still completes, exits 0, and every other file reports.
  const FaultGuard fault("exit3:b3.mc:99");
  ASSERT_EQ(run({"--format=json", "--jobs=2", "--shards=4"}), 0)
      << err_.str();
  std::string parse_error;
  const std::optional<JsonValue> v = json_parse(out_.str(), &parse_error);
  ASSERT_TRUE(v.has_value()) << parse_error;
  const JsonValue& files = v->get("files");
  ASSERT_EQ(files.kind(), JsonValue::Kind::Array);
  std::size_t reports = 0;
  std::size_t errors = 0;
  for (const JsonValue& f : files.items()) {
    if (f.find("report") != nullptr) ++reports;
    if (const JsonValue* e = f.find("error")) {
      ++errors;
      EXPECT_NE(e->as_string().find("worker crashed analysing"),
                std::string::npos)
          << e->as_string();
      EXPECT_NE(f.get("path").as_string().find("b3.mc"), std::string::npos);
    }
  }
  EXPECT_EQ(reports, files_.size() - 1);
  EXPECT_EQ(errors, 1u);
}

TEST_F(FabricCliTest, StatsLineCountsCrashesAndRetries) {
  const FaultGuard fault("kill:b2.mc");
  ASSERT_EQ(run({"--format=json", "--jobs=2", "--shards=2", "--stats"}), 0)
      << err_.str();
  const std::string log = err_.str();
  EXPECT_NE(log.find("tmg: fabric:"), std::string::npos) << log;
  EXPECT_NE(log.find("1 retries"), std::string::npos) << log;
  EXPECT_NE(log.find("1 crashes"), std::string::npos) << log;
  EXPECT_NE(log.find("0 hard failures"), std::string::npos) << log;
}

TEST(Fabric, UpFrontSplitMergesByteIdentically) {
  // split_factor <= 0 forces every multi-function file into per-function
  // units; the merged report must still be byte-identical to the
  // single-pipeline run (functions in program order, stages summed).
  PipelineOptions popts;
  popts.jobs = 2;
  const std::vector<std::string> sources = {kTwoFunctionSource,
                                            testing::kExampleB1};
  const std::vector<std::string> paths = {"two.mc", "b1.mc"};

  std::vector<std::optional<PipelineResult>> results(2);
  std::vector<std::string> crash_errors;
  FabricStats stats;
  FabricOptions fopts;
  fopts.pool = 2;
  fopts.split_factor = 0.0;
  std::ostringstream err;
  ASSERT_TRUE(run_fabric(popts, sources, paths, fopts, results, crash_errors,
                         stats, err));
  EXPECT_GE(stats.splits, 1u);
  ASSERT_TRUE(results[0].has_value() && results[1].has_value());
  ASSERT_TRUE(results[0]->ok && results[1]->ok);

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const PipelineResult direct = Pipeline(popts).run(sources[i]);
    ASSERT_TRUE(direct.ok);
    std::ostringstream a, b;
    render_report(direct, popts, ReportFormat::Json, /*with_stages=*/false,
                  a);
    render_report(*results[i], popts, ReportFormat::Json,
                  /*with_stages=*/false, b);
    EXPECT_EQ(a.str(), b.str()) << paths[i];
  }
}

TEST(Fabric, FrontendFailuresResolveParentSideWithExactDiagnostics) {
  // Files that do not compile never reach a worker; their in-band error
  // bytes match the in-process pipeline's.
  PipelineOptions popts;
  const std::vector<std::string> sources = {"int broken(",
                                            testing::kExampleB1};
  const std::vector<std::string> paths = {"broken.mc", "b1.mc"};
  std::vector<std::optional<PipelineResult>> results(2);
  std::vector<std::string> crash_errors;
  FabricStats stats;
  std::ostringstream err;
  ASSERT_TRUE(run_fabric(popts, sources, paths, FabricOptions{}, results,
                         crash_errors, stats, err));
  ASSERT_TRUE(results[0].has_value());
  EXPECT_FALSE(results[0]->ok);
  const PipelineResult direct = Pipeline(popts).run(sources[0]);
  EXPECT_EQ(results[0]->error, direct.error);
  ASSERT_TRUE(results[1].has_value());
  EXPECT_TRUE(results[1]->ok);
}

// ------------------------------------------------------------- --corpus

class CorpusCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = std::filesystem::path(::testing::TempDir()) / ("tmg_corpus_" + tag);
    std::filesystem::create_directories(dir_ / "sub");
    write("b1.mc", testing::kExampleB1);
    write("b2.mc", testing::kExampleB2);
    write("sub/fig1.mc", testing::kFigure1Source);
    write("bad.c", "int broken(\n");
    write("notes.txt", "not a source file\n");  // must be skipped
    checkpoint_ = (dir_ / "progress.json").string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void write(const char* name, const char* content) {
    std::ofstream f(dir_ / name);
    f << content;
  }

  int run(std::vector<std::string> extra_args) {
    corpus_arg_ = "--corpus=" + dir_.string();
    std::vector<const char*> argv = {"tmg", corpus_arg_.c_str()};
    for (const std::string& a : extra_args) argv.push_back(a.c_str());
    out_.str("");
    err_.str("");
    return run_cli(static_cast<int>(argv.size()), argv.data(), out_, err_);
  }

  std::filesystem::path dir_;
  std::string checkpoint_;
  std::string corpus_arg_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CorpusCliTest, StreamsRowsInPathOrderWithErrorsAsRows) {
  ASSERT_EQ(run({"--jobs=2"}), 0) << err_.str();
  const std::string text = out_.str();
  // One row per source file, sorted by relative path; the unparseable
  // file is a row, not a run failure; the .txt file is skipped.
  const std::size_t b1 = text.find("b1.mc:");
  const std::size_t b2 = text.find("b2.mc:");
  const std::size_t bad = text.find("bad.c: error:");
  const std::size_t fig = text.find("sub/fig1.mc:");
  EXPECT_NE(b1, std::string::npos);
  EXPECT_NE(b2, std::string::npos);
  EXPECT_NE(bad, std::string::npos);
  EXPECT_NE(fig, std::string::npos);
  EXPECT_EQ(text.find("notes"), std::string::npos);
  EXPECT_LT(b1, b2);
  EXPECT_LT(b2, bad);
  EXPECT_LT(bad, fig);
  EXPECT_NE(text.find("=== corpus summary ==="), std::string::npos);

  ASSERT_EQ(run({"--jobs=2", "--format=json"}), 0) << err_.str();
  std::string parse_error;
  const std::optional<JsonValue> v = json_parse(out_.str(), &parse_error);
  ASSERT_TRUE(v.has_value()) << parse_error;
  EXPECT_EQ(v->get("files").items().size(), 4u);
  EXPECT_EQ(v->get("aggregate").get("analysed").as_int(), 3);
  EXPECT_EQ(v->get("aggregate").get("failed").as_int(), 1);
}

TEST_F(CorpusCliTest, ShardedCorpusMatchesUnshardedEvenUnderCrashes) {
  for (const std::string format : {"text", "csv", "json"}) {
    ASSERT_EQ(run({"--jobs=2", "--format=" + format}), 0) << err_.str();
    const std::string unsharded = out_.str();
    ASSERT_EQ(run({"--jobs=2", "--format=" + format, "--shards=3"}), 0)
        << err_.str();
    EXPECT_EQ(out_.str(), unsharded) << format;

    const FaultGuard fault("kill:fig1.mc");
    ASSERT_EQ(run({"--jobs=2", "--format=" + format, "--shards=3"}), 0)
        << err_.str();
    EXPECT_EQ(out_.str(), unsharded) << format << " (crashed)";
  }
}

TEST_F(CorpusCliTest, CheckpointReplaysRowsAndDetectsStaleSources) {
  ASSERT_EQ(run({"--jobs=2", "--checkpoint=" + checkpoint_}), 0)
      << err_.str();
  const std::string first = out_.str();
  EXPECT_NE(first.find("wcet=31"), std::string::npos) << first;  // b1

  // Tamper with b1's checkpointed row: if the rerun replays the journal
  // (instead of recomputing), the sentinel value surfaces in the report.
  {
    std::ifstream in(checkpoint_);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string journal = buf.str();
    const std::size_t at = journal.find("\"wcet_total\":31");
    ASSERT_NE(at, std::string::npos) << journal;
    journal.replace(at, std::string("\"wcet_total\":31").size(),
                    "\"wcet_total\":4242");
    std::ofstream(checkpoint_, std::ios::trunc) << journal;
  }
  ASSERT_EQ(run({"--jobs=2", "--checkpoint=" + checkpoint_}), 0)
      << err_.str();
  EXPECT_NE(out_.str().find("wcet=4242"), std::string::npos) << out_.str();

  // Touching the source invalidates its row (hash mismatch): the rerun
  // recomputes it and the journal heals.
  {
    std::ofstream f(dir_ / "b1.mc", std::ios::app);
    f << "\n";
  }
  ASSERT_EQ(run({"--jobs=2", "--checkpoint=" + checkpoint_}), 0)
      << err_.str();
  EXPECT_EQ(out_.str(), first);
}

TEST_F(CorpusCliTest, CheckpointFromDifferentOptionsIsIgnored) {
  ASSERT_EQ(run({"--jobs=2", "--checkpoint=" + checkpoint_}), 0)
      << err_.str();
  const std::string bound4 = out_.str();
  ASSERT_EQ(run({"--jobs=2", "--checkpoint=" + checkpoint_, "--bound=2"}), 0)
      << err_.str();
  EXPECT_NE(err_.str().find("different options"), std::string::npos)
      << err_.str();
  // And the healed journal now belongs to --bound=2: rerunning under the
  // original options starts over again rather than replaying bound-2 rows.
  ASSERT_EQ(run({"--jobs=2", "--checkpoint=" + checkpoint_}), 0)
      << err_.str();
  EXPECT_EQ(out_.str(), bound4);
}

#endif  // !defined(_WIN32)

// ------------------------------------------------------- CLI validation

TEST(CorpusCli, ValidatesOptionCombinations) {
  const auto parse = [](std::vector<std::string> args) {
    CliOptions opts;
    std::string error;
    const bool ok = parse_cli(args, opts, error);
    return std::pair<bool, std::string>(ok, error);
  };
  EXPECT_TRUE(parse({"--corpus=dir"}).first);
  EXPECT_TRUE(
      parse({"--corpus=dir", "--checkpoint=f.json", "--shards=4"}).first);
  {
    const auto [ok, error] = parse({"--corpus=dir", "main.mc"});
    EXPECT_FALSE(ok);
    EXPECT_NE(error.find("takes no input files"), std::string::npos);
  }
  {
    const auto [ok, error] = parse({"--checkpoint=f.json", "main.mc"});
    EXPECT_FALSE(ok);
    EXPECT_NE(error.find("requires --corpus"), std::string::npos);
  }
  {
    const auto [ok, error] = parse({"--corpus=dir", "--table2"});
    EXPECT_FALSE(ok);
    EXPECT_NE(error.find("cannot be combined"), std::string::npos);
  }
  {
    const auto [ok, error] = parse({"--corpus=dir", "--bench"});
    EXPECT_FALSE(ok);
    EXPECT_NE(error.find("cannot be combined"), std::string::npos);
  }
  EXPECT_FALSE(parse({"--corpus="}).first);
}

}  // namespace
}  // namespace tmg::driver
