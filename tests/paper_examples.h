// Shared mini-C sources used across tests and benches: the paper's
// Figure 1 example, the b1-b7 pipeline benchmark set (mirrored as .mc
// files under examples/ for the `tmg` CLI) and helpers.
#pragma once

namespace tmg::testing {

/// The example program of Figure 1 (nested ifs over one input). With the
/// decision-node CFG construction this lowers to exactly 11 basic blocks
/// (start, 8 real blocks, end) and 6 end-to-end paths, matching Table 1.
inline constexpr const char* kFigure1Source = R"(
extern void printf1(void) __cost(10);
extern void printf2(void) __cost(10);
extern void printf3(void) __cost(10);
extern void printf4(void) __cost(10);
extern void printf5(void) __cost(10);
extern void printf6(void) __cost(10);
extern void printf7(void) __cost(10);
extern void printf8(void) __cost(10);

void fig1(int i)
{
  printf1();
  printf2();
  if (i == 0)
  {
    printf3();
    if (i == 0) {
      printf4();
    } else {
      printf5();
    }
  }
  if (i == 0)
  {
    printf6();
    printf7();
  }
  printf8();
}
)";

/// b1: straight-line leaf-call chain — one end-to-end path; any partition
/// bound measures it as a single segment.
inline constexpr const char* kExampleB1 = R"(
extern void sample(void) __cost(8);
extern void filter(void) __cost(12);
extern void emit(void) __cost(6);

void b1(int raw)
{
  int scaled = raw * 2;
  sample();
  filter();
  scaled = scaled + 1;
  emit();
}
)";

/// b2: if/else ladder over one input — 4 structural paths, all feasible.
inline constexpr const char* kExampleB2 = R"(
extern void low(void) __cost(4);
extern void mid(void) __cost(7);
extern void high(void) __cost(9);

void b2(int level)
{
  int mode = 0;
  if (level < 10) {
    low();
    mode = 1;
  } else {
    if (level < 100) {
      mid();
      mode = 2;
    } else {
      high();
      mode = 3;
    }
  }
  mode = mode + 1;
}
)";

/// b3: correlated conditions — 8 structural but only 4 feasible paths (the
/// infeasible-path pruning case of the untimed-model-checker approach).
inline constexpr const char* kExampleB3 = R"(
void b3(int i)
{
  int x = 0;
  if (i == 0) { x = 1; }
  if (i == 1) { x = 2; }
  if (i == 2) { x = 3; }
}
)";

/// b4: switch state machine (the wiper-controller shape: each case block
/// is one program segment at small bounds).
inline constexpr const char* kExampleB4 = R"(
__input(0, 3) int state;

extern void actuate(void) __cost(15);

void b4(int in1)
{
  switch (state) {
    case 0:
      if (in1 > 0) { state = 1; }
      break;
    case 1:
      if (in1 > 0) { state = 2; } else { state = 0; }
      break;
    case 2:
      actuate();
      state = 0;
      break;
    default:
      state = 0;
      break;
  }
}
)";

/// b5: bounded while loop with a branching body.
inline constexpr const char* kExampleB5 = R"(
void b5(int n, int flag)
{
  int acc = 0;
  __loopbound(3) while (n > 0) {
    if (flag > 0) {
      acc += 2;
    } else {
      acc += 1;
    }
    n -= 1;
  }
}
)";

/// b6: for loop (desugared to while by the parser) with compound updates.
inline constexpr const char* kExampleB6 = R"(
extern void tick(void) __cost(5);

void b6(int seed)
{
  int sum = 0;
  __loopbound(4) for (int i = 0; i < 4; i += 1) {
    sum += seed;
    tick();
  }
  sum = sum >> 1;
}
)";

/// b7: do-while plus a switch with fallthrough.
inline constexpr const char* kExampleB7 = R"(
void b7(int cmd, int n)
{
  int out = 0;
  __loopbound(2) do {
    out += 1;
    n -= 1;
  } while (n > 0);
  switch (cmd) {
    case 0:
      out += 10;
    case 1:
      out += 20;
      break;
    default:
      out = 0;
      break;
  }
}
)";

/// One named pipeline example (mirrored as examples/<name>.mc).
struct PaperExample {
  const char* name;
  const char* source;
};

/// Every program the driver smoke tests (and the CLI examples) cover.
inline constexpr PaperExample kPaperExamples[] = {
    {"fig1", kFigure1Source}, {"b1", kExampleB1}, {"b2", kExampleB2},
    {"b3", kExampleB3},       {"b4", kExampleB4}, {"b5", kExampleB5},
    {"b6", kExampleB6},       {"b7", kExampleB7},
};

}  // namespace tmg::testing
