// Shared mini-C sources used across tests and benches: the paper's
// Figure 1 example and helpers.
#pragma once

namespace tmg::testing {

/// The example program of Figure 1 (nested ifs over one input). With the
/// decision-node CFG construction this lowers to exactly 11 basic blocks
/// (start, 8 real blocks, end) and 6 end-to-end paths, matching Table 1.
inline constexpr const char* kFigure1Source = R"(
extern void printf1(void) __cost(10);
extern void printf2(void) __cost(10);
extern void printf3(void) __cost(10);
extern void printf4(void) __cost(10);
extern void printf5(void) __cost(10);
extern void printf6(void) __cost(10);
extern void printf7(void) __cost(10);
extern void printf8(void) __cost(10);

void fig1(int i)
{
  printf1();
  printf2();
  if (i == 0)
  {
    printf3();
    if (i == 0) {
      printf4();
    } else {
      printf5();
    }
  }
  if (i == 0)
  {
    printf6();
    printf7();
  }
  printf8();
}
)";

}  // namespace tmg::testing
