// Tests for the unified tracing + metrics layer (support/trace): span and
// registry units, `--trace` file well-formedness, span nesting, report
// byte-identity with tracing on/off across --jobs and --shards, the
// `--progress` heartbeat, and the new CLI grammar.
#include "support/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "driver/cli.h"
#include "paper_examples.h"
#include "support/json.h"

namespace tmg {
namespace {

using driver::CliOptions;
using driver::parse_cli;
using driver::run_cli;

// ------------------------------------------------------------------ units

TEST(Metrics, CounterAccumulatesAndResets) {
  trace::Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42u);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(Metrics, HistogramBucketsByLog2) {
  trace::Histogram h;
  h.observe(0.25);  // below 1 -> bucket 0
  h.observe(1.0);   // [1,2) -> bucket 0
  h.observe(3.0);   // [2,4) -> bucket 1
  h.observe(1000.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1004.25);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(9), 1u);  // 2^9 <= 1000 < 2^10
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(9), 0u);
}

TEST(Metrics, RegistryNamesAreStableAndJsonParses) {
  trace::MetricsRegistry& reg = trace::MetricsRegistry::instance();
  trace::Counter& c = reg.counter("test.registry_counter");
  const std::uint64_t before = c.get();
  c.add(3);
  EXPECT_EQ(reg.counter_value("test.registry_counter"), before + 3);
  EXPECT_EQ(reg.counter_value("test.never_touched"), 0u);
  reg.histogram("test.registry_hist").observe(7.0);

  std::string error;
  const std::optional<JsonValue> v = json_parse(reg.to_json(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  const JsonValue* counters = v->find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* mine = counters->find("test.registry_counter");
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->as_int(), static_cast<std::int64_t>(before + 3));
  const JsonValue* hist = v->find("histograms");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->find("test.registry_hist"), nullptr);
  EXPECT_GE(hist->find("test.registry_hist")->get("count").as_int(), 1);
}

TEST(Trace, SpansAreNoopsWithoutRecording) {
  ASSERT_FALSE(trace::enabled());
  const std::size_t before = trace::event_count();
  {
    trace::TraceSpan span("noop", "test");
    span.arg("k", "v");
  }
  EXPECT_EQ(trace::event_count(), before);
}

TEST(Trace, RecordingWritesParseableTraceEvents) {
  const std::string path =
      ::testing::TempDir() + "tmg_trace_unit_recording.json";
  std::ostringstream err;
  {
    trace::Recording rec(path, err);
    ASSERT_TRUE(trace::enabled());
    trace::TraceSpan span("outer", "test");
    span.arg("label", "quoted \"text\"");
    span.arg("number", std::int64_t{-7});
    { trace::TraceSpan inner("inner", "test"); }
  }
  EXPECT_FALSE(trace::enabled());
  EXPECT_TRUE(err.str().empty()) << err.str();

  std::ifstream f(path);
  std::stringstream buf;
  buf << f.rdbuf();
  std::string error;
  const std::optional<JsonValue> v = json_parse(buf.str(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_EQ(v->kind(), JsonValue::Kind::Array);
  ASSERT_EQ(v->items().size(), 2u);  // inner closed first
  bool saw_outer = false;
  for (const JsonValue& ev : v->items()) {
    EXPECT_EQ(ev.get("ph").as_string(), "X");
    EXPECT_EQ(ev.get("cat").as_string(), "test");
    EXPECT_GE(ev.get("ts").as_double(), 0.0);
    EXPECT_GE(ev.get("dur").as_double(), 0.0);
    EXPECT_EQ(ev.get("pid").as_int(), 1);
    EXPECT_GE(ev.get("tid").as_int(), 1);
    if (ev.get("name").as_string() == "outer") {
      saw_outer = true;
      const JsonValue* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->get("label").as_string(), "quoted \"text\"");
      EXPECT_EQ(args->get("number").as_int(), -7);
    }
  }
  EXPECT_TRUE(saw_outer);
  std::remove(path.c_str());
}

TEST(Trace, WireEventsRoundTripThroughImport) {
  const std::string path = ::testing::TempDir() + "tmg_trace_unit_wire.json";
  std::ostringstream err;
  {
    trace::Recording rec(path, err);
    {
      trace::TraceSpan span("shipped", "test");
      span.arg("k", "v");
    }
    // Simulate the shard wire: serialize, clear, re-import as a shard.
    const std::string wire = trace::events_json();
    trace::clear();
    EXPECT_EQ(trace::event_count(), 0u);
    std::string error;
    const std::optional<JsonValue> arr = json_parse(wire, &error);
    ASSERT_TRUE(arr.has_value()) << error;
    trace::import_events(*arr, 2);
    EXPECT_EQ(trace::event_count(), 1u);
  }
  std::ifstream f(path);
  std::stringstream buf;
  buf << f.rdbuf();
  const std::optional<JsonValue> v = json_parse(buf.str());
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->items().size(), 1u);
  const JsonValue& ev = v->items()[0];
  EXPECT_EQ(ev.get("name").as_string(), "shipped");
  EXPECT_EQ(ev.get("pid").as_int(), 2);  // re-stamped by import
  EXPECT_EQ(ev.get("args").get("k").as_string(), "v");
  std::remove(path.c_str());
}

// ------------------------------------------------------------ CLI grammar

TEST(Trace, CliParsesTraceProgressAndMetricsFlags) {
  const auto parse = [](std::vector<std::string> args) {
    CliOptions opts;
    std::string error;
    const bool ok = parse_cli(args, opts, error);
    return std::tuple<bool, CliOptions, std::string>(ok, std::move(opts),
                                                     std::move(error));
  };

  {
    const auto [ok, opts, error] =
        parse({"--trace=/tmp/t.json", "--progress", "a.mc"});
    ASSERT_TRUE(ok) << error;
    EXPECT_EQ(opts.trace_file, "/tmp/t.json");
    EXPECT_TRUE(opts.progress);
  }
  EXPECT_FALSE(std::get<0>(parse({"--trace", "a.mc"})));
  EXPECT_FALSE(std::get<0>(parse({"--trace=", "a.mc"})));
  EXPECT_FALSE(std::get<0>(parse({"--progress=on", "a.mc"})));
  // --metrics is client-only, input-free, and exclusive with --shutdown.
  EXPECT_FALSE(std::get<0>(parse({"--metrics", "a.mc"})));
  {
    const auto [ok, opts, error] =
        parse({"client", "--socket=/tmp/s", "--metrics"});
    ASSERT_TRUE(ok) << error;
    EXPECT_TRUE(opts.client_metrics);
  }
  EXPECT_FALSE(std::get<0>(
      parse({"client", "--socket=/tmp/s", "--metrics", "a.mc"})));
  EXPECT_FALSE(std::get<0>(
      parse({"client", "--socket=/tmp/s", "--metrics", "--shutdown"})));
}

// --------------------------------------------------------- CLI end-to-end

/// Writes the three-file paper corpus to unique temp paths and runs the
/// CLI over them, capturing the streams.
class TraceCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("tmg_trace_cli_" + tag);
    std::filesystem::create_directories(dir_);
    write("fig1.mc", testing::kFigure1Source);
    write("b1.mc", testing::kExampleB1);
    write("b2.mc", testing::kExampleB2);
    trace_path_ = (dir_ / "trace.json").string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void write(const char* name, const char* content) {
    std::ofstream f(dir_ / name);
    f << content;
    files_.push_back((dir_ / name).string());
  }

  int run(std::vector<std::string> extra_args) {
    std::vector<const char*> argv = {"tmg"};
    for (const std::string& a : extra_args) argv.push_back(a.c_str());
    for (const std::string& f : files_) argv.push_back(f.c_str());
    out_.str("");
    err_.str("");
    return run_cli(static_cast<int>(argv.size()), argv.data(), out_, err_);
  }

  JsonValue load_trace() {
    std::ifstream f(trace_path_);
    std::stringstream buf;
    buf << f.rdbuf();
    std::string error;
    std::optional<JsonValue> v = json_parse(buf.str(), &error);
    EXPECT_TRUE(v.has_value()) << error;
    return v ? std::move(*v) : JsonValue();
  }

  std::filesystem::path dir_;
  std::vector<std::string> files_;
  std::string trace_path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(TraceCliTest, TraceFileCoversEveryLayerAndTagsQueries) {
  const std::string cache_dir = (dir_ / "cache").string();
  ASSERT_EQ(run({"--jobs=4", "--trace=" + trace_path_,
                 "--cache-dir=" + cache_dir}),
            0)
      << err_.str();
  const JsonValue trace = load_trace();
  ASSERT_EQ(trace.kind(), JsonValue::Kind::Array);

  std::map<std::string, int> names;
  for (const JsonValue& ev : trace.items()) {
    ASSERT_EQ(ev.kind(), JsonValue::Kind::Object);
    EXPECT_EQ(ev.get("ph").as_string(), "X");
    EXPECT_GE(ev.get("ts").as_double(), 0.0);
    EXPECT_GE(ev.get("dur").as_double(), 0.0);
    EXPECT_GE(ev.get("pid").as_int(), 1);
    EXPECT_GE(ev.get("tid").as_int(), 0);  // tid 0 = retrospective timeline
    ++names[ev.get("name").as_string()];
  }
  // One span per pipeline stage per file, per scheduler job, per BMC
  // query, per cache lookup/store, plus the per-file merges.
  for (const char* required : {"frontend", "cfg", "partition", "translate",
                               "analysis", "job", "path", "merge",
                               "bmc.query", "cache.lookup", "cache.store"})
    EXPECT_GE(names[required], 1) << required;
  EXPECT_EQ(names["cache.lookup"], 3);  // one per input file, all misses

  for (const JsonValue& ev : trace.items()) {
    if (ev.get("name").as_string() != "bmc.query") continue;
    const JsonValue* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_FALSE(args->get("function").as_string().empty());
    EXPECT_GE(args->get("segment").as_int(), 0);
    EXPECT_GE(args->get("depth").as_int(), 1);
    const std::string verdict = args->get("verdict").as_string();
    EXPECT_TRUE(verdict == "feasible" || verdict == "infeasible" ||
                verdict == "unknown")
        << verdict;
    EXPECT_GE(args->get("conflicts").as_int(), 0);
  }
}

TEST_F(TraceCliTest, SpansNestOrAreDisjointPerThread) {
  ASSERT_EQ(run({"--jobs=4", "--trace=" + trace_path_}), 0) << err_.str();
  const JsonValue trace = load_trace();

  std::map<std::pair<std::int64_t, std::int64_t>,
           std::vector<std::pair<double, double>>>
      by_thread;
  for (const JsonValue& ev : trace.items()) {
    // tid 0 is the timeline track: retrospective cross-thread windows
    // (the batch "analysis" stage) that need not nest with anything.
    if (ev.get("tid").as_int() == 0) continue;
    const double ts = ev.get("ts").as_double();
    by_thread[{ev.get("pid").as_int(), ev.get("tid").as_int()}].push_back(
        {ts, ts + ev.get("dur").as_double()});
  }
  // RAII spans on one thread form a tree: any two intervals either nest
  // or do not overlap. Partial overlap means buffer corruption.
  const double eps = 0.5;  // microsecond jitter from double rounding
  for (const auto& [key, spans] : by_thread) {
    for (std::size_t i = 0; i < spans.size(); ++i) {
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const auto& a = spans[i];
        const auto& b = spans[j];
        const bool disjoint =
            a.second <= b.first + eps || b.second <= a.first + eps;
        const bool nested =
            (a.first >= b.first - eps && a.second <= b.second + eps) ||
            (b.first >= a.first - eps && b.second <= a.second + eps);
        EXPECT_TRUE(disjoint || nested)
            << "partial overlap: [" << a.first << "," << a.second << ") vs ["
            << b.first << "," << b.second << ")";
      }
    }
  }
}

TEST_F(TraceCliTest, ReportsAreByteIdenticalWithTracingOnAndOff) {
  for (const std::string format : {"text", "json"}) {
    for (const std::string jobs : {"1", "4"}) {
      ASSERT_EQ(run({"--format=" + format, "--jobs=" + jobs}), 0)
          << err_.str();
      const std::string without = out_.str();
      ASSERT_EQ(run({"--format=" + format, "--jobs=" + jobs,
                     "--trace=" + trace_path_}),
                0)
          << err_.str();
      EXPECT_EQ(out_.str(), without)
          << "format=" << format << " jobs=" << jobs;
    }
  }
}

TEST_F(TraceCliTest, ShardedRunStitchesOneTraceAndKeepsReportsIdentical) {
  ASSERT_EQ(run({"--jobs=2"}), 0) << err_.str();
  const std::string unsharded = out_.str();

  ASSERT_EQ(run({"--jobs=2", "--shards=2", "--trace=" + trace_path_}), 0)
      << err_.str();
  EXPECT_EQ(out_.str(), unsharded);

  const JsonValue trace = load_trace();
  ASSERT_EQ(trace.kind(), JsonValue::Kind::Array);
  std::map<std::int64_t, int> by_pid;
  int queries = 0;
  for (const JsonValue& ev : trace.items()) {
    ++by_pid[ev.get("pid").as_int()];
    if (ev.get("name").as_string() == "bmc.query") ++queries;
  }
  // Both forked shards shipped span batches over the wire (pid 2 and 3);
  // their solver work — every BMC query of the corpus — is in the file.
  EXPECT_GE(by_pid[2], 1);
  EXPECT_GE(by_pid[3], 1);
  EXPECT_GE(queries, 1);
}

TEST_F(TraceCliTest, ShardStatsJsonSchemaMatchesInProcess) {
  // Wall clocks and stage timings are real measurements — mask their
  // values, then require byte-equality: same keys, same shapes, same
  // deterministic numbers everywhere else.
  const auto mask = [](std::string s) {
    s = std::regex_replace(s, std::regex("\"bmc_seconds\":[^,}\\]]+"),
                           "\"bmc_seconds\":X");
    s = std::regex_replace(s, std::regex("\"stages\":\\{[^{}]*\\}"),
                           "\"stages\":X");
    return s;
  };
  ASSERT_EQ(run({"--stats", "--format=json", "--jobs=2"}), 0) << err_.str();
  const std::string in_process = mask(out_.str());
  ASSERT_EQ(run({"--stats", "--format=json", "--jobs=2", "--shards=2"}), 0)
      << err_.str();
  EXPECT_EQ(mask(out_.str()), in_process);
}

TEST_F(TraceCliTest, ProgressHeartbeatStaysOffTheReportStream) {
  ASSERT_EQ(run({"--jobs=2"}), 0) << err_.str();
  const std::string without = out_.str();

  ASSERT_EQ(run({"--jobs=2", "--progress"}), 0) << err_.str();
  EXPECT_EQ(out_.str(), without);  // stdout untouched
  const std::string heartbeat = err_.str();
  EXPECT_NE(heartbeat.find("tmg: progress: 1/3 files"), std::string::npos)
      << heartbeat;
  EXPECT_NE(heartbeat.find("tmg: progress: 3/3 files"), std::string::npos)
      << heartbeat;

  // And without the flag, nothing heartbeats.
  ASSERT_EQ(run({"--jobs=2"}), 0);
  EXPECT_EQ(err_.str().find("tmg: progress:"), std::string::npos);
}

}  // namespace
}  // namespace tmg
