// Live-socket tests for the concurrent `tmg serve` daemon: real unix and
// TCP listeners, a real worker pool, real clients on threads. These are
// the determinism gates for the concurrency tentpole — N concurrent
// clients must receive responses byte-identical to the serial daemon and
// to the CLI — and they run under the TSan CI job.
#include <gtest/gtest.h>

#if !defined(_WIN32)

#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/cli.h"
#include "driver/pipeline.h"
#include "driver/serve.h"
#include "paper_examples.h"
#include "support/json.h"

namespace tmg::driver {
namespace {

/// Fresh scratch directory per test; removed on scope exit.
struct ScratchDir {
  std::filesystem::path path;
  ScratchDir() {
    path = std::filesystem::temp_directory_path() /
           ("tmg_serve_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// One in-process daemon on its own thread. start() blocks until every
/// listener is up (via ServeHooks::on_listening), so tests never race the
/// bind; stop() shuts it down through a real client and checks the exit
/// code — a daemon that died of an accept failure would return nonzero.
struct LiveDaemon {
  CliOptions opts;
  std::ostringstream out, err;
  std::thread thread;
  std::string tcp_endpoint;
  int rc = -1;

  void start(CliOptions o, int expected_listeners) {
    opts = std::move(o);
    std::mutex mu;
    std::condition_variable cv;
    int ready = 0;
    ServeHooks hooks;
    hooks.on_listening = [&](const std::string& transport,
                             const std::string& endpoint) {
      const std::lock_guard<std::mutex> lock(mu);
      if (transport == "tcp") tcp_endpoint = endpoint;
      ++ready;
      cv.notify_all();
    };
    thread = std::thread([this, hooks] {
      rc = run_serve(opts, out, err, hooks);
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready >= expected_listeners; });
  }

  void stop() {
    CliOptions c;
    c.client = true;
    c.client_shutdown = true;
    c.socket_path = opts.socket_path;
    if (c.socket_path.empty()) c.connect_addr = tcp_endpoint;
    std::ostringstream cout, cerr;
    ASSERT_EQ(run_client(c, {}, cout, cerr), 0) << cerr.str();
    thread.join();
    EXPECT_EQ(rc, 0) << err.str();
  }

  ~LiveDaemon() {
    if (thread.joinable()) thread.join();
  }
};

/// One client request through the real run_client path; returns stdout.
std::string client_analyze(const std::string& socket_path,
                           const std::string& connect_addr,
                           const std::string& input_file) {
  CliOptions c;
  c.client = true;
  c.socket_path = socket_path;
  c.connect_addr = connect_addr;
  c.inputs = {input_file};
  std::string source;
  {
    std::ifstream in(input_file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }
  std::ostringstream out, err;
  EXPECT_EQ(run_client(c, {source}, out, err), 0) << err.str();
  return out.str();
}

std::string client_metrics(const std::string& socket_path,
                           const std::string& connect_addr) {
  CliOptions c;
  c.client = true;
  c.client_metrics = true;
  c.socket_path = socket_path;
  c.connect_addr = connect_addr;
  std::ostringstream out, err;
  EXPECT_EQ(run_client(c, {}, out, err), 0) << err.str();
  return out.str();
}

/// Raw wire round-trip (no client-side protocol): connect, send payload,
/// half-close, read the response to EOF. For hostile payloads the real
/// client cannot produce.
std::string raw_roundtrip_unix(const std::string& socket_path,
                               const std::string& payload) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + off, payload.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) break;  // daemon may half-close early on oversized input
    off += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string write_source(const ScratchDir& dir, const char* name,
                         const char* source) {
  const std::filesystem::path p = dir.path / name;
  std::ofstream os(p, std::ios::binary);
  os << source;
  return p.string();
}

std::string cli_reference(const std::string& input_file) {
  const char* argv[] = {"tmg", input_file.c_str()};
  std::ostringstream out, err;
  EXPECT_EQ(run_cli(2, argv, out, err), 0) << err.str();
  return out.str();
}

TEST(ServeLive, ConcurrentClientsMatchSerialDaemonAndCliOnBothTransports) {
  const ScratchDir dir;
  const std::string b1 = write_source(dir, "b1.mc", testing::kExampleB1);
  const std::string b2 = write_source(dir, "b2.mc", testing::kExampleB2);
  const std::string sock = (dir.path / "s.sock").string();

  // Serial reference: a one-at-a-time daemon (single worker).
  std::string serial_b1, serial_b2;
  {
    CliOptions o;
    o.serve = true;
    o.socket_path = sock;
    o.cache_dir = (dir.path / "cache_serial").string();
    o.serve_workers = 1;
    LiveDaemon daemon;
    daemon.start(std::move(o), 1);
    serial_b1 = client_analyze(sock, "", b1);
    serial_b2 = client_analyze(sock, "", b2);
    daemon.stop();
  }

  // Concurrent daemon on both transports, 8 clients at once: analyze on
  // unix and TCP, metrics, and a hostile raw payload, all in flight
  // together. Every analyze response must equal the serial daemon's and
  // the CLI's, and unix must equal TCP.
  CliOptions o;
  o.serve = true;
  o.socket_path = sock;
  o.listen_addr = "127.0.0.1:0";
  o.cache_dir = (dir.path / "cache_conc").string();
  o.serve_workers = 4;
  LiveDaemon daemon;
  daemon.start(std::move(o), 2);
  ASSERT_FALSE(daemon.tcp_endpoint.empty());

  constexpr int kClients = 8;
  std::vector<std::string> results(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      switch (i % 4) {
        case 0:
          results[i] = client_analyze(sock, "", i < 4 ? b1 : b2);
          break;
        case 1:
          results[i] =
              client_analyze("", daemon.tcp_endpoint, i < 4 ? b1 : b2);
          break;
        case 2:
          results[i] = client_metrics(sock, "");
          break;
        default:
          results[i] = raw_roundtrip_unix(sock, "{\"hostile\":");
          break;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const std::string cli_b1 = cli_reference(b1);
  const std::string cli_b2 = cli_reference(b2);
  EXPECT_EQ(serial_b1, cli_b1);
  EXPECT_EQ(serial_b2, cli_b2);
  EXPECT_EQ(results[0], serial_b1);  // unix, b1
  EXPECT_EQ(results[1], serial_b1);  // tcp == unix == serial == cli
  EXPECT_EQ(results[4], serial_b2);  // unix, b2
  EXPECT_EQ(results[5], serial_b2);  // tcp, b2
  for (const int i : {2, 6}) {  // metrics clients got valid snapshots
    const std::optional<JsonValue> v = json_parse(results[i]);
    ASSERT_TRUE(v.has_value()) << results[i];
    EXPECT_TRUE(v->get("ok").as_bool());
  }
  for (const int i : {3, 7}) {  // hostile clients got in-band errors
    const std::optional<JsonValue> v = json_parse(results[i]);
    ASSERT_TRUE(v.has_value()) << results[i];
    EXPECT_FALSE(v->get("ok").as_bool());
  }
  daemon.stop();
}

TEST(ServeLive, WarmCacheRawResponsesAreByteIdenticalAcrossThreads) {
  // Byte-level determinism at the wire: once the cache is warm, every
  // concurrent resubmission must serialize the identical cached report —
  // including its recorded wall-clock fields. (Cold responses embed each
  // computation's own timings, so only warm responses can be compared.)
  const ScratchDir dir;
  const std::string sock = (dir.path / "s.sock").string();
  CliOptions o;
  o.serve = true;
  o.socket_path = sock;
  o.cache_dir = (dir.path / "cache").string();
  o.serve_workers = 4;
  LiveDaemon daemon;
  daemon.start(std::move(o), 1);

  const std::string request = serialize_serve_request(
      PipelineOptions{}, {"b1.mc"}, {testing::kExampleB1});
  const std::string warm = raw_roundtrip_unix(sock, request);
  ASSERT_NE(warm.find("\"ok\":true"), std::string::npos) << warm;

  constexpr int kThreads = 8;
  std::vector<std::string> responses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back(
        [&, i] { responses[i] = raw_roundtrip_unix(sock, request); });
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i)
    EXPECT_EQ(responses[i], warm) << "thread " << i;
  daemon.stop();
}

TEST(ServeLive, OversizedRequestGetsInBandErrorAndDaemonSurvives) {
  const ScratchDir dir;
  const std::string sock = (dir.path / "s.sock").string();
  CliOptions o;
  o.serve = true;
  o.socket_path = sock;
  o.max_request_bytes = 4096;
  LiveDaemon daemon;
  daemon.start(std::move(o), 1);

  // 64 KiB of junk against a 4 KiB cap: in-band error, not an OOM and
  // not a dropped connection.
  const std::string big(64 * 1024, 'x');
  const std::string response = raw_roundtrip_unix(sock, big);
  const std::optional<JsonValue> v = json_parse(response);
  ASSERT_TRUE(v.has_value()) << response;
  EXPECT_FALSE(v->get("ok").as_bool());
  EXPECT_NE(v->get("error").as_string().find("request too large"),
            std::string::npos);

  // An under-cap request on the same daemon still gets a real answer
  // (fresh computations embed their own wall clocks, so check shape, not
  // bytes — byte-identity is covered by the warm-cache test above).
  const std::string request = serialize_serve_request(
      PipelineOptions{}, {"b1.mc"}, {testing::kExampleB1});
  ASSERT_LT(request.size(), o.max_request_bytes);
  const std::string good = raw_roundtrip_unix(sock, request);
  std::vector<PipelineResult> reports;
  std::string error;
  EXPECT_TRUE(parse_serve_response(good, 1, reports, error)) << error;
  daemon.stop();
}

TEST(ServeLive, AcceptErrnoClassificationRetriesTransientsOnly) {
  // The satellite bug: accept() failure used to break the loop and return
  // 0 — a daemon dead of EMFILE reported success. Transients retry,
  // everything else is fatal (and run_serve exits nonzero).
  for (const int transient :
       {EINTR, ECONNABORTED, EAGAIN, EWOULDBLOCK})
    EXPECT_TRUE(accept_errno_is_transient(transient)) << transient;
  for (const int fatal : {EMFILE, ENFILE, EBADF, ENOMEM, EINVAL})
    EXPECT_FALSE(accept_errno_is_transient(fatal)) << fatal;
}

}  // namespace
}  // namespace tmg::driver

#endif  // !defined(_WIN32)
