#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "driver/cache.h"
#include "driver/cli.h"
#include "driver/pipeline.h"
#include "opt/passes.h"
#include "driver/report.h"
#include "driver/serve.h"
#include "driver/shard.h"
#include "paper_examples.h"
#include "support/json.h"

namespace tmg::driver {
namespace {

PipelineResult run_pipeline(const char* src, PipelineOptions opts = {}) {
  Pipeline p(std::move(opts));
  return p.run(src);
}

// ---------------------------------------------- Table 1 partition summary

TEST(PartitionSummaryTest, Figure1MatchesPaperTable1) {
  const PartitionSummary s = partition_summary(testing::kFigure1Source, 7);
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_EQ(s.function, "fig1");
  ASSERT_EQ(s.rows.size(), 7u);

  const std::uint64_t expected_ip[] = {22, 16, 16, 16, 16, 2, 2};
  const std::uint64_t expected_m[] = {11, 9, 9, 9, 9, 6, 6};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(s.rows[i].bound, i + 1);
    EXPECT_EQ(s.rows[i].ip, expected_ip[i]) << "b=" << i + 1;
    ASSERT_FALSE(s.rows[i].m.saturated());
    EXPECT_EQ(s.rows[i].m.exact(), expected_m[i]) << "b=" << i + 1;
  }
  // Fused sites: 15 at per-block bracketing, 2 end-to-end (paper fn. 1).
  EXPECT_EQ(s.rows[0].fused_ip, 15u);
  EXPECT_EQ(s.rows[6].fused_ip, 2u);
}

TEST(PartitionSummaryTest, RejectsBadSource) {
  const PartitionSummary s = partition_summary("void f(void) { x = 1; }", 3);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.error.find("undeclared"), std::string::npos);
}

// Golden Table-1 rows for the whole benchmark set at bounds 1..8: locks
// the paper-reproduction numbers against partitioner/path-count refactors.
struct GoldenRow {
  std::uint64_t segments, ip, fused_ip, m;
};
struct GoldenSummary {
  const char* name;
  const char* source;
  GoldenRow rows[8];  // bounds 1..8
};

const GoldenSummary kGoldenSummaries[] = {
    {"b1", testing::kExampleB1,
     {{1, 2, 2, 1}, {1, 2, 2, 1}, {1, 2, 2, 1}, {1, 2, 2, 1},
      {1, 2, 2, 1}, {1, 2, 2, 1}, {1, 2, 2, 1}, {1, 2, 2, 1}}},
    {"b2", testing::kExampleB2,
     {{9, 18, 12, 9}, {7, 14, 10, 8}, {1, 2, 2, 3}, {1, 2, 2, 3},
      {1, 2, 2, 3}, {1, 2, 2, 3}, {1, 2, 2, 3}, {1, 2, 2, 3}}},
    {"b3", testing::kExampleB3,
     {{9, 18, 13, 9}, {9, 18, 13, 9}, {9, 18, 13, 9}, {9, 18, 13, 9},
      {9, 18, 13, 9}, {9, 18, 13, 9}, {9, 18, 13, 9}, {1, 2, 2, 8}}},
    {"b4", testing::kExampleB4,
     {{10, 20, 16, 10}, {7, 14, 13, 9}, {7, 14, 13, 9}, {7, 14, 13, 9},
      {7, 14, 13, 9}, {1, 2, 2, 6}, {1, 2, 2, 6}, {1, 2, 2, 6}}},
    {"b5", testing::kExampleB5,
     {{8, 16, 11, 8}, {5, 10, 7, 6}, {5, 10, 7, 6}, {5, 10, 7, 6},
      {5, 10, 7, 6}, {5, 10, 7, 6}, {5, 10, 7, 6}, {5, 10, 7, 6}}},
    {"b6", testing::kExampleB6,
     {{6, 12, 8, 6}, {6, 12, 8, 6}, {6, 12, 8, 6}, {6, 12, 8, 6},
      {1, 2, 2, 5}, {1, 2, 2, 5}, {1, 2, 2, 5}, {1, 2, 2, 5}}},
    {"b7", testing::kExampleB7,
     {{9, 18, 13, 9}, {9, 18, 13, 10}, {9, 18, 13, 10}, {9, 18, 13, 10},
      {9, 18, 13, 10}, {1, 2, 2, 6}, {1, 2, 2, 6}, {1, 2, 2, 6}}},
};

TEST(PartitionSummaryTest, GoldenTableRowsForBenchmarkSet) {
  for (const GoldenSummary& g : kGoldenSummaries) {
    const PartitionSummary s = partition_summary(g.source, 8);
    ASSERT_TRUE(s.ok) << g.name << ": " << s.error;
    EXPECT_EQ(s.function, g.name);
    ASSERT_EQ(s.rows.size(), 8u) << g.name;
    for (std::size_t i = 0; i < 8; ++i) {
      const GoldenRow& want = g.rows[i];
      EXPECT_EQ(s.rows[i].bound, i + 1);
      EXPECT_EQ(s.rows[i].segments, want.segments)
          << g.name << " b=" << i + 1;
      EXPECT_EQ(s.rows[i].ip, want.ip) << g.name << " b=" << i + 1;
      EXPECT_EQ(s.rows[i].fused_ip, want.fused_ip)
          << g.name << " b=" << i + 1;
      ASSERT_FALSE(s.rows[i].m.saturated()) << g.name << " b=" << i + 1;
      EXPECT_EQ(s.rows[i].m.exact(), want.m) << g.name << " b=" << i + 1;
    }
  }
}

// --------------------------------------------------- full pipeline, fig1

TEST(PipelineTest, Figure1EndToEndSegment) {
  PipelineOptions opts;
  opts.path_bound = 6;  // whole function becomes one segment
  const PipelineResult r = run_pipeline(testing::kFigure1Source, opts);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.functions.size(), 1u);
  const FunctionTiming& ft = r.functions[0];
  EXPECT_EQ(ft.name, "fig1");
  EXPECT_EQ(ft.blocks, 11u);
  EXPECT_EQ(ft.decisions, 3u);
  ASSERT_EQ(ft.segments.size(), 1u);

  const SegmentTiming& seg = ft.segments[0];
  EXPECT_TRUE(seg.whole_function);
  EXPECT_EQ(seg.num_blocks, 11u);
  EXPECT_EQ(seg.structural_paths.exact(), 6u);
  EXPECT_TRUE(seg.enumeration_complete);
  ASSERT_EQ(seg.paths.size(), 6u);
  // All three conditions test `i == 0`: only the all-true and the all-false
  // paths are feasible; the 4 mixed paths are pruned by the BMC engine.
  EXPECT_EQ(seg.feasible, 2u);
  EXPECT_EQ(seg.infeasible, 4u);
  EXPECT_EQ(seg.unknown, 0u);
  // Default cost model: 1/stmt, 1/decision, __cost(10) per printf call.
  // WCET path (i == 0): 22 + 1 + 11 + 1 + 11 + 1 + 22 + 11 = 80.
  // BCET path (i != 0): 22 + 1 + 1 + 11 = 35.
  EXPECT_EQ(seg.wcet, 80);
  EXPECT_EQ(seg.bcet, 35);
}

TEST(PipelineTest, Figure1PerBlockFindsDeadElseArm) {
  PipelineOptions opts;
  opts.path_bound = 1;
  const PipelineResult r = run_pipeline(testing::kFigure1Source, opts);
  ASSERT_TRUE(r.ok) << r.error;
  const FunctionTiming& ft = r.functions[0];
  EXPECT_EQ(ft.segments.size(), 11u);
  EXPECT_EQ(ft.instrumentation_points, 22u);
  EXPECT_EQ(ft.fused_points, 15u);
  // The inner else arm (printf5) only runs when i == 0 && i != 0: exactly
  // one segment must be proven dead.
  std::size_t dead = 0;
  for (const SegmentTiming& s : ft.segments) dead += s.dead() ? 1 : 0;
  EXPECT_EQ(dead, 1u);
}

TEST(PipelineTest, Figure1SegmentInvariantsAcrossBounds) {
  for (std::uint64_t b : {1u, 2u, 4u, 6u}) {
    PipelineOptions opts;
    opts.path_bound = b;
    const PipelineResult r = run_pipeline(testing::kFigure1Source, opts);
    ASSERT_TRUE(r.ok) << r.error;
    for (const SegmentTiming& s : r.functions[0].segments) {
      EXPECT_LE(s.bcet, s.wcet) << "b=" << b << " segment " << s.id;
      EXPECT_EQ(s.feasible + s.infeasible + s.unknown, s.paths.size());
    }
  }
}

// ----------------------------------------------- all paper examples (b1-b7)

class PaperExamplePipeline
    : public ::testing::TestWithParam<testing::PaperExample> {};

TEST_P(PaperExamplePipeline, RunsEndToEnd) {
  const PipelineResult r = run_pipeline(GetParam().source);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.functions.size(), 1u);
  const FunctionTiming& ft = r.functions[0];
  EXPECT_EQ(ft.name, GetParam().name);
  EXPECT_GT(ft.segments.size(), 0u);
  EXPECT_GT(ft.instrumentation_points, 0u);
  EXPECT_GE(ft.instrumentation_points, ft.fused_points);

  bool any_feasible = false;
  for (const SegmentTiming& s : ft.segments) {
    EXPECT_EQ(s.feasible + s.infeasible + s.unknown, s.paths.size());
    EXPECT_LE(s.bcet, s.wcet);
    EXPECT_GE(s.bcet, 0);
    if (s.feasible > 0) any_feasible = true;
  }
  EXPECT_TRUE(any_feasible);

  // Every stage must have been timed (slice appears when the function is
  // eligible for per-segment slicing, which all paper examples are).
  ASSERT_EQ(ft.stages.size(), 5u);
  EXPECT_EQ(ft.stages[0].name, "cfg");
  EXPECT_EQ(ft.stages[3].name, "slice");
  EXPECT_EQ(ft.stages[4].name, "bmc");
}

TEST_P(PaperExamplePipeline, StructuralModeNeedsNoSolver) {
  PipelineOptions opts;
  opts.run_bmc = false;
  const PipelineResult r = run_pipeline(GetParam().source, opts);
  ASSERT_TRUE(r.ok) << r.error;
  for (const SegmentTiming& s : r.functions[0].segments) {
    EXPECT_EQ(s.feasible, 0u);
    EXPECT_EQ(s.infeasible, 0u);
    EXPECT_EQ(s.unknown, s.paths.size());
    EXPECT_EQ(s.bmc_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Examples, PaperExamplePipeline,
    ::testing::ValuesIn(testing::kPaperExamples),
    [](const ::testing::TestParamInfo<testing::PaperExample>& info) {
      return std::string(info.param.name);
    });

// ----------------------------------------- examples/ <-> header sync check

/// Drops comment-only lines and leading/trailing blank lines so the .mc
/// mirrors may carry a header comment the string constants do not.
std::string normalized_source(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream is(text);
  while (std::getline(is, line)) {
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line.compare(first, 2, "//") == 0)
      continue;
    lines.push_back(line);
  }
  while (!lines.empty() && lines.front().empty()) lines.erase(lines.begin());
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

class PaperExampleFiles
    : public ::testing::TestWithParam<testing::PaperExample> {};

TEST_P(PaperExampleFiles, MirrorMatchesHeaderConstant) {
  // tests drive the header strings, the CLI and CI drive examples/*.mc;
  // they must not drift apart.
  const std::string path = std::string(TMG_SOURCE_DIR) + "/examples/" +
                           GetParam().name + ".mc";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(normalized_source(buf.str()),
            normalized_source(GetParam().source))
      << path << " drifted from tests/paper_examples.h";
}

INSTANTIATE_TEST_SUITE_P(
    Examples, PaperExampleFiles, ::testing::ValuesIn(testing::kPaperExamples),
    [](const ::testing::TestParamInfo<testing::PaperExample>& info) {
      return std::string(info.param.name);
    });

// -------------------------------------------------- example-specific facts

TEST(PipelineExamples, B3CorrelatedConditionsPrunedAtFullBound) {
  PipelineOptions opts;
  opts.path_bound = 8;  // whole function: 8 structural paths
  const PipelineResult r = run_pipeline(testing::kExampleB3, opts);
  ASSERT_TRUE(r.ok) << r.error;
  const SegmentTiming& seg = r.functions[0].segments[0];
  EXPECT_TRUE(seg.whole_function);
  EXPECT_EQ(seg.feasible, 4u);
  EXPECT_EQ(seg.infeasible, 4u);
}

TEST(PipelineExamples, B5LoopBodySegmentHasPerIterationPaths) {
  const PipelineResult r = run_pipeline(testing::kExampleB5);
  ASSERT_TRUE(r.ok) << r.error;
  // The loop body arm (if/else over flag) is one region segment with two
  // per-iteration paths, both feasible.
  bool found = false;
  for (const SegmentTiming& s : r.functions[0].segments) {
    if (s.kind != core::SegmentKind::Region || s.num_blocks < 2) continue;
    found = true;
    EXPECT_EQ(s.paths.size(), 2u);
    EXPECT_EQ(s.feasible, 2u);
  }
  EXPECT_TRUE(found);
}

TEST(PipelineExamples, FunctionFilterSelectsOne) {
  const std::string two =
      std::string(testing::kExampleB1) + testing::kExampleB3;
  PipelineOptions opts;
  opts.function = "b3";
  const PipelineResult r = Pipeline(opts).run(two);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].name, "b3");
}

TEST(PipelineExamples, UnknownFunctionFails) {
  PipelineOptions opts;
  opts.function = "nope";
  const PipelineResult r = Pipeline(opts).run(testing::kExampleB1);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("nope"), std::string::npos);
}

TEST(PipelineExamples, TruncatedUnrollDepthNeverClaimsInfeasible) {
  // At a user-forced depth of 2 no fig1 path can terminate; UNSAT at an
  // incomplete depth must be reported Unknown, not Infeasible (a clamped
  // depth would otherwise unsoundly drop reachable paths from the WCET).
  PipelineOptions opts;
  opts.path_bound = 6;
  opts.bmc.max_steps = 2;
  const PipelineResult r = run_pipeline(testing::kFigure1Source, opts);
  ASSERT_TRUE(r.ok) << r.error;
  const SegmentTiming& seg = r.functions[0].segments[0];
  EXPECT_EQ(seg.infeasible, 0u);
  EXPECT_EQ(seg.feasible, 0u);
  EXPECT_EQ(seg.unknown, 6u);
}

TEST(PipelineExamples, CompileErrorIsReported) {
  const PipelineResult r = run_pipeline("void f(void) { oops(); }");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("undeclared"), std::string::npos);
}

// -------------------------------------------------- parallel engine + jobs

TEST(ParallelEngine, JobCountIsOnePerEnumeratedPath) {
  const PipelineResult r = run_pipeline(testing::kFigure1Source);
  ASSERT_TRUE(r.ok) << r.error;
  std::size_t paths = 0;
  for (const FunctionTiming& ft : r.functions)
    for (const SegmentTiming& s : ft.segments) paths += s.paths.size();
  EXPECT_EQ(r.analysis_jobs, paths);
  EXPECT_GE(r.analysis_workers, 1u);
}

std::string full_report(const char* src, PipelineOptions opts,
                        ReportFormat format) {
  const PipelineResult r = Pipeline(opts).run(src);
  EXPECT_TRUE(r.ok) << r.error;
  std::ostringstream os;
  render_report(r, opts, format, /*with_stages=*/false, os);
  return os.str();
}

// The headline determinism guarantee: the default report of every format
// is byte-identical across worker counts and across repeated runs.
TEST(ParallelEngine, ReportsAreByteIdenticalAcrossJobCounts) {
  const struct {
    const char* name;
    const char* src;
  } cases[] = {{"fig1", testing::kFigure1Source}, {"b4", testing::kExampleB4}};
  for (const auto& c : cases) {
    for (const ReportFormat fmt :
         {ReportFormat::Text, ReportFormat::Csv, ReportFormat::Json}) {
      PipelineOptions serial;
      serial.jobs = 1;
      PipelineOptions pool;
      pool.jobs = 4;
      const std::string a = full_report(c.src, serial, fmt);
      const std::string b = full_report(c.src, pool, fmt);
      const std::string b2 = full_report(c.src, pool, fmt);
      EXPECT_EQ(a, b) << c.name << " --jobs 1 vs --jobs 4";
      EXPECT_EQ(b, b2) << c.name << " repeated --jobs 4 runs";
    }
  }
}

TEST(ParallelEngine, VerdictsStableAcrossManyWorkers) {
  // More workers than jobs, repeated: verdict counts must never move.
  PipelineOptions opts;
  opts.path_bound = 6;
  opts.jobs = 16;
  for (int i = 0; i < 3; ++i) {
    const PipelineResult r = run_pipeline(testing::kFigure1Source, opts);
    ASSERT_TRUE(r.ok) << r.error;
    const SegmentTiming& seg = r.functions[0].segments[0];
    EXPECT_EQ(seg.feasible, 2u);
    EXPECT_EQ(seg.infeasible, 4u);
  }
}

// ------------------------------------------------- optimisation passes

TEST(OptPipeline, PassesShrinkEncodingButKeepTheTimingModel) {
  // The Table-2 acceptance claim, programmatically: same BCET/WCET table,
  // strictly fewer state bits, no more transitions.
  for (const testing::PaperExample& ex : testing::kPaperExamples) {
    const Table2Report r = table2_compare({ex.source}, {}, PipelineOptions{});
    ASSERT_TRUE(r.ok) << ex.name << ": " << r.error;
    ASSERT_EQ(r.rows.size(), 1u) << ex.name;
    const Table2Row& row = r.rows[0];
    EXPECT_TRUE(row.model_identical) << ex.name;
    EXPECT_LT(row.bits_opt, row.bits_plain) << ex.name;
    EXPECT_LE(row.trans_opt, row.trans_plain) << ex.name;
    EXPECT_LE(row.depth_opt, row.depth_plain) << ex.name;
  }
}

TEST(OptPipeline, ReportsCarryPassRows) {
  PipelineOptions opts;
  opts.opt_passes = opt::all_passes();
  const PipelineResult r = run_pipeline(testing::kFigure1Source, opts);
  ASSERT_TRUE(r.ok) << r.error;
  const FunctionTiming& ft = r.functions[0];
  ASSERT_EQ(ft.pass_reports.size(), 6u);
  EXPECT_LT(ft.state_bits, ft.state_bits_before);
  EXPECT_LT(ft.locations, ft.locations_before);
  EXPECT_LE(ft.transitions, ft.transitions_before);
  // The optimise stage is timed between translate and slice/bmc.
  ASSERT_EQ(ft.stages.size(), 6u);
  EXPECT_EQ(ft.stages[3].name, "optimise");
  EXPECT_EQ(ft.stages[4].name, "slice");

  std::ostringstream text;
  render_report(r, opts, ReportFormat::Text, false, text);
  EXPECT_NE(text.str().find("optimisation passes"), std::string::npos);
  EXPECT_NE(text.str().find("statement-concat"), std::string::npos);

  std::ostringstream csv;
  render_report(r, opts, ReportFormat::Csv, false, csv);
  EXPECT_NE(csv.str().find("function,pass,vars_before,"), std::string::npos);
  EXPECT_NE(csv.str().find("fig1,reverse-cse,"), std::string::npos);

  std::ostringstream json;
  render_report(r, opts, ReportFormat::Json, false, json);
  EXPECT_NE(json.str().find("\"passes\":["), std::string::npos);
  EXPECT_NE(json.str().find("\"state_bits_before\":"), std::string::npos);
}

TEST(OptPipeline, OptimisedWitnessesStillValidate) {
  // The replay cross-check must survive the variable remapping: feasible
  // paths of the optimised system still yield inputs that drive the
  // interpreter down the claimed path.
  for (const testing::PaperExample& ex : testing::kPaperExamples) {
    PipelineOptions opts;
    opts.opt_passes = opt::all_passes();
    const PipelineResult r = run_pipeline(ex.source, opts);
    ASSERT_TRUE(r.ok) << ex.name << ": " << r.error;
    for (const SegmentTiming& s : r.functions[0].segments)
      EXPECT_EQ(s.mismatched, 0u) << ex.name << " segment " << s.id;
  }
}

TEST(OptPipeline, OptimisedReportIdenticalAcrossJobCounts) {
  PipelineOptions serial;
  serial.jobs = 1;
  serial.opt_passes = opt::all_passes();
  PipelineOptions pool = serial;
  pool.jobs = 4;
  for (const ReportFormat fmt :
       {ReportFormat::Text, ReportFormat::Csv, ReportFormat::Json}) {
    EXPECT_EQ(full_report(testing::kExampleB4, serial, fmt),
              full_report(testing::kExampleB4, pool, fmt));
  }
}

TEST(Table2, BatchAggregatesAndNamesFailingFile) {
  const Table2Report ok = table2_compare(
      {testing::kExampleB1, testing::kExampleB2}, {"one.mc", "two.mc"},
      PipelineOptions{});
  ASSERT_TRUE(ok.ok) << ok.error;
  ASSERT_EQ(ok.rows.size(), 2u);
  EXPECT_EQ(ok.rows[0].file, "one.mc");
  EXPECT_TRUE(ok.all_identical());

  const Table2Report bad = table2_compare(
      {testing::kExampleB1, "void broken(void) { oops(); }"},
      {"one.mc", "bad.mc"}, PipelineOptions{});
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("bad.mc"), std::string::npos);
}

// ------------------------------------- per-iteration decision schedules

TEST(DecisionSchedule, B5LoopPathsAreConclusive) {
  // b5's loop body branches on `flag`, so its whole-function paths
  // revisit the branch with (potentially) different outcomes — the old
  // forced-choice policy reported 14 of 15 paths Unknown. The schedule
  // encoding decides every path: only the schedules where all iterations
  // agree with the constant flag survive.
  PipelineOptions opts;
  opts.path_bound = 1'000'000;  // whole function = one segment
  const PipelineResult r = run_pipeline(testing::kExampleB5, opts);
  ASSERT_TRUE(r.ok) << r.error;
  const SegmentTiming& seg = r.functions[0].segments[0];
  EXPECT_TRUE(seg.whole_function);
  ASSERT_EQ(seg.paths.size(), 15u);
  EXPECT_EQ(seg.unknown, 0u);
  EXPECT_EQ(seg.feasible, 7u);    // empty + (then^k | else^k), k = 1..3
  EXPECT_EQ(seg.infeasible, 8u);  // mixed branch outcomes: flag is fixed
  EXPECT_TRUE(seg.conclusive());
  // Every feasible path's witness validated through the interpreter,
  // per-iteration decision trace included.
  EXPECT_EQ(seg.validated, 7u);
  EXPECT_EQ(seg.mismatched, 0u);
  EXPECT_EQ(seg.bcet, 2);
  EXPECT_EQ(seg.wcet, 14);
}

TEST(DecisionSchedule, B7DoWhileAndSwitchConclusive) {
  PipelineOptions opts;
  opts.path_bound = 1'000'000;
  const PipelineResult r = run_pipeline(testing::kExampleB7, opts);
  ASSERT_TRUE(r.ok) << r.error;
  const SegmentTiming& seg = r.functions[0].segments[0];
  EXPECT_EQ(seg.unknown, 0u);
  EXPECT_TRUE(seg.conclusive());
  EXPECT_EQ(seg.mismatched, 0u);
  EXPECT_EQ(seg.feasible, seg.validated);
}

TEST(DecisionSchedule, FeasiblePathsCarryTheirDecisionTrace) {
  PipelineOptions opts;
  opts.path_bound = 1'000'000;
  const PipelineResult r = run_pipeline(testing::kExampleB5, opts);
  ASSERT_TRUE(r.ok) << r.error;
  const SegmentTiming& seg = r.functions[0].segments[0];
  for (const PathTiming& p : seg.paths) {
    if (p.verdict != PathVerdict::Feasible) continue;
    ASSERT_FALSE(p.witness.empty());
    // Whole-function paths: the witness's decision trace is exactly the
    // path's own choice schedule, and it lists one branch outcome per
    // loop iteration.
    EXPECT_FALSE(p.decision_trace.empty());
  }
}

TEST(DecisionSchedule, ConclusiveSurvivesTheOptimisationPasses) {
  PipelineOptions plain;
  plain.path_bound = 1'000'000;
  PipelineOptions optim = plain;
  optim.opt_passes = opt::all_passes();
  const PipelineResult a = run_pipeline(testing::kExampleB5, plain);
  const PipelineResult b = run_pipeline(testing::kExampleB5, optim);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_TRUE(a.functions[0].conclusive());
  EXPECT_TRUE(b.functions[0].conclusive());
  EXPECT_EQ(a.functions[0].segments[0].feasible,
            b.functions[0].segments[0].feasible);
}

// ----------------------------------------- witness-trace golden (b5 loop)

/// Stable rendering of one segment's feasible-path decision traces:
/// `blocks | trace` per line. No wall-clock columns by construction.
std::string render_traces(const SegmentTiming& seg) {
  std::ostringstream os;
  for (const PathTiming& p : seg.paths) {
    if (p.verdict != PathVerdict::Feasible) continue;
    for (std::size_t i = 0; i < p.blocks.size(); ++i)
      os << (i > 0 ? ">" : "") << p.blocks[i];
    os << " | ";
    for (std::size_t i = 0; i < p.decision_trace.size(); ++i)
      os << (i > 0 ? "," : "") << p.decision_trace[i].from << ":"
         << p.decision_trace[i].succ_index;
    os << "\n";
  }
  return os.str();
}

TEST(GoldenTrace, B5PerIterationWitnessTracesMatchCommitted) {
  // The per-iteration witness traces of b5's loop paths are a pure
  // function of (source, options): preference-minimal witnesses replayed
  // through the deterministic transition system. Any change to the
  // schedule encoding, the minimisation or the translator shows up here.
  PipelineOptions opts;
  opts.path_bound = 1'000'000;
  opts.jobs = 1;
  const PipelineResult r = run_pipeline(testing::kExampleB5, opts);
  ASSERT_TRUE(r.ok) << r.error;
  const std::string got = render_traces(r.functions[0].segments[0]);

  std::ifstream golden(std::string(TMG_SOURCE_DIR) +
                       "/tests/golden/b5_witness_traces.txt");
  ASSERT_TRUE(golden.good()) << "golden file missing";
  std::ostringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(got, want.str())
      << "b5 witness traces changed. If intended, regenerate "
         "tests/golden/b5_witness_traces.txt (see TESTING.md).";
}

// ------------------------------------------------------- witness replay

TEST(WitnessReplay, Figure1WitnessesDriveTheClaimedPaths) {
  PipelineOptions opts;
  opts.path_bound = 6;  // whole function: 2 feasible end-to-end paths
  const PipelineResult r = run_pipeline(testing::kFigure1Source, opts);
  ASSERT_TRUE(r.ok) << r.error;
  const SegmentTiming& seg = r.functions[0].segments[0];
  EXPECT_EQ(seg.validated, 2u);
  EXPECT_EQ(seg.mismatched, 0u);
  for (const PathTiming& p : seg.paths) {
    if (p.verdict == PathVerdict::Feasible) {
      EXPECT_FALSE(p.witness.empty());
      EXPECT_EQ(p.replay, WitnessReplay::Validated);
    } else {
      EXPECT_EQ(p.replay, WitnessReplay::NotChecked);
    }
  }
}

TEST(WitnessReplay, EveryFeasiblePathOfTheBenchmarkSetValidates) {
  // Closing the paper's test-data loop over all examples: no generated
  // test datum may drive execution off its claimed path.
  for (const testing::PaperExample& ex : testing::kPaperExamples) {
    const PipelineResult r = run_pipeline(ex.source);
    ASSERT_TRUE(r.ok) << ex.name << ": " << r.error;
    for (const SegmentTiming& s : r.functions[0].segments) {
      EXPECT_EQ(s.mismatched, 0u) << ex.name << " segment " << s.id;
      for (const PathTiming& p : s.paths) {
        if (p.verdict == PathVerdict::Feasible && !p.witness.empty()) {
          EXPECT_EQ(p.replay, WitnessReplay::Validated)
              << ex.name << " segment " << s.id;
        }
      }
    }
  }
}

TEST(WitnessReplay, DisabledValidationLeavesPathsUnchecked) {
  PipelineOptions opts;
  opts.path_bound = 6;
  opts.validate_witnesses = false;
  const PipelineResult r = run_pipeline(testing::kFigure1Source, opts);
  ASSERT_TRUE(r.ok) << r.error;
  const SegmentTiming& seg = r.functions[0].segments[0];
  EXPECT_EQ(seg.validated, 0u);
  EXPECT_EQ(seg.mismatched, 0u);
  for (const PathTiming& p : seg.paths)
    EXPECT_EQ(p.replay, WitnessReplay::NotChecked);
}

// ------------------------------------------------------------- rendering

TEST(Rendering, CsvHasHeaderAndOneRowPerSegment) {
  const PipelineResult r = run_pipeline(testing::kFigure1Source);
  ASSERT_TRUE(r.ok) << r.error;
  std::ostringstream os;
  render_report(r, PipelineOptions{}, ReportFormat::Csv, false, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("function,segment,kind,", 0), 0u);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, r.functions[0].segments.size() + 1);
}

TEST(Rendering, JsonNamesTheFunction) {
  const PipelineResult r = run_pipeline(testing::kFigure1Source);
  ASSERT_TRUE(r.ok) << r.error;
  std::ostringstream os;
  render_report(r, PipelineOptions{}, ReportFormat::Json, false, os);
  EXPECT_NE(os.str().find("\"name\":\"fig1\""), std::string::npos);
  EXPECT_NE(os.str().find("\"segments\":["), std::string::npos);
}

TEST(Rendering, TextMentionsTimingModel) {
  const PipelineResult r = run_pipeline(testing::kFigure1Source);
  ASSERT_TRUE(r.ok) << r.error;
  std::ostringstream os;
  render_report(r, PipelineOptions{}, ReportFormat::Text, true, os);
  EXPECT_NE(os.str().find("segment timing model"), std::string::npos);
  EXPECT_NE(os.str().find("stage timing"), std::string::npos);
}

TEST(Rendering, ParseFormatNames) {
  ReportFormat f = ReportFormat::Text;
  EXPECT_TRUE(parse_format("csv", f));
  EXPECT_EQ(f, ReportFormat::Csv);
  EXPECT_TRUE(parse_format("json", f));
  EXPECT_TRUE(parse_format("text", f));
  EXPECT_FALSE(parse_format("xml", f));
}

// ------------------------------------------------------------------- CLI

TEST(Cli, ParsesAllOptions) {
  CliOptions opts;
  std::string error;
  ASSERT_TRUE(parse_cli({"--bound=2", "--format=csv", "--no-bmc",
                         "--max-paths=9", "--function=main", "--stats",
                         "prog.mc"},
                        opts, error))
      << error;
  EXPECT_EQ(opts.pipeline.path_bound, 2u);
  EXPECT_EQ(opts.format, ReportFormat::Csv);
  EXPECT_FALSE(opts.pipeline.run_bmc);
  EXPECT_EQ(opts.pipeline.max_paths_per_segment, 9u);
  EXPECT_EQ(opts.pipeline.function, "main");
  EXPECT_TRUE(opts.with_stages);
  ASSERT_EQ(opts.inputs.size(), 1u);
  EXPECT_EQ(opts.inputs[0], "prog.mc");
}

TEST(Cli, ParsesJobsBenchAndNoValidate) {
  CliOptions opts;
  std::string error;
  ASSERT_TRUE(parse_cli({"--jobs=8", "--bench=5", "--no-validate", "a.mc"},
                        opts, error))
      << error;
  EXPECT_EQ(opts.pipeline.jobs, 8u);
  EXPECT_EQ(opts.bench_repeats, 5u);
  EXPECT_FALSE(opts.pipeline.validate_witnesses);

  CliOptions defaults;
  ASSERT_TRUE(parse_cli({"--bench", "a.mc"}, defaults, error)) << error;
  EXPECT_EQ(defaults.bench_repeats, 3u);
  EXPECT_EQ(defaults.pipeline.jobs, 0u);  // 0 = hardware concurrency
  EXPECT_TRUE(defaults.pipeline.validate_witnesses);
}

TEST(Cli, RejectsBadJobsAndBenchValues) {
  CliOptions opts;
  std::string error;
  EXPECT_FALSE(parse_cli({"--jobs=0", "a.mc"}, opts, error));
  EXPECT_NE(error.find("--jobs"), std::string::npos);
  EXPECT_FALSE(parse_cli({"--jobs=boom", "a.mc"}, opts, error));
  EXPECT_FALSE(parse_cli({"--bench=0", "a.mc"}, opts, error));
  EXPECT_NE(error.find("--bench"), std::string::npos);
}

TEST(Cli, RejectsConflictingModes) {
  CliOptions opts;
  std::string error;
  EXPECT_FALSE(parse_cli({"--bench", "--table1", "a.mc"}, opts, error));
  EXPECT_NE(error.find("--bench"), std::string::npos);
  opts = {};
  EXPECT_FALSE(parse_cli({"--bench", "--dot", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(parse_cli({"--bench", "--sal", "a.mc"}, opts, error));
  // --bench is JSON-only: an explicit conflicting format is an error, an
  // explicit --format=json is redundant but fine.
  opts = {};
  EXPECT_FALSE(parse_cli({"--bench", "--format=csv", "a.mc"}, opts, error));
  EXPECT_NE(error.find("JSON"), std::string::npos);
  opts = {};
  EXPECT_TRUE(parse_cli({"--bench", "--format=json", "a.mc"}, opts, error))
      << error;
  // Dump/summary modes have no batch rendering: one input only.
  opts = {};
  EXPECT_FALSE(parse_cli({"--table1", "a.mc", "b.mc"}, opts, error));
  EXPECT_NE(error.find("exactly one input"), std::string::npos);
  opts = {};
  EXPECT_FALSE(parse_cli({"--dot", "a.mc", "b.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(parse_cli({"--sal", "a.mc", "b.mc"}, opts, error));
  opts = {};
  EXPECT_TRUE(parse_cli({"--table1", "a.mc"}, opts, error)) << error;
}

TEST(Cli, AcceptsMultipleInputFiles) {
  CliOptions opts;
  std::string error;
  ASSERT_TRUE(parse_cli({"a.mc", "b.mc", "c.mc"}, opts, error)) << error;
  ASSERT_EQ(opts.inputs.size(), 3u);
  EXPECT_EQ(opts.inputs[0], "a.mc");
  EXPECT_EQ(opts.inputs[2], "c.mc");
}

TEST(Cli, ParsesOptAndTable2) {
  CliOptions opts;
  std::string error;
  ASSERT_TRUE(parse_cli({"--opt", "a.mc"}, opts, error)) << error;
  EXPECT_EQ(opts.pipeline.opt_passes, opt::all_passes());

  opts = {};
  ASSERT_TRUE(parse_cli({"--opt=range-analysis,statement-concat", "a.mc"},
                        opts, error))
      << error;
  ASSERT_EQ(opts.pipeline.opt_passes.size(), 2u);
  EXPECT_EQ(opts.pipeline.opt_passes[0], opt::Pass::RangeAnalysis);
  EXPECT_EQ(opts.pipeline.opt_passes[1], opt::Pass::StatementConcat);

  opts = {};
  EXPECT_FALSE(parse_cli({"--opt=frobnicate", "a.mc"}, opts, error));
  EXPECT_NE(error.find("unknown pass"), std::string::npos);
  opts = {};
  EXPECT_FALSE(parse_cli({"--opt=", "a.mc"}, opts, error));
  // Empty items anywhere in the list are errors, not silent drops.
  opts = {};
  EXPECT_FALSE(parse_cli({"--opt=reverse-cse,", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(parse_cli({"--opt=,reverse-cse", "a.mc"}, opts, error));

  opts = {};
  ASSERT_TRUE(parse_cli({"--table2", "a.mc", "b.mc"}, opts, error)) << error;
  EXPECT_TRUE(opts.table2);

  // --table2 is a bare flag and conflicts with the other modes.
  opts = {};
  EXPECT_FALSE(parse_cli({"--table2=3", "a.mc"}, opts, error));
  EXPECT_NE(error.find("takes no value"), std::string::npos);
  opts = {};
  EXPECT_FALSE(parse_cli({"--table2", "--table1", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(parse_cli({"--table2", "--dot", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(parse_cli({"--bench", "--table2", "a.mc"}, opts, error));
}

TEST(Cli, ParsesSessionsCacheAndServeFlags) {
  CliOptions opts;
  std::string error;
  ASSERT_TRUE(parse_cli({"--sessions=off", "a.mc"}, opts, error)) << error;
  EXPECT_FALSE(opts.pipeline.use_sessions);
  opts = {};
  ASSERT_TRUE(parse_cli({"--sessions=on", "a.mc"}, opts, error)) << error;
  EXPECT_TRUE(opts.pipeline.use_sessions);
  opts = {};
  EXPECT_FALSE(parse_cli({"--sessions=maybe", "a.mc"}, opts, error));
  EXPECT_NE(error.find("on or off"), std::string::npos);

  opts = {};
  ASSERT_TRUE(parse_cli({"--cache-dir=/tmp/c", "--cache=ro", "a.mc"}, opts,
                        error))
      << error;
  EXPECT_EQ(opts.cache_dir, "/tmp/c");
  EXPECT_EQ(opts.cache_mode, CacheMode::ReadOnly);
  opts = {};
  ASSERT_TRUE(parse_cli({"--cache-dir=/tmp/c", "a.mc"}, opts, error));
  EXPECT_EQ(opts.cache_mode, CacheMode::ReadWrite);  // rw is the default
  opts = {};
  EXPECT_FALSE(parse_cli({"--cache=banana", "a.mc"}, opts, error));
  EXPECT_NE(error.find("off, ro or rw"), std::string::npos);
  // ro/rw without a directory is a configuration mistake, not a no-op.
  opts = {};
  EXPECT_FALSE(parse_cli({"--cache=rw", "a.mc"}, opts, error));
  EXPECT_NE(error.find("--cache-dir"), std::string::npos);
  opts = {};
  ASSERT_TRUE(parse_cli({"--cache=off", "a.mc"}, opts, error)) << error;

  opts = {};
  ASSERT_TRUE(parse_cli({"serve", "--socket=/tmp/s.sock"}, opts, error))
      << error;
  EXPECT_TRUE(opts.serve);
  EXPECT_EQ(opts.socket_path, "/tmp/s.sock");
  opts = {};
  ASSERT_TRUE(
      parse_cli({"client", "--socket=/tmp/s.sock", "a.mc"}, opts, error))
      << error;
  EXPECT_TRUE(opts.client);
  opts = {};
  ASSERT_TRUE(parse_cli({"client", "--socket=/tmp/s.sock", "--shutdown"},
                        opts, error))
      << error;
  EXPECT_TRUE(opts.client_shutdown);

  // Subcommand validation: sockets need subcommands and vice versa.
  opts = {};
  EXPECT_FALSE(parse_cli({"serve"}, opts, error));
  EXPECT_NE(error.find("--socket"), std::string::npos);
  opts = {};
  EXPECT_FALSE(parse_cli({"--socket=/tmp/s.sock", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(parse_cli({"--shutdown", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(
      parse_cli({"serve", "--socket=/tmp/s.sock", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(parse_cli({"serve", "--socket=/tmp/s.sock", "--bench"}, opts,
                         error));
}

TEST(Cli, ParsesServeTransportsAndCacheCap) {
  CliOptions opts;
  std::string error;

  // TCP alongside or instead of the unix socket, plus the serve knobs.
  ASSERT_TRUE(parse_cli({"serve", "--listen=127.0.0.1:7777",
                         "--serve-workers=4", "--max-request-mb=8"},
                        opts, error))
      << error;
  EXPECT_EQ(opts.listen_addr, "127.0.0.1:7777");
  EXPECT_EQ(opts.serve_workers, 4u);
  EXPECT_EQ(opts.max_request_bytes, 8u << 20);
  opts = {};
  ASSERT_TRUE(parse_cli({"serve", "--socket=/tmp/s.sock",
                         "--listen=localhost:0"},
                        opts, error))
      << error;
  EXPECT_EQ(opts.socket_path, "/tmp/s.sock");
  EXPECT_EQ(opts.listen_addr, "localhost:0");
  opts = {};
  ASSERT_TRUE(
      parse_cli({"client", "--connect=localhost:7777", "a.mc"}, opts, error))
      << error;
  EXPECT_EQ(opts.connect_addr, "localhost:7777");

  // The cache cap parses as MiB and requires a cache directory.
  opts = {};
  ASSERT_TRUE(parse_cli({"--cache-dir=/tmp/c", "--cache-max-mb=2", "a.mc"},
                        opts, error))
      << error;
  EXPECT_EQ(opts.cache_max_bytes, 2u << 20);
  opts = {};
  EXPECT_FALSE(parse_cli({"--cache-max-mb=2", "a.mc"}, opts, error));
  EXPECT_NE(error.find("--cache-dir"), std::string::npos);
  opts = {};
  EXPECT_FALSE(
      parse_cli({"--cache-dir=/tmp/c", "--cache-max-mb=0", "a.mc"}, opts,
                error));

  // Transport flags are tied to their subcommand: client picks exactly
  // one transport, serve-only knobs stay serve-only.
  opts = {};
  EXPECT_FALSE(parse_cli({"client", "--socket=/tmp/s.sock",
                          "--connect=localhost:7777", "a.mc"},
                         opts, error));
  EXPECT_NE(error.find("exactly one"), std::string::npos);
  opts = {};
  EXPECT_FALSE(parse_cli({"client", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(
      parse_cli({"client", "--listen=localhost:7777", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(
      parse_cli({"--connect=localhost:7777", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(parse_cli({"--serve-workers=4", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(parse_cli({"--max-request-mb=8", "a.mc"}, opts, error));
  opts = {};
  EXPECT_FALSE(parse_cli({"serve", "--listen="}, opts, error));
  opts = {};
  EXPECT_FALSE(
      parse_cli({"serve", "--listen=:0", "--serve-workers=0"}, opts, error));
}

TEST(Cli, SplitHostPortTakesLastColon) {
  std::string host, port;
  ASSERT_TRUE(split_host_port("127.0.0.1:8080", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, "8080");
  ASSERT_TRUE(split_host_port("::1:8080", host, port));  // IPv6 literal
  EXPECT_EQ(host, "::1");
  EXPECT_EQ(port, "8080");
  EXPECT_FALSE(split_host_port("nohost", host, port));
  EXPECT_FALSE(split_host_port(":8080", host, port));
  EXPECT_FALSE(split_host_port("host:", host, port));
}

TEST(Cli, RejectsUnknownOption) {
  CliOptions opts;
  std::string error;
  EXPECT_FALSE(parse_cli({"--frobnicate", "x.mc"}, opts, error));
  EXPECT_NE(error.find("--frobnicate"), std::string::npos);
}

TEST(Cli, BareFlagsRejectAttachedValues) {
  CliOptions opts;
  std::string error;
  EXPECT_FALSE(parse_cli({"--no-bmc=false", "x.mc"}, opts, error));
  EXPECT_NE(error.find("takes no value"), std::string::npos);
  EXPECT_FALSE(parse_cli({"--stats=1", "x.mc"}, opts, error));
}

TEST(Cli, RequiresInputFile) {
  CliOptions opts;
  std::string error;
  EXPECT_FALSE(parse_cli({"--bound=2"}, opts, error));
  EXPECT_NE(error.find("no input file"), std::string::npos);
}

TEST(Cli, Table1DefaultsToSevenBounds) {
  CliOptions opts;
  std::string error;
  ASSERT_TRUE(parse_cli({"--table1", "x.mc"}, opts, error));
  EXPECT_EQ(opts.table1_max_bound, 7u);
  CliOptions opts2;
  ASSERT_TRUE(parse_cli({"--table1=3", "y.mc"}, opts2, error));
  EXPECT_EQ(opts2.table1_max_bound, 3u);
}

class CliFileTest : public ::testing::Test {
 protected:
  void write_file(const char* content) {
    // Unique per test: parallel ctest siblings must not race on the path.
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    path_ = ::testing::TempDir() + "tmg_cli_test_" + tag + ".mc";
    std::ofstream f(path_);
    f << content;
  }
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  int run(std::vector<std::string> extra_args) {
    std::vector<const char*> argv = {"tmg"};
    for (const std::string& a : extra_args) argv.push_back(a.c_str());
    argv.push_back(path_.c_str());
    out_.str("");
    err_.str("");
    return run_cli(static_cast<int>(argv.size()), argv.data(), out_, err_);
  }

  std::string path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliFileTest, RunsPipelineOnFile) {
  write_file(testing::kFigure1Source);
  EXPECT_EQ(run({}), 0) << err_.str();
  EXPECT_NE(out_.str().find("segment timing model"), std::string::npos);
  EXPECT_NE(out_.str().find("fig1"), std::string::npos);
}

TEST_F(CliFileTest, CsvModeIsMachineReadable) {
  write_file(testing::kFigure1Source);
  EXPECT_EQ(run({"--format=csv", "--bound=6"}), 0) << err_.str();
  EXPECT_EQ(out_.str().rfind("function,segment,kind,", 0), 0u);
  EXPECT_NE(out_.str().find("fig1,0,function"), std::string::npos);
}

TEST_F(CliFileTest, Table1Mode) {
  write_file(testing::kFigure1Source);
  EXPECT_EQ(run({"--table1"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("Table 1"), std::string::npos);
}

TEST_F(CliFileTest, MissingFileFails) {
  path_ = "/nonexistent/definitely_missing.mc";
  EXPECT_EQ(run({}), 2);
  EXPECT_NE(err_.str().find("cannot open"), std::string::npos);
  path_.clear();
}

TEST_F(CliFileTest, CompileErrorExitsTwo) {
  write_file("void f(void) { x = 1; }");
  EXPECT_EQ(run({}), 2);
  EXPECT_NE(err_.str().find("undeclared"), std::string::npos);
}

TEST_F(CliFileTest, DotAndSalDumps) {
  write_file(testing::kFigure1Source);
  EXPECT_EQ(run({"--dot"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("digraph"), std::string::npos);
  EXPECT_EQ(run({"--sal"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("MODULE"), std::string::npos);
}

TEST_F(CliFileTest, OptModeShowsPassTable) {
  write_file(testing::kFigure1Source);
  EXPECT_EQ(run({"--opt"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("optimisation passes"), std::string::npos);
  EXPECT_NE(out_.str().find("segment timing model"), std::string::npos);
}

TEST_F(CliFileTest, Table2ModeComparesBeforeAfter) {
  write_file(testing::kFigure1Source);
  EXPECT_EQ(run({"--table2"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("Table 2"), std::string::npos);
  EXPECT_NE(out_.str().find("identical"), std::string::npos);
  EXPECT_EQ(run({"--table2", "--format=json"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("\"table2\":{"), std::string::npos);
  EXPECT_NE(out_.str().find("\"all_identical\":true"), std::string::npos);
}

TEST_F(CliFileTest, OptimisedSalDumpIsSmaller) {
  write_file(testing::kExampleB1);
  EXPECT_EQ(run({"--sal"}), 0) << err_.str();
  const std::string plain = out_.str();
  EXPECT_EQ(run({"--sal", "--opt"}), 0) << err_.str();
  EXPECT_LT(out_.str().size(), plain.size());
  EXPECT_NE(out_.str().find("MODULE"), std::string::npos);
}

class CliBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each test in its own process, in parallel: the file names
    // must be unique per test or a sibling's TearDown races our reads.
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fig1_ = ::testing::TempDir() + "tmg_batch_fig1_" + tag + ".mc";
    b1_ = ::testing::TempDir() + "tmg_batch_b1_" + tag + ".mc";
    std::ofstream(fig1_) << testing::kFigure1Source;
    std::ofstream(b1_) << testing::kExampleB1;
  }
  void TearDown() override {
    std::remove(fig1_.c_str());
    std::remove(b1_.c_str());
  }

  int run(std::vector<std::string> args) {
    std::vector<const char*> argv = {"tmg"};
    for (const std::string& a : args) argv.push_back(a.c_str());
    out_.str("");
    err_.str("");
    return run_cli(static_cast<int>(argv.size()), argv.data(), out_, err_);
  }

  std::string fig1_, b1_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliBatchTest, TextBatchHasPerFileReportsAndSummary) {
  EXPECT_EQ(run({fig1_, b1_}), 0) << err_.str();
  const std::string text = out_.str();
  EXPECT_NE(text.find("=== file " + fig1_), std::string::npos);
  EXPECT_NE(text.find("=== file " + b1_), std::string::npos);
  EXPECT_NE(text.find("=== batch summary ==="), std::string::npos);
  EXPECT_NE(text.find("== function fig1 =="), std::string::npos);
  EXPECT_NE(text.find("== function b1 =="), std::string::npos);
}

TEST_F(CliBatchTest, CsvBatchPrependsFileColumn) {
  EXPECT_EQ(run({"--format=csv", fig1_, b1_}), 0) << err_.str();
  const std::string csv = out_.str();
  EXPECT_EQ(csv.rfind("file,function,segment,kind,", 0), 0u);
  // One header line only, rows for both files.
  EXPECT_EQ(csv.find("file,function"), csv.rfind("file,function"));
  EXPECT_NE(csv.find(fig1_ + ",fig1,"), std::string::npos);
  EXPECT_NE(csv.find(b1_ + ",b1,"), std::string::npos);
}

TEST_F(CliBatchTest, JsonBatchHasFilesAndAggregate) {
  EXPECT_EQ(run({"--format=json", fig1_, b1_}), 0) << err_.str();
  const std::string json = out_.str();
  EXPECT_EQ(json.rfind("{\"files\":[", 0), 0u);
  EXPECT_NE(json.find("\"aggregate\":{"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fig1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"b1\""), std::string::npos);
  EXPECT_NE(json.find("\"validated\":"), std::string::npos);
  // Same key as the text/CSV column header and README: "mismatch".
  EXPECT_NE(json.find("\"mismatch\":"), std::string::npos);
  EXPECT_EQ(json.find("\"mismatched\":"), std::string::npos);
}

TEST_F(CliBatchTest, BatchOutputIdenticalAcrossJobCounts) {
  EXPECT_EQ(run({"--format=json", "--jobs=1", fig1_, b1_}), 0) << err_.str();
  const std::string serial = out_.str();
  EXPECT_EQ(run({"--format=json", "--jobs=4", fig1_, b1_}), 0) << err_.str();
  EXPECT_EQ(serial, out_.str());
}

TEST_F(CliBatchTest, BenchEmitsJsonPerfReport) {
  EXPECT_EQ(run({"--bench=1", "--jobs=2", fig1_, b1_}), 0) << err_.str();
  const std::string json = out_.str();
  EXPECT_EQ(json.rfind("{\"bench\":{", 0), 0u);
  EXPECT_NE(json.find("\"repeats\":1"), std::string::npos);
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"serial_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"parallel_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"optimised_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\":"), std::string::npos);
  EXPECT_NE(json.find("\"opt_speedup\":"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_per_second\":"), std::string::npos);
  EXPECT_NE(json.find("\"workers_used\":"), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\":{"), std::string::npos);
  // Both inputs appear.
  EXPECT_NE(json.find("tmg_batch_fig1_"), std::string::npos);
  EXPECT_NE(json.find("tmg_batch_b1_"), std::string::npos);
}

TEST_F(CliBatchTest, FailingFileInBatchNamesTheFile) {
  const std::string bad = ::testing::TempDir() + "tmg_batch_bad_" +
                          ::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name() +
                          ".mc";
  std::ofstream(bad) << "void f(void) { oops(); }";
  EXPECT_EQ(run({fig1_, bad}), 2);
  EXPECT_NE(err_.str().find("tmg_batch_bad_"), std::string::npos);
  EXPECT_NE(err_.str().find("undeclared"), std::string::npos);
  // Bench mode must name the failing file too.
  EXPECT_EQ(run({"--bench=1", fig1_, bad}), 2);
  EXPECT_NE(err_.str().find("tmg_batch_bad_"), std::string::npos);
  std::remove(bad.c_str());
}

TEST(CliHelp, PrintsUsage) {
  std::ostringstream out, err;
  const char* argv[] = {"tmg", "--help"};
  EXPECT_EQ(run_cli(2, argv, out, err), 0);
  EXPECT_NE(out.str().find("usage: tmg"), std::string::npos);
}

// --------------------------------------------- batch frontier (run_batch)

TEST(RunBatch, PerFileResultsMatchStandalonePipelineRuns) {
  const std::vector<std::string> sources = {testing::kFigure1Source,
                                            testing::kExampleB1};
  const PipelineOptions opts;
  const BatchResult batch = run_batch(sources, {"fig1.mc", "b1.mc"}, opts);
  ASSERT_TRUE(batch.ok) << batch.error;
  ASSERT_EQ(batch.files.size(), 2u);

  const Pipeline solo(opts);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const PipelineResult alone = solo.run(sources[i]);
    const PipelineResult& batched = batch.files[i].result;
    ASSERT_TRUE(alone.ok);
    EXPECT_EQ(batched.analysis_jobs, alone.analysis_jobs);
    ASSERT_EQ(batched.functions.size(), alone.functions.size());
    for (std::size_t f = 0; f < alone.functions.size(); ++f) {
      const FunctionTiming& a = alone.functions[f];
      const FunctionTiming& b = batched.functions[f];
      EXPECT_EQ(a.name, b.name);
      ASSERT_EQ(a.segments.size(), b.segments.size());
      for (std::size_t s = 0; s < a.segments.size(); ++s) {
        EXPECT_EQ(a.segments[s].bcet, b.segments[s].bcet);
        EXPECT_EQ(a.segments[s].wcet, b.segments[s].wcet);
        EXPECT_EQ(a.segments[s].feasible, b.segments[s].feasible);
        EXPECT_EQ(a.segments[s].infeasible, b.segments[s].infeasible);
        EXPECT_EQ(a.segments[s].unknown, b.segments[s].unknown);
        EXPECT_EQ(a.segments[s].validated, b.segments[s].validated);
        ASSERT_EQ(a.segments[s].paths.size(), b.segments[s].paths.size());
        for (std::size_t p = 0; p < a.segments[s].paths.size(); ++p)
          EXPECT_EQ(a.segments[s].paths[p].witness,
                    b.segments[s].paths[p].witness);
      }
    }
  }
}

TEST(RunBatch, FirstFailingFileInInputOrderWins) {
  // The second file fails; the error must name it even though the global
  // frontier keeps analysing the others.
  const std::vector<std::string> sources = {
      testing::kFigure1Source, "void broken(void) { oops(); }",
      "void also_broken(void) { nope(); }"};
  const BatchResult batch =
      run_batch(sources, {"a.mc", "b.mc", "c.mc"}, PipelineOptions{});
  EXPECT_FALSE(batch.ok);
  EXPECT_EQ(batch.error_index, 1u);
  EXPECT_EQ(batch.error.rfind("b.mc: ", 0), 0u) << batch.error;
}

TEST(RunBatch, WorkerCountDoesNotChangeResults) {
  const std::vector<std::string> sources = {testing::kFigure1Source,
                                            testing::kExampleB1};
  PipelineOptions serial;
  serial.jobs = 1;
  PipelineOptions pool;
  pool.jobs = 4;
  const BatchResult a = run_batch(sources, {}, serial);
  const BatchResult b = run_batch(sources, {}, pool);
  ASSERT_TRUE(a.ok && b.ok);
  std::ostringstream ra, rb;
  render_batch_report(a.files, serial, ReportFormat::Json, false, ra);
  render_batch_report(b.files, pool, ReportFormat::Json, false, rb);
  EXPECT_EQ(ra.str(), rb.str());
}

// ------------------------------------------------- persistent result cache

/// Fresh scratch directory per test; removed on scope exit.
struct ScratchDir {
  std::filesystem::path path;
  ScratchDir() {
    path = std::filesystem::temp_directory_path() /
           ("tmg_cache_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::size_t entries() const {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& e :
         std::filesystem::directory_iterator(path))
      ++n;
    return n;
  }
};

std::string batch_all_formats(const BatchResult& batch,
                              const PipelineOptions& opts) {
  std::ostringstream os;
  for (const ReportFormat fmt :
       {ReportFormat::Text, ReportFormat::Csv, ReportFormat::Json}) {
    render_batch_report(batch.files, opts, fmt, /*with_stages=*/false, os);
    os << "\n---\n";
  }
  return os.str();
}

TEST(ResultCache, ColdThenWarmRunsRenderIdentically) {
  const ScratchDir dir;
  const std::vector<std::string> sources = {testing::kFigure1Source,
                                            testing::kExampleB2};
  const std::vector<std::string> files = {"fig1.mc", "b2.mc"};
  const PipelineOptions opts;
  std::ostringstream warn;

  ResultCache cold(dir.path.string(), CacheMode::ReadWrite);
  const BatchResult first = run_batch_cached(sources, files, opts, cold, warn);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(cold.stats().hits, 0u);
  EXPECT_EQ(cold.stats().misses, 2u);
  EXPECT_EQ(cold.stats().writes, 2u);
  EXPECT_EQ(dir.entries(), 2u);

  ResultCache warm(dir.path.string(), CacheMode::ReadWrite);
  const BatchResult second = run_batch_cached(sources, files, opts, warm, warn);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(warm.stats().hits, 2u);
  EXPECT_EQ(warm.stats().misses, 0u);
  EXPECT_EQ(warm.stats().writes, 0u);

  // Cache-served reports are byte-identical in every format — including
  // against a run that never saw a cache at all.
  EXPECT_EQ(batch_all_formats(first, opts), batch_all_formats(second, opts));
  const BatchResult uncached = run_batch(sources, files, opts);
  ASSERT_TRUE(uncached.ok);
  EXPECT_EQ(batch_all_formats(uncached, opts), batch_all_formats(second, opts));
  EXPECT_TRUE(warn.str().empty()) << warn.str();
}

TEST(ResultCache, ConcurrentWritersNeverPublishTornEntries) {
  // Regression for the shared-temp-file race: every store used to write
  // to the same `<entry>.tmp`, so two interleaved writers could publish a
  // half-written mix of both payloads via rename. Temp names are now
  // unique per writer; whichever rename lands last, the entry is whole.
  const ScratchDir dir;
  const PipelineOptions opts;
  ResultCache cache(dir.path.string(), CacheMode::ReadWrite);
  const PipelineResult result = Pipeline(opts).run(testing::kExampleB1);
  ASSERT_TRUE(result.ok);

  constexpr int kRounds = 64;
  std::ostringstream warn_a, warn_b;
  std::thread a([&] {
    for (int i = 0; i < kRounds; ++i)
      cache.store(testing::kExampleB1, opts, result, warn_a);
  });
  std::thread b([&] {
    for (int i = 0; i < kRounds; ++i)
      cache.store(testing::kExampleB1, opts, result, warn_b);
  });
  a.join();
  b.join();
  EXPECT_TRUE(warn_a.str().empty()) << warn_a.str();
  EXPECT_TRUE(warn_b.str().empty()) << warn_b.str();
  // Every temp was renamed away: exactly the one final entry remains,
  // and it parses and serves a byte-identical report.
  EXPECT_EQ(dir.entries(), 1u);
  std::ostringstream warn;
  ResultCache reader(dir.path.string(), CacheMode::ReadOnly);
  const std::optional<PipelineResult> served =
      reader.lookup(testing::kExampleB1, opts, warn);
  ASSERT_TRUE(served.has_value()) << warn.str();
  std::ostringstream direct, cached;
  render_report(result, opts, ReportFormat::Json, true, direct);
  render_report(*served, opts, ReportFormat::Json, true, cached);
  EXPECT_EQ(direct.str(), cached.str());
  EXPECT_TRUE(warn.str().empty()) << warn.str();
}

TEST(ResultCache, KeyTracksSourceAndEveryReportAffectingOption) {
  const ScratchDir dir;
  const ResultCache cache(dir.path.string(), CacheMode::ReadWrite);
  const PipelineOptions base;
  const std::string key = cache.entry_path(testing::kExampleB1, base);

  // Different source, different entry.
  EXPECT_NE(cache.entry_path(testing::kExampleB2, base), key);

  // Every report-affecting option must move the key.
  PipelineOptions bound = base;
  bound.path_bound = 7;
  EXPECT_NE(cache.entry_path(testing::kExampleB1, bound), key);
  PipelineOptions opt = base;
  opt.opt_passes = opt::all_passes();
  EXPECT_NE(cache.entry_path(testing::kExampleB1, opt), key);
  PipelineOptions no_bmc = base;
  no_bmc.run_bmc = false;
  EXPECT_NE(cache.entry_path(testing::kExampleB1, no_bmc), key);
  PipelineOptions widths = base;
  widths.pessimistic_widths = true;
  EXPECT_NE(cache.entry_path(testing::kExampleB1, widths), key);

  // --jobs and --sessions cannot change a report: the key ignores them so
  // one entry serves every worker count.
  PipelineOptions jobs = base;
  jobs.jobs = 7;
  EXPECT_EQ(cache.entry_path(testing::kExampleB1, jobs), key);
  PipelineOptions fresh = base;
  fresh.use_sessions = false;
  EXPECT_EQ(cache.entry_path(testing::kExampleB1, fresh), key);
}

TEST(ResultCache, ReadOnlyModeNeverWrites) {
  const ScratchDir dir;
  std::ostringstream warn;
  ResultCache ro(dir.path.string(), CacheMode::ReadOnly);
  const BatchResult r = run_batch_cached({testing::kExampleB1}, {"b1.mc"},
                                         PipelineOptions{}, ro, warn);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(ro.stats().misses, 1u);
  EXPECT_EQ(ro.stats().writes, 0u);
  EXPECT_EQ(dir.entries(), 0u);  // nothing persisted
}

TEST(ResultCache, CorruptEntryWarnsAndRecomputes) {
  const ScratchDir dir;
  const PipelineOptions opts;
  std::ostringstream warn;
  ResultCache cache(dir.path.string(), CacheMode::ReadWrite);
  const BatchResult good = run_batch_cached({testing::kExampleB1}, {"b1.mc"},
                                            opts, cache, warn);
  ASSERT_TRUE(good.ok);
  ASSERT_EQ(dir.entries(), 1u);

  // Clobber the entry with bytes that are not a shard payload.
  const std::string entry = cache.entry_path(testing::kExampleB1, opts);
  {
    std::ofstream os(entry, std::ios::trunc);
    os << "{\"not\": \"a shard payload\"";
  }

  ResultCache again(dir.path.string(), CacheMode::ReadWrite);
  const BatchResult recomputed = run_batch_cached(
      {testing::kExampleB1}, {"b1.mc"}, opts, again, warn);
  ASSERT_TRUE(recomputed.ok) << recomputed.error;  // warn, never crash
  EXPECT_EQ(again.stats().hits, 0u);
  EXPECT_EQ(again.stats().misses, 1u);
  EXPECT_FALSE(warn.str().empty());
  EXPECT_EQ(batch_all_formats(good, opts),
            batch_all_formats(recomputed, opts));

  // The recompute overwrote the corrupt entry: next run hits again.
  ResultCache healed(dir.path.string(), CacheMode::ReadWrite);
  const BatchResult served = run_batch_cached({testing::kExampleB1}, {"b1.mc"},
                                              opts, healed, warn);
  ASSERT_TRUE(served.ok);
  EXPECT_EQ(healed.stats().hits, 1u);
}

std::uintmax_t dir_json_bytes(const std::filesystem::path& dir) {
  std::uintmax_t total = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.is_regular_file() && e.path().extension() == ".json")
      total += e.file_size();
  return total;
}

TEST(ResultCache, EvictionKeepsDirectoryUnderCapAndEntriesHeal) {
  const ScratchDir dir;
  const PipelineOptions opts;
  std::ostringstream warn;
  const PipelineResult r1 = Pipeline(opts).run(testing::kExampleB1);
  const PipelineResult r2 = Pipeline(opts).run(testing::kExampleB2);
  ASSERT_TRUE(r1.ok && r2.ok);

  // Measure real entry sizes with an unbounded cache, then start over
  // with a cap that fits exactly one entry.
  {
    ResultCache probe(dir.path.string(), CacheMode::ReadWrite);
    probe.store(testing::kExampleB1, opts, r1, warn);
    probe.store(testing::kExampleB2, opts, r2, warn);
  }
  const std::uintmax_t s1 = std::filesystem::file_size(
      ResultCache(dir.path.string(), CacheMode::ReadWrite)
          .entry_path(testing::kExampleB1, opts));
  const std::uintmax_t s2 = dir_json_bytes(dir.path) - s1;
  for (const auto& e : std::filesystem::directory_iterator(dir.path))
    std::filesystem::remove(e.path());
  const std::uint64_t cap = std::max(s1, s2);

  ResultCache capped(dir.path.string(), CacheMode::ReadWrite, cap);
  capped.store(testing::kExampleB1, opts, r1, warn);
  EXPECT_LE(dir_json_bytes(dir.path), cap);
  EXPECT_EQ(capped.stats().evictions, 0u);
  // Second store overflows the cap: the older entry is evicted, the dir
  // stays under the cap, and the counters record what was dropped.
  capped.store(testing::kExampleB2, opts, r2, warn);
  EXPECT_LE(dir_json_bytes(dir.path), cap);
  EXPECT_EQ(dir.entries(), 1u);
  EXPECT_EQ(capped.stats().evictions, 1u);
  EXPECT_EQ(capped.stats().evicted_bytes, s1);

  // The evicted entry misses, recomputes and heals back into the cache;
  // the report is byte-identical to an uncached run.
  const BatchResult healed = run_batch_cached(
      {testing::kExampleB1}, {"b1.mc"}, opts, capped, warn);
  ASSERT_TRUE(healed.ok) << healed.error;
  EXPECT_EQ(capped.stats().misses, 1u);
  EXPECT_EQ(capped.stats().writes, 3u);
  EXPECT_LE(dir_json_bytes(dir.path), cap);
  const BatchResult uncached = run_batch({testing::kExampleB1}, {"b1.mc"},
                                         opts);
  ASSERT_TRUE(uncached.ok);
  EXPECT_EQ(batch_all_formats(uncached, opts),
            batch_all_formats(healed, opts));
  EXPECT_TRUE(warn.str().empty()) << warn.str();
}

TEST(ResultCache, EvictionIsLruByUseNotByCreation) {
  const ScratchDir dir;
  const PipelineOptions opts;
  std::ostringstream warn;
  const PipelineResult r1 = Pipeline(opts).run(testing::kExampleB1);
  const PipelineResult r2 = Pipeline(opts).run(testing::kExampleB2);
  ASSERT_TRUE(r1.ok && r2.ok);

  // Oldest entry by *creation*: b1, then a decoy file. A hit on b1
  // refreshes its mtime, so the decoy — untouched since creation — must
  // be the eviction victim even though b1 is older.
  ResultCache probe(dir.path.string(), CacheMode::ReadWrite);
  probe.store(testing::kExampleB1, opts, r1, warn);
  const std::string b1_entry = probe.entry_path(testing::kExampleB1, opts);
  const std::uintmax_t s1 = std::filesystem::file_size(b1_entry);
  const auto now = std::filesystem::file_time_type::clock::now();
  std::filesystem::last_write_time(b1_entry, now - std::chrono::hours(2));
  const std::filesystem::path decoy = dir.path / "00decoy.json";
  {
    std::ofstream os(decoy, std::ios::binary);
    os << std::string(4096, 'x');
  }
  std::filesystem::last_write_time(decoy, now - std::chrono::hours(1));

  // The sweep only runs on store, so give the capped cache one store that
  // forces exactly one eviction. The b1 hit first refreshes b1's mtime.
  const std::uintmax_t s2_probe = [&] {
    const ScratchDir sizing;
    ResultCache c(sizing.path.string(), CacheMode::ReadWrite);
    c.store(testing::kExampleB2, opts, r2, warn);
    return dir_json_bytes(sizing.path);
  }();
  ResultCache capped(dir.path.string(), CacheMode::ReadWrite,
                     s1 + s2_probe + 1024);
  ASSERT_TRUE(
      capped.lookup(testing::kExampleB1, opts, warn).has_value());
  capped.store(testing::kExampleB2, opts, r2, warn);

  EXPECT_FALSE(std::filesystem::exists(decoy));
  EXPECT_TRUE(std::filesystem::exists(b1_entry));
  EXPECT_EQ(capped.stats().evictions, 1u);
  EXPECT_EQ(capped.stats().evicted_bytes, 4096u);
  // The survivor still hits (and heals nothing — it was never removed).
  EXPECT_TRUE(
      capped.lookup(testing::kExampleB1, opts, warn).has_value());
  EXPECT_TRUE(warn.str().empty()) << warn.str();
}

TEST(ResultCache, MtimeFastPathServesIdenticalReportAndCounts) {
  const ScratchDir dir;
  const PipelineOptions opts;
  std::ostringstream warn;
  ResultCache cache(dir.path.string(), CacheMode::ReadWrite);
  const PipelineResult computed = Pipeline(opts).run(testing::kExampleB1);
  ASSERT_TRUE(computed.ok);
  cache.store(testing::kExampleB1, opts, computed, warn);

  // Store memoised the entry: the next lookup is answered from the stat
  // fast path, byte-identical to the slow parse.
  const std::optional<PipelineResult> fast =
      cache.lookup(testing::kExampleB1, opts, warn);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().fast_hits, 1u);
  std::ostringstream direct, via_fast;
  render_report(computed, opts, ReportFormat::Json, true, direct);
  render_report(*fast, opts, ReportFormat::Json, true, via_fast);
  EXPECT_EQ(direct.str(), via_fast.str());

  // An external rewrite changes the entry's mtime: the memo identity no
  // longer matches, so the next lookup takes the slow path (a hit, not a
  // fast hit) and still serves the identical report.
  const std::string entry = cache.entry_path(testing::kExampleB1, opts);
  const std::string bytes = [&] {
    std::ifstream in(entry, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }();
  {
    std::ofstream os(entry, std::ios::binary | std::ios::trunc);
    os << bytes;
  }
  std::filesystem::last_write_time(
      entry, std::filesystem::file_time_type::clock::now() +
                 std::chrono::seconds(7));
  const std::optional<PipelineResult> slow =
      cache.lookup(testing::kExampleB1, opts, warn);
  ASSERT_TRUE(slow.has_value());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().fast_hits, 1u);
  std::ostringstream via_slow;
  render_report(*slow, opts, ReportFormat::Json, true, via_slow);
  EXPECT_EQ(direct.str(), via_slow.str());

  // A fresh cache object has no memo: first lookup is a slow hit, the
  // second rides the fast path again.
  ResultCache fresh(dir.path.string(), CacheMode::ReadWrite);
  ASSERT_TRUE(fresh.lookup(testing::kExampleB1, opts, warn).has_value());
  ASSERT_TRUE(fresh.lookup(testing::kExampleB1, opts, warn).has_value());
  EXPECT_EQ(fresh.stats().hits, 2u);
  EXPECT_EQ(fresh.stats().fast_hits, 1u);
  EXPECT_TRUE(warn.str().empty()) << warn.str();
}

#if !defined(_WIN32)  // setenv
TEST(ResultCache, FailedStoreCountsNothingAndPublishesNothing) {
  const ScratchDir dir;
  const PipelineOptions opts;
  std::ostringstream warn;
  ResultCache cache(dir.path.string(), CacheMode::ReadWrite);
  const PipelineResult computed = Pipeline(opts).run(testing::kExampleB1);
  ASSERT_TRUE(computed.ok);

  // Simulated disk-full: the write fails, the temp is removed, nothing is
  // published and `writes` stays 0 — a truncated temp must never be
  // renamed into a valid-looking entry.
  ::setenv("TMG_CACHE_FAULT", "store", 1);
  cache.store(testing::kExampleB1, opts, computed, warn);
  ::unsetenv("TMG_CACHE_FAULT");
  EXPECT_NE(warn.str().find("cannot write cache entry"), std::string::npos)
      << warn.str();
  EXPECT_EQ(dir.entries(), 0u);  // no entry AND no leaked temp
  EXPECT_EQ(cache.stats().writes, 0u);

  // The failure is not sticky: the next store publishes normally.
  std::ostringstream warn2;
  cache.store(testing::kExampleB1, opts, computed, warn2);
  EXPECT_TRUE(warn2.str().empty()) << warn2.str();
  EXPECT_EQ(dir.entries(), 1u);
  EXPECT_EQ(cache.stats().writes, 1u);
  EXPECT_TRUE(
      cache.lookup(testing::kExampleB1, opts, warn2).has_value());
}
#endif  // !defined(_WIN32)

// ------------------------------------------------------- serve wire format

TEST(ServeWire, AnalyzeRequestRendersIdenticallyToCliRun) {
  const PipelineOptions opts;
  const std::string request = serialize_serve_request(
      opts, {"b2.mc"}, {testing::kExampleB2});

  ResultCache no_cache;  // default: disabled, like serve without --cache-dir
  std::ostringstream warn;
  bool shutdown = false;
  const std::string response =
      handle_serve_request(request, no_cache, warn, shutdown);
  EXPECT_FALSE(shutdown);

  std::vector<PipelineResult> reports;
  std::string error;
  ASSERT_TRUE(parse_serve_response(response, 1, reports, error)) << error;
  ASSERT_EQ(reports.size(), 1u);

  const PipelineResult direct = Pipeline(opts).run(testing::kExampleB2);
  ASSERT_TRUE(direct.ok);
  std::ostringstream via_serve, via_cli;
  render_report(reports[0], opts, ReportFormat::Json, false, via_serve);
  render_report(direct, opts, ReportFormat::Json, false, via_cli);
  EXPECT_EQ(via_serve.str(), via_cli.str());
}

TEST(ServeWire, ShutdownRequestSetsFlag) {
  ResultCache no_cache;
  std::ostringstream warn;
  bool shutdown = false;
  (void)handle_serve_request(serialize_shutdown_request(), no_cache, warn,
                             shutdown);
  EXPECT_TRUE(shutdown);
}

TEST(ServeWire, HostileBytesAnswerInBandErrorsNotCrashes) {
  ResultCache no_cache;
  std::ostringstream warn;
  std::vector<PipelineResult> reports;
  std::string error;

  // Malformed JSON, wrong shapes, and a nesting bomb — the daemon parses
  // untrusted socket bytes, so each must produce a parseable ok:false
  // response (or a response parse_serve_response rejects cleanly).
  const std::string bomb(100'000, '[');
  for (const std::string& payload :
       {std::string("not json"), std::string("{\"v\":1}"),
        std::string("{\"v\":1,\"cmd\":\"analyze\",\"files\":3}"), bomb}) {
    bool shutdown = false;
    const std::string response =
        handle_serve_request(payload, no_cache, warn, shutdown);
    EXPECT_FALSE(shutdown);
    reports.clear();
    EXPECT_FALSE(parse_serve_response(response, 1, reports, error));
    EXPECT_FALSE(error.empty());
  }
}

TEST(ServeWire, RepeatSubmissionIsServedFromCache) {
  const ScratchDir dir;
  ResultCache cache(dir.path.string(), CacheMode::ReadWrite);
  std::ostringstream warn;
  const std::string request = serialize_serve_request(
      PipelineOptions{}, {"b1.mc"}, {testing::kExampleB1});

  bool shutdown = false;
  const std::string first =
      handle_serve_request(request, cache, warn, shutdown);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().writes, 1u);
  const std::string second =
      handle_serve_request(request, cache, warn, shutdown);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(first, second);  // cached answer is byte-identical
}

TEST(ServeWire, MetricsRequestCountsAdvanceAcrossRequests) {
  const ScratchDir dir;
  ResultCache cache(dir.path.string(), CacheMode::ReadWrite);
  std::ostringstream warn;
  bool shutdown = false;

  const auto metrics = [&]() {
    const std::string response = handle_serve_request(
        serialize_metrics_request(), cache, warn, shutdown, 1.5);
    std::string error;
    std::optional<JsonValue> v = json_parse(response, &error);
    EXPECT_TRUE(v.has_value()) << error;
    EXPECT_TRUE(v->get("ok").as_bool()) << response;
    return v->get("metrics");
  };

  const JsonValue before = metrics();
  EXPECT_DOUBLE_EQ(before.get("uptime_seconds").as_double(), 1.5);
  const std::int64_t requests_before = before.get("requests").as_int();
  EXPECT_GE(requests_before, 1);
  EXPECT_EQ(before.get("cache").get("hits").as_int(), 0);

  // Two analyze requests: the second is a cache hit; both are counted.
  const std::string analyze = serialize_serve_request(
      PipelineOptions{}, {"b1.mc"}, {testing::kExampleB1});
  (void)handle_serve_request(analyze, cache, warn, shutdown);
  (void)handle_serve_request(analyze, cache, warn, shutdown);

  const JsonValue after = metrics();
  EXPECT_EQ(after.get("requests").as_int(), requests_before + 3);
  EXPECT_EQ(after.get("cache").get("hits").as_int(), 1);
  EXPECT_EQ(after.get("cache").get("misses").as_int(), 1);
  EXPECT_EQ(after.get("cache").get("writes").as_int(), 1);
  // The registry aggregates ride along (names from the instrumented
  // layers; serve.requests is always present by this point).
  const JsonValue& counters = after.get("registry").get("counters");
  ASSERT_NE(counters.find("serve.requests"), nullptr);
  const JsonValue& hists = after.get("registry").get("histograms");
  ASSERT_NE(hists.find("serve.request_us"), nullptr);
  EXPECT_GE(hists.get("serve.request_us").get("count").as_int(), 3);
}

TEST(ServeWire, OutOfRangeOptionIntsAreRejectedNotTruncated) {
  // Regression: an int64 wider than the target field used to be silently
  // truncated — max_unroll_depth 2^32+5 analyzed under depth 5. Any
  // out-of-range value must be a malformed-options error instead.
  ResultCache no_cache;
  std::ostringstream warn;
  const std::string base = serialize_serve_request(
      PipelineOptions{}, {"b1.mc"}, {testing::kExampleB1});
  const auto mutate = [&](const std::string& from, const std::string& to) {
    std::string request = base;
    const std::size_t at = request.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    request.replace(at, from.size(), to);
    return request;
  };
  const PipelineOptions defaults;
  const std::string depth =
      "\"max_unroll_depth\":" + std::to_string(defaults.max_unroll_depth);
  const std::string steps =
      "\"max_steps\":" + std::to_string(defaults.bmc.max_steps);
  const std::string jobs = "\"jobs\":" + std::to_string(defaults.jobs);

  for (const std::string& hostile : {
           mutate(depth, "\"max_unroll_depth\":4294967301"),  // 2^32 + 5
           mutate(depth, "\"max_unroll_depth\":-3"),
           mutate(steps, "\"max_steps\":4294967296"),
           mutate(jobs, "\"jobs\":1025"),  // CLI caps --jobs at 1024
           mutate(jobs, "\"jobs\":-1"),
       }) {
    bool shutdown = false;
    const std::string response =
        handle_serve_request(hostile, no_cache, warn, shutdown);
    const std::optional<JsonValue> v = json_parse(response);
    ASSERT_TRUE(v.has_value()) << response;
    EXPECT_FALSE(v->get("ok").as_bool()) << hostile;
    EXPECT_NE(v->get("error").as_string().find("malformed options"),
              std::string::npos)
        << response;
  }

  // The in-range maxima still parse (the request is answered, not
  // rejected): the bound is about width, not policy.
  bool shutdown = false;
  const std::string response = handle_serve_request(
      mutate(depth, "\"max_unroll_depth\":4294967295"), no_cache, warn,
      shutdown);
  const std::optional<JsonValue> v = json_parse(response);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->get("ok").as_bool()) << response;
}

TEST(ServeWire, MetricsHostileAndMismatchedRequestsFailInBand) {
  ResultCache no_cache;
  std::ostringstream warn;
  bool shutdown = false;
  // Wrong version with the metrics cmd: in-band error, not a snapshot.
  const std::string response = handle_serve_request(
      "{\"v\":999,\"cmd\":\"metrics\"}", no_cache, warn, shutdown);
  const std::optional<JsonValue> v = json_parse(response);
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(v->get("ok").as_bool());
  EXPECT_FALSE(shutdown);
}

// ------------------------------------------------------ shard wire format

TEST(ShardWire, BatchPayloadRoundTripsRenderedReport) {
  const std::vector<std::string> sources = {testing::kFigure1Source,
                                            testing::kExampleB1};
  const PipelineOptions opts;
  BatchResult batch = run_batch(sources, {"fig1.mc", "b1.mc"}, opts);
  ASSERT_TRUE(batch.ok);

  const std::string payload = serialize_batch_payload(batch, {0, 1});
  std::vector<BatchEntry> slots(2);
  std::vector<bool> filled(2, false);
  bool have_fail = false;
  std::size_t fail_index = 0;
  std::string fail_error, error;
  ASSERT_TRUE(merge_batch_payload(payload, 2, slots, filled, have_fail,
                                  fail_index, fail_error, error))
      << error;
  EXPECT_FALSE(have_fail);
  ASSERT_TRUE(filled[0] && filled[1]);
  slots[0].path = "fig1.mc";
  slots[1].path = "b1.mc";

  // The deserialised results must render byte-identically, stats included
  // (wall clocks travel as %.17g and parse back exactly).
  for (const bool with_stats : {false, true}) {
    for (const ReportFormat fmt :
         {ReportFormat::Text, ReportFormat::Csv, ReportFormat::Json}) {
      std::ostringstream direct, merged;
      render_batch_report(batch.files, opts, fmt, with_stats, direct);
      render_batch_report(slots, opts, fmt, with_stats, merged);
      EXPECT_EQ(direct.str(), merged.str())
          << "fmt=" << static_cast<int>(fmt) << " stats=" << with_stats;
    }
  }
}

TEST(ShardWire, ErrorPayloadCarriesIndexAndMessage) {
  BatchResult failed;
  failed.ok = false;
  failed.error = "b.mc: undeclared identifier\n";
  failed.error_index = 1;  // slice-local index 1 -> global index 5
  const std::string payload = serialize_batch_payload(failed, {2, 5});

  std::vector<BatchEntry> slots(8);
  std::vector<bool> filled(8, false);
  bool have_fail = false;
  std::size_t fail_index = 0;
  std::string fail_error, error;
  ASSERT_TRUE(merge_batch_payload(payload, 8, slots, filled, have_fail,
                                  fail_index, fail_error, error));
  EXPECT_TRUE(have_fail);
  EXPECT_EQ(fail_index, 5u);
  EXPECT_EQ(fail_error, "b.mc: undeclared identifier\n");
}

// Regression: an empty failure message used to double as the "no failure
// yet" sentinel, so a shard reporting `ok:false` with an empty error was
// dropped and the merge carried on as if every file had succeeded.
TEST(ShardWire, EmptyFailureMessageStillFails) {
  BatchResult failed;
  failed.ok = false;
  failed.error = "";  // failure with no message at all
  failed.error_index = 0;
  const std::string payload = serialize_batch_payload(failed, {3});

  std::vector<BatchEntry> slots(4);
  std::vector<bool> filled(4, false);
  bool have_fail = false;
  std::size_t fail_index = 0;
  std::string fail_error, error;
  ASSERT_TRUE(merge_batch_payload(payload, 4, slots, filled, have_fail,
                                  fail_index, fail_error, error));
  EXPECT_TRUE(have_fail);
  EXPECT_EQ(fail_index, 3u);
  EXPECT_TRUE(fail_error.empty());
}

TEST(ShardWire, MalformedPayloadRejected) {
  std::vector<BatchEntry> slots(1);
  std::vector<bool> filled(1, false);
  bool have_fail = false;
  std::size_t fail_index = 0;
  std::string fail_error, error;
  EXPECT_FALSE(merge_batch_payload("not json", 1, slots, filled, have_fail,
                                   fail_index, fail_error, error));
  EXPECT_FALSE(merge_batch_payload("{\"ok\":true,\"files\":[{\"index\":7}]}",
                                   1, slots, filled, have_fail, fail_index,
                                   fail_error, error));
  EXPECT_NE(error.find("bad file index"), std::string::npos);
}

// ----------------------------------------------------- --shards CLI mode

TEST(Cli, ParsesShards) {
  // parse_cli accumulates into its CliOptions; every call needs a fresh one.
  const auto parse = [](std::vector<std::string> args) {
    CliOptions opts;
    std::string error;
    const bool ok = parse_cli(args, opts, error);
    return std::pair<bool, CliOptions>(ok, std::move(opts));
  };
  const auto [ok, opts] = parse({"--shards=4", "a.mc", "b.mc"});
  ASSERT_TRUE(ok);
  EXPECT_EQ(opts.shards, 4u);
  EXPECT_FALSE(parse({"--shards=0", "a.mc"}).first);
  EXPECT_FALSE(parse({"--shards=huge", "a.mc"}).first);
  EXPECT_FALSE(parse({"--shards=2", "--table1", "a.mc"}).first);
  EXPECT_FALSE(parse({"--shards=2", "--dot", "a.mc"}).first);
  // --shards composes with the batch modes.
  EXPECT_TRUE(parse({"--shards=2", "--table2", "a.mc", "b.mc"}).first);
  EXPECT_TRUE(parse({"--shards=2", "--bench=1", "a.mc", "b.mc"}).first);
}

TEST_F(CliBatchTest, ShardedBatchIsByteIdenticalToInProcess) {
  for (const char* fmt : {"text", "csv", "json"}) {
    const std::string format = std::string("--format=") + fmt;
    EXPECT_EQ(run({format, "--shards=1", fig1_, b1_}), 0) << err_.str();
    const std::string in_process = out_.str();
    EXPECT_EQ(run({format, "--shards=2", fig1_, b1_}), 0) << err_.str();
    EXPECT_EQ(in_process, out_.str()) << "format " << fmt;
  }
}

TEST_F(CliBatchTest, ShardedTable2MatchesDeterministicColumns) {
  EXPECT_EQ(run({"--table2", "--format=json", "--shards=2", fig1_, b1_}), 0)
      << err_.str();
  const std::string json = out_.str();
  EXPECT_NE(json.find("\"table2\":{"), std::string::npos);
  EXPECT_NE(json.find("\"all_identical\":true"), std::string::npos);
  EXPECT_NE(json.find("\"function\":\"fig1\""), std::string::npos);
  EXPECT_NE(json.find("\"function\":\"b1\""), std::string::npos);
  // Row order is input order, regardless of shard assignment.
  EXPECT_LT(json.find("\"function\":\"fig1\""),
            json.find("\"function\":\"b1\""));
}

TEST_F(CliBatchTest, ShardedBenchAggregatesAcrossShards) {
  EXPECT_EQ(run({"--bench=1", "--shards=2", fig1_, b1_}), 0) << err_.str();
  const std::string json = out_.str();
  EXPECT_EQ(json.rfind("{\"bench\":{", 0), 0u);
  EXPECT_NE(json.find("\"batch_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"batch_speedup\":"), std::string::npos);
  EXPECT_NE(json.find("tmg_batch_fig1_"), std::string::npos);
  EXPECT_NE(json.find("tmg_batch_b1_"), std::string::npos);
}

TEST_F(CliBatchTest, ShardedFailureNamesFirstFailingFile) {
  const std::string bad = ::testing::TempDir() + "tmg_shard_bad_" +
                          ::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name() +
                          ".mc";
  std::ofstream(bad) << "void f(void) { oops(); }";
  EXPECT_EQ(run({"--shards=2", fig1_, bad}), 2);
  EXPECT_NE(err_.str().find("tmg_shard_bad_"), std::string::npos);
  EXPECT_NE(err_.str().find("undeclared"), std::string::npos);
  std::remove(bad.c_str());
}

// ----------------------------------------------- golden Table-2 regression

/// Normalises a --table2 CSV for the golden diff: file paths reduced to
/// basenames, wall-clock columns (bmc_ms, bmc_ms_opt) masked — everything
/// else (bits, locations, transitions, depth, CNF size, model equality)
/// is a pure function of (source, options) and must match the committed
/// golden rows exactly.
std::string normalize_table2_csv(const std::string& csv) {
  std::istringstream in(csv);
  std::ostringstream out;
  std::string line;
  std::vector<std::size_t> masked;
  bool header = true;
  while (std::getline(in, line)) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ls(line);
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    if (header) {
      for (std::size_t i = 0; i < cells.size(); ++i)
        if (cells[i] == "bmc_ms" || cells[i] == "bmc_ms_opt")
          masked.push_back(i);
      header = false;
    } else {
      if (!cells.empty()) {
        const std::size_t slash = cells[0].find_last_of('/');
        if (slash != std::string::npos) cells[0] = cells[0].substr(slash + 1);
      }
      for (const std::size_t i : masked)
        if (i < cells.size()) cells[i] = "-";
    }
    for (std::size_t i = 0; i < cells.size(); ++i)
      out << (i > 0 ? "," : "") << cells[i];
    out << "\n";
  }
  return out.str();
}

TEST(GoldenTable2, ExamplesMatchCommittedRows) {
  const std::string dir = std::string(TMG_SOURCE_DIR) + "/examples/";
  std::vector<std::string> argv_store = {"tmg", "--table2", "--format=csv"};
  for (const char* name :
       {"b1.mc", "b2.mc", "b3.mc", "b4.mc", "b5.mc", "b6.mc", "b7.mc",
        "fig1.mc"})
    argv_store.push_back(dir + name);
  std::vector<const char*> argv;
  for (const std::string& a : argv_store) argv.push_back(a.c_str());

  std::ostringstream out, err;
  ASSERT_EQ(run_cli(static_cast<int>(argv.size()), argv.data(), out, err), 0)
      << err.str();

  std::ifstream golden(std::string(TMG_SOURCE_DIR) +
                       "/tests/golden/table2_examples.csv");
  ASSERT_TRUE(golden.good()) << "golden file missing";
  std::ostringstream want;
  want << golden.rdbuf();

  EXPECT_EQ(normalize_table2_csv(out.str()), want.str())
      << "Optimisation characteristics changed. If intended, regenerate "
         "tests/golden/table2_examples.csv (see TESTING.md).";

  // Encoding-size gate: the sharpened round-2 passes must keep the
  // b1-b7 + fig1 aggregate optimised state bits strictly below the 196
  // the first optimisation round achieved.
  std::istringstream csv(out.str());
  std::string line;
  std::size_t fn_col = SIZE_MAX, bits_col = SIZE_MAX;
  std::optional<int> total_bits;
  bool header = true;
  while (std::getline(csv, line)) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ls(line);
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    if (header) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i] == "function") fn_col = i;
        if (cells[i] == "bits_opt") bits_col = i;
      }
      ASSERT_NE(fn_col, SIZE_MAX);
      ASSERT_NE(bits_col, SIZE_MAX);
      header = false;
      continue;
    }
    if (fn_col < cells.size() && bits_col < cells.size() &&
        cells[fn_col] == "total")
      total_bits = std::stoi(cells[bits_col]);
  }
  ASSERT_TRUE(total_bits.has_value()) << "aggregate row missing";
  EXPECT_LT(*total_bits, 196);
}

}  // namespace
}  // namespace tmg::driver
