// Differential fuzzing of the whole tool chain. The oracle itself lives
// in fuzz_oracle.{h,cpp} (shared with the shrinking pass); this file is
// the gtest driver:
//
//   * runs the seeded generator over the configured seed range and
//     demands an empty failure report from every oracle stage — with the
//     per-iteration decision-schedule encoding the pipeline must match
//     the interpreter's brute-force BCET/WCET EXACTLY, loops included
//     (no bounding fallback remains);
//   * tracks the conclusive rate across all analysed segments and
//     asserts it stays at 100%, so a regression in the schedule encoding
//     cannot hide behind a soundness bound;
//   * on failure, minimises the failing PROGRAM (statement/branch
//     deletion plus constant reduction, oracle-rechecked) and persists
//     both the original and the minimised reproducer next to a failure
//     report — TMG_FUZZ_ARTIFACT_DIR overrides the destination (the
//     nightly CI job uploads that directory as a build artifact).
//
// Seed range: TMG_FUZZ_START / TMG_FUZZ_SEEDS environment variables
// (defaults 0 / 200). Reproduce one failure with
//   TMG_FUZZ_START=<seed> TMG_FUZZ_SEEDS=1 ./tmg_tests \
//       --gtest_filter='DifferentialFuzz.*'
// — the failing seed, full source and minimised source are in the
// assertion trace and the persisted artifacts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "fuzz_gen.h"
#include "fuzz_oracle.h"
#include "fuzz_shrink.h"

namespace tmg {
namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

std::string artifact_dir() {
  const char* v = std::getenv("TMG_FUZZ_ARTIFACT_DIR");
  return v != nullptr && *v != '\0' ? std::string(v) : std::string(".");
}

/// Writes the original and minimised reproducers plus a failure report;
/// returns the report path (best effort — IO failures only warn).
std::string persist_failure(std::uint64_t seed, const std::string& source,
                            const std::string& failure,
                            const std::string& minimised,
                            const std::string& min_failure,
                            const fuzz::ShrinkStats& stats) {
  const std::string base = artifact_dir() + "/fuzz_seed_" +
                           std::to_string(seed);
  std::ofstream(base + ".mc") << source;
  std::ofstream(base + ".min.mc") << minimised;
  const std::string report_path = base + ".report.txt";
  std::ofstream report(report_path);
  report << "seed: " << seed << "\n"
         << "failure: " << failure << "\n"
         << "minimised failure: " << min_failure << "\n"
         << "shrink attempts: " << stats.attempts
         << "  accepted: " << stats.accepted << "\n"
         << "\n--- original (" << source.size() << " bytes) ---\n"
         << source << "\n--- minimised (" << minimised.size()
         << " bytes) ---\n"
         << minimised;
  return report_path;
}

void run_seed(std::uint64_t seed, std::size_t& conclusive,
              std::size_t& total) {
  const fuzz::GeneratedProgram gen = fuzz::generate_program(seed);
  SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + gen.source);

  fuzz::CheckOptions copts;
  // Sampled: witness stability costs a second full analysis.
  copts.check_witness_stability = seed % 8 == 0;
  const fuzz::CheckOutcome oc = fuzz::check_program(gen.source, copts);
  ASSERT_TRUE(oc.compiled) << oc.failure;
  conclusive += oc.conclusive_segments;
  total += oc.total_segments;
  if (oc.failure.empty()) return;

  // A real differential failure: minimise the PROGRAM while the oracle
  // still trips (not merely the seed), persist both reproducers. The
  // predicate requires the candidate's failure to come from the SAME
  // oracle stage (the "stage:" prefix) — otherwise a deletion that
  // introduces an unrelated failure (say, a non-terminating loop) would
  // be adopted and the reproducer would demonstrate the wrong bug.
  const std::size_t colon = oc.failure.find(':');
  // Keep the colon in the prefix so "pipeline:" cannot match the
  // distinct "pipeline(opt):" / "pipeline(again):" stages.
  const std::string stage =
      oc.failure.substr(0, colon == std::string::npos ? oc.failure.size()
                                                      : colon + 1);
  fuzz::ShrinkStats stats;
  const std::string minimised = fuzz::shrink_program(
      gen.source,
      [&stage](const std::string& cand) {
        const fuzz::CheckOutcome c = fuzz::check_program(cand);
        return c.failing() && c.failure.rfind(stage, 0) == 0;
      },
      /*max_attempts=*/1000, &stats);
  const std::string min_failure = fuzz::check_program(minimised).failure;
  const std::string report =
      persist_failure(seed, gen.source, oc.failure, minimised, min_failure,
                      stats);
  FAIL() << oc.failure << "\nminimised reproducer (" << minimised.size()
         << " bytes, report at " << report << "):\n"
         << minimised;
}

TEST(DifferentialFuzz, GeneratedPrograms) {
  const int start = env_int("TMG_FUZZ_START", 0);
  const int count = env_int("TMG_FUZZ_SEEDS", 200);
  std::size_t conclusive = 0, total = 0;
  for (int s = start; s < start + count; ++s) {
    run_seed(static_cast<std::uint64_t>(s), conclusive, total);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Conclusive rate: the decision-schedule encoding must keep EVERY
  // whole-function segment conclusive — loop programs included. Any drop
  // below 100% is an encoding regression even if the bounds stay sound.
  EXPECT_GT(total, 0u);
  EXPECT_EQ(conclusive, total)
      << "conclusive rate dropped to " << conclusive << "/" << total;
}

/// The generator itself is deterministic — same seed, same program.
TEST(DifferentialFuzz, GeneratorIsDeterministic) {
  for (const std::uint64_t seed : {0ULL, 7ULL, 123ULL}) {
    const fuzz::GeneratedProgram a = fuzz::generate_program(seed);
    const fuzz::GeneratedProgram b = fuzz::generate_program(seed);
    EXPECT_EQ(a.source, b.source);
  }
  EXPECT_NE(fuzz::generate_program(1).source, fuzz::generate_program(2).source);
}

/// Feature reach matrix: over the per-PR seed range every extended
/// construct must actually be emitted — a generator regression that
/// silently stops producing (say) switches would otherwise shrink the
/// oracle's coverage without failing anything.
TEST(DifferentialFuzz, GeneratorCoversFeatureMatrix) {
  std::size_t loops = 0, branch_in_loop = 0, switches = 0, fallthroughs = 0,
              do_whiles = 0, divs = 0, shifts = 0, logicals = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const fuzz::GeneratedProgram g = fuzz::generate_program(seed);
    loops += g.has_loop;
    branch_in_loop += g.has_branch_in_loop;
    switches += g.has_switch;
    fallthroughs += g.has_fallthrough;
    do_whiles += g.has_do_while;
    divs += g.has_div;
    shifts += g.has_shift;
    logicals += g.has_logical;
  }
  EXPECT_GT(loops, 0u);
  EXPECT_GT(branch_in_loop, 0u) << "per-iteration schedules untested";
  EXPECT_GT(switches, 0u);
  EXPECT_GT(fallthroughs, 0u);
  EXPECT_GT(do_whiles, 0u);
  EXPECT_GT(divs, 0u);
  EXPECT_GT(shifts, 0u);
  EXPECT_GT(logicals, 0u);
}

// ------------------------------------------------------------- shrinker

/// Synthetic predicate shrinks: the minimiser must strip everything the
/// predicate does not pin down, deterministically.
TEST(FuzzShrink, DeletesUnreferencedStatements) {
  const std::string source =
      "extern void op0(void) __cost(3);\n"
      "extern void op1(void) __cost(5);\n"
      "\n"
      "void fz(void)\n"
      "{\n"
      "  int x0 = 3;\n"
      "  int x1 = 7;\n"
      "  op0();\n"
      "  if (x0 > 1) {\n"
      "    x1 = 100;\n"
      "  }\n"
      "  op1();\n"
      "}\n";
  const auto keeps_op1 = [](const std::string& cand) {
    return fuzz::check_program(cand).compiled &&
           cand.find("op1();") != std::string::npos;
  };
  ASSERT_TRUE(keeps_op1(source));
  fuzz::ShrinkStats stats;
  const std::string small =
      fuzz::shrink_program(source, keeps_op1, 1000, &stats);
  EXPECT_TRUE(keeps_op1(small));
  // The if-block, the unrelated call and both decls must be gone.
  EXPECT_EQ(small.find("if ("), std::string::npos);
  EXPECT_EQ(small.find("op0();"), std::string::npos);
  EXPECT_EQ(small.find("x0"), std::string::npos);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_LT(small.size(), source.size());
  // Deterministic: same input, same result.
  EXPECT_EQ(fuzz::shrink_program(source, keeps_op1), small);
}

TEST(FuzzShrink, ReducesConstants) {
  const std::string source =
      "__input(0, 3) int in0;\n"
      "\n"
      "void fz(void)\n"
      "{\n"
      "  int x0 = 100;\n"
      "  x0 = in0 * 40;\n"
      "}\n";
  const auto uses_x0 = [](const std::string& cand) {
    return fuzz::check_program(cand).compiled &&
           cand.find("x0 = in0") != std::string::npos;
  };
  ASSERT_TRUE(uses_x0(source));
  const std::string small = fuzz::shrink_program(source, uses_x0);
  EXPECT_TRUE(uses_x0(small));
  EXPECT_EQ(small.find("100"), std::string::npos);
  EXPECT_EQ(small.find("40"), std::string::npos);
  EXPECT_NE(small.find("x0 = in0 * 0"), std::string::npos);
}

/// Candidates that stop compiling must be rejected, never adopted.
TEST(FuzzShrink, RejectsNonCompilingCandidates) {
  const std::string source =
      "__input(0, 1) int in0;\n"
      "\n"
      "void fz(void)\n"
      "{\n"
      "  int x0 = 0;\n"
      "  x0 = in0;\n"
      "}\n";
  const auto still = [](const std::string& cand) {
    return fuzz::check_program(cand).compiled &&
           cand.find("x0 = in0;") != std::string::npos;
  };
  const std::string small = fuzz::shrink_program(source, still);
  // `int x0` cannot be deleted (x0 would be undeclared), `__input` cannot
  // be deleted (in0 undeclared): the shrunk program still compiles.
  EXPECT_TRUE(fuzz::check_program(small).compiled);
  EXPECT_NE(small.find("int x0"), std::string::npos);
  EXPECT_NE(small.find("__input"), std::string::npos);
}

/// End to end: a seeded generator program shrinks under a real oracle
/// predicate (here: "the pipeline analyses it and finds a loop"), and
/// the result still satisfies it.
TEST(FuzzShrink, ShrinksGeneratedProgramUnderRealOracle) {
  // Find a seed with a loop quickly (feature matrix guarantees one).
  fuzz::GeneratedProgram gen;
  for (std::uint64_t seed = 0;; ++seed) {
    gen = fuzz::generate_program(seed);
    if (gen.has_loop) break;
  }
  const auto has_loopbound = [](const std::string& cand) {
    return fuzz::check_program(cand).compiled &&
           cand.find("__loopbound") != std::string::npos;
  };
  ASSERT_TRUE(has_loopbound(gen.source));
  fuzz::ShrinkStats stats;
  const std::string small =
      fuzz::shrink_program(gen.source, has_loopbound, 400, &stats);
  EXPECT_TRUE(has_loopbound(small));
  EXPECT_LE(small.size(), gen.source.size());
}

}  // namespace
}  // namespace tmg
