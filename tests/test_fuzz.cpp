// Differential fuzzing of the whole tool chain: every generated mini-C
// program is executed exhaustively by the reference interpreter (the
// ground truth), and the other engines must agree —
//
//   * run_concrete over the translated transition system reproduces the
//     interpreter's decision trace on every input (translator oracle),
//     before and after the Section 3.2 passes (optimiser oracle);
//   * mc::explore reaches the final location and its fixpoint
//     (explicit-state oracle);
//   * the BMC pipeline's whole-function BCET/WCET equal the brute-force
//     extrema for decision-conclusive (loop-free) programs, and bound
//     them for programs whose loop paths report Unknown (soundness);
//   * every executed path is enumerated and never classified Infeasible,
//     every witness replays (mismatch == 0), and the optimised run
//     produces the identical timing model.
//
// Seed range: TMG_FUZZ_START / TMG_FUZZ_SEEDS environment variables
// (defaults 0 / 200). Reproduce one failure with
//   TMG_FUZZ_START=<seed> TMG_FUZZ_SEEDS=1 ./tmg_tests \
//       --gtest_filter='DifferentialFuzz.*'
// — the failing seed and full source are in the assertion trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "cfg/structure.h"
#include "driver/pipeline.h"
#include "fuzz_gen.h"
#include "mc/explicit.h"
#include "minic/frontend.h"
#include "opt/passes.h"
#include "testgen/interp.h"
#include "tsys/translate.h"

namespace tmg {
namespace {

using driver::PathVerdict;
using driver::Pipeline;
using driver::PipelineOptions;
using driver::PipelineResult;

struct Built {
  std::unique_ptr<minic::Program> program;
  std::unique_ptr<cfg::FunctionCfg> f;
  std::unique_ptr<tsys::TranslationResult> tr;
};

Built build(const std::string& src) {
  Built b;
  b.program = minic::compile_or_die(
      src, minic::SemaOptions{.warn_unbounded_loops = false});
  b.f = cfg::build_cfg(*b.program->functions.front());
  DiagnosticEngine diags;
  b.tr = tsys::translate(*b.program, *b.f, diags);
  EXPECT_TRUE(b.tr != nullptr) << diags.str();
  return b;
}

/// All input combinations over the declared __input domains, in
/// Program::inputs_of order (the interpreter's input order).
std::vector<std::vector<std::int64_t>> input_combos(const Built& b) {
  const std::vector<minic::Symbol*> inputs = b.program->inputs_of(*b.f->fn);
  std::vector<std::vector<std::int64_t>> out;
  std::vector<std::int64_t> cursor;
  for (const minic::Symbol* s : inputs)
    cursor.push_back(s->value_range().first);
  for (;;) {
    out.push_back(cursor);
    std::size_t i = 0;
    for (; i < inputs.size(); ++i) {
      if (++cursor[i] <= inputs[i]->value_range().second) break;
      cursor[i] = inputs[i]->value_range().first;
    }
    if (i == inputs.size()) break;
    if (inputs.empty()) break;
  }
  return out;
}

/// Reorders one interpreter-order combo into transition-system VarId
/// order (what run_concrete expects).
std::vector<std::int64_t> to_varid_order(const Built& b,
                                         const std::vector<std::int64_t>& combo) {
  const std::vector<minic::Symbol*> inputs = b.program->inputs_of(*b.f->fn);
  std::map<tsys::VarId, std::int64_t> by_var;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const tsys::VarId v = b.tr->var_of_symbol[inputs[i]->id];
    EXPECT_NE(v, tsys::kNoVar);
    by_var[v] = combo[i];
  }
  std::vector<std::int64_t> out;
  out.reserve(by_var.size());
  for (const auto& [var, value] : by_var) out.push_back(value);
  return out;
}

/// Shrinks non-input free variables (uninitialised-encoding locals) to a
/// tiny window so explicit exploration stays tractable; identical shrink
/// on both systems keeps the comparison fair (see tests/test_opt.cpp).
void restrict_domains(tsys::TransitionSystem& ts) {
  for (tsys::VarInfo& v : ts.vars) {
    if (v.is_input || v.has_init) continue;
    if (v.hi - v.lo <= 4) continue;
    v.lo = std::max<std::int64_t>(v.lo, -1);
    v.hi = std::min<std::int64_t>(v.hi, 1);
  }
}

/// Cost of one executed trace under the default cost model — the ground
/// truth the pipeline's path costs must reproduce.
std::int64_t trace_cost(const Built& b, const testgen::ExecTrace& trace) {
  const driver::CostModel cm;
  std::int64_t total = 0;
  for (const cfg::BlockId blk : trace.blocks)
    total += cm.block_cost(b.f->graph.block(blk));
  return total;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

void run_seed(std::uint64_t seed) {
  const fuzz::GeneratedProgram gen = fuzz::generate_program(seed);
  SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + gen.source);

  Built b = build(gen.source);
  ASSERT_TRUE(b.tr != nullptr);
  testgen::Interpreter interp(*b.program, *b.f);

  // ------------------------------------------------ ground truth (interp)
  const std::vector<std::vector<std::int64_t>> combos = input_combos(b);
  ASSERT_FALSE(combos.empty());
  std::vector<testgen::ExecTrace> traces;
  std::int64_t min_cost = 0, max_cost = 0;
  std::set<std::vector<cfg::BlockId>> executed_paths;
  for (std::size_t i = 0; i < combos.size(); ++i) {
    testgen::ExecTrace t = interp.run(combos[i]);
    ASSERT_TRUE(t.terminated) << "generator produced a runaway program";
    const std::int64_t cost = trace_cost(b, t);
    if (i == 0) {
      min_cost = max_cost = cost;
    } else {
      min_cost = std::min(min_cost, cost);
      max_cost = std::max(max_cost, cost);
    }
    executed_paths.insert(t.blocks);
    traces.push_back(std::move(t));
  }

  // -------------------------------------- translator oracle: run_concrete
  // The transition system must take the interpreter's exact decision
  // sequence on every input, before and after the optimisation passes.
  Built plain = build(gen.source);
  Built optim = build(gen.source);
  opt::run_passes(optim.tr->ts, opt::all_passes());
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const std::vector<std::int64_t> ts_inputs = to_varid_order(b, combos[i]);
    const auto concrete = opt::run_concrete(plain.tr->ts, ts_inputs);
    ASSERT_EQ(concrete.size(), traces[i].choices.size());
    for (std::size_t c = 0; c < concrete.size(); ++c) {
      EXPECT_EQ(concrete[c].first, traces[i].choices[c].from);
      EXPECT_EQ(concrete[c].second, traces[i].choices[c].succ_index);
    }
    EXPECT_EQ(opt::run_concrete(optim.tr->ts, ts_inputs), concrete)
        << "optimisation passes changed the decision trace";
  }

  // ----------------------------------- explicit-state oracle: mc::explore
  restrict_domains(plain.tr->ts);
  restrict_domains(optim.tr->ts);
  const mc::ExploreResult ex_plain =
      mc::explore(plain.tr->ts, plain.tr->ts.final);
  const mc::ExploreResult ex_opt =
      mc::explore(optim.tr->ts, optim.tr->ts.final);
  EXPECT_TRUE(ex_plain.complete);
  EXPECT_TRUE(ex_plain.goal_reached)
      << "every generated program terminates, the final location must be "
         "reachable";
  EXPECT_TRUE(ex_opt.complete);
  EXPECT_EQ(ex_opt.goal_reached, ex_plain.goal_reached);

  // --------------------------------------------- BMC oracle: the pipeline
  PipelineOptions popts;
  popts.path_bound = 1'000'000;  // whole function = one segment
  popts.max_paths_per_segment = 512;
  popts.jobs = 1;
  const PipelineResult plain_run = Pipeline(popts).run(gen.source);
  ASSERT_TRUE(plain_run.ok) << plain_run.error;
  ASSERT_EQ(plain_run.functions.size(), 1u);
  const driver::FunctionTiming& ft = plain_run.functions.front();
  ASSERT_EQ(ft.segments.size(), 1u);
  const driver::SegmentTiming& st = ft.segments.front();
  EXPECT_TRUE(st.whole_function);
  ASSERT_TRUE(st.enumeration_complete)
      << "generator path budget must keep enumeration complete";

  // Witness replay must never diverge.
  EXPECT_EQ(st.mismatched, 0u);

  // Soundness for every program: executed paths are enumerated and never
  // classified Infeasible, and the model bounds the real extrema.
  for (const std::vector<cfg::BlockId>& path : executed_paths) {
    const driver::PathTiming* found = nullptr;
    for (const driver::PathTiming& pt : st.paths)
      if (pt.blocks == path) {
        found = &pt;
        break;
      }
    ASSERT_NE(found, nullptr) << "an executed path was not enumerated";
    EXPECT_NE(found->verdict, PathVerdict::Infeasible)
        << "BMC pruned a path the interpreter executes";
  }
  EXPECT_LE(st.bcet, min_cost);
  EXPECT_GE(st.wcet, max_cost);

  // Decision-conclusive programs (no branch revisited with differing
  // outcomes): every verdict is exact, so the bounds are equalities and
  // the feasible set is exactly the executed set.
  if (!gen.has_loop) {
    EXPECT_EQ(st.unknown, 0u);
    EXPECT_EQ(st.bcet, min_cost);
    EXPECT_EQ(st.wcet, max_cost);
    EXPECT_EQ(st.feasible, executed_paths.size());
    for (const driver::PathTiming& pt : st.paths)
      if (pt.verdict == PathVerdict::Feasible)
        EXPECT_TRUE(executed_paths.contains(pt.blocks))
            << "BMC claims feasibility of a path no input executes";
  }

  // ------------------------------------- optimiser oracle: identical model
  PipelineOptions oopts = popts;
  oopts.opt_passes = opt::all_passes();
  const PipelineResult opt_run = Pipeline(oopts).run(gen.source);
  ASSERT_TRUE(opt_run.ok) << opt_run.error;
  ASSERT_EQ(opt_run.functions.size(), 1u);
  const driver::SegmentTiming& ot = opt_run.functions.front().segments.front();
  EXPECT_EQ(ot.bcet, st.bcet);
  EXPECT_EQ(ot.wcet, st.wcet);
  EXPECT_EQ(ot.feasible, st.feasible);
  EXPECT_EQ(ot.infeasible, st.infeasible);
  EXPECT_EQ(ot.unknown, st.unknown);
  EXPECT_EQ(ot.mismatched, 0u);
  ASSERT_EQ(ot.paths.size(), st.paths.size());
  for (std::size_t p = 0; p < st.paths.size(); ++p) {
    EXPECT_EQ(ot.paths[p].verdict, st.paths[p].verdict);
    EXPECT_EQ(ot.paths[p].cost, st.paths[p].cost);
  }

  // ------------------------- witness stability (minimisation determinism)
  // Sampled: witnesses are preference-minimal models, so a repeated run
  // must reproduce them bit for bit.
  if (seed % 8 == 0) {
    const PipelineResult again = Pipeline(popts).run(gen.source);
    ASSERT_TRUE(again.ok);
    const driver::SegmentTiming& at = again.functions.front().segments.front();
    ASSERT_EQ(at.paths.size(), st.paths.size());
    for (std::size_t p = 0; p < st.paths.size(); ++p)
      EXPECT_EQ(at.paths[p].witness, st.paths[p].witness)
          << "witness not stable across runs";
  }
}

TEST(DifferentialFuzz, GeneratedPrograms) {
  const int start = env_int("TMG_FUZZ_START", 0);
  const int count = env_int("TMG_FUZZ_SEEDS", 200);
  for (int s = start; s < start + count; ++s) {
    run_seed(static_cast<std::uint64_t>(s));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// The generator itself is deterministic — same seed, same program.
TEST(DifferentialFuzz, GeneratorIsDeterministic) {
  for (const std::uint64_t seed : {0ULL, 7ULL, 123ULL}) {
    const fuzz::GeneratedProgram a = fuzz::generate_program(seed);
    const fuzz::GeneratedProgram b = fuzz::generate_program(seed);
    EXPECT_EQ(a.source, b.source);
  }
  EXPECT_NE(fuzz::generate_program(1).source, fuzz::generate_program(2).source);
}

}  // namespace
}  // namespace tmg
