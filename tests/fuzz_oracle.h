// The differential oracle of the fuzz harness, factored out of the gtest
// driver so the shrinking pass (fuzz_shrink.h) can re-run it on candidate
// programs without gtest machinery. One call checks a whole mini-C
// program against every engine:
//
//   * the reference interpreter brute-forces all `__input` combinations
//     (ground truth; every run must terminate);
//   * opt::run_concrete over the translated transition system reproduces
//     the interpreter's decision trace on every input, before and after
//     the Section 3.2 passes;
//   * mc::explore reaches the final location and its fixpoint;
//   * the BMC pipeline's whole-function BCET/WCET equal the brute-force
//     extrema EXACTLY — the per-iteration decision-schedule encoding
//     makes loop programs conclusive, so no bounding fallback remains;
//   * the feasible path set equals the executed path set, every witness
//     replays (with its per-iteration decision trace), and the optimised
//     run produces the identical timing model.
#pragma once

#include <cstdint>
#include <string>

namespace tmg::fuzz {

struct CheckOptions {
  /// Re-run the analysis and require bit-identical witnesses (the
  /// preference-minimal-model contract); costs a second pipeline run.
  bool check_witness_stability = false;
};

/// Outcome of one oracle run.
struct CheckOutcome {
  /// The program compiled (shrink candidates that break the grammar or
  /// the type system are rejected via this flag, not via `failure`).
  bool compiled = false;
  /// Empty = every engine agreed; otherwise a description of the first
  /// disagreement, prefixed with the oracle stage that caught it.
  std::string failure;
  /// Conclusive-rate bookkeeping: segments whose verdicts were all
  /// definite, over the segments analysed. The harness asserts the rate
  /// stays at 100% so regressions in the schedule encoding are caught.
  std::size_t conclusive_segments = 0;
  std::size_t total_segments = 0;

  [[nodiscard]] bool failing() const { return compiled && !failure.empty(); }
};

/// Runs every oracle over one source program. Deterministic.
CheckOutcome check_program(const std::string& source,
                           const CheckOptions& opts = {});

}  // namespace tmg::fuzz
