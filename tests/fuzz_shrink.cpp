#include "fuzz_shrink.h"

#include <cctype>
#include <cstdint>
#include <optional>
#include <sstream>
#include <vector>

namespace tmg::fuzz {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

int brace_delta(const std::string& line) {
  int d = 0;
  for (const char c : line) {
    if (c == '{') ++d;
    if (c == '}') --d;
  }
  return d;
}

/// [first, last] line range of the brace block opened on line `first`
/// (inclusive of the closing line), or nullopt when unbalanced.
std::optional<std::size_t> block_end(const std::vector<std::string>& lines,
                                     std::size_t first) {
  int depth = 0;
  for (std::size_t i = first; i < lines.size(); ++i) {
    depth += brace_delta(lines[i]);
    if (depth <= 0) return i;
  }
  return std::nullopt;
}

/// The function skeleton (`void fz(void)`, its braces) must survive;
/// everything else is fair game.
bool is_function_header(const std::string& line) {
  return line.find('(') != std::string::npos &&
         line.find("void") != std::string::npos &&
         line.find(';') == std::string::npos;
}

struct Candidate {
  std::vector<std::string> lines;
};

/// Erases [first, last] inclusive.
std::vector<std::string> erase_range(const std::vector<std::string>& lines,
                                     std::size_t first, std::size_t last) {
  std::vector<std::string> out;
  out.reserve(lines.size() - (last - first + 1));
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (i < first || i > last) out.push_back(lines[i]);
  return out;
}

/// Integer-literal occurrences in a line: [pos, len) of each digit run
/// that is not part of an identifier.
std::vector<std::pair<std::size_t, std::size_t>> literal_spans(
    const std::string& line) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isdigit(static_cast<unsigned char>(line[i]))) {
      const bool in_ident =
          i > 0 && (std::isalnum(static_cast<unsigned char>(line[i - 1])) ||
                    line[i - 1] == '_');
      std::size_t j = i;
      while (j < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[j])))
        ++j;
      if (!in_ident) spans.emplace_back(i, j - i);
      i = j;
    } else {
      ++i;
    }
  }
  return spans;
}

}  // namespace

std::string shrink_program(std::string source, const StillFails& still_fails,
                           std::size_t max_attempts, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  std::vector<std::string> lines = split_lines(source);

  const auto try_adopt = [&](std::vector<std::string> cand) -> bool {
    if (st.attempts >= max_attempts) return false;
    ++st.attempts;
    if (!still_fails(join_lines(cand))) return false;
    ++st.accepted;
    lines = std::move(cand);
    return true;
  };

  bool changed = true;
  while (changed && st.attempts < max_attempts) {
    changed = false;

    // 1. Brace-block deletion, outermost (largest) candidates first.
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (brace_delta(lines[i]) <= 0) continue;
      if (is_function_header(lines[i])) continue;
      const std::optional<std::size_t> end = block_end(lines, i);
      if (!end || *end <= i) continue;
      if (try_adopt(erase_range(lines, i, *end))) {
        changed = true;
        break;  // indices shifted: rescan from the top
      }
    }
    if (changed) continue;

    // 2. Single-line deletion (statements, declarations, loose labels).
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (brace_delta(lines[i]) != 0) continue;  // keep structure balanced
      if (lines[i].find_first_not_of(" \t") == std::string::npos) continue;
      if (try_adopt(erase_range(lines, i, i))) {
        changed = true;
        break;
      }
    }
    if (changed) continue;

    // 3. Constant reduction: each literal to 0, else halved toward 0.
    for (std::size_t i = 0; i < lines.size() && !changed; ++i) {
      for (const auto& [pos, len] : literal_spans(lines[i])) {
        const std::string tok = lines[i].substr(pos, len);
        std::int64_t value = 0;
        try {
          value = std::stoll(tok);
        } catch (...) {
          continue;
        }
        if (value == 0) continue;
        for (const std::int64_t smaller : {std::int64_t{0}, value / 2}) {
          if (smaller == value) continue;
          std::vector<std::string> cand = lines;
          cand[i] = lines[i].substr(0, pos) + std::to_string(smaller) +
                    lines[i].substr(pos + len);
          if (try_adopt(std::move(cand))) {
            changed = true;
            break;
          }
        }
        if (changed) break;  // spans of this line shifted: rescan
      }
    }
  }

  return join_lines(lines);
}

}  // namespace tmg::fuzz
