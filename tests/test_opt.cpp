#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/structure.h"
#include "mc/explicit.h"
#include "minic/frontend.h"
#include "opt/passes.h"
#include "opt/slice.h"
#include "paper_examples.h"
#include "support/rng.h"
#include "tsys/translate.h"

namespace tmg::opt {
namespace {

using tsys::TransitionSystem;
using tsys::VarInfo;

struct Built {
  std::unique_ptr<minic::Program> program;
  std::unique_ptr<cfg::FunctionCfg> f;
  std::unique_ptr<tsys::TranslationResult> tr;
};

Built build(const char* src, bool pessimistic = false) {
  Built b;
  b.program = minic::compile_or_die(
      src, minic::SemaOptions{.warn_unbounded_loops = false});
  b.f = cfg::build_cfg(*b.program->functions.front());
  DiagnosticEngine diags;
  tsys::TranslateOptions topts;
  topts.pessimistic_widths = pessimistic;
  b.tr = tsys::translate(*b.program, *b.f, diags, topts);
  EXPECT_TRUE(b.tr != nullptr) << diags.str();
  return b;
}

/// Shrinks every free variable's domain to a small window so explicit
/// exploration stays tractable. Applied identically to the baseline and
/// the to-be-optimised system BEFORE any pass runs, so the comparison is
/// between equal starting points.
void restrict_domains(TransitionSystem& ts, std::int64_t span = 2) {
  for (VarInfo& v : ts.vars) {
    if (!v.is_input && v.has_init) continue;
    if (v.hi - v.lo <= 8) continue;  // already small (e.g. __input(0,3))
    v.lo = std::max(v.lo, -span);
    v.hi = std::min(v.hi, span);
  }
}

/// Deterministic input vectors: the whole input cross-product when it is
/// small, otherwise corners plus seeded random draws.
std::vector<std::vector<std::int64_t>> sample_inputs(
    const TransitionSystem& ts) {
  std::vector<const VarInfo*> inputs;
  for (const VarInfo& v : ts.vars)
    if (v.is_input) inputs.push_back(&v);

  std::uint64_t product = 1;
  for (const VarInfo* v : inputs) {
    const std::uint64_t card = static_cast<std::uint64_t>(v->hi - v->lo + 1);
    product = product > 512 / std::max<std::uint64_t>(card, 1)
                  ? 513
                  : product * card;
  }

  std::vector<std::vector<std::int64_t>> out;
  if (inputs.empty()) {
    out.push_back({});
    return out;
  }
  if (product <= 512) {  // exhaustive odometer
    std::vector<std::int64_t> cursor;
    for (const VarInfo* v : inputs) cursor.push_back(v->lo);
    for (;;) {
      out.push_back(cursor);
      std::size_t i = 0;
      for (; i < inputs.size(); ++i) {
        if (++cursor[i] <= inputs[i]->hi) break;
        cursor[i] = inputs[i]->lo;
      }
      if (i == inputs.size()) break;
    }
    return out;
  }
  Rng rng(0xc0ffee);
  for (int k = 0; k < 32; ++k) {
    std::vector<std::int64_t> vec;
    for (const VarInfo* v : inputs) vec.push_back(rng.range(v->lo, v->hi));
    out.push_back(std::move(vec));
  }
  for (const auto pick : {0, 1}) {
    std::vector<std::int64_t> vec;
    for (const VarInfo* v : inputs) vec.push_back(pick == 0 ? v->lo : v->hi);
    out.push_back(std::move(vec));
  }
  return out;
}

/// The core contract of every pass (and of the whole chain): identical
/// goal reachability under explicit exploration, identical decision traces
/// on every sampled input, and never-increasing encoding metrics.
void expect_equivalent(const char* name, const char* src,
                       const std::vector<Pass>& passes,
                       bool pessimistic = false) {
  SCOPED_TRACE(name);
  Built base = build(src, pessimistic);
  Built optim = build(src, pessimistic);
  restrict_domains(base.tr->ts);
  restrict_domains(optim.tr->ts);

  const std::vector<PassReport> reports =
      run_passes(optim.tr->ts, passes);
  for (const PassReport& r : reports) {
    SCOPED_TRACE(pass_name(r.pass));
    EXPECT_LE(r.vars_after, r.vars_before);
    EXPECT_LE(r.data_bits_after, r.data_bits_before);
    EXPECT_LE(r.transitions_after, r.transitions_before);
  }
  EXPECT_LE(optim.tr->ts.state_bits(), base.tr->ts.state_bits());
  EXPECT_LE(optim.tr->ts.transitions.size(),
            base.tr->ts.transitions.size());

  const mc::ExploreResult ra = mc::explore(base.tr->ts, base.tr->ts.final);
  const mc::ExploreResult rb =
      mc::explore(optim.tr->ts, optim.tr->ts.final);
  ASSERT_TRUE(ra.complete);
  ASSERT_TRUE(rb.complete);
  EXPECT_EQ(ra.goal_reached, rb.goal_reached);
  EXPECT_LE(rb.initial_states, ra.initial_states);

  for (const std::vector<std::int64_t>& inputs :
       sample_inputs(base.tr->ts)) {
    const auto ta = run_concrete(base.tr->ts, inputs);
    const auto tb = run_concrete(optim.tr->ts, inputs);
    ASSERT_EQ(ta, tb) << "diverging decision trace";
  }
}

const Pass kAllSix[] = {Pass::ReverseCse,      Pass::LiveVariables,
                        Pass::StatementConcat, Pass::RangeAnalysis,
                        Pass::VariableInit,    Pass::DeadVariableElim};

// --------------------------------------------- pass-equivalence suite

class PassEquivalence
    : public ::testing::TestWithParam<testing::PaperExample> {};

TEST_P(PassEquivalence, EachPassAlonePreservesBehaviour) {
  for (const Pass p : kAllSix)
    expect_equivalent(pass_name(p).c_str(), GetParam().source, {p});
}

TEST_P(PassEquivalence, FullChainPreservesBehaviour) {
  expect_equivalent("all-passes", GetParam().source, all_passes());
}

TEST_P(PassEquivalence, FullChainUnderPessimisticWidths) {
  expect_equivalent("all-passes-pessimistic", GetParam().source,
                    all_passes(), /*pessimistic=*/true);
}

TEST_P(PassEquivalence, FullChainStrictlyShrinksTheEncoding) {
  // The Table-2 claim: on every paper example, the six passes produce
  // strictly fewer state bits and no more transitions (unrestricted
  // domains, exactly what the driver runs).
  Built base = build(GetParam().source);
  Built optim = build(GetParam().source);
  run_passes(optim.tr->ts, all_passes());
  EXPECT_LT(optim.tr->ts.state_bits(), base.tr->ts.state_bits());
  EXPECT_LE(optim.tr->ts.transitions.size(),
            base.tr->ts.transitions.size());
}

INSTANTIATE_TEST_SUITE_P(
    Examples, PassEquivalence,
    ::testing::ValuesIn(testing::kPaperExamples),
    [](const ::testing::TestParamInfo<testing::PaperExample>& info) {
      return std::string(info.param.name);
    });

// ------------------------------------------------- pass-specific facts

TEST(ReverseCse, InlinesTemporaryIntoGuard) {
  // The paper's reverse-CSE shape: a code-generator temporary holding a
  // condition, tested right after. The substitution makes `t` unread, so
  // DeadVariableElim can drop it afterwards.
  Built b = build("void f(int x) { int t = x > 5; if (t) { x = 0; } }");
  const PassReport r = run_pass(b.tr->ts, Pass::ReverseCse);
  EXPECT_GT(r.details, 0u);
  // the guard now reads x directly
  bool guard_reads_x = false;
  for (const auto& t : b.tr->ts.transitions)
    if (t.guard && t.is_decision())
      for (const VarInfo& v : b.tr->ts.vars)
        if (v.name == "x" && t.guard->references(v.id)) guard_reads_x = true;
  EXPECT_TRUE(guard_reads_x);

  const PassReport dead = run_pass(b.tr->ts, Pass::DeadVariableElim);
  EXPECT_LT(dead.vars_after, dead.vars_before);
  for (const VarInfo& v : b.tr->ts.vars) EXPECT_NE(v.name, "t");
}

TEST(LiveVariables, DropsNeverReadVariable) {
  Built b = build("int unused; void f(int x) { if (x > 0) { x = 1; } }");
  const PassReport r = run_pass(b.tr->ts, Pass::LiveVariables);
  EXPECT_LT(r.vars_after, r.vars_before);
  for (const VarInfo& v : b.tr->ts.vars) EXPECT_NE(v.name, "unused");
}

TEST(LiveVariables, KeepsUnusedInputs) {
  // Inputs are the test-data interface: even an unread parameter stays.
  Built b = build("void f(int unused_param) { int y; y = 1; }");
  run_pass(b.tr->ts, Pass::LiveVariables);
  bool found = false;
  for (const VarInfo& v : b.tr->ts.vars)
    found |= v.name == "unused_param";
  EXPECT_TRUE(found);
}

TEST(LiveVariables, SharesSlotsOfDisjointLifetimes) {
  // `a` is dead once `s1` is computed and `b2` only lives afterwards:
  // one slot suffices for both.
  Built b = build(
      "void f(int x) {"
      "  int a = x + 1; int s1 = a * 2;"
      "  int b2 = x + 2; int s2 = b2 * 2;"
      "  if (s1 + s2 > 0) { x = 0; }"
      "}");
  const std::size_t before = b.tr->ts.vars.size();
  const PassReport r = run_pass(b.tr->ts, Pass::LiveVariables);
  EXPECT_GT(r.details, 0u);
  EXPECT_LT(b.tr->ts.vars.size(), before);
}

TEST(StatementConcat, CollapsesStraightLineChain) {
  // b1 is a pure statement chain: one transition from initial to final.
  Built b = build(testing::kExampleB1);
  const PassReport r = run_pass(b.tr->ts, Pass::StatementConcat);
  EXPECT_GT(r.details, 0u);
  EXPECT_EQ(b.tr->ts.transitions.size(), 1u);
  EXPECT_EQ(b.tr->ts.num_locs, 2u);
  EXPECT_EQ(b.tr->ts.transitions[0].from, b.tr->ts.initial);
  EXPECT_EQ(b.tr->ts.transitions[0].to, b.tr->ts.final);
}

TEST(StatementConcat, PreservesDecisionOrigins) {
  Built b = build(testing::kFigure1Source);
  std::size_t decisions_before = 0;
  for (const auto& t : b.tr->ts.transitions)
    decisions_before += t.is_decision() ? 1 : 0;
  run_pass(b.tr->ts, Pass::StatementConcat);
  std::size_t decisions_after = 0;
  for (const auto& t : b.tr->ts.transitions)
    decisions_after += t.is_decision() ? 1 : 0;
  // Every decision edge keeps its (origin block, successor) identity so
  // forced-choice BMC queries still apply.
  EXPECT_EQ(decisions_before, decisions_after);
}

TEST(RangeAnalysis, ClampsPessimisticWidthsToDeclaredRange) {
  // "1 bit vs 16 bits for boolean expressions": a bool flag widened by the
  // paper's 16-bit default narrows back to its declared [0, 1].
  Built b = build(
      "void f(int x) { bool flag; flag = x > 0; if (flag) { x = 0; } }",
      /*pessimistic=*/true);
  int before = 0;
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.name == "flag") before = v.bits();
  EXPECT_EQ(before, 16);
  const PassReport r = run_pass(b.tr->ts, Pass::RangeAnalysis);
  EXPECT_GT(r.details, 0u);
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.name == "flag") {
      EXPECT_EQ(v.bits(), 1);
    }
}

TEST(RangeAnalysis, NarrowsInitialisedAccumulatorAfterInit) {
  // mode in {0..4} once its uninitialised entry value is pinned.
  Built b = build(
      "void f(int x) {"
      "  int mode = 0;"
      "  if (x > 0) { mode = 3; } else { mode = 2; }"
      "  mode = mode + 1;"
      "  if (mode > 2) { x = 0; }"
      "}");
  run_pass(b.tr->ts, Pass::VariableInit);
  const PassReport r = run_pass(b.tr->ts, Pass::RangeAnalysis);
  EXPECT_GT(r.details, 0u);
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.name == "mode") {
      EXPECT_GE(v.lo, 0);
      EXPECT_LE(v.hi, 4);
      EXPECT_LE(v.bits(), 3);
    }
}

TEST(VariableInit, PinsWriteBeforeReadVariables) {
  Built b = build("void f(int x) { int y = 7; if (y > x) { x = 0; } }");
  const PassReport r = run_pass(b.tr->ts, Pass::VariableInit);
  EXPECT_GT(r.details, 0u);
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.name == "y") {
      EXPECT_TRUE(v.has_init);
      EXPECT_EQ(v.init, 0);  // C-semantic local initial value
    }
}

TEST(VariableInit, SkipsReadBeforeWriteVariables) {
  // `u` is read uninitialised: its free value is observable, pinning it
  // would change the model checker's choices.
  Built b = build("void f(int x) { int u; if (u > 0) { x = 1; } u = 2; }");
  run_pass(b.tr->ts, Pass::VariableInit);
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.name == "u") {
      EXPECT_FALSE(v.has_init);
    }
}

TEST(DeadVariableElim, RemovesTransitiveDeadChains) {
  // `a` feeds only `c`, `c` feeds nothing control-flow-relevant: both go,
  // and their updates with them.
  Built b = build(
      "void f(int x) {"
      "  int a = x * 2; int c = a + 1; c = c + a;"
      "  if (x > 0) { x = 0; }"
      "}");
  const PassReport r = run_pass(b.tr->ts, Pass::DeadVariableElim);
  EXPECT_LT(r.vars_after, r.vars_before);
  for (const VarInfo& v : b.tr->ts.vars) {
    EXPECT_NE(v.name, "a");
    EXPECT_NE(v.name, "c");
  }
  // Only the guard-relevant x keeps updates; a's and c's are all dropped.
  for (const auto& t : b.tr->ts.transitions)
    for (const auto& u : t.updates)
      EXPECT_EQ(b.tr->ts.vars[u.var].name, "x");
}

TEST(DeadVariableElim, KeepsGuardFeedingChain) {
  Built b = build(
      "void f(int x) { int a = x + 1; int g = a * 2; if (g > 0) { x = 0; } }");
  const PassReport r = run_pass(b.tr->ts, Pass::DeadVariableElim);
  EXPECT_EQ(r.vars_after, r.vars_before);  // x, a, g all feed the guard
}

// ------------------------------------------------------- infrastructure

TEST(RemoveVars, RemapsReferencesAndReturnsMap) {
  TransitionSystem ts;
  ts.num_locs = 2;
  ts.initial = 0;
  ts.final = 1;
  const auto a = ts.add_var("a", minic::Type::Int16, -10, 10);
  const auto b = ts.add_var("b", minic::Type::Int16, -10, 10);
  const auto c = ts.add_var("c", minic::Type::Int16, -10, 10);
  tsys::Transition t;
  t.from = 0;
  t.to = 1;
  t.updates.push_back({c, tsys::t_var(c, minic::Type::Int16)});
  ts.transitions.push_back(std::move(t));

  std::vector<bool> keep(3, true);
  keep[b] = false;  // b unreferenced
  const std::vector<tsys::VarId> map = remove_vars(ts, keep);
  EXPECT_EQ(map[a], 0u);
  EXPECT_EQ(map[b], tsys::kNoVar);
  EXPECT_EQ(map[c], 1u);
  ASSERT_EQ(ts.vars.size(), 2u);
  EXPECT_EQ(ts.vars[1].name, "c");
  EXPECT_EQ(ts.vars[1].id, 1u);
  EXPECT_EQ(ts.transitions[0].updates[0].var, 1u);
}

TEST(RunPassesMapped, InputVariablesSurviveWithConsistentIds) {
  Built b = build(testing::kExampleB4);
  std::vector<std::string> input_names;
  for (const VarInfo& v : b.tr->ts.vars)
    if (v.is_input) input_names.push_back(v.name);
  const OptResult r = run_passes_mapped(b.tr->ts, all_passes());
  ASSERT_EQ(r.var_map.size(), r.reports.front().vars_before);
  std::vector<std::string> mapped;
  for (std::size_t old = 0; old < r.var_map.size(); ++old) {
    if (r.var_map[old] == tsys::kNoVar) continue;
    const VarInfo& nv = b.tr->ts.vars[r.var_map[old]];
    if (nv.is_input) mapped.push_back(nv.name);
  }
  EXPECT_EQ(mapped, input_names);
}

TEST(RunConcrete, FollowsGuardsDeterministically) {
  Built b = build(testing::kExampleB2);
  // level < 10 -> first decision true; >= 100 -> both false.
  const auto low = run_concrete(b.tr->ts, {5});
  const auto high = run_concrete(b.tr->ts, {500});
  ASSERT_GE(low.size(), 1u);
  ASSERT_GE(high.size(), 2u);
  EXPECT_NE(low, high);
  // Determinism: same inputs, same trace.
  EXPECT_EQ(run_concrete(b.tr->ts, {5}), low);
}

// ----------------------------------- mc::explore regression tests

/// A minimal hand-built closed system: initial --> final, one pinned var.
TransitionSystem tiny_system() {
  TransitionSystem ts;
  ts.name = "tiny";
  ts.num_locs = 2;
  ts.initial = 0;
  ts.final = 1;
  const auto v = ts.add_var("v", minic::Type::Int16, 0, 0);
  ts.vars[v].has_init = true;
  ts.vars[v].init = 0;
  tsys::Transition t;
  t.from = 0;
  t.to = 1;
  ts.transitions.push_back(std::move(t));
  return ts;
}

TEST(ExploreRegression, FullRangeInputVarDoesNotDivideByZero) {
  // A free variable spanning the whole 64-bit domain wraps the interval
  // cardinality to 0; the guard used to divide by it. It must saturate
  // and refuse instead.
  TransitionSystem ts = tiny_system();
  const auto v = ts.add_var("huge", minic::Type::Int32, INT64_MIN, INT64_MAX);
  ts.vars[v].is_input = true;
  const mc::ExploreResult r = mc::explore(ts);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.initial_states, UINT64_MAX);
  EXPECT_EQ(r.states, 0u);
}

TEST(ExploreRegression, ExactStateLimitStillCompletes) {
  // Reachable set {(initial, v=0), (final, v=0)}: with max_states == 2
  // the fixpoint IS reached; re-deriving an already-seen successor must
  // not flag the run incomplete.
  TransitionSystem ts = tiny_system();
  // second transition re-reaching final: the frontier only contains seen
  // states when the limit check fires
  tsys::Transition t2;
  t2.from = 0;
  t2.to = 1;
  ts.transitions.push_back(std::move(t2));
  mc::ExploreOptions opts;
  opts.max_states = 2;
  const mc::ExploreResult r = mc::explore(ts, std::nullopt, opts);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.states, 2u);

  // One below the true count must still report incomplete.
  opts.max_states = 1;
  const mc::ExploreResult r2 = mc::explore(ts, std::nullopt, opts);
  EXPECT_FALSE(r2.complete);
}

TEST(ExploreRegression, SelfLoopAtLimitIsComplete) {
  TransitionSystem ts = tiny_system();
  tsys::Transition loop;
  loop.from = 0;
  loop.to = 0;
  ts.transitions.push_back(std::move(loop));
  mc::ExploreOptions opts;
  opts.max_states = 2;
  const mc::ExploreResult r = mc::explore(ts, std::nullopt, opts);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.states, 2u);
}

// ---------------------------------------------------- per-segment slicing

/// Decision origin blocks of `ts` in first-appearance (program) order.
std::vector<cfg::BlockId> decision_blocks(const TransitionSystem& ts) {
  std::vector<cfg::BlockId> out;
  for (const tsys::Transition& t : ts.transitions)
    if (t.is_decision() &&
        std::find(out.begin(), out.end(), t.origin_block) == out.end())
      out.push_back(t.origin_block);
  return out;
}

constexpr const char* kTwoIndependentIfs = R"(
void f(int a, int b)
{
  int x = 0;
  if (a > 0) { x = 1; } else { x = 2; }
  if (b > 0) { x = 3; } else { x = 4; }
}
)";

TEST(Slice, DefaultsUnreachingDecisionsAndDropsTheirVariables) {
  Built bb = build(kTwoIndependentIfs);
  const TransitionSystem& ts = bb.tr->ts;
  const std::vector<cfg::BlockId> decisions = decision_blocks(ts);
  ASSERT_EQ(decisions.size(), 2u);

  // Keep only the second decision: the first cannot influence whether it
  // is reached (no guard downstream reads a or x), so it is defaulted
  // and its variables drop out of the encoding.
  std::vector<bool> keep(std::max(decisions[0], decisions[1]) + 1, false);
  keep[decisions[1]] = true;
  const SegmentSlice s = build_slice(ts, keep);
  ASSERT_FALSE(s.trivial);
  EXPECT_EQ(s.defaulted_decisions, 1u);
  EXPECT_EQ(s.dropped_vars, 2u);  // a and x
  for (std::size_t v = 0; v < ts.vars.size(); ++v)
    EXPECT_EQ(s.var_map[v] != tsys::kNoVar, ts.vars[v].name == "b")
        << ts.vars[v].name;

  // The defaulted fan-out collapsed to one unguarded successor.
  std::size_t first_outs = 0;
  for (const tsys::Transition& t : s.ts.transitions)
    if (t.origin_block == decisions[0]) {
      ++first_outs;
      EXPECT_EQ(t.guard, nullptr);
      EXPECT_FALSE(t.is_decision());
    }
  EXPECT_EQ(first_outs, 1u);
}

TEST(Slice, KeepingEveryDecisionStillDropsGuardIrrelevantVariables) {
  Built bb = build(testing::kExampleB6);
  // Blocks beyond the request vector are kept, so an empty request keeps
  // every decision. The needed-variable closure still prunes: sum and
  // seed feed no guard, only the loop counter does.
  const SegmentSlice s = build_slice(bb.tr->ts, {});
  EXPECT_FALSE(s.trivial);
  EXPECT_EQ(s.defaulted_decisions, 0u);
  EXPECT_EQ(s.dropped_vars, 2u);
  ASSERT_EQ(s.ts.vars.size(), 1u);
  EXPECT_EQ(s.ts.vars[0].name, "i");
}

TEST(Slice, NothingToDropIsTrivial) {
  Built bb = build(R"(
void g(int a)
{
  if (a > 0) { }
}
)");
  // One decision, one variable feeding its guard: the slice would be the
  // full system, so the builder reports it trivial and the driver solves
  // against the original instead.
  const SegmentSlice s = build_slice(bb.tr->ts, {});
  EXPECT_TRUE(s.trivial);
}

TEST(Slice, DefaultedLoopDecisionExitsTheLoop) {
  Built bb = build(testing::kExampleB6);
  const TransitionSystem& ts = bb.tr->ts;
  const std::vector<cfg::BlockId> decisions = decision_blocks(ts);
  ASSERT_FALSE(decisions.empty());
  std::vector<bool> keep(
      *std::max_element(decisions.begin(), decisions.end()) + 1, false);
  const SegmentSlice s = build_slice(ts, keep);
  ASSERT_FALSE(s.trivial);
  EXPECT_GT(s.defaulted_decisions, 0u);
  // With every guard gone, no variable can influence feasibility.
  EXPECT_EQ(s.ts.vars.size(), 0u);
  // Structural termination: the defaulted loop decision takes an edge
  // that leaves its SCC, so exhaustive exploration reaches the final
  // location and completes.
  const mc::ExploreResult ex = mc::explore(s.ts, s.ts.final);
  EXPECT_TRUE(ex.complete);
  EXPECT_TRUE(ex.goal_reached);
}

TEST(Slice, ExpandedWitnessDrivesTheFullSystemThroughTheKeptChoice) {
  Built bb = build(kTwoIndependentIfs);
  const TransitionSystem& ts = bb.tr->ts;
  const std::vector<cfg::BlockId> decisions = decision_blocks(ts);
  ASSERT_EQ(decisions.size(), 2u);
  std::vector<bool> keep(std::max(decisions[0], decisions[1]) + 1, false);
  keep[decisions[1]] = true;
  const SegmentSlice s = build_slice(ts, keep);
  ASSERT_FALSE(s.trivial);

  tsys::VarId b_full = tsys::kNoVar;
  for (const tsys::VarInfo& v : ts.vars)
    if (v.name == "b") b_full = v.id;
  ASSERT_NE(b_full, tsys::kNoVar);

  const auto trace_for = [&](std::int64_t b_value) {
    std::vector<std::int64_t> sliced(s.ts.vars.size(), 0);
    sliced[s.var_map[b_full]] = b_value;
    const std::vector<std::int64_t> full = expand_witness(ts, s, sliced);
    EXPECT_EQ(full.size(), ts.vars.size());
    EXPECT_EQ(full[b_full], b_value);
    return replay_decisions(ts, full, 64);
  };

  // Both expansions terminate in the full system and fire both
  // decisions; the kept decision's branch follows the sliced value.
  const std::vector<cfg::EdgeRef> pos = trace_for(5);
  const std::vector<cfg::EdgeRef> neg = trace_for(-5);
  ASSERT_EQ(pos.size(), 2u);
  ASSERT_EQ(neg.size(), 2u);
  EXPECT_EQ(pos[1].from, decisions[1]);
  EXPECT_EQ(neg[1].from, decisions[1]);
  EXPECT_NE(pos[1].succ_index, neg[1].succ_index);
  // The dropped decision takes the same (witness-anchored) branch.
  EXPECT_EQ(pos[0].from, decisions[0]);
  EXPECT_EQ(pos[0].succ_index, neg[0].succ_index);
}

TEST(Slice, ReplayMatchesConcreteExecution) {
  Built bb = build(testing::kExampleB6);
  const TransitionSystem& ts = bb.tr->ts;
  for (const std::int64_t seed : {0, 3}) {
    std::vector<std::int64_t> init(ts.vars.size(), 0);
    std::vector<std::int64_t> inputs;
    for (const tsys::VarInfo& v : ts.vars)
      if (v.is_input) {
        init[v.id] = seed;
        inputs.push_back(seed);
      }
    const auto concrete = run_concrete(ts, inputs);
    const std::vector<cfg::EdgeRef> trace = replay_decisions(ts, init, 256);
    ASSERT_EQ(trace.size(), concrete.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(trace[i].from, concrete[i].first);
      EXPECT_EQ(trace[i].succ_index, concrete[i].second);
    }
  }
}

// --------------------------------------------- range analysis v2 (paper)

TEST(RangeAnalysisV2, B6CounterNarrowsBelowSixteenBits) {
  Built bb = build(testing::kExampleB6);
  run_passes(bb.tr->ts, all_passes());
  const tsys::VarInfo* counter = nullptr;
  for (const tsys::VarInfo& v : bb.tr->ts.vars)
    if (v.name == "i") counter = &v;
  ASSERT_NE(counter, nullptr);
  // Guard refinement plus threshold widening pins the loop counter to
  // its actual range [0, 4] — 3 bits, down from the 16-bit int domain.
  EXPECT_EQ(counter->lo, 0);
  EXPECT_EQ(counter->hi, 4);
  EXPECT_LT(counter->bits(), 16);
}

}  // namespace
}  // namespace tmg::opt
