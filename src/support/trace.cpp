#include "support/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "support/json.h"

namespace tmg::trace {

namespace {

double now_seconds() {
  // Same clock as engine::monotonic_seconds (CLOCK_MONOTONIC under the
  // hood on Linux), reimplemented here because support cannot depend on
  // engine. Being shared across fork() is what lets shard-child spans
  // land on the parent's timeline without re-stamping.
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ThreadBuf {
  unsigned tid = 0;
  std::mutex mutex;  // appends are uncontended; drain/clear come from others
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<double> epoch{0.0};
  std::mutex mutex;  // guards buffers/next_tid/imported
  // Buffers are owned here and never destroyed: a pool thread may die
  // while its recorded spans must survive until the Recording drains.
  std::vector<std::unique_ptr<ThreadBuf>> buffers;
  unsigned next_tid = 1;
  std::vector<TraceEvent> imported;  // shard-child events, pid pre-stamped
};

TraceState& state() {
  static TraceState s;
  return s;
}

ThreadBuf& thread_buf() {
  thread_local ThreadBuf* buf = nullptr;
  if (buf == nullptr) {
    TraceState& st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    st.buffers.push_back(std::make_unique<ThreadBuf>());
    buf = st.buffers.back().get();
    buf->tid = st.next_tid++;
  }
  return *buf;
}

thread_local std::int64_t t_segment = -1;

/// Renders one event in trace-file form (Chrome trace-event "X" phase).
void write_file_event(std::ostream& os, const TraceEvent& ev) {
  os << "{\"name\":" << json_quote(ev.name) << ",\"cat\":" << json_quote(ev.cat)
     << ",\"ph\":\"X\",\"ts\":" << json_double(ev.ts_us)
     << ",\"dur\":" << json_double(ev.dur_us)
     << ",\"pid\":" << (ev.pid > 0 ? ev.pid : 1) << ",\"tid\":" << ev.tid;
  if (!ev.args.empty()) {
    os << ",\"args\":{";
    for (std::size_t i = 0; i < ev.args.size(); ++i) {
      if (i > 0) os << ',';
      os << json_quote(ev.args[i].first) << ':' << ev.args[i].second;
    }
    os << '}';
  }
  os << '}';
}

/// Renders one event in shard-wire form (args as [key,value-text] pairs,
/// because the parent's JsonValue API cannot enumerate object members).
void write_wire_event(std::ostream& os, const TraceEvent& ev) {
  os << "{\"name\":" << json_quote(ev.name) << ",\"cat\":" << json_quote(ev.cat)
     << ",\"ts\":" << json_double(ev.ts_us)
     << ",\"dur\":" << json_double(ev.dur_us) << ",\"tid\":" << ev.tid
     << ",\"args\":[";
  for (std::size_t i = 0; i < ev.args.size(); ++i) {
    if (i > 0) os << ',';
    os << '[' << json_quote(ev.args[i].first) << ','
       << json_quote(ev.args[i].second) << ']';
  }
  os << "]}";
}

struct ProgressState {
  std::mutex mutex;
  std::ostream* sink = nullptr;
  std::size_t total = 0;
  std::size_t done = 0;
};

ProgressState& progress_state() {
  static ProgressState s;
  return s;
}

}  // namespace

bool enabled() { return state().enabled.load(std::memory_order_relaxed); }

TraceSpan::TraceSpan(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  live_ = true;
  t0_ = now_seconds();
  ev_.name.assign(name);
  ev_.cat.assign(cat);
}

TraceSpan::~TraceSpan() {
  if (!live_) return;
  const double t1 = now_seconds();
  const double epoch = state().epoch.load(std::memory_order_relaxed);
  ev_.ts_us = (t0_ - epoch) * 1e6;
  ev_.dur_us = (t1 - t0_) * 1e6;
  ThreadBuf& buf = thread_buf();
  ev_.tid = buf.tid;
  const std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(std::move(ev_));
}

void emit_complete(std::string_view name, std::string_view cat,
                   double start_seconds, double end_seconds) {
  if (!enabled()) return;
  const double epoch = state().epoch.load(std::memory_order_relaxed);
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat.assign(cat);
  ev.ts_us = (start_seconds - epoch) * 1e6;
  ev.dur_us = (end_seconds - start_seconds) * 1e6;
  ev.tid = 0;  // timeline track: cross-thread windows don't nest
  ThreadBuf& buf = thread_buf();
  const std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(std::move(ev));
}

void TraceSpan::arg(std::string_view key, std::string_view value) {
  if (!live_) return;
  ev_.args.emplace_back(std::string(key), json_quote(value));
}

void TraceSpan::arg(std::string_view key, std::int64_t value) {
  if (!live_) return;
  ev_.args.emplace_back(std::string(key), std::to_string(value));
}

void TraceSpan::arg_double(std::string_view key, double value) {
  if (!live_) return;
  ev_.args.emplace_back(std::string(key), json_double(value));
}

Recording::Recording(std::string path, std::ostream& err)
    : path_(std::move(path)), err_(err) {
  clear();
  TraceState& st = state();
  st.epoch.store(now_seconds(), std::memory_order_relaxed);
  st.enabled.store(true, std::memory_order_relaxed);
}

Recording::~Recording() {
  TraceState& st = state();
  st.enabled.store(false, std::memory_order_relaxed);
  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  if (!os) {
    err_ << "tmg: warning: cannot write trace file '" << path_ << "'\n";
    return;
  }
  os << '[';
  bool first = true;
  const std::lock_guard<std::mutex> lock(st.mutex);
  for (const std::unique_ptr<ThreadBuf>& buf : st.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    for (const TraceEvent& ev : buf->events) {
      if (!first) os << ",\n";
      first = false;
      write_file_event(os, ev);
    }
    buf->events.clear();
  }
  for (const TraceEvent& ev : st.imported) {
    if (!first) os << ",\n";
    first = false;
    write_file_event(os, ev);
  }
  st.imported.clear();
  os << "]\n";
  if (!os.good())
    err_ << "tmg: warning: error writing trace file '" << path_ << "'\n";
}

void clear() {
  TraceState& st = state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  for (const std::unique_ptr<ThreadBuf>& buf : st.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
  st.imported.clear();
}

std::size_t event_count() {
  TraceState& st = state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  std::size_t n = st.imported.size();
  for (const std::unique_ptr<ThreadBuf>& buf : st.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

std::string events_json() {
  TraceState& st = state();
  std::ostringstream os;
  os << '[';
  bool first = true;
  const std::lock_guard<std::mutex> lock(st.mutex);
  for (const std::unique_ptr<ThreadBuf>& buf : st.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mutex);
    for (const TraceEvent& ev : buf->events) {
      if (!first) os << ',';
      first = false;
      write_wire_event(os, ev);
    }
  }
  os << ']';
  return os.str();
}

void import_events(const JsonValue& array, int pid) {
  if (array.kind() != JsonValue::Kind::Array) return;
  TraceState& st = state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  for (const JsonValue& item : array.items()) {
    if (item.kind() != JsonValue::Kind::Object) continue;
    TraceEvent ev;
    if (const JsonValue* v = item.find("name")) ev.name = v->as_string();
    if (const JsonValue* v = item.find("cat")) ev.cat = v->as_string();
    if (const JsonValue* v = item.find("ts")) ev.ts_us = v->as_double();
    if (const JsonValue* v = item.find("dur")) ev.dur_us = v->as_double();
    if (const JsonValue* v = item.find("tid"))
      ev.tid = static_cast<unsigned>(v->as_int());
    ev.pid = pid;
    if (const JsonValue* args = item.find("args")) {
      for (const JsonValue& pair : args->items()) {
        if (pair.kind() != JsonValue::Kind::Array || pair.items().size() != 2)
          continue;
        ev.args.emplace_back(pair.items()[0].as_string(),
                             pair.items()[1].as_string());
      }
    }
    st.imported.push_back(std::move(ev));
  }
}

ScopedSegment::ScopedSegment(std::int64_t segment_id) : saved_(t_segment) {
  t_segment = segment_id;
}

ScopedSegment::~ScopedSegment() { t_segment = saved_; }

std::int64_t current_segment() { return t_segment; }

// ---------------------------------------------------------------------------
// Metrics

void Histogram::observe(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add for atomic<double> is C++20-and-compiler dependent; a CAS
  // loop over the bit pattern is portable and this path is not hot.
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const double next = std::bit_cast<double>(expected) + value;
    if (sum_bits_.compare_exchange_weak(expected, std::bit_cast<std::uint64_t>(next),
                                        std::memory_order_relaxed))
      break;
  }
  int b = 0;
  if (value >= 1.0) {
    b = std::min(kBuckets - 1, std::ilogb(value));
    if (b < 0) b = 0;
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

namespace {

struct RegistryState {
  mutable std::mutex mutex;
  // unique_ptr values keep references stable across rehash/insert;
  // std::less<> enables string_view lookup without allocation.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

RegistryState& registry_state() {
  static RegistryState s;
  return s;
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry r;
  return r;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  RegistryState& st = registry_state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  auto it = st.counters.find(name);
  if (it == st.counters.end())
    it = st.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  RegistryState& st = registry_state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  auto it = st.histograms.find(name);
  if (it == st.histograms.end())
    it = st.histograms.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  RegistryState& st = registry_state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  const auto it = st.counters.find(name);
  return it == st.counters.end() ? 0 : it->second->get();
}

void MetricsRegistry::reset() {
  RegistryState& st = registry_state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  for (auto& [name, c] : st.counters) c->reset();
  for (auto& [name, h] : st.histograms) h->reset();
}

std::string MetricsRegistry::to_json() const {
  RegistryState& st = registry_state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : st.counters) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << c->get();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : st.histograms) {
    if (!first) os << ',';
    first = false;
    int last = -1;
    for (int i = 0; i < Histogram::kBuckets; ++i)
      if (h->bucket(i) > 0) last = i;
    os << json_quote(name) << ":{\"count\":" << h->count()
       << ",\"sum\":" << json_double(h->sum()) << ",\"buckets\":[";
    for (int i = 0; i <= last; ++i) {
      if (i > 0) os << ',';
      os << h->bucket(i);
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Progress

void enable_progress(std::ostream* sink, std::size_t total_files) {
  ProgressState& st = progress_state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  st.sink = sink;
  st.total = total_files;
  st.done = 0;
}

void disable_progress() {
  ProgressState& st = progress_state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  st.sink = nullptr;
  st.total = 0;
  st.done = 0;
}

void progress_file_done() {
  ProgressState& st = progress_state();
  const std::lock_guard<std::mutex> lock(st.mutex);
  if (st.sink == nullptr) return;
  ++st.done;
  const MetricsRegistry& reg = MetricsRegistry::instance();
  *st.sink << "tmg: progress: " << st.done << '/' << st.total << " files, "
           << reg.counter_value("pipeline.path_jobs") << " paths solved, "
           << reg.counter_value("cache.hits") << " cache hits\n";
  st.sink->flush();
}

}  // namespace tmg::trace
