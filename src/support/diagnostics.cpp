#include "support/diagnostics.h"

#include <sstream>

namespace tmg {

std::ostream& operator<<(std::ostream& os, const SourceLoc& loc) {
  if (!loc.valid()) return os << "<unknown>";
  return os << loc.line << ':' << loc.column;
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc,
                              std::string message) {
  if (sev == Severity::Error) ++errors_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

std::string DiagnosticEngine::str() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << d.loc << ": ";
    switch (d.severity) {
      case Severity::Note: os << "note: "; break;
      case Severity::Warning: os << "warning: "; break;
      case Severity::Error: os << "error: "; break;
    }
    os << d.message << '\n';
  }
  return os.str();
}

}  // namespace tmg
