// Minimal JSON support shared by every JSON producer/consumer in the tree:
// one string escaper (driver reports, engine bench reports), one
// round-trip-exact double formatter, and a small JSON value + recursive
// descent parser used by the shard merge (child shard processes stream
// per-file results as JSON; the parent parses and merges them).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tmg {

/// Returns `s` as a double-quoted JSON string literal.
std::string json_quote(std::string_view s);

/// Formats a double so that parsing the result recovers the exact bits
/// (printf %.17g). Used by the shard IPC so re-rendered wall-clock values
/// are byte-identical to an in-process run.
std::string json_double(double v);

/// One parsed JSON value. Numbers keep both representations: integral
/// literals (no '.', 'e') that fit int64 report is_int() so counters
/// survive the round trip exactly; as_double() works for both.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_int() const { return kind_ == Kind::Int; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const {
    return kind_ == Kind::Double ? static_cast<std::int64_t>(double_) : int_;
  }
  [[nodiscard]] double as_double() const {
    return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }

  /// Object member by key; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// find() that dies on absence is deliberately not offered: shard
  /// payloads come from another process, so every read must handle
  /// malformed input. `get` returns a Null-kind sentinel instead.
  [[nodiscard]] const JsonValue& get(std::string_view key) const;

  // Construction (parser + tests).
  static JsonValue null() { return JsonValue(); }
  static JsonValue of(bool b);
  static JsonValue of(std::int64_t v);
  static JsonValue of(double v);
  static JsonValue of(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;  // Array
  std::vector<std::pair<std::string, JsonValue>> members_;  // Object
};

/// Parses one JSON document (object, array or scalar; leading/trailing
/// whitespace allowed, nothing else may follow). Returns nullopt and a
/// position-annotated message in `error` on malformed input.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace tmg
