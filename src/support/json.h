// Minimal JSON string quoting shared by every JSON emitter in the tree
// (driver reports, engine bench reports). One escaper, one behaviour:
// quotes and backslashes are escaped, \n and \t use their short forms,
// all other control characters become \u00XX.
#pragma once

#include <string>
#include <string_view>

namespace tmg {

/// Returns `s` as a double-quoted JSON string literal.
std::string json_quote(std::string_view s);

}  // namespace tmg
