// Unified tracing + metrics layer.
//
// Two independent facilities share this header because they share call
// sites (a span usually bumps a counter too):
//
//  * TraceSpan / Recording — RAII spans collected into per-thread buffers
//    and written as Chrome/Perfetto trace-event JSON ("ph":"X" complete
//    events) when a Recording is active (`--trace=FILE`). When no
//    recording is active every span is a branch on one relaxed atomic —
//    near-zero overhead, no allocation, no lock.
//
//  * MetricsRegistry — process-wide named counters and latency
//    histograms. Always on (plain relaxed atomics), because `tmg serve`
//    must answer `metrics` requests without tracing enabled.
//
// Determinism contract: nothing here may feed the deterministic report
// streams. Per-file report statistics (`--stats` stage timings, solver
// counters in bench JSON) keep their per-file sources in PipelineResult /
// BenchReport so a file's report stays byte-identical regardless of what
// else ran in the process; the registry is the *aggregation* layer for
// introspection (serve `metrics`, `--progress`), never a report source.
//
// Shards: trace buffers survive fork(). The steady-clock epoch is shared
// between parent and child on Linux, so child span timestamps line up on
// the parent's timeline without re-stamping. A child clears its inherited
// buffers, records its own spans, and ships them over the shard JSON wire
// (trace::events_json); the parent imports them with a per-shard pid
// (trace::import_events) and writes one stitched trace file.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tmg {
class JsonValue;
}

namespace tmg::trace {

/// One completed span. `args` values are pre-rendered JSON (already
/// quoted/escaped) so buffers never re-escape on the hot path and the
/// shard wire can carry them verbatim.
struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;   // microseconds since the recording epoch
  double dur_us = 0.0;  // span duration in microseconds
  int pid = 0;          // 0 = this process (written as 1); >=2 = imported shard
  unsigned tid = 0;     // per-thread id assigned at first span
  std::vector<std::pair<std::string, std::string>> args;
};

/// True while a Recording is active. Relaxed load; spans check this once
/// in their constructor and become no-ops when false.
bool enabled();

/// RAII complete-event span. Construct at scope entry; the destructor
/// stamps the duration and appends to the current thread's buffer.
/// `arg()` may be called any time before destruction (verdicts are known
/// only after the work runs). All methods are no-ops when !enabled().
class TraceSpan {
 public:
  TraceSpan(std::string_view name, std::string_view cat);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void arg(std::string_view key, std::string_view value);  // quoted as string
  void arg(std::string_view key, std::int64_t value);
  void arg_double(std::string_view key, double value);

 private:
  bool live_ = false;
  double t0_ = 0.0;
  TraceEvent ev_;
};

/// Active recording for one `--trace=FILE` run. Construction clears all
/// buffers, fixes the epoch and enables span collection; destruction
/// disables collection, drains every thread buffer plus imported shard
/// events and writes one JSON array to `path` (a warning goes to `err`
/// if the file cannot be written). Exactly one Recording may be active.
/// Shard children never run this destructor (they _exit after shipping
/// their buffers over the wire).
class Recording {
 public:
  Recording(std::string path, std::ostream& err);
  ~Recording();
  Recording(const Recording&) = delete;
  Recording& operator=(const Recording&) = delete;

 private:
  std::string path_;
  std::ostream& err_;
};

/// Records an already-measured complete event. `start_seconds` /
/// `end_seconds` are steady-clock readings (the same clock as
/// engine::monotonic_seconds), for stages whose duration is computed
/// retrospectively from saved timestamps instead of a scope — the batch
/// frontier's "analysis" stage, whose window starts on a different
/// thread than the one that closes it. Such events go on the dedicated
/// tid-0 "timeline" track (real thread tids start at 1), because a
/// cross-thread window need not nest with the emitting thread's scoped
/// spans. No-op when !enabled().
void emit_complete(std::string_view name, std::string_view cat,
                   double start_seconds, double end_seconds);

/// Drops all buffered and imported events (shard children call this right
/// after fork to discard inherited parent spans; tests use it too).
void clear();

/// Total events currently buffered (local + imported).
std::size_t event_count();

/// Serializes this process's buffered events for the shard wire: a JSON
/// array of {"name","cat","ts","dur","tid","args":[[k,v],...]} objects.
/// `args` is an array of pairs (not an object) because JsonValue offers
/// no object-member enumeration; values are the pre-rendered JSON texts.
std::string events_json();

/// Parses a wire array produced by events_json() in a shard child and
/// buffers its events stamped with `pid` (parent uses 2 + shard index).
void import_events(const JsonValue& array, int pid);

/// Thread-local segment tag: run_path_job sets the segment id it is
/// working on so the bmc.query span deep inside Session::solve can name
/// its segment without plumbing an argument through the solver API.
class ScopedSegment {
 public:
  explicit ScopedSegment(std::int64_t segment_id);
  ~ScopedSegment();
  ScopedSegment(const ScopedSegment&) = delete;
  ScopedSegment& operator=(const ScopedSegment&) = delete;

 private:
  std::int64_t saved_;
};

/// Current thread's segment tag; -1 when unset.
std::int64_t current_segment();

// ---------------------------------------------------------------------------
// Metrics

/// Monotonic counter. add() is a relaxed fetch_add — safe from any thread,
/// cheap enough for solver-adjacent paths.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t get() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed log2-bucket histogram: bucket i counts values in [2^i, 2^(i+1))
/// (bucket 0 also takes everything below 1). Callers observe microseconds
/// for latencies and raw units for sizes/depths.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  void observe(double value);
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  [[nodiscard]] std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double stored as bits, CAS-added
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Process-wide registry of named counters and histograms. Lookup takes a
/// mutex; hot sites cache the returned reference in a function-local
/// static. reset() zeroes values but never invalidates references.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Counter value by name; 0 when the counter was never touched.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Zeroes every registered counter and histogram (tests).
  void reset();

  /// {"counters":{name:value,...},"histograms":{name:{"count":..,
  /// "sum":..,"buckets":[..]},...}} with names sorted; histogram bucket
  /// arrays are trimmed at the last non-zero bucket.
  [[nodiscard]] std::string to_json() const;

 private:
  MetricsRegistry() = default;
};

// ---------------------------------------------------------------------------
// Progress heartbeat (`--progress`): a stderr-only sink, never touching
// the deterministic report streams. progress_file_done() is called once
// per finished input file (merge or cache hit) and prints files done /
// total, paths solved and cache hits read from the registry.

void enable_progress(std::ostream* sink, std::size_t total_files);
void disable_progress();
void progress_file_done();

}  // namespace tmg::trace
