#include "support/path_count.h"

#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

namespace tmg {

PathCount PathCount::from_log2(double l) {
  PathCount pc;
  if (l < 63.0) {
    pc.exact_ = static_cast<std::uint64_t>(std::llround(std::exp2(l)));
    pc.sat_ = false;
  } else {
    pc.sat_ = true;
    pc.log2_ = l;
  }
  return pc;
}

double PathCount::log2() const {
  if (sat_) return log2_;
  if (exact_ <= 1) return 0.0;
  return std::log2(static_cast<double>(exact_));
}

double PathCount::as_double() const {
  if (!sat_) return static_cast<double>(exact_);
  if (log2_ > 1020.0) return std::numeric_limits<double>::max();
  return std::exp2(log2_);
}

void PathCount::saturate() {
  if (sat_) return;
  sat_ = true;
  log2_ = exact_ <= 1 ? 0.0 : std::log2(static_cast<double>(exact_));
}

PathCount& PathCount::operator+=(const PathCount& o) {
  if (!sat_ && !o.sat_) {
    if (exact_ <= kSatLimit - o.exact_ && exact_ + o.exact_ < kSatLimit) {
      exact_ += o.exact_;
      return *this;
    }
  }
  // log-domain addition: log2(a + b) = log2(a) + log2(1 + b/a), a >= b.
  double la = log2();
  double lb = o.log2();
  // Zero operands: log2() of 0 is 0 here; handle explicitly.
  const bool a_zero = !sat_ && exact_ == 0;
  const bool b_zero = !o.sat_ && o.exact_ == 0;
  if (a_zero) { *this = o; return *this; }
  if (b_zero) return *this;
  if (la < lb) std::swap(la, lb);
  const double l = la + std::log2(1.0 + std::exp2(lb - la));
  *this = from_log2(l);
  return *this;
}

PathCount& PathCount::operator*=(const PathCount& o) {
  if (!sat_ && !o.sat_) {
    if (exact_ == 0 || o.exact_ == 0) {
      *this = PathCount(0);
      return *this;
    }
    if (exact_ < kSatLimit / o.exact_) {
      exact_ *= o.exact_;
      return *this;
    }
  }
  const bool a_zero = !sat_ && exact_ == 0;
  const bool b_zero = !o.sat_ && o.exact_ == 0;
  if (a_zero || b_zero) {
    *this = PathCount(0);
    return *this;
  }
  *this = from_log2(log2() + o.log2());
  return *this;
}

PathCount PathCount::pow(std::uint64_t e) const {
  if (e == 0) return PathCount(1);
  const bool is_zero = !sat_ && exact_ == 0;
  if (is_zero) return PathCount(0);
  const double l = log2() * static_cast<double>(e);
  if (l < 62.0 && !sat_) {
    PathCount r(1);
    for (std::uint64_t i = 0; i < e; ++i) r *= *this;
    return r;
  }
  return from_log2(l);
}

bool operator==(const PathCount& a, const PathCount& b) {
  if (a.sat_ != b.sat_) return false;
  if (!a.sat_) return a.exact_ == b.exact_;
  return a.log2_ == b.log2_;
}

bool operator<(const PathCount& a, const PathCount& b) {
  if (!a.sat_ && !b.sat_) return a.exact_ < b.exact_;
  return a.log2() < b.log2();
}

std::string PathCount::str() const {
  std::ostringstream os;
  if (!sat_) {
    os << exact_;
  } else {
    os.precision(1);
    os << "2^" << std::fixed << log2_;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const PathCount& pc) {
  return os << pc.str();
}

}  // namespace tmg
