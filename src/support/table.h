// Plain-text table rendering used by the benchmark harnesses to print the
// paper's tables and figure series in a diff-friendly, aligned format.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace tmg {

/// Column-aligned text table. Numeric cells are right-aligned, text cells
/// left-aligned; the header row is separated by a rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);
  /// Convenience: formats each value with operator<<.
  template <typename... Ts>
  void add(const Ts&... vals) {
    std::vector<std::string> cells;
    (cells.push_back(to_cell(vals)), ...);
    add_row(std::move(cells));
  }

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::string csv() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string to_cell(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of fraction digits.
std::string fmt_double(double v, int digits = 2);

}  // namespace tmg

#include <sstream>

namespace tmg {
template <typename T>
std::string TextTable::to_cell(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v;
  } else if constexpr (std::is_convertible_v<T, const char*>) {
    return std::string(v);
  } else {
    std::ostringstream os;
    os << v;
    return os.str();
  }
}
}  // namespace tmg
