// Saturating path-count arithmetic. Program-segment path counts grow as
// products over independent branches (Figure 3 of the paper shows the
// explosion toward end-to-end measurement), so they overflow 64-bit integers
// for realistic programs. PathCount keeps an exact uint64 while possible and
// degrades to a log2 estimate once the exact value saturates.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace tmg {

/// Non-negative big counter with +, * and comparison against small bounds.
/// Exact up to 2^63; beyond that only log2 is tracked (sufficient for the
/// Figure 3 reproduction, which reports log2(m) for the intractable tail).
class PathCount {
 public:
  PathCount() = default;
  /*implicit*/ PathCount(std::uint64_t v) : exact_(v), log2_(0), sat_(false) {}

  static PathCount zero() { return PathCount(0); }
  static PathCount one() { return PathCount(1); }
  /// A value known only through its base-2 logarithm (already saturated).
  static PathCount from_log2(double l);

  [[nodiscard]] bool saturated() const { return sat_; }
  /// Exact value; only meaningful when !saturated().
  [[nodiscard]] std::uint64_t exact() const { return exact_; }
  /// log2 of the value (0 for values <= 1). Valid in both representations.
  [[nodiscard]] double log2() const;
  /// Value as double (inf-free; saturates to ~1e308).
  [[nodiscard]] double as_double() const;

  /// True iff the count is known exactly and <= bound. Saturated counts
  /// exceed every practical bound.
  [[nodiscard]] bool le(std::uint64_t bound) const {
    return !sat_ && exact_ <= bound;
  }

  PathCount& operator+=(const PathCount& o);
  PathCount& operator*=(const PathCount& o);
  friend PathCount operator+(PathCount a, const PathCount& b) { return a += b; }
  friend PathCount operator*(PathCount a, const PathCount& b) { return a *= b; }

  /// this^e with saturation (used for loop regions: paths(body)^iterations).
  [[nodiscard]] PathCount pow(std::uint64_t e) const;

  friend bool operator==(const PathCount& a, const PathCount& b);
  friend bool operator<(const PathCount& a, const PathCount& b);

  /// "42" for exact values, "2^123.4" once saturated.
  [[nodiscard]] std::string str() const;

 private:
  static constexpr std::uint64_t kSatLimit = 1ULL << 63;
  void saturate();

  std::uint64_t exact_ = 0;
  double log2_ = 0.0;  // valid only when sat_
  bool sat_ = false;
};

std::ostream& operator<<(std::ostream& os, const PathCount& pc);

}  // namespace tmg
