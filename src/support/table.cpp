#include "support/table.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace tmg {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  bool digit_seen = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '+' && c != '-' &&
               c != '^' && c != '%') {
      return false;
    }
  }
  return digit_seen;
}
}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      const bool right = align_numeric && looks_numeric(cell);
      os << ' ';
      if (right)
        os << std::setw(static_cast<int>(width[c])) << std::right << cell;
      else
        os << std::setw(static_cast<int>(width[c])) << std::left << cell;
      os << " |";
    }
    os << '\n';
  };
  emit(header_, false);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row, true);
  return os.str();
}

std::string TextTable::csv() const {
  // RFC-4180 quoting: cells carrying the delimiter, quotes or newlines
  // (e.g. user-supplied file paths in batch reports) must not shift the
  // columns of the machine-readable output.
  auto quote = [](const std::string& cell) -> std::string {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_double(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace tmg
