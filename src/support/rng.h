// Deterministic pseudo-random number generation. All stochastic components
// (genetic algorithm, synthetic program generator) take an explicit Rng so
// experiments are reproducible from a seed.
#pragma once

#include <cstdint>
#include <limits>

namespace tmg {

/// splitmix64-seeded xoshiro256** generator. Deterministic across platforms;
/// satisfies the needs of test-data search, not cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to spread a possibly-low-entropy seed over the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 yields 0.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // The full range [INT64_MIN, INT64_MAX] wraps the span to 0, which
    // below() maps to 0 — every draw would collapse to lo. Any 64-bit
    // pattern is in range, so draw one directly.
    if (span == 0) return static_cast<std::int64_t>(next_u64());
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     below(span));
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return unit() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace tmg
