#include "support/json.h"

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace tmg {

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

JsonValue JsonValue::of(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::of(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::Int;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::of(double d) {
  JsonValue v;
  v.kind_ = Kind::Double;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::of(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.members_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::get(std::string_view key) const {
  static const JsonValue kNull;
  const JsonValue* v = find(key);
  return v != nullptr ? *v : kNull;
}

namespace {

/// Recursive descent over one UTF-8 JSON document. Depth-limited so a
/// malicious/corrupt shard payload cannot overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!value(v, 0)) {
      if (error != nullptr)
        *error = error_ + " at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr)
        *error = "trailing data at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n': return literal("null") && (out = JsonValue::null(), true);
      case 't': return literal("true") && (out = JsonValue::of(true), true);
      case 'f': return literal("false") && (out = JsonValue::of(false), true);
      case '"': {
        std::string s;
        if (!string(s)) return false;
        out = JsonValue::of(std::move(s));
        return true;
      }
      case '[': return array(out, depth);
      case '{': return object(out, depth);
      default: return number(out);
    }
  }

  bool string(std::string& out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("bad escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            pos_ += 4;
            // Our own emitter only produces \u00XX control characters;
            // encode anything else as UTF-8 for robustness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("bad escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    const std::string_view lex = text_.substr(start, pos_ - start);
    if (lex.empty() || lex == "-") return fail("expected value");

    const bool integral = lex.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
      std::int64_t i = 0;
      const auto [p, ec] = std::from_chars(lex.data(), lex.data() + lex.size(), i);
      if (ec == std::errc{} && p == lex.data() + lex.size()) {
        out = JsonValue::of(i);
        return true;
      }
      // falls through to double on int64 overflow
    }
    const std::string owned(lex);  // strtod needs a terminator
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) return fail("bad number");
    out = JsonValue::of(d);
    return true;
  }

  bool array(JsonValue& out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = JsonValue::array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      if (!value(item, depth + 1)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out = JsonValue::array(std::move(items));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = JsonValue::object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':'");
      ++pos_;
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out = JsonValue::object(std::move(members));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  return Parser(text).run(error);
}

}  // namespace tmg
