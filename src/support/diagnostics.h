// Diagnostics: source locations and error reporting shared by the mini-C
// frontend, the transition-system translator and the partitioner.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tmg {

/// A position in a mini-C source buffer. Lines and columns are 1-based;
/// line 0 means "unknown / synthesised".
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

std::ostream& operator<<(std::ostream& os, const SourceLoc& loc);

/// Severity of a reported diagnostic.
enum class Severity { Note, Warning, Error };

/// One reported problem, tagged with its source position.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics produced while processing one translation unit.
/// The frontend never throws on user errors; callers check error_count().
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::size_t error_count() const { return errors_; }
  [[nodiscard]] bool ok() const { return errors_ == 0; }

  /// Renders all diagnostics, one per line, as "line:col: severity: message".
  [[nodiscard]] std::string str() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
};

}  // namespace tmg
