// Process-level sharding of multi-file runs (`tmg --shards N`): the file
// list is split round-robin over N forked worker processes, each running
// its own global job frontier (and its own `--jobs` pool) over its slice.
// Children stream per-file results back as JSON over a pipe; the parent
// parses (support/json.h), reassembles in input order and renders the
// normal report — byte-identical to the in-process run.
//
// Why processes and not just more threads: memory isolation. A shard that
// exhausts memory (or trips a solver pathology) kills one child, not the
// whole batch, and peak RSS per process stays bounded by its slice.
//
// The wire format is internal (parent and child are always the same
// binary) but versioned defensively: every payload is one JSON object
// with an "ok" field, errors travel in-band with the failing input's
// global index so the parent reports the first failure in input order,
// exactly like the sequential driver.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "driver/cli.h"
#include "support/json.h"

namespace tmg::driver {

/// Runs the current mode (batch report, --table2 or --bench) sharded over
/// `opts.shards` forked processes. Returns the process exit code (0/2),
/// or -1 when sharding is unavailable on this platform (no fork) — the
/// caller should fall back to the in-process path.
///
/// In batch-report mode the parent consults `cache` first: hits skip the
/// shards entirely, only misses are forked, and computed reports are
/// stored back (single-writer — children never touch the cache).
/// --table2 and --bench shards run uncached: table2 halves fork per
/// config anyway, and bench must measure real computation.
int run_sharded(const CliOptions& opts,
                const std::vector<std::string>& sources, ResultCache& cache,
                std::ostream& out, std::ostream& err);

// ------------------------------------------------------------------ wire
// Exposed for tests, the result cache and `tmg serve`: the serialisation
// halves of the shard protocol. One PipelineResult as one JSON object is
// the unit every consumer shares — shard children stream it, cache
// entries embed it, the serve daemon replies with it — so a report parsed
// from any of them renders byte-identically to an in-process run.

/// One analysed file's report as a JSON object (the shard wire schema).
std::string serialize_pipeline_result(const PipelineResult& r);

/// Inverse of serialize_pipeline_result. Returns false on any schema
/// mismatch, leaving `r` partially filled (callers discard it).
bool parse_pipeline_result(const JsonValue& v, PipelineResult& r);

/// Payload of one shard in batch-report mode: the per-file results (with
/// global input indices) or the first in-slice failure.
std::string serialize_batch_payload(const BatchResult& batch,
                                    const std::vector<std::size_t>& indices);

/// Merges one parsed shard payload into the global file slots. Returns
/// false (with `error`) on malformed payloads; records in-band failures
/// into `fail_index`/`fail_error` (smallest index wins). `have_fail`
/// tracks whether any failure was recorded yet — callers must not infer
/// that from `fail_error.empty()`, since a failure may legitimately carry
/// an empty message (an empty-message failure used to be silently
/// overwritten by a later, higher-index one).
bool merge_batch_payload(const std::string& payload, std::size_t num_files,
                         std::vector<BatchEntry>& slots,
                         std::vector<bool>& filled, bool& have_fail,
                         std::size_t& fail_index, std::string& fail_error,
                         std::string& error);

std::string serialize_table2_payload(const Table2Report& report,
                                     const std::vector<std::size_t>& indices);

std::string serialize_bench_payload(
    const std::vector<engine::BenchFile>& files, double batch_seconds,
    const std::vector<std::size_t>& indices, bool ok, std::size_t fail_index,
    const std::string& fail_error);

}  // namespace tmg::driver
