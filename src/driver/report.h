// Rendering of pipeline results: the per-segment timing-model table (text /
// CSV / JSON), the Table-1-style partition summary, and the multi-file
// batch report.
//
// Determinism contract: without `with_stages`, every format contains only
// values that are pure functions of (source, options) — no wall-clock, no
// worker counts — so repeated runs and different `--jobs N` settings are
// byte-identical. Wall-clock columns (bmc_ms, stage seconds) only appear
// when `with_stages` is set.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "driver/pipeline.h"

namespace tmg::driver {

enum class ReportFormat : std::uint8_t { Text, Csv, Json };

/// Parses "text" / "csv" / "json"; returns false on anything else.
bool parse_format(std::string_view name, ReportFormat& out);

/// Renders the per-segment timing model of every analysed function.
/// `with_stages` adds wall-clock data: the bmc_ms column, the per-stage
/// table (text) / stage objects (JSON).
void render_report(const PipelineResult& result, const PipelineOptions& opts,
                   ReportFormat format, bool with_stages, std::ostream& os);

/// Renders a multi-file batch: per-file reports plus an aggregate summary
/// (file count, segments, path verdict totals, witness-replay totals).
void render_batch_report(const std::vector<BatchEntry>& files,
                         const PipelineOptions& opts, ReportFormat format,
                         bool with_stages, std::ostream& os);

// ---------------------------------------------------------------- corpus
// `tmg --corpus DIR` summarises every file of a tree: one thin row per
// file (corpus runs may span thousands of files, so the per-segment
// tables stay out) streamed as files complete, plus one aggregate at the
// end. The streaming contract: begin once, then rows strictly in input
// order (the driver holds back out-of-order completions), then end.

/// One corpus file's outcome.
struct CorpusRow {
  std::string path;  ///< relative to the corpus root
  bool ok = false;
  std::string error;  ///< diagnostic when !ok (may be multi-line)
  std::size_t functions = 0;
  std::size_t segments = 0;
  std::size_t paths = 0;
  std::size_t feasible = 0;
  std::size_t infeasible = 0;
  std::size_t unknown = 0;
  bool conclusive = false;  ///< every function's model is exact
  std::int64_t wcet_total = 0;
};

/// Summarises one analysed file into a corpus row (result.ok may be
/// false: the row carries the diagnostic instead of counts).
CorpusRow corpus_row(std::string path, const PipelineResult& result);

void render_corpus_begin(ReportFormat format, std::ostream& os);
/// `index` is the 0-based row position (JSON needs it for commas).
void render_corpus_row(const CorpusRow& row, std::size_t index,
                       ReportFormat format, std::ostream& os);
void render_corpus_end(const std::vector<CorpusRow>& rows,
                       ReportFormat format, std::ostream& os);

/// Renders the Table-1-style summary (b, segments, ip, fused ip, m).
void render_partition_summary(const PartitionSummary& summary,
                              ReportFormat format, std::ostream& os);

/// Renders the Table-2-style before/after optimisation comparison (state
/// bits, transitions, BMC time, solver memory proxy, model equality), with
/// an aggregate row when several inputs were compared. Contains wall-clock
/// columns by design: like --bench, this is a measurement mode.
void render_table2(const Table2Report& report, ReportFormat format,
                   std::ostream& os);

/// Human-readable verdict / kind names used across formats.
std::string verdict_name(PathVerdict v);
std::string segment_kind_name(core::SegmentKind k);

}  // namespace tmg::driver
