// Rendering of pipeline results: the per-segment timing-model table (text /
// CSV / JSON), the Table-1-style partition summary, and the multi-file
// batch report.
//
// Determinism contract: without `with_stages`, every format contains only
// values that are pure functions of (source, options) — no wall-clock, no
// worker counts — so repeated runs and different `--jobs N` settings are
// byte-identical. Wall-clock columns (bmc_ms, stage seconds) only appear
// when `with_stages` is set.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "driver/pipeline.h"

namespace tmg::driver {

enum class ReportFormat : std::uint8_t { Text, Csv, Json };

/// Parses "text" / "csv" / "json"; returns false on anything else.
bool parse_format(std::string_view name, ReportFormat& out);

/// Renders the per-segment timing model of every analysed function.
/// `with_stages` adds wall-clock data: the bmc_ms column, the per-stage
/// table (text) / stage objects (JSON).
void render_report(const PipelineResult& result, const PipelineOptions& opts,
                   ReportFormat format, bool with_stages, std::ostream& os);

/// Renders a multi-file batch: per-file reports plus an aggregate summary
/// (file count, segments, path verdict totals, witness-replay totals).
void render_batch_report(const std::vector<BatchEntry>& files,
                         const PipelineOptions& opts, ReportFormat format,
                         bool with_stages, std::ostream& os);

/// Renders the Table-1-style summary (b, segments, ip, fused ip, m).
void render_partition_summary(const PartitionSummary& summary,
                              ReportFormat format, std::ostream& os);

/// Renders the Table-2-style before/after optimisation comparison (state
/// bits, transitions, BMC time, solver memory proxy, model equality), with
/// an aggregate row when several inputs were compared. Contains wall-clock
/// columns by design: like --bench, this is a measurement mode.
void render_table2(const Table2Report& report, ReportFormat format,
                   std::ostream& os);

/// Human-readable verdict / kind names used across formats.
std::string verdict_name(PathVerdict v);
std::string segment_kind_name(core::SegmentKind k);

}  // namespace tmg::driver
