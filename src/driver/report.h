// Rendering of pipeline results: the per-segment timing-model table (text /
// CSV / JSON) and the Table-1-style partition summary.
#pragma once

#include <ostream>
#include <string>

#include "driver/pipeline.h"

namespace tmg::driver {

enum class ReportFormat : std::uint8_t { Text, Csv, Json };

/// Parses "text" / "csv" / "json"; returns false on anything else.
bool parse_format(std::string_view name, ReportFormat& out);

/// Renders the per-segment timing model of every analysed function.
/// `with_stages` adds the per-stage wall-clock table (text format only).
void render_report(const PipelineResult& result, const PipelineOptions& opts,
                   ReportFormat format, bool with_stages, std::ostream& os);

/// Renders the Table-1-style summary (b, segments, ip, fused ip, m).
void render_partition_summary(const PartitionSummary& summary,
                              ReportFormat format, std::ostream& os);

/// Human-readable verdict / kind names used across formats.
std::string verdict_name(PathVerdict v);
std::string segment_kind_name(core::SegmentKind k);

}  // namespace tmg::driver
