#include "driver/serve.h"

#include <chrono>
#include <sstream>

#include "driver/report.h"
#include "driver/shard.h"
#include "opt/passes.h"
#include "support/json.h"
#include "support/trace.h"

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace tmg::driver {

namespace {

// v2: options gained "slice" (per-segment program slicing toggle).
constexpr int kServeVersion = 2;

/// Every output-affecting PipelineOptions field travels explicitly, plus
/// jobs/use_sessions as execution hints (the daemon honours them but the
/// cache key ignores them). `runs_terminate` is absent on purpose — the
/// pipeline derives it per function from its own depth-completeness proof.
void write_options(std::ostream& os, const PipelineOptions& o) {
  os << "{\"path_bound\":" << o.path_bound
     << ",\"function\":" << json_quote(o.function)
     << ",\"run_bmc\":" << (o.run_bmc ? "true" : "false")
     << ",\"jobs\":" << o.jobs
     << ",\"validate_witnesses\":" << (o.validate_witnesses ? "true" : "false")
     << ",\"max_paths_per_segment\":" << o.max_paths_per_segment
     << ",\"max_unroll_depth\":" << o.max_unroll_depth
     << ",\"pessimistic_widths\":" << (o.pessimistic_widths ? "true" : "false")
     << ",\"opt_passes\":[";
  for (std::size_t i = 0; i < o.opt_passes.size(); ++i) {
    if (i > 0) os << ",";
    os << json_quote(opt::pass_name(o.opt_passes[i]));
  }
  os << "],\"use_sessions\":" << (o.use_sessions ? "true" : "false")
     << ",\"slice\":" << (o.slice ? "true" : "false")
     << ",\"max_steps\":" << o.bmc.max_steps
     << ",\"conflict_budget\":" << o.bmc.conflict_budget
     << ",\"minimize_witness\":" << (o.bmc.minimize_witness ? "true" : "false")
     << ",\"stmt_cost\":" << o.cost.stmt_cost
     << ",\"decision_cost\":" << o.cost.decision_cost
     << ",\"default_call_cost\":" << o.cost.default_call_cost << "}";
}

bool read_bool(const JsonValue& v, const char* key, bool& out) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || f->kind() != JsonValue::Kind::Bool) return false;
  out = f->as_bool();
  return true;
}

bool read_int(const JsonValue& v, const char* key, std::int64_t& out) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->is_int()) return false;
  out = f->as_int();
  return true;
}

bool read_options(const JsonValue& v, PipelineOptions& o) {
  std::int64_t n = 0;
  if (!read_int(v, "path_bound", n) || n < 0) return false;
  o.path_bound = static_cast<std::uint64_t>(n);
  const JsonValue* fn = v.find("function");
  if (fn == nullptr || fn->kind() != JsonValue::Kind::String) return false;
  o.function = fn->as_string();
  if (!read_bool(v, "run_bmc", o.run_bmc)) return false;
  if (!read_int(v, "jobs", n) || n < 0) return false;
  o.jobs = static_cast<unsigned>(n);
  if (!read_bool(v, "validate_witnesses", o.validate_witnesses)) return false;
  if (!read_int(v, "max_paths_per_segment", n) || n < 0) return false;
  o.max_paths_per_segment = static_cast<std::size_t>(n);
  if (!read_int(v, "max_unroll_depth", n) || n < 0) return false;
  o.max_unroll_depth = static_cast<std::uint32_t>(n);
  if (!read_bool(v, "pessimistic_widths", o.pessimistic_widths)) return false;
  const JsonValue* passes = v.find("opt_passes");
  if (passes == nullptr || passes->kind() != JsonValue::Kind::Array)
    return false;
  o.opt_passes.clear();
  for (const JsonValue& p : passes->items()) {
    if (p.kind() != JsonValue::Kind::String) return false;
    const std::optional<opt::Pass> pass = opt::parse_pass(p.as_string());
    if (!pass) return false;
    o.opt_passes.push_back(*pass);
  }
  if (!read_bool(v, "use_sessions", o.use_sessions)) return false;
  if (!read_bool(v, "slice", o.slice)) return false;
  if (!read_int(v, "max_steps", n) || n < 0) return false;
  o.bmc.max_steps = static_cast<std::uint32_t>(n);
  if (!read_int(v, "conflict_budget", o.bmc.conflict_budget)) return false;
  if (!read_bool(v, "minimize_witness", o.bmc.minimize_witness)) return false;
  if (!read_int(v, "stmt_cost", o.cost.stmt_cost)) return false;
  if (!read_int(v, "decision_cost", o.cost.decision_cost)) return false;
  if (!read_int(v, "default_call_cost", o.cost.default_call_cost))
    return false;
  return true;
}

std::string error_response(const std::string& error, std::size_t index) {
  std::ostringstream os;
  os << "{\"ok\":false,\"error\":" << json_quote(error)
     << ",\"index\":" << index << "}";
  return os.str();
}

}  // namespace

std::string serialize_serve_request(const PipelineOptions& opts,
                                    const std::vector<std::string>& names,
                                    const std::vector<std::string>& sources) {
  std::ostringstream os;
  os << "{\"v\":" << kServeVersion << ",\"cmd\":\"analyze\",\"options\":";
  write_options(os, opts);
  os << ",\"files\":[";
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"name\":"
       << json_quote(i < names.size() ? names[i] : std::string())
       << ",\"source\":" << json_quote(sources[i]) << "}";
  }
  os << "]}";
  return os.str();
}

std::string serialize_shutdown_request() {
  std::ostringstream os;
  os << "{\"v\":" << kServeVersion << ",\"cmd\":\"shutdown\"}";
  return os.str();
}

std::string serialize_metrics_request() {
  std::ostringstream os;
  os << "{\"v\":" << kServeVersion << ",\"cmd\":\"metrics\"}";
  return os.str();
}

std::string handle_serve_request(const std::string& payload,
                                 ResultCache& cache, std::ostream& warn,
                                 bool& shutdown, double uptime_seconds) {
  shutdown = false;
  // Counted and timed here rather than in the socket loop so the wire
  // unit tests observe the same counters a live daemon reports.
  trace::TraceSpan span("serve.request", "serve");
  trace::MetricsRegistry& reg = trace::MetricsRegistry::instance();
  static trace::Counter& requests = reg.counter("serve.requests");
  requests.add();
  const auto t_start = std::chrono::steady_clock::now();
  struct LatencyTimer {
    std::chrono::steady_clock::time_point t0;
    ~LatencyTimer() {
      trace::MetricsRegistry::instance()
          .histogram("serve.request_us")
          .observe(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
    }
  } latency_timer{t_start};
  std::string parse_error;
  const std::optional<JsonValue> v = json_parse(payload, &parse_error);
  if (!v || v->kind() != JsonValue::Kind::Object)
    return error_response(
        "malformed request: " +
            (parse_error.empty() ? "not an object" : parse_error),
        0);
  const JsonValue* ver = v->find("v");
  if (ver == nullptr || !ver->is_int() || ver->as_int() != kServeVersion)
    return error_response("unsupported protocol version", 0);
  const JsonValue* cmd = v->find("cmd");
  if (cmd == nullptr || cmd->kind() != JsonValue::Kind::String)
    return error_response("missing cmd", 0);
  span.arg("cmd", cmd->as_string());
  if (cmd->as_string() == "shutdown") {
    shutdown = true;
    return "{\"ok\":true,\"files\":[]}";
  }
  if (cmd->as_string() == "metrics") {
    const CacheStats cs = cache.stats();
    std::ostringstream os;
    os << "{\"ok\":true,\"metrics\":{\"uptime_seconds\":"
       << json_double(uptime_seconds)
       << ",\"requests\":" << requests.get() << ",\"cache\":{\"hits\":"
       << cs.hits << ",\"misses\":" << cs.misses << ",\"writes\":"
       << cs.writes << "},\"registry\":" << reg.to_json() << "}}";
    return os.str();
  }
  if (cmd->as_string() != "analyze")
    return error_response("unknown cmd: " + cmd->as_string(), 0);

  const JsonValue* options = v->find("options");
  PipelineOptions popts;
  if (options == nullptr || !read_options(*options, popts))
    return error_response("malformed options", 0);
  const JsonValue* files = v->find("files");
  if (files == nullptr || files->kind() != JsonValue::Kind::Array ||
      files->items().empty())
    return error_response("missing files", 0);
  std::vector<std::string> names, sources;
  for (const JsonValue& f : files->items()) {
    if (f.kind() != JsonValue::Kind::Object)
      return error_response("malformed file entry", names.size());
    const JsonValue* name = f.find("name");
    const JsonValue* source = f.find("source");
    if (name == nullptr || name->kind() != JsonValue::Kind::String ||
        source == nullptr || source->kind() != JsonValue::Kind::String)
      return error_response("malformed file entry", names.size());
    names.push_back(name->as_string());
    sources.push_back(source->as_string());
  }

  const BatchResult batch = run_batch_cached(sources, names, popts, cache, warn);
  if (!batch.ok) return error_response(batch.error, batch.error_index);
  std::ostringstream os;
  os << "{\"ok\":true,\"files\":[";
  for (std::size_t i = 0; i < batch.files.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"index\":" << i
       << ",\"report\":" << serialize_pipeline_result(batch.files[i].result)
       << "}";
  }
  os << "]}";
  return os.str();
}

bool parse_serve_response(const std::string& payload, std::size_t num_files,
                          std::vector<PipelineResult>& reports,
                          std::string& error) {
  std::string parse_error;
  const std::optional<JsonValue> v = json_parse(payload, &parse_error);
  if (!v || v->kind() != JsonValue::Kind::Object) {
    error = "malformed response: " +
            (parse_error.empty() ? "not an object" : parse_error);
    return false;
  }
  const JsonValue* ok = v->find("ok");
  if (ok == nullptr || ok->kind() != JsonValue::Kind::Bool) {
    error = "malformed response: missing ok";
    return false;
  }
  if (!ok->as_bool()) {
    const JsonValue* msg = v->find("error");
    error = (msg != nullptr && msg->kind() == JsonValue::Kind::String)
                ? msg->as_string()
                : "unknown server error";
    return false;
  }
  const JsonValue* files = v->find("files");
  if (files == nullptr || files->kind() != JsonValue::Kind::Array ||
      files->items().size() != num_files) {
    error = "malformed response: bad files array";
    return false;
  }
  reports.assign(num_files, PipelineResult{});
  std::vector<bool> seen(num_files, false);
  for (const JsonValue& f : files->items()) {
    std::int64_t index = 0;
    if (f.kind() != JsonValue::Kind::Object || !read_int(f, "index", index) ||
        index < 0 || static_cast<std::size_t>(index) >= num_files ||
        seen[static_cast<std::size_t>(index)]) {
      error = "malformed response: bad file entry";
      return false;
    }
    const JsonValue* report = f.find("report");
    if (report == nullptr ||
        !parse_pipeline_result(*report,
                               reports[static_cast<std::size_t>(index)])) {
      error = "malformed response: bad report";
      return false;
    }
    seen[static_cast<std::size_t>(index)] = true;
  }
  return true;
}

#if defined(_WIN32)

int run_serve(const CliOptions&, std::ostream&, std::ostream& err) {
  err << "tmg: serve is not supported on this platform\n";
  return 2;
}

int run_client(const CliOptions&, const std::vector<std::string>&,
               std::ostream&, std::ostream& err) {
  err << "tmg: client is not supported on this platform\n";
  return 2;
}

#else

namespace {

/// MSG_NOSIGNAL keeps a peer that vanished mid-reply from killing the
/// daemon with SIGPIPE; the short-write loop handles partial sends.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_until_eof(int fd, std::string& out) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out.append(buf, static_cast<std::size_t>(n));
  }
}

bool fill_addr(sockaddr_un& addr, const std::string& path,
               std::ostream& err) {
  if (path.size() >= sizeof(addr.sun_path)) {
    err << "tmg: socket path too long: " << path << "\n";
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

int run_serve(const CliOptions& opts, std::ostream& out, std::ostream& err) {
  sockaddr_un addr{};
  if (!fill_addr(addr, opts.socket_path, err)) return 2;

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    err << "tmg: cannot create socket: " << std::strerror(errno) << "\n";
    return 2;
  }
  // A stale socket file from a killed daemon makes bind() fail with
  // EADDRINUSE even though nothing is listening; remove it first. A
  // *live* daemon also loses its file this way — serialising daemons per
  // socket path is the operator's job, as with any pid/socket file.
  ::unlink(opts.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    err << "tmg: cannot listen on " << opts.socket_path << ": "
        << std::strerror(errno) << "\n";
    ::close(fd);
    return 2;
  }

  ResultCache cache(opts.cache_dir,
                    opts.cache_dir.empty() ? CacheMode::Off : opts.cache_mode);
  out << "tmg: serving on " << opts.socket_path << "\n";
  out.flush();

  const auto t_start = std::chrono::steady_clock::now();
  bool shutdown = false;
  while (!shutdown) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      err << "tmg: accept failed: " << std::strerror(errno) << "\n";
      break;
    }
    std::string request;
    if (recv_until_eof(conn, request)) {
      const double uptime = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t_start)
                                .count();
      const std::string response =
          handle_serve_request(request, cache, err, shutdown, uptime);
      send_all(conn, response);
    }
    ::close(conn);
  }

  ::close(fd);
  ::unlink(opts.socket_path.c_str());
  if (cache.enabled()) {
    const CacheStats cs = cache.stats();
    out << "tmg: cache: " << cs.hits << " hits, " << cs.misses << " misses, "
        << cs.writes << " writes\n";
  }
  return 0;
}

int run_client(const CliOptions& opts,
               const std::vector<std::string>& sources, std::ostream& out,
               std::ostream& err) {
  sockaddr_un addr{};
  if (!fill_addr(addr, opts.socket_path, err)) return 2;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    err << "tmg: cannot create socket: " << std::strerror(errno) << "\n";
    return 2;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    err << "tmg: cannot connect to " << opts.socket_path << ": "
        << std::strerror(errno) << "\n";
    ::close(fd);
    return 2;
  }

  const std::string request =
      opts.client_shutdown ? serialize_shutdown_request()
      : opts.client_metrics
          ? serialize_metrics_request()
          : serialize_serve_request(opts.pipeline, opts.inputs, sources);
  std::string response;
  // Half-close after sending: the daemon reads until EOF, so this is the
  // end-of-request marker; the connection stays readable for the reply.
  const bool io_ok = send_all(fd, request) &&
                     ::shutdown(fd, SHUT_WR) == 0 &&
                     recv_until_eof(fd, response);
  ::close(fd);
  if (!io_ok) {
    err << "tmg: connection to " << opts.socket_path
        << " failed: " << std::strerror(errno) << "\n";
    return 2;
  }

  if (opts.client_metrics) {
    // Validate before printing: an in-band server error must exit 2 with
    // the message on stderr, like every other client failure.
    std::string parse_error;
    const std::optional<JsonValue> v = json_parse(response, &parse_error);
    const JsonValue* ok = v ? v->find("ok") : nullptr;
    if (ok == nullptr || ok->kind() != JsonValue::Kind::Bool) {
      err << "tmg: malformed metrics response\n";
      return 2;
    }
    if (!ok->as_bool()) {
      const JsonValue* msg = v->find("error");
      err << "tmg: "
          << (msg != nullptr && msg->kind() == JsonValue::Kind::String
                  ? msg->as_string()
                  : "unknown server error")
          << "\n";
      return 2;
    }
    out << response << "\n";
    return 0;
  }

  std::vector<PipelineResult> reports;
  std::string error;
  if (!parse_serve_response(response,
                            opts.client_shutdown ? 0 : sources.size(),
                            reports, error)) {
    err << "tmg: " << error << "\n";
    return 2;
  }
  if (opts.client_shutdown) {
    out << "tmg: server shut down\n";
    return 0;
  }

  // Render locally with the ordinary report paths over the parsed wire
  // reports — exactly how a shard parent renders — so client output is
  // byte-identical to running the same files through the CLI directly.
  if (reports.size() == 1 && opts.inputs.size() == 1) {
    render_report(reports[0], opts.pipeline, opts.format, opts.with_stages,
                  out);
    return 0;
  }
  std::vector<BatchEntry> entries;
  entries.reserve(reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i)
    entries.push_back(
        BatchEntry{i < opts.inputs.size() ? opts.inputs[i] : std::string(),
                   std::move(reports[i])});
  render_batch_report(entries, opts.pipeline, opts.format, opts.with_stages,
                      out);
  return 0;
}

#endif  // defined(_WIN32)

}  // namespace tmg::driver
