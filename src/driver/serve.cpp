#include "driver/serve.h"

#include <cerrno>
#include <chrono>
#include <limits>
#include <sstream>

#include "driver/report.h"
#include "driver/shard.h"
#include "engine/scheduler.h"
#include "opt/passes.h"
#include "support/json.h"
#include "support/trace.h"

#if !defined(_WIN32)
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#endif

namespace tmg::driver {

namespace {

// v2: options gained "slice" (per-segment program slicing toggle).
constexpr int kServeVersion = 2;

/// Every output-affecting PipelineOptions field travels explicitly, plus
/// jobs/use_sessions as execution hints (the daemon honours them but the
/// cache key ignores them). `runs_terminate` is absent on purpose — the
/// pipeline derives it per function from its own depth-completeness proof.
void write_options(std::ostream& os, const PipelineOptions& o) {
  os << "{\"path_bound\":" << o.path_bound
     << ",\"function\":" << json_quote(o.function)
     << ",\"run_bmc\":" << (o.run_bmc ? "true" : "false")
     << ",\"jobs\":" << o.jobs
     << ",\"validate_witnesses\":" << (o.validate_witnesses ? "true" : "false")
     << ",\"max_paths_per_segment\":" << o.max_paths_per_segment
     << ",\"max_unroll_depth\":" << o.max_unroll_depth
     << ",\"pessimistic_widths\":" << (o.pessimistic_widths ? "true" : "false")
     << ",\"opt_passes\":[";
  for (std::size_t i = 0; i < o.opt_passes.size(); ++i) {
    if (i > 0) os << ",";
    os << json_quote(opt::pass_name(o.opt_passes[i]));
  }
  os << "],\"use_sessions\":" << (o.use_sessions ? "true" : "false")
     << ",\"slice\":" << (o.slice ? "true" : "false")
     << ",\"max_steps\":" << o.bmc.max_steps
     << ",\"conflict_budget\":" << o.bmc.conflict_budget
     << ",\"minimize_witness\":" << (o.bmc.minimize_witness ? "true" : "false")
     << ",\"stmt_cost\":" << o.cost.stmt_cost
     << ",\"decision_cost\":" << o.cost.decision_cost
     << ",\"default_call_cost\":" << o.cost.default_call_cost << "}";
}

bool read_bool(const JsonValue& v, const char* key, bool& out) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || f->kind() != JsonValue::Kind::Bool) return false;
  out = f->as_bool();
  return true;
}

bool read_int(const JsonValue& v, const char* key, std::int64_t& out) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->is_int()) return false;
  out = f->as_int();
  return true;
}

/// Ranged unsigned read: the wire carries int64s, but several option
/// fields are narrower (`jobs` is unsigned, `max_unroll_depth` and
/// `max_steps` are uint32). A silent truncating cast would turn a request
/// with max_unroll_depth 2^32+5 into an analysis under depth 5 — reject
/// anything outside [0, max] as malformed instead.
bool read_ranged(const JsonValue& v, const char* key, std::uint64_t max,
                 std::uint64_t& out) {
  std::int64_t n = 0;
  if (!read_int(v, key, n)) return false;
  if (n < 0 || static_cast<std::uint64_t>(n) > max) return false;
  out = static_cast<std::uint64_t>(n);
  return true;
}

/// The CLI caps --jobs at 1024; the wire enforces the same ceiling so a
/// remote peer cannot request an absurd worker count.
constexpr std::uint64_t kMaxWireJobs = 1024;

bool read_options(const JsonValue& v, PipelineOptions& o) {
  std::int64_t n = 0;
  std::uint64_t u = 0;
  if (!read_int(v, "path_bound", n) || n < 0) return false;
  o.path_bound = static_cast<std::uint64_t>(n);
  const JsonValue* fn = v.find("function");
  if (fn == nullptr || fn->kind() != JsonValue::Kind::String) return false;
  o.function = fn->as_string();
  if (!read_bool(v, "run_bmc", o.run_bmc)) return false;
  if (!read_ranged(v, "jobs", kMaxWireJobs, u)) return false;
  o.jobs = static_cast<unsigned>(u);
  if (!read_bool(v, "validate_witnesses", o.validate_witnesses)) return false;
  if (!read_int(v, "max_paths_per_segment", n) || n < 0) return false;
  o.max_paths_per_segment = static_cast<std::size_t>(n);
  if (!read_ranged(v, "max_unroll_depth",
                   std::numeric_limits<std::uint32_t>::max(), u))
    return false;
  o.max_unroll_depth = static_cast<std::uint32_t>(u);
  if (!read_bool(v, "pessimistic_widths", o.pessimistic_widths)) return false;
  const JsonValue* passes = v.find("opt_passes");
  if (passes == nullptr || passes->kind() != JsonValue::Kind::Array)
    return false;
  o.opt_passes.clear();
  for (const JsonValue& p : passes->items()) {
    if (p.kind() != JsonValue::Kind::String) return false;
    const std::optional<opt::Pass> pass = opt::parse_pass(p.as_string());
    if (!pass) return false;
    o.opt_passes.push_back(*pass);
  }
  if (!read_bool(v, "use_sessions", o.use_sessions)) return false;
  if (!read_bool(v, "slice", o.slice)) return false;
  if (!read_ranged(v, "max_steps",
                   std::numeric_limits<std::uint32_t>::max(), u))
    return false;
  o.bmc.max_steps = static_cast<std::uint32_t>(u);
  if (!read_int(v, "conflict_budget", o.bmc.conflict_budget)) return false;
  if (!read_bool(v, "minimize_witness", o.bmc.minimize_witness)) return false;
  if (!read_int(v, "stmt_cost", o.cost.stmt_cost)) return false;
  if (!read_int(v, "decision_cost", o.cost.decision_cost)) return false;
  if (!read_int(v, "default_call_cost", o.cost.default_call_cost))
    return false;
  return true;
}

std::string error_response(const std::string& error, std::size_t index) {
  std::ostringstream os;
  os << "{\"ok\":false,\"error\":" << json_quote(error)
     << ",\"index\":" << index << "}";
  return os.str();
}

}  // namespace

std::string serialize_serve_request(const PipelineOptions& opts,
                                    const std::vector<std::string>& names,
                                    const std::vector<std::string>& sources) {
  std::ostringstream os;
  os << "{\"v\":" << kServeVersion << ",\"cmd\":\"analyze\",\"options\":";
  write_options(os, opts);
  os << ",\"files\":[";
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"name\":"
       << json_quote(i < names.size() ? names[i] : std::string())
       << ",\"source\":" << json_quote(sources[i]) << "}";
  }
  os << "]}";
  return os.str();
}

std::string serialize_shutdown_request() {
  std::ostringstream os;
  os << "{\"v\":" << kServeVersion << ",\"cmd\":\"shutdown\"}";
  return os.str();
}

std::string serialize_metrics_request() {
  std::ostringstream os;
  os << "{\"v\":" << kServeVersion << ",\"cmd\":\"metrics\"}";
  return os.str();
}

std::string handle_serve_request(const std::string& payload,
                                 ResultCache& cache, std::ostream& warn,
                                 bool& shutdown, double uptime_seconds) {
  shutdown = false;
  // Counted and timed here rather than in the socket loop so the wire
  // unit tests observe the same counters a live daemon reports.
  trace::TraceSpan span("serve.request", "serve");
  trace::MetricsRegistry& reg = trace::MetricsRegistry::instance();
  static trace::Counter& requests = reg.counter("serve.requests");
  requests.add();
  const auto t_start = std::chrono::steady_clock::now();
  struct LatencyTimer {
    std::chrono::steady_clock::time_point t0;
    ~LatencyTimer() {
      trace::MetricsRegistry::instance()
          .histogram("serve.request_us")
          .observe(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
    }
  } latency_timer{t_start};
  std::string parse_error;
  const std::optional<JsonValue> v = json_parse(payload, &parse_error);
  if (!v || v->kind() != JsonValue::Kind::Object)
    return error_response(
        "malformed request: " +
            (parse_error.empty() ? "not an object" : parse_error),
        0);
  const JsonValue* ver = v->find("v");
  if (ver == nullptr || !ver->is_int() || ver->as_int() != kServeVersion)
    return error_response("unsupported protocol version", 0);
  const JsonValue* cmd = v->find("cmd");
  if (cmd == nullptr || cmd->kind() != JsonValue::Kind::String)
    return error_response("missing cmd", 0);
  span.arg("cmd", cmd->as_string());
  if (cmd->as_string() == "shutdown") {
    shutdown = true;
    return "{\"ok\":true,\"files\":[]}";
  }
  if (cmd->as_string() == "metrics") {
    const CacheStats cs = cache.stats();
    std::ostringstream os;
    os << "{\"ok\":true,\"metrics\":{\"uptime_seconds\":"
       << json_double(uptime_seconds)
       << ",\"requests\":" << requests.get() << ",\"cache\":{\"hits\":"
       << cs.hits << ",\"misses\":" << cs.misses << ",\"writes\":"
       << cs.writes << ",\"fast_hits\":" << cs.fast_hits
       << ",\"evictions\":" << cs.evictions
       << ",\"evicted_bytes\":" << cs.evicted_bytes
       << "},\"registry\":" << reg.to_json() << "}}";
    return os.str();
  }
  if (cmd->as_string() != "analyze")
    return error_response("unknown cmd: " + cmd->as_string(), 0);

  const JsonValue* options = v->find("options");
  PipelineOptions popts;
  if (options == nullptr || !read_options(*options, popts))
    return error_response("malformed options", 0);
  const JsonValue* files = v->find("files");
  if (files == nullptr || files->kind() != JsonValue::Kind::Array ||
      files->items().empty())
    return error_response("missing files", 0);
  std::vector<std::string> names, sources;
  for (const JsonValue& f : files->items()) {
    if (f.kind() != JsonValue::Kind::Object)
      return error_response("malformed file entry", names.size());
    const JsonValue* name = f.find("name");
    const JsonValue* source = f.find("source");
    if (name == nullptr || name->kind() != JsonValue::Kind::String ||
        source == nullptr || source->kind() != JsonValue::Kind::String)
      return error_response("malformed file entry", names.size());
    names.push_back(name->as_string());
    sources.push_back(source->as_string());
  }

  const BatchResult batch = run_batch_cached(sources, names, popts, cache, warn);
  if (!batch.ok) return error_response(batch.error, batch.error_index);
  std::ostringstream os;
  os << "{\"ok\":true,\"files\":[";
  for (std::size_t i = 0; i < batch.files.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"index\":" << i
       << ",\"report\":" << serialize_pipeline_result(batch.files[i].result)
       << "}";
  }
  os << "]}";
  return os.str();
}

bool parse_serve_response(const std::string& payload, std::size_t num_files,
                          std::vector<PipelineResult>& reports,
                          std::string& error) {
  std::string parse_error;
  const std::optional<JsonValue> v = json_parse(payload, &parse_error);
  if (!v || v->kind() != JsonValue::Kind::Object) {
    error = "malformed response: " +
            (parse_error.empty() ? "not an object" : parse_error);
    return false;
  }
  const JsonValue* ok = v->find("ok");
  if (ok == nullptr || ok->kind() != JsonValue::Kind::Bool) {
    error = "malformed response: missing ok";
    return false;
  }
  if (!ok->as_bool()) {
    const JsonValue* msg = v->find("error");
    error = (msg != nullptr && msg->kind() == JsonValue::Kind::String)
                ? msg->as_string()
                : "unknown server error";
    return false;
  }
  const JsonValue* files = v->find("files");
  if (files == nullptr || files->kind() != JsonValue::Kind::Array ||
      files->items().size() != num_files) {
    error = "malformed response: bad files array";
    return false;
  }
  reports.assign(num_files, PipelineResult{});
  std::vector<bool> seen(num_files, false);
  for (const JsonValue& f : files->items()) {
    std::int64_t index = 0;
    if (f.kind() != JsonValue::Kind::Object || !read_int(f, "index", index) ||
        index < 0 || static_cast<std::size_t>(index) >= num_files ||
        seen[static_cast<std::size_t>(index)]) {
      error = "malformed response: bad file entry";
      return false;
    }
    const JsonValue* report = f.find("report");
    if (report == nullptr ||
        !parse_pipeline_result(*report,
                               reports[static_cast<std::size_t>(index)])) {
      error = "malformed response: bad report";
      return false;
    }
    seen[static_cast<std::size_t>(index)] = true;
  }
  return true;
}

bool accept_errno_is_transient(int err) {
  // EINTR: signal. ECONNABORTED: the peer vanished between the kernel's
  // completed handshake and our accept — its problem, not ours. EAGAIN /
  // EWOULDBLOCK: spurious poll wake. Everything else (EMFILE, ENFILE,
  // ENOMEM, EBADF, EINVAL) means the daemon itself is broken: retrying
  // would spin, and exiting 0 would hide the death from supervisors.
  return err == EINTR || err == ECONNABORTED || err == EAGAIN ||
         err == EWOULDBLOCK;
}

bool split_host_port(const std::string& addr, std::string& host,
                     std::string& port) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size())
    return false;
  host = addr.substr(0, colon);
  port = addr.substr(colon + 1);
  return true;
}

#if defined(_WIN32)

int run_serve(const CliOptions&, std::ostream&, std::ostream& err,
              const ServeHooks&) {
  err << "tmg: serve is not supported on this platform\n";
  return 2;
}

int run_client(const CliOptions&, const std::vector<std::string>&,
               std::ostream&, std::ostream& err) {
  err << "tmg: client is not supported on this platform\n";
  return 2;
}

#else

namespace {

/// MSG_NOSIGNAL keeps a peer that vanished mid-reply from killing the
/// daemon with SIGPIPE; the short-write loop handles partial sends.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_until_eof(int fd, std::string& out) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out.append(buf, static_cast<std::size_t>(n));
  }
}

/// recv_until_eof with a byte cap: past `cap` the partial request is
/// discarded, `over_cap` is set, and reading stops so the daemon never
/// buffers an unbounded remote payload. The caller still owes the peer an
/// in-band error plus a drain (see handle_conn) — the peer may be blocked
/// mid-send precisely because we stopped reading.
bool recv_request_capped(int fd, std::size_t cap, std::string& out,
                         bool& over_cap) {
  over_cap = false;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out.append(buf, static_cast<std::size_t>(n));
    if (out.size() > cap) {
      out.clear();
      out.shrink_to_fit();
      over_cap = true;
      return true;
    }
  }
}

/// Reads and discards until EOF or error.
void drain_to_eof(int fd) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
  }
}

bool fill_addr(sockaddr_un& addr, const std::string& path,
               std::ostream& err) {
  if (path.size() >= sizeof(addr.sun_path)) {
    err << "tmg: socket path too long: " << path << "\n";
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

int listen_unix(const std::string& path, std::ostream& err) {
  sockaddr_un addr{};
  if (!fill_addr(addr, path, err)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    err << "tmg: cannot create socket: " << std::strerror(errno) << "\n";
    return -1;
  }
  // A stale socket file from a killed daemon makes bind() fail with
  // EADDRINUSE even though nothing is listening; remove it first. A
  // *live* daemon also loses its file this way — serialising daemons per
  // socket path is the operator's job, as with any pid/socket file.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    err << "tmg: cannot listen on " << path << ": " << std::strerror(errno)
        << "\n";
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Binds and listens on HOST:PORT. `endpoint` receives the numeric
/// host:port actually bound (getsockname), so `--listen=127.0.0.1:0`
/// reports the kernel-picked ephemeral port.
int listen_tcp(const std::string& addr_str, std::string& endpoint,
               std::ostream& err) {
  std::string host, port;
  if (!split_host_port(addr_str, host, port)) {
    err << "tmg: malformed --listen address (want HOST:PORT): " << addr_str
        << "\n";
    return -1;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    err << "tmg: cannot resolve " << addr_str << ": " << ::gai_strerror(gai)
        << "\n";
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0)
      break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    err << "tmg: cannot listen on " << addr_str << ": "
        << std::strerror(errno) << "\n";
    return -1;
  }
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  char hbuf[NI_MAXHOST];
  char pbuf[NI_MAXSERV];
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) == 0 &&
      ::getnameinfo(reinterpret_cast<sockaddr*>(&ss), len, hbuf, sizeof(hbuf),
                    pbuf, sizeof(pbuf),
                    NI_NUMERICHOST | NI_NUMERICSERV) == 0)
    endpoint = std::string(hbuf) + ":" + pbuf;
  else
    endpoint = addr_str;
  return fd;
}

int connect_tcp(const std::string& addr_str, std::ostream& err) {
  std::string host, port;
  if (!split_host_port(addr_str, host, port)) {
    err << "tmg: malformed --connect address (want HOST:PORT): " << addr_str
        << "\n";
    return -1;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    err << "tmg: cannot resolve " << addr_str << ": " << ::gai_strerror(gai)
        << "\n";
    return -1;
  }
  int fd = -1;
  int saved_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0)
    err << "tmg: cannot connect to " << addr_str << ": "
        << std::strerror(saved_errno) << "\n";
  return fd;
}

}  // namespace

int run_serve(const CliOptions& opts, std::ostream& out, std::ostream& err,
              const ServeHooks& hooks) {
  struct Listener {
    int fd;
    std::string transport;
    std::string endpoint;
  };
  std::vector<Listener> listeners;
  const auto close_listeners = [&] {
    for (const Listener& l : listeners) ::close(l.fd);
    if (!opts.socket_path.empty()) ::unlink(opts.socket_path.c_str());
  };
  if (!opts.socket_path.empty()) {
    const int fd = listen_unix(opts.socket_path, err);
    if (fd < 0) return 2;
    listeners.push_back(Listener{fd, "unix", opts.socket_path});
  }
  if (!opts.listen_addr.empty()) {
    std::string endpoint;
    const int fd = listen_tcp(opts.listen_addr, endpoint, err);
    if (fd < 0) {
      close_listeners();
      return 2;
    }
    listeners.push_back(Listener{fd, "tcp", endpoint});
  }
  if (listeners.empty()) {  // parse_cli enforces this; belt and braces
    err << "tmg: serve needs --socket or --listen\n";
    return 2;
  }

  ResultCache cache(opts.cache_dir,
                    opts.cache_dir.empty() ? CacheMode::Off : opts.cache_mode,
                    opts.cache_max_bytes);
  for (const Listener& l : listeners) {
    out << "tmg: serving on " << l.endpoint << "\n";
    if (hooks.on_listening) hooks.on_listening(l.transport, l.endpoint);
  }
  out.flush();

  // Self-pipe: the worker that handles a shutdown request (or a pool
  // failure) writes one byte here to wake the listener out of poll().
  int wake[2] = {-1, -1};
  if (::pipe(wake) != 0) {
    err << "tmg: cannot create wake pipe: " << std::strerror(errno) << "\n";
    close_listeners();
    return 2;
  }
  std::atomic<bool> stop{false};
  const auto request_stop = [&] {
    stop.store(true, std::memory_order_release);
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake[1], &b, 1);
  };

  // The daemon's err stream is shared by every worker; each request
  // buffers its warnings locally and flushes them in one locked write so
  // concurrent requests never interleave mid-line.
  std::mutex err_mutex;
  const auto t_start = std::chrono::steady_clock::now();

  // Connection worker pool: the frontier held open so the listener can
  // keep pushing accepted connections into an already-running pool. Each
  // job owns its connection end to end (read, handle, reply, close) —
  // which worker runs it can never change a response byte.
  engine::Frontier pool(opts.serve_workers);
  pool.hold_open();
  std::thread pool_thread([&] {
    try {
      pool.run();
    } catch (...) {
      // A request job must not throw (handle_serve_request returns
      // in-band errors), but a throw anywhere would otherwise strand the
      // listener in poll() forever.
      request_stop();
    }
  });

  const auto handle_conn = [&](int conn) {
    std::string request;
    bool over_cap = false;
    if (recv_request_capped(conn, opts.max_request_bytes, request,
                            over_cap)) {
      bool shutdown = false;
      std::string response;
      if (over_cap) {
        response = error_response("request too large", 0);
      } else {
        const double uptime = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t_start)
                                  .count();
        std::ostringstream warn;
        response = handle_serve_request(request, cache, warn, shutdown,
                                        uptime);
        const std::string w = warn.str();
        if (!w.empty()) {
          const std::lock_guard<std::mutex> lock(err_mutex);
          err << w;
        }
      }
      send_all(conn, response);
      if (over_cap) {
        // The peer may be blocked in send() because we stopped reading.
        // Half-close our write side (their recv of the error ends) and
        // swallow the rest of their request so their send unblocks.
        ::shutdown(conn, SHUT_WR);
        drain_to_eof(conn);
      }
      if (shutdown) request_stop();
    }
    ::close(conn);
  };

  int rc = 0;
  std::vector<pollfd> pfds;
  pfds.push_back(pollfd{wake[0], POLLIN, 0});
  for (const Listener& l : listeners)
    pfds.push_back(pollfd{l.fd, POLLIN, 0});
  while (!stop.load(std::memory_order_acquire)) {
    const int n = ::poll(pfds.data(), pfds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      {
        const std::lock_guard<std::mutex> lock(err_mutex);
        err << "tmg: poll failed: " << std::strerror(errno) << "\n";
      }
      rc = 2;
      break;
    }
    if (pfds[0].revents != 0) break;  // stop requested
    bool fatal = false;
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const int conn = ::accept(pfds[i].fd, nullptr, nullptr);
      if (conn < 0) {
        const int accept_errno = errno;
        if (accept_errno_is_transient(accept_errno)) continue;
        {
          const std::lock_guard<std::mutex> lock(err_mutex);
          err << "tmg: accept failed: " << std::strerror(accept_errno)
              << "\n";
        }
        fatal = true;
        break;
      }
      pool.push(engine::AnalysisJob{
          [&handle_conn, conn](unsigned) { handle_conn(conn); }, -1});
    }
    if (fatal) {
      rc = 2;
      break;
    }
  }

  // Drain: queued and in-flight connections still get their responses,
  // then the pool parks out and run() returns.
  pool.close();
  pool_thread.join();
  ::close(wake[0]);
  ::close(wake[1]);
  close_listeners();
  if (cache.enabled()) {
    const CacheStats cs = cache.stats();
    out << "tmg: cache: " << cs.hits << " hits, " << cs.misses << " misses, "
        << cs.writes << " writes, " << cs.fast_hits << " fast hits, "
        << cs.evictions << " evictions\n";
  }
  return rc;
}

int run_client(const CliOptions& opts,
               const std::vector<std::string>& sources, std::ostream& out,
               std::ostream& err) {
  const bool tcp = !opts.connect_addr.empty();
  const std::string endpoint = tcp ? opts.connect_addr : opts.socket_path;
  int fd = -1;
  if (tcp) {
    fd = connect_tcp(opts.connect_addr, err);
    if (fd < 0) return 2;
  } else {
    sockaddr_un addr{};
    if (!fill_addr(addr, opts.socket_path, err)) return 2;
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      err << "tmg: cannot create socket: " << std::strerror(errno) << "\n";
      return 2;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      err << "tmg: cannot connect to " << opts.socket_path << ": "
          << std::strerror(errno) << "\n";
      ::close(fd);
      return 2;
    }
  }

  const std::string request =
      opts.client_shutdown ? serialize_shutdown_request()
      : opts.client_metrics
          ? serialize_metrics_request()
          : serialize_serve_request(opts.pipeline, opts.inputs, sources);
  std::string response;
  // Half-close after sending: the daemon reads until EOF, so this is the
  // end-of-request marker; the connection stays readable for the reply.
  // errno is captured at the failing call — close() below may overwrite
  // it, and the error we print must be the I/O failure's, not close()'s.
  int io_errno = 0;
  bool io_ok = false;
  if (!send_all(fd, request))
    io_errno = errno;
  else if (::shutdown(fd, SHUT_WR) != 0)
    io_errno = errno;
  else if (!recv_until_eof(fd, response))
    io_errno = errno;
  else
    io_ok = true;
  ::close(fd);
  if (!io_ok) {
    err << "tmg: connection to " << endpoint
        << " failed: " << std::strerror(io_errno) << "\n";
    return 2;
  }

  if (opts.client_metrics) {
    // Validate before printing: an in-band server error must exit 2 with
    // the message on stderr, like every other client failure.
    std::string parse_error;
    const std::optional<JsonValue> v = json_parse(response, &parse_error);
    const JsonValue* ok = v ? v->find("ok") : nullptr;
    if (ok == nullptr || ok->kind() != JsonValue::Kind::Bool) {
      err << "tmg: malformed metrics response\n";
      return 2;
    }
    if (!ok->as_bool()) {
      const JsonValue* msg = v->find("error");
      err << "tmg: "
          << (msg != nullptr && msg->kind() == JsonValue::Kind::String
                  ? msg->as_string()
                  : "unknown server error")
          << "\n";
      return 2;
    }
    out << response << "\n";
    return 0;
  }

  std::vector<PipelineResult> reports;
  std::string error;
  if (!parse_serve_response(response,
                            opts.client_shutdown ? 0 : sources.size(),
                            reports, error)) {
    err << "tmg: " << error << "\n";
    return 2;
  }
  if (opts.client_shutdown) {
    out << "tmg: server shut down\n";
    return 0;
  }

  // Render locally with the ordinary report paths over the parsed wire
  // reports — exactly how a shard parent renders — so client output is
  // byte-identical to running the same files through the CLI directly.
  if (reports.size() == 1 && opts.inputs.size() == 1) {
    render_report(reports[0], opts.pipeline, opts.format, opts.with_stages,
                  out);
    return 0;
  }
  std::vector<BatchEntry> entries;
  entries.reserve(reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i)
    entries.push_back(
        BatchEntry{i < opts.inputs.size() ? opts.inputs[i] : std::string(),
                   std::move(reports[i])});
  render_batch_report(entries, opts.pipeline, opts.format, opts.with_stages,
                      out);
  return 0;
}

#endif  // defined(_WIN32)

}  // namespace tmg::driver
