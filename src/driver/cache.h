// Content-addressed persistent result cache for analysis reports.
//
// A cache entry maps (source bytes, output-affecting configuration) to one
// analysed file's PipelineResult, stored as JSON under `--cache-dir` using
// the shard wire schema (driver/shard.h) — the same object a shard child
// streams to its parent, so a cached report renders byte-identically to a
// fresh in-process run in every format. The key deliberately EXCLUDES
// options that cannot change the report (--jobs, --sessions): a report
// computed at any worker count serves every other one.
//
// Entries are written via a temp file + rename, so concurrent writers and
// killed runs never leave a partially written entry under the final name.
// Corrupt or foreign entries are ignored with a warning and recomputed —
// the cache can always be deleted wholesale.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "driver/pipeline.h"
#include "engine/bench.h"

namespace tmg::driver {

enum class CacheMode : std::uint8_t {
  Off,        // never read, never write
  ReadOnly,   // serve hits, never write (shared / CI-artifact caches)
  ReadWrite,  // serve hits, store misses (the --cache-dir default)
};

/// Snapshot of one cache's counters. Mutation happens inside ResultCache
/// under its stats mutex (serve handles requests while earlier batch
/// workers may still be counting), so stats() hands out a copy, never a
/// reference into live state.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
};

/// Canonical one-line description of every option that can change a
/// rendered report. Any new output-affecting option MUST be added here —
/// a missing field serves stale reports across configurations.
std::string cache_config_fingerprint(const PipelineOptions& opts);

/// FNV-1a-64 of arbitrary bytes as 16 hex digits — the hash cache entry
/// names are built from. The corpus checkpoint reuses it to detect rows
/// whose source file changed since they were recorded.
std::string content_fingerprint(std::string_view data);

class ResultCache {
 public:
  /// An empty `dir` or CacheMode::Off disables the cache (every call
  /// becomes a no-op); callers can hold a ResultCache unconditionally.
  ResultCache() = default;
  ResultCache(std::string dir, CacheMode mode);

  [[nodiscard]] bool enabled() const {
    return mode_ != CacheMode::Off && !dir_.empty();
  }
  [[nodiscard]] CacheMode mode() const { return mode_; }
  [[nodiscard]] CacheStats stats() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }

  /// Entry file for (source, config): FNV-1a-64 of the source bytes and
  /// of the config fingerprint, both hex, joined — content-addressed, so
  /// any change to either lands on a different file.
  [[nodiscard]] std::string entry_path(const std::string& source,
                                       const PipelineOptions& opts) const;

  /// Returns the cached report, or nullopt (counting a miss) when absent,
  /// unreadable or corrupt. Corrupt entries warn on `warn` and are left
  /// in place — a ReadWrite store will overwrite them.
  std::optional<PipelineResult> lookup(const std::string& source,
                                       const PipelineOptions& opts,
                                       std::ostream& warn);

  /// Persists one computed report (ReadWrite mode only; no-op otherwise).
  void store(const std::string& source, const PipelineOptions& opts,
             const PipelineResult& result, std::ostream& warn);

 private:
  void count_hit();
  void count_miss();
  void count_write();

  std::string dir_;
  CacheMode mode_ = CacheMode::Off;
  mutable std::mutex stats_mutex_;
  CacheStats stats_;
};

/// run_batch through the cache: files whose entry hits skip analysis
/// entirely; the misses run on one shared frontier and are stored. The
/// assembled result is byte-identical to an uncached run (cache entries
/// preserve even the wall-clock fields of the original computation, like
/// a shard payload does).
BatchResult run_batch_cached(const std::vector<std::string>& sources,
                             const std::vector<std::string>& files,
                             const PipelineOptions& opts, ResultCache& cache,
                             std::ostream& warn);

/// table2_compare with both halves (baseline and optimised) routed
/// through the cache — each half is an ordinary batch under its own
/// config fingerprint.
Table2Report table2_compare_cached(const std::vector<std::string>& sources,
                                   const std::vector<std::string>& files,
                                   const PipelineOptions& opts,
                                   ResultCache& cache, std::ostream& warn);

/// Annotates a bench report with probe-only cache counts: how many of the
/// per-file plain/optimised entries already exist. Bench never *serves*
/// results from the cache (it measures real computation), so this only
/// fills the report's cache fields. No-op when the cache is disabled.
void bench_probe_cache(const std::vector<std::string>& sources,
                       const PipelineOptions& opts, ResultCache& cache,
                       engine::BenchReport& report, std::ostream& warn);

}  // namespace tmg::driver
