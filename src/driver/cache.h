// Content-addressed persistent result cache for analysis reports.
//
// A cache entry maps (source bytes, output-affecting configuration) to one
// analysed file's PipelineResult, stored as JSON under `--cache-dir` using
// the shard wire schema (driver/shard.h) — the same object a shard child
// streams to its parent, so a cached report renders byte-identically to a
// fresh in-process run in every format. The key deliberately EXCLUDES
// options that cannot change the report (--jobs, --sessions): a report
// computed at any worker count serves every other one.
//
// Entries are written via a temp file + rename, so concurrent writers and
// killed runs never leave a partially written entry under the final name.
// Corrupt or foreign entries are ignored with a warning and recomputed —
// the cache can always be deleted wholesale.
//
// Lifecycle (`--cache-max-mb`): a nonzero byte cap turns on LRU-by-mtime
// eviction — every successful store sweeps the directory and removes the
// oldest-mtime entries until the total size of `*.json` entries fits the
// cap. Hits touch their entry's mtime, so recency of *use* (not of
// creation) decides survival. Removal is safe against concurrent readers:
// an already-open reader keeps its bytes (POSIX), a later reader simply
// misses and recomputes + heals.
//
// Fast path: lookup keeps a small in-process memo of parsed entries keyed
// by entry path and validated by the entry file's (mtime, size) — a
// resubmission of an unchanged file (editor-integration polling against
// `tmg serve`) is answered with one stat() instead of a full read +
// JSON parse + report validation. Served reports are byte-identical to
// the slow path; `fast_hits` counts how often the stat short-circuit won.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "driver/pipeline.h"
#include "engine/bench.h"

namespace tmg::driver {

enum class CacheMode : std::uint8_t {
  Off,        // never read, never write
  ReadOnly,   // serve hits, never write (shared / CI-artifact caches)
  ReadWrite,  // serve hits, store misses (the --cache-dir default)
};

/// Snapshot of one cache's counters. Mutation happens inside ResultCache
/// under its stats mutex (serve handles requests while earlier batch
/// workers may still be counting), so stats() hands out a copy, never a
/// reference into live state.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;
  /// Subset of `hits` answered from the in-memory mtime+size fast path
  /// (no entry re-read, no JSON re-parse).
  std::uint64_t fast_hits = 0;
  /// Entries removed by the LRU-by-mtime sweep, and their total bytes.
  std::uint64_t evictions = 0;
  std::uint64_t evicted_bytes = 0;
};

/// Canonical one-line description of every option that can change a
/// rendered report. Any new output-affecting option MUST be added here —
/// a missing field serves stale reports across configurations.
std::string cache_config_fingerprint(const PipelineOptions& opts);

/// FNV-1a-64 of arbitrary bytes as 16 hex digits — the hash cache entry
/// names are built from. The corpus checkpoint reuses it to detect rows
/// whose source file changed since they were recorded.
std::string content_fingerprint(std::string_view data);

class ResultCache {
 public:
  /// An empty `dir` or CacheMode::Off disables the cache (every call
  /// becomes a no-op); callers can hold a ResultCache unconditionally.
  /// `max_bytes` > 0 caps the total size of `*.json` entries in `dir`:
  /// every successful store evicts oldest-mtime entries until the
  /// directory fits (0 = unbounded, the default).
  ResultCache() = default;
  ResultCache(std::string dir, CacheMode mode, std::uint64_t max_bytes = 0);

  [[nodiscard]] bool enabled() const {
    return mode_ != CacheMode::Off && !dir_.empty();
  }
  [[nodiscard]] CacheMode mode() const { return mode_; }
  [[nodiscard]] CacheStats stats() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }

  /// Entry file for (source, config): FNV-1a-64 of the source bytes and
  /// of the config fingerprint, both hex, joined — content-addressed, so
  /// any change to either lands on a different file.
  [[nodiscard]] std::string entry_path(const std::string& source,
                                       const PipelineOptions& opts) const;

  /// Returns the cached report, or nullopt (counting a miss) when absent,
  /// unreadable or corrupt. Corrupt entries warn on `warn` and are left
  /// in place — a ReadWrite store will overwrite them.
  std::optional<PipelineResult> lookup(const std::string& source,
                                       const PipelineOptions& opts,
                                       std::ostream& warn);

  /// Persists one computed report (ReadWrite mode only; no-op otherwise).
  /// A write that fails anywhere — open, stream, or the final flush at
  /// close — warns, removes the temp file, publishes nothing and bumps no
  /// counter. With a byte cap set, a successful publish sweeps the
  /// directory (LRU by mtime) back under the cap.
  void store(const std::string& source, const PipelineOptions& opts,
             const PipelineResult& result, std::ostream& warn);

 private:
  /// One memoised entry for the lookup fast path: the parsed report plus
  /// the entry file's identity at parse time.
  struct MemoEntry {
    std::filesystem::file_time_type mtime;
    std::uintmax_t size = 0;
    PipelineResult result;
  };

  void count_hit(bool fast);
  void count_miss();
  void count_write();
  /// LRU-by-mtime sweep: removes oldest entries until the `*.json` total
  /// fits max_bytes_. Called after every successful store.
  void sweep(std::ostream& warn);
  /// Best-effort mtime refresh of a hit entry (feeds the LRU order) and
  /// memo (re)insertion keyed on the refreshed identity.
  void touch_and_memoise(const std::string& path, const PipelineResult& result);

  std::string dir_;
  CacheMode mode_ = CacheMode::Off;
  std::uint64_t max_bytes_ = 0;
  mutable std::mutex stats_mutex_;
  CacheStats stats_;
  std::mutex memo_mutex_;
  std::unordered_map<std::string, MemoEntry> memo_;
  std::mutex sweep_mutex_;
};

/// run_batch through the cache: files whose entry hits skip analysis
/// entirely; the misses run on one shared frontier and are stored. The
/// assembled result is byte-identical to an uncached run (cache entries
/// preserve even the wall-clock fields of the original computation, like
/// a shard payload does).
BatchResult run_batch_cached(const std::vector<std::string>& sources,
                             const std::vector<std::string>& files,
                             const PipelineOptions& opts, ResultCache& cache,
                             std::ostream& warn);

/// table2_compare with both halves (baseline and optimised) routed
/// through the cache — each half is an ordinary batch under its own
/// config fingerprint.
Table2Report table2_compare_cached(const std::vector<std::string>& sources,
                                   const std::vector<std::string>& files,
                                   const PipelineOptions& opts,
                                   ResultCache& cache, std::ostream& warn);

/// Annotates a bench report with probe-only cache counts: how many of the
/// per-file plain/optimised entries already exist. Bench never *serves*
/// results from the cache (it measures real computation), so this only
/// fills the report's cache fields. No-op when the cache is disabled.
void bench_probe_cache(const std::vector<std::string>& sources,
                       const PipelineOptions& opts, ResultCache& cache,
                       engine::BenchReport& report, std::ostream& warn);

}  // namespace tmg::driver
