#include "driver/shard.h"

#include <algorithm>
#include <sstream>

#include "engine/scheduler.h"
#include "opt/passes.h"
#include "support/json.h"
#include "support/trace.h"

namespace tmg::driver {

namespace {

// ----------------------------------------------------------- serialisation
//
// The wire schema carries exactly what the renderers read — per-path
// details (witness vectors, block sequences) stay in the child, only the
// per-segment tallies travel. Integers are JSON integers (exact), wall
// clocks use json_double (%.17g, parse-exact), so the parent's rendering
// is byte-identical to an in-process run.

void write_path_count(std::ostringstream& os, const PathCount& pc) {
  if (!pc.saturated())
    os << static_cast<std::int64_t>(pc.exact());
  else
    os << "{\"log2\":" << json_double(pc.log2()) << "}";
}

bool read_path_count(const JsonValue& v, PathCount& out) {
  if (v.is_int()) {
    out = PathCount(static_cast<std::uint64_t>(v.as_int()));
    return true;
  }
  const JsonValue* l = v.find("log2");
  if (l == nullptr) return false;
  out = PathCount::from_log2(l->as_double());
  return true;
}

void write_stages(std::ostringstream& os,
                  const std::vector<StageStats>& stages) {
  os << "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) os << ",";
    os << "[" << json_quote(stages[i].name) << ","
       << json_double(stages[i].seconds) << "]";
  }
  os << "]";
}

bool read_stages(const JsonValue& v, std::vector<StageStats>& out) {
  if (v.kind() != JsonValue::Kind::Array) return false;
  for (const JsonValue& s : v.items()) {
    if (s.kind() != JsonValue::Kind::Array || s.items().size() != 2 ||
        s.items()[0].kind() != JsonValue::Kind::String)
      return false;
    out.push_back(StageStats{s.items()[0].as_string(),
                             s.items()[1].as_double()});
  }
  return true;
}

void write_pass(std::ostringstream& os, const opt::PassReport& p) {
  os << "[" << json_quote(opt::pass_name(p.pass)) << "," << p.vars_before
     << "," << p.vars_after << "," << p.data_bits_before << ","
     << p.data_bits_after << "," << p.transitions_before << ","
     << p.transitions_after << "," << p.details << "," << p.depth_before
     << "," << p.depth_after << "]";
}

bool read_pass(const JsonValue& p, opt::PassReport& pr) {
  if (p.kind() != JsonValue::Kind::Array || p.items().size() != 10 ||
      p.items()[0].kind() != JsonValue::Kind::String)
    return false;
  const std::optional<opt::Pass> pass =
      opt::parse_pass(p.items()[0].as_string());
  if (!pass) return false;
  pr.pass = *pass;
  pr.vars_before = static_cast<std::size_t>(p.items()[1].as_int());
  pr.vars_after = static_cast<std::size_t>(p.items()[2].as_int());
  pr.data_bits_before = static_cast<int>(p.items()[3].as_int());
  pr.data_bits_after = static_cast<int>(p.items()[4].as_int());
  pr.transitions_before = static_cast<std::size_t>(p.items()[5].as_int());
  pr.transitions_after = static_cast<std::size_t>(p.items()[6].as_int());
  pr.details = static_cast<std::size_t>(p.items()[7].as_int());
  pr.depth_before = static_cast<std::uint32_t>(p.items()[8].as_int());
  pr.depth_after = static_cast<std::uint32_t>(p.items()[9].as_int());
  return true;
}

void write_function(std::ostringstream& os, const FunctionTiming& ft) {
  os << "{\"name\":" << json_quote(ft.name) << ",\"blocks\":" << ft.blocks
     << ",\"decisions\":" << ft.decisions << ",\"paths\":";
  write_path_count(os, ft.function_paths);
  os << ",\"ip\":" << ft.instrumentation_points
     << ",\"fused_ip\":" << ft.fused_points << ",\"m\":";
  write_path_count(os, ft.measurements);
  os << ",\"bits\":" << ft.state_bits << ",\"locs\":" << ft.locations
     << ",\"trans\":" << ft.transitions << ",\"depth\":" << ft.unroll_depth
     << ",\"bits0\":" << ft.state_bits_before
     << ",\"locs0\":" << ft.locations_before
     << ",\"trans0\":" << ft.transitions_before << ",\"passes\":[";
  for (std::size_t i = 0; i < ft.pass_reports.size(); ++i) {
    if (i > 0) os << ",";
    write_pass(os, ft.pass_reports[i]);
  }
  os << "],\"stages\":";
  write_stages(os, ft.stages);
  os << ",\"segments\":[";
  for (std::size_t i = 0; i < ft.segments.size(); ++i) {
    const SegmentTiming& s = ft.segments[i];
    if (i > 0) os << ",";
    os << "[" << s.id << "," << static_cast<int>(s.kind) << ","
       << (s.whole_function ? 1 : 0) << "," << s.num_blocks << ",";
    write_path_count(os, s.structural_paths);
    os << "," << (s.enumeration_complete ? 1 : 0) << "," << s.paths.size()
       << "," << s.feasible << "," << s.infeasible << "," << s.unknown << ","
       << s.validated << "," << s.mismatched << "," << s.bcet << ","
       << s.wcet << "," << json_double(s.bmc_seconds) << "," << s.max_cnf_vars
       << "," << s.max_cnf_clauses << "," << s.solver_decisions << ","
       << s.solver_propagations << "," << s.solver_conflicts << ","
       << s.solver_restarts << "]";
  }
  os << "]}";
}

bool read_function(const JsonValue& v, FunctionTiming& ft) {
  if (v.kind() != JsonValue::Kind::Object) return false;
  const JsonValue* name = v.find("name");
  if (name == nullptr || name->kind() != JsonValue::Kind::String) return false;
  ft.name = name->as_string();
  ft.blocks = static_cast<std::size_t>(v.get("blocks").as_int());
  ft.decisions = static_cast<std::size_t>(v.get("decisions").as_int());
  if (!read_path_count(v.get("paths"), ft.function_paths)) return false;
  ft.instrumentation_points =
      static_cast<std::uint64_t>(v.get("ip").as_int());
  ft.fused_points = static_cast<std::uint64_t>(v.get("fused_ip").as_int());
  if (!read_path_count(v.get("m"), ft.measurements)) return false;
  ft.state_bits = static_cast<int>(v.get("bits").as_int());
  ft.locations = static_cast<std::uint32_t>(v.get("locs").as_int());
  ft.transitions = static_cast<std::size_t>(v.get("trans").as_int());
  ft.unroll_depth = static_cast<std::uint32_t>(v.get("depth").as_int());
  ft.state_bits_before = static_cast<int>(v.get("bits0").as_int());
  ft.locations_before = static_cast<std::uint32_t>(v.get("locs0").as_int());
  ft.transitions_before = static_cast<std::size_t>(v.get("trans0").as_int());

  const JsonValue& passes = v.get("passes");
  if (passes.kind() != JsonValue::Kind::Array) return false;
  for (const JsonValue& p : passes.items()) {
    opt::PassReport pr;
    if (!read_pass(p, pr)) return false;
    ft.pass_reports.push_back(pr);
  }

  if (!read_stages(v.get("stages"), ft.stages)) return false;

  const JsonValue& segments = v.get("segments");
  if (segments.kind() != JsonValue::Kind::Array) return false;
  for (const JsonValue& s : segments.items()) {
    if (s.kind() != JsonValue::Kind::Array || s.items().size() != 21)
      return false;
    const std::vector<JsonValue>& f = s.items();
    SegmentTiming st;
    st.id = static_cast<std::uint32_t>(f[0].as_int());
    st.kind = static_cast<core::SegmentKind>(f[1].as_int());
    st.whole_function = f[2].as_int() != 0;
    st.num_blocks = static_cast<std::size_t>(f[3].as_int());
    if (!read_path_count(f[4], st.structural_paths)) return false;
    st.enumeration_complete = f[5].as_int() != 0;
    // Per-path details stay in the child; only the count is rendered.
    st.paths.resize(static_cast<std::size_t>(f[6].as_int()));
    st.feasible = static_cast<std::size_t>(f[7].as_int());
    st.infeasible = static_cast<std::size_t>(f[8].as_int());
    st.unknown = static_cast<std::size_t>(f[9].as_int());
    st.validated = static_cast<std::size_t>(f[10].as_int());
    st.mismatched = static_cast<std::size_t>(f[11].as_int());
    st.bcet = f[12].as_int();
    st.wcet = f[13].as_int();
    st.bmc_seconds = f[14].as_double();
    st.max_cnf_vars = static_cast<std::uint64_t>(f[15].as_int());
    st.max_cnf_clauses = static_cast<std::uint64_t>(f[16].as_int());
    st.solver_decisions = static_cast<std::uint64_t>(f[17].as_int());
    st.solver_propagations = static_cast<std::uint64_t>(f[18].as_int());
    st.solver_conflicts = static_cast<std::uint64_t>(f[19].as_int());
    st.solver_restarts = static_cast<std::uint64_t>(f[20].as_int());
    ft.segments.push_back(std::move(st));
  }
  return true;
}

void write_result(std::ostringstream& os, const PipelineResult& r) {
  os << "{\"jobs\":" << r.analysis_jobs
     << ",\"workers\":" << r.analysis_workers << ",\"stages\":";
  write_stages(os, r.stages);
  os << ",\"functions\":[";
  for (std::size_t i = 0; i < r.functions.size(); ++i) {
    if (i > 0) os << ",";
    write_function(os, r.functions[i]);
  }
  os << "]}";
}

bool read_result(const JsonValue& v, PipelineResult& r) {
  if (v.kind() != JsonValue::Kind::Object) return false;
  r.ok = true;
  r.analysis_jobs = static_cast<std::size_t>(v.get("jobs").as_int());
  r.analysis_workers = static_cast<unsigned>(v.get("workers").as_int());
  if (!read_stages(v.get("stages"), r.stages)) return false;
  const JsonValue& functions = v.get("functions");
  if (functions.kind() != JsonValue::Kind::Array) return false;
  for (const JsonValue& f : functions.items()) {
    FunctionTiming ft;
    if (!read_function(f, ft)) return false;
    r.functions.push_back(std::move(ft));
  }
  return true;
}

std::string error_payload(std::size_t index, const std::string& error) {
  std::ostringstream os;
  os << "{\"ok\":false,\"index\":" << index
     << ",\"error\":" << json_quote(error) << "}";
  return os.str();
}

}  // namespace

std::string serialize_pipeline_result(const PipelineResult& r) {
  std::ostringstream os;
  write_result(os, r);
  return os.str();
}

bool parse_pipeline_result(const JsonValue& v, PipelineResult& r) {
  return read_result(v, r);
}

std::string serialize_batch_payload(const BatchResult& batch,
                                    const std::vector<std::size_t>& indices) {
  if (!batch.ok)
    return error_payload(indices[batch.error_index], batch.error);
  std::ostringstream os;
  os << "{\"ok\":true,\"files\":[";
  for (std::size_t i = 0; i < batch.files.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"index\":" << indices[i] << ",\"report\":";
    write_result(os, batch.files[i].result);
    os << "}";
  }
  os << "]}";
  return os.str();
}

bool merge_batch_payload(const std::string& payload, std::size_t num_files,
                         std::vector<BatchEntry>& slots,
                         std::vector<bool>& filled, bool& have_fail,
                         std::size_t& fail_index, std::string& fail_error,
                         std::string& error) {
  std::string parse_error;
  const std::optional<JsonValue> v = json_parse(payload, &parse_error);
  if (!v) {
    error = "malformed shard payload: " + parse_error;
    return false;
  }
  const JsonValue* ok = v->find("ok");
  if (ok == nullptr || ok->kind() != JsonValue::Kind::Bool) {
    error = "malformed shard payload: missing ok";
    return false;
  }
  if (!ok->as_bool()) {
    const std::size_t index =
        static_cast<std::size_t>(v->get("index").as_int());
    // "First failure in input order" keys on have_fail, never on the
    // message: a failure with an empty message is still the failure to
    // report when its index is smallest.
    if (!have_fail || index < fail_index) {
      have_fail = true;
      fail_index = index;
      fail_error = v->get("error").as_string();
    }
    return true;
  }
  const JsonValue& files = v->get("files");
  if (files.kind() != JsonValue::Kind::Array) {
    error = "malformed shard payload: missing files";
    return false;
  }
  for (const JsonValue& f : files.items()) {
    const std::size_t index = static_cast<std::size_t>(f.get("index").as_int());
    if (index >= num_files || filled[index]) {
      error = "malformed shard payload: bad file index";
      return false;
    }
    if (!read_result(f.get("report"), slots[index].result)) {
      error = "malformed shard payload: bad report";
      return false;
    }
    filled[index] = true;
  }
  return true;
}

std::string serialize_table2_payload(const Table2Report& report,
                                     const std::vector<std::size_t>& indices) {
  if (!report.ok)
    return error_payload(indices[report.error_index], report.error);
  std::ostringstream os;
  os << "{\"ok\":true,\"rows\":[";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const Table2Row& r = report.rows[i];
    if (i > 0) os << ",";
    os << "[" << indices[r.file_index] << "," << json_quote(r.file) << ","
       << json_quote(r.function) << "," << r.bits_plain << "," << r.bits_opt
       << "," << r.locs_plain << "," << r.locs_opt << "," << r.trans_plain
       << "," << r.trans_opt << "," << r.depth_plain << "," << r.depth_opt
       << "," << json_double(r.bmc_seconds_plain) << ","
       << json_double(r.bmc_seconds_opt) << "," << r.cnf_clauses_plain << ","
       << r.cnf_clauses_opt << "," << (r.conclusive_plain ? 1 : 0) << ","
       << (r.conclusive_opt ? 1 : 0) << "," << (r.model_identical ? 1 : 0)
       << ",[";
    for (std::size_t j = 0; j < r.passes.size(); ++j) {
      if (j > 0) os << ",";
      write_pass(os, r.passes[j]);
    }
    os << "]]";
  }
  os << "]}";
  return os.str();
}

std::string serialize_bench_payload(
    const std::vector<engine::BenchFile>& files, double batch_seconds,
    const std::vector<std::size_t>& indices, bool ok, std::size_t fail_index,
    const std::string& fail_error) {
  if (!ok) return error_payload(indices[fail_index], fail_error);
  std::ostringstream os;
  os << "{\"ok\":true,\"batch_seconds\":" << json_double(batch_seconds)
     << ",\"files\":[";
  for (std::size_t i = 0; i < files.size(); ++i) {
    const engine::BenchFile& f = files[i];
    if (i > 0) os << ",";
    os << "{\"index\":" << indices[i] << ",\"path\":" << json_quote(f.path)
       << ",\"jobs\":" << f.analysis_jobs << ",\"workers\":" << f.workers_used
       << ",\"serial\":" << json_double(f.serial_seconds)
       << ",\"parallel\":" << json_double(f.parallel_seconds)
       << ",\"optimised\":" << json_double(f.optimised_seconds)
       << ",\"fresh\":" << json_double(f.fresh_seconds)
       << ",\"bmc\":" << json_double(f.bmc_seconds)
       << ",\"bmc_fresh\":" << json_double(f.bmc_fresh_seconds)
       << ",\"sd\":" << f.solver_decisions
       << ",\"sp\":" << f.solver_propagations
       << ",\"sc\":" << f.solver_conflicts << ",\"sr\":" << f.solver_restarts
       << ",\"stages\":[";
    for (std::size_t s = 0; s < f.stages.size(); ++s) {
      if (s > 0) os << ",";
      os << "[" << json_quote(f.stages[s].name) << ","
         << json_double(f.stages[s].seconds) << "]";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace tmg::driver

// ---------------------------------------------------------------- process
// POSIX half: fork the shard children, stream payloads over pipes, merge.

#if defined(_WIN32)

namespace tmg::driver {
int run_sharded(const CliOptions&, const std::vector<std::string>&,
                ResultCache&, std::ostream&, std::ostream&) {
  return -1;  // no fork: caller falls back to the in-process path
}
}  // namespace tmg::driver

#else

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "driver/fabric.h"

namespace tmg::driver {

namespace {

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_all(int fd, std::string& io_error) {
  std::string out;
  std::array<char, 1 << 16> buf{};
  while (true) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      // Record why the pipe died instead of silently returning the
      // partial buffer — the parent folds the reason into its failure
      // message so a dead shard is diagnosable, not just "failed".
      io_error = std::strerror(errno);
      break;
    }
    if (n == 0) break;
    out.append(buf.data(), static_cast<std::size_t>(n));
  }
  return out;
}

/// The bench child's whole job: measure this shard's slice and return the
/// JSON payload. Never writes to the inherited streams.
std::string compute_bench_payload(const CliOptions& opts,
                                  const std::vector<std::string>& sources,
                                  const std::vector<std::size_t>& indices) {
  std::vector<std::string> slice_sources, slice_paths;
  slice_sources.reserve(indices.size());
  slice_paths.reserve(indices.size());
  for (const std::size_t i : indices) {
    slice_sources.push_back(sources[i]);
    slice_paths.push_back(opts.inputs[i]);
  }
  std::vector<engine::BenchFile> files;
  double batch_seconds = 0.0;
  std::string error;
  std::size_t error_index = 0;
  const bool ok = bench_files(opts, slice_paths, slice_sources, files,
                              batch_seconds, error, error_index);
  return serialize_bench_payload(files, batch_seconds, indices, ok,
                                 error_index, error);
}

struct Child {
  pid_t pid = -1;
  int fd = -1;
};

void reap(std::vector<Child>& children) {
  for (Child& c : children) {
    if (c.fd >= 0) ::close(c.fd);
    if (c.pid > 0) {
      int status = 0;
      ::waitpid(c.pid, &status, 0);
    }
  }
}

/// --bench sharding keeps the old fork-per-slice machinery: bench wants
/// uncontended, strictly sequential measurement, not the fabric's
/// concurrent pool. The fabric's own wall-clock is measured separately
/// after the merge (BenchReport::fabric_seconds).
int run_sharded_bench(const CliOptions& opts,
                      const std::vector<std::string>& sources,
                      ResultCache& cache, std::ostream& out,
                      std::ostream& err) {
  const std::size_t n = sources.size();
  const unsigned shards =
      static_cast<unsigned>(std::min<std::size_t>(opts.shards, n));

  // Round-robin slices: balances the heavy files across shards without
  // needing size estimates; the merge restores input order regardless.
  std::vector<std::vector<std::size_t>> slices(shards);
  for (std::size_t k = 0; k < n; ++k) slices[k % shards].push_back(k);

  std::vector<Child> children(shards);
  std::vector<std::string> payloads(shards);
  std::string child_error;  // first worker-process failure, with cause

  const auto spawn = [&](unsigned s) -> bool {
    int fds[2];
    if (::pipe(fds) != 0) return false;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return false;
    }
    if (pid == 0) {
      // Child: compute, stream, _exit. No stdio flushing (the parent owns
      // the inherited buffers), no exception may escape across fork.
      ::close(fds[0]);
      int code = 0;
      try {
        // Drop spans inherited from the parent's buffers so the wire
        // carries only this shard's work; the steady-clock epoch survives
        // fork, so child timestamps stay on the parent's timeline.
        trace::clear();
        std::string payload = compute_bench_payload(opts, sources, slices[s]);
        if (trace::enabled()) {
          // Every payload is one JSON object; splice the span batch in as
          // an extra member (all payload consumers read by key and ignore
          // unknown members).
          const std::size_t brace = payload.rfind('}');
          if (brace != std::string::npos)
            payload.insert(brace, ",\"trace\":" + trace::events_json());
        }
        if (!write_all(fds[1], payload)) code = 3;
      } catch (...) {
        code = 3;
      }
      ::close(fds[1]);
      ::_exit(code);
    }
    ::close(fds[1]);
    children[s].pid = pid;
    children[s].fd = fds[0];
    return true;
  };

  const auto collect = [&](unsigned s) {
    std::string io_error;
    payloads[s] = read_all(children[s].fd, io_error);
    ::close(children[s].fd);
    children[s].fd = -1;
    int status = 0;
    ::waitpid(children[s].pid, &status, 0);
    children[s].pid = -1;
    if (child_error.empty()) {
      if (!io_error.empty())
        child_error = "read failed: " + io_error;
      else if (WIFSIGNALED(status))
        child_error =
            "killed by signal " + std::to_string(WTERMSIG(status));
      else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
        child_error =
            "exited with status " + std::to_string(WEXITSTATUS(status));
    }
  };

  // Bench shards run one at a time: concurrent sibling shards would
  // inflate every serial/pool/optimised number.
  for (unsigned s = 0; s < shards; ++s) {
    if (!spawn(s)) {
      reap(children);
      return -1;  // resource-limited: fall back to in-process
    }
    collect(s);
  }
  if (!child_error.empty()) {
    err << "tmg: shard worker process failed: " << child_error << "\n";
    return 2;
  }

  // Stitch the shards' span batches into the parent's trace: parent-local
  // events keep pid 1 (stamped at write), shard s becomes pid 2+s.
  if (trace::enabled()) {
    for (unsigned s = 0; s < shards; ++s) {
      const std::optional<JsonValue> v = json_parse(payloads[s]);
      if (!v) continue;  // the merge below reports it
      if (const JsonValue* tr = v->find("trace"))
        trace::import_events(*tr, static_cast<int>(s) + 2);
    }
  }

  // ------------------------------------------------- deterministic merge
  bool have_fail = false;
  std::size_t fail_index = 0;
  std::string fail_error;

  {
    engine::BenchReport report;
    report.repeats = opts.bench_repeats;
    report.workers = engine::Scheduler(opts.pipeline.jobs).workers();
    report.files.resize(n);
    for (const std::string& payload : payloads) {
      std::string parse_error;
      const std::optional<JsonValue> v = json_parse(payload, &parse_error);
      if (!v || v->get("ok").kind() != JsonValue::Kind::Bool) {
        err << "tmg: malformed shard payload\n";
        return 2;
      }
      if (!v->get("ok").as_bool()) {
        const auto index = static_cast<std::size_t>(v->get("index").as_int());
        // have_fail, not fail_error.empty(): an empty-message failure at
        // a lower index must not be overwritten by a later one.
        if (!have_fail || index < fail_index) {
          have_fail = true;
          fail_index = index;
          fail_error = v->get("error").as_string();
        }
        continue;
      }
      // Bench shards run sequentially (uncontended measurement), so the
      // whole-set frontier wall is the sum of the per-shard walls.
      report.batch_seconds += v->get("batch_seconds").as_double();
      for (const JsonValue& f : v->get("files").items()) {
        const auto index = static_cast<std::size_t>(f.get("index").as_int());
        if (index >= n) {
          err << "tmg: malformed shard payload\n";
          return 2;
        }
        engine::BenchFile& bf = report.files[index];
        bf.path = f.get("path").as_string();
        bf.analysis_jobs = static_cast<std::size_t>(f.get("jobs").as_int());
        bf.workers_used = static_cast<unsigned>(f.get("workers").as_int());
        bf.serial_seconds = f.get("serial").as_double();
        bf.parallel_seconds = f.get("parallel").as_double();
        bf.optimised_seconds = f.get("optimised").as_double();
        bf.fresh_seconds = f.get("fresh").as_double();
        bf.bmc_seconds = f.get("bmc").as_double();
        bf.bmc_fresh_seconds = f.get("bmc_fresh").as_double();
        bf.solver_decisions = static_cast<std::uint64_t>(f.get("sd").as_int());
        bf.solver_propagations =
            static_cast<std::uint64_t>(f.get("sp").as_int());
        bf.solver_conflicts = static_cast<std::uint64_t>(f.get("sc").as_int());
        bf.solver_restarts = static_cast<std::uint64_t>(f.get("sr").as_int());
        for (const JsonValue& st : f.get("stages").items())
          if (st.items().size() == 2)
            bf.stages.push_back(engine::BenchStage{
                st.items()[0].as_string(), st.items()[1].as_double()});
      }
    }
    if (have_fail) {
      err << fail_error;
      return 2;
    }

    // Fabric wall-clock: the same files once through the worker-pool
    // fabric (passes cleared, matching the pool run's configuration),
    // best of the same repeat count. Results are discarded — only the
    // wall matters here.
    {
      const PipelineOptions popts = table2_option_pair(opts.pipeline).first;
      FabricOptions fopts;
      fopts.pool = shards;
      for (unsigned r = 0; r < opts.bench_repeats; ++r) {
        std::vector<std::optional<PipelineResult>> results(n);
        std::vector<std::string> crash_errors;
        FabricStats stats;
        const double t0 = engine::monotonic_seconds();
        if (!run_fabric(popts, sources, opts.inputs, fopts, results,
                        crash_errors, stats, err))
          break;
        const double t = engine::monotonic_seconds() - t0;
        if (report.fabric_seconds == 0.0 || t < report.fabric_seconds)
          report.fabric_seconds = t;
      }
      report.fabric_pool = shards;
    }

    bench_probe_cache(sources, opts.pipeline, cache, report, err);
    report.render_json(out);
    return 0;
  }
}

/// Runs one batch configuration through the worker-pool fabric with the
/// parent-side cache prefilter (hits never reach a worker; the parent is
/// the single cache writer). Fills `batch` like run_batch_cached: ok with
/// one entry per input, or the first in-band failure in input order.
/// Crash hard-failures do NOT fail the batch — the affected entries carry
/// `!result.ok` with the crash diagnostic (and `crash_errors[i]` set) so
/// the caller can render them as diagnostic rows or reject them. Returns
/// false when fork is unavailable.
bool fabric_batch_half(const CliOptions& opts,
                       const std::vector<std::string>& sources,
                       const PipelineOptions& popts, ResultCache& cache,
                       BatchResult& batch,
                       std::vector<std::string>& crash_errors,
                       FabricStats& stats, std::ostream& err) {
  const std::size_t n = sources.size();
  std::vector<std::optional<PipelineResult>> results(n);
  std::vector<bool> cached(n, false);
  for (std::size_t i = 0; i < n && cache.enabled(); ++i) {
    if (std::optional<PipelineResult> hit =
            cache.lookup(sources[i], popts, err)) {
      results[i] = std::move(*hit);
      cached[i] = true;
      trace::progress_file_done();
    }
  }

  FabricOptions fopts;
  fopts.pool = static_cast<unsigned>(
      std::max<std::size_t>(1, std::min<std::size_t>(opts.shards, n)));
  if (!run_fabric(popts, sources, opts.inputs, fopts, results, crash_errors,
                  stats, err))
    return false;

  // The first in-band failure in input order fails the whole batch,
  // exactly like run_batch; crash hard-failures don't (they resolve to
  // per-file diagnostics below so the rest of the run still renders).
  for (std::size_t i = 0; i < n; ++i) {
    if (results[i] && !results[i]->ok) {
      batch.ok = false;
      batch.error = opts.inputs[i] + ": " + results[i]->error;
      batch.error_index = i;
      return true;
    }
  }

  // In-process, every non-cached file shares ONE analysis frontier, so
  // each reports the same worker count: the pool clamped to the total job
  // count across all of them. Fabric workers ran per-file pipelines whose
  // pools clamped to single-file job counts; recompute the frontier value
  // here so --stats output is byte-identical to --shards=1 (and crash
  // schedules, which reshuffle which worker computed what, can't leak in).
  {
    std::size_t frontier_jobs = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (results[i] && !cached[i]) frontier_jobs += results[i]->analysis_jobs;
    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        engine::Scheduler(popts.jobs).workers(),
        std::max<std::size_t>(frontier_jobs, 1)));
    for (std::size_t i = 0; i < n; ++i)
      if (results[i] && !cached[i]) results[i]->analysis_workers = workers;
  }

  batch.ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    BatchEntry entry;
    entry.path = opts.inputs[i];
    if (results[i]) {
      if (!cached[i]) cache.store(sources[i], popts, *results[i], err);
      entry.result = std::move(*results[i]);
    } else {
      entry.result.ok = false;
      entry.result.error = crash_errors[i] + "\n";
    }
    batch.files.push_back(std::move(entry));
  }
  return true;
}

int run_sharded_batch(const CliOptions& opts,
                      const std::vector<std::string>& sources,
                      ResultCache& cache, std::ostream& out,
                      std::ostream& err) {
  BatchResult batch;
  std::vector<std::string> crash_errors;
  FabricStats stats;
  if (!fabric_batch_half(opts, sources, opts.pipeline, cache, batch,
                         crash_errors, stats, err))
    return -1;
  if (opts.with_stages)
    err << "tmg: fabric: " << stats.units << " units, " << stats.dispatches
        << " dispatches, " << stats.retries << " retries, " << stats.splits
        << " splits, " << stats.crashes << " crashes, "
        << stats.hard_failures << " hard failures\n";
  if (!batch.ok) {
    err << batch.error;
    return 2;
  }
  render_batch_report(batch.files, opts.pipeline, opts.format,
                      opts.with_stages, out);
  return 0;
}

int run_sharded_table2(const CliOptions& opts,
                       const std::vector<std::string>& sources,
                       ResultCache& cache, std::ostream& out,
                       std::ostream& err) {
  const auto [plain, optimised] = table2_option_pair(opts.pipeline);

  // --table2 rows compare two runs of the same file: there is no row
  // shape for "one half crashed", so a crash hard-failure fails the run.
  const auto first_crash =
      [](const std::vector<std::string>& crashes) -> const std::string* {
    for (const std::string& c : crashes)
      if (!c.empty()) return &c;
    return nullptr;
  };

  BatchResult a;
  std::vector<std::string> crash_a;
  FabricStats stats_a;
  if (!fabric_batch_half(opts, sources, plain, cache, a, crash_a, stats_a,
                         err))
    return -1;
  if (const std::string* c = first_crash(crash_a)) {
    err << "tmg: " << *c << "\n";
    return 2;
  }

  Table2Report report;
  if (!a.ok) {
    report = table2_assemble(a, a, opts.inputs);
  } else {
    BatchResult b;
    std::vector<std::string> crash_b;
    FabricStats stats_b;
    if (!fabric_batch_half(opts, sources, optimised, cache, b, crash_b,
                           stats_b, err))
      return -1;
    if (const std::string* c = first_crash(crash_b)) {
      err << "tmg: " << *c << "\n";
      return 2;
    }
    report = table2_assemble(a, b, opts.inputs);
  }
  if (!report.ok) {
    err << report.error;
    return 2;
  }
  render_table2(report, opts.format, out);
  return 0;
}

}  // namespace

int run_sharded(const CliOptions& opts,
                const std::vector<std::string>& sources, ResultCache& cache,
                std::ostream& out, std::ostream& err) {
  if (opts.bench_repeats > 0)
    return run_sharded_bench(opts, sources, cache, out, err);
  if (opts.table2) return run_sharded_table2(opts, sources, cache, out, err);
  return run_sharded_batch(opts, sources, cache, out, err);
}


}  // namespace tmg::driver

#endif  // !_WIN32
