#include "driver/shard.h"

#include <algorithm>
#include <sstream>

#include "engine/scheduler.h"
#include "opt/passes.h"
#include "support/json.h"
#include "support/trace.h"

namespace tmg::driver {

namespace {

// ----------------------------------------------------------- serialisation
//
// The wire schema carries exactly what the renderers read — per-path
// details (witness vectors, block sequences) stay in the child, only the
// per-segment tallies travel. Integers are JSON integers (exact), wall
// clocks use json_double (%.17g, parse-exact), so the parent's rendering
// is byte-identical to an in-process run.

void write_path_count(std::ostringstream& os, const PathCount& pc) {
  if (!pc.saturated())
    os << static_cast<std::int64_t>(pc.exact());
  else
    os << "{\"log2\":" << json_double(pc.log2()) << "}";
}

bool read_path_count(const JsonValue& v, PathCount& out) {
  if (v.is_int()) {
    out = PathCount(static_cast<std::uint64_t>(v.as_int()));
    return true;
  }
  const JsonValue* l = v.find("log2");
  if (l == nullptr) return false;
  out = PathCount::from_log2(l->as_double());
  return true;
}

void write_stages(std::ostringstream& os,
                  const std::vector<StageStats>& stages) {
  os << "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) os << ",";
    os << "[" << json_quote(stages[i].name) << ","
       << json_double(stages[i].seconds) << "]";
  }
  os << "]";
}

bool read_stages(const JsonValue& v, std::vector<StageStats>& out) {
  if (v.kind() != JsonValue::Kind::Array) return false;
  for (const JsonValue& s : v.items()) {
    if (s.kind() != JsonValue::Kind::Array || s.items().size() != 2 ||
        s.items()[0].kind() != JsonValue::Kind::String)
      return false;
    out.push_back(StageStats{s.items()[0].as_string(),
                             s.items()[1].as_double()});
  }
  return true;
}

void write_pass(std::ostringstream& os, const opt::PassReport& p) {
  os << "[" << json_quote(opt::pass_name(p.pass)) << "," << p.vars_before
     << "," << p.vars_after << "," << p.data_bits_before << ","
     << p.data_bits_after << "," << p.transitions_before << ","
     << p.transitions_after << "," << p.details << "," << p.depth_before
     << "," << p.depth_after << "]";
}

bool read_pass(const JsonValue& p, opt::PassReport& pr) {
  if (p.kind() != JsonValue::Kind::Array || p.items().size() != 10 ||
      p.items()[0].kind() != JsonValue::Kind::String)
    return false;
  const std::optional<opt::Pass> pass =
      opt::parse_pass(p.items()[0].as_string());
  if (!pass) return false;
  pr.pass = *pass;
  pr.vars_before = static_cast<std::size_t>(p.items()[1].as_int());
  pr.vars_after = static_cast<std::size_t>(p.items()[2].as_int());
  pr.data_bits_before = static_cast<int>(p.items()[3].as_int());
  pr.data_bits_after = static_cast<int>(p.items()[4].as_int());
  pr.transitions_before = static_cast<std::size_t>(p.items()[5].as_int());
  pr.transitions_after = static_cast<std::size_t>(p.items()[6].as_int());
  pr.details = static_cast<std::size_t>(p.items()[7].as_int());
  pr.depth_before = static_cast<std::uint32_t>(p.items()[8].as_int());
  pr.depth_after = static_cast<std::uint32_t>(p.items()[9].as_int());
  return true;
}

void write_function(std::ostringstream& os, const FunctionTiming& ft) {
  os << "{\"name\":" << json_quote(ft.name) << ",\"blocks\":" << ft.blocks
     << ",\"decisions\":" << ft.decisions << ",\"paths\":";
  write_path_count(os, ft.function_paths);
  os << ",\"ip\":" << ft.instrumentation_points
     << ",\"fused_ip\":" << ft.fused_points << ",\"m\":";
  write_path_count(os, ft.measurements);
  os << ",\"bits\":" << ft.state_bits << ",\"locs\":" << ft.locations
     << ",\"trans\":" << ft.transitions << ",\"depth\":" << ft.unroll_depth
     << ",\"bits0\":" << ft.state_bits_before
     << ",\"locs0\":" << ft.locations_before
     << ",\"trans0\":" << ft.transitions_before << ",\"passes\":[";
  for (std::size_t i = 0; i < ft.pass_reports.size(); ++i) {
    if (i > 0) os << ",";
    write_pass(os, ft.pass_reports[i]);
  }
  os << "],\"stages\":";
  write_stages(os, ft.stages);
  os << ",\"segments\":[";
  for (std::size_t i = 0; i < ft.segments.size(); ++i) {
    const SegmentTiming& s = ft.segments[i];
    if (i > 0) os << ",";
    os << "[" << s.id << "," << static_cast<int>(s.kind) << ","
       << (s.whole_function ? 1 : 0) << "," << s.num_blocks << ",";
    write_path_count(os, s.structural_paths);
    os << "," << (s.enumeration_complete ? 1 : 0) << "," << s.paths.size()
       << "," << s.feasible << "," << s.infeasible << "," << s.unknown << ","
       << s.validated << "," << s.mismatched << "," << s.bcet << ","
       << s.wcet << "," << json_double(s.bmc_seconds) << "," << s.max_cnf_vars
       << "," << s.max_cnf_clauses << "," << s.solver_decisions << ","
       << s.solver_propagations << "," << s.solver_conflicts << ","
       << s.solver_restarts << "]";
  }
  os << "]}";
}

bool read_function(const JsonValue& v, FunctionTiming& ft) {
  if (v.kind() != JsonValue::Kind::Object) return false;
  const JsonValue* name = v.find("name");
  if (name == nullptr || name->kind() != JsonValue::Kind::String) return false;
  ft.name = name->as_string();
  ft.blocks = static_cast<std::size_t>(v.get("blocks").as_int());
  ft.decisions = static_cast<std::size_t>(v.get("decisions").as_int());
  if (!read_path_count(v.get("paths"), ft.function_paths)) return false;
  ft.instrumentation_points =
      static_cast<std::uint64_t>(v.get("ip").as_int());
  ft.fused_points = static_cast<std::uint64_t>(v.get("fused_ip").as_int());
  if (!read_path_count(v.get("m"), ft.measurements)) return false;
  ft.state_bits = static_cast<int>(v.get("bits").as_int());
  ft.locations = static_cast<std::uint32_t>(v.get("locs").as_int());
  ft.transitions = static_cast<std::size_t>(v.get("trans").as_int());
  ft.unroll_depth = static_cast<std::uint32_t>(v.get("depth").as_int());
  ft.state_bits_before = static_cast<int>(v.get("bits0").as_int());
  ft.locations_before = static_cast<std::uint32_t>(v.get("locs0").as_int());
  ft.transitions_before = static_cast<std::size_t>(v.get("trans0").as_int());

  const JsonValue& passes = v.get("passes");
  if (passes.kind() != JsonValue::Kind::Array) return false;
  for (const JsonValue& p : passes.items()) {
    opt::PassReport pr;
    if (!read_pass(p, pr)) return false;
    ft.pass_reports.push_back(pr);
  }

  if (!read_stages(v.get("stages"), ft.stages)) return false;

  const JsonValue& segments = v.get("segments");
  if (segments.kind() != JsonValue::Kind::Array) return false;
  for (const JsonValue& s : segments.items()) {
    if (s.kind() != JsonValue::Kind::Array || s.items().size() != 21)
      return false;
    const std::vector<JsonValue>& f = s.items();
    SegmentTiming st;
    st.id = static_cast<std::uint32_t>(f[0].as_int());
    st.kind = static_cast<core::SegmentKind>(f[1].as_int());
    st.whole_function = f[2].as_int() != 0;
    st.num_blocks = static_cast<std::size_t>(f[3].as_int());
    if (!read_path_count(f[4], st.structural_paths)) return false;
    st.enumeration_complete = f[5].as_int() != 0;
    // Per-path details stay in the child; only the count is rendered.
    st.paths.resize(static_cast<std::size_t>(f[6].as_int()));
    st.feasible = static_cast<std::size_t>(f[7].as_int());
    st.infeasible = static_cast<std::size_t>(f[8].as_int());
    st.unknown = static_cast<std::size_t>(f[9].as_int());
    st.validated = static_cast<std::size_t>(f[10].as_int());
    st.mismatched = static_cast<std::size_t>(f[11].as_int());
    st.bcet = f[12].as_int();
    st.wcet = f[13].as_int();
    st.bmc_seconds = f[14].as_double();
    st.max_cnf_vars = static_cast<std::uint64_t>(f[15].as_int());
    st.max_cnf_clauses = static_cast<std::uint64_t>(f[16].as_int());
    st.solver_decisions = static_cast<std::uint64_t>(f[17].as_int());
    st.solver_propagations = static_cast<std::uint64_t>(f[18].as_int());
    st.solver_conflicts = static_cast<std::uint64_t>(f[19].as_int());
    st.solver_restarts = static_cast<std::uint64_t>(f[20].as_int());
    ft.segments.push_back(std::move(st));
  }
  return true;
}

void write_result(std::ostringstream& os, const PipelineResult& r) {
  os << "{\"jobs\":" << r.analysis_jobs
     << ",\"workers\":" << r.analysis_workers << ",\"stages\":";
  write_stages(os, r.stages);
  os << ",\"functions\":[";
  for (std::size_t i = 0; i < r.functions.size(); ++i) {
    if (i > 0) os << ",";
    write_function(os, r.functions[i]);
  }
  os << "]}";
}

bool read_result(const JsonValue& v, PipelineResult& r) {
  if (v.kind() != JsonValue::Kind::Object) return false;
  r.ok = true;
  r.analysis_jobs = static_cast<std::size_t>(v.get("jobs").as_int());
  r.analysis_workers = static_cast<unsigned>(v.get("workers").as_int());
  if (!read_stages(v.get("stages"), r.stages)) return false;
  const JsonValue& functions = v.get("functions");
  if (functions.kind() != JsonValue::Kind::Array) return false;
  for (const JsonValue& f : functions.items()) {
    FunctionTiming ft;
    if (!read_function(f, ft)) return false;
    r.functions.push_back(std::move(ft));
  }
  return true;
}

std::string error_payload(std::size_t index, const std::string& error) {
  std::ostringstream os;
  os << "{\"ok\":false,\"index\":" << index
     << ",\"error\":" << json_quote(error) << "}";
  return os.str();
}

}  // namespace

std::string serialize_pipeline_result(const PipelineResult& r) {
  std::ostringstream os;
  write_result(os, r);
  return os.str();
}

bool parse_pipeline_result(const JsonValue& v, PipelineResult& r) {
  return read_result(v, r);
}

std::string serialize_batch_payload(const BatchResult& batch,
                                    const std::vector<std::size_t>& indices) {
  if (!batch.ok)
    return error_payload(indices[batch.error_index], batch.error);
  std::ostringstream os;
  os << "{\"ok\":true,\"files\":[";
  for (std::size_t i = 0; i < batch.files.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"index\":" << indices[i] << ",\"report\":";
    write_result(os, batch.files[i].result);
    os << "}";
  }
  os << "]}";
  return os.str();
}

bool merge_batch_payload(const std::string& payload, std::size_t num_files,
                         std::vector<BatchEntry>& slots,
                         std::vector<bool>& filled, std::size_t& fail_index,
                         std::string& fail_error, std::string& error) {
  std::string parse_error;
  const std::optional<JsonValue> v = json_parse(payload, &parse_error);
  if (!v) {
    error = "malformed shard payload: " + parse_error;
    return false;
  }
  const JsonValue* ok = v->find("ok");
  if (ok == nullptr || ok->kind() != JsonValue::Kind::Bool) {
    error = "malformed shard payload: missing ok";
    return false;
  }
  if (!ok->as_bool()) {
    const std::size_t index =
        static_cast<std::size_t>(v->get("index").as_int());
    if (fail_error.empty() || index < fail_index) {
      fail_index = index;
      fail_error = v->get("error").as_string();
    }
    return true;
  }
  const JsonValue& files = v->get("files");
  if (files.kind() != JsonValue::Kind::Array) {
    error = "malformed shard payload: missing files";
    return false;
  }
  for (const JsonValue& f : files.items()) {
    const std::size_t index = static_cast<std::size_t>(f.get("index").as_int());
    if (index >= num_files || filled[index]) {
      error = "malformed shard payload: bad file index";
      return false;
    }
    if (!read_result(f.get("report"), slots[index].result)) {
      error = "malformed shard payload: bad report";
      return false;
    }
    filled[index] = true;
  }
  return true;
}

std::string serialize_table2_payload(const Table2Report& report,
                                     const std::vector<std::size_t>& indices) {
  if (!report.ok)
    return error_payload(indices[report.error_index], report.error);
  std::ostringstream os;
  os << "{\"ok\":true,\"rows\":[";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const Table2Row& r = report.rows[i];
    if (i > 0) os << ",";
    os << "[" << indices[r.file_index] << "," << json_quote(r.file) << ","
       << json_quote(r.function) << "," << r.bits_plain << "," << r.bits_opt
       << "," << r.locs_plain << "," << r.locs_opt << "," << r.trans_plain
       << "," << r.trans_opt << "," << r.depth_plain << "," << r.depth_opt
       << "," << json_double(r.bmc_seconds_plain) << ","
       << json_double(r.bmc_seconds_opt) << "," << r.cnf_clauses_plain << ","
       << r.cnf_clauses_opt << "," << (r.conclusive_plain ? 1 : 0) << ","
       << (r.conclusive_opt ? 1 : 0) << "," << (r.model_identical ? 1 : 0)
       << ",[";
    for (std::size_t j = 0; j < r.passes.size(); ++j) {
      if (j > 0) os << ",";
      write_pass(os, r.passes[j]);
    }
    os << "]]";
  }
  os << "]}";
  return os.str();
}

std::string serialize_bench_payload(
    const std::vector<engine::BenchFile>& files, double batch_seconds,
    const std::vector<std::size_t>& indices, bool ok, std::size_t fail_index,
    const std::string& fail_error) {
  if (!ok) return error_payload(indices[fail_index], fail_error);
  std::ostringstream os;
  os << "{\"ok\":true,\"batch_seconds\":" << json_double(batch_seconds)
     << ",\"files\":[";
  for (std::size_t i = 0; i < files.size(); ++i) {
    const engine::BenchFile& f = files[i];
    if (i > 0) os << ",";
    os << "{\"index\":" << indices[i] << ",\"path\":" << json_quote(f.path)
       << ",\"jobs\":" << f.analysis_jobs << ",\"workers\":" << f.workers_used
       << ",\"serial\":" << json_double(f.serial_seconds)
       << ",\"parallel\":" << json_double(f.parallel_seconds)
       << ",\"optimised\":" << json_double(f.optimised_seconds)
       << ",\"fresh\":" << json_double(f.fresh_seconds)
       << ",\"bmc\":" << json_double(f.bmc_seconds)
       << ",\"bmc_fresh\":" << json_double(f.bmc_fresh_seconds)
       << ",\"sd\":" << f.solver_decisions
       << ",\"sp\":" << f.solver_propagations
       << ",\"sc\":" << f.solver_conflicts << ",\"sr\":" << f.solver_restarts
       << ",\"stages\":[";
    for (std::size_t s = 0; s < f.stages.size(); ++s) {
      if (s > 0) os << ",";
      os << "[" << json_quote(f.stages[s].name) << ","
         << json_double(f.stages[s].seconds) << "]";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace tmg::driver

// ---------------------------------------------------------------- process
// POSIX half: fork the shard children, stream payloads over pipes, merge.

#if defined(_WIN32)

namespace tmg::driver {
int run_sharded(const CliOptions&, const std::vector<std::string>&,
                ResultCache&, std::ostream&, std::ostream&) {
  return -1;  // no fork: caller falls back to the in-process path
}
}  // namespace tmg::driver

#else

#include <sys/wait.h>
#include <unistd.h>

namespace tmg::driver {

namespace {

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_all(int fd) {
  std::string out;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// The child's whole job: run this shard's slice in the current mode and
/// return the JSON payload. Never writes to the inherited streams.
std::string compute_payload(const CliOptions& opts,
                            const std::vector<std::string>& sources,
                            const std::vector<std::size_t>& indices) {
  std::vector<std::string> slice_sources, slice_paths;
  slice_sources.reserve(indices.size());
  slice_paths.reserve(indices.size());
  for (const std::size_t i : indices) {
    slice_sources.push_back(sources[i]);
    slice_paths.push_back(opts.inputs[i]);
  }

  if (opts.bench_repeats > 0) {
    std::vector<engine::BenchFile> files;
    double batch_seconds = 0.0;
    std::string error;
    std::size_t error_index = 0;
    const bool ok = bench_files(opts, slice_paths, slice_sources, files,
                                batch_seconds, error, error_index);
    return serialize_bench_payload(files, batch_seconds, indices, ok,
                                   error_index, error);
  }
  if (opts.table2) {
    const Table2Report report =
        table2_compare(slice_sources, slice_paths, opts.pipeline);
    return serialize_table2_payload(report, indices);
  }
  const BatchResult batch =
      run_batch(slice_sources, slice_paths, opts.pipeline);
  return serialize_batch_payload(batch, indices);
}

struct Child {
  pid_t pid = -1;
  int fd = -1;
};

void reap(std::vector<Child>& children) {
  for (Child& c : children) {
    if (c.fd >= 0) ::close(c.fd);
    if (c.pid > 0) {
      int status = 0;
      ::waitpid(c.pid, &status, 0);
    }
  }
}

}  // namespace

int run_sharded(const CliOptions& opts,
                const std::vector<std::string>& sources, ResultCache& cache,
                std::ostream& out, std::ostream& err) {
  const std::size_t n = sources.size();

  // Batch-report mode consults the cache up front: hits never reach a
  // shard, so a fully warm cache forks no children at all. The parent is
  // the single cache writer — children always compute from scratch.
  const bool batch_mode = opts.bench_repeats == 0 && !opts.table2;
  std::vector<BatchEntry> slots(n);
  std::vector<bool> filled(n, false);
  std::vector<std::size_t> work;
  work.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (batch_mode && cache.enabled()) {
      if (std::optional<PipelineResult> hit =
              cache.lookup(sources[i], opts.pipeline, err)) {
        slots[i].result = std::move(*hit);
        filled[i] = true;
        trace::progress_file_done();
        continue;
      }
    }
    work.push_back(i);
  }

  const unsigned shards =
      work.empty() ? 0
                   : static_cast<unsigned>(
                         std::min<std::size_t>(opts.shards, work.size()));

  // Round-robin slices: balances the heavy files across shards without
  // needing size estimates; the merge restores input order regardless.
  std::vector<std::vector<std::size_t>> slices(shards);
  for (std::size_t k = 0; k < work.size(); ++k)
    slices[k % shards].push_back(work[k]);

  // Bench mode runs its shards one at a time: the whole point of --bench
  // is uncontended wall-clock measurement, and concurrent sibling shards
  // would inflate every serial/pool/optimised number. The report modes
  // run all shards concurrently (throughput is their point).
  const bool sequential = opts.bench_repeats > 0;

  std::vector<Child> children(shards);
  std::vector<std::string> payloads(shards);
  bool child_failed = false;

  const auto spawn = [&](unsigned s) -> bool {
    int fds[2];
    if (::pipe(fds) != 0) return false;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return false;
    }
    if (pid == 0) {
      // Child: compute, stream, _exit. No stdio flushing (the parent owns
      // the inherited buffers), no exception may escape across fork.
      ::close(fds[0]);
      int code = 0;
      try {
        // Drop spans inherited from the parent's buffers so the wire
        // carries only this shard's work; the steady-clock epoch survives
        // fork, so child timestamps stay on the parent's timeline.
        trace::clear();
        std::string payload = compute_payload(opts, sources, slices[s]);
        if (trace::enabled()) {
          // Every payload is one JSON object; splice the span batch in as
          // an extra member (all payload consumers read by key and ignore
          // unknown members).
          const std::size_t brace = payload.rfind('}');
          if (brace != std::string::npos)
            payload.insert(brace, ",\"trace\":" + trace::events_json());
        }
        if (!write_all(fds[1], payload)) code = 3;
      } catch (...) {
        code = 3;
      }
      ::close(fds[1]);
      ::_exit(code);
    }
    ::close(fds[1]);
    children[s].pid = pid;
    children[s].fd = fds[0];
    return true;
  };

  const auto collect = [&](unsigned s) {
    payloads[s] = read_all(children[s].fd);
    ::close(children[s].fd);
    children[s].fd = -1;
    int status = 0;
    ::waitpid(children[s].pid, &status, 0);
    children[s].pid = -1;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) child_failed = true;
  };

  if (sequential) {
    for (unsigned s = 0; s < shards; ++s) {
      if (!spawn(s)) {
        reap(children);
        return -1;  // resource-limited: fall back to in-process
      }
      collect(s);
    }
  } else {
    for (unsigned s = 0; s < shards; ++s) {
      if (!spawn(s)) {
        reap(children);
        return -1;
      }
    }
    // A child blocked on a full pipe resumes when its turn comes.
    for (unsigned s = 0; s < shards; ++s) collect(s);
  }
  if (child_failed) {
    err << "tmg: shard worker process failed\n";
    return 2;
  }

  // Stitch the shards' span batches into the parent's trace: parent-local
  // events keep pid 1 (stamped at write), shard s becomes pid 2+s.
  if (trace::enabled()) {
    for (unsigned s = 0; s < shards; ++s) {
      const std::optional<JsonValue> v = json_parse(payloads[s]);
      if (!v) continue;  // the mode-specific merge below reports it
      if (const JsonValue* tr = v->find("trace"))
        trace::import_events(*tr, static_cast<int>(s) + 2);
    }
  }

  // ------------------------------------------------- deterministic merge
  std::size_t fail_index = 0;
  std::string fail_error;

  if (opts.bench_repeats > 0) {
    engine::BenchReport report;
    report.repeats = opts.bench_repeats;
    report.workers = engine::Scheduler(opts.pipeline.jobs).workers();
    report.files.resize(n);
    for (const std::string& payload : payloads) {
      std::string parse_error;
      const std::optional<JsonValue> v = json_parse(payload, &parse_error);
      if (!v || v->get("ok").kind() != JsonValue::Kind::Bool) {
        err << "tmg: malformed shard payload\n";
        return 2;
      }
      if (!v->get("ok").as_bool()) {
        const auto index = static_cast<std::size_t>(v->get("index").as_int());
        if (fail_error.empty() || index < fail_index) {
          fail_index = index;
          fail_error = v->get("error").as_string();
        }
        continue;
      }
      // Bench shards run sequentially (uncontended measurement), so the
      // whole-set frontier wall is the sum of the per-shard walls.
      report.batch_seconds += v->get("batch_seconds").as_double();
      for (const JsonValue& f : v->get("files").items()) {
        const auto index = static_cast<std::size_t>(f.get("index").as_int());
        if (index >= n) {
          err << "tmg: malformed shard payload\n";
          return 2;
        }
        engine::BenchFile& bf = report.files[index];
        bf.path = f.get("path").as_string();
        bf.analysis_jobs = static_cast<std::size_t>(f.get("jobs").as_int());
        bf.workers_used = static_cast<unsigned>(f.get("workers").as_int());
        bf.serial_seconds = f.get("serial").as_double();
        bf.parallel_seconds = f.get("parallel").as_double();
        bf.optimised_seconds = f.get("optimised").as_double();
        bf.fresh_seconds = f.get("fresh").as_double();
        bf.bmc_seconds = f.get("bmc").as_double();
        bf.bmc_fresh_seconds = f.get("bmc_fresh").as_double();
        bf.solver_decisions = static_cast<std::uint64_t>(f.get("sd").as_int());
        bf.solver_propagations =
            static_cast<std::uint64_t>(f.get("sp").as_int());
        bf.solver_conflicts = static_cast<std::uint64_t>(f.get("sc").as_int());
        bf.solver_restarts = static_cast<std::uint64_t>(f.get("sr").as_int());
        for (const JsonValue& st : f.get("stages").items())
          if (st.items().size() == 2)
            bf.stages.push_back(engine::BenchStage{
                st.items()[0].as_string(), st.items()[1].as_double()});
      }
    }
    if (!fail_error.empty()) {
      err << fail_error;
      return 2;
    }
    bench_probe_cache(sources, opts.pipeline, cache, report, err);
    report.render_json(out);
    return 0;
  }

  if (opts.table2) {
    std::vector<Table2Row> rows;
    for (const std::string& payload : payloads) {
      std::string parse_error;
      const std::optional<JsonValue> v = json_parse(payload, &parse_error);
      if (!v || v->get("ok").kind() != JsonValue::Kind::Bool) {
        err << "tmg: malformed shard payload\n";
        return 2;
      }
      if (!v->get("ok").as_bool()) {
        const auto index = static_cast<std::size_t>(v->get("index").as_int());
        if (fail_error.empty() || index < fail_index) {
          fail_index = index;
          fail_error = v->get("error").as_string();
        }
        continue;
      }
      for (const JsonValue& r : v->get("rows").items()) {
        if (r.kind() != JsonValue::Kind::Array || r.items().size() != 19) {
          err << "tmg: malformed shard payload\n";
          return 2;
        }
        const std::vector<JsonValue>& f = r.items();
        Table2Row row;
        row.file_index = static_cast<std::size_t>(f[0].as_int());
        row.file = f[1].as_string();
        row.function = f[2].as_string();
        row.bits_plain = static_cast<int>(f[3].as_int());
        row.bits_opt = static_cast<int>(f[4].as_int());
        row.locs_plain = static_cast<std::uint32_t>(f[5].as_int());
        row.locs_opt = static_cast<std::uint32_t>(f[6].as_int());
        row.trans_plain = static_cast<std::size_t>(f[7].as_int());
        row.trans_opt = static_cast<std::size_t>(f[8].as_int());
        row.depth_plain = static_cast<std::uint32_t>(f[9].as_int());
        row.depth_opt = static_cast<std::uint32_t>(f[10].as_int());
        row.bmc_seconds_plain = f[11].as_double();
        row.bmc_seconds_opt = f[12].as_double();
        row.cnf_clauses_plain = static_cast<std::uint64_t>(f[13].as_int());
        row.cnf_clauses_opt = static_cast<std::uint64_t>(f[14].as_int());
        row.conclusive_plain = f[15].as_int() != 0;
        row.conclusive_opt = f[16].as_int() != 0;
        row.model_identical = f[17].as_int() != 0;
        if (f[18].kind() != JsonValue::Kind::Array) {
          err << "tmg: malformed shard payload\n";
          return 2;
        }
        for (const JsonValue& p : f[18].items()) {
          opt::PassReport pr;
          if (!read_pass(p, pr)) {
            err << "tmg: malformed shard payload\n";
            return 2;
          }
          row.passes.push_back(pr);
        }
        rows.push_back(std::move(row));
      }
    }
    if (!fail_error.empty()) {
      err << fail_error;
      return 2;
    }
    // Rows within one file kept payload order; files restored to input
    // order (stable sort: shards emit rows file-ordered already).
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Table2Row& a, const Table2Row& b) {
                       return a.file_index < b.file_index;
                     });
    Table2Report report;
    report.ok = true;
    report.rows = std::move(rows);
    render_table2(report, opts.format, out);
    return 0;
  }

  // Batch report mode: merge the shard payloads into the slots the cache
  // hits did not already fill.
  for (const std::string& payload : payloads) {
    std::string error;
    if (!merge_batch_payload(payload, n, slots, filled, fail_index,
                             fail_error, error)) {
      err << "tmg: " << error << "\n";
      return 2;
    }
  }
  if (!fail_error.empty()) {
    err << fail_error;
    return 2;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!filled[i]) {
      err << "tmg: shard payload missing file " << opts.inputs[i] << "\n";
      return 2;
    }
    slots[i].path = opts.inputs[i];
  }
  for (const std::size_t i : work)
    cache.store(sources[i], opts.pipeline, slots[i].result, err);
  render_batch_report(slots, opts.pipeline, opts.format, opts.with_stages,
                      out);
  return 0;
}

}  // namespace tmg::driver

#endif  // !_WIN32
