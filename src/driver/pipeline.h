// End-to-end pipeline: mini-C source -> CFG -> partition -> transition
// system -> per-segment BCET/WCET bounds via bounded model checking.
//
// This is the orchestration layer the paper describes as the tool chain:
// the frontend compiles the source, the partitioner cuts each function's
// CFG into program segments at a path bound b, and every structural path
// through every segment is checked for feasibility with the BMC engine
// (infeasible paths are excluded from the timing model, exactly as the
// untimed-model-checker approach of Barreto et al. prunes them). Costs are
// assigned by a simple target cost model: a fixed cost per statement and
// decision plus the `__cost(N)` cycle annotation of extern leaf calls.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bmc/bmc.h"
#include "core/partition.h"
#include "opt/passes.h"
#include "support/path_count.h"

namespace tmg::driver {

/// Cycle-cost model used to weigh a control path. The paper measures real
/// hardware; this reproduction prices the generated code shape instead:
/// straight-line statements and decisions cost a fixed amount, extern leaf
/// calls cost their `__cost(N)` annotation.
struct CostModel {
  std::int64_t stmt_cost = 1;
  std::int64_t decision_cost = 1;
  /// Used for extern calls without a `__cost` annotation (AST default 0
  /// means "use the target cost model's default external call cost").
  std::int64_t default_call_cost = 10;

  /// Cost of executing one basic block once.
  [[nodiscard]] std::int64_t block_cost(const cfg::BasicBlock& b) const;
};

struct PipelineOptions {
  /// The partitioner's path bound b (Table 1's knob).
  std::uint64_t path_bound = 4;
  /// Only analyse this function (empty = all functions).
  std::string function;
  /// Restrict the run to this subset of function names (empty = no
  /// restriction; combines with `function` by intersection). The shard
  /// fabric uses this to split a big file into per-function work units:
  /// per-function timing models are fully independent, so analysing a
  /// subset produces byte-identical FunctionTiming entries to a whole-file
  /// run, and the fabric's merge concatenates them back in program order.
  std::vector<std::string> functions;
  /// Check per-path feasibility with the BMC engine. When off, every
  /// structural path is assumed feasible (pure static model).
  bool run_bmc = true;
  /// Worker threads for the analysis engine fanning out the per-path BMC
  /// checks (0 = hardware concurrency). Reports are byte-identical for
  /// every value; only wall-clock changes.
  unsigned jobs = 0;
  /// Replay each feasible path's BMC witness through the concrete
  /// interpreter and cross-check that the run takes the claimed path
  /// (closes the paper's test-data loop).
  bool validate_witnesses = true;
  /// Cap on enumerated paths per segment; segments with more paths report
  /// a truncated (still sound for the enumerated subset) model.
  std::size_t max_paths_per_segment = 64;
  /// Hard cap on the BMC unroll depth estimated for loops.
  std::uint32_t max_unroll_depth = 2048;
  /// Forwarded to the translator (paper's 16-bit-everything default).
  bool pessimistic_widths = false;
  /// Section 3.2 optimisation passes applied to each function's transition
  /// system between translation and BMC (empty = unoptimised baseline).
  /// Passes preserve decision traces and per-path feasibility; they only
  /// shrink the encoding, so the timing model is unchanged.
  std::vector<opt::Pass> opt_passes;
  /// Answer per-function queries through a warm bmc::Session per
  /// (worker, function) instead of a fresh solver per query. Reports are
  /// byte-identical either way (Session's determinism contract); only
  /// wall-clock changes. Automatically disabled when a finite
  /// bmc.conflict_budget is set — budget-limited verdicts may depend on
  /// learned clauses, which would break the determinism guarantee.
  bool use_sessions = true;
  /// Per-segment program slicing: solve each feasibility query against a
  /// backward slice of the transition system keeping only the decisions
  /// that can reach the query's anchor (plus the variables feeding their
  /// guards). The timing model stays byte-identical with slicing on or
  /// off — witnesses are expanded back to the full system and decision
  /// traces replayed against it; only encoding metrics (CNF sizes,
  /// solver effort) shrink. Automatically inert when the unroll depth is
  /// incomplete, witness minimisation is off, or a finite conflict budget
  /// is set (the byte-identity argument needs all three).
  bool slice = true;
  bmc::BmcOptions bmc;
  CostModel cost;
};

/// Feasibility of one enumerated segment path.
enum class PathVerdict : std::uint8_t {
  Feasible,    // BMC found test data driving execution through the path
  Infeasible,  // UNSAT: no input reaches the segment along this path
  Unknown,     // budget exhausted / loop-revisited decision / BMC disabled
};

/// Outcome of replaying a feasible path's BMC witness concretely.
enum class WitnessReplay : std::uint8_t {
  NotChecked,  // no witness (no SAT model needed) or validation disabled
  Validated,   // the concrete run takes the claimed path
  Mismatch,    // the concrete run diverges (e.g. free uninitialised state)
};

/// One enumerated path through a segment with its price.
struct PathTiming {
  std::vector<cfg::BlockId> blocks;
  std::int64_t cost = 0;
  PathVerdict verdict = PathVerdict::Unknown;
  /// BMC witness: value per transition-system variable at step 0 (empty
  /// when feasibility needed no SAT model). Input variables are the test
  /// datum driving execution through the path.
  std::vector<std::int64_t> witness;
  /// Per-iteration decision trace of the witness run (the decisions the
  /// deterministic replay of `witness` takes, whole execution, in order).
  /// Empty when there is no witness. Interpreter replay must reproduce it
  /// exactly; for region paths it must contain the path's own decision
  /// schedule as a consecutive subsequence.
  std::vector<cfg::EdgeRef> decision_trace;
  WitnessReplay replay = WitnessReplay::NotChecked;
};

/// Timing-model row for one program segment.
struct SegmentTiming {
  std::uint32_t id = 0;
  core::SegmentKind kind = core::SegmentKind::Block;
  bool whole_function = false;
  std::size_t num_blocks = 0;
  PathCount structural_paths;
  bool enumeration_complete = true;

  std::vector<PathTiming> paths;
  std::size_t feasible = 0;
  std::size_t infeasible = 0;
  std::size_t unknown = 0;

  /// Witness-replay cross-check tallies over the feasible paths.
  std::size_t validated = 0;
  std::size_t mismatched = 0;

  /// Bounds over feasible (and unknown, conservatively) paths. Zero when
  /// the segment is dead code (no feasible path).
  std::int64_t bcet = 0;
  std::int64_t wcet = 0;

  double bmc_seconds = 0.0;
  std::uint64_t max_cnf_vars = 0;
  std::uint64_t max_cnf_clauses = 0;

  /// SAT solver effort summed over this segment's queries (computing
  /// worker only — cache hits add nothing, mirroring bmc_seconds). With
  /// warm sessions the split depends on job arrival order, so these are
  /// --stats/bench diagnostics, never part of the deterministic report.
  std::uint64_t solver_decisions = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_conflicts = 0;
  std::uint64_t solver_restarts = 0;

  [[nodiscard]] bool dead() const { return feasible + unknown == 0; }
  /// Every enumerated path got a definite verdict and the enumeration was
  /// complete: the reported BCET/WCET are exact (not conservative bounds).
  [[nodiscard]] bool conclusive() const {
    return enumeration_complete && unknown == 0;
  }
};

/// Wall-clock seconds spent in one pipeline stage.
struct StageStats {
  std::string name;
  double seconds = 0.0;
};

/// The complete timing model of one function.
struct FunctionTiming {
  std::string name;
  std::size_t blocks = 0;
  std::size_t decisions = 0;
  PathCount function_paths;

  std::uint64_t instrumentation_points = 0;
  std::uint64_t fused_points = 0;
  PathCount measurements;

  int state_bits = 0;
  std::uint32_t locations = 0;
  std::size_t transitions = 0;
  std::uint32_t unroll_depth = 0;

  /// Pre-optimisation encoding metrics (equal to the post values when no
  /// passes ran) and the per-pass reports, in execution order.
  int state_bits_before = 0;
  std::uint32_t locations_before = 0;
  std::size_t transitions_before = 0;
  std::vector<opt::PassReport> pass_reports;

  std::vector<SegmentTiming> segments;
  std::vector<StageStats> stages;

  /// Per-function totals over all segments.
  [[nodiscard]] std::int64_t wcet_total() const;
  [[nodiscard]] std::int64_t bcet_total() const;
  /// All segments conclusive: the function's timing model is exact.
  [[nodiscard]] bool conclusive() const;
};

struct PipelineResult {
  bool ok = false;
  /// Frontend diagnostics / partition-validation failure when !ok.
  std::string error;
  std::vector<FunctionTiming> functions;
  /// Program-level stages (frontend, analysis = parallel engine wall).
  std::vector<StageStats> stages;
  /// Independent per-path feasibility jobs dispatched to the engine.
  std::size_t analysis_jobs = 0;
  /// Workers the engine actually used for this run.
  unsigned analysis_workers = 1;
};

/// Runs the whole pipeline over one translation unit. The serial front
/// half (frontend, CFG, partition, translation, path enumeration) builds a
/// graph of independent per-(function, segment, path) feasibility jobs;
/// execution is delegated to engine::Scheduler and the results are merged
/// back in job order, so output is identical for any worker count.
class Pipeline {
 public:
  explicit Pipeline(PipelineOptions opts = {}) : opts_(std::move(opts)) {}

  [[nodiscard]] PipelineResult run(std::string_view source) const;

  [[nodiscard]] const PipelineOptions& options() const { return opts_; }

 private:
  PipelineOptions opts_;
};

/// One analysed input of a batch run.
struct BatchEntry {
  std::string path;
  PipelineResult result;
};

/// Result of one multi-file batch run over the global job frontier.
struct BatchResult {
  bool ok = false;
  /// "<file>: <error>" of the first failing file in input order ("<error>"
  /// when no file names were given).
  std::string error;
  /// Input index of the failing file behind `error` (shard merge needs it
  /// to pick the globally-first failure across shards).
  std::size_t error_index = 0;
  /// One entry per input, in input order; per-file results are
  /// byte-identical to a sequential Pipeline::run on the same source.
  std::vector<BatchEntry> files;
  /// Workers the global frontier actually used.
  unsigned workers = 1;
};

/// Analyses several translation units on ONE global job frontier: the
/// per-(file, function, segment, path) jobs of all files share the worker
/// pool, so file K+1's frontend and translation overlap file K's BMC.
/// Per-file results are merged deterministically (file order, then job
/// order) — output is byte-identical to running each file alone, for any
/// worker count. `files` names each source for error messages and batch
/// rows (pass {} to omit).
BatchResult run_batch(const std::vector<std::string>& sources,
                      const std::vector<std::string>& files,
                      const PipelineOptions& opts);

/// One row of the Table-1-style partition summary: partitioning the same
/// function at path bound b yields ip instrumentation points (fused_ip
/// distinct physical sites) and m measurement runs.
struct PartitionSummaryRow {
  std::uint64_t bound = 0;
  std::uint64_t ip = 0;
  std::uint64_t fused_ip = 0;
  PathCount m;
  std::size_t segments = 0;
};

/// Partition-only sweep over bounds 1..max_bound (no translation, no BMC):
/// the data behind the paper's Table 1. Fails with a diagnostic string in
/// `error` when the source does not compile.
struct PartitionSummary {
  bool ok = false;
  std::string error;
  std::string function;
  std::vector<PartitionSummaryRow> rows;
};

PartitionSummary partition_summary(std::string_view source,
                                   std::uint64_t max_bound,
                                   std::string_view function = {});

/// One row of the Table-2-style before/after comparison: the same function
/// analysed without and with the Section 3.2 optimisation passes.
struct Table2Row {
  std::string file;  // empty outside batch mode
  /// Input index of `file` (stable row ordering across the shard merge).
  std::size_t file_index = 0;
  std::string function;
  int bits_plain = 0, bits_opt = 0;
  std::uint32_t locs_plain = 0, locs_opt = 0;
  std::size_t trans_plain = 0, trans_opt = 0;
  std::uint32_t depth_plain = 0, depth_opt = 0;
  /// Summed per-segment solver time (CPU seconds over all BMC queries).
  double bmc_seconds_plain = 0.0, bmc_seconds_opt = 0.0;
  /// Largest CNF seen by any query — the solver memory proxy.
  std::uint64_t cnf_clauses_plain = 0, cnf_clauses_opt = 0;
  /// Every segment of the function reported a definite (exact) timing
  /// model — the per-iteration decision-schedule encoding resolved all
  /// loop paths (no Unknown verdicts, complete enumeration).
  bool conclusive_plain = false, conclusive_opt = false;
  /// The optimised run produced a byte-identical segment timing model
  /// (same BCET/WCET, verdicts and replay tallies for every segment).
  bool model_identical = false;
  /// Per-pass reports of the optimised run, in execution order: the
  /// per-pass bits/transitions/depth deltas behind the extended --table2
  /// columns.
  std::vector<opt::PassReport> passes;
};

/// Result of the `--table2` mode over one or more inputs: every input is
/// analysed twice (baseline and optimised) under otherwise identical
/// options and compared function by function.
struct Table2Report {
  bool ok = false;
  std::string error;  // names the failing file in batch mode
  /// Input index of the failing file behind `error`.
  std::size_t error_index = 0;
  std::vector<Table2Row> rows;

  /// All rows produced byte-identical timing models.
  [[nodiscard]] bool all_identical() const;
};

/// Runs the before/after comparison. `opts.opt_passes` selects the passes
/// for the optimised run (all_passes() when empty); the baseline run
/// always has them cleared. `files` names each source for batch rows
/// (pass {} for single-input mode).
Table2Report table2_compare(const std::vector<std::string>& sources,
                            const std::vector<std::string>& files,
                            const PipelineOptions& opts);

/// The two option sets --table2 compares: baseline (passes cleared) and
/// optimised (all_passes() when `opts` selected none).
std::pair<PipelineOptions, PipelineOptions> table2_option_pair(
    const PipelineOptions& opts);

/// Assembles the comparison rows from the two finished halves (also used
/// by the cached --table2 path, which runs each half through the result
/// cache). Propagates the first half's error when either batch failed.
Table2Report table2_assemble(const BatchResult& plain,
                             const BatchResult& optimised,
                             const std::vector<std::string>& files);

}  // namespace tmg::driver
