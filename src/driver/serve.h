// `tmg serve` / `tmg client`: a long-lived analysis daemon on a unix
// domain socket and/or a TCP listener. The daemon keeps one in-process
// ResultCache (and, within each request, the warm per-worker bmc::Session
// pool) across requests, so resubmitting a file is answered from cache
// without re-solving.
//
// Concurrency: the calling thread owns the listeners (poll over every
// bound socket); each accepted connection is pushed as a job onto a
// held-open engine::Frontier worker pool (`--serve-workers`), so a slow
// analysis never blocks cache hits or `metrics` requests on other
// connections. Responses are byte-identical to the serial daemon: request
// handling is a pure function of (payload, cache) and each connection's
// response is computed and sent entirely by one worker.
//
// Wire: one JSON request per connection, one JSON response back. The
// client half-closes its write side after sending (EOF framing — no
// length prefixes), reads the response until EOF and renders LOCALLY with
// the normal report renderers over the shard wire reports, which is what
// makes `tmg client` output byte-identical to the equivalent CLI run.
// Requests larger than `--max-request-mb` receive an in-band error
// response instead of unbounded buffering.
//
// Request:  {"v":1,"cmd":"analyze","options":{...},
//            "files":[{"name":"b2.mc","source":"..."}]}
//       or  {"v":1,"cmd":"shutdown"}
//       or  {"v":1,"cmd":"metrics"}
// Response: {"ok":true,"files":[{"index":0,"report":{...}}]}
//       or  {"ok":true,"metrics":{"uptime_seconds":...,"requests":N,
//            "cache":{...},"registry":{"counters":{...},"histograms":{...}}}}
//       or  {"ok":false,"error":"...","index":N}
//
// POSIX only (unix/TCP sockets); on _WIN32 both entry points fail cleanly.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "driver/cache.h"
#include "driver/cli.h"

namespace tmg::driver {

/// Test seams for the daemon loop. `on_listening` fires once per bound
/// transport ("unix" or "tcp") with the actual endpoint — for TCP that is
/// the resolved host:port, so a test binding port 0 learns the ephemeral
/// port the kernel picked.
struct ServeHooks {
  std::function<void(const std::string& transport,
                     const std::string& endpoint)>
      on_listening;
};

/// Daemon: bind `opts.socket_path` and/or `opts.listen_addr`, serve
/// requests concurrently until a shutdown command arrives. Returns the
/// process exit code: 0 after a clean shutdown, nonzero when the loop
/// dies of a fatal accept/listen error (EMFILE is not success).
int run_serve(const CliOptions& opts, std::ostream& out, std::ostream& err,
              const ServeHooks& hooks = {});

/// Client: submit `sources` (named by opts.inputs) — or a shutdown
/// request under opts.client_shutdown — over the unix socket
/// (opts.socket_path) or TCP (opts.connect_addr) and render the response.
int run_client(const CliOptions& opts,
               const std::vector<std::string>& sources, std::ostream& out,
               std::ostream& err);

// ------------------------------------------------------------------ wire
// Exposed for tests: both protocol halves minus the socket I/O.

std::string serialize_serve_request(const PipelineOptions& opts,
                                    const std::vector<std::string>& names,
                                    const std::vector<std::string>& sources);
std::string serialize_shutdown_request();
std::string serialize_metrics_request();

/// Handles one request payload against the daemon's cache. Sets
/// `shutdown` when the payload asks the daemon to exit. `uptime_seconds`
/// feeds the `metrics` response (the socket loop passes time since bind;
/// unit tests may leave it 0). Thread-safe: the cache is internally
/// locked and `warn` is only written by the calling thread's request.
std::string handle_serve_request(const std::string& payload,
                                 ResultCache& cache, std::ostream& warn,
                                 bool& shutdown, double uptime_seconds = 0.0);

/// Parses an analyze response into per-file reports (request order).
/// Returns false with `error` set on protocol errors or an in-band
/// failure.
bool parse_serve_response(const std::string& payload, std::size_t num_files,
                          std::vector<PipelineResult>& reports,
                          std::string& error);

/// accept(2) errno classification for the daemon loop (exposed for
/// tests): transient errors (EINTR, ECONNABORTED, EAGAIN) are retried,
/// anything else — EMFILE, ENFILE, EBADF, ENOMEM — is fatal and the
/// daemon exits nonzero instead of reporting success.
bool accept_errno_is_transient(int err);

/// Splits "HOST:PORT" (the last ':' separates the port, so IPv6 literals
/// like "::1:8080" parse). Returns false when either half is empty.
bool split_host_port(const std::string& addr, std::string& host,
                     std::string& port);

}  // namespace tmg::driver
