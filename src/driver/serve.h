// `tmg serve` / `tmg client`: a long-lived analysis daemon on a unix
// domain socket. The daemon keeps one in-process ResultCache (and, within
// each request, the warm per-worker bmc::Session pool) across requests,
// so resubmitting a file is answered from cache without re-solving.
//
// Wire: one JSON request per connection, one JSON response back. The
// client half-closes its write side after sending (EOF framing — no
// length prefixes), reads the response until EOF and renders LOCALLY with
// the normal report renderers over the shard wire reports, which is what
// makes `tmg client` output byte-identical to the equivalent CLI run.
//
// Request:  {"v":1,"cmd":"analyze","options":{...},
//            "files":[{"name":"b2.mc","source":"..."}]}
//       or  {"v":1,"cmd":"shutdown"}
//       or  {"v":1,"cmd":"metrics"}
// Response: {"ok":true,"files":[{"index":0,"report":{...}}]}
//       or  {"ok":true,"metrics":{"uptime_seconds":...,"requests":N,
//            "cache":{...},"registry":{"counters":{...},"histograms":{...}}}}
//       or  {"ok":false,"error":"...","index":N}
//
// POSIX only (unix sockets); on _WIN32 both entry points fail cleanly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "driver/cache.h"
#include "driver/cli.h"

namespace tmg::driver {

/// Daemon: bind `opts.socket_path`, serve requests until a shutdown
/// command arrives. Returns the process exit code.
int run_serve(const CliOptions& opts, std::ostream& out, std::ostream& err);

/// Client: submit `sources` (named by opts.inputs) — or a shutdown
/// request under opts.client_shutdown — and render the response.
int run_client(const CliOptions& opts,
               const std::vector<std::string>& sources, std::ostream& out,
               std::ostream& err);

// ------------------------------------------------------------------ wire
// Exposed for tests: both protocol halves minus the socket I/O.

std::string serialize_serve_request(const PipelineOptions& opts,
                                    const std::vector<std::string>& names,
                                    const std::vector<std::string>& sources);
std::string serialize_shutdown_request();
std::string serialize_metrics_request();

/// Handles one request payload against the daemon's cache. Sets
/// `shutdown` when the payload asks the daemon to exit. `uptime_seconds`
/// feeds the `metrics` response (the socket loop passes time since bind;
/// unit tests may leave it 0).
std::string handle_serve_request(const std::string& payload,
                                 ResultCache& cache, std::ostream& warn,
                                 bool& shutdown, double uptime_seconds = 0.0);

/// Parses an analyze response into per-file reports (request order).
/// Returns false with `error` set on protocol errors or an in-band
/// failure.
bool parse_serve_response(const std::string& payload, std::size_t num_files,
                          std::vector<PipelineResult>& reports,
                          std::string& error);

}  // namespace tmg::driver
