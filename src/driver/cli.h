// Command-line front door of the `tmg` pipeline driver, split from main()
// so tests can drive it with in-memory streams.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "driver/cache.h"
#include "driver/pipeline.h"
#include "driver/report.h"
#include "engine/bench.h"

namespace tmg::driver {

/// Everything `tmg` accepts on the command line.
struct CliOptions {
  /// Input files in command-line order; more than one selects batch mode
  /// (per-file reports plus an aggregate summary).
  std::vector<std::string> inputs;
  PipelineOptions pipeline;
  ReportFormat format = ReportFormat::Text;
  bool with_stages = false;
  /// --table1[=N]: print the Table-1-style partition summary for bounds
  /// 1..N instead of the timing model (0 = mode off).
  std::uint64_t table1_max_bound = 0;
  /// --bench[=R]: run every input R times serially, R times on the worker
  /// pool and R times optimised on the pool, then emit the JSON perf
  /// report (0 = mode off).
  unsigned bench_repeats = 0;
  /// --table2: analyse every input with and without the Section 3.2
  /// passes and print the before/after comparison.
  bool table2 = false;
  /// --shards=N: split the input files over N forked worker processes
  /// (memory isolation; each shard runs its own job frontier) and merge
  /// the streamed per-file results deterministically. 1 = in-process.
  unsigned shards = 1;
  /// --corpus=DIR: crawl DIR recursively for .mc/.c sources and analyse
  /// every one, streaming a thin per-file row plus one aggregate instead
  /// of full reports; rides the result cache and the shard fabric.
  std::string corpus_dir;
  /// --checkpoint=FILE (corpus only): progress journal, rewritten via
  /// temp+rename after every completed file; a rerun replays rows whose
  /// recorded source hash still matches and analyses only the rest.
  std::string checkpoint_file;
  /// --cache-dir=PATH: persistent result cache; empty = caching off.
  std::string cache_dir;
  /// --cache=off|ro|rw (default rw once --cache-dir is given).
  CacheMode cache_mode = CacheMode::ReadWrite;
  /// --cache-max-mb=N: LRU-by-mtime eviction cap on the cache directory
  /// in bytes (0 = unbounded). Swept after every store.
  std::uint64_t cache_max_bytes = 0;
  /// `tmg serve` / `tmg client` subcommands (unix/TCP daemon).
  bool serve = false;
  bool client = false;
  /// `tmg client --socket=... --shutdown`: stop the daemon.
  bool client_shutdown = false;
  /// `tmg client --socket=... --metrics`: poll the daemon's metrics
  /// snapshot (uptime, request counts, cache/solver aggregates).
  bool client_metrics = false;
  /// --socket=PATH: unix socket for serve/client.
  std::string socket_path;
  /// --listen=HOST:PORT (serve): TCP listener, alongside or instead of
  /// --socket. Port 0 binds an ephemeral port (printed on startup).
  std::string listen_addr;
  /// --connect=HOST:PORT (client): TCP instead of the unix socket.
  std::string connect_addr;
  /// --serve-workers=N (serve): connection worker pool size; 0 selects
  /// hardware_concurrency().
  unsigned serve_workers = 0;
  /// --max-request-mb=N (serve): per-connection request size cap; an
  /// oversized request gets an in-band error instead of unbounded reads.
  std::size_t max_request_bytes = 64ull << 20;
  /// --trace=FILE: write a Chrome/Perfetto trace-event JSON file covering
  /// pipeline stages, scheduler jobs, BMC queries and cache lookups
  /// (stitched across --jobs threads and --shards children).
  std::string trace_file;
  /// --progress: stderr heartbeat (files done/total, paths solved, cache
  /// hits); never touches the deterministic report streams.
  bool progress = false;
  bool dump_dot = false;
  bool dump_sal = false;
  bool show_help = false;
};

/// Parses argv (excluding argv[0]). Returns false (with a message in
/// `error`) on malformed input.
bool parse_cli(const std::vector<std::string>& args, CliOptions& out,
               std::string& error);

/// Usage text.
std::string cli_usage();

/// Benchmark measurement for one set of inputs (the computation half of
/// `--bench`; rendering is separate so shard children can stream rows to
/// the parent). Runs every file R times serially, R times on the pool and
/// R times optimised, then the whole set R times on one global frontier;
/// best-of wall clocks fill `files` (input order) and `batch_seconds`.
/// Returns false with a file-prefixed `error` and the failing input's
/// index on pipeline failure.
bool bench_files(const CliOptions& opts,
                 const std::vector<std::string>& paths,
                 const std::vector<std::string>& sources,
                 std::vector<engine::BenchFile>& files,
                 double& batch_seconds, std::string& error,
                 std::size_t& error_index);

/// Runs the whole CLI: parse args, read the files, run the pipeline (batch
/// mode for several inputs, bench mode under --bench), render.
/// Exit codes: 0 success, 1 usage error, 2 input/pipeline failure.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace tmg::driver
