// Fault-tolerant work-queue sharding: the parent keeps a queue of work
// units (whole files, split into per-function units for big files), a
// fixed pool of long-lived forked workers pulls units over a
// request/response pipe protocol, and completed units land in
// deterministic per-file merge slots — so the rendered report is
// byte-identical to an in-process run for every pool size and any crash
// schedule.
//
// Crash recovery is the point: when a worker dies mid-unit (signal,
// nonzero exit, torn or garbage response frame), the unit is retried on a
// fresh worker at finer granularity — a whole-file unit is split into
// per-function units first, a function unit is retried as-is, and only
// after kMaxAttempts failures is the unit hard-failed with a diagnostic
// (the run still completes and exits 0; the failed file gets an error row
// in the report instead of aborting everything, unlike the old
// round-robin shards).
//
// Scheduling is size-aware: a cheap parent-side pre-parse (frontend +
// CFG + path analysis, no translation, no BMC) estimates each file's
// work as the sum of per-function log2 path counts; units are dispatched
// biggest-first so a heavy file cannot become the tail of the run, and
// files whose estimate dominates the mean are split into per-function
// units up-front. The pre-parse also short-circuits frontend failures in
// the parent — files that do not compile never reach a worker, and their
// diagnostics are byte-identical to the in-process run's.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "driver/pipeline.h"

namespace tmg::driver {

/// Fabric run counters, mirrored into the metrics registry
/// (fabric.units, fabric.retries, ...) and the `--stats` stderr line.
struct FabricStats {
  std::size_t units = 0;       ///< work units created (incl. crash splits)
  std::size_t dispatches = 0;  ///< unit->worker sends (first tries + retries)
  std::size_t retries = 0;     ///< re-dispatches caused by worker crashes
  std::size_t splits = 0;      ///< file units split into per-function units
  std::size_t crashes = 0;     ///< worker deaths observed
  std::size_t hard_failures = 0;  ///< units failed after exhausting retries
};

struct FabricOptions {
  /// Worker processes (clamped to the number of initial units).
  unsigned pool = 1;
  /// Split a file into per-function units up-front when it has more than
  /// one function and its pre-parse estimate is at least this multiple of
  /// the mean estimate (<= 0 splits every multi-function file; crashes
  /// split lazily regardless of this knob).
  double split_factor = 2.0;
  /// Attempts per unit at the finest granularity before hard-failing it.
  unsigned max_attempts = 3;
};

/// Environment variable of the crash-injection hook (tests and the CI
/// smoke job): "kind:match[:max_attempt]" with kind in {kill, exit3,
/// garbage, truncate}. A worker triggers the fault when `match` is a
/// substring of the unit's "path#functions" tag and the unit's attempt
/// number is <= max_attempt (default 1 — first attempt only, so the
/// retry succeeds).
inline constexpr const char* kFabricFaultEnv = "TMG_FABRIC_FAULT";

/// Runs every unfilled `results` slot (cache hits are pre-filled by the
/// caller and never reach a worker) through the worker pool.
///
/// On return, every slot is either:
///  * filled with a PipelineResult (ok or an in-band pipeline failure
///    whose bytes match the in-process run), or
///  * left empty with `crash_errors[i]` holding the hard-failure
///    diagnostic of a unit that crashed kMaxAttempts times.
///
/// `on_file_done(i)` fires once per newly resolved slot (corpus mode
/// streams rows and checkpoints from it; pass {} to ignore).
///
/// Returns false when process isolation is unavailable on this platform
/// (no fork) — the caller falls back to the in-process path.
bool run_fabric(const PipelineOptions& popts,
                const std::vector<std::string>& sources,
                const std::vector<std::string>& paths,
                const FabricOptions& fopts,
                std::vector<std::optional<PipelineResult>>& results,
                std::vector<std::string>& crash_errors, FabricStats& stats,
                std::ostream& err,
                const std::function<void(std::size_t)>& on_file_done = {});

}  // namespace tmg::driver
