#include "driver/pipeline.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <optional>

#include "bmc/session.h"
#include "cfg/paths.h"
#include "cfg/structure.h"
#include "engine/once_cache.h"
#include "engine/scheduler.h"
#include "engine/session_pool.h"
#include "minic/frontend.h"
#include "opt/slice.h"
#include "support/trace.h"
#include "testgen/interp.h"
#include "tsys/translate.h"

namespace tmg::driver {

namespace {

using cfg::BlockId;
using cfg::EdgeRef;

class StageTimer {
 public:
  explicit StageTimer(std::vector<StageStats>& out, std::string name)
      : out_(out), name_(std::move(name)), span_(name_, "stage"),
        start_(engine::monotonic_seconds()) {}
  ~StageTimer() {
    const double seconds = engine::monotonic_seconds() - start_;
    trace::MetricsRegistry::instance()
        .histogram("stage." + name_)
        .observe(seconds * 1e6);
    out_.push_back(StageStats{std::move(name_), seconds});
  }

 private:
  std::vector<StageStats>& out_;
  std::string name_;
  trace::TraceSpan span_;
  double start_;
};

/// Cost of the extern calls inside one expression tree.
std::int64_t call_costs(const minic::Expr& e, const CostModel& cm) {
  std::int64_t total = 0;
  if (e.kind == minic::ExprKind::Call && e.sym != nullptr)
    total += e.sym->call_cost > 0 ? e.sym->call_cost : cm.default_call_cost;
  for (const auto& child : e.children)
    if (child) total += call_costs(*child, cm);
  return total;
}

/// Worst-case transitions executed through one arm / construct; drives the
/// BMC unroll depth for functions with (bounded) loops. Over-approximates:
/// a block is priced at stmts + 2 transitions.
std::uint64_t arm_weight(const cfg::Cfg& g, const cfg::Arm& arm);

std::uint64_t construct_weight(const cfg::Cfg& g, const cfg::Construct& c) {
  std::uint64_t arms_max = 0;
  std::uint64_t arms_sum = 0;
  for (const cfg::Arm& a : c.arms) {
    const std::uint64_t w = arm_weight(g, a);
    arms_max = std::max(arms_max, w);
    arms_sum += w;
  }
  switch (c.kind) {
    case cfg::ConstructKind::If:
      return 1 + arms_max;
    case cfg::ConstructKind::Switch:
      // Fallthrough can chain case arms; price the sum to stay safe.
      return 1 + (c.has_fallthrough ? arms_sum : arms_max);
    case cfg::ConstructKind::While: {
      const std::uint64_t b = c.loop_bound.value_or(1);
      return (b + 1) + b * arms_max;
    }
    case cfg::ConstructKind::DoWhile: {
      const std::uint64_t b =
          std::max<std::uint64_t>(c.loop_bound.value_or(1), 1);
      return b + b * arms_max;
    }
  }
  return 1 + arms_max;
}

std::uint64_t arm_weight(const cfg::Cfg& g, const cfg::Arm& arm) {
  std::uint64_t total = 0;
  for (const cfg::ArmItem& item : arm.items) {
    if (item.is_block())
      total += g.block(item.block).stmts.size() + 2;
    else
      total += construct_weight(g, *item.construct);
  }
  return total;
}

/// Locations whose outgoing transitions originate in each block: the
/// per-execution step price of that block in the *current* transition
/// system. After StatementConcat a block's whole statement chain may cost
/// one step (or zero, fully absorbed); pricing blocks this way lets the
/// unroll depth shrink with the optimised system instead of re-pricing
/// the source-level statement count. A location with mixed origins (the
/// translation never produces one, but passes are free to) is counted
/// under each origin — an over-approximation, never an undercut.
std::vector<std::uint64_t> block_steps(const cfg::Cfg& g,
                                       const tsys::TransitionSystem& ts) {
  std::vector<std::uint64_t> per(g.size(), 0);
  std::vector<std::vector<cfg::BlockId>> seen(ts.num_locs);
  for (const tsys::Transition& t : ts.transitions) {
    std::vector<cfg::BlockId>& s = seen[t.from];
    if (std::find(s.begin(), s.end(), t.origin_block) != s.end()) continue;
    s.push_back(t.origin_block);
    if (t.origin_block < per.size()) ++per[t.origin_block];
  }
  return per;
}

std::uint64_t arm_weight_ts(const cfg::Cfg& g, const cfg::Arm& arm,
                            const std::vector<std::uint64_t>& per);

std::uint64_t construct_weight_ts(const cfg::Cfg& g,
                                  const cfg::Construct& c,
                                  const std::vector<std::uint64_t>& per) {
  std::uint64_t arms_max = 0;
  std::uint64_t arms_sum = 0;
  for (const cfg::Arm& a : c.arms) {
    const std::uint64_t w = arm_weight_ts(g, a, per);
    arms_max = std::max(arms_max, w);
    arms_sum += w;
  }
  const std::uint64_t dec = per[c.decision];
  switch (c.kind) {
    case cfg::ConstructKind::If:
      return dec + arms_max;
    case cfg::ConstructKind::Switch:
      // Fallthrough can chain case arms; price the sum to stay safe.
      return dec + (c.has_fallthrough ? arms_sum : arms_max);
    case cfg::ConstructKind::While: {
      const std::uint64_t b = c.loop_bound.value_or(1);
      return (b + 1) * dec + b * arms_max;
    }
    case cfg::ConstructKind::DoWhile: {
      const std::uint64_t b =
          std::max<std::uint64_t>(c.loop_bound.value_or(1), 1);
      return b * dec + b * arms_max;
    }
  }
  return dec + arms_max;
}

std::uint64_t arm_weight_ts(const cfg::Cfg& g, const cfg::Arm& arm,
                            const std::vector<std::uint64_t>& per) {
  std::uint64_t total = 0;
  for (const cfg::ArmItem& item : arm.items) {
    if (item.is_block())
      total += per[item.block];
    else
      total += construct_weight_ts(g, *item.construct, per);
  }
  return total;
}

/// The unroll depth that provably covers every terminating run. With a
/// transition system (`ts_aware`), the loop body is priced from the
/// optimised system's per-block step counts; otherwise the legacy
/// statement-count pricing is used verbatim, keeping unoptimised runs
/// byte-stable against earlier releases.
std::uint64_t required_depth(const cfg::FunctionCfg& f,
                             const tsys::TransitionSystem& ts,
                             bool has_back_edge, bool ts_aware) {
  const std::uint64_t floor = ts.num_locs + 1;
  if (!has_back_edge) return floor;
  const std::uint64_t body =
      ts_aware ? arm_weight_ts(f.graph, f.body, block_steps(f.graph, ts))
               : arm_weight(f.graph, f.body);
  return std::max<std::uint64_t>(body + 2, floor);
}

/// Result slot of one analysis job. Everything except `bmc_seconds` is a
/// pure function of the query (bmc.h's concurrency contract), so the merged
/// report cannot depend on which worker ran the job or in what order.
struct PathJobResult {
  PathVerdict verdict = PathVerdict::Unknown;
  std::vector<std::int64_t> witness;
  std::vector<cfg::EdgeRef> decision_trace;
  double bmc_seconds = 0.0;
  std::uint64_t max_cnf_vars = 0;
  std::uint64_t max_cnf_clauses = 0;
  /// Solver effort, attributed (like bmc_seconds) to the worker that
  /// actually solved — cache hits contribute nothing.
  std::uint64_t solver_decisions = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_conflicts = 0;
  std::uint64_t solver_restarts = 0;
};

/// A memoised query outcome; re-applied verbatim on every hit. Pure
/// function of the query (bmc.h's determinism contract), which is what
/// lets workers share cached entries without affecting the merged report.
struct CachedQuery {
  PathVerdict verdict = PathVerdict::Unknown;
  std::vector<std::int64_t> witness;
  std::vector<cfg::EdgeRef> decision_trace;
  std::uint64_t cnf_vars = 0;
  std::uint64_t cnf_clauses = 0;
  /// The per-iteration encoding answered the query (bmc.h).
  bool schedule_realised = false;
};

/// Per-function single-flight store of decision-edge feasibility queries,
/// shared by all workers (block segments at b = 1 probe many edges; one
/// SAT call per edge across the whole pool).
using EdgeCache = engine::OnceCache<std::uint64_t, CachedQuery>;

/// The function's per-query slices, computed serially by the front half
/// and immutable afterwards (workers share it read-only). Slices are
/// deduplicated by content fingerprint, so two queries whose kept
/// decision sets coincide route to the same slice — and, per worker, the
/// same warm session.
struct SliceSet {
  static constexpr std::size_t npos = SIZE_MAX;
  std::vector<opt::SegmentSlice> slices;
  /// Per-slice BMC options: the function's options with max_steps
  /// tightened to the slice's own complete depth.
  std::vector<bmc::BmcOptions> bmc_opts;
  /// Decision BlockId -> slice for that block's edge queries (npos = use
  /// the full system).
  std::vector<std::size_t> of_block;
  /// Segment index -> slice for anchored region schedules.
  std::vector<std::size_t> of_segment;

  [[nodiscard]] std::size_t for_block(BlockId b) const {
    return b < of_block.size() ? of_block[b] : npos;
  }
  [[nodiscard]] std::size_t for_segment(std::size_t si) const {
    return si < of_segment.size() ? of_segment[si] : npos;
  }
};

/// Answers path-feasibility queries against one function's transition
/// system. One oracle instance serves exactly one worker thread of the
/// engine; the only cross-worker sharing is the single-flight EdgeCache
/// (and the read-only CFG / transition system). Cached outcomes —
/// including CNF maxima and witnesses — are byte-identical to a fresh
/// solve, which keeps per-segment statistics independent of how jobs are
/// distributed over workers.
class FeasibilityOracle {
 public:
  /// `depth_complete` says the unroll depth covers every terminating run;
  /// when false (clamped or user-forced below the estimate), UNSAT no
  /// longer proves infeasibility and is downgraded to Unknown.
  /// `use_sessions` answers every query through one warm bmc::Session
  /// instead of a fresh solver per query; reports stay byte-identical
  /// either way (Session's determinism contract, session.h).
  FeasibilityOracle(const cfg::Cfg& g, const tsys::TransitionSystem& ts,
                    bmc::BmcOptions bmc_opts, bool enabled, bool use_sessions,
                    bool depth_complete, EdgeCache& edges,
                    const SliceSet& slices)
      : g_(g), ts_(ts), bmc_opts_(bmc_opts), enabled_(enabled),
        use_sessions_(use_sessions), depth_complete_(depth_complete),
        edges_(edges), slices_(slices),
        slice_sessions_(slices.slices.size()) {}

  /// Feasibility of one enumerated path through a Region segment.
  /// `anchor` is the segment's unique entry edge (nullopt for the
  /// whole-function segment, whose entry is virtual). `seg_index` selects
  /// the segment's slice for anchored schedule queries.
  void check_region_path(const std::vector<EdgeRef>& choices,
                         const std::optional<EdgeRef>& anchor,
                         std::size_t seg_index, PathJobResult& out) {
    reset_pending();
    region_path_inner(choices, anchor, seg_index, out);
    flush_pending(out);
  }

  /// Is the block of a Block segment executed on any input?
  void check_block(BlockId b, PathJobResult& out) {
    reset_pending();
    if (enabled_) apply(block_reachable(b), out);
    flush_pending(out);
  }

 private:
  static void apply(const CachedQuery& q, PathJobResult& out) {
    out.verdict = q.verdict;
    out.witness = q.witness;
    out.decision_trace = q.decision_trace;
    out.max_cnf_vars = std::max(out.max_cnf_vars, q.cnf_vars);
    out.max_cnf_clauses = std::max(out.max_cnf_clauses, q.cnf_clauses);
  }

  void region_path_inner(const std::vector<EdgeRef>& choices,
                         const std::optional<EdgeRef>& anchor,
                         std::size_t seg_index, PathJobResult& out) {
    if (!enabled_) {
      out.verdict = PathVerdict::Unknown;
      return;
    }

    if (!anchor) {
      // Whole function: the path's choices are the complete per-iteration
      // decision trace; the exact schedule encoding decides it even when
      // a loop body branches differently across iterations. Every
      // decision matters to a whole-run schedule, so it never slices.
      if (choices.empty()) {
        out.verdict = PathVerdict::Feasible;  // no SAT model, no witness
        return;
      }
      apply(solve_schedule(choices, /*anchored=*/false, std::nullopt,
                           SliceSet::npos),
            out);
      return;
    }

    if (!choices.empty()) {
      // Region traversal: anchored schedule. The region is single entry,
      // so a firing of the first scheduled decision implies the region was
      // entered; the window constraint asks for SOME traversal taking the
      // scheduled per-iteration outcomes. A decision anchor doubles as the
      // degenerate-policy fallback's must-take edge.
      const bool dec_anchor = g_.block(anchor->from).is_decision();
      const CachedQuery run = solve_schedule(
          choices, /*anchored=*/true,
          dec_anchor ? anchor : std::optional<EdgeRef>(),
          slices_.for_segment(seg_index));
      if (run.schedule_realised || dec_anchor) {
        apply(run, out);
        return;
      }
      // Fallback for a non-decision anchor (do-while bodies) when the
      // walk failed: the unanchored policy run only bounds the answer.
      out.max_cnf_vars = std::max(out.max_cnf_vars, run.cnf_vars);
      out.max_cnf_clauses = std::max(out.max_cnf_clauses, run.cnf_clauses);
      out.verdict = run.verdict == PathVerdict::Infeasible
                        ? PathVerdict::Infeasible
                        : PathVerdict::Unknown;
      return;
    }

    // Decision-free region path: feasibility of entering the region.
    if (g_.block(anchor->from).is_decision()) {
      apply(edge_feasible(*anchor), out);
      return;
    }
    // Entry via a non-decision edge (do-while bodies): entry-block
    // reachability decides the single decision-free traversal.
    const CachedQuery& reach = block_reachable(g_.edge(*anchor).to);
    out.max_cnf_vars = std::max(out.max_cnf_vars, reach.cnf_vars);
    out.max_cnf_clauses = std::max(out.max_cnf_clauses, reach.cnf_clauses);
    out.verdict = reach.verdict;
    if (reach.verdict == PathVerdict::Feasible) {
      out.witness = reach.witness;
      out.decision_trace = reach.decision_trace;
    }
  }

  /// Is `b` executed on any input? Decision edges are answered by the BMC
  /// engine; unconditional edges recurse to their source block. The
  /// recursion only follows forward edges, so it terminates; the
  /// try_emplace placeholder guards the (structurally impossible) cycle.
  const CachedQuery& block_reachable(BlockId b) {
    auto [it, inserted] = reach_memo_.try_emplace(b);
    if (!inserted) return it->second;
    it->second.verdict = PathVerdict::Infeasible;  // cycle guard
    if (b == g_.entry()) {
      it->second.verdict = PathVerdict::Feasible;
      return it->second;
    }

    CachedQuery result;
    result.verdict = PathVerdict::Infeasible;
    bool saw_unknown = false;
    for (BlockId p : g_.preds()[b]) {
      const cfg::BasicBlock& pred = g_.block(p);
      for (std::uint32_t i = 0; i < pred.succs.size(); ++i) {
        if (pred.succs[i].to != b || pred.succs[i].back) continue;
        const CachedQuery sub = pred.is_decision() ? edge_feasible(EdgeRef{p, i})
                                               : block_reachable(p);
        result.cnf_vars = std::max(result.cnf_vars, sub.cnf_vars);
        result.cnf_clauses = std::max(result.cnf_clauses, sub.cnf_clauses);
        if (sub.verdict == PathVerdict::Feasible) {
          result.verdict = PathVerdict::Feasible;
          result.witness = sub.witness;
          break;
        }
        if (sub.verdict == PathVerdict::Unknown) saw_unknown = true;
      }
      if (result.verdict == PathVerdict::Feasible) break;
    }
    if (result.verdict != PathVerdict::Feasible && saw_unknown)
      result.verdict = PathVerdict::Unknown;
    // `it` survived the recursion: std::map iterators are stable.
    it->second = std::move(result);
    return it->second;
  }

  CachedQuery edge_feasible(const EdgeRef& e) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.from) << 32) | e.succ_index;
    // Single-flight across workers: whoever gets the slot solves and adds
    // the wall-clock to its own pending tally; everyone else just reads.
    // The slice is a deterministic function of the edge's block, so the
    // key needs no slice component; cached entries hold the expanded
    // (full-system) witness either way.
    return edges_.get_or_compute(key, [&] {
      bmc::BmcQuery q;
      q.must_take = e;
      return run_query(q, slices_.for_block(e.from));
    });
  }

  CachedQuery solve_schedule(const std::vector<EdgeRef>& choices,
                             bool anchored,
                             const std::optional<EdgeRef>& must_take,
                             std::size_t slice_idx) {
    bmc::BmcQuery q;
    q.schedule = bmc::DecisionSchedule{choices, anchored};
    q.must_take = must_take;
    return run_query(q, slice_idx);
  }

  void reset_pending() {
    pending_seconds_ = 0.0;
    pending_decisions_ = pending_propagations_ = 0;
    pending_conflicts_ = pending_restarts_ = 0;
  }

  void flush_pending(PathJobResult& out) const {
    out.bmc_seconds += pending_seconds_;
    out.solver_decisions += pending_decisions_;
    out.solver_propagations += pending_propagations_;
    out.solver_conflicts += pending_conflicts_;
    out.solver_restarts += pending_restarts_;
  }

  CachedQuery run_query(const bmc::BmcQuery& q, std::size_t slice_idx) {
    const bool sliced = slice_idx != SliceSet::npos;
    const opt::SegmentSlice* sl =
        sliced ? &slices_.slices[slice_idx] : nullptr;
    const tsys::TransitionSystem& ts = sliced ? sl->ts : ts_;
    const bmc::BmcOptions& bo =
        sliced ? slices_.bmc_opts[slice_idx] : bmc_opts_;
    bmc::BmcResult r;
    if (use_sessions_) {
      // Lazy: a worker whose every query is an EdgeCache hit never pays
      // for the unrolled transition relation. Sliced queries get their
      // own warm session per slice (the slices are deduplicated by
      // fingerprint, so segments sharing a slice share the session).
      std::unique_ptr<bmc::Session>& slot =
          sliced ? slice_sessions_[slice_idx] : session_;
      if (!slot) slot = std::make_unique<bmc::Session>(ts, bo);
      r = slot->solve(q);
    } else {
      r = bmc::solve(ts, q, bo);
    }
    pending_seconds_ += r.seconds;
    pending_decisions_ += r.solver_decisions;
    pending_propagations_ += r.solver_propagations;
    pending_conflicts_ += r.solver_conflicts;
    pending_restarts_ += r.solver_restarts;
    CachedQuery c;
    c.cnf_vars = r.cnf_vars;
    c.cnf_clauses = r.cnf_clauses;
    c.schedule_realised = r.schedule_realised;
    switch (r.status) {
      case bmc::BmcStatus::TestData:
        c.verdict = PathVerdict::Feasible;
        if (sliced) {
          // Translate the sliced answer back to the full system: expand
          // the witness (dropped variables take their pinned init or the
          // minimiser's preference anchor — byte-identical to an unsliced
          // minimisation, since no kept guard reads them) and replay it
          // for the full decision trace.
          c.witness = opt::expand_witness(ts_, *sl, r.initial_values);
          c.decision_trace =
              opt::replay_decisions(ts_, c.witness, bmc_opts_.max_steps);
        } else {
          c.witness = r.initial_values;
          c.decision_trace = r.decision_trace;
        }
        break;
      case bmc::BmcStatus::Infeasible:
        // UNSAT only proves infeasibility at complete depth (bmc.h) —
        // except for exact-path verdicts, where the realised schedule is
        // the unique run shape and UNSAT is depth-independent. At a
        // truncated depth the run may simply not fit, and claiming
        // Infeasible would unsoundly drop reachable paths from the WCET.
        c.verdict = depth_complete_ || r.exact_path
                        ? PathVerdict::Infeasible
                        : PathVerdict::Unknown;
        break;
      case bmc::BmcStatus::Unknown:
        c.verdict = PathVerdict::Unknown;
        break;
    }
    return c;
  }

  const cfg::Cfg& g_;
  const tsys::TransitionSystem& ts_;
  bmc::BmcOptions bmc_opts_;
  bool enabled_;
  bool use_sessions_;
  bool depth_complete_;
  EdgeCache& edges_;
  const SliceSet& slices_;
  /// Warm incremental solver holding the unrolled transition relation
  /// across this oracle's queries (worker-local, so no locking).
  std::unique_ptr<bmc::Session> session_;
  /// Warm sessions over the sliced systems, parallel to slices_.slices
  /// (worker-local, lazily built like session_).
  std::vector<std::unique_ptr<bmc::Session>> slice_sessions_;
  /// Worker-local: the graph recursion is cheap, only the edge queries
  /// underneath are worth sharing.
  std::map<BlockId, CachedQuery> reach_memo_;
  double pending_seconds_ = 0.0;
  std::uint64_t pending_decisions_ = 0;
  std::uint64_t pending_propagations_ = 0;
  std::uint64_t pending_conflicts_ = 0;
  std::uint64_t pending_restarts_ = 0;
};

void finalize_segment_bounds(SegmentTiming& st) {
  bool any = false;
  for (const PathTiming& p : st.paths) {
    switch (p.verdict) {
      case PathVerdict::Feasible: ++st.feasible; break;
      case PathVerdict::Infeasible: ++st.infeasible; break;
      case PathVerdict::Unknown: ++st.unknown; break;
    }
    if (p.verdict == PathVerdict::Infeasible) continue;
    if (!any) {
      st.bcet = st.wcet = p.cost;
      any = true;
    } else {
      st.bcet = std::min(st.bcet, p.cost);
      st.wcet = std::max(st.wcet, p.cost);
    }
  }
}

/// Serial front-half product for one function: everything the analysis
/// jobs read (all of it immutable once the job graph is built).
struct FunctionWork {
  FunctionTiming ft;
  std::unique_ptr<cfg::FunctionCfg> f;
  core::Partition partition;
  std::unique_ptr<tsys::TranslationResult> tr;
  bmc::BmcOptions bmc_opts;
  bool depth_complete = false;
  /// Resolved per function from PipelineOptions::use_sessions (forced off
  /// under a finite conflict budget — see that option's comment).
  bool use_sessions = false;
  /// Enumerated PathSpecs per segment (empty vector for Block segments);
  /// parallel to ft.segments. Jobs need the decision choices, which
  /// PathTiming does not keep.
  std::vector<std::vector<cfg::PathSpec>> specs;
  /// Per-query slices (empty when slicing is off or ineligible).
  SliceSet slice_set;
  /// Single-flight decision-edge query store shared by all workers.
  EdgeCache edge_cache;
  /// Set once the owning file's merge ran: no further job can reference
  /// this function, so workers may drop their cached oracles for it
  /// (keeps batch peak memory at O(files in flight), not O(batch)).
  const std::atomic<bool>* file_done = nullptr;
  /// Scheduling affinity key (engine::AnalysisJob::affinity): all of this
  /// function's path jobs carry it, steering them towards one home worker
  /// whose oracle pool then holds the single warm session for the
  /// function instead of every worker rebuilding its own.
  std::int64_t affinity = -1;
};

/// One analysis job: check path `path_index` of segment `seg_index`.
struct JobRef {
  FunctionWork* fw = nullptr;
  std::size_t seg_index = 0;
  std::size_t path_index = 0;
};

/// Builds the function's per-query slices. The kept-decision criterion is
/// pure CFG reachability: a decision firing before a query's anchor in
/// ANY run can reach the anchor in the CFG (the run itself traces such a
/// path), so keeping exactly the decisions that reach the anchor (plus
/// the anchor's own block / the region's own decisions) preserves every
/// query's feasible set — the soundness lemma slice.h states.
void build_slices(FunctionWork& fnw, bool has_back_edge) {
  const cfg::Cfg& g = fnw.f->graph;
  const tsys::TransitionSystem& ts = fnw.tr->ts;
  const std::size_t nb = g.size();

  std::vector<BlockId> decisions;
  for (const cfg::BasicBlock& b : g.blocks())
    if (b.is_decision()) decisions.push_back(b.id);
  if (decisions.empty()) return;  // nothing a slice could drop

  // Forward reachability from each decision over the full digraph
  // (back edges included — "before" in a run includes loop re-entries).
  std::vector<std::vector<bool>> reach_of(nb);
  for (const BlockId d : decisions) {
    std::vector<bool>& r = reach_of[d];
    r.assign(nb, false);
    std::vector<BlockId> work{d};
    while (!work.empty()) {
      const BlockId cur = work.back();
      work.pop_back();
      for (const cfg::Edge& e : g.block(cur).succs) {
        if (!r[e.to]) {
          r[e.to] = true;
          work.push_back(e.to);
        }
      }
    }
  }

  SliceSet& set = fnw.slice_set;
  set.of_block.assign(nb, SliceSet::npos);
  set.of_segment.assign(fnw.partition.segments.size(), SliceSet::npos);
  std::map<std::string, std::size_t> by_fingerprint;

  const auto add_slice = [&](const std::vector<bool>& keep) -> std::size_t {
    opt::SegmentSlice s = opt::build_slice(ts, keep);
    if (s.trivial) return SliceSet::npos;  // full system already minimal
    const auto it = by_fingerprint.find(s.fingerprint);
    if (it != by_fingerprint.end()) return it->second;
    // The slice terminates structurally within its own (smaller) required
    // depth; queries against it stay complete at that depth, so tighten.
    bmc::BmcOptions bo = fnw.bmc_opts;
    bo.max_steps = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        bo.max_steps, required_depth(*fnw.f, s.ts, has_back_edge, true)));
    const std::size_t idx = set.slices.size();
    by_fingerprint.emplace(s.fingerprint, idx);
    set.slices.push_back(std::move(s));
    set.bmc_opts.push_back(bo);
    return idx;
  };

  // Edge queries: one slice per decision block, keeping the decisions
  // that reach it plus the block itself.
  for (const BlockId e_from : decisions) {
    std::vector<bool> keep(nb, false);
    keep[e_from] = true;
    for (const BlockId d : decisions)
      if (reach_of[d][e_from]) keep[d] = true;
    set.of_block[e_from] = add_slice(keep);
  }

  // Anchored region schedules: keep decisions inside the region and
  // decisions reaching any region block (the anchor's block is among the
  // latter — its successor is the region entry). Path-independent, so
  // every path of the segment shares one slice.
  for (std::size_t si = 0; si < fnw.partition.segments.size(); ++si) {
    const core::Segment& seg = fnw.partition.segments[si];
    if (seg.kind != core::SegmentKind::Region || seg.whole_function)
      continue;
    std::vector<bool> keep(nb, false);
    for (const BlockId b : seg.blocks)
      if (g.block(b).is_decision()) keep[b] = true;
    for (const BlockId d : decisions) {
      if (keep[d]) continue;
      for (const BlockId b : seg.blocks) {
        if (reach_of[d][b]) {
          keep[d] = true;
          break;
        }
      }
    }
    set.of_segment[si] = add_slice(keep);
  }
}

/// Worker-local oracle store, keyed by function. In single-file mode the
/// keys are one file's functions; on the global batch frontier they span
/// every file in flight. Worker w is the only thread touching slot w, so
/// no locks are needed (engine::SessionPool's contract).
using OraclePool =
    engine::SessionPool<const FunctionWork*, std::unique_ptr<FeasibilityOracle>>;

/// Replays one feasible path's witness through the concrete interpreter
/// and checks the run takes the claimed path: the block (Block segments)
/// or the exact block sequence, contiguously (Region paths).
bool replay_witness(testgen::Interpreter& interp,
                    const tsys::TranslationResult& tr,
                    const SegmentTiming& st, const PathTiming& pt,
                    bool& mapped) {
  std::vector<std::int64_t> inputs;
  inputs.reserve(interp.inputs().size());
  for (const minic::Symbol* s : interp.inputs()) {
    const tsys::VarId v = tr.var_of_symbol[s->id];
    if (v == tsys::kNoVar ||
        static_cast<std::size_t>(v) >= pt.witness.size()) {
      mapped = false;
      return false;
    }
    inputs.push_back(pt.witness[v]);
  }
  mapped = true;
  const testgen::ExecTrace trace = interp.run(inputs);
  if (!trace.terminated) return false;
  // Per-iteration agreement: the decision trace the BMC engine replayed
  // from the witness must be reproduced decision for decision by the
  // reference interpreter (both runs are deterministic in the inputs).
  if (!pt.decision_trace.empty() && trace.choices != pt.decision_trace)
    return false;
  if (st.kind == core::SegmentKind::Block)
    return std::find(trace.blocks.begin(), trace.blocks.end(),
                     pt.blocks.front()) != trace.blocks.end();
  return std::search(trace.blocks.begin(), trace.blocks.end(),
                     pt.blocks.begin(), pt.blocks.end()) !=
         trace.blocks.end();
}

}  // namespace

std::int64_t CostModel::block_cost(const cfg::BasicBlock& b) const {
  std::int64_t total = 0;
  for (const minic::Stmt* s : b.stmts) {
    total += stmt_cost;
    if (s->cond) total += call_costs(*s->cond, *this);
    for (const auto& child : s->children)
      if (child) total += call_costs(*child, *this);
  }
  if (b.is_decision()) total += decision_cost;
  return total;
}

std::int64_t FunctionTiming::wcet_total() const {
  std::int64_t total = 0;
  for (const SegmentTiming& s : segments) total += s.wcet;
  return total;
}

std::int64_t FunctionTiming::bcet_total() const {
  std::int64_t total = 0;
  for (const SegmentTiming& s : segments) total += s.bcet;
  return total;
}

bool FunctionTiming::conclusive() const {
  for (const SegmentTiming& s : segments)
    if (!s.conclusive()) return false;
  return true;
}

namespace {

/// Everything one file carries through the batch frontier: the immutable
/// front-half products, the pre-allocated result slots of its analysis
/// jobs, and the merged PipelineResult. Addresses must be stable while
/// jobs are in flight (held by unique_ptr in the batch driver).
struct FileWork {
  std::string error;  // nonempty = front half failed, no jobs were pushed
  std::unique_ptr<minic::Program> program;
  std::vector<std::unique_ptr<FunctionWork>> work;
  /// One entry per analysis job, in deterministic (function, segment,
  /// path) order; `results` is parallel to `refs`.
  std::vector<JobRef> refs;
  std::vector<PathJobResult> results;
  /// Program-level stages (frontend, analysis).
  std::vector<StageStats> stages;
  PipelineResult result;
  /// Monotonic timestamp when the front half finished (drives the
  /// "analysis" stage stat on the frontier, where no per-file scheduler
  /// wall exists).
  double front_done = 0.0;
  /// Path jobs still outstanding; the job that decrements it to zero
  /// triggers the file's merge.
  std::atomic<std::size_t> remaining{0};
  /// Merge completed: workers lazily evict their oracles for this file.
  std::atomic<bool> merged{false};
  /// Base for the per-function affinity keys front_half hands out. The
  /// batch driver gives each file a different (prime-strided) base so
  /// same-index functions of different files do not all pile onto one
  /// home worker.
  std::int64_t affinity_base = 0;
};

/// Serial front half of one file: frontend, CFG, partition, translation,
/// optimisation and path enumeration. Fills `fw` with the immutable job
/// inputs plus pre-sized result slots; returns false with `fw.error` set
/// on any failure.
bool front_half(std::string_view source, const PipelineOptions& opts,
                FileWork& fw) {
  DiagnosticEngine diags;
  {
    StageTimer t(fw.stages, "frontend");
    fw.program = minic::compile(
        source, diags, minic::SemaOptions{.warn_unbounded_loops = false});
  }
  if (!fw.program) {
    fw.error = diags.str();
    return false;
  }
  if (fw.program->functions.empty()) {
    fw.error = "no function definitions in translation unit\n";
    return false;
  }

  const auto selected = [&opts](const std::string& name) {
    if (!opts.function.empty() && name != opts.function) return false;
    return opts.functions.empty() ||
           std::find(opts.functions.begin(), opts.functions.end(), name) !=
               opts.functions.end();
  };
  bool matched = opts.function.empty() && opts.functions.empty();
  for (const auto& fn : fw.program->functions) {
    if (!selected(fn->name)) continue;
    matched = true;

    auto fnw = std::make_unique<FunctionWork>();
    fnw->affinity = fw.affinity_base + static_cast<std::int64_t>(fw.work.size());
    FunctionTiming& ft = fnw->ft;
    ft.name = fn->name;

    std::unique_ptr<cfg::PathAnalysis> pa;
    {
      StageTimer t(ft.stages, "cfg");
      fnw->f = cfg::build_cfg(*fn);
      pa = std::make_unique<cfg::PathAnalysis>(*fnw->f);
    }
    ft.blocks = fnw->f->graph.size();
    ft.decisions = fnw->f->graph.decision_count();
    ft.function_paths = pa->function_paths();

    {
      StageTimer t(ft.stages, "partition");
      fnw->partition = core::partition_function(
          *fnw->f, *pa, core::PartitionOptions{opts.path_bound});
      const std::string invalid =
          core::validate_partition(*fnw->f, fnw->partition);
      if (!invalid.empty()) {
        fw.error = "partition invariant violated in '" + fn->name +
                   "': " + invalid + "\n";
        return false;
      }
    }
    ft.instrumentation_points = fnw->partition.instrumentation_points();
    ft.fused_points =
        core::fused_instrumentation_points(*fnw->f, fnw->partition);
    ft.measurements = fnw->partition.measurements();

    {
      StageTimer t(ft.stages, "translate");
      tsys::TranslateOptions topts;
      topts.pessimistic_widths = opts.pessimistic_widths;
      fnw->tr = tsys::translate(*fw.program, *fnw->f, diags, topts);
    }
    if (!fnw->tr) {
      fw.error = diags.str();
      return false;
    }
    ft.state_bits_before = fnw->tr->ts.state_bits();
    ft.locations_before = fnw->tr->ts.num_locs;
    ft.transitions_before = fnw->tr->ts.transitions.size();

    bool has_back_edge = false;
    for (const cfg::BasicBlock& blk : fnw->f->graph.blocks())
      for (const cfg::Edge& e : blk.succs) has_back_edge |= e.back;

    // Section 3.2 optimisation passes: shrink the encoding before any BMC
    // query is built. External VarId references (the symbol->var table the
    // witness replay reads) follow the composed remapping. Passes run one
    // at a time so each report can carry the required unroll depth around
    // it — StatementConcat's merges pay off precisely there.
    if (!opts.opt_passes.empty()) {
      StageTimer t(ft.stages, "optimise");
      std::vector<tsys::VarId> var_map(fnw->tr->ts.vars.size());
      for (std::size_t v = 0; v < var_map.size(); ++v)
        var_map[v] = static_cast<tsys::VarId>(v);
      std::uint64_t depth =
          required_depth(*fnw->f, fnw->tr->ts, has_back_edge, true);
      for (const opt::Pass p : opts.opt_passes) {
        opt::PassReport pr = opt::run_pass_mapped(fnw->tr->ts, p, var_map);
        pr.depth_before = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(depth, UINT32_MAX));
        depth = required_depth(*fnw->f, fnw->tr->ts, has_back_edge, true);
        pr.depth_after = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(depth, UINT32_MAX));
        ft.pass_reports.push_back(pr);
      }
      for (tsys::VarId& v : fnw->tr->var_of_symbol)
        if (v != tsys::kNoVar) v = var_map[v];
    }
    ft.state_bits = fnw->tr->ts.state_bits();
    ft.locations = fnw->tr->ts.num_locs;
    ft.transitions = fnw->tr->ts.transitions.size();

    // Unroll depth: automatic (locations + 1) covers loop-free systems;
    // bounded loops need every iteration's transitions unrolled. A depth
    // below `required` (clamped or user-forced) makes UNSAT inconclusive.
    fnw->bmc_opts = opts.bmc;
    const std::uint64_t required = required_depth(
        *fnw->f, fnw->tr->ts, has_back_edge, !opts.opt_passes.empty());
    if (fnw->bmc_opts.max_steps == 0) {
      fnw->bmc_opts.max_steps = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(required, opts.max_unroll_depth));
    }
    fnw->depth_complete = fnw->bmc_opts.max_steps >= required;
    ft.unroll_depth = fnw->bmc_opts.max_steps;
    // The depth-completeness proof doubles as the "all runs terminate
    // within the unroll" promise that lets anchored windows start shallow
    // (bmc.h, runs_terminate). Budget-limited solving keeps fresh solvers:
    // a warm session's verdict under a finite conflict budget could depend
    // on earlier queries, breaking the byte-identical-reports contract.
    fnw->bmc_opts.runs_terminate = fnw->depth_complete;
    fnw->use_sessions =
        opts.use_sessions && fnw->bmc_opts.conflict_budget < 0;

    // Segment skeletons: blocks, costs and PathSpecs now; verdicts later.
    for (const core::Segment& seg : fnw->partition.segments) {
      SegmentTiming st;
      st.id = seg.id;
      st.kind = seg.kind;
      st.whole_function = seg.whole_function;
      st.num_blocks = seg.blocks.size();
      st.structural_paths = seg.paths;

      std::vector<cfg::PathSpec> specs;
      if (seg.kind == core::SegmentKind::Block) {
        PathTiming pt;
        pt.blocks = {seg.block};
        pt.cost = opts.cost.block_cost(fnw->f->graph.block(seg.block));
        st.paths.push_back(std::move(pt));
      } else {
        st.enumeration_complete = cfg::enumerate_paths(
            *fnw->f, cfg::arm_entry_block(*seg.region), seg.blocks,
            opts.max_paths_per_segment, specs);
        for (const cfg::PathSpec& spec : specs) {
          PathTiming pt;
          pt.blocks = spec.blocks;
          for (BlockId b : spec.blocks)
            pt.cost += opts.cost.block_cost(fnw->f->graph.block(b));
          st.paths.push_back(std::move(pt));
        }
      }
      ft.segments.push_back(std::move(st));
      fnw->specs.push_back(std::move(specs));
    }

    // Per-segment slicing (static-analysis round 2). Eligible only when
    // the byte-identity argument holds: the unroll must be complete
    // (sliced UNSAT then proves full-system infeasibility), witnesses
    // minimised (expansion reproduces the minimiser's choices), and no
    // finite conflict budget (budget-dependent Unknowns could differ
    // between the sliced and full encodings).
    if (opts.slice && opts.run_bmc && fnw->depth_complete &&
        fnw->bmc_opts.minimize_witness &&
        fnw->bmc_opts.conflict_budget < 0) {
      StageTimer t(ft.stages, "slice");
      build_slices(*fnw, has_back_edge);
    }

    fw.work.push_back(std::move(fnw));
  }

  if (!matched) {
    fw.error = opts.function.empty()
                   ? "no requested function found\n"
                   : "function '" + opts.function + "' not found\n";
    return false;
  }

  // One job per (function, segment, path). Slots are pre-allocated so the
  // job closures can write results[i] without synchronisation or
  // reallocation.
  for (std::size_t fi = 0; fi < fw.work.size(); ++fi) {
    FunctionWork* fnw = fw.work[fi].get();
    fnw->file_done = &fw.merged;
    for (std::size_t si = 0; si < fnw->ft.segments.size(); ++si)
      for (std::size_t pi = 0; pi < fnw->ft.segments[si].paths.size(); ++pi)
        fw.refs.push_back(JobRef{fnw, si, pi});
  }
  fw.results.resize(fw.refs.size());
  fw.front_done = engine::monotonic_seconds();
  return true;
}

/// Executes one analysis job against the worker's slot of the oracle
/// pool. Oracles for files whose merge already ran are retired first — no
/// later job can reference them, and dropping their memoised queries,
/// witnesses and warm sessions keeps the pool's footprint bounded by the
/// files in flight.
void run_path_job(const JobRef& r, bool run_bmc, OraclePool& pool,
                  unsigned worker, PathJobResult& out) {
  FeasibilityOracle& oracle = *pool.acquire(
      worker, static_cast<const FunctionWork*>(r.fw),
      [](const FunctionWork* fw) {
        return fw->file_done != nullptr &&
               fw->file_done->load(std::memory_order_acquire);
      },
      [&] {
        return std::make_unique<FeasibilityOracle>(
            r.fw->f->graph, r.fw->tr->ts, r.fw->bmc_opts, run_bmc,
            r.fw->use_sessions, r.fw->depth_complete, r.fw->edge_cache,
            r.fw->slice_set);
      });
  const core::Segment& s = r.fw->partition.segments[r.seg_index];
  trace::TraceSpan span("path", "pipeline");
  span.arg("function", r.fw->ft.name);
  span.arg("segment", static_cast<std::int64_t>(s.id));
  span.arg("path", static_cast<std::int64_t>(r.path_index));
  const trace::ScopedSegment seg_tag(static_cast<std::int64_t>(s.id));
  static trace::Counter& path_jobs =
      trace::MetricsRegistry::instance().counter("pipeline.path_jobs");
  path_jobs.add();
  if (s.kind == core::SegmentKind::Block) {
    oracle.check_block(s.block, out);
  } else {
    const std::optional<EdgeRef> anchor =
        s.whole_function ? std::nullopt : s.region->entry;
    oracle.check_region_path(r.fw->specs[r.seg_index][r.path_index].choices,
                             anchor, r.seg_index, out);
  }
}

/// Deterministic merge of one file's job results into its PipelineResult.
/// Fills the pre-sized slots in job order; every aggregate is a reduction
/// over that order, independent of scheduling. Safe to run concurrently
/// with other files' jobs (touches only this file's state).
void merge_file(FileWork& fw, const PipelineOptions& opts) {
  trace::TraceSpan span("merge", "pipeline");
  PipelineResult& result = fw.result;
  result.stages = std::move(fw.stages);
  result.analysis_jobs = fw.refs.size();

  for (std::size_t i = 0; i < fw.refs.size(); ++i) {
    const JobRef& r = fw.refs[i];
    SegmentTiming& st = r.fw->ft.segments[r.seg_index];
    PathTiming& pt = st.paths[r.path_index];
    PathJobResult& pr = fw.results[i];
    pt.verdict = pr.verdict;
    pt.witness = std::move(pr.witness);
    pt.decision_trace = std::move(pr.decision_trace);
    st.bmc_seconds += pr.bmc_seconds;
    st.max_cnf_vars = std::max(st.max_cnf_vars, pr.max_cnf_vars);
    st.max_cnf_clauses = std::max(st.max_cnf_clauses, pr.max_cnf_clauses);
    st.solver_decisions += pr.solver_decisions;
    st.solver_propagations += pr.solver_propagations;
    st.solver_conflicts += pr.solver_conflicts;
    st.solver_restarts += pr.solver_restarts;
  }

  for (std::unique_ptr<FunctionWork>& fnw : fw.work) {
    FunctionTiming& ft = fnw->ft;
    double bmc_total = 0.0;
    for (SegmentTiming& st : ft.segments) {
      finalize_segment_bounds(st);
      bmc_total += st.bmc_seconds;
    }

    // Close the paper's test-data loop: the witness of every feasible path
    // is a concrete input vector; replaying it through the reference
    // interpreter must take the claimed path.
    if (opts.run_bmc && opts.validate_witnesses) {
      testgen::Interpreter interp(*fw.program, *fnw->f);
      for (SegmentTiming& st : ft.segments) {
        for (PathTiming& pt : st.paths) {
          if (pt.verdict != PathVerdict::Feasible || pt.witness.empty())
            continue;
          bool mapped = false;
          const bool ok = replay_witness(interp, *fnw->tr, st, pt, mapped);
          if (!mapped) continue;  // no input mapping: leave NotChecked
          pt.replay = ok ? WitnessReplay::Validated : WitnessReplay::Mismatch;
          if (ok)
            ++st.validated;
          else
            ++st.mismatched;
        }
      }
    }

    // The bmc stage is solver time summed over this function's jobs (CPU
    // seconds, not wall: jobs of several functions interleave on the pool).
    ft.stages.push_back(StageStats{"bmc", bmc_total});
    result.functions.push_back(std::move(ft));
  }

  result.ok = true;
  // Release the workers' oracle caches for this file (no job can
  // reference it past its merge).
  fw.merged.store(true, std::memory_order_release);
  trace::progress_file_done();
}

}  // namespace

PipelineResult Pipeline::run(std::string_view source) const {
  FileWork fw;
  if (!front_half(source, opts_, fw)) {
    PipelineResult result;
    result.error = std::move(fw.error);
    return result;
  }

  const engine::Scheduler scheduler(opts_.run_bmc ? opts_.jobs : 1);
  OraclePool oracles(scheduler.workers());

  std::vector<engine::AnalysisJob> jobs;
  jobs.reserve(fw.refs.size());
  const bool run_bmc = opts_.run_bmc;
  for (std::size_t i = 0; i < fw.refs.size(); ++i) {
    engine::AnalysisJob job;
    job.affinity = fw.refs[i].fw->affinity;
    job.work = [&fw, &oracles, i, run_bmc](unsigned worker) {
      run_path_job(fw.refs[i], run_bmc, oracles, worker, fw.results[i]);
    };
    jobs.push_back(std::move(job));
  }

  {
    StageTimer t(fw.stages, "analysis");
    const engine::SchedulerStats run_stats = scheduler.run(jobs);
    // The pool clamps to the job count; report what actually ran.
    fw.result.analysis_workers = run_stats.workers;
  }

  merge_file(fw, opts_);
  return std::move(fw.result);
}

BatchResult run_batch(const std::vector<std::string>& sources,
                      const std::vector<std::string>& files,
                      const PipelineOptions& opts) {
  BatchResult out;
  const auto name_of = [&](std::size_t i) {
    return i < files.size() ? files[i] : std::string();
  };

  // One global frontier: each file seeds a front-half job that pushes its
  // per-path BMC jobs as soon as they exist, so file K+1's frontend and
  // translation overlap file K's solving. The job that completes a file's
  // last path check pushes that file's merge.
  std::vector<std::unique_ptr<FileWork>> work;
  work.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    work.push_back(std::make_unique<FileWork>());
    work.back()->affinity_base = static_cast<std::int64_t>(i) * 997;
  }

  engine::Frontier frontier(opts.run_bmc ? opts.jobs : 1);
  OraclePool oracles(frontier.workers());
  const bool run_bmc = opts.run_bmc;

  for (std::size_t i = 0; i < sources.size(); ++i) {
    FileWork* fw = work[i].get();
    const std::string* source = &sources[i];
    frontier.push(engine::AnalysisJob{
        [fw, source, &opts, &frontier, &oracles, run_bmc](unsigned) {
          if (!front_half(*source, opts, *fw)) return;  // error recorded
          if (fw->refs.empty()) {
            trace::emit_complete("analysis", "stage", fw->front_done,
                                 fw->front_done);
            fw->stages.push_back(StageStats{"analysis", 0.0});
            merge_file(*fw, opts);
            return;
          }
          fw->remaining.store(fw->refs.size(), std::memory_order_relaxed);
          for (std::size_t j = 0; j < fw->refs.size(); ++j) {
            engine::AnalysisJob pj;
            pj.affinity = fw->refs[j].fw->affinity;
            pj.work =
                [fw, j, &opts, &frontier, &oracles, run_bmc](unsigned worker) {
                  run_path_job(fw->refs[j], run_bmc, oracles, worker,
                               fw->results[j]);
                  if (fw->remaining.fetch_sub(
                          1, std::memory_order_acq_rel) == 1) {
                    // Last path job of this file: stream its merge into
                    // the frontier while other files keep solving.
                    frontier.push(engine::AnalysisJob{[fw, &opts](unsigned) {
                      const double now = engine::monotonic_seconds();
                      trace::emit_complete("analysis", "stage",
                                           fw->front_done, now);
                      fw->stages.push_back(StageStats{
                          "analysis", now - fw->front_done});
                      merge_file(*fw, opts);
                    }});
                  }
                };
            frontier.push(std::move(pj));
          }
        }});
  }

  const engine::SchedulerStats stats = frontier.run();
  out.workers = stats.workers;

  // Deterministic assembly in file order; the first failing file (in input
  // order, not completion order) wins, matching the sequential driver.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (!work[i]->error.empty()) {
      const std::string name = name_of(i);
      out.error = name.empty() ? work[i]->error
                               : name + ": " + work[i]->error;
      out.error_index = i;
      return out;
    }
  }
  for (std::size_t i = 0; i < sources.size(); ++i) {
    work[i]->result.analysis_workers = stats.workers;
    out.files.push_back(BatchEntry{name_of(i), std::move(work[i]->result)});
  }
  out.ok = true;
  return out;
}

namespace {

/// Byte-identical timing model: every reported (deterministic) segment
/// column matches — costs, verdicts and replay tallies. Encoding metrics
/// (bits, locations) are deliberately excluded; those are what the
/// optimisations change.
bool timing_models_equal(const FunctionTiming& a, const FunctionTiming& b) {
  if (a.segments.size() != b.segments.size()) return false;
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    const SegmentTiming& x = a.segments[i];
    const SegmentTiming& y = b.segments[i];
    if (x.id != y.id || x.kind != y.kind ||
        x.whole_function != y.whole_function ||
        x.num_blocks != y.num_blocks ||
        x.structural_paths.str() != y.structural_paths.str() ||
        x.enumeration_complete != y.enumeration_complete ||
        x.paths.size() != y.paths.size() || x.feasible != y.feasible ||
        x.infeasible != y.infeasible || x.unknown != y.unknown ||
        x.validated != y.validated || x.mismatched != y.mismatched ||
        x.bcet != y.bcet || x.wcet != y.wcet)
      return false;
    for (std::size_t p = 0; p < x.paths.size(); ++p)
      if (x.paths[p].verdict != y.paths[p].verdict ||
          x.paths[p].cost != y.paths[p].cost ||
          x.paths[p].blocks != y.paths[p].blocks)
        return false;
  }
  return true;
}

double segment_bmc_seconds(const FunctionTiming& ft) {
  double total = 0.0;
  for (const SegmentTiming& s : ft.segments) total += s.bmc_seconds;
  return total;
}

std::uint64_t max_cnf_clauses(const FunctionTiming& ft) {
  std::uint64_t m = 0;
  for (const SegmentTiming& s : ft.segments)
    m = std::max(m, s.max_cnf_clauses);
  return m;
}

}  // namespace

bool Table2Report::all_identical() const {
  for (const Table2Row& r : rows)
    if (!r.model_identical) return false;
  return !rows.empty();
}

std::pair<PipelineOptions, PipelineOptions> table2_option_pair(
    const PipelineOptions& opts) {
  PipelineOptions plain = opts;
  plain.opt_passes.clear();
  PipelineOptions optimised = opts;
  if (optimised.opt_passes.empty()) optimised.opt_passes = opt::all_passes();
  return {std::move(plain), std::move(optimised)};
}

Table2Report table2_assemble(const BatchResult& plain,
                             const BatchResult& optimised,
                             const std::vector<std::string>& files) {
  Table2Report out;
  if (!plain.ok) {
    out.error = plain.error;
    out.error_index = plain.error_index;
    return out;
  }
  if (!optimised.ok) {
    out.error = optimised.error;
    out.error_index = optimised.error_index;
    return out;
  }

  for (std::size_t i = 0; i < plain.files.size(); ++i) {
    const std::string file = i < files.size() ? files[i] : std::string();
    const PipelineResult& a = plain.files[i].result;
    const PipelineResult& b = optimised.files[i].result;
    if (a.functions.size() != b.functions.size()) {
      out.error = "optimised run analysed a different function set";
      out.error_index = i;
      return out;
    }
    for (std::size_t f = 0; f < a.functions.size(); ++f) {
      const FunctionTiming& fa = a.functions[f];
      const FunctionTiming& fb = b.functions[f];
      Table2Row row;
      row.file = file;
      row.file_index = i;
      row.function = fa.name;
      row.bits_plain = fa.state_bits;
      row.bits_opt = fb.state_bits;
      row.locs_plain = fa.locations;
      row.locs_opt = fb.locations;
      row.trans_plain = fa.transitions;
      row.trans_opt = fb.transitions;
      row.depth_plain = fa.unroll_depth;
      row.depth_opt = fb.unroll_depth;
      row.bmc_seconds_plain = segment_bmc_seconds(fa);
      row.bmc_seconds_opt = segment_bmc_seconds(fb);
      row.cnf_clauses_plain = max_cnf_clauses(fa);
      row.cnf_clauses_opt = max_cnf_clauses(fb);
      row.conclusive_plain = fa.conclusive();
      row.conclusive_opt = fb.conclusive();
      row.model_identical = timing_models_equal(fa, fb);
      row.passes = fb.pass_reports;
      out.rows.push_back(std::move(row));
    }
  }
  out.ok = true;
  return out;
}

Table2Report table2_compare(const std::vector<std::string>& sources,
                            const std::vector<std::string>& files,
                            const PipelineOptions& opts) {
  const auto [plain, optimised] = table2_option_pair(opts);
  // Both halves run as frontier batches, so the baseline and optimised
  // analyses of all files share one worker pool each. The baseline runs
  // to completion first; its failure (in input order) wins, matching the
  // sequential driver.
  const BatchResult a_batch = run_batch(sources, files, plain);
  if (!a_batch.ok) return table2_assemble(a_batch, a_batch, files);
  const BatchResult b_batch = run_batch(sources, files, optimised);
  return table2_assemble(a_batch, b_batch, files);
}

PartitionSummary partition_summary(std::string_view source,
                                   std::uint64_t max_bound,
                                   std::string_view function) {
  PartitionSummary out;
  DiagnosticEngine diags;
  std::unique_ptr<minic::Program> program = minic::compile(
      source, diags, minic::SemaOptions{.warn_unbounded_loops = false});
  if (!program) {
    out.error = diags.str();
    return out;
  }
  const minic::FunctionDef* fn = nullptr;
  if (function.empty()) {
    if (!program->functions.empty()) fn = program->functions.front().get();
  } else {
    fn = program->find_function(function);
  }
  if (fn == nullptr) {
    out.error = "function not found\n";
    return out;
  }
  out.function = fn->name;

  std::unique_ptr<cfg::FunctionCfg> f = cfg::build_cfg(*fn);
  cfg::PathAnalysis pa(*f);
  for (std::uint64_t b = 1; b <= max_bound; ++b) {
    const core::Partition p =
        core::partition_function(*f, pa, core::PartitionOptions{b});
    const std::string invalid = core::validate_partition(*f, p);
    if (!invalid.empty()) {
      out.error = "partition invariant violated at b=" + std::to_string(b) +
                  ": " + invalid + "\n";
      return out;
    }
    PartitionSummaryRow row;
    row.bound = b;
    row.ip = p.instrumentation_points();
    row.fused_ip = core::fused_instrumentation_points(*f, p);
    row.m = p.measurements();
    row.segments = p.segments.size();
    out.rows.push_back(row);
  }
  out.ok = true;
  return out;
}

}  // namespace tmg::driver
