#include "driver/pipeline.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>

#include "cfg/paths.h"
#include "cfg/structure.h"
#include "minic/frontend.h"
#include "tsys/translate.h"

namespace tmg::driver {

namespace {

using cfg::BlockId;
using cfg::EdgeRef;

class StageTimer {
 public:
  explicit StageTimer(std::vector<StageStats>& out, std::string name)
      : out_(out), name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    out_.push_back(StageStats{std::move(name_), s});
  }

 private:
  std::vector<StageStats>& out_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Cost of the extern calls inside one expression tree.
std::int64_t call_costs(const minic::Expr& e, const CostModel& cm) {
  std::int64_t total = 0;
  if (e.kind == minic::ExprKind::Call && e.sym != nullptr)
    total += e.sym->call_cost > 0 ? e.sym->call_cost : cm.default_call_cost;
  for (const auto& child : e.children)
    if (child) total += call_costs(*child, cm);
  return total;
}

/// Worst-case transitions executed through one arm / construct; drives the
/// BMC unroll depth for functions with (bounded) loops. Over-approximates:
/// a block is priced at stmts + 2 transitions.
std::uint64_t arm_weight(const cfg::Cfg& g, const cfg::Arm& arm);

std::uint64_t construct_weight(const cfg::Cfg& g, const cfg::Construct& c) {
  std::uint64_t arms_max = 0;
  std::uint64_t arms_sum = 0;
  for (const cfg::Arm& a : c.arms) {
    const std::uint64_t w = arm_weight(g, a);
    arms_max = std::max(arms_max, w);
    arms_sum += w;
  }
  switch (c.kind) {
    case cfg::ConstructKind::If:
      return 1 + arms_max;
    case cfg::ConstructKind::Switch:
      // Fallthrough can chain case arms; price the sum to stay safe.
      return 1 + (c.has_fallthrough ? arms_sum : arms_max);
    case cfg::ConstructKind::While: {
      const std::uint64_t b = c.loop_bound.value_or(1);
      return (b + 1) + b * arms_max;
    }
    case cfg::ConstructKind::DoWhile: {
      const std::uint64_t b =
          std::max<std::uint64_t>(c.loop_bound.value_or(1), 1);
      return b + b * arms_max;
    }
  }
  return 1 + arms_max;
}

std::uint64_t arm_weight(const cfg::Cfg& g, const cfg::Arm& arm) {
  std::uint64_t total = 0;
  for (const cfg::ArmItem& item : arm.items) {
    if (item.is_block())
      total += g.block(item.block).stmts.size() + 2;
    else
      total += construct_weight(g, *item.construct);
  }
  return total;
}

/// Answers path-feasibility queries against one function's transition
/// system, memoising per-decision-edge reachability so repeated anchors
/// (block segments at b = 1 probe many edges) cost one SAT call each.
class FeasibilityOracle {
 public:
  /// `depth_complete` says the unroll depth covers every terminating run;
  /// when false (clamped or user-forced below the estimate), UNSAT no
  /// longer proves infeasibility and is downgraded to Unknown.
  FeasibilityOracle(const cfg::Cfg& g, const tsys::TransitionSystem& ts,
                    bmc::BmcOptions bmc_opts, bool enabled,
                    bool depth_complete)
      : g_(g), ts_(ts), bmc_opts_(bmc_opts), enabled_(enabled),
        depth_complete_(depth_complete) {}

  /// Feasibility of one enumerated path through a Region segment.
  /// `anchor` is the segment's unique entry edge (nullopt for the
  /// whole-function segment, whose entry is virtual).
  PathVerdict check_region_path(const std::vector<EdgeRef>& choices,
                                const std::optional<EdgeRef>& anchor,
                                SegmentTiming& st) {
    if (!enabled_) return PathVerdict::Unknown;
    if (has_conflicting_choices(choices)) return PathVerdict::Unknown;

    if (anchor && g_.block(anchor->from).is_decision())
      return solve(choices, *anchor, st);

    if (!anchor) {
      // Whole function: execution always enters, the choice policy alone
      // pins the path.
      return choices.empty() ? PathVerdict::Feasible
                             : solve(choices, std::nullopt, st);
    }

    // Entry via a non-decision edge (do-while bodies): approximate with
    // entry-block reachability plus an unanchored policy run.
    const PathVerdict reach = block_reachable(g_.edge(*anchor).to, st);
    if (reach == PathVerdict::Infeasible) return PathVerdict::Infeasible;
    if (choices.empty()) return reach;
    const PathVerdict run = solve(choices, std::nullopt, st);
    if (run == PathVerdict::Infeasible) return PathVerdict::Infeasible;
    return PathVerdict::Unknown;  // both SAT, but the pairing is unproven
  }

  /// Is `b` executed on any input? Decision edges are answered by the BMC
  /// engine; unconditional edges recurse to their source block.
  PathVerdict block_reachable(BlockId b, SegmentTiming& st) {
    if (!enabled_) return PathVerdict::Unknown;
    if (b == g_.entry()) return PathVerdict::Feasible;
    if (auto it = reach_memo_.find(b); it != reach_memo_.end())
      return it->second;
    reach_memo_[b] = PathVerdict::Infeasible;  // cycle guard

    PathVerdict verdict = PathVerdict::Infeasible;
    bool saw_unknown = false;
    for (BlockId p : g_.preds()[b]) {
      const cfg::BasicBlock& pred = g_.block(p);
      for (std::uint32_t i = 0; i < pred.succs.size(); ++i) {
        if (pred.succs[i].to != b || pred.succs[i].back) continue;
        PathVerdict v;
        if (pred.is_decision())
          v = edge_feasible(EdgeRef{p, i}, st);
        else
          v = block_reachable(p, st);
        if (v == PathVerdict::Feasible) {
          verdict = PathVerdict::Feasible;
          break;
        }
        if (v == PathVerdict::Unknown) saw_unknown = true;
      }
      if (verdict == PathVerdict::Feasible) break;
    }
    if (verdict != PathVerdict::Feasible && saw_unknown)
      verdict = PathVerdict::Unknown;
    reach_memo_[b] = verdict;
    return verdict;
  }

 private:
  static bool has_conflicting_choices(const std::vector<EdgeRef>& choices) {
    // A loop path can legitimately revisit a decision with the same
    // outcome; different outcomes cannot be expressed as a forced policy.
    std::map<BlockId, std::uint32_t> seen;
    for (const EdgeRef& c : choices) {
      auto [it, inserted] = seen.emplace(c.from, c.succ_index);
      if (!inserted && it->second != c.succ_index) return true;
    }
    return false;
  }

  PathVerdict edge_feasible(const EdgeRef& e, SegmentTiming& st) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.from) << 32) | e.succ_index;
    if (auto it = edge_memo_.find(key); it != edge_memo_.end())
      return it->second;
    const PathVerdict v = solve({}, e, st);
    edge_memo_[key] = v;
    return v;
  }

  PathVerdict solve(const std::vector<EdgeRef>& choices,
                    const std::optional<EdgeRef>& must_take,
                    SegmentTiming& st) {
    bmc::BmcQuery q;
    q.forced_choices = choices;
    q.must_take = must_take;
    const bmc::BmcResult r = bmc::solve(ts_, q, bmc_opts_);
    st.bmc_seconds += r.seconds;
    st.max_cnf_vars = std::max(st.max_cnf_vars, r.cnf_vars);
    st.max_cnf_clauses = std::max(st.max_cnf_clauses, r.cnf_clauses);
    switch (r.status) {
      case bmc::BmcStatus::TestData:
        return PathVerdict::Feasible;
      case bmc::BmcStatus::Infeasible:
        // UNSAT only proves infeasibility at complete depth (bmc.h); at a
        // truncated depth the run may simply not fit, and claiming
        // Infeasible would unsoundly drop reachable paths from the WCET.
        return depth_complete_ ? PathVerdict::Infeasible
                               : PathVerdict::Unknown;
      case bmc::BmcStatus::Unknown:
        return PathVerdict::Unknown;
    }
    return PathVerdict::Unknown;
  }

  const cfg::Cfg& g_;
  const tsys::TransitionSystem& ts_;
  bmc::BmcOptions bmc_opts_;
  bool enabled_;
  bool depth_complete_;
  std::map<std::uint64_t, PathVerdict> edge_memo_;
  std::map<BlockId, PathVerdict> reach_memo_;
};

void finalize_segment_bounds(SegmentTiming& st) {
  bool any = false;
  for (const PathTiming& p : st.paths) {
    switch (p.verdict) {
      case PathVerdict::Feasible: ++st.feasible; break;
      case PathVerdict::Infeasible: ++st.infeasible; break;
      case PathVerdict::Unknown: ++st.unknown; break;
    }
    if (p.verdict == PathVerdict::Infeasible) continue;
    if (!any) {
      st.bcet = st.wcet = p.cost;
      any = true;
    } else {
      st.bcet = std::min(st.bcet, p.cost);
      st.wcet = std::max(st.wcet, p.cost);
    }
  }
}

}  // namespace

std::int64_t CostModel::block_cost(const cfg::BasicBlock& b) const {
  std::int64_t total = 0;
  for (const minic::Stmt* s : b.stmts) {
    total += stmt_cost;
    if (s->cond) total += call_costs(*s->cond, *this);
    for (const auto& child : s->children)
      if (child) total += call_costs(*child, *this);
  }
  if (b.is_decision()) total += decision_cost;
  return total;
}

std::int64_t FunctionTiming::wcet_total() const {
  std::int64_t total = 0;
  for (const SegmentTiming& s : segments) total += s.wcet;
  return total;
}

std::int64_t FunctionTiming::bcet_total() const {
  std::int64_t total = 0;
  for (const SegmentTiming& s : segments) total += s.bcet;
  return total;
}

PipelineResult Pipeline::run(std::string_view source) const {
  PipelineResult result;

  DiagnosticEngine diags;
  std::unique_ptr<minic::Program> program;
  {
    StageTimer t(result.stages, "frontend");
    program = minic::compile(source, diags,
                             minic::SemaOptions{.warn_unbounded_loops = false});
  }
  if (!program) {
    result.error = diags.str();
    return result;
  }
  if (program->functions.empty()) {
    result.error = "no function definitions in translation unit\n";
    return result;
  }

  bool matched = opts_.function.empty();
  for (const auto& fn : program->functions) {
    if (!opts_.function.empty() && fn->name != opts_.function) continue;
    matched = true;

    FunctionTiming ft;
    ft.name = fn->name;

    std::unique_ptr<cfg::FunctionCfg> f;
    std::unique_ptr<cfg::PathAnalysis> pa;
    {
      StageTimer t(ft.stages, "cfg");
      f = cfg::build_cfg(*fn);
      pa = std::make_unique<cfg::PathAnalysis>(*f);
    }
    ft.blocks = f->graph.size();
    ft.decisions = f->graph.decision_count();
    ft.function_paths = pa->function_paths();

    core::Partition partition;
    {
      StageTimer t(ft.stages, "partition");
      partition = core::partition_function(
          *f, *pa, core::PartitionOptions{opts_.path_bound});
      const std::string invalid = core::validate_partition(*f, partition);
      if (!invalid.empty()) {
        result.error = "partition invariant violated in '" + fn->name +
                       "': " + invalid + "\n";
        return result;
      }
    }
    ft.instrumentation_points = partition.instrumentation_points();
    ft.fused_points = core::fused_instrumentation_points(*f, partition);
    ft.measurements = partition.measurements();

    std::unique_ptr<tsys::TranslationResult> tr;
    {
      StageTimer t(ft.stages, "translate");
      tsys::TranslateOptions topts;
      topts.pessimistic_widths = opts_.pessimistic_widths;
      tr = tsys::translate(*program, *f, diags, topts);
    }
    if (!tr) {
      result.error = diags.str();
      return result;
    }
    ft.state_bits = tr->ts.state_bits();
    ft.locations = tr->ts.num_locs;
    ft.transitions = tr->ts.transitions.size();

    // Unroll depth: automatic (locations + 1) covers loop-free systems;
    // bounded loops need every iteration's transitions unrolled. A depth
    // below `required` (clamped or user-forced) makes UNSAT inconclusive.
    bmc::BmcOptions bmc_opts = opts_.bmc;
    bool has_back_edge = false;
    for (const cfg::BasicBlock& blk : f->graph.blocks())
      for (const cfg::Edge& e : blk.succs) has_back_edge |= e.back;
    const std::uint64_t required =
        has_back_edge
            ? std::max<std::uint64_t>(arm_weight(f->graph, f->body) + 2,
                                      tr->ts.num_locs + 1)
            : tr->ts.num_locs + 1;
    if (bmc_opts.max_steps == 0) {
      bmc_opts.max_steps = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(required, opts_.max_unroll_depth));
    }
    const bool depth_complete = bmc_opts.max_steps >= required;
    ft.unroll_depth = bmc_opts.max_steps;

    {
      StageTimer t(ft.stages, "bmc");
      FeasibilityOracle oracle(f->graph, tr->ts, bmc_opts, opts_.run_bmc,
                               depth_complete);

      for (const core::Segment& seg : partition.segments) {
        SegmentTiming st;
        st.id = seg.id;
        st.kind = seg.kind;
        st.whole_function = seg.whole_function;
        st.num_blocks = seg.blocks.size();
        st.structural_paths = seg.paths;

        if (seg.kind == core::SegmentKind::Block) {
          PathTiming pt;
          pt.blocks = {seg.block};
          pt.cost = opts_.cost.block_cost(f->graph.block(seg.block));
          pt.verdict = opts_.run_bmc ? oracle.block_reachable(seg.block, st)
                                     : PathVerdict::Unknown;
          st.paths.push_back(std::move(pt));
        } else {
          std::vector<cfg::PathSpec> specs;
          st.enumeration_complete = cfg::enumerate_paths(
              *f, cfg::arm_entry_block(*seg.region), seg.blocks,
              opts_.max_paths_per_segment, specs);
          const std::optional<EdgeRef> anchor =
              seg.whole_function ? std::nullopt : seg.region->entry;
          for (const cfg::PathSpec& spec : specs) {
            PathTiming pt;
            pt.blocks = spec.blocks;
            for (BlockId b : spec.blocks)
              pt.cost += opts_.cost.block_cost(f->graph.block(b));
            pt.verdict = oracle.check_region_path(spec.choices, anchor, st);
            st.paths.push_back(std::move(pt));
          }
        }

        finalize_segment_bounds(st);
        ft.segments.push_back(std::move(st));
      }
    }

    result.functions.push_back(std::move(ft));
  }

  if (!matched) {
    result.error = "function '" + opts_.function + "' not found\n";
    return result;
  }
  result.ok = true;
  return result;
}

PartitionSummary partition_summary(std::string_view source,
                                   std::uint64_t max_bound,
                                   std::string_view function) {
  PartitionSummary out;
  DiagnosticEngine diags;
  std::unique_ptr<minic::Program> program = minic::compile(
      source, diags, minic::SemaOptions{.warn_unbounded_loops = false});
  if (!program) {
    out.error = diags.str();
    return out;
  }
  const minic::FunctionDef* fn = nullptr;
  if (function.empty()) {
    if (!program->functions.empty()) fn = program->functions.front().get();
  } else {
    fn = program->find_function(function);
  }
  if (fn == nullptr) {
    out.error = "function not found\n";
    return out;
  }
  out.function = fn->name;

  std::unique_ptr<cfg::FunctionCfg> f = cfg::build_cfg(*fn);
  cfg::PathAnalysis pa(*f);
  for (std::uint64_t b = 1; b <= max_bound; ++b) {
    const core::Partition p =
        core::partition_function(*f, pa, core::PartitionOptions{b});
    const std::string invalid = core::validate_partition(*f, p);
    if (!invalid.empty()) {
      out.error = "partition invariant violated at b=" + std::to_string(b) +
                  ": " + invalid + "\n";
      return out;
    }
    PartitionSummaryRow row;
    row.bound = b;
    row.ip = p.instrumentation_points();
    row.fused_ip = core::fused_instrumentation_points(*f, p);
    row.m = p.measurements();
    row.segments = p.segments.size();
    out.rows.push_back(row);
  }
  out.ok = true;
  return out;
}

}  // namespace tmg::driver
