// The `tmg` executable: timing-model generation by CFG partitioning and
// model checking, end to end over one mini-C source file.
#include <iostream>

#include "driver/cli.h"

int main(int argc, char** argv) {
  return tmg::driver::run_cli(argc, argv, std::cout, std::cerr);
}
