#include "driver/fabric.h"

#include <sstream>

#include "driver/shard.h"
#include "support/json.h"
#include "support/trace.h"

#if defined(_WIN32)

namespace tmg::driver {
bool run_fabric(const PipelineOptions&, const std::vector<std::string>&,
                const std::vector<std::string>&, const FabricOptions&,
                std::vector<std::optional<PipelineResult>>&,
                std::vector<std::string>&, FabricStats&, std::ostream&,
                const std::function<void(std::size_t)>&) {
  return false;  // no fork: caller falls back to the in-process path
}
}  // namespace tmg::driver

#else

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>

#include "cfg/paths.h"
#include "cfg/structure.h"
#include "minic/frontend.h"
#include "support/diagnostics.h"

namespace tmg::driver {

namespace {

// ------------------------------------------------------------- pre-parse

/// What the parent learns about one file before any worker runs: its
/// function list (program order — the merge key for split files) and a
/// work estimate per function. Frontend failures short-circuit here with
/// the same diagnostics front_half would produce, so the error bytes
/// match the in-process run.
struct FileShape {
  bool ok = false;
  std::string error;
  std::vector<std::string> functions;
  std::vector<double> fn_estimates;
  double estimate = 0.0;
};

FileShape preparse(const std::string& source, const PipelineOptions& opts) {
  FileShape shape;
  DiagnosticEngine diags;
  const std::unique_ptr<minic::Program> program = minic::compile(
      source, diags, minic::SemaOptions{.warn_unbounded_loops = false});
  if (!program) {
    shape.error = diags.str();
    return shape;
  }
  if (program->functions.empty()) {
    shape.error = "no function definitions in translation unit\n";
    return shape;
  }
  bool matched = opts.function.empty();
  for (const auto& fn : program->functions) {
    if (!opts.function.empty() && fn->name != opts.function) continue;
    matched = true;
    const std::unique_ptr<cfg::FunctionCfg> f = cfg::build_cfg(*fn);
    const cfg::PathAnalysis pa(*f);
    // log2 of the end-to-end path count works for both the exact and the
    // saturated representation; +1 keeps single-path functions weighted.
    const double est = pa.function_paths().log2() + 1.0;
    shape.functions.push_back(fn->name);
    shape.fn_estimates.push_back(est);
    shape.estimate += est;
  }
  if (!matched) {
    shape.error = "function '" + opts.function + "' not found\n";
    return shape;
  }
  shape.ok = true;
  return shape;
}

// ------------------------------------------------------------- protocol
//
// Per-unit framing over two pipes per worker: every message (both
// directions) is one decimal byte count, '\n', then that many payload
// bytes. Requests are {"unit":id,"index":file,"attempt":n,
// "functions":[...]} (empty array = whole file); responses reuse the
// shard wire's report schema as {"unit":id,"ok":true,"report":{...}
// [,"trace":[...]]} or {"unit":id,"ok":false,"error":"..."}. Closing the
// request pipe is the shutdown signal.

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, std::string_view payload) {
  std::string header = std::to_string(payload.size());
  header.push_back('\n');
  return write_all(fd, header) && write_all(fd, payload);
}

/// Blocking frame read (worker side). False on EOF or any malformation —
/// the worker simply exits and the parent sees the pipe close.
bool read_frame_blocking(int fd, std::string& payload) {
  std::string header;
  for (;;) {
    char c = 0;
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    if (c == '\n') break;
    if (c < '0' || c > '9' || header.size() > 18) return false;
    header.push_back(c);
  }
  if (header.empty()) return false;
  const std::size_t len = std::strtoull(header.c_str(), nullptr, 10);
  payload.assign(len, '\0');
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, payload.data() + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Parses one complete frame off the front of `buf` (parent side).
/// Returns 1 and fills `payload` when a frame was taken, 0 when more
/// bytes are needed, -1 on a torn/garbled header.
int take_frame(std::string& buf, std::string& payload) {
  const std::size_t nl = buf.find('\n');
  if (nl == std::string::npos) return buf.size() > 19 ? -1 : 0;
  if (nl == 0 || nl > 19) return -1;
  std::size_t len = 0;
  for (std::size_t i = 0; i < nl; ++i) {
    const char c = buf[i];
    if (c < '0' || c > '9') return -1;
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (buf.size() - nl - 1 < len) return 0;
  payload = buf.substr(nl + 1, len);
  buf.erase(0, nl + 1 + len);
  return 1;
}

// ------------------------------------------------------- fault injection

/// Crash-injection hook for tests and the CI smoke job; see
/// kFabricFaultEnv. Parsed once per worker from the environment the
/// parent forked with, and keyed on the unit's attempt number (carried in
/// the request), so a fault fires deterministically no matter which fresh
/// worker picks the retried unit up.
struct FaultSpec {
  enum class Kind : std::uint8_t { None, Kill, Exit3, Garbage, Truncate };
  Kind kind = Kind::None;
  std::string match;
  unsigned max_attempt = 1;
};

FaultSpec parse_fault_env() {
  FaultSpec fs;
  const char* env = std::getenv(kFabricFaultEnv);
  if (env == nullptr || *env == '\0') return fs;
  const std::string_view text(env);
  const std::size_t c1 = text.find(':');
  if (c1 == std::string_view::npos) return fs;
  const std::string_view kind = text.substr(0, c1);
  std::string_view rest = text.substr(c1 + 1);
  const std::size_t c2 = rest.rfind(':');
  if (c2 != std::string_view::npos && c2 + 1 < rest.size()) {
    const std::string_view tail = rest.substr(c2 + 1);
    bool digits = true;
    unsigned v = 0;
    for (const char c : tail) {
      if (c < '0' || c > '9') {
        digits = false;
        break;
      }
      v = v * 10 + static_cast<unsigned>(c - '0');
    }
    if (digits) {
      fs.max_attempt = v;
      rest = rest.substr(0, c2);
    }
  }
  fs.match = std::string(rest);
  if (kind == "kill") {
    fs.kind = FaultSpec::Kind::Kill;
  } else if (kind == "exit3") {
    fs.kind = FaultSpec::Kind::Exit3;
  } else if (kind == "garbage") {
    fs.kind = FaultSpec::Kind::Garbage;
  } else if (kind == "truncate") {
    fs.kind = FaultSpec::Kind::Truncate;
  }
  return fs;
}

/// Dies in the configured way instead of (or while) writing `payload`.
/// Only returns when the fault leaves the worker alive (Garbage mutates
/// the payload in place).
void inject_fault(const FaultSpec& fault, int resp_fd, std::string& payload) {
  switch (fault.kind) {
    case FaultSpec::Kind::Kill: {
      // Half a frame on the wire, then die without unwinding: the parent
      // sees a torn payload and a SIGKILL'd child.
      std::string header = std::to_string(payload.size());
      header.push_back('\n');
      write_all(resp_fd, header);
      write_all(resp_fd,
                std::string_view(payload).substr(0, payload.size() / 2));
      ::raise(SIGKILL);
      ::_exit(9);
    }
    case FaultSpec::Kind::Exit3:
      ::_exit(3);
    case FaultSpec::Kind::Garbage:
      // A perfectly framed response that is not JSON.
      payload = "** not a response **";
      return;
    case FaultSpec::Kind::Truncate: {
      // Header promises more bytes than ever arrive, then a clean exit:
      // the parent must treat the short frame as a crash, not hang.
      std::string header = std::to_string(payload.size() + 64);
      header.push_back('\n');
      write_all(resp_fd, header);
      write_all(resp_fd, payload);
      ::_exit(0);
    }
    case FaultSpec::Kind::None:
      return;
  }
}

// --------------------------------------------------------------- worker

/// The long-lived worker loop: pull request frames, run the pipeline on
/// the named unit, push response frames. Exits 0 on request-pipe EOF
/// (parent shutdown), 3 on any internal failure.
[[noreturn]] void worker_main(const PipelineOptions& popts,
                              const std::vector<std::string>& sources,
                              const std::vector<std::string>& paths,
                              int req_fd, int resp_fd) {
  const FaultSpec fault = parse_fault_env();
  std::string request;
  while (read_frame_blocking(req_fd, request)) {
    const std::optional<JsonValue> v = json_parse(request);
    if (!v) ::_exit(3);
    const auto unit = static_cast<std::size_t>(v->get("unit").as_int());
    const auto index = static_cast<std::size_t>(v->get("index").as_int());
    const auto attempt = static_cast<unsigned>(v->get("attempt").as_int());
    if (index >= sources.size()) ::_exit(3);

    PipelineOptions uopts = popts;
    std::string tag = paths[index] + "#";
    if (const JsonValue* fns = v->find("functions")) {
      for (const JsonValue& f : fns->items()) {
        if (!uopts.functions.empty()) tag += ",";
        uopts.functions.push_back(f.as_string());
        tag += f.as_string();
      }
    }

    // Per-unit spans only: drop whatever the previous unit (or the
    // parent, right after fork) left in the buffers. The steady-clock
    // epoch survives fork, so timestamps stay on the parent's timeline.
    trace::clear();
    const PipelineResult r = Pipeline(uopts).run(sources[index]);

    std::ostringstream os;
    if (r.ok) {
      os << "{\"unit\":" << unit
         << ",\"ok\":true,\"report\":" << serialize_pipeline_result(r);
      if (trace::enabled()) os << ",\"trace\":" << trace::events_json();
      os << "}";
    } else {
      os << "{\"unit\":" << unit
         << ",\"ok\":false,\"error\":" << json_quote(r.error) << "}";
    }
    std::string payload = os.str();
    if (fault.kind != FaultSpec::Kind::None &&
        tag.find(fault.match) != std::string::npos &&
        attempt <= fault.max_attempt)
      inject_fault(fault, resp_fd, payload);
    if (!write_frame(resp_fd, payload)) ::_exit(3);
  }
  ::_exit(0);
}

// --------------------------------------------------------------- parent

/// One work unit: a whole file (functions empty) or a function subset of
/// it. `attempt` is the 1-based attempt about to run (carried in the
/// request so fault injection stays deterministic across fresh workers).
struct Unit {
  std::size_t file = 0;
  std::vector<std::string> functions;
  unsigned attempt = 1;
  double estimate = 0.0;
};

/// Parent-side view of one pooled worker process.
struct Worker {
  pid_t pid = -1;
  int req_fd = -1;   // parent writes request frames
  int resp_fd = -1;  // parent reads response frames
  std::string buf;   // partial response bytes
  long in_flight = -1;  // unit id, -1 = idle
  int last_status = 0;  // wait status from the most recent reap
};

/// Merge bookkeeping for one input file.
struct FileState {
  bool resolved = false;     // results[] or crash_errors[] decided
  std::size_t pending = 0;   // units queued or in flight
  std::vector<std::string> fn_order;  // program order (merge key)
  std::vector<double> fn_estimates;
  std::vector<std::optional<FunctionTiming>> fn_results;
  /// Per-function program-level stages, merged in fn_order at assembly so
  /// even the --stats stage sums are independent of completion order.
  std::vector<std::vector<StageStats>> fn_stages;
  std::size_t jobs = 0;
  unsigned workers = 1;
};

struct Fabric {
  const PipelineOptions& popts;
  const std::vector<std::string>& sources;
  const std::vector<std::string>& paths;
  const FabricOptions& fopts;
  std::vector<std::optional<PipelineResult>>& results;
  std::vector<std::string>& crash_errors;
  FabricStats& stats;
  std::ostream& err;
  const std::function<void(std::size_t)>& on_file_done;

  std::vector<Unit> units;
  std::deque<std::size_t> queue;  // unit ids; retries go to the front
  std::vector<FileState> files;
  std::vector<Worker> workers;
  std::size_t unresolved = 0;

  void resolve(std::size_t file) {
    if (files[file].resolved) return;
    files[file].resolved = true;
    --unresolved;
    trace::progress_file_done();
    if (on_file_done) on_file_done(file);
  }

  /// Next dispatchable unit, skipping units of already-resolved files
  /// (siblings of an in-band failure or a hard-failed split).
  std::optional<std::size_t> next_unit() {
    while (!queue.empty()) {
      const std::size_t uid = queue.front();
      queue.pop_front();
      if (!files[units[uid].file].resolved) return uid;
    }
    return std::nullopt;
  }

  bool spawn_worker(unsigned s) {
    int req[2];
    int resp[2];
    if (::pipe(req) != 0) return false;
    if (::pipe(resp) != 0) {
      ::close(req[0]);
      ::close(req[1]);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(req[0]);
      ::close(req[1]);
      ::close(resp[0]);
      ::close(resp[1]);
      return false;
    }
    if (pid == 0) {
      // Child: drop every inherited parent-side pipe end, including the
      // sibling workers' — a write end held open here would keep a dead
      // sibling's response pipe from ever reaching EOF in the parent.
      for (const Worker& w : workers) {
        if (w.req_fd >= 0) ::close(w.req_fd);
        if (w.resp_fd >= 0) ::close(w.resp_fd);
      }
      ::close(req[1]);
      ::close(resp[0]);
      ::signal(SIGPIPE, SIG_DFL);
      try {
        worker_main(popts, sources, paths, req[0], resp[1]);
      } catch (...) {
        ::_exit(3);
      }
    }
    ::close(req[0]);
    ::close(resp[1]);
    workers[s].pid = pid;
    workers[s].req_fd = req[1];
    workers[s].resp_fd = resp[0];
    workers[s].buf.clear();
    workers[s].in_flight = -1;
    return true;
  }

  void reap_worker(unsigned s, bool force_kill) {
    Worker& w = workers[s];
    if (w.req_fd >= 0) ::close(w.req_fd);
    if (w.resp_fd >= 0) ::close(w.resp_fd);
    w.req_fd = -1;
    w.resp_fd = -1;
    if (w.pid > 0) {
      if (force_kill) ::kill(w.pid, SIGKILL);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
      w.last_status = status;
    }
    w.buf.clear();
  }

  /// Human-readable cause for the retry diagnostics: the wire-level
  /// reason when the parent saw one (torn frame, garbage payload), the
  /// wait status otherwise.
  std::string crash_detail(unsigned s, const std::string& wire_reason) {
    const int status = workers[s].last_status;
    if (!wire_reason.empty()) return wire_reason;
    if (WIFSIGNALED(status))
      return "worker killed by signal " + std::to_string(WTERMSIG(status));
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
      return "worker exited with status " +
             std::to_string(WEXITSTATUS(status));
    return "worker closed the pipe mid-unit";
  }

  /// A worker died (or returned a poisoned frame) with a unit in flight:
  /// retry the unit at finer granularity — split a whole-file unit into
  /// per-function units, re-run a function unit, and hard-fail only the
  /// unit once its attempts are exhausted. The run itself always
  /// continues.
  void handle_crash(unsigned s, const std::string& wire_reason) {
    const long uid = workers[s].in_flight;
    workers[s].in_flight = -1;
    reap_worker(s, /*force_kill=*/true);
    ++stats.crashes;
    if (uid < 0) return;
    const std::string detail = crash_detail(s, wire_reason);
    Unit& u = units[static_cast<std::size_t>(uid)];
    FileState& fs = files[u.file];
    if (fs.resolved) return;  // sibling of an already-decided file

    const bool splittable = u.functions.empty() &&
                            fs.fn_order.size() > 1 && popts.function.empty();
    if (splittable) {
      // File -> per-function units, fresh attempt counters. Retries jump
      // the queue (pushed to the front, first function first) so a
      // crashing file cannot starve behind the backlog.
      ++stats.splits;
      ++stats.retries;
      err << "tmg: fabric: " << detail << "; retrying '" << paths[u.file]
          << "' per-function\n";
      fs.pending -= 1;
      const std::size_t file = u.file;  // u invalidated by push_back below
      for (std::size_t k = fs.fn_order.size(); k-- > 0;) {
        units.push_back(Unit{file,
                             {fs.fn_order[k]},
                             1,
                             fs.fn_estimates[k]});
        queue.push_front(units.size() - 1);
        fs.pending += 1;
        ++stats.units;
      }
      return;
    }
    if (u.attempt < fopts.max_attempts) {
      ++u.attempt;
      ++stats.retries;
      err << "tmg: fabric: " << detail << "; retrying '" << paths[u.file]
          << "' (attempt " << u.attempt << " of " << fopts.max_attempts
          << ")\n";
      queue.push_front(static_cast<std::size_t>(uid));
      return;
    }
    // Hard failure: only this unit's file gets a diagnostic row; every
    // other file still completes and the run exits 0.
    ++stats.hard_failures;
    std::string what = "worker crashed analysing '" + paths[u.file] + "'";
    if (!u.functions.empty()) what += " (function " + u.functions[0] + ")";
    what += " " + std::to_string(fopts.max_attempts) + " times: " + detail;
    crash_errors[u.file] = what;
    err << "tmg: fabric: " << what << "\n";
    resolve(u.file);
  }

  /// Folds one completed unit's report into its file slot; fires the
  /// file's merge when its last unit lands.
  void complete_unit(std::size_t uid, PipelineResult r) {
    const Unit& u = units[uid];
    FileState& fs = files[u.file];
    if (fs.resolved) return;
    fs.pending -= 1;
    if (u.functions.empty()) {
      results[u.file] = std::move(r);
      resolve(u.file);
      return;
    }
    for (FunctionTiming& ft : r.functions) {
      const auto it =
          std::find(fs.fn_order.begin(), fs.fn_order.end(), ft.name);
      if (it == fs.fn_order.end()) continue;
      const auto idx = static_cast<std::size_t>(it - fs.fn_order.begin());
      fs.fn_stages[idx] = r.stages;
      fs.fn_results[idx] = std::move(ft);
    }
    fs.jobs += r.analysis_jobs;
    fs.workers = std::max(fs.workers, r.analysis_workers);
    if (fs.pending > 0) return;

    // Assemble the merged file result: functions in program order,
    // analysis_jobs summed (per-path jobs are disjoint across function
    // units, so the sum equals the whole-file count byte-for-byte),
    // stages summed by name in program order.
    PipelineResult out;
    out.ok = true;
    out.analysis_jobs = fs.jobs;
    out.analysis_workers = fs.workers;
    for (std::size_t i = 0; i < fs.fn_order.size(); ++i) {
      if (!fs.fn_results[i]) {
        crash_errors[u.file] = "worker pool lost function '" +
                               fs.fn_order[i] + "' of '" + paths[u.file] +
                               "'";
        resolve(u.file);
        return;
      }
      for (const StageStats& st : fs.fn_stages[i]) {
        const auto sit = std::find_if(
            out.stages.begin(), out.stages.end(),
            [&st](const StageStats& o) { return o.name == st.name; });
        if (sit == out.stages.end())
          out.stages.push_back(st);
        else
          sit->seconds += st.seconds;
      }
      out.functions.push_back(std::move(*fs.fn_results[i]));
    }
    results[u.file] = std::move(out);
    resolve(u.file);
  }

  /// An in-band pipeline failure (the worker ran fine, the source did
  /// not): the file fails exactly like the in-process run — no retry,
  /// siblings of a split file are discarded on arrival.
  void complete_unit_error(std::size_t uid, std::string error) {
    const Unit& u = units[uid];
    if (files[u.file].resolved) return;
    PipelineResult r;
    r.ok = false;
    r.error = std::move(error);
    results[u.file] = std::move(r);
    resolve(u.file);
  }

  /// Validates and applies one response frame; any malformation is a
  /// crash of the in-flight unit (the worker is poisoned — killed and
  /// replaced).
  void handle_response(unsigned s, const std::string& payload) {
    const std::optional<JsonValue> v = json_parse(payload);
    if (!v || v->kind() != JsonValue::Kind::Object) {
      handle_crash(s, "garbage response payload");
      return;
    }
    const JsonValue* unit = v->find("unit");
    const JsonValue* ok = v->find("ok");
    if (unit == nullptr || !unit->is_int() || ok == nullptr ||
        ok->kind() != JsonValue::Kind::Bool ||
        unit->as_int() != workers[s].in_flight) {
      handle_crash(s, "response for the wrong unit");
      return;
    }
    const auto uid = static_cast<std::size_t>(workers[s].in_flight);
    if (ok->as_bool()) {
      PipelineResult r;
      const JsonValue* report = v->find("report");
      if (report == nullptr || !parse_pipeline_result(*report, r)) {
        handle_crash(s, "corrupt report payload");
        return;
      }
      if (trace::enabled())
        if (const JsonValue* tr = v->find("trace"))
          trace::import_events(*tr, static_cast<int>(s) + 2);
      workers[s].in_flight = -1;
      complete_unit(uid, std::move(r));
    } else {
      const JsonValue* error = v->find("error");
      workers[s].in_flight = -1;
      complete_unit_error(
          uid, error != nullptr ? error->as_string() : "unknown error");
    }
  }

  /// Sends one unit to worker `s` (spawning it if needed). A write
  /// failure is a crash of the unit just handed over — the retry path
  /// takes it from there.
  void dispatch(unsigned s, std::size_t uid) {
    Unit& u = units[uid];
    std::ostringstream os;
    os << "{\"unit\":" << uid << ",\"index\":" << u.file
       << ",\"attempt\":" << u.attempt << ",\"functions\":[";
    for (std::size_t i = 0; i < u.functions.size(); ++i) {
      if (i > 0) os << ",";
      os << json_quote(u.functions[i]);
    }
    os << "]}";
    workers[s].in_flight = static_cast<long>(uid);
    ++stats.dispatches;
    if (!write_frame(workers[s].req_fd, os.str()))
      handle_crash(s, "request write failed: " +
                          std::string(std::strerror(errno)));
  }

  void shutdown_workers() {
    for (unsigned s = 0; s < workers.size(); ++s) {
      // A worker still chewing a discarded sibling unit would only notice
      // the closed pipes after finishing it; don't wait for wasted work.
      reap_worker(s, /*force_kill=*/workers[s].in_flight >= 0);
    }
  }

  bool run();
};

bool Fabric::run() {
  const std::size_t n = sources.size();
  files.resize(n);
  crash_errors.assign(n, std::string());

  // ---------------------------------------------------------- pre-parse
  // Rank the pending files by a cheap path-count estimate; frontend
  // failures resolve here (byte-identical diagnostics, no fork burned).
  std::vector<std::size_t> pending;
  {
    trace::TraceSpan span("fabric.preparse", "fabric");
    for (std::size_t i = 0; i < n; ++i) {
      if (results[i].has_value()) continue;  // cache hit, pre-filled
      ++unresolved;
      FileShape shape = preparse(sources[i], popts);
      if (!shape.ok) {
        PipelineResult r;
        r.error = std::move(shape.error);
        results[i] = std::move(r);
        resolve(i);
        continue;
      }
      files[i].fn_order = std::move(shape.functions);
      files[i].fn_estimates = std::move(shape.fn_estimates);
      files[i].fn_results.resize(files[i].fn_order.size());
      files[i].fn_stages.resize(files[i].fn_order.size());
      pending.push_back(i);
    }
  }
  if (pending.empty()) return true;

  // ------------------------------------------------------------- units
  // Whole-file units by default; files whose estimate dominates the mean
  // are split per-function up-front so one giant file cannot serialise
  // the tail of the run.
  double mean = 0.0;
  for (const std::size_t i : pending) {
    double est = 0.0;
    for (const double e : files[i].fn_estimates) est += e;
    mean += est;
  }
  mean /= static_cast<double>(pending.size());
  for (const std::size_t i : pending) {
    FileState& fs = files[i];
    double est = 0.0;
    for (const double e : fs.fn_estimates) est += e;
    const bool split = popts.function.empty() && fs.fn_order.size() > 1 &&
                       est >= fopts.split_factor * mean;
    if (split) {
      ++stats.splits;
      for (std::size_t k = 0; k < fs.fn_order.size(); ++k) {
        units.push_back(Unit{i, {fs.fn_order[k]}, 1, fs.fn_estimates[k]});
        fs.pending += 1;
      }
    } else {
      units.push_back(Unit{i, {}, 1, est});
      fs.pending += 1;
    }
  }
  stats.units = units.size();

  // Biggest-first dispatch order, stable by creation (= input) order.
  std::vector<std::size_t> order(units.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return units[a].estimate > units[b].estimate;
                   });
  for (const std::size_t uid : order) queue.push_back(uid);

  // -------------------------------------------------------------- pool
  const unsigned pool = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, fopts.pool), units.size()));
  workers.resize(pool);

  // The parent writes into request pipes of workers that may just have
  // died; that must surface as EPIPE on the write, not kill the parent.
  struct SigPipeGuard {
    void (*saved)(int);
    SigPipeGuard() : saved(::signal(SIGPIPE, SIG_IGN)) {}
    ~SigPipeGuard() { ::signal(SIGPIPE, saved); }
  } sigpipe_guard;

  trace::TraceSpan span("fabric.run", "fabric");
  while (unresolved > 0) {
    // Hand units to idle workers, respawning slots whose worker died.
    for (unsigned s = 0; s < pool && unresolved > 0; ++s) {
      if (workers[s].in_flight >= 0) continue;
      std::optional<std::size_t> uid = next_unit();
      if (!uid) break;
      if (workers[s].pid <= 0 && !spawn_worker(s)) {
        queue.push_front(*uid);
        break;  // resource-limited; keep going with the live workers
      }
      dispatch(s, *uid);
    }
    if (unresolved == 0) break;

    std::vector<pollfd> fds;
    std::vector<unsigned> slot_of;
    for (unsigned s = 0; s < pool; ++s) {
      if (workers[s].in_flight < 0 || workers[s].resp_fd < 0) continue;
      fds.push_back(pollfd{workers[s].resp_fd, POLLIN, 0});
      slot_of.push_back(s);
    }
    if (fds.empty()) {
      // Nothing in flight but files unresolved: every spawn failed while
      // work remains. Fall back to the in-process path.
      shutdown_workers();
      return false;
    }
    if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1) < 0) {
      if (errno == EINTR) continue;
      shutdown_workers();
      return false;
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      const unsigned s = slot_of[k];
      if (workers[s].in_flight < 0) continue;  // crashed earlier this pass
      std::array<char, 1 << 16> chunk{};
      const ssize_t r =
          ::read(workers[s].resp_fd, chunk.data(), chunk.size());
      if (r < 0) {
        if (errno == EINTR) continue;
        handle_crash(s, "response read failed: " +
                            std::string(std::strerror(errno)));
        continue;
      }
      if (r == 0) {
        handle_crash(s, "");  // EOF mid-unit; detail from the wait status
        continue;
      }
      workers[s].buf.append(chunk.data(), static_cast<std::size_t>(r));
      for (;;) {
        std::string payload;
        const int f = take_frame(workers[s].buf, payload);
        if (f == 0) break;
        if (f < 0) {
          handle_crash(s, "torn response frame");
          break;
        }
        handle_response(s, payload);
        if (workers[s].resp_fd < 0) break;  // response poisoned the slot
      }
    }
  }
  shutdown_workers();

  auto& reg = trace::MetricsRegistry::instance();
  reg.counter("fabric.units").add(stats.units);
  reg.counter("fabric.dispatches").add(stats.dispatches);
  reg.counter("fabric.retries").add(stats.retries);
  reg.counter("fabric.splits").add(stats.splits);
  reg.counter("fabric.crashes").add(stats.crashes);
  reg.counter("fabric.hard_failures").add(stats.hard_failures);
  return true;
}

}  // namespace

bool run_fabric(const PipelineOptions& popts,
                const std::vector<std::string>& sources,
                const std::vector<std::string>& paths,
                const FabricOptions& fopts,
                std::vector<std::optional<PipelineResult>>& results,
                std::vector<std::string>& crash_errors, FabricStats& stats,
                std::ostream& err,
                const std::function<void(std::size_t)>& on_file_done) {
  Fabric fabric{.popts = popts,
                .sources = sources,
                .paths = paths,
                .fopts = fopts,
                .results = results,
                .crash_errors = crash_errors,
                .stats = stats,
                .err = err,
                .on_file_done = on_file_done,
                .units = {},
                .queue = {},
                .files = {},
                .workers = {},
                .unresolved = 0};
  return fabric.run();
}

}  // namespace tmg::driver

#endif  // !_WIN32
