#include "driver/report.h"

#include <sstream>

#include "support/table.h"

namespace tmg::driver {

namespace {

/// Minimal JSON string escaping (names here are identifiers, but the
/// diagnostics path can carry arbitrary source text).
std::string json_str(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

TextTable segment_table(const FunctionTiming& ft, bool with_function_col) {
  std::vector<std::string> header;
  if (with_function_col) header.push_back("function");
  for (const char* h : {"segment", "kind", "blocks", "paths", "feasible",
                        "infeasible", "unknown", "bcet", "wcet", "bmc_ms"})
    header.emplace_back(h);
  TextTable t(std::move(header));

  for (const SegmentTiming& s : ft.segments) {
    std::vector<std::string> row;
    if (with_function_col) row.push_back(ft.name);
    row.push_back(std::to_string(s.id));
    std::string kind = segment_kind_name(s.kind);
    if (s.whole_function) kind = "function";
    row.push_back(kind);
    row.push_back(std::to_string(s.num_blocks));
    std::string paths = s.structural_paths.str();
    if (!s.enumeration_complete) paths += "*";
    row.push_back(paths);
    row.push_back(std::to_string(s.feasible));
    row.push_back(std::to_string(s.infeasible));
    row.push_back(std::to_string(s.unknown));
    row.push_back(s.dead() ? "-" : std::to_string(s.bcet));
    row.push_back(s.dead() ? "-" : std::to_string(s.wcet));
    row.push_back(fmt_double(s.bmc_seconds * 1000.0, 2));
    t.add_row(std::move(row));
  }
  return t;
}

void render_text(const PipelineResult& result, const PipelineOptions& opts,
                 bool with_stages, std::ostream& os) {
  for (const FunctionTiming& ft : result.functions) {
    os << "== function " << ft.name << " ==\n";
    os << "blocks: " << ft.blocks << "  decisions: " << ft.decisions
       << "  end-to-end paths: " << ft.function_paths.str()
       << "  state bits: " << ft.state_bits << "  locations: " << ft.locations
       << "  transitions: " << ft.transitions
       << "  unroll depth: " << ft.unroll_depth << "\n\n";

    os << "segment timing model (path bound b=" << opts.path_bound << "):\n";
    os << segment_table(ft, /*with_function_col=*/false).str();
    os << "\nsegments: " << ft.segments.size()
       << "  ip: " << ft.instrumentation_points
       << "  fused ip: " << ft.fused_points
       << "  measurements m: " << ft.measurements.str()
       << "  bcet total: " << ft.bcet_total()
       << "  wcet total: " << ft.wcet_total() << "\n";

    if (with_stages) {
      TextTable st({"stage", "seconds"});
      for (const StageStats& s : ft.stages)
        st.add(s.name, fmt_double(s.seconds, 4));
      os << "\nstage timing:\n" << st.str();
    }
    os << "\n";
  }
  if (with_stages && !result.stages.empty()) {
    // Program-level stages (frontend) run once, not per function.
    TextTable st({"program stage", "seconds"});
    for (const StageStats& s : result.stages)
      st.add(s.name, fmt_double(s.seconds, 4));
    os << st.str() << "\n";
  }
}

void render_csv(const PipelineResult& result, std::ostream& os) {
  bool first = true;
  for (const FunctionTiming& ft : result.functions) {
    TextTable t = segment_table(ft, /*with_function_col=*/true);
    const std::string csv = t.csv();
    if (first) {
      os << csv;
      first = false;
    } else {
      // Skip the repeated header line.
      const std::size_t nl = csv.find('\n');
      if (nl != std::string::npos) os << csv.substr(nl + 1);
    }
  }
}

void render_json(const PipelineResult& result, const PipelineOptions& opts,
                 std::ostream& os) {
  os << "{\"path_bound\":" << opts.path_bound << ",\"functions\":[";
  bool first_fn = true;
  for (const FunctionTiming& ft : result.functions) {
    if (!first_fn) os << ",";
    first_fn = false;
    os << "{\"name\":" << json_str(ft.name) << ",\"blocks\":" << ft.blocks
       << ",\"decisions\":" << ft.decisions
       << ",\"paths\":" << json_str(ft.function_paths.str())
       << ",\"state_bits\":" << ft.state_bits
       << ",\"locations\":" << ft.locations
       << ",\"transitions\":" << ft.transitions
       << ",\"unroll_depth\":" << ft.unroll_depth
       << ",\"ip\":" << ft.instrumentation_points
       << ",\"fused_ip\":" << ft.fused_points
       << ",\"measurements\":" << json_str(ft.measurements.str())
       << ",\"bcet_total\":" << ft.bcet_total()
       << ",\"wcet_total\":" << ft.wcet_total() << ",\"segments\":[";
    bool first_seg = true;
    for (const SegmentTiming& s : ft.segments) {
      if (!first_seg) os << ",";
      first_seg = false;
      os << "{\"id\":" << s.id << ",\"kind\":"
         << json_str(s.whole_function ? "function" : segment_kind_name(s.kind))
         << ",\"blocks\":" << s.num_blocks
         << ",\"paths\":" << json_str(s.structural_paths.str())
         << ",\"enumeration_complete\":"
         << (s.enumeration_complete ? "true" : "false")
         << ",\"feasible\":" << s.feasible
         << ",\"infeasible\":" << s.infeasible << ",\"unknown\":" << s.unknown
         << ",\"dead\":" << (s.dead() ? "true" : "false")
         << ",\"bcet\":" << s.bcet << ",\"wcet\":" << s.wcet
         << ",\"bmc_seconds\":" << s.bmc_seconds
         << ",\"max_cnf_vars\":" << s.max_cnf_vars
         << ",\"max_cnf_clauses\":" << s.max_cnf_clauses << "}";
    }
    os << "]}";
  }
  os << "]}\n";
}

TextTable summary_table(const PartitionSummary& summary) {
  TextTable t({"b", "segments", "ip", "fused_ip", "m"});
  for (const PartitionSummaryRow& r : summary.rows)
    t.add(r.bound, r.segments, r.ip, r.fused_ip, r.m.str());
  return t;
}

}  // namespace

bool parse_format(std::string_view name, ReportFormat& out) {
  if (name == "text") {
    out = ReportFormat::Text;
  } else if (name == "csv") {
    out = ReportFormat::Csv;
  } else if (name == "json") {
    out = ReportFormat::Json;
  } else {
    return false;
  }
  return true;
}

std::string verdict_name(PathVerdict v) {
  switch (v) {
    case PathVerdict::Feasible: return "feasible";
    case PathVerdict::Infeasible: return "infeasible";
    case PathVerdict::Unknown: return "unknown";
  }
  return "?";
}

std::string segment_kind_name(core::SegmentKind k) {
  switch (k) {
    case core::SegmentKind::Block: return "block";
    case core::SegmentKind::Region: return "region";
  }
  return "?";
}

void render_report(const PipelineResult& result, const PipelineOptions& opts,
                   ReportFormat format, bool with_stages, std::ostream& os) {
  switch (format) {
    case ReportFormat::Text:
      render_text(result, opts, with_stages, os);
      break;
    case ReportFormat::Csv:
      render_csv(result, os);
      break;
    case ReportFormat::Json:
      render_json(result, opts, os);
      break;
  }
}

void render_partition_summary(const PartitionSummary& summary,
                              ReportFormat format, std::ostream& os) {
  switch (format) {
    case ReportFormat::Text:
      os << "partition summary for " << summary.function
         << " (Table 1 style):\n";
      os << summary_table(summary).str();
      break;
    case ReportFormat::Csv:
      os << summary_table(summary).csv();
      break;
    case ReportFormat::Json: {
      os << "{\"function\":" << json_str(summary.function) << ",\"rows\":[";
      bool first = true;
      for (const PartitionSummaryRow& r : summary.rows) {
        if (!first) os << ",";
        first = false;
        os << "{\"b\":" << r.bound << ",\"segments\":" << r.segments
           << ",\"ip\":" << r.ip << ",\"fused_ip\":" << r.fused_ip
           << ",\"m\":" << json_str(r.m.str()) << "}";
      }
      os << "]}\n";
      break;
    }
  }
}

}  // namespace tmg::driver
