#include "driver/report.h"

#include <sstream>

#include "support/json.h"
#include "support/table.h"

namespace tmg::driver {

namespace {

using tmg::json_quote;

/// Verdict-and-replay totals for aggregate rows.
struct Tally {
  std::size_t functions = 0;
  std::size_t segments = 0;
  std::size_t paths = 0;
  std::size_t feasible = 0;
  std::size_t infeasible = 0;
  std::size_t unknown = 0;
  std::size_t validated = 0;
  std::size_t mismatched = 0;
  std::size_t conclusive = 0;
  std::int64_t wcet_total = 0;
  std::size_t analysis_jobs = 0;

  void add(const PipelineResult& r) {
    functions += r.functions.size();
    analysis_jobs += r.analysis_jobs;
    for (const FunctionTiming& ft : r.functions) {
      segments += ft.segments.size();
      wcet_total += ft.wcet_total();
      for (const SegmentTiming& s : ft.segments) {
        paths += s.paths.size();
        feasible += s.feasible;
        infeasible += s.infeasible;
        unknown += s.unknown;
        validated += s.validated;
        mismatched += s.mismatched;
        conclusive += s.conclusive() ? 1 : 0;
      }
    }
  }
};

TextTable segment_table(const FunctionTiming& ft, const std::string* file,
                        bool with_function_col, bool with_stats) {
  std::vector<std::string> header;
  if (file != nullptr) header.emplace_back("file");
  if (with_function_col) header.emplace_back("function");
  for (const char* h : {"segment", "kind", "blocks", "paths", "feasible",
                        "infeasible", "unknown", "validated", "mismatch",
                        "bcet", "wcet", "conclusive"})
    header.emplace_back(h);
  if (with_stats) header.emplace_back("bmc_ms");
  TextTable t(std::move(header));

  for (const SegmentTiming& s : ft.segments) {
    std::vector<std::string> row;
    if (file != nullptr) row.push_back(*file);
    if (with_function_col) row.push_back(ft.name);
    row.push_back(std::to_string(s.id));
    std::string kind = segment_kind_name(s.kind);
    if (s.whole_function) kind = "function";
    row.push_back(kind);
    row.push_back(std::to_string(s.num_blocks));
    std::string paths = s.structural_paths.str();
    if (!s.enumeration_complete) paths += "*";
    row.push_back(paths);
    row.push_back(std::to_string(s.feasible));
    row.push_back(std::to_string(s.infeasible));
    row.push_back(std::to_string(s.unknown));
    row.push_back(std::to_string(s.validated));
    row.push_back(std::to_string(s.mismatched));
    row.push_back(s.dead() ? "-" : std::to_string(s.bcet));
    row.push_back(s.dead() ? "-" : std::to_string(s.wcet));
    row.push_back(s.conclusive() ? "yes" : "no");
    if (with_stats) row.push_back(fmt_double(s.bmc_seconds * 1000.0, 2));
    t.add_row(std::move(row));
  }
  return t;
}

/// The per-pass before/after table (shown whenever passes ran).
TextTable pass_table(const FunctionTiming& ft, const std::string* file,
                     bool with_function_col) {
  std::vector<std::string> header;
  if (file != nullptr) header.emplace_back("file");
  if (with_function_col) header.emplace_back("function");
  for (const char* h : {"pass", "vars_before", "vars_after", "bits_before",
                        "bits_after", "trans_before", "trans_after",
                        "depth_before", "depth_after", "details"})
    header.emplace_back(h);
  TextTable t(std::move(header));
  for (const opt::PassReport& p : ft.pass_reports) {
    std::vector<std::string> row;
    if (file != nullptr) row.push_back(*file);
    if (with_function_col) row.push_back(ft.name);
    row.push_back(opt::pass_name(p.pass));
    row.push_back(std::to_string(p.vars_before));
    row.push_back(std::to_string(p.vars_after));
    row.push_back(std::to_string(p.data_bits_before));
    row.push_back(std::to_string(p.data_bits_after));
    row.push_back(std::to_string(p.transitions_before));
    row.push_back(std::to_string(p.transitions_after));
    row.push_back(std::to_string(p.depth_before));
    row.push_back(std::to_string(p.depth_after));
    row.push_back(std::to_string(p.details));
    t.add_row(std::move(row));
  }
  return t;
}

/// One pass report as a JSON object (shared by the per-function report
/// and the --table2 rows).
void pass_json(const opt::PassReport& p, std::ostream& os) {
  os << "{\"pass\":" << json_quote(opt::pass_name(p.pass))
     << ",\"vars_before\":" << p.vars_before
     << ",\"vars_after\":" << p.vars_after
     << ",\"bits_before\":" << p.data_bits_before
     << ",\"bits_after\":" << p.data_bits_after
     << ",\"transitions_before\":" << p.transitions_before
     << ",\"transitions_after\":" << p.transitions_after
     << ",\"depth_before\":" << p.depth_before
     << ",\"depth_after\":" << p.depth_after << ",\"details\":" << p.details
     << "}";
}

void render_text(const PipelineResult& result, const PipelineOptions& opts,
                 bool with_stages, std::ostream& os) {
  for (const FunctionTiming& ft : result.functions) {
    os << "== function " << ft.name << " ==\n";
    os << "blocks: " << ft.blocks << "  decisions: " << ft.decisions
       << "  end-to-end paths: " << ft.function_paths.str()
       << "  state bits: " << ft.state_bits << "  locations: " << ft.locations
       << "  transitions: " << ft.transitions
       << "  unroll depth: " << ft.unroll_depth << "\n\n";

    if (!ft.pass_reports.empty()) {
      os << "optimisation passes (state bits " << ft.state_bits_before
         << " -> " << ft.state_bits << ", locations "
         << ft.locations_before << " -> " << ft.locations
         << ", transitions " << ft.transitions_before << " -> "
         << ft.transitions << "):\n";
      os << pass_table(ft, nullptr, /*with_function_col=*/false).str()
         << "\n";
    }

    os << "segment timing model (path bound b=" << opts.path_bound << "):\n";
    os << segment_table(ft, nullptr, /*with_function_col=*/false, with_stages)
              .str();
    os << "\nsegments: " << ft.segments.size()
       << "  ip: " << ft.instrumentation_points
       << "  fused ip: " << ft.fused_points
       << "  measurements m: " << ft.measurements.str()
       << "  bcet total: " << ft.bcet_total()
       << "  wcet total: " << ft.wcet_total() << "\n";

    if (with_stages) {
      TextTable st({"stage", "seconds"});
      for (const StageStats& s : ft.stages)
        st.add(s.name, fmt_double(s.seconds, 4));
      os << "\nstage timing:\n" << st.str();
      std::uint64_t sd = 0, sp = 0, sc = 0, sr = 0;
      for (const SegmentTiming& s : ft.segments) {
        sd += s.solver_decisions;
        sp += s.solver_propagations;
        sc += s.solver_conflicts;
        sr += s.solver_restarts;
      }
      os << "solver: decisions " << sd << "  propagations " << sp
         << "  conflicts " << sc << "  restarts " << sr << "\n";
    }
    os << "\n";
  }
  if (with_stages) {
    os << "analysis jobs: " << result.analysis_jobs
       << "  workers: " << result.analysis_workers << "\n";
    if (!result.stages.empty()) {
      // Program-level stages (frontend, analysis) run once, not per
      // function.
      TextTable st({"program stage", "seconds"});
      for (const StageStats& s : result.stages)
        st.add(s.name, fmt_double(s.seconds, 4));
      os << st.str() << "\n";
    }
  }
}

void render_csv(const PipelineResult& result, const std::string* file,
                bool with_stages, bool with_header, std::ostream& os) {
  bool first = with_header;
  for (const FunctionTiming& ft : result.functions) {
    TextTable t =
        segment_table(ft, file, /*with_function_col=*/true, with_stages);
    const std::string csv = t.csv();
    if (first) {
      os << csv;
      first = false;
    } else {
      // Skip the repeated header line.
      const std::size_t nl = csv.find('\n');
      if (nl != std::string::npos) os << csv.substr(nl + 1);
    }
  }
}

/// Second CSV block under the segment rows: one row per executed pass.
void render_csv_passes(const PipelineResult& result, const std::string* file,
                       bool with_header, std::ostream& os) {
  bool first = with_header;
  for (const FunctionTiming& ft : result.functions) {
    if (ft.pass_reports.empty()) continue;
    const std::string csv =
        pass_table(ft, file, /*with_function_col=*/true).csv();
    if (first) {
      os << csv;
      first = false;
    } else {
      const std::size_t nl = csv.find('\n');
      if (nl != std::string::npos) os << csv.substr(nl + 1);
    }
  }
}

/// The {"name":...} object of one function (no enclosing list).
void render_json_function(const FunctionTiming& ft, bool with_stages,
                          std::ostream& os) {
  os << "{\"name\":" << json_quote(ft.name) << ",\"blocks\":" << ft.blocks
     << ",\"decisions\":" << ft.decisions
     << ",\"paths\":" << json_quote(ft.function_paths.str())
     << ",\"state_bits\":" << ft.state_bits
     << ",\"locations\":" << ft.locations
     << ",\"transitions\":" << ft.transitions
     << ",\"unroll_depth\":" << ft.unroll_depth
     << ",\"ip\":" << ft.instrumentation_points
     << ",\"fused_ip\":" << ft.fused_points
     << ",\"measurements\":" << json_quote(ft.measurements.str())
     << ",\"bcet_total\":" << ft.bcet_total()
     << ",\"wcet_total\":" << ft.wcet_total();
  if (!ft.pass_reports.empty()) {
    os << ",\"state_bits_before\":" << ft.state_bits_before
       << ",\"locations_before\":" << ft.locations_before
       << ",\"transitions_before\":" << ft.transitions_before
       << ",\"passes\":[";
    bool first_pass = true;
    for (const opt::PassReport& p : ft.pass_reports) {
      if (!first_pass) os << ",";
      first_pass = false;
      pass_json(p, os);
    }
    os << "]";
  }
  os << ",\"segments\":[";
  bool first_seg = true;
  for (const SegmentTiming& s : ft.segments) {
    if (!first_seg) os << ",";
    first_seg = false;
    os << "{\"id\":" << s.id << ",\"kind\":"
       << json_quote(s.whole_function ? "function" : segment_kind_name(s.kind))
       << ",\"blocks\":" << s.num_blocks
       << ",\"paths\":" << json_quote(s.structural_paths.str())
       << ",\"enumeration_complete\":"
       << (s.enumeration_complete ? "true" : "false")
       << ",\"feasible\":" << s.feasible
       << ",\"infeasible\":" << s.infeasible << ",\"unknown\":" << s.unknown
       << ",\"validated\":" << s.validated
       << ",\"mismatch\":" << s.mismatched
       << ",\"dead\":" << (s.dead() ? "true" : "false")
       << ",\"conclusive\":" << (s.conclusive() ? "true" : "false")
       << ",\"bcet\":" << s.bcet << ",\"wcet\":" << s.wcet
       << ",\"max_cnf_vars\":" << s.max_cnf_vars
       << ",\"max_cnf_clauses\":" << s.max_cnf_clauses;
    if (with_stages) os << ",\"bmc_seconds\":" << s.bmc_seconds;
    os << "}";
  }
  os << "]";
  if (with_stages) {
    os << ",\"stages\":{";
    bool first_stage = true;
    for (const StageStats& st : ft.stages) {
      if (!first_stage) os << ",";
      first_stage = false;
      os << json_quote(st.name) << ":" << st.seconds;
    }
    os << "}";
  }
  os << "}";
}

/// The report object of one PipelineResult (no trailing newline).
void render_json_object(const PipelineResult& result,
                        const PipelineOptions& opts, bool with_stages,
                        std::ostream& os) {
  os << "{\"path_bound\":" << opts.path_bound
     << ",\"analysis_jobs\":" << result.analysis_jobs;
  if (with_stages) {
    // Wall-clock data mirrors text mode: worker count plus the
    // program-level stages (frontend, analysis).
    os << ",\"analysis_workers\":" << result.analysis_workers
       << ",\"stages\":{";
    bool first_stage = true;
    for (const StageStats& st : result.stages) {
      if (!first_stage) os << ",";
      first_stage = false;
      os << json_quote(st.name) << ":" << st.seconds;
    }
    os << "}";
  }
  os << ",\"functions\":[";
  bool first_fn = true;
  for (const FunctionTiming& ft : result.functions) {
    if (!first_fn) os << ",";
    first_fn = false;
    render_json_function(ft, with_stages, os);
  }
  os << "]}";
}

TextTable summary_table(const PartitionSummary& summary) {
  TextTable t({"b", "segments", "ip", "fused_ip", "m"});
  for (const PartitionSummaryRow& r : summary.rows)
    t.add(r.bound, r.segments, r.ip, r.fused_ip, r.m.str());
  return t;
}

void render_tally_json(const Tally& tally, std::size_t files,
                       std::ostream& os) {
  os << "{\"files\":" << files << ",\"functions\":" << tally.functions
     << ",\"segments\":" << tally.segments
     << ",\"analysis_jobs\":" << tally.analysis_jobs
     << ",\"paths\":" << tally.paths << ",\"feasible\":" << tally.feasible
     << ",\"infeasible\":" << tally.infeasible
     << ",\"unknown\":" << tally.unknown
     << ",\"validated\":" << tally.validated
     << ",\"mismatch\":" << tally.mismatched
     << ",\"conclusive\":" << tally.conclusive
     << ",\"wcet_total\":" << tally.wcet_total << "}";
}

}  // namespace

bool parse_format(std::string_view name, ReportFormat& out) {
  if (name == "text") {
    out = ReportFormat::Text;
  } else if (name == "csv") {
    out = ReportFormat::Csv;
  } else if (name == "json") {
    out = ReportFormat::Json;
  } else {
    return false;
  }
  return true;
}

std::string verdict_name(PathVerdict v) {
  switch (v) {
    case PathVerdict::Feasible: return "feasible";
    case PathVerdict::Infeasible: return "infeasible";
    case PathVerdict::Unknown: return "unknown";
  }
  return "?";
}

std::string segment_kind_name(core::SegmentKind k) {
  switch (k) {
    case core::SegmentKind::Block: return "block";
    case core::SegmentKind::Region: return "region";
  }
  return "?";
}

void render_report(const PipelineResult& result, const PipelineOptions& opts,
                   ReportFormat format, bool with_stages, std::ostream& os) {
  switch (format) {
    case ReportFormat::Text:
      render_text(result, opts, with_stages, os);
      break;
    case ReportFormat::Csv:
      render_csv(result, nullptr, with_stages, /*with_header=*/true, os);
      render_csv_passes(result, nullptr, /*with_header=*/true, os);
      break;
    case ReportFormat::Json:
      render_json_object(result, opts, with_stages, os);
      os << "\n";
      break;
  }
}

void render_batch_report(const std::vector<BatchEntry>& files,
                         const PipelineOptions& opts, ReportFormat format,
                         bool with_stages, std::ostream& os) {
  Tally tally;
  for (const BatchEntry& e : files) tally.add(e.result);

  switch (format) {
    case ReportFormat::Text: {
      for (const BatchEntry& e : files) {
        os << "=== file " << e.path << " ===\n";
        // A failed entry (a fabric unit that crashed out of its retries)
        // renders as a diagnostic row; the rest of the batch still counts.
        if (!e.result.ok) {
          os << "error: " << e.result.error;
          continue;
        }
        render_text(e.result, opts, with_stages, os);
      }
      os << "=== batch summary ===\n";
      TextTable t({"files", "functions", "segments", "paths", "feasible",
                   "infeasible", "unknown", "validated", "mismatch",
                   "conclusive", "wcet_total"});
      t.add(files.size(), tally.functions, tally.segments, tally.paths,
            tally.feasible, tally.infeasible, tally.unknown, tally.validated,
            tally.mismatched, tally.conclusive, tally.wcet_total);
      os << t.str();
      break;
    }
    case ReportFormat::Csv: {
      bool first = true;
      for (const BatchEntry& e : files) {
        render_csv(e.result, &e.path, with_stages, /*with_header=*/first, os);
        first = false;
      }
      bool first_pass = true;
      for (const BatchEntry& e : files) {
        render_csv_passes(e.result, &e.path, /*with_header=*/first_pass, os);
        for (const FunctionTiming& ft : e.result.functions)
          first_pass &= ft.pass_reports.empty();
      }
      break;
    }
    case ReportFormat::Json: {
      os << "{\"files\":[";
      bool first = true;
      for (const BatchEntry& e : files) {
        if (!first) os << ",";
        first = false;
        if (!e.result.ok) {
          os << "{\"path\":" << json_quote(e.path)
             << ",\"error\":" << json_quote(e.result.error) << "}";
          continue;
        }
        os << "{\"path\":" << json_quote(e.path) << ",\"report\":";
        render_json_object(e.result, opts, with_stages, os);
        os << "}";
      }
      os << "],\"aggregate\":";
      render_tally_json(tally, files.size(), os);
      os << "}\n";
      break;
    }
  }
}

// ----------------------------------------------------------------- corpus

CorpusRow corpus_row(std::string path, const PipelineResult& result) {
  CorpusRow row;
  row.path = std::move(path);
  row.ok = result.ok;
  if (!result.ok) {
    row.error = result.error;
    return row;
  }
  row.functions = result.functions.size();
  bool conclusive = !result.functions.empty();
  for (const FunctionTiming& ft : result.functions) {
    row.segments += ft.segments.size();
    row.wcet_total += ft.wcet_total();
    conclusive = conclusive && ft.conclusive();
    for (const SegmentTiming& s : ft.segments) {
      row.paths += s.paths.size();
      row.feasible += s.feasible;
      row.infeasible += s.infeasible;
      row.unknown += s.unknown;
    }
  }
  row.conclusive = conclusive;
  return row;
}

namespace {

/// First line of a (possibly multi-line) diagnostic: corpus rows are one
/// line per file in text and CSV.
std::string first_line(const std::string& text) {
  const std::size_t nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

/// Quotes one CSV field when it contains a delimiter (errors may carry
/// commas or quotes; counts and relative paths never do here).
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void render_corpus_begin(ReportFormat format, std::ostream& os) {
  switch (format) {
    case ReportFormat::Text:
      break;  // rows are self-describing key=value lines
    case ReportFormat::Csv:
      os << "path,functions,segments,paths,feasible,infeasible,unknown,"
            "conclusive,wcet_total,error\n";
      break;
    case ReportFormat::Json:
      os << "{\"files\":[";
      break;
  }
}

void render_corpus_row(const CorpusRow& row, std::size_t index,
                       ReportFormat format, std::ostream& os) {
  switch (format) {
    case ReportFormat::Text:
      if (!row.ok) {
        os << row.path << ": error: " << first_line(row.error) << "\n";
        break;
      }
      os << row.path << ": functions=" << row.functions
         << " segments=" << row.segments << " paths=" << row.paths
         << " feasible=" << row.feasible << " infeasible=" << row.infeasible
         << " unknown=" << row.unknown << " wcet=" << row.wcet_total
         << " conclusive=" << (row.conclusive ? "yes" : "no") << "\n";
      break;
    case ReportFormat::Csv:
      if (!row.ok) {
        os << csv_field(row.path) << ",0,0,0,0,0,0,no,0,"
           << csv_field(first_line(row.error)) << "\n";
        break;
      }
      os << csv_field(row.path) << "," << row.functions << ","
         << row.segments << "," << row.paths << "," << row.feasible << ","
         << row.infeasible << "," << row.unknown << ","
         << (row.conclusive ? "yes" : "no") << "," << row.wcet_total
         << ",\n";
      break;
    case ReportFormat::Json:
      if (index > 0) os << ",";
      os << "{\"path\":" << json_quote(row.path);
      if (!row.ok) {
        os << ",\"error\":" << json_quote(row.error) << "}";
        break;
      }
      os << ",\"functions\":" << row.functions
         << ",\"segments\":" << row.segments << ",\"paths\":" << row.paths
         << ",\"feasible\":" << row.feasible
         << ",\"infeasible\":" << row.infeasible
         << ",\"unknown\":" << row.unknown
         << ",\"conclusive\":" << (row.conclusive ? "true" : "false")
         << ",\"wcet_total\":" << row.wcet_total << "}";
      break;
  }
}

void render_corpus_end(const std::vector<CorpusRow>& rows,
                       ReportFormat format, std::ostream& os) {
  CorpusRow sum;
  std::size_t analysed = 0;
  std::size_t failed = 0;
  bool all_conclusive = true;
  for (const CorpusRow& r : rows) {
    if (!r.ok) {
      ++failed;
      all_conclusive = false;
      continue;
    }
    ++analysed;
    sum.functions += r.functions;
    sum.segments += r.segments;
    sum.paths += r.paths;
    sum.feasible += r.feasible;
    sum.infeasible += r.infeasible;
    sum.unknown += r.unknown;
    sum.wcet_total += r.wcet_total;
    all_conclusive = all_conclusive && r.conclusive;
  }
  all_conclusive = all_conclusive && analysed > 0;

  switch (format) {
    case ReportFormat::Text: {
      os << "=== corpus summary ===\n";
      TextTable t({"files", "analysed", "failed", "functions", "segments",
                   "paths", "feasible", "infeasible", "unknown",
                   "conclusive", "wcet_total"});
      t.add(rows.size(), analysed, failed, sum.functions, sum.segments,
            sum.paths, sum.feasible, sum.infeasible, sum.unknown,
            all_conclusive ? "yes" : "no", sum.wcet_total);
      os << t.str();
      break;
    }
    case ReportFormat::Csv:
      break;  // the aggregate lives in the JSON/text formats only
    case ReportFormat::Json:
      os << "],\"aggregate\":{\"files\":" << rows.size()
         << ",\"analysed\":" << analysed << ",\"failed\":" << failed
         << ",\"functions\":" << sum.functions
         << ",\"segments\":" << sum.segments << ",\"paths\":" << sum.paths
         << ",\"feasible\":" << sum.feasible
         << ",\"infeasible\":" << sum.infeasible
         << ",\"unknown\":" << sum.unknown
         << ",\"conclusive\":" << (all_conclusive ? "true" : "false")
         << ",\"wcet_total\":" << sum.wcet_total << "}}\n";
      break;
  }
}

namespace {

/// Short column prefix of one pass for the --table2 per-pass delta
/// columns (e.g. rcse_dbits).
const char* pass_short_name(opt::Pass p) {
  switch (p) {
    case opt::Pass::ReverseCse: return "rcse";
    case opt::Pass::LiveVariables: return "live";
    case opt::Pass::StatementConcat: return "concat";
    case opt::Pass::RangeAnalysis: return "range";
    case opt::Pass::VariableInit: return "init";
    case opt::Pass::DeadVariableElim: return "dve";
  }
  return "?";
}

/// Per-pass (bits, transitions, depth) deltas of one row, flattened in
/// all_passes() order; passes that did not run contribute zero, and a
/// pass that ran more than once has its deltas summed.
std::vector<std::int64_t> row_pass_deltas(const Table2Row& r) {
  const std::vector<opt::Pass> order = opt::all_passes();
  std::vector<std::int64_t> d(order.size() * 3, 0);
  for (const opt::PassReport& p : r.passes)
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] != p.pass) continue;
      d[i * 3 + 0] += static_cast<std::int64_t>(p.data_bits_after) -
                      static_cast<std::int64_t>(p.data_bits_before);
      d[i * 3 + 1] += static_cast<std::int64_t>(p.transitions_after) -
                      static_cast<std::int64_t>(p.transitions_before);
      d[i * 3 + 2] += static_cast<std::int64_t>(p.depth_after) -
                      static_cast<std::int64_t>(p.depth_before);
      break;
    }
  return d;
}

/// Totals row of the Table-2 comparison (batch aggregation).
Table2Row table2_aggregate(const Table2Report& report) {
  Table2Row total;
  total.file = "(all)";
  total.function = "total";
  total.model_identical = report.all_identical();
  total.conclusive_plain = !report.rows.empty();
  total.conclusive_opt = !report.rows.empty();
  for (const Table2Row& r : report.rows) {
    total.conclusive_plain &= r.conclusive_plain;
    total.conclusive_opt &= r.conclusive_opt;
    total.bits_plain += r.bits_plain;
    total.bits_opt += r.bits_opt;
    total.locs_plain += r.locs_plain;
    total.locs_opt += r.locs_opt;
    total.trans_plain += r.trans_plain;
    total.trans_opt += r.trans_opt;
    total.depth_plain += r.depth_plain;
    total.depth_opt += r.depth_opt;
    total.bmc_seconds_plain += r.bmc_seconds_plain;
    total.bmc_seconds_opt += r.bmc_seconds_opt;
    total.cnf_clauses_plain =
        std::max(total.cnf_clauses_plain, r.cnf_clauses_plain);
    total.cnf_clauses_opt = std::max(total.cnf_clauses_opt, r.cnf_clauses_opt);
    // Concatenating the per-row pass reports makes row_pass_deltas sum
    // them, so the totals row's delta columns aggregate naturally.
    total.passes.insert(total.passes.end(), r.passes.begin(),
                        r.passes.end());
  }
  return total;
}

TextTable table2_table(const Table2Report& report, bool with_file,
                       bool with_aggregate) {
  std::vector<std::string> header;
  if (with_file) header.emplace_back("file");
  for (const char* h :
       {"function", "bits", "bits_opt", "locs", "locs_opt", "trans",
        "trans_opt", "depth", "depth_opt", "bmc_ms", "bmc_ms_opt",
        "cnf_clauses", "cnf_clauses_opt", "conclusive", "conclusive_opt",
        "model"})
    header.emplace_back(h);
  // Per-pass delta columns (bits/transitions/depth each, signed), in
  // all_passes() order — zero when the optimised run skipped the pass.
  for (const opt::Pass p : opt::all_passes())
    for (const char* suffix : {"_dbits", "_dtrans", "_ddepth"})
      header.emplace_back(std::string(pass_short_name(p)) + suffix);
  TextTable t(std::move(header));
  auto add = [&](const Table2Row& r) {
    std::vector<std::string> row;
    if (with_file) row.push_back(r.file);
    row.push_back(r.function);
    row.push_back(std::to_string(r.bits_plain));
    row.push_back(std::to_string(r.bits_opt));
    row.push_back(std::to_string(r.locs_plain));
    row.push_back(std::to_string(r.locs_opt));
    row.push_back(std::to_string(r.trans_plain));
    row.push_back(std::to_string(r.trans_opt));
    row.push_back(std::to_string(r.depth_plain));
    row.push_back(std::to_string(r.depth_opt));
    row.push_back(fmt_double(r.bmc_seconds_plain * 1000.0, 2));
    row.push_back(fmt_double(r.bmc_seconds_opt * 1000.0, 2));
    row.push_back(std::to_string(r.cnf_clauses_plain));
    row.push_back(std::to_string(r.cnf_clauses_opt));
    row.push_back(r.conclusive_plain ? "yes" : "no");
    row.push_back(r.conclusive_opt ? "yes" : "no");
    row.push_back(r.model_identical ? "identical" : "DIFFERS");
    for (const std::int64_t d : row_pass_deltas(r))
      row.push_back(std::to_string(d));
    t.add_row(std::move(row));
  };
  for (const Table2Row& r : report.rows) add(r);
  if (with_aggregate) add(table2_aggregate(report));
  return t;
}

void table2_row_json(const Table2Row& r, bool with_file, std::ostream& os) {
  os << "{";
  if (with_file) os << "\"file\":" << json_quote(r.file) << ",";
  os << "\"function\":" << json_quote(r.function)
     << ",\"bits\":" << r.bits_plain << ",\"bits_opt\":" << r.bits_opt
     << ",\"locations\":" << r.locs_plain
     << ",\"locations_opt\":" << r.locs_opt << ",\"trans\":" << r.trans_plain
     << ",\"trans_opt\":" << r.trans_opt << ",\"depth\":" << r.depth_plain
     << ",\"depth_opt\":" << r.depth_opt
     << ",\"bmc_seconds\":" << r.bmc_seconds_plain
     << ",\"bmc_seconds_opt\":" << r.bmc_seconds_opt
     << ",\"cnf_clauses\":" << r.cnf_clauses_plain
     << ",\"cnf_clauses_opt\":" << r.cnf_clauses_opt
     << ",\"conclusive\":" << (r.conclusive_plain ? "true" : "false")
     << ",\"conclusive_opt\":" << (r.conclusive_opt ? "true" : "false")
     << ",\"model_identical\":" << (r.model_identical ? "true" : "false")
     << ",\"passes\":[";
  bool first = true;
  for (const opt::PassReport& p : r.passes) {
    if (!first) os << ",";
    first = false;
    pass_json(p, os);
  }
  os << "]}";
}

}  // namespace

void render_table2(const Table2Report& report, ReportFormat format,
                   std::ostream& os) {
  const bool with_file =
      !report.rows.empty() && !report.rows.front().file.empty();
  const bool aggregate = report.rows.size() > 1;
  switch (format) {
    case ReportFormat::Text:
      os << "optimisation impact (Table 2 style, before/after Section 3.2 "
            "passes):\n";
      os << table2_table(report, with_file, aggregate).str();
      break;
    case ReportFormat::Csv:
      os << table2_table(report, with_file, aggregate).csv();
      break;
    case ReportFormat::Json: {
      os << "{\"table2\":{\"rows\":[";
      bool first = true;
      for (const Table2Row& r : report.rows) {
        if (!first) os << ",";
        first = false;
        table2_row_json(r, with_file, os);
      }
      os << "],\"all_identical\":"
         << (report.all_identical() ? "true" : "false") << "}}\n";
      break;
    }
  }
}

void render_partition_summary(const PartitionSummary& summary,
                              ReportFormat format, std::ostream& os) {
  switch (format) {
    case ReportFormat::Text:
      os << "partition summary for " << summary.function
         << " (Table 1 style):\n";
      os << summary_table(summary).str();
      break;
    case ReportFormat::Csv:
      os << summary_table(summary).csv();
      break;
    case ReportFormat::Json: {
      os << "{\"function\":" << json_quote(summary.function) << ",\"rows\":[";
      bool first = true;
      for (const PartitionSummaryRow& r : summary.rows) {
        if (!first) os << ",";
        first = false;
        os << "{\"b\":" << r.bound << ",\"segments\":" << r.segments
           << ",\"ip\":" << r.ip << ",\"fused_ip\":" << r.fused_ip
           << ",\"m\":" << json_quote(r.m.str()) << "}";
      }
      os << "]}\n";
      break;
    }
  }
}

}  // namespace tmg::driver
