#include "driver/cache.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(_WIN32)
#include <process.h>
#define TMG_GETPID _getpid
#else
#include <unistd.h>
#define TMG_GETPID getpid
#endif

#include "driver/shard.h"
#include "support/json.h"
#include "support/trace.h"

namespace tmg::driver {

namespace {

/// Entry schema version; bump whenever the shard wire or the fingerprint
/// grammar changes shape (old entries then miss instead of misparsing).
/// v2: pass rows gained depth columns, Table2Row gained per-pass deltas,
/// and the fingerprint gained the slice toggle.
constexpr int kCacheVersion = 2;

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool read_file_bytes(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

std::string content_fingerprint(std::string_view data) {
  return hex64(fnv1a64(data));
}

std::string cache_config_fingerprint(const PipelineOptions& opts) {
  // jobs and use_sessions are deliberately absent: both are proven not to
  // change any report byte (the determinism contracts in pipeline.h and
  // session.h), so one entry serves every worker/session setting.
  std::ostringstream os;
  os << "v=" << kCacheVersion << ";b=" << opts.path_bound
     << ";fn=" << opts.function;
  // Function-subset runs (fabric split units) never share entries with
  // whole-file runs; the key is appended only when set so every existing
  // whole-file entry keeps its fingerprint.
  if (!opts.functions.empty()) {
    os << ";fns=";
    for (std::size_t i = 0; i < opts.functions.size(); ++i) {
      if (i > 0) os << ",";
      os << opts.functions[i];
    }
  }
  os << ";bmc=" << (opts.run_bmc ? 1 : 0)
     << ";val=" << (opts.validate_witnesses ? 1 : 0)
     << ";maxp=" << opts.max_paths_per_segment
     << ";maxd=" << opts.max_unroll_depth
     << ";pw=" << (opts.pessimistic_widths ? 1 : 0)
     << ";slice=" << (opts.slice ? 1 : 0) << ";opt=";
  for (std::size_t i = 0; i < opts.opt_passes.size(); ++i) {
    if (i > 0) os << ",";
    os << opt::pass_name(opts.opt_passes[i]);
  }
  os << ";ms=" << opts.bmc.max_steps << ";cb=" << opts.bmc.conflict_budget
     << ";mw=" << (opts.bmc.minimize_witness ? 1 : 0)
     << ";cost=" << opts.cost.stmt_cost << "," << opts.cost.decision_cost
     << "," << opts.cost.default_call_cost;
  return os.str();
}

ResultCache::ResultCache(std::string dir, CacheMode mode)
    : dir_(std::move(dir)), mode_(mode) {}

// Per-cache counters are mutex-guarded (serve mutates them from request
// handling while a batch may still be counting); the registry mirror is
// the process-wide aggregate serve `metrics` and `--progress` read.
void ResultCache::count_hit() {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.hits;
  }
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("cache.hits");
  c.add();
}

void ResultCache::count_miss() {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.misses;
  }
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("cache.misses");
  c.add();
}

void ResultCache::count_write() {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.writes;
  }
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("cache.writes");
  c.add();
}

std::string ResultCache::entry_path(const std::string& source,
                                    const PipelineOptions& opts) const {
  return dir_ + "/" + hex64(fnv1a64(source)) + "-" +
         hex64(fnv1a64(cache_config_fingerprint(opts))) + ".json";
}

std::optional<PipelineResult> ResultCache::lookup(
    const std::string& source, const PipelineOptions& opts,
    std::ostream& warn) {
  if (!enabled()) return std::nullopt;
  trace::TraceSpan span("cache.lookup", "cache");
  const std::string path = entry_path(source, opts);
  std::string bytes;
  if (!read_file_bytes(path, bytes)) {
    span.arg("hit", "false");
    count_miss();
    return std::nullopt;
  }

  // The filename already pins both hashes; the fields below catch hash
  // collisions, truncated writes and schema drift. Any mismatch is a
  // warned miss, never an error — the entry will simply be recomputed.
  const auto corrupt = [&]() -> std::optional<PipelineResult> {
    warn << "tmg: ignoring corrupt cache entry " << path << "\n";
    span.arg("hit", "false");
    count_miss();
    return std::nullopt;
  };
  std::string parse_error;
  const std::optional<JsonValue> v = json_parse(bytes, &parse_error);
  if (!v || v->kind() != JsonValue::Kind::Object) return corrupt();
  const JsonValue* ver = v->find("v");
  if (ver == nullptr || !ver->is_int() || ver->as_int() != kCacheVersion)
    return corrupt();
  const JsonValue* config = v->find("config");
  if (config == nullptr || config->kind() != JsonValue::Kind::String ||
      config->as_string() != cache_config_fingerprint(opts))
    return corrupt();
  const JsonValue* fnv = v->find("source_fnv");
  const JsonValue* size = v->find("source_size");
  if (fnv == nullptr || fnv->kind() != JsonValue::Kind::String ||
      fnv->as_string() != hex64(fnv1a64(source)) || size == nullptr ||
      !size->is_int() ||
      static_cast<std::size_t>(size->as_int()) != source.size())
    return corrupt();
  const JsonValue* report = v->find("report");
  if (report == nullptr) return corrupt();
  PipelineResult result;
  if (!parse_pipeline_result(*report, result)) return corrupt();
  span.arg("hit", "true");
  count_hit();
  return result;
}

void ResultCache::store(const std::string& source,
                        const PipelineOptions& opts,
                        const PipelineResult& result, std::ostream& warn) {
  if (!enabled() || mode_ != CacheMode::ReadWrite) return;
  trace::TraceSpan span("cache.store", "cache");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort

  const std::string path = entry_path(source, opts);
  std::ostringstream os;
  os << "{\"v\":" << kCacheVersion
     << ",\"config\":" << json_quote(cache_config_fingerprint(opts))
     << ",\"source_fnv\":\"" << hex64(fnv1a64(source))
     << "\",\"source_size\":" << source.size()
     << ",\"report\":" << serialize_pipeline_result(result) << "}\n";

  // Temp file + rename: a reader never sees a partial entry. The temp
  // name is unique per writer (pid + process-local counter) — a shared
  // name would let writer A's rename publish writer B's half-written
  // bytes as the final entry.
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(TMG_GETPID())) +
      "." + std::to_string(tmp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !(out << os.str())) {
      warn << "tmg: cannot write cache entry " << path << "\n";
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    warn << "tmg: cannot write cache entry " << path << "\n";
    std::remove(tmp.c_str());
    return;
  }
  count_write();
}

BatchResult run_batch_cached(const std::vector<std::string>& sources,
                             const std::vector<std::string>& files,
                             const PipelineOptions& opts, ResultCache& cache,
                             std::ostream& warn) {
  if (!cache.enabled()) return run_batch(sources, files, opts);

  const std::size_t n = sources.size();
  std::vector<std::optional<PipelineResult>> results(n);
  std::vector<std::size_t> miss;
  for (std::size_t i = 0; i < n; ++i) {
    results[i] = cache.lookup(sources[i], opts, warn);
    if (!results[i])
      miss.push_back(i);
    else
      trace::progress_file_done();  // cache hits never reach merge_file
  }

  BatchResult out;
  if (!miss.empty()) {
    std::vector<std::string> miss_sources, miss_files;
    miss_sources.reserve(miss.size());
    for (const std::size_t i : miss) {
      miss_sources.push_back(sources[i]);
      miss_files.push_back(i < files.size() ? files[i] : std::string());
    }
    BatchResult computed = run_batch(miss_sources, miss_files, opts);
    if (!computed.ok) {
      out.error = computed.error;
      out.error_index = miss[computed.error_index];
      return out;
    }
    out.workers = computed.workers;
    for (std::size_t j = 0; j < miss.size(); ++j) {
      cache.store(miss_sources[j], opts, computed.files[j].result, warn);
      results[miss[j]] = std::move(computed.files[j].result);
    }
  }

  for (std::size_t i = 0; i < n; ++i)
    out.files.push_back(
        BatchEntry{i < files.size() ? files[i] : std::string(),
                   std::move(*results[i])});
  out.ok = true;
  return out;
}

Table2Report table2_compare_cached(const std::vector<std::string>& sources,
                                   const std::vector<std::string>& files,
                                   const PipelineOptions& opts,
                                   ResultCache& cache, std::ostream& warn) {
  const auto [plain, optimised] = table2_option_pair(opts);
  const BatchResult a = run_batch_cached(sources, files, plain, cache, warn);
  if (!a.ok) return table2_assemble(a, a, files);
  const BatchResult b =
      run_batch_cached(sources, files, optimised, cache, warn);
  return table2_assemble(a, b, files);
}

void bench_probe_cache(const std::vector<std::string>& sources,
                       const PipelineOptions& opts, ResultCache& cache,
                       engine::BenchReport& report, std::ostream& warn) {
  if (!cache.enabled()) return;
  // Probe the same two configurations bench actually runs: the plain pool
  // run (passes cleared; serial and fresh share its fingerprint, which
  // ignores jobs/sessions) and the optimised run.
  const auto [plain, optimised] = table2_option_pair(opts);
  for (const std::string& src : sources) {
    cache.lookup(src, plain, warn);
    cache.lookup(src, optimised, warn);
  }
  report.cache_probed = true;
  report.cache_mode =
      cache.mode() == CacheMode::ReadOnly ? "ro" : "rw";
  report.cache_hits = cache.stats().hits;
  report.cache_misses = cache.stats().misses;
}

}  // namespace tmg::driver
