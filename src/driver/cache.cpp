#include "driver/cache.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(_WIN32)
#include <process.h>
#define TMG_GETPID _getpid
#else
#include <unistd.h>
#define TMG_GETPID getpid
#endif

#include "driver/shard.h"
#include "support/json.h"
#include "support/trace.h"

namespace tmg::driver {

namespace {

/// Entry schema version; bump whenever the shard wire or the fingerprint
/// grammar changes shape (old entries then miss instead of misparsing).
/// v2: pass rows gained depth columns, Table2Row gained per-pass deltas,
/// and the fingerprint gained the slice toggle.
constexpr int kCacheVersion = 2;

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool read_file_bytes(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// Fault-injection hook for tests and CI (same idiom as TMG_FABRIC_FAULT):
/// TMG_CACHE_FAULT=store forces every entry write into a failed stream
/// state before close, simulating a full disk — the store must then warn,
/// remove its temp, publish nothing and count nothing.
bool store_fault_injected() {
  const char* env = std::getenv("TMG_CACHE_FAULT");
  return env != nullptr && std::string_view(env) == "store";
}

/// The lookup memo is a bounded scratch structure, not a second cache: a
/// handful of hot entries (the files an editor integration polls) is the
/// workload it exists for. Past the cap it is simply cleared — correctness
/// never depends on it, only stat-vs-reparse latency.
constexpr std::size_t kMemoCap = 256;

}  // namespace

std::string content_fingerprint(std::string_view data) {
  return hex64(fnv1a64(data));
}

std::string cache_config_fingerprint(const PipelineOptions& opts) {
  // jobs and use_sessions are deliberately absent: both are proven not to
  // change any report byte (the determinism contracts in pipeline.h and
  // session.h), so one entry serves every worker/session setting.
  std::ostringstream os;
  os << "v=" << kCacheVersion << ";b=" << opts.path_bound
     << ";fn=" << opts.function;
  // Function-subset runs (fabric split units) never share entries with
  // whole-file runs; the key is appended only when set so every existing
  // whole-file entry keeps its fingerprint.
  if (!opts.functions.empty()) {
    os << ";fns=";
    for (std::size_t i = 0; i < opts.functions.size(); ++i) {
      if (i > 0) os << ",";
      os << opts.functions[i];
    }
  }
  os << ";bmc=" << (opts.run_bmc ? 1 : 0)
     << ";val=" << (opts.validate_witnesses ? 1 : 0)
     << ";maxp=" << opts.max_paths_per_segment
     << ";maxd=" << opts.max_unroll_depth
     << ";pw=" << (opts.pessimistic_widths ? 1 : 0)
     << ";slice=" << (opts.slice ? 1 : 0) << ";opt=";
  for (std::size_t i = 0; i < opts.opt_passes.size(); ++i) {
    if (i > 0) os << ",";
    os << opt::pass_name(opts.opt_passes[i]);
  }
  os << ";ms=" << opts.bmc.max_steps << ";cb=" << opts.bmc.conflict_budget
     << ";mw=" << (opts.bmc.minimize_witness ? 1 : 0)
     << ";cost=" << opts.cost.stmt_cost << "," << opts.cost.decision_cost
     << "," << opts.cost.default_call_cost;
  return os.str();
}

ResultCache::ResultCache(std::string dir, CacheMode mode,
                         std::uint64_t max_bytes)
    : dir_(std::move(dir)), mode_(mode), max_bytes_(max_bytes) {}

// Per-cache counters are mutex-guarded (serve mutates them from request
// handling while a batch may still be counting); the registry mirror is
// the process-wide aggregate serve `metrics` and `--progress` read.
void ResultCache::count_hit(bool fast) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.hits;
    if (fast) ++stats_.fast_hits;
  }
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("cache.hits");
  c.add();
  if (fast) {
    static trace::Counter& f =
        trace::MetricsRegistry::instance().counter("cache.fast_hits");
    f.add();
  }
}

void ResultCache::count_miss() {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.misses;
  }
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("cache.misses");
  c.add();
}

void ResultCache::count_write() {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.writes;
  }
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("cache.writes");
  c.add();
}

std::string ResultCache::entry_path(const std::string& source,
                                    const PipelineOptions& opts) const {
  return dir_ + "/" + hex64(fnv1a64(source)) + "-" +
         hex64(fnv1a64(cache_config_fingerprint(opts))) + ".json";
}

void ResultCache::touch_and_memoise(const std::string& path,
                                    const PipelineResult& result) {
  // Refresh the entry's mtime so the LRU sweep sees *use* recency, then
  // memoise the parsed report under the refreshed (mtime, size) identity.
  // Everything here is best effort: a failed stat just skips the memo and
  // the next lookup takes the slow path.
  std::error_code ec;
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now(), ec);
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) return;
  const std::lock_guard<std::mutex> lock(memo_mutex_);
  if (memo_.size() >= kMemoCap && memo_.find(path) == memo_.end())
    memo_.clear();
  memo_[path] = MemoEntry{mtime, size, result};
}

std::optional<PipelineResult> ResultCache::lookup(
    const std::string& source, const PipelineOptions& opts,
    std::ostream& warn) {
  if (!enabled()) return std::nullopt;
  trace::TraceSpan span("cache.lookup", "cache");
  const std::string path = entry_path(source, opts);

  // Fast path: if the entry file's (mtime, size) still match what we
  // parsed last time, serve the memoised report on the strength of one
  // stat(). A rewritten entry (heal, concurrent writer) changes the
  // identity and falls through to the full read below.
  {
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);
    const std::uintmax_t size =
        ec ? 0 : std::filesystem::file_size(path, ec);
    if (!ec) {
      std::optional<PipelineResult> memoised;
      {
        const std::lock_guard<std::mutex> lock(memo_mutex_);
        const auto it = memo_.find(path);
        if (it != memo_.end() && it->second.mtime == mtime &&
            it->second.size == size)
          memoised = it->second.result;
      }
      if (memoised) {
        touch_and_memoise(path, *memoised);
        span.arg("hit", "true");
        span.arg("fast", "true");
        count_hit(/*fast=*/true);
        return memoised;
      }
    }
  }

  std::string bytes;
  if (!read_file_bytes(path, bytes)) {
    span.arg("hit", "false");
    count_miss();
    return std::nullopt;
  }

  // The filename already pins both hashes; the fields below catch hash
  // collisions, truncated writes and schema drift. Any mismatch is a
  // warned miss, never an error — the entry will simply be recomputed.
  const auto corrupt = [&]() -> std::optional<PipelineResult> {
    warn << "tmg: ignoring corrupt cache entry " << path << "\n";
    span.arg("hit", "false");
    count_miss();
    return std::nullopt;
  };
  std::string parse_error;
  const std::optional<JsonValue> v = json_parse(bytes, &parse_error);
  if (!v || v->kind() != JsonValue::Kind::Object) return corrupt();
  const JsonValue* ver = v->find("v");
  if (ver == nullptr || !ver->is_int() || ver->as_int() != kCacheVersion)
    return corrupt();
  const JsonValue* config = v->find("config");
  if (config == nullptr || config->kind() != JsonValue::Kind::String ||
      config->as_string() != cache_config_fingerprint(opts))
    return corrupt();
  const JsonValue* fnv = v->find("source_fnv");
  const JsonValue* size = v->find("source_size");
  if (fnv == nullptr || fnv->kind() != JsonValue::Kind::String ||
      fnv->as_string() != hex64(fnv1a64(source)) || size == nullptr ||
      !size->is_int() ||
      static_cast<std::size_t>(size->as_int()) != source.size())
    return corrupt();
  const JsonValue* report = v->find("report");
  if (report == nullptr) return corrupt();
  PipelineResult result;
  if (!parse_pipeline_result(*report, result)) return corrupt();
  touch_and_memoise(path, result);
  span.arg("hit", "true");
  count_hit(/*fast=*/false);
  return result;
}

void ResultCache::sweep(std::ostream& warn) {
  if (max_bytes_ == 0) return;
  // One sweeper at a time: concurrent stores would otherwise race over
  // the same victim list and double-count evictions. Entry removal itself
  // is reader-safe — an open reader keeps its bytes, a later reader
  // misses and recomputes.
  const std::lock_guard<std::mutex> sweep_lock(sweep_mutex_);
  trace::TraceSpan span("cache.sweep", "cache");

  struct Entry {
    std::string path;
    std::filesystem::file_time_type mtime;
    std::uintmax_t size = 0;
  };
  std::vector<Entry> entries;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir_, ec)) {
    if (!de.is_regular_file(ec)) continue;
    if (de.path().extension() != ".json") continue;  // skip temps, foreign
    std::error_code st;
    const auto mtime = de.last_write_time(st);
    const std::uintmax_t size = st ? 0 : de.file_size(st);
    if (st) continue;
    total += size;
    entries.push_back(Entry{de.path().string(), mtime, size});
  }
  if (ec || total <= max_bytes_) return;

  // Oldest mtime first = least recently *used* first (hits touch their
  // entry); ties break on path so concurrent sweeps pick the same order.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
  });

  std::uint64_t evicted = 0;
  std::uint64_t evicted_bytes = 0;
  for (const Entry& e : entries) {
    if (total <= max_bytes_) break;
    std::error_code rm;
    if (!std::filesystem::remove(e.path, rm) || rm) {
      if (rm) warn << "tmg: cannot evict cache entry " << e.path << "\n";
      continue;
    }
    total -= e.size;
    ++evicted;
    evicted_bytes += e.size;
    const std::lock_guard<std::mutex> lock(memo_mutex_);
    memo_.erase(e.path);
  }
  if (evicted == 0) return;
  span.arg("evicted", static_cast<std::int64_t>(evicted));
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.evictions += evicted;
    stats_.evicted_bytes += evicted_bytes;
  }
  static trace::Counter& c =
      trace::MetricsRegistry::instance().counter("cache.evictions");
  c.add(evicted);
}

void ResultCache::store(const std::string& source,
                        const PipelineOptions& opts,
                        const PipelineResult& result, std::ostream& warn) {
  if (!enabled() || mode_ != CacheMode::ReadWrite) return;
  trace::TraceSpan span("cache.store", "cache");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort

  const std::string path = entry_path(source, opts);
  std::ostringstream os;
  os << "{\"v\":" << kCacheVersion
     << ",\"config\":" << json_quote(cache_config_fingerprint(opts))
     << ",\"source_fnv\":\"" << hex64(fnv1a64(source))
     << "\",\"source_size\":" << source.size()
     << ",\"report\":" << serialize_pipeline_result(result) << "}\n";

  // Temp file + rename: a reader never sees a partial entry. The temp
  // name is unique per writer (pid + process-local counter) — a shared
  // name would let writer A's rename publish writer B's half-written
  // bytes as the final entry.
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(TMG_GETPID())) +
      "." + std::to_string(tmp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (store_fault_injected()) out.setstate(std::ios::badbit);
    out << os.str();
    // close() is where buffered bytes actually reach the filesystem — a
    // full disk often surfaces only here. Check the stream *after* close,
    // or a truncated temp gets published as a valid-looking entry.
    out.close();
    if (!out) {
      warn << "tmg: cannot write cache entry " << path << "\n";
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    warn << "tmg: cannot write cache entry " << path << "\n";
    std::remove(tmp.c_str());
    return;
  }
  count_write();
  touch_and_memoise(path, result);
  sweep(warn);
}

BatchResult run_batch_cached(const std::vector<std::string>& sources,
                             const std::vector<std::string>& files,
                             const PipelineOptions& opts, ResultCache& cache,
                             std::ostream& warn) {
  if (!cache.enabled()) return run_batch(sources, files, opts);

  const std::size_t n = sources.size();
  std::vector<std::optional<PipelineResult>> results(n);
  std::vector<std::size_t> miss;
  for (std::size_t i = 0; i < n; ++i) {
    results[i] = cache.lookup(sources[i], opts, warn);
    if (!results[i])
      miss.push_back(i);
    else
      trace::progress_file_done();  // cache hits never reach merge_file
  }

  BatchResult out;
  if (!miss.empty()) {
    std::vector<std::string> miss_sources, miss_files;
    miss_sources.reserve(miss.size());
    for (const std::size_t i : miss) {
      miss_sources.push_back(sources[i]);
      miss_files.push_back(i < files.size() ? files[i] : std::string());
    }
    BatchResult computed = run_batch(miss_sources, miss_files, opts);
    if (!computed.ok) {
      out.error = computed.error;
      out.error_index = miss[computed.error_index];
      return out;
    }
    out.workers = computed.workers;
    for (std::size_t j = 0; j < miss.size(); ++j) {
      cache.store(miss_sources[j], opts, computed.files[j].result, warn);
      results[miss[j]] = std::move(computed.files[j].result);
    }
  }

  for (std::size_t i = 0; i < n; ++i)
    out.files.push_back(
        BatchEntry{i < files.size() ? files[i] : std::string(),
                   std::move(*results[i])});
  out.ok = true;
  return out;
}

Table2Report table2_compare_cached(const std::vector<std::string>& sources,
                                   const std::vector<std::string>& files,
                                   const PipelineOptions& opts,
                                   ResultCache& cache, std::ostream& warn) {
  const auto [plain, optimised] = table2_option_pair(opts);
  const BatchResult a = run_batch_cached(sources, files, plain, cache, warn);
  if (!a.ok) return table2_assemble(a, a, files);
  const BatchResult b =
      run_batch_cached(sources, files, optimised, cache, warn);
  return table2_assemble(a, b, files);
}

void bench_probe_cache(const std::vector<std::string>& sources,
                       const PipelineOptions& opts, ResultCache& cache,
                       engine::BenchReport& report, std::ostream& warn) {
  if (!cache.enabled()) return;
  // Probe the same two configurations bench actually runs: the plain pool
  // run (passes cleared; serial and fresh share its fingerprint, which
  // ignores jobs/sessions) and the optimised run.
  const auto [plain, optimised] = table2_option_pair(opts);
  for (const std::string& src : sources) {
    cache.lookup(src, plain, warn);
    cache.lookup(src, optimised, warn);
  }
  report.cache_probed = true;
  report.cache_mode =
      cache.mode() == CacheMode::ReadOnly ? "ro" : "rw";
  report.cache_hits = cache.stats().hits;
  report.cache_misses = cache.stats().misses;
}

}  // namespace tmg::driver
