#include "driver/cli.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "cfg/structure.h"
#include "driver/fabric.h"
#include "driver/serve.h"
#include "driver/shard.h"
#include "engine/bench.h"
#include "engine/scheduler.h"
#include "minic/frontend.h"
#include "support/json.h"
#include "support/trace.h"
#include "tsys/translate.h"

namespace tmg::driver {

namespace {

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// Splits "--name=value"; value empty when no '=' present.
void split_opt(std::string_view arg, std::string_view& name,
               std::string_view& value, bool& has_value) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string_view::npos) {
    name = arg;
    value = {};
    has_value = false;
  } else {
    name = arg.substr(0, eq);
    value = arg.substr(eq + 1);
    has_value = true;
  }
}

}  // namespace

std::string cli_usage() {
  return
      "usage: tmg [options] <source.mc> [more.mc ...]\n"
      "       tmg serve --socket=PATH|--listen=HOST:PORT [--cache-dir=DIR]\n"
      "                 [options]\n"
      "       tmg client --socket=PATH|--connect=HOST:PORT "
      "<source.mc> [more.mc ...]\n"
      "       tmg client --socket=PATH|--connect=HOST:PORT --shutdown\n"
      "       tmg client --socket=PATH|--connect=HOST:PORT --metrics\n"
      "\n"
      "Runs the full timing-model pipeline: mini-C frontend -> CFG ->\n"
      "partition (path bound b) -> transition system -> per-segment\n"
      "BCET/WCET bounds via bounded model checking. Per-path feasibility\n"
      "checks run as independent jobs on a worker pool (--jobs). Several\n"
      "input files select batch mode: per-file reports plus an aggregate\n"
      "summary.\n"
      "\n"
      "options:\n"
      "  --bound=N             partition path bound b (default 4)\n"
      "  --function=NAME       analyse only this function\n"
      "  --format=FMT          text | csv | json (default text)\n"
      "  --jobs=N              analysis worker threads (default: hardware\n"
      "                        concurrency); output is identical for any N\n"
      "  --shards=N            split the input files over N worker\n"
      "                        processes (memory isolation; each shard runs\n"
      "                        its own --jobs pool); reports and --table2\n"
      "                        are identical for any N; --bench aggregates\n"
      "                        across shards (run sequentially, so timings\n"
      "                        stay uncontended)\n"
      "  --bench[=R]           benchmark mode: run every input R times\n"
      "                        serially and R times on the pool (default 3),\n"
      "                        emit the JSON perf report and exit\n"
      "  --table1[=N]          print the Table-1-style partition summary\n"
      "                        for bounds 1..N (default 7) and exit\n"
      "  --opt[=PASS,...]      apply the Section 3.2 state-space\n"
      "                        optimisations before model checking (all six\n"
      "                        passes, or a comma-separated subset of:\n"
      "                        reverse-cse, live-variables, statement-concat,\n"
      "                        range-analysis, variable-init,\n"
      "                        dead-variable-elim)\n"
      "  --table2              analyse every input with and without --opt\n"
      "                        and print the Table-2-style before/after\n"
      "                        comparison (state bits, transitions, BMC\n"
      "                        time, CNF size, model equality) and exit\n"
      "  --no-bmc              skip feasibility checking (structural model)\n"
      "  --no-validate         skip witness replay through the interpreter\n"
      "  --max-paths=N         enumerated paths per segment (default 64)\n"
      "  --max-steps=N         fixed BMC unroll depth (default: automatic)\n"
      "  --conflict-budget=N   SAT conflict budget per query (-1 unlimited)\n"
      "  --sessions=on|off     keep one incremental SAT session per function\n"
      "                        and answer every BMC query from it under\n"
      "                        assumptions (default on; reports are\n"
      "                        byte-identical either way)\n"
      "  --slice=on|off        per-segment program slicing: solve each\n"
      "                        feasibility query against a backward slice\n"
      "                        keeping only the decisions that can reach\n"
      "                        its anchor (default on; the timing model is\n"
      "                        byte-identical either way)\n"
      "  --corpus=DIR          analyse every .mc/.c file under DIR\n"
      "                        (recursive): one summary row per file,\n"
      "                        streamed as files complete, plus an\n"
      "                        aggregate; per-file failures become rows,\n"
      "                        not run failures; combines with --shards,\n"
      "                        --cache-dir and --checkpoint\n"
      "  --checkpoint=FILE     (corpus only) JSON progress journal; an\n"
      "                        interrupted run resumes from it, re-using\n"
      "                        rows whose source file is unchanged\n"
      "  --cache-dir=DIR       persistent result cache: reports keyed by\n"
      "                        source bytes + output-affecting options are\n"
      "                        reused across runs (single-file, batch,\n"
      "                        --table2 and shard parents; --bench only\n"
      "                        probes it)\n"
      "  --cache=MODE          off | ro | rw (default rw once --cache-dir\n"
      "                        is given); ro serves hits but never writes\n"
      "  --cache-max-mb=N      cap the cache directory at N MiB: every\n"
      "                        store evicts the least-recently-used entries\n"
      "                        (by mtime; hits refresh it) until the cap\n"
      "                        fits (default: unbounded)\n"
      "  --socket=PATH         unix socket for the serve/client subcommands\n"
      "  --listen=HOST:PORT    (serve) TCP listener, alongside or instead\n"
      "                        of --socket; port 0 picks an ephemeral port\n"
      "                        (printed on startup)\n"
      "  --connect=HOST:PORT   (client) connect over TCP instead of the\n"
      "                        unix socket\n"
      "  --serve-workers=N     (serve) connection worker pool size\n"
      "                        (default: hardware threads); slow analyses\n"
      "                        never block cache hits or --metrics\n"
      "  --max-request-mb=N    (serve) per-connection request size cap in\n"
      "                        MiB (default 64); oversized requests get an\n"
      "                        in-band error instead of unbounded buffering\n"
      "  --shutdown            (client only) ask the daemon to exit\n"
      "  --metrics             (client only) print the daemon's metrics\n"
      "                        snapshot (uptime, requests, cache/solver\n"
      "                        aggregates) as JSON\n"
      "  --trace=FILE          write a Chrome/Perfetto trace-event JSON\n"
      "                        file (pipeline stages, scheduler jobs, BMC\n"
      "                        queries, cache lookups; spans are stitched\n"
      "                        across --jobs threads and --shards children);\n"
      "                        reports stay byte-identical\n"
      "  --progress            stderr heartbeat for batch/shard runs (files\n"
      "                        done/total, paths solved, cache hits); never\n"
      "                        touches the report streams\n"
      "  --pessimistic-widths  16-bit-everything translation (paper default)\n"
      "  --stats               include wall-clock data (stage timing,\n"
      "                        bmc_ms, worker counts) in reports\n"
      "  --dot                 print the CFG in Graphviz format and exit\n"
      "  --sal                 print the transition system and exit\n"
      "  --help                show this message\n";
}

bool parse_cli(const std::vector<std::string>& args, CliOptions& out,
               std::string& error) {
  bool format_set = false;
  bool cache_mode_set = false;
  bool max_request_set = false;
  std::size_t start = 0;
  // Subcommands come first, like `git <cmd>`: everything after is the
  // ordinary option grammar.
  if (!args.empty() && args[0] == "serve") {
    out.serve = true;
    start = 1;
  } else if (!args.empty() && args[0] == "client") {
    out.client = true;
    start = 1;
  }
  for (std::size_t ai = start; ai < args.size(); ++ai) {
    const std::string& arg = args[ai];
    if (arg.empty()) continue;
    if (arg[0] != '-') {
      out.inputs.push_back(arg);
      continue;
    }
    std::string_view name, value;
    bool has_value = false;
    split_opt(arg, name, value, has_value);

    // Flags that take no value: `--no-bmc=false` must not silently act as
    // `--no-bmc`.
    const bool is_bare_flag = name == "--help" || name == "-h" ||
                              name == "--no-bmc" || name == "--no-validate" ||
                              name == "--pessimistic-widths" ||
                              name == "--stats" || name == "--dot" ||
                              name == "--sal" || name == "--table2" ||
                              name == "--shutdown" || name == "--metrics" ||
                              name == "--progress";
    if (is_bare_flag && has_value) {
      error = "option '" + std::string(name) + "' takes no value";
      return false;
    }

    if (name == "--help" || name == "-h") {
      out.show_help = true;
    } else if (name == "--bound") {
      if (!parse_u64(value, out.pipeline.path_bound) ||
          out.pipeline.path_bound == 0) {
        error = "--bound expects a positive integer";
        return false;
      }
    } else if (name == "--function") {
      if (!has_value || value.empty()) {
        error = "--function expects a name";
        return false;
      }
      out.pipeline.function = std::string(value);
    } else if (name == "--format") {
      if (!parse_format(value, out.format)) {
        error = "--format expects text, csv or json";
        return false;
      }
      format_set = true;
    } else if (name == "--jobs") {
      std::uint64_t v = 0;
      if (!parse_u64(value, v) || v == 0 || v > 1024) {
        error = "--jobs expects a positive integer (max 1024)";
        return false;
      }
      out.pipeline.jobs = static_cast<unsigned>(v);
    } else if (name == "--shards") {
      std::uint64_t v = 0;
      if (!parse_u64(value, v) || v == 0 || v > 256) {
        error = "--shards expects a positive integer (max 256)";
        return false;
      }
      out.shards = static_cast<unsigned>(v);
    } else if (name == "--bench") {
      out.bench_repeats = 3;
      std::uint64_t v = 0;
      if (has_value) {
        if (!parse_u64(value, v) || v == 0 || v > 1000) {
          error = "--bench expects a positive repeat count (max 1000)";
          return false;
        }
        out.bench_repeats = static_cast<unsigned>(v);
      }
    } else if (name == "--table1") {
      out.table1_max_bound = 7;
      if (has_value && (!parse_u64(value, out.table1_max_bound) ||
                        out.table1_max_bound == 0)) {
        error = "--table1 expects a positive integer bound";
        return false;
      }
    } else if (name == "--opt") {
      if (!has_value) {
        out.pipeline.opt_passes = opt::all_passes();
      } else {
        out.pipeline.opt_passes.clear();
        // Every comma-separated item must name a pass; empty items (from
        // `--opt=`, a leading/trailing comma or `a,,b`) are errors, not
        // silently dropped pass selections.
        std::string_view rest = value;
        for (;;) {
          const std::size_t comma = rest.find(',');
          const std::string_view item = rest.substr(0, comma);
          const std::optional<opt::Pass> p = opt::parse_pass(item);
          if (!p) {
            error = "--opt: unknown pass '" + std::string(item) + "'";
            return false;
          }
          out.pipeline.opt_passes.push_back(*p);
          if (comma == std::string_view::npos) break;
          rest = rest.substr(comma + 1);
        }
      }
    } else if (name == "--table2") {
      out.table2 = true;
    } else if (name == "--no-bmc") {
      out.pipeline.run_bmc = false;
    } else if (name == "--no-validate") {
      out.pipeline.validate_witnesses = false;
    } else if (name == "--max-paths") {
      std::uint64_t v = 0;
      if (!parse_u64(value, v) || v == 0) {
        error = "--max-paths expects a positive integer";
        return false;
      }
      out.pipeline.max_paths_per_segment = static_cast<std::size_t>(v);
    } else if (name == "--max-steps") {
      std::uint64_t v = 0;
      if (!parse_u64(value, v)) {
        error = "--max-steps expects an integer";
        return false;
      }
      out.pipeline.bmc.max_steps = static_cast<std::uint32_t>(v);
    } else if (name == "--conflict-budget") {
      if (!parse_i64(value, out.pipeline.bmc.conflict_budget)) {
        error = "--conflict-budget expects an integer";
        return false;
      }
    } else if (name == "--sessions") {
      if (value == "on") {
        out.pipeline.use_sessions = true;
      } else if (value == "off") {
        out.pipeline.use_sessions = false;
      } else {
        error = "--sessions expects on or off";
        return false;
      }
    } else if (name == "--slice") {
      if (value == "on") {
        out.pipeline.slice = true;
      } else if (value == "off") {
        out.pipeline.slice = false;
      } else {
        error = "--slice expects on or off";
        return false;
      }
    } else if (name == "--corpus") {
      if (!has_value || value.empty()) {
        error = "--corpus expects a directory path";
        return false;
      }
      out.corpus_dir = std::string(value);
    } else if (name == "--checkpoint") {
      if (!has_value || value.empty()) {
        error = "--checkpoint expects a file path";
        return false;
      }
      out.checkpoint_file = std::string(value);
    } else if (name == "--cache-dir") {
      if (!has_value || value.empty()) {
        error = "--cache-dir expects a directory path";
        return false;
      }
      out.cache_dir = std::string(value);
    } else if (name == "--cache") {
      if (value == "off") {
        out.cache_mode = CacheMode::Off;
      } else if (value == "ro") {
        out.cache_mode = CacheMode::ReadOnly;
      } else if (value == "rw") {
        out.cache_mode = CacheMode::ReadWrite;
      } else {
        error = "--cache expects off, ro or rw";
        return false;
      }
      cache_mode_set = true;
    } else if (name == "--cache-max-mb") {
      std::uint64_t v = 0;
      if (!parse_u64(value, v) || v == 0) {
        error = "--cache-max-mb expects a positive integer (MiB)";
        return false;
      }
      out.cache_max_bytes = v << 20;
    } else if (name == "--socket") {
      if (!has_value || value.empty()) {
        error = "--socket expects a path";
        return false;
      }
      out.socket_path = std::string(value);
    } else if (name == "--listen") {
      if (!has_value || value.empty()) {
        error = "--listen expects HOST:PORT";
        return false;
      }
      out.listen_addr = std::string(value);
    } else if (name == "--connect") {
      if (!has_value || value.empty()) {
        error = "--connect expects HOST:PORT";
        return false;
      }
      out.connect_addr = std::string(value);
    } else if (name == "--serve-workers") {
      std::uint64_t v = 0;
      if (!parse_u64(value, v) || v == 0 || v > 1024) {
        error = "--serve-workers expects a positive integer (max 1024)";
        return false;
      }
      out.serve_workers = static_cast<unsigned>(v);
    } else if (name == "--max-request-mb") {
      std::uint64_t v = 0;
      if (!parse_u64(value, v) || v == 0 || v > 4096) {
        error = "--max-request-mb expects a positive integer (max 4096)";
        return false;
      }
      out.max_request_bytes = static_cast<std::size_t>(v) << 20;
      max_request_set = true;
    } else if (name == "--shutdown") {
      out.client_shutdown = true;
    } else if (name == "--metrics") {
      out.client_metrics = true;
    } else if (name == "--trace") {
      if (!has_value || value.empty()) {
        error = "--trace expects a file path";
        return false;
      }
      out.trace_file = std::string(value);
    } else if (name == "--progress") {
      out.progress = true;
    } else if (name == "--pessimistic-widths") {
      out.pipeline.pessimistic_widths = true;
    } else if (name == "--stats") {
      out.with_stages = true;
    } else if (name == "--dot") {
      out.dump_dot = true;
    } else if (name == "--sal") {
      out.dump_sal = true;
    } else {
      error = "unknown option '" + std::string(name) + "'";
      return false;
    }
  }
  // Subcommand validations first: they redefine what "no input" means.
  if (out.client_shutdown && !out.client) {
    error = "--shutdown is a 'tmg client' option";
    return false;
  }
  if (out.client_metrics && !out.client) {
    error = "--metrics is a 'tmg client' option";
    return false;
  }
  if (out.client_metrics && out.client_shutdown) {
    error = "client --metrics cannot be combined with --shutdown";
    return false;
  }
  if (out.serve && out.socket_path.empty() && out.listen_addr.empty()) {
    error = "serve requires --socket=PATH and/or --listen=HOST:PORT";
    return false;
  }
  if (out.client && out.socket_path.empty() == out.connect_addr.empty()) {
    error = "client requires exactly one of --socket=PATH or "
            "--connect=HOST:PORT";
    return false;
  }
  if (!out.serve && !out.client && !out.socket_path.empty()) {
    error = "--socket only applies to the serve/client subcommands";
    return false;
  }
  if (!out.serve && !out.listen_addr.empty()) {
    error = "--listen is a 'tmg serve' option";
    return false;
  }
  if (!out.client && !out.connect_addr.empty()) {
    error = "--connect is a 'tmg client' option";
    return false;
  }
  if (!out.serve && (out.serve_workers != 0)) {
    error = "--serve-workers is a 'tmg serve' option";
    return false;
  }
  if (!out.serve && max_request_set) {
    error = "--max-request-mb is a 'tmg serve' option";
    return false;
  }
  if (out.serve && !out.inputs.empty()) {
    error = "serve takes no input files (clients submit them)";
    return false;
  }
  if ((out.serve || out.client) &&
      (out.table1_max_bound > 0 || out.table2 || out.bench_repeats > 0 ||
       out.dump_dot || out.dump_sal || out.shards > 1)) {
    error = "serve/client cannot be combined with "
            "--table1/--table2/--bench/--dot/--sal/--shards";
    return false;
  }
  if (out.client && out.client_shutdown && !out.inputs.empty()) {
    error = "client --shutdown takes no input files";
    return false;
  }
  if (out.client && out.client_metrics && !out.inputs.empty()) {
    error = "client --metrics takes no input files";
    return false;
  }
  // `--cache=ro` with nowhere to read from is a configuration mistake,
  // not a silent no-op cache.
  if (cache_mode_set && out.cache_mode != CacheMode::Off &&
      out.cache_dir.empty()) {
    error = "--cache=ro|rw requires --cache-dir=DIR";
    return false;
  }
  if (out.cache_max_bytes > 0 && out.cache_dir.empty()) {
    error = "--cache-max-mb requires --cache-dir=DIR";
    return false;
  }
  // Corpus mode owns the file list (it crawls the directory), so it
  // takes no positional inputs and none of the single-report modes.
  if (!out.corpus_dir.empty()) {
    if (!out.inputs.empty()) {
      error = "--corpus takes no input files (it crawls the directory)";
      return false;
    }
    if (out.serve || out.client || out.table1_max_bound > 0 || out.table2 ||
        out.bench_repeats > 0 || out.dump_dot || out.dump_sal) {
      error = "--corpus cannot be combined with serve/client/"
              "--table1/--table2/--bench/--dot/--sal";
      return false;
    }
  }
  if (!out.checkpoint_file.empty() && out.corpus_dir.empty()) {
    error = "--checkpoint requires --corpus=DIR";
    return false;
  }
  if (!out.show_help && !out.serve && out.corpus_dir.empty() &&
      !(out.client && (out.client_shutdown || out.client_metrics)) &&
      out.inputs.empty()) {
    error = "no input file";
    return false;
  }
  // Mode flags are mutually exclusive; a silently ignored --bench would
  // hand CI an empty bench.json.
  if (out.bench_repeats > 0) {
    if (out.table1_max_bound > 0 || out.dump_dot || out.dump_sal ||
        out.table2) {
      error = "--bench cannot be combined with --table1/--table2/--dot/--sal";
      return false;
    }
    if (format_set && out.format != ReportFormat::Json) {
      error = "--bench always emits JSON; drop --format or use --format=json";
      return false;
    }
  }
  if (out.table2 && (out.table1_max_bound > 0 || out.dump_dot ||
                     out.dump_sal)) {
    error = "--table2 cannot be combined with --table1/--dot/--sal";
    return false;
  }
  // Only the timing-model report has a batch rendering; concatenating
  // per-file summaries/dumps would be malformed CSV/JSON.
  if ((out.table1_max_bound > 0 || out.dump_dot || out.dump_sal) &&
      out.inputs.size() > 1) {
    error = "--table1/--dot/--sal take exactly one input file";
    return false;
  }
  // Sharding splits the file list; the single-input dump/summary modes
  // have nothing to split.
  if (out.shards > 1 &&
      (out.table1_max_bound > 0 || out.dump_dot || out.dump_sal)) {
    error = "--shards cannot be combined with --table1/--dot/--sal";
    return false;
  }
  return true;
}

namespace {

bool read_file(const std::string& path, std::string& source,
               std::ostream& err) {
  std::ifstream in(path);
  if (!in) {
    err << "tmg: cannot open '" << path << "'\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  source = buf.str();
  return true;
}

int dump_artifacts(const CliOptions& opts, const std::string& source,
                   std::ostream& out, std::ostream& err) {
  DiagnosticEngine diags;
  std::unique_ptr<minic::Program> program = minic::compile(
      source, diags, minic::SemaOptions{.warn_unbounded_loops = false});
  if (!program) {
    err << diags.str();
    return 2;
  }
  for (const auto& fn : program->functions) {
    if (!opts.pipeline.function.empty() &&
        fn->name != opts.pipeline.function)
      continue;
    std::unique_ptr<cfg::FunctionCfg> f = cfg::build_cfg(*fn);
    if (opts.dump_dot) out << f->graph.to_dot() << "\n";
    if (opts.dump_sal) {
      tsys::TranslateOptions topts;
      topts.pessimistic_widths = opts.pipeline.pessimistic_widths;
      std::unique_ptr<tsys::TranslationResult> tr =
          tsys::translate(*program, *f, diags, topts);
      if (!tr) {
        err << diags.str();
        return 2;
      }
      // `--sal --opt` shows the optimised module, the paper's actual SAL
      // input after Section 3.2.
      if (!opts.pipeline.opt_passes.empty())
        opt::run_passes(tr->ts, opts.pipeline.opt_passes);
      out << tr->ts.to_sal() << "\n";
    }
  }
  return 0;
}

/// BMC-stage seconds of one run (program-level plus per-function).
double bmc_stage_seconds(const PipelineResult& r) {
  double seconds = 0.0;
  for (const StageStats& s : r.stages)
    if (s.name == "bmc") seconds += s.seconds;
  for (const FunctionTiming& ft : r.functions)
    for (const StageStats& s : ft.stages)
      if (s.name == "bmc") seconds += s.seconds;
  return seconds;
}

/// Per-stage seconds of one run, in canonical order: program-level stages
/// plus per-function stages summed by name.
std::vector<engine::BenchStage> bench_stages(const PipelineResult& r) {
  // No "optimise" entry: bench stage breakdowns come from the unoptimised
  // pool run (the optimised run only contributes its headline wall-clock;
  // its per-stage timing is available via `--opt --stats`).
  static const char* kOrder[] = {"frontend",  "cfg",      "partition",
                                 "translate", "analysis", "bmc"};
  std::vector<engine::BenchStage> out;
  for (const char* name : kOrder) {
    double seconds = 0.0;
    bool found = false;
    for (const StageStats& s : r.stages)
      if (s.name == name) {
        seconds += s.seconds;
        found = true;
      }
    for (const FunctionTiming& ft : r.functions)
      for (const StageStats& s : ft.stages)
        if (s.name == name) {
          seconds += s.seconds;
          found = true;
        }
    if (found) out.push_back(engine::BenchStage{name, seconds});
  }
  return out;
}

}  // namespace

/// Benchmark measurement: every input R times with one worker, R times
/// with the configured pool, R times on the pool with the Section 3.2
/// passes, then the whole set R times on one global job frontier; best-of
/// wall clocks feed the JSON report (unoptimised vs optimised is the
/// Table-2 speedup tracked per commit, per-file pool sum vs frontier is
/// the batch overlap win).
bool bench_files(const CliOptions& opts,
                 const std::vector<std::string>& paths,
                 const std::vector<std::string>& sources,
                 std::vector<engine::BenchFile>& files,
                 double& batch_seconds, std::string& error,
                 std::size_t& error_index) {
  enum class Mode { Serial, Fresh, NoSlice, Pool, Optimised };
  for (std::size_t i = 0; i < paths.size(); ++i) {
    engine::BenchFile file;
    file.path = paths[i];

    for (const Mode mode :
         {Mode::Serial, Mode::Fresh, Mode::NoSlice, Mode::Pool,
          Mode::Optimised}) {
      PipelineOptions popts = opts.pipeline;
      popts.jobs = mode == Mode::Serial ? 1 : opts.pipeline.jobs;
      // Fresh: the pool run with warm sessions disabled (one throwaway
      // solver per BMC query) — the session-speedup baseline.
      if (mode == Mode::Fresh) popts.use_sessions = false;
      // NoSlice: the pool run with per-segment slicing disabled (every
      // query against the full system) — the slice-speedup baseline.
      if (mode == Mode::NoSlice) popts.slice = false;
      if (mode == Mode::Optimised) {
        if (popts.opt_passes.empty()) popts.opt_passes = opt::all_passes();
      } else {
        popts.opt_passes.clear();
      }
      const Pipeline pipeline(popts);
      double best = 0.0;
      for (unsigned rep = 0; rep < opts.bench_repeats; ++rep) {
        const double t0 = engine::monotonic_seconds();
        const PipelineResult r = pipeline.run(sources[i]);
        const double wall = engine::monotonic_seconds() - t0;
        if (!r.ok) {
          error = paths[i] + ": " + r.error;
          error_index = i;
          return false;
        }
        // Stage breakdown tracks the best run, so it stays consistent
        // with the headline parallel_seconds it accompanies.
        if (rep == 0 || wall < best) {
          best = wall;
          if (mode == Mode::Pool) {
            file.analysis_jobs = r.analysis_jobs;
            file.workers_used = r.analysis_workers;
            file.stages = bench_stages(r);
            file.bmc_seconds = bmc_stage_seconds(r);
            file.solver_decisions = 0;
            file.solver_propagations = 0;
            file.solver_conflicts = 0;
            file.solver_restarts = 0;
            for (const FunctionTiming& ft : r.functions)
              for (const SegmentTiming& s : ft.segments) {
                file.solver_decisions += s.solver_decisions;
                file.solver_propagations += s.solver_propagations;
                file.solver_conflicts += s.solver_conflicts;
                file.solver_restarts += s.solver_restarts;
              }
          } else if (mode == Mode::Fresh) {
            file.bmc_fresh_seconds = bmc_stage_seconds(r);
          } else if (mode == Mode::NoSlice) {
            file.bmc_noslice_seconds = bmc_stage_seconds(r);
          }
        }
      }
      switch (mode) {
        case Mode::Serial: file.serial_seconds = best; break;
        case Mode::Fresh: file.fresh_seconds = best; break;
        case Mode::NoSlice: file.noslice_seconds = best; break;
        case Mode::Pool: file.parallel_seconds = best; break;
        case Mode::Optimised: file.optimised_seconds = best; break;
      }
    }
    files.push_back(std::move(file));
  }

  // Frontier mode: all files on one shared pool, frontends overlapping
  // BMC — the wall the per-file pool sum is compared against.
  PipelineOptions popts = opts.pipeline;
  popts.opt_passes.clear();
  batch_seconds = 0.0;
  for (unsigned rep = 0; rep < opts.bench_repeats; ++rep) {
    const double t0 = engine::monotonic_seconds();
    const BatchResult r = run_batch(sources, paths, popts);
    const double wall = engine::monotonic_seconds() - t0;
    if (!r.ok) {
      error = r.error;
      error_index = r.error_index;
      return false;
    }
    if (rep == 0 || wall < batch_seconds) batch_seconds = wall;
  }
  return true;
}

namespace {

/// Benchmark mode: measure (bench_files) and render the JSON report.
int run_bench(const CliOptions& opts,
              const std::vector<std::string>& sources, ResultCache& cache,
              std::ostream& out, std::ostream& err) {
  engine::BenchReport report;
  report.repeats = opts.bench_repeats;
  report.workers = engine::Scheduler(opts.pipeline.jobs).workers();

  std::string error;
  std::size_t error_index = 0;
  if (!bench_files(opts, opts.inputs, sources, report.files,
                   report.batch_seconds, error, error_index)) {
    err << error;
    return 2;
  }

  bench_probe_cache(sources, opts.pipeline, cache, report, err);
  report.render_json(out);
  return 0;
}

// ----------------------------------------------------------------- corpus

/// One corpus file while the run is in flight.
struct CorpusFile {
  std::string rel;     ///< path relative to the root (report/journal key)
  std::string path;    ///< full path on disk
  std::string source;  ///< file bytes (empty when unreadable)
  std::string fnv;     ///< content_fingerprint of `source`
  std::optional<CorpusRow> row;  ///< set once the file is resolved
};

/// Rewrites the progress journal with every resolved row (temp + rename,
/// so an interrupt never leaves a torn journal under the final name).
void write_corpus_checkpoint(const CliOptions& opts,
                             const std::vector<CorpusFile>& files,
                             std::ostream& err) {
  if (opts.checkpoint_file.empty()) return;
  std::ostringstream os;
  os << "{\"v\":1,\"config\":"
     << json_quote(cache_config_fingerprint(opts.pipeline))
     << ",\"root\":" << json_quote(opts.corpus_dir) << ",\"files\":{";
  bool first = true;
  for (const CorpusFile& f : files) {
    if (!f.row) continue;
    if (!first) os << ",";
    first = false;
    const CorpusRow& r = *f.row;
    os << json_quote(f.rel) << ":{\"fnv\":\"" << f.fnv
       << "\",\"ok\":" << (r.ok ? "true" : "false");
    if (r.ok) {
      os << ",\"functions\":" << r.functions
         << ",\"segments\":" << r.segments << ",\"paths\":" << r.paths
         << ",\"feasible\":" << r.feasible
         << ",\"infeasible\":" << r.infeasible
         << ",\"unknown\":" << r.unknown
         << ",\"conclusive\":" << (r.conclusive ? "true" : "false")
         << ",\"wcet_total\":" << r.wcet_total;
    } else {
      os << ",\"error\":" << json_quote(r.error);
    }
    os << "}";
  }
  os << "}}\n";
  const std::string tmp = opts.checkpoint_file + ".tmp";
  std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
  if (file) {
    file << os.str();
    file.close();
  }
  if (!file || std::rename(tmp.c_str(), opts.checkpoint_file.c_str()) != 0)
    err << "tmg: corpus: cannot update checkpoint '" << opts.checkpoint_file
        << "'\n";
}

/// Replays journal rows whose recorded source hash still matches. A
/// journal written under a different configuration (or unparseable) is
/// ignored wholesale — resuming it would mix rows from two option sets.
void load_corpus_checkpoint(const CliOptions& opts,
                            std::vector<CorpusFile>& files,
                            std::ostream& err) {
  if (opts.checkpoint_file.empty()) return;
  std::ifstream in(opts.checkpoint_file, std::ios::binary);
  if (!in) return;  // first run: nothing to resume
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::optional<JsonValue> v = json_parse(buf.str());
  if (!v || v->kind() != JsonValue::Kind::Object) {
    err << "tmg: corpus: ignoring unreadable checkpoint '"
        << opts.checkpoint_file << "'\n";
    return;
  }
  const JsonValue* version = v->find("v");
  const JsonValue* config = v->find("config");
  const JsonValue* rows = v->find("files");
  if (version == nullptr || !version->is_int() || version->as_int() != 1 ||
      config == nullptr || config->kind() != JsonValue::Kind::String ||
      rows == nullptr || rows->kind() != JsonValue::Kind::Object) {
    err << "tmg: corpus: ignoring unreadable checkpoint '"
        << opts.checkpoint_file << "'\n";
    return;
  }
  if (config->as_string() != cache_config_fingerprint(opts.pipeline)) {
    err << "tmg: corpus: checkpoint was written under different options; "
           "starting over\n";
    return;
  }
  for (CorpusFile& f : files) {
    if (f.row) continue;  // unreadable files already carry an error row
    const JsonValue* e = rows->find(f.rel);
    if (e == nullptr || e->kind() != JsonValue::Kind::Object) continue;
    const JsonValue* fnv = e->find("fnv");
    const JsonValue* ok = e->find("ok");
    if (fnv == nullptr || fnv->kind() != JsonValue::Kind::String ||
        fnv->as_string() != f.fnv || ok == nullptr ||
        ok->kind() != JsonValue::Kind::Bool)
      continue;  // source changed (or torn entry): recompute
    CorpusRow r;
    r.path = f.rel;
    r.ok = ok->as_bool();
    if (r.ok) {
      const auto count = [&](const char* name, std::size_t& into) {
        const JsonValue* c = e->find(name);
        if (c == nullptr || !c->is_int()) return false;
        into = static_cast<std::size_t>(c->as_int());
        return true;
      };
      const JsonValue* conclusive = e->find("conclusive");
      const JsonValue* wcet = e->find("wcet_total");
      if (!count("functions", r.functions) ||
          !count("segments", r.segments) || !count("paths", r.paths) ||
          !count("feasible", r.feasible) ||
          !count("infeasible", r.infeasible) ||
          !count("unknown", r.unknown) || conclusive == nullptr ||
          conclusive->kind() != JsonValue::Kind::Bool || wcet == nullptr ||
          !wcet->is_int())
        continue;
      r.conclusive = conclusive->as_bool();
      r.wcet_total = wcet->as_int();
    } else {
      const JsonValue* error = e->find("error");
      if (error == nullptr || error->kind() != JsonValue::Kind::String)
        continue;
      r.error = error->as_string();
    }
    f.row = std::move(r);
  }
}

/// `tmg --corpus DIR`: analyse every .mc/.c file under DIR, streaming one
/// summary row per file (in path order) plus one aggregate. Per-file
/// failures — unreadable, frontend error, even a worker crash under
/// --shards — become rows, never run failures: the exit code is 0 as long
/// as the corpus itself could be crawled.
int run_corpus(const CliOptions& opts, ResultCache& cache, std::ostream& out,
               std::ostream& err) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(opts.corpus_dir, ec) || ec) {
    err << "tmg: --corpus: '" << opts.corpus_dir << "' is not a directory\n";
    return 2;
  }

  std::vector<CorpusFile> files;
  for (fs::recursive_directory_iterator it(opts.corpus_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    std::error_code stat_ec;
    if (!it->is_regular_file(stat_ec) || stat_ec) continue;
    const fs::path& p = it->path();
    const std::string ext = p.extension().string();
    if (ext != ".mc" && ext != ".c") continue;
    CorpusFile f;
    f.path = p.string();
    f.rel = p.lexically_relative(opts.corpus_dir).generic_string();
    files.push_back(std::move(f));
  }
  if (ec) {
    err << "tmg: --corpus: cannot crawl '" << opts.corpus_dir
        << "': " << ec.message() << "\n";
    return 2;
  }
  // Path order is the report order AND the journal key order: stable
  // across runs, directory-iteration order, and shard pool sizes.
  std::sort(files.begin(), files.end(),
            [](const CorpusFile& a, const CorpusFile& b) {
              return a.rel < b.rel;
            });
  if (files.empty())
    err << "tmg: corpus: no .mc/.c files under '" << opts.corpus_dir
        << "'\n";
  if (opts.progress) trace::enable_progress(&err, files.size());

  for (CorpusFile& f : files) {
    std::ifstream in(f.path, std::ios::binary);
    std::ostringstream buf;
    if (in) buf << in.rdbuf();
    if (!in) {
      CorpusRow r;
      r.path = f.rel;
      r.error = "cannot read file";
      f.row = std::move(r);
      continue;
    }
    f.source = buf.str();
    f.fnv = content_fingerprint(f.source);
  }

  load_corpus_checkpoint(opts, files, err);

  render_corpus_begin(opts.format, out);
  std::size_t emitted = 0;
  const auto flush_rows = [&] {
    while (emitted < files.size() && files[emitted].row) {
      render_corpus_row(*files[emitted].row, emitted, opts.format, out);
      ++emitted;
    }
  };
  flush_rows();

  // Cache hits resolve parent-side, like the sharded batch prefilter.
  bool parent_resolved = false;
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < files.size(); ++i) {
    CorpusFile& f = files[i];
    if (f.row) continue;
    if (std::optional<PipelineResult> hit =
            cache.lookup(f.source, opts.pipeline, err)) {
      f.row = corpus_row(f.rel, *hit);
      trace::progress_file_done();
      parent_resolved = true;
      continue;
    }
    todo.push_back(i);
  }
  if (parent_resolved) write_corpus_checkpoint(opts, files, err);
  flush_rows();

  const auto finish_pending = [&](std::size_t i, const PipelineResult& r) {
    CorpusFile& f = files[i];
    if (r.ok) cache.store(f.source, opts.pipeline, r, err);
    f.row = corpus_row(f.rel, r);
    write_corpus_checkpoint(opts, files, err);
    flush_rows();
  };

  bool computed = todo.empty();
  if (!computed && opts.shards > 1 && todo.size() > 1) {
    // The fault-tolerant worker fabric: size-ranked units over a pool of
    // `--shards` forked workers; a crashed worker's file comes back as an
    // error row, not a dead run.
    std::vector<std::string> srcs, paths;
    srcs.reserve(todo.size());
    paths.reserve(todo.size());
    for (const std::size_t i : todo) {
      srcs.push_back(files[i].source);
      paths.push_back(files[i].path);
    }
    std::vector<std::optional<PipelineResult>> results(todo.size());
    std::vector<std::string> crash_errors;
    FabricStats stats;
    FabricOptions fopts;
    fopts.pool = static_cast<unsigned>(
        std::min<std::size_t>(opts.shards, todo.size()));
    const auto on_done = [&](std::size_t j) {
      if (results[j]) {
        finish_pending(todo[j], *results[j]);
        return;
      }
      PipelineResult r;  // crash hard-failure: synthesise an error result
      r.ok = false;
      r.error = crash_errors[j];
      finish_pending(todo[j], r);
    };
    computed = run_fabric(opts.pipeline, srcs, paths, fopts, results,
                          crash_errors, stats, err, on_done);
    if (computed && opts.with_stages)
      err << "tmg: fabric: " << stats.units << " units, " << stats.dispatches
          << " dispatches, " << stats.retries << " retries, " << stats.splits
          << " splits, " << stats.crashes << " crashes, "
          << stats.hard_failures << " hard failures\n";
  }
  if (!computed) {
    // Single-shard (or fork-less platform): analyse in path order.
    const Pipeline pipeline(opts.pipeline);
    for (const std::size_t i : todo) {
      if (files[i].row) continue;
      finish_pending(i, pipeline.run(files[i].source));
      trace::progress_file_done();
    }
  }

  flush_rows();
  std::vector<CorpusRow> rows;
  rows.reserve(files.size());
  for (const CorpusFile& f : files) rows.push_back(*f.row);
  render_corpus_end(rows, opts.format, out);
  return 0;
}

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  CliOptions opts;
  std::string error;
  if (!parse_cli(args, opts, error)) {
    err << "tmg: " << error << "\n\n" << cli_usage();
    return 1;
  }
  if (opts.show_help) {
    out << cli_usage();
    return 0;
  }

  // Declared before any mode branch so every path records; the destructor
  // (normal return of this function) writes the trace file. Shard
  // children never reach it — they _exit after shipping their buffers.
  std::optional<trace::Recording> recording;
  if (!opts.trace_file.empty()) recording.emplace(opts.trace_file, err);

  // The daemon reads nothing up front; clients submit sources.
  if (opts.serve) return run_serve(opts, out, err);

  std::vector<std::string> sources(opts.inputs.size());
  for (std::size_t i = 0; i < opts.inputs.size(); ++i)
    if (!read_file(opts.inputs[i], sources[i], err)) return 2;

  if (opts.client) return run_client(opts, sources, out, err);

  // Stderr-only heartbeat; disabled again on every exit path so repeated
  // in-process runs (tests, embedding) never write to a dead stream.
  struct ProgressGuard {
    ~ProgressGuard() { trace::disable_progress(); }
  } progress_guard;
  if (opts.progress) trace::enable_progress(&err, opts.inputs.size());

  ResultCache cache(opts.cache_dir,
                    opts.cache_dir.empty() ? CacheMode::Off : opts.cache_mode,
                    opts.cache_max_bytes);
  // One summary line per process keeps cache behaviour observable without
  // touching the deterministic report streams (stderr, --stats only).
  const auto finish = [&](int rc) {
    if (opts.with_stages && cache.enabled()) {
      const CacheStats cs = cache.stats();
      err << "tmg: cache: " << cs.hits << " hits, " << cs.misses
          << " misses, " << cs.writes << " writes, " << cs.fast_hits
          << " fast hits, " << cs.evictions << " evictions\n";
    }
    return rc;
  };

  // Corpus mode crawls its own file list; everything below works off the
  // positional inputs.
  if (!opts.corpus_dir.empty()) return finish(run_corpus(opts, cache, out, err));

  // Process-level sharding: fork one worker process per shard, each
  // running its own job frontier over a slice of the file list; the
  // parent merges the streamed JSON results. Output is byte-identical to
  // the in-process run. A single input has nothing to split.
  if (opts.shards > 1 && opts.inputs.size() > 1) {
    const int rc = run_sharded(opts, sources, cache, out, err);
    if (rc >= 0) return finish(rc);
    // rc < 0: sharding unavailable on this platform; run in process.
  }

  // parse_cli guarantees exactly one input for the dump/summary modes.
  if (opts.dump_dot || opts.dump_sal)
    return dump_artifacts(opts, sources[0], out, err);

  if (opts.table1_max_bound > 0) {
    const PartitionSummary summary = partition_summary(
        sources[0], opts.table1_max_bound, opts.pipeline.function);
    if (!summary.ok) {
      err << summary.error;
      return 2;
    }
    render_partition_summary(summary, opts.format, out);
    return 0;
  }

  if (opts.table2) {
    const std::vector<std::string> names =
        opts.inputs.size() > 1 ? opts.inputs : std::vector<std::string>{};
    const Table2Report report =
        table2_compare_cached(sources, names, opts.pipeline, cache, err);
    if (!report.ok) {
      err << report.error;
      return finish(2);
    }
    render_table2(report, opts.format, out);
    return finish(0);
  }

  if (opts.bench_repeats > 0)
    return finish(run_bench(opts, sources, cache, out, err));

  if (opts.inputs.size() == 1) {
    std::optional<PipelineResult> result =
        cache.lookup(sources[0], opts.pipeline, err);
    const bool computed = !result.has_value();
    if (computed) {
      const Pipeline pipeline(opts.pipeline);
      result = pipeline.run(sources[0]);
    }
    if (!result->ok) {
      err << result->error;
      return finish(2);
    }
    if (computed) cache.store(sources[0], opts.pipeline, *result, err);
    render_report(*result, opts.pipeline, opts.format, opts.with_stages,
                  out);
    return finish(0);
  }

  // Batch mode: one global job frontier spanning every file (frontends
  // overlap BMC), then render per-file + aggregate in input order.
  BatchResult batch =
      run_batch_cached(sources, opts.inputs, opts.pipeline, cache, err);
  if (!batch.ok) {
    err << batch.error;
    return finish(2);
  }
  render_batch_report(batch.files, opts.pipeline, opts.format,
                      opts.with_stages, out);
  return finish(0);
}

}  // namespace tmg::driver
