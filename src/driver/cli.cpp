#include "driver/cli.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "cfg/structure.h"
#include "minic/frontend.h"
#include "tsys/translate.h"

namespace tmg::driver {

namespace {

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// Splits "--name=value"; value empty when no '=' present.
void split_opt(std::string_view arg, std::string_view& name,
               std::string_view& value, bool& has_value) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string_view::npos) {
    name = arg;
    value = {};
    has_value = false;
  } else {
    name = arg.substr(0, eq);
    value = arg.substr(eq + 1);
    has_value = true;
  }
}

}  // namespace

std::string cli_usage() {
  return
      "usage: tmg [options] <source.mc>\n"
      "\n"
      "Runs the full timing-model pipeline: mini-C frontend -> CFG ->\n"
      "partition (path bound b) -> transition system -> per-segment\n"
      "BCET/WCET bounds via bounded model checking.\n"
      "\n"
      "options:\n"
      "  --bound=N             partition path bound b (default 4)\n"
      "  --function=NAME       analyse only this function\n"
      "  --format=FMT          text | csv | json (default text)\n"
      "  --table1[=N]          print the Table-1-style partition summary\n"
      "                        for bounds 1..N (default 7) and exit\n"
      "  --no-bmc              skip feasibility checking (structural model)\n"
      "  --max-paths=N         enumerated paths per segment (default 64)\n"
      "  --max-steps=N         fixed BMC unroll depth (default: automatic)\n"
      "  --conflict-budget=N   SAT conflict budget per query (-1 unlimited)\n"
      "  --pessimistic-widths  16-bit-everything translation (paper default)\n"
      "  --stats               include per-stage wall-clock timing (text)\n"
      "  --dot                 print the CFG in Graphviz format and exit\n"
      "  --sal                 print the transition system and exit\n"
      "  --help                show this message\n";
}

bool parse_cli(const std::vector<std::string>& args, CliOptions& out,
               std::string& error) {
  for (const std::string& arg : args) {
    if (arg.empty()) continue;
    if (arg[0] != '-') {
      if (!out.input_path.empty()) {
        error = "multiple input files ('" + out.input_path + "' and '" + arg +
                "')";
        return false;
      }
      out.input_path = arg;
      continue;
    }
    std::string_view name, value;
    bool has_value = false;
    split_opt(arg, name, value, has_value);

    // Flags that take no value: `--no-bmc=false` must not silently act as
    // `--no-bmc`.
    const bool is_bare_flag = name == "--help" || name == "-h" ||
                              name == "--no-bmc" ||
                              name == "--pessimistic-widths" ||
                              name == "--stats" || name == "--dot" ||
                              name == "--sal";
    if (is_bare_flag && has_value) {
      error = "option '" + std::string(name) + "' takes no value";
      return false;
    }

    if (name == "--help" || name == "-h") {
      out.show_help = true;
    } else if (name == "--bound") {
      if (!parse_u64(value, out.pipeline.path_bound) ||
          out.pipeline.path_bound == 0) {
        error = "--bound expects a positive integer";
        return false;
      }
    } else if (name == "--function") {
      if (!has_value || value.empty()) {
        error = "--function expects a name";
        return false;
      }
      out.pipeline.function = std::string(value);
    } else if (name == "--format") {
      if (!parse_format(value, out.format)) {
        error = "--format expects text, csv or json";
        return false;
      }
    } else if (name == "--table1") {
      out.table1_max_bound = 7;
      if (has_value && (!parse_u64(value, out.table1_max_bound) ||
                        out.table1_max_bound == 0)) {
        error = "--table1 expects a positive integer bound";
        return false;
      }
    } else if (name == "--no-bmc") {
      out.pipeline.run_bmc = false;
    } else if (name == "--max-paths") {
      std::uint64_t v = 0;
      if (!parse_u64(value, v) || v == 0) {
        error = "--max-paths expects a positive integer";
        return false;
      }
      out.pipeline.max_paths_per_segment = static_cast<std::size_t>(v);
    } else if (name == "--max-steps") {
      std::uint64_t v = 0;
      if (!parse_u64(value, v)) {
        error = "--max-steps expects an integer";
        return false;
      }
      out.pipeline.bmc.max_steps = static_cast<std::uint32_t>(v);
    } else if (name == "--conflict-budget") {
      if (!parse_i64(value, out.pipeline.bmc.conflict_budget)) {
        error = "--conflict-budget expects an integer";
        return false;
      }
    } else if (name == "--pessimistic-widths") {
      out.pipeline.pessimistic_widths = true;
    } else if (name == "--stats") {
      out.with_stages = true;
    } else if (name == "--dot") {
      out.dump_dot = true;
    } else if (name == "--sal") {
      out.dump_sal = true;
    } else {
      error = "unknown option '" + std::string(name) + "'";
      return false;
    }
  }
  if (!out.show_help && out.input_path.empty()) {
    error = "no input file";
    return false;
  }
  return true;
}

namespace {

int dump_artifacts(const CliOptions& opts, const std::string& source,
                   std::ostream& out, std::ostream& err) {
  DiagnosticEngine diags;
  std::unique_ptr<minic::Program> program = minic::compile(
      source, diags, minic::SemaOptions{.warn_unbounded_loops = false});
  if (!program) {
    err << diags.str();
    return 2;
  }
  for (const auto& fn : program->functions) {
    if (!opts.pipeline.function.empty() &&
        fn->name != opts.pipeline.function)
      continue;
    std::unique_ptr<cfg::FunctionCfg> f = cfg::build_cfg(*fn);
    if (opts.dump_dot) out << f->graph.to_dot() << "\n";
    if (opts.dump_sal) {
      tsys::TranslateOptions topts;
      topts.pessimistic_widths = opts.pipeline.pessimistic_widths;
      std::unique_ptr<tsys::TranslationResult> tr =
          tsys::translate(*program, *f, diags, topts);
      if (!tr) {
        err << diags.str();
        return 2;
      }
      out << tr->ts.to_sal() << "\n";
    }
  }
  return 0;
}

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  CliOptions opts;
  std::string error;
  if (!parse_cli(args, opts, error)) {
    err << "tmg: " << error << "\n\n" << cli_usage();
    return 1;
  }
  if (opts.show_help) {
    out << cli_usage();
    return 0;
  }

  std::ifstream in(opts.input_path);
  if (!in) {
    err << "tmg: cannot open '" << opts.input_path << "'\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string source = buf.str();

  if (opts.dump_dot || opts.dump_sal)
    return dump_artifacts(opts, source, out, err);

  if (opts.table1_max_bound > 0) {
    const PartitionSummary summary = partition_summary(
        source, opts.table1_max_bound, opts.pipeline.function);
    if (!summary.ok) {
      err << summary.error;
      return 2;
    }
    render_partition_summary(summary, opts.format, out);
    return 0;
  }

  Pipeline pipeline(opts.pipeline);
  const PipelineResult result = pipeline.run(source);
  if (!result.ok) {
    err << result.error;
    return 2;
  }
  render_report(result, opts.pipeline, opts.format, opts.with_stages, out);
  return 0;
}

}  // namespace tmg::driver
