#include "minic/parser.h"

#include <algorithm>
#include <unordered_map>

#include "minic/lexer.h"

namespace tmg::minic {

namespace {

/// Lexical scope: name -> symbol. Scopes nest; lookup walks outward.
class ScopeStack {
 public:
  void push() { scopes_.emplace_back(); }
  void pop() { scopes_.pop_back(); }

  /// Declares in the innermost scope; returns false on redeclaration there.
  bool declare(Symbol* sym) {
    auto& top = scopes_.back();
    return top.emplace(sym->name, sym).second;
  }

  [[nodiscard]] Symbol* lookup(std::string_view name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(std::string(name));
      if (found != it->end()) return found->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::unordered_map<std::string, Symbol*>> scopes_;
};

class Parser {
 public:
  Parser(std::string_view source, DiagnosticEngine& diags)
      : diags_(diags), tokens_(lex(source, diags)) {}

  std::unique_ptr<Program> run() {
    program_ = std::make_unique<Program>();
    scopes_.push();  // file scope
    while (!at(Tok::Eof)) {
      if (!top_level_decl()) skip_past(Tok::Semicolon);
    }
    scopes_.pop();
    return std::move(program_);
  }

 private:
  // ------------------------------------------------------------- utilities
  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(Tok t) const { return cur().kind == t; }
  const Token& advance() {
    if (at(Tok::Eof)) return cur();
    return tokens_[pos_++];
  }

  bool accept(Tok t) {
    if (!at(t)) return false;
    advance();
    return true;
  }

  bool expect(Tok t) {
    if (accept(t)) return true;
    diags_.error(cur().loc, "expected " + tok_name(t) + " before " +
                                tok_name(cur().kind));
    return false;
  }

  void skip_past(Tok t) {
    while (!at(Tok::Eof)) {
      const Tok k = cur().kind;
      advance();
      if (k == t || k == Tok::RBrace) return;
    }
  }

  // ----------------------------------------------------------------- types
  [[nodiscard]] bool at_type() const {
    switch (cur().kind) {
      case Tok::KwVoid: case Tok::KwBool: case Tok::KwChar: case Tok::KwShort:
      case Tok::KwInt: case Tok::KwLong: case Tok::KwUnsigned:
      case Tok::KwSigned:
        return true;
      default:
        return false;
    }
  }

  /// type := ('unsigned'|'signed')? base | 'unsigned'/'signed' alone (= int)
  Type parse_type() {
    bool is_unsigned = false;
    bool saw_signedness = false;
    if (accept(Tok::KwUnsigned)) {
      is_unsigned = true;
      saw_signedness = true;
    } else if (accept(Tok::KwSigned)) {
      saw_signedness = true;
    }
    switch (cur().kind) {
      case Tok::KwVoid:
        advance();
        return Type::Void;
      case Tok::KwBool:
        advance();
        return Type::Bool;
      case Tok::KwChar:
        advance();
        return is_unsigned ? Type::UInt8 : Type::Int8;
      case Tok::KwShort:
        advance();
        accept(Tok::KwInt);
        return is_unsigned ? Type::UInt16 : Type::Int16;
      case Tok::KwInt:
        advance();
        return is_unsigned ? Type::UInt16 : Type::Int16;
      case Tok::KwLong:
        advance();
        accept(Tok::KwInt);
        return is_unsigned ? Type::UInt32 : Type::Int32;
      default:
        if (saw_signedness) return is_unsigned ? Type::UInt16 : Type::Int16;
        diags_.error(cur().loc, "expected type before " + tok_name(cur().kind));
        return Type::Int16;
    }
  }

  // ------------------------------------------------------------- top level
  /// extern decl | global decl | function definition
  bool top_level_decl() {
    const SourceLoc loc = cur().loc;
    if (accept(Tok::KwExtern)) return extern_decl(loc);

    const bool is_input = at(Tok::KwInput);
    std::optional<std::pair<std::int64_t, std::int64_t>> input_range;
    if (accept(Tok::KwInput) && accept(Tok::LParen)) {
      // __input(lo, hi): inclusive input domain annotation
      auto read_bound = [&]() -> std::int64_t {
        const bool neg = accept(Tok::Minus);
        std::int64_t v = 0;
        if (at(Tok::IntLiteral)) {
          v = cur().int_value;
          advance();
        } else {
          diags_.error(cur().loc, "__input range expects integer literals");
        }
        return neg ? -v : v;
      };
      const std::int64_t lo = read_bound();
      expect(Tok::Comma);
      const std::int64_t hi = read_bound();
      expect(Tok::RParen);
      if (lo > hi)
        diags_.error(loc, "__input range is empty (lo > hi)");
      else
        input_range = {lo, hi};
    }
    if (!at_type()) {
      diags_.error(cur().loc,
                   "expected declaration before " + tok_name(cur().kind));
      return false;
    }
    const Type type = parse_type();
    if (!at(Tok::Identifier)) {
      diags_.error(cur().loc, "expected identifier in declaration");
      return false;
    }
    const Token name = advance();

    if (at(Tok::LParen)) {
      if (is_input)
        diags_.error(loc, "'__input' is not valid on function definitions");
      return function_def(type, name);
    }
    // global variable(s): `type a = 1, b;`
    Token declarator = name;
    for (;;) {
      Symbol* sym = program_->new_symbol(std::string(declarator.text),
                                         SymbolKind::Global, type,
                                         declarator.loc);
      sym->is_input = is_input;
      if (input_range) {
        const std::int64_t lo =
            std::max(input_range->first, type_min(type));
        const std::int64_t hi = std::min(input_range->second, type_max(type));
        if (lo != input_range->first || hi != input_range->second)
          diags_.warning(declarator.loc,
                         "__input range clamped to the declared type of '" +
                             sym->name + "'");
        if (lo <= hi) sym->input_range = {lo, hi};
      }
      if (type == Type::Void)
        diags_.error(declarator.loc,
                     "variable '" + sym->name + "' has void type");
      if (!scopes_.declare(sym))
        diags_.error(declarator.loc, "redeclaration of '" + sym->name + "'");
      if (accept(Tok::Assign)) {
        // The initialiser must be a literal (possibly negated) so globals
        // stay trivially constant; sema relies on this.
        const bool neg = accept(Tok::Minus);
        if (at(Tok::IntLiteral)) {
          const std::int64_t value =
              neg ? -cur().int_value : cur().int_value;
          sym->init_value = wrap_to_type(value, type);
          if (sym->init_value != value)
            diags_.error(cur().loc,
                         "initialiser " + std::to_string(value) +
                             " is out of range for '" + sym->name + "'");
          advance();
        } else if (at(Tok::KwTrue) || at(Tok::KwFalse)) {
          sym->init_value = at(Tok::KwTrue) ? 1 : 0;
          advance();
        } else {
          diags_.error(cur().loc, "global initialiser must be a literal");
          skip_past(Tok::Semicolon);
          return false;
        }
      }
      if (!accept(Tok::Comma)) break;
      if (!at(Tok::Identifier)) {
        diags_.error(cur().loc, "expected identifier after ','");
        break;
      }
      declarator = advance();
    }
    return expect(Tok::Semicolon);
  }

  /// extern ret name(params) [__cost(N)] ;
  bool extern_decl(SourceLoc loc) {
    const Type ret = parse_type();
    if (!at(Tok::Identifier)) {
      diags_.error(cur().loc, "expected identifier after 'extern'");
      return false;
    }
    const Token name = advance();
    Symbol* sym = program_->new_symbol(std::string(name.text),
                                       SymbolKind::Extern, ret, loc);
    if (!scopes_.declare(sym))
      diags_.error(name.loc, "redeclaration of '" + sym->name + "'");
    if (!expect(Tok::LParen)) return false;
    if (!accept(Tok::RParen)) {
      if (accept(Tok::KwVoid) && at(Tok::RParen)) {
        // (void)
      } else {
        for (;;) {
          const Type pt = parse_type();
          sym->param_types.push_back(pt);
          if (at(Tok::Identifier)) advance();  // parameter name is optional
          if (!accept(Tok::Comma)) break;
        }
      }
      if (!expect(Tok::RParen)) return false;
    }
    if (accept(Tok::KwCost)) {
      expect(Tok::LParen);
      if (at(Tok::IntLiteral)) {
        sym->call_cost = cur().int_value;
        advance();
      } else {
        diags_.error(cur().loc, "__cost expects an integer literal");
      }
      expect(Tok::RParen);
    }
    return expect(Tok::Semicolon);
  }

  bool function_def(Type ret, const Token& name) {
    auto fn = std::make_unique<FunctionDef>();
    fn->name = std::string(name.text);
    fn->return_type = ret;
    fn->loc = name.loc;
    if (program_->find_function(fn->name))
      diags_.error(name.loc, "redefinition of function '" + fn->name + "'");

    expect(Tok::LParen);
    scopes_.push();  // parameter scope
    if (!accept(Tok::RParen)) {
      if (accept(Tok::KwVoid) && at(Tok::RParen)) {
        // (void)
      } else {
        for (;;) {
          const Type pt = parse_type();
          if (!at(Tok::Identifier)) {
            diags_.error(cur().loc, "expected parameter name");
            break;
          }
          const Token pname = advance();
          Symbol* p = program_->new_symbol(std::string(pname.text),
                                           SymbolKind::Param, pt, pname.loc);
          if (pt == Type::Void)
            diags_.error(pname.loc, "parameter has void type");
          if (!scopes_.declare(p))
            diags_.error(pname.loc,
                         "duplicate parameter '" + p->name + "'");
          fn->params.push_back(p);
          if (!accept(Tok::Comma)) break;
        }
      }
      expect(Tok::RParen);
    }
    if (!at(Tok::LBrace)) {
      diags_.error(cur().loc, "expected function body");
      scopes_.pop();
      return false;
    }
    fn->body = block();
    scopes_.pop();
    program_->functions.push_back(std::move(fn));
    return true;
  }

  // ------------------------------------------------------------ statements
  StmtPtr block() {
    const SourceLoc loc = cur().loc;
    expect(Tok::LBrace);
    auto s = make_stmt(StmtKind::Block, loc);
    scopes_.push();
    while (!at(Tok::RBrace) && !at(Tok::Eof)) {
      StmtPtr inner = statement();
      if (inner) s->body.push_back(std::move(inner));
    }
    scopes_.pop();
    expect(Tok::RBrace);
    return s;
  }

  StmtPtr statement() {
    const SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case Tok::LBrace:
        return block();
      case Tok::Semicolon:
        advance();
        return make_stmt(StmtKind::Empty, loc);
      case Tok::KwIf:
        return if_stmt();
      case Tok::KwLoopbound:
        return loop_with_bound();
      case Tok::KwWhile:
        return while_stmt(std::nullopt);
      case Tok::KwFor:
        return for_stmt(std::nullopt);
      case Tok::KwDo:
        return do_stmt(std::nullopt);
      case Tok::KwSwitch:
        return switch_stmt();
      case Tok::KwBreak: {
        advance();
        expect(Tok::Semicolon);
        return make_stmt(StmtKind::Break, loc);
      }
      case Tok::KwContinue: {
        advance();
        expect(Tok::Semicolon);
        return make_stmt(StmtKind::Continue, loc);
      }
      case Tok::KwReturn: {
        advance();
        auto s = make_stmt(StmtKind::Return, loc);
        if (!at(Tok::Semicolon)) s->children.push_back(expression());
        expect(Tok::Semicolon);
        return s;
      }
      default:
        if (at_type() || at(Tok::KwInput)) return decl_stmt();
        return simple_stmt(/*need_semicolon=*/true);
    }
  }

  StmtPtr decl_stmt() {
    const SourceLoc loc = cur().loc;
    if (accept(Tok::KwInput))
      diags_.error(loc, "'__input' is only valid on global declarations");
    const Type type = parse_type();
    auto blockish = make_stmt(StmtKind::Block, loc);
    bool first = true;
    for (;;) {
      if (!at(Tok::Identifier)) {
        diags_.error(cur().loc, "expected identifier in declaration");
        skip_past(Tok::Semicolon);
        return blockish;
      }
      const Token name = advance();
      Symbol* sym = program_->new_symbol(std::string(name.text),
                                         SymbolKind::Local, type, name.loc);
      if (type == Type::Void)
        diags_.error(name.loc, "variable '" + sym->name + "' has void type");
      if (!scopes_.declare(sym))
        diags_.error(name.loc,
                     "redeclaration of '" + sym->name + "' in this scope");
      auto d = make_stmt(StmtKind::Decl, name.loc);
      d->sym = sym;
      if (accept(Tok::Assign)) d->children.push_back(expression());
      if (first && !at(Tok::Comma)) {
        expect(Tok::Semicolon);
        return d;  // common case: a single declarator
      }
      blockish->body.push_back(std::move(d));
      first = false;
      if (!accept(Tok::Comma)) break;
    }
    expect(Tok::Semicolon);
    return blockish;
  }

  StmtPtr if_stmt() {
    const SourceLoc loc = cur().loc;
    advance();  // if
    expect(Tok::LParen);
    auto s = make_stmt(StmtKind::If, loc);
    s->cond = expression();
    expect(Tok::RParen);
    s->body.push_back(statement());
    if (accept(Tok::KwElse))
      s->body.push_back(statement());
    else
      s->body.push_back(nullptr);
    return s;
  }

  StmtPtr loop_with_bound() {
    const SourceLoc loc = cur().loc;
    advance();  // __loopbound
    expect(Tok::LParen);
    std::optional<std::uint32_t> bound;
    if (at(Tok::IntLiteral)) {
      if (cur().int_value > UINT32_MAX) {
        // A silently truncated bound would understate the iteration count
        // and unsoundly shrink every WCET derived from it.
        diags_.error(cur().loc, "__loopbound value is out of range");
      } else {
        bound = static_cast<std::uint32_t>(cur().int_value);
      }
      advance();
    } else {
      diags_.error(cur().loc, "__loopbound expects an integer literal");
    }
    expect(Tok::RParen);
    switch (cur().kind) {
      case Tok::KwWhile: return while_stmt(bound);
      case Tok::KwFor: return for_stmt(bound);
      case Tok::KwDo: return do_stmt(bound);
      default:
        diags_.error(loc, "__loopbound must precede a loop statement");
        return statement();
    }
  }

  StmtPtr while_stmt(std::optional<std::uint32_t> bound) {
    const SourceLoc loc = cur().loc;
    advance();  // while
    expect(Tok::LParen);
    auto s = make_stmt(StmtKind::While, loc);
    s->loop_bound = bound;
    s->cond = expression();
    expect(Tok::RParen);
    s->body.push_back(statement());
    s->body.push_back(nullptr);  // no step
    return s;
  }

  StmtPtr do_stmt(std::optional<std::uint32_t> bound) {
    const SourceLoc loc = cur().loc;
    advance();  // do
    auto s = make_stmt(StmtKind::DoWhile, loc);
    s->loop_bound = bound;
    s->body.push_back(statement());
    s->body.push_back(nullptr);
    expect(Tok::KwWhile);
    expect(Tok::LParen);
    s->cond = expression();
    expect(Tok::RParen);
    expect(Tok::Semicolon);
    return s;
  }

  /// `for (init; cond; step) body` desugars to
  /// `{ init; while (cond) { body } <step attached as continue target> }`.
  StmtPtr for_stmt(std::optional<std::uint32_t> bound) {
    const SourceLoc loc = cur().loc;
    advance();  // for
    expect(Tok::LParen);
    scopes_.push();  // `for (int i = ...)` scope
    auto outer = make_stmt(StmtKind::Block, loc);

    if (!accept(Tok::Semicolon)) {
      StmtPtr init = at_type() ? decl_stmt() : simple_stmt(true);
      if (init) outer->body.push_back(std::move(init));
    }
    auto loop = make_stmt(StmtKind::While, loc);
    loop->loop_bound = bound;
    if (at(Tok::Semicolon)) {
      loop->cond = make_int_lit(1, loc);
      advance();
    } else {
      loop->cond = expression();
      expect(Tok::Semicolon);
    }
    StmtPtr step;
    if (!at(Tok::RParen)) step = simple_stmt(/*need_semicolon=*/false);
    expect(Tok::RParen);
    loop->body.push_back(statement());
    loop->body.push_back(std::move(step));
    outer->body.push_back(std::move(loop));
    scopes_.pop();
    return outer;
  }

  StmtPtr switch_stmt() {
    const SourceLoc loc = cur().loc;
    advance();  // switch
    expect(Tok::LParen);
    auto s = make_stmt(StmtKind::Switch, loc);
    s->cond = expression();
    expect(Tok::RParen);
    expect(Tok::LBrace);
    scopes_.push();
    while (!at(Tok::RBrace) && !at(Tok::Eof)) {
      SwitchCase arm;
      arm.loc = cur().loc;
      if (accept(Tok::KwCase)) {
        arm.label_expr = expression();
      } else if (accept(Tok::KwDefault)) {
        arm.label_expr = nullptr;
      } else {
        diags_.error(cur().loc, "expected 'case' or 'default' in switch");
        skip_past(Tok::RBrace);
        break;
      }
      expect(Tok::Colon);
      while (!at(Tok::KwCase) && !at(Tok::KwDefault) && !at(Tok::RBrace) &&
             !at(Tok::Eof)) {
        StmtPtr inner = statement();
        if (inner) arm.body.push_back(std::move(inner));
      }
      s->cases.push_back(std::move(arm));
    }
    scopes_.pop();
    expect(Tok::RBrace);
    return s;
  }

  /// Assignment, compound assignment, ++/--, or a call expression.
  StmtPtr simple_stmt(bool need_semicolon) {
    const SourceLoc loc = cur().loc;
    if (at(Tok::Identifier)) {
      const Tok after = tokens_[pos_ + 1].kind;
      if (is_assign_op(after) || after == Tok::PlusPlus ||
          after == Tok::MinusMinus) {
        const Token name = advance();
        Symbol* sym = resolve(name);
        auto s = make_stmt(StmtKind::Assign, loc);
        s->sym = sym;
        const Tok op = advance().kind;
        if (op == Tok::PlusPlus || op == Tok::MinusMinus) {
          s->assign_op = (op == Tok::PlusPlus) ? BinOp::Add : BinOp::Sub;
          s->children.push_back(make_int_lit(1, loc));
        } else {
          s->assign_op = compound_op(op);
          s->children.push_back(expression());
        }
        if (need_semicolon) expect(Tok::Semicolon);
        return s;
      }
      // ++x / --x prefix
    }
    if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
      const Tok op = advance().kind;
      if (!at(Tok::Identifier)) {
        diags_.error(cur().loc, "expected identifier after prefix operator");
        skip_past(Tok::Semicolon);
        return nullptr;
      }
      const Token name = advance();
      auto s = make_stmt(StmtKind::Assign, loc);
      s->sym = resolve(name);
      s->assign_op = (op == Tok::PlusPlus) ? BinOp::Add : BinOp::Sub;
      s->children.push_back(make_int_lit(1, loc));
      if (need_semicolon) expect(Tok::Semicolon);
      return s;
    }
    // otherwise: expression statement (must be a call to be useful)
    auto s = make_stmt(StmtKind::Expr, loc);
    s->children.push_back(expression());
    if (need_semicolon) expect(Tok::Semicolon);
    return s;
  }

  static bool is_assign_op(Tok t) {
    switch (t) {
      case Tok::Assign: case Tok::PlusAssign: case Tok::MinusAssign:
      case Tok::StarAssign: case Tok::SlashAssign: case Tok::PercentAssign:
      case Tok::AmpAssign: case Tok::PipeAssign: case Tok::CaretAssign:
      case Tok::ShlAssign: case Tok::ShrAssign:
        return true;
      default:
        return false;
    }
  }

  static std::optional<BinOp> compound_op(Tok t) {
    switch (t) {
      case Tok::Assign: return std::nullopt;
      case Tok::PlusAssign: return BinOp::Add;
      case Tok::MinusAssign: return BinOp::Sub;
      case Tok::StarAssign: return BinOp::Mul;
      case Tok::SlashAssign: return BinOp::Div;
      case Tok::PercentAssign: return BinOp::Rem;
      case Tok::AmpAssign: return BinOp::BitAnd;
      case Tok::PipeAssign: return BinOp::BitOr;
      case Tok::CaretAssign: return BinOp::BitXor;
      case Tok::ShlAssign: return BinOp::Shl;
      case Tok::ShrAssign: return BinOp::Shr;
      default: return std::nullopt;
    }
  }

  Symbol* resolve(const Token& name) {
    Symbol* sym = scopes_.lookup(name.text);
    if (!sym) {
      diags_.error(name.loc,
                   "use of undeclared identifier '" + std::string(name.text) +
                       "'");
      // poison symbol so parsing can continue
      sym = program_->new_symbol(std::string(name.text), SymbolKind::Local,
                                 Type::Int16, name.loc);
      scopes_.declare(sym);
    }
    return sym;
  }

  // ----------------------------------------------------------- expressions
  ExprPtr expression() { return conditional(); }

  ExprPtr conditional() {
    ExprPtr c = binary(0);
    if (at(Tok::Question)) {
      const SourceLoc loc = advance().loc;
      ExprPtr t = expression();
      expect(Tok::Colon);
      ExprPtr f = conditional();
      return make_cond(std::move(c), std::move(t), std::move(f), loc);
    }
    return c;
  }

  /// Precedence-climbing over binary operators.
  ExprPtr binary(int min_prec) {
    ExprPtr lhs = unary();
    for (;;) {
      const auto [op, prec] = bin_info(cur().kind);
      if (prec < 0 || prec < min_prec) return lhs;
      const SourceLoc loc = advance().loc;
      ExprPtr rhs = binary(prec + 1);
      lhs = make_binary(op, std::move(lhs), std::move(rhs), loc);
    }
  }

  /// (operator, precedence) or precedence -1 if not a binary operator.
  static std::pair<BinOp, int> bin_info(Tok t) {
    switch (t) {
      case Tok::PipePipe: return {BinOp::LogicalOr, 1};
      case Tok::AmpAmp: return {BinOp::LogicalAnd, 2};
      case Tok::Pipe: return {BinOp::BitOr, 3};
      case Tok::Caret: return {BinOp::BitXor, 4};
      case Tok::Amp: return {BinOp::BitAnd, 5};
      case Tok::EqEq: return {BinOp::Eq, 6};
      case Tok::Ne: return {BinOp::Ne, 6};
      case Tok::Lt: return {BinOp::Lt, 7};
      case Tok::Le: return {BinOp::Le, 7};
      case Tok::Gt: return {BinOp::Gt, 7};
      case Tok::Ge: return {BinOp::Ge, 7};
      case Tok::Shl: return {BinOp::Shl, 8};
      case Tok::Shr: return {BinOp::Shr, 8};
      case Tok::Plus: return {BinOp::Add, 9};
      case Tok::Minus: return {BinOp::Sub, 9};
      case Tok::Star: return {BinOp::Mul, 10};
      case Tok::Slash: return {BinOp::Div, 10};
      case Tok::Percent: return {BinOp::Rem, 10};
      default: return {BinOp::Add, -1};
    }
  }

  ExprPtr unary() {
    const SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case Tok::Minus:
        advance();
        return make_unary(UnOp::Neg, unary(), loc);
      case Tok::Plus:
        advance();
        return make_unary(UnOp::Plus, unary(), loc);
      case Tok::Bang:
        advance();
        return make_unary(UnOp::LogicalNot, unary(), loc);
      case Tok::Tilde:
        advance();
        return make_unary(UnOp::BitNot, unary(), loc);
      default:
        return primary();
    }
  }

  ExprPtr primary() {
    const SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case Tok::IntLiteral: {
        const std::int64_t v = cur().int_value;
        advance();
        return make_int_lit(v, loc);
      }
      case Tok::KwTrue:
        advance();
        return make_int_lit(1, loc);
      case Tok::KwFalse:
        advance();
        return make_int_lit(0, loc);
      case Tok::LParen: {
        advance();
        ExprPtr e = expression();
        expect(Tok::RParen);
        return e;
      }
      case Tok::Identifier: {
        const Token name = advance();
        if (at(Tok::LParen)) return call(name);
        return make_var_ref(resolve(name), name.loc);
      }
      default:
        diags_.error(loc, "expected expression before " + tok_name(cur().kind));
        advance();
        return make_int_lit(0, loc);
    }
  }

  ExprPtr call(const Token& name) {
    expect(Tok::LParen);
    std::vector<ExprPtr> args;
    if (!at(Tok::RParen)) {
      do {
        args.push_back(expression());
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen);
    Symbol* callee = scopes_.lookup(name.text);
    if (!callee || callee->kind != SymbolKind::Extern) {
      diags_.error(name.loc, "call to undeclared function '" +
                                 std::string(name.text) +
                                 "' (only extern leaf calls are supported)");
      callee = program_->new_symbol(std::string(name.text), SymbolKind::Extern,
                                    Type::Void, name.loc);
      scopes_.declare(callee);
    }
    return make_call(callee, std::move(args), name.loc);
  }

  DiagnosticEngine& diags_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unique_ptr<Program> program_;
  ScopeStack scopes_;
};

}  // namespace

std::unique_ptr<Program> parse(std::string_view source,
                               DiagnosticEngine& diags) {
  return Parser(source, diags).run();
}

}  // namespace tmg::minic
