// The single source of truth for mini-C operator semantics. The constant
// folder, the AST interpreter, the target VM and (by construction tests)
// the BMC bit-blaster all evaluate through these functions, so all engines
// agree bit-for-bit.
#pragma once

#include <cstdint>

#include "minic/ast.h"

namespace tmg::minic {

/// Applies `op` to operands already wrapped to their own types, producing a
/// value wrapped to `result_type`. Semantics:
///  * arithmetic wraps modulo 2^bits (two's complement);
///  * x / 0 == 0, x % 0 == x (total division, SMT-LIB-adjacent);
///  * shifts: amounts are taken as unsigned; amount >= bits yields 0 for
///    Shl/logical Shr and the sign fill for arithmetic Shr; negative
///    amounts behave as >= bits;
///  * comparisons/logical ops yield 0 or 1 (result_type Bool).
std::int64_t eval_binop(BinOp op, std::int64_t lhs, std::int64_t rhs,
                        Type operand_type, Type result_type);

/// Applies a unary operator; `operand_type` is the promoted operand type,
/// result is wrapped to `result_type`.
std::int64_t eval_unop(UnOp op, std::int64_t v, Type operand_type,
                       Type result_type);

}  // namespace tmg::minic
