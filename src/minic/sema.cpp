#include "minic/sema.h"

#include <set>

#include "minic/eval.h"

namespace tmg::minic {

namespace {

class Sema {
 public:
  Sema(Program& program, DiagnosticEngine& diags, const SemaOptions& opts)
      : program_(program), diags_(diags), opts_(opts) {}

  bool run() {
    for (auto& fn : program_.functions) {
      current_fn_ = fn.get();
      loop_depth_ = 0;
      switch_depth_ = 0;
      check_stmt(*fn->body);
    }
    return diags_.ok();
  }

 private:
  // ------------------------------------------------------------ statements
  void check_stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::Expr:
        check_expr(*s.children[0], /*in_condition=*/false);
        if (s.children[0]->kind != ExprKind::Call)
          diags_.warning(s.loc, "expression statement has no effect");
        break;
      case StmtKind::Assign: {
        if (s.sym->is_function()) {
          diags_.error(s.loc, "cannot assign to function '" + s.sym->name + "'");
          break;
        }
        Type value_t = check_expr(*s.children[0], false);
        if (value_t == Type::Void)
          diags_.error(s.children[0]->loc,
                       "cannot assign a void value to '" + s.sym->name + "'");
        break;
      }
      case StmtKind::Decl:
        if (!s.children.empty()) {
          Type t = check_expr(*s.children[0], false);
          if (t == Type::Void)
            diags_.error(s.children[0]->loc,
                         "cannot initialise '" + s.sym->name +
                             "' with a void value");
        }
        break;
      case StmtKind::Block:
        for (auto& inner : s.body)
          if (inner) check_stmt(*inner);
        break;
      case StmtKind::If:
        check_condition(*s.cond);
        check_stmt(*s.body[0]);
        if (s.body[1]) check_stmt(*s.body[1]);
        break;
      case StmtKind::While:
      case StmtKind::DoWhile:
        check_condition(*s.cond);
        if (opts_.warn_unbounded_loops && !s.loop_bound)
          diags_.warning(s.loc,
                         "loop has no __loopbound annotation; WCET analysis "
                         "will reject this function");
        ++loop_depth_;
        check_stmt(*s.body[0]);
        if (s.body[1]) check_stmt(*s.body[1]);
        --loop_depth_;
        break;
      case StmtKind::Switch:
        check_switch(s);
        break;
      case StmtKind::Break:
        if (loop_depth_ == 0 && switch_depth_ == 0)
          diags_.error(s.loc, "'break' outside of loop or switch");
        break;
      case StmtKind::Continue:
        if (loop_depth_ == 0)
          diags_.error(s.loc, "'continue' outside of loop");
        break;
      case StmtKind::Return:
        if (s.children.empty()) {
          if (current_fn_->return_type != Type::Void)
            diags_.error(s.loc, "non-void function '" + current_fn_->name +
                                    "' must return a value");
        } else {
          Type t = check_expr(*s.children[0], false);
          if (current_fn_->return_type == Type::Void)
            diags_.error(s.loc, "void function '" + current_fn_->name +
                                    "' cannot return a value");
          else if (t == Type::Void)
            diags_.error(s.children[0]->loc, "returning a void value");
        }
        break;
      case StmtKind::Empty:
        break;
    }
  }

  void check_switch(Stmt& s) {
    Type sel = check_expr(*s.cond, /*in_condition=*/true);
    if (sel == Type::Void)
      diags_.error(s.cond->loc, "switch selector must be an integer");
    ++switch_depth_;
    std::set<std::int64_t> seen;
    bool default_seen = false;
    for (SwitchCase& arm : s.cases) {
      if (arm.label_expr) {
        check_expr(*arm.label_expr, true);
        std::int64_t v = 0;
        if (!fold_constant(*arm.label_expr, v)) {
          diags_.error(arm.loc, "case label is not a constant expression");
        } else {
          v = wrap_to_type(v, sel == Type::Void ? Type::Int16 : sel);
          if (!seen.insert(v).second)
            diags_.error(arm.loc,
                         "duplicate case label " + std::to_string(v));
          arm.label = v;
        }
      } else {
        if (default_seen)
          diags_.error(arm.loc, "multiple 'default' labels in switch");
        default_seen = true;
      }
      for (auto& inner : arm.body)
        if (inner) check_stmt(*inner);
    }
    --switch_depth_;
  }

  /// Conditions must be integer-typed and side-effect free (no calls): the
  /// CFG gives every condition its own decision node and the VM evaluates
  /// it eagerly, so purity keeps all execution engines equivalent.
  void check_condition(Expr& e) {
    Type t = check_expr(e, /*in_condition=*/true);
    if (t == Type::Void)
      diags_.error(e.loc, "condition must have integer type");
  }

  // ----------------------------------------------------------- expressions
  Type check_expr(Expr& e, bool in_condition) {
    switch (e.kind) {
      case ExprKind::IntLit: {
        // Choose the narrowest signed type holding the literal, at least
        // Int16 (the platform int).
        const std::int64_t v = e.int_value;
        if (v >= type_min(Type::Int16) && v <= type_max(Type::Int16))
          e.type = Type::Int16;
        else if (v >= type_min(Type::Int32) && v <= type_max(Type::Int32))
          e.type = Type::Int32;
        else {
          diags_.error(e.loc, "integer literal out of 32-bit range");
          e.type = Type::Int32;
        }
        return e.type;
      }
      case ExprKind::VarRef:
        if (e.sym->is_function()) {
          diags_.error(e.loc,
                       "function '" + e.sym->name + "' used as a value");
          e.type = Type::Int16;
        } else {
          e.type = e.sym->type;
        }
        return e.type;
      case ExprKind::Unary: {
        Type t = check_expr(e.child(0), in_condition);
        if (t == Type::Void) {
          diags_.error(e.loc, "unary operator on void value");
          t = Type::Int16;
        }
        switch (e.un_op) {
          case UnOp::LogicalNot:
            e.type = Type::Bool;
            break;
          case UnOp::Neg:
          case UnOp::BitNot:
          case UnOp::Plus:
            e.type = arith_result(t, t);
            break;
        }
        return e.type;
      }
      case ExprKind::Binary: {
        Type lt = check_expr(e.child(0), in_condition);
        Type rt = check_expr(e.child(1), in_condition);
        if (lt == Type::Void || rt == Type::Void) {
          diags_.error(e.loc, "binary operator on void value");
          e.type = Type::Int16;
          return e.type;
        }
        if (binop_is_boolean(e.bin_op)) {
          e.type = Type::Bool;
        } else if (e.bin_op == BinOp::Shl || e.bin_op == BinOp::Shr) {
          // Shift result has the promoted type of the left operand.
          e.type = arith_result(lt, lt);
        } else {
          e.type = arith_result(lt, rt);
        }
        return e.type;
      }
      case ExprKind::Cond: {
        Type ct = check_expr(e.child(0), in_condition);
        if (ct == Type::Void)
          diags_.error(e.child(0).loc, "?: condition must be an integer");
        Type tt = check_expr(e.child(1), in_condition);
        Type ft = check_expr(e.child(2), in_condition);
        if (tt == Type::Void || ft == Type::Void) {
          diags_.error(e.loc, "?: arms must produce values");
          e.type = Type::Int16;
        } else {
          e.type = arith_result(tt, ft);
        }
        return e.type;
      }
      case ExprKind::Call: {
        if (in_condition)
          diags_.error(e.loc,
                       "calls are not allowed inside conditions (conditions "
                       "must be side-effect free)");
        Symbol* callee = e.sym;
        if (!callee->param_types.empty() &&
            callee->param_types.size() != e.children.size()) {
          diags_.error(e.loc, "call to '" + callee->name + "' expects " +
                                  std::to_string(callee->param_types.size()) +
                                  " argument(s), got " +
                                  std::to_string(e.children.size()));
        }
        for (auto& arg : e.children) {
          Type at = check_expr(*arg, in_condition);
          if (at == Type::Void)
            diags_.error(arg->loc, "void value passed as argument");
        }
        e.type = callee->type;
        return e.type;
      }
    }
    return Type::Void;
  }

  Program& program_;
  DiagnosticEngine& diags_;
  SemaOptions opts_;
  FunctionDef* current_fn_ = nullptr;
  int loop_depth_ = 0;
  int switch_depth_ = 0;
};

}  // namespace

bool analyze(Program& program, DiagnosticEngine& diags,
             const SemaOptions& opts) {
  return Sema(program, diags, opts).run();
}

bool fold_constant(const Expr& e, std::int64_t& out) {
  switch (e.kind) {
    case ExprKind::IntLit:
      out = e.int_value;
      return true;
    case ExprKind::Unary: {
      std::int64_t v = 0;
      if (!fold_constant(e.child(0), v)) return false;
      const Type ot = e.child(0).type == Type::Void ? Type::Int16
                                                    : e.child(0).type;
      const Type rt = e.type == Type::Void ? ot : e.type;
      out = eval_unop(e.un_op, v, ot, rt);
      return true;
    }
    case ExprKind::Binary: {
      std::int64_t l = 0, r = 0;
      if (!fold_constant(e.child(0), l) || !fold_constant(e.child(1), r))
        return false;
      Type lt = e.child(0).type == Type::Void ? Type::Int16 : e.child(0).type;
      Type rt = e.child(1).type == Type::Void ? Type::Int16 : e.child(1).type;
      const Type ot = arith_result(lt, rt);
      const Type res = e.type == Type::Void
                           ? (binop_is_boolean(e.bin_op) ? Type::Bool : ot)
                           : e.type;
      out = eval_binop(e.bin_op, wrap_to_type(l, ot), wrap_to_type(r, ot), ot,
                       res);
      return true;
    }
    case ExprKind::Cond: {
      std::int64_t c = 0;
      if (!fold_constant(e.child(0), c)) return false;
      return fold_constant(e.child(c != 0 ? 1 : 2), out);
    }
    default:
      return false;
  }
}

}  // namespace tmg::minic
