// Hand-written lexer for mini-C. Produces the full token stream for one
// source buffer; the buffer must outlive the tokens (token text is a view).
#pragma once

#include <string_view>
#include <vector>

#include "minic/token.h"
#include "support/diagnostics.h"

namespace tmg::minic {

/// Tokenises `source`. Lexical errors (stray characters, bad literals,
/// unterminated comments) are reported to `diags`; an Error token is
/// emitted so the parser can resynchronise. The result always ends with Eof.
std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags);

}  // namespace tmg::minic
