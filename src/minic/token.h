// Token definitions for the mini-C lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/diagnostics.h"

namespace tmg::minic {

enum class Tok : std::uint8_t {
  // literals / identifiers
  Identifier,
  IntLiteral,
  // keywords
  KwVoid, KwBool, KwChar, KwShort, KwInt, KwLong, KwUnsigned, KwSigned,
  KwIf, KwElse, KwWhile, KwFor, KwDo, KwSwitch, KwCase, KwDefault,
  KwBreak, KwContinue, KwReturn, KwExtern, KwTrue, KwFalse,
  KwInput,      // __input   : variable is an unconstrained analysis input
  KwLoopbound,  // __loopbound(N) : maximal iteration count annotation
  KwCost,       // __cost(N) : cycle cost attribute on extern declarations
  // punctuation
  LParen, RParen, LBrace, RBrace, Comma, Semicolon, Colon, Question,
  // operators
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  AmpAmp, PipePipe,
  Shl, Shr,
  Lt, Le, Gt, Ge, EqEq, Ne,
  Assign,
  PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
  PlusPlus, MinusMinus,
  // sentinels
  Eof,
  Error,
};

/// Spelling of a token kind for diagnostics ("'+='", "identifier", ...).
std::string tok_name(Tok t);

struct Token {
  Tok kind = Tok::Eof;
  SourceLoc loc;
  std::string_view text;     // points into the source buffer
  std::int64_t int_value = 0;  // valid for IntLiteral
};

}  // namespace tmg::minic
