#include "minic/ast.h"

#include <algorithm>

namespace tmg::minic {

std::string binop_spelling(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Rem: return "%";
    case BinOp::BitAnd: return "&";
    case BinOp::BitOr: return "|";
    case BinOp::BitXor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::LogicalAnd: return "&&";
    case BinOp::LogicalOr: return "||";
  }
  return "?";
}

std::string unop_spelling(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::LogicalNot: return "!";
    case UnOp::BitNot: return "~";
    case UnOp::Plus: return "+";
  }
  return "?";
}

ExprPtr Expr::clone() const {
  auto copy = std::make_unique<Expr>(kind, loc);
  copy->type = type;
  copy->int_value = int_value;
  copy->sym = sym;
  copy->un_op = un_op;
  copy->bin_op = bin_op;
  copy->children.reserve(children.size());
  for (const ExprPtr& c : children) copy->children.push_back(c->clone());
  return copy;
}

ExprPtr make_int_lit(std::int64_t v, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::IntLit, loc);
  e->int_value = v;
  return e;
}

ExprPtr make_var_ref(Symbol* sym, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::VarRef, loc);
  e->sym = sym;
  if (sym) e->type = sym->type;
  return e;
}

ExprPtr make_unary(UnOp op, ExprPtr operand, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Unary, loc);
  e->un_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr l, ExprPtr r, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Binary, loc);
  e->bin_op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr make_cond(ExprPtr c, ExprPtr t, ExprPtr f, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Cond, loc);
  e->children.push_back(std::move(c));
  e->children.push_back(std::move(t));
  e->children.push_back(std::move(f));
  return e;
}

ExprPtr make_call(Symbol* callee, std::vector<ExprPtr> args, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Call, loc);
  e->sym = callee;
  e->children = std::move(args);
  return e;
}

StmtPtr make_stmt(StmtKind k, SourceLoc loc) {
  return std::make_unique<Stmt>(k, loc);
}

Symbol* Program::new_symbol(std::string name, SymbolKind kind, Type type,
                            SourceLoc loc) {
  auto sym = std::make_unique<Symbol>();
  sym->id = static_cast<std::uint32_t>(symbols.size());
  sym->name = std::move(name);
  sym->kind = kind;
  sym->type = type;
  sym->loc = loc;
  Symbol* raw = sym.get();
  symbols.push_back(std::move(sym));
  if (kind == SymbolKind::Global) globals.push_back(raw);
  if (kind == SymbolKind::Extern) externs.push_back(raw);
  return raw;
}

const FunctionDef* Program::find_function(std::string_view name) const {
  for (const auto& f : functions)
    if (f->name == name) return f.get();
  return nullptr;
}

Symbol* Program::find_global(std::string_view name) const {
  for (Symbol* g : globals)
    if (g->name == name) return g;
  return nullptr;
}

std::vector<Symbol*> Program::inputs_of(const FunctionDef& fn) const {
  std::vector<Symbol*> result = fn.params;
  for (Symbol* g : globals)
    if (g->is_input) result.push_back(g);
  return result;
}

}  // namespace tmg::minic
