// Recursive-descent parser for mini-C. Performs name resolution while
// parsing (scope stack); type checking and constant folding happen in sema.
#pragma once

#include <memory>
#include <string_view>

#include "minic/ast.h"
#include "support/diagnostics.h"

namespace tmg::minic {

/// Parses one translation unit. Errors go to `diags`; the parser recovers
/// at statement boundaries so multiple errors are reported. The returned
/// Program is structurally complete iff diags.ok().
std::unique_ptr<Program> parse(std::string_view source,
                               DiagnosticEngine& diags);

}  // namespace tmg::minic
