// Pretty printer: renders an AST back to compilable mini-C source. Used by
// the code generators (wiper controller, synthetic programs) and for
// round-trip testing of the parser.
#pragma once

#include <string>

#include "minic/ast.h"

namespace tmg::minic {

/// Renders one expression (no trailing newline).
std::string print_expr(const Expr& e);

/// Renders one statement with the given indentation depth.
std::string print_stmt(const Stmt& s, int indent = 0);

/// Renders the whole translation unit: externs, globals, functions.
std::string print_program(const Program& p);

}  // namespace tmg::minic
