// Convenience entry point: source text -> checked Program in one call.
#pragma once

#include <memory>
#include <string_view>

#include "minic/ast.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace tmg::minic {

/// Parse + analyze. Returns nullptr (with diagnostics populated) on any
/// error. On success the returned program is fully type-annotated.
std::unique_ptr<Program> compile(std::string_view source,
                                 DiagnosticEngine& diags,
                                 const SemaOptions& opts = {});

/// Like compile() but aborts with the diagnostics printed on failure.
/// Intended for tests, examples and benches working on known-good sources.
std::unique_ptr<Program> compile_or_die(std::string_view source,
                                        const SemaOptions& opts = {});

}  // namespace tmg::minic
