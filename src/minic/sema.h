// Semantic analysis for mini-C: type checking and propagation, constant
// folding of switch-case labels, and structural validation (break/continue
// placement, condition purity, loop-bound presence warnings).
#pragma once

#include "minic/ast.h"
#include "support/diagnostics.h"

namespace tmg::minic {

/// Options controlling semantic analysis strictness.
struct SemaOptions {
  /// Warn when a loop has no __loopbound annotation (WCET analysis will
  /// reject such loops later; CFG construction still works).
  bool warn_unbounded_loops = true;
};

/// Runs semantic analysis over the whole program, annotating expression
/// types in place. Returns true when no errors were produced.
bool analyze(Program& program, DiagnosticEngine& diags,
             const SemaOptions& opts = {});

/// Folds an expression to a constant if possible (literals, arithmetic on
/// literals). Returns true and sets `out` on success. Requires types to be
/// already annotated (call after analyze(), or on literal-only trees).
bool fold_constant(const Expr& e, std::int64_t& out);

}  // namespace tmg::minic
