#include "minic/frontend.h"

#include <cstdio>
#include <cstdlib>

namespace tmg::minic {

std::unique_ptr<Program> compile(std::string_view source,
                                 DiagnosticEngine& diags,
                                 const SemaOptions& opts) {
  std::unique_ptr<Program> program = parse(source, diags);
  if (!diags.ok()) return nullptr;
  if (!analyze(*program, diags, opts)) return nullptr;
  return program;
}

std::unique_ptr<Program> compile_or_die(std::string_view source,
                                        const SemaOptions& opts) {
  DiagnosticEngine diags;
  std::unique_ptr<Program> program = compile(source, diags, opts);
  if (!program) {
    std::fprintf(stderr, "mini-C compilation failed:\n%s\n",
                 diags.str().c_str());
    std::abort();
  }
  return program;
}

}  // namespace tmg::minic
