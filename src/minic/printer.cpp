#include "minic/printer.h"

#include <sstream>

namespace tmg::minic {

namespace {

/// Precedence used to decide parenthesisation; mirrors the parser table.
int prec_of(const Expr& e) {
  if (e.kind == ExprKind::Cond) return 0;
  if (e.kind != ExprKind::Binary) return 100;
  switch (e.bin_op) {
    case BinOp::LogicalOr: return 1;
    case BinOp::LogicalAnd: return 2;
    case BinOp::BitOr: return 3;
    case BinOp::BitXor: return 4;
    case BinOp::BitAnd: return 5;
    case BinOp::Eq: case BinOp::Ne: return 6;
    case BinOp::Lt: case BinOp::Le: case BinOp::Gt: case BinOp::Ge: return 7;
    case BinOp::Shl: case BinOp::Shr: return 8;
    case BinOp::Add: case BinOp::Sub: return 9;
    case BinOp::Mul: case BinOp::Div: case BinOp::Rem: return 10;
  }
  return 100;
}

void expr_to(std::ostringstream& os, const Expr& e, int parent_prec) {
  const int prec = prec_of(e);
  const bool paren = prec < parent_prec;
  if (paren) os << '(';
  switch (e.kind) {
    case ExprKind::IntLit:
      os << e.int_value;
      break;
    case ExprKind::VarRef:
      os << e.sym->name;
      break;
    case ExprKind::Unary:
      os << unop_spelling(e.un_op);
      expr_to(os, e.child(0), 99);
      break;
    case ExprKind::Binary:
      expr_to(os, e.child(0), prec);
      os << ' ' << binop_spelling(e.bin_op) << ' ';
      expr_to(os, e.child(1), prec + 1);
      break;
    case ExprKind::Cond:
      expr_to(os, e.child(0), 1);
      os << " ? ";
      expr_to(os, e.child(1), 0);
      os << " : ";
      expr_to(os, e.child(2), 0);
      break;
    case ExprKind::Call: {
      os << e.sym->name << '(';
      for (std::size_t i = 0; i < e.children.size(); ++i) {
        if (i) os << ", ";
        expr_to(os, e.child(i), 0);
      }
      os << ')';
      break;
    }
  }
  if (paren) os << ')';
}

std::string pad(int indent) { return std::string(2 * indent, ' '); }

void stmt_to(std::ostringstream& os, const Stmt& s, int indent) {
  const std::string in = pad(indent);
  switch (s.kind) {
    case StmtKind::Expr:
      os << in << print_expr(*s.children[0]) << ";\n";
      break;
    case StmtKind::Assign:
      os << in << s.sym->name << ' ';
      if (s.assign_op) os << binop_spelling(*s.assign_op);
      os << "= " << print_expr(*s.children[0]) << ";\n";
      break;
    case StmtKind::Decl:
      os << in << type_name(s.sym->type) << ' ' << s.sym->name;
      if (!s.children.empty()) os << " = " << print_expr(*s.children[0]);
      os << ";\n";
      break;
    case StmtKind::Block:
      os << in << "{\n";
      for (const auto& inner : s.body)
        if (inner) stmt_to(os, *inner, indent + 1);
      os << in << "}\n";
      break;
    case StmtKind::If:
      os << in << "if (" << print_expr(*s.cond) << ")\n";
      stmt_to(os, *s.body[0], indent + (s.body[0]->kind != StmtKind::Block));
      if (s.body[1]) {
        os << in << "else\n";
        stmt_to(os, *s.body[1], indent + (s.body[1]->kind != StmtKind::Block));
      }
      break;
    case StmtKind::While:
      os << in;
      if (s.loop_bound) os << "__loopbound(" << *s.loop_bound << ") ";
      os << "while (" << print_expr(*s.cond) << ")\n";
      stmt_to(os, *s.body[0], indent + (s.body[0]->kind != StmtKind::Block));
      if (s.body[1]) {
        // Desugared for-loop step; comment so a round-trip stays compilable.
        os << in << "/* step: */ ";
        std::ostringstream tmp;
        stmt_to(tmp, *s.body[1], 0);
        os << tmp.str();
      }
      break;
    case StmtKind::DoWhile:
      os << in;
      if (s.loop_bound) os << "__loopbound(" << *s.loop_bound << ") ";
      os << "do\n";
      stmt_to(os, *s.body[0], indent + (s.body[0]->kind != StmtKind::Block));
      os << in << "while (" << print_expr(*s.cond) << ");\n";
      break;
    case StmtKind::Switch:
      os << in << "switch (" << print_expr(*s.cond) << ") {\n";
      for (const SwitchCase& arm : s.cases) {
        if (arm.label_expr)
          os << pad(indent + 1) << "case " << print_expr(*arm.label_expr)
             << ":\n";
        else if (arm.label)
          os << pad(indent + 1) << "case " << *arm.label << ":\n";
        else
          os << pad(indent + 1) << "default:\n";
        for (const auto& inner : arm.body)
          if (inner) stmt_to(os, *inner, indent + 2);
      }
      os << in << "}\n";
      break;
    case StmtKind::Break:
      os << in << "break;\n";
      break;
    case StmtKind::Continue:
      os << in << "continue;\n";
      break;
    case StmtKind::Return:
      os << in << "return";
      if (!s.children.empty()) os << ' ' << print_expr(*s.children[0]);
      os << ";\n";
      break;
    case StmtKind::Empty:
      os << in << ";\n";
      break;
  }
}

}  // namespace

std::string print_expr(const Expr& e) {
  std::ostringstream os;
  expr_to(os, e, 0);
  return os.str();
}

std::string print_stmt(const Stmt& s, int indent) {
  std::ostringstream os;
  stmt_to(os, s, indent);
  return os.str();
}

std::string print_program(const Program& p) {
  std::ostringstream os;
  for (const Symbol* ext : p.externs) {
    os << "extern " << type_name(ext->type) << ' ' << ext->name << '(';
    if (ext->param_types.empty()) {
      os << "void";
    } else {
      for (std::size_t i = 0; i < ext->param_types.size(); ++i) {
        if (i) os << ", ";
        os << type_name(ext->param_types[i]);
      }
    }
    os << ')';
    if (ext->call_cost > 0) os << " __cost(" << ext->call_cost << ')';
    os << ";\n";
  }
  if (!p.externs.empty()) os << '\n';
  for (const Symbol* g : p.globals) {
    if (g->is_input) {
      os << "__input";
      if (g->input_range)
        os << '(' << g->input_range->first << ", " << g->input_range->second
           << ')';
      os << ' ';
    }
    os << type_name(g->type) << ' ' << g->name;
    if (g->init_value != 0) os << " = " << g->init_value;
    os << ";\n";
  }
  if (!p.globals.empty()) os << '\n';
  for (const auto& fn : p.functions) {
    os << type_name(fn->return_type) << ' ' << fn->name << '(';
    if (fn->params.empty()) {
      os << "void";
    } else {
      for (std::size_t i = 0; i < fn->params.size(); ++i) {
        if (i) os << ", ";
        os << type_name(fn->params[i]->type) << ' ' << fn->params[i]->name;
      }
    }
    os << ")\n";
    os << print_stmt(*fn->body, 0);
    os << '\n';
  }
  return os.str();
}

}  // namespace tmg::minic
