// Scalar type system of mini-C, the C subset consumed by the analysis.
//
// The target model is a 16-bit microcontroller (HCS12-style), so plain `int`
// is 16 bits — this matches the paper's observation that "in C, boolean
// values are mostly encoded as 16 bit integers".
#pragma once

#include <cstdint>
#include <string>

namespace tmg::minic {

/// Scalar types. Every value in mini-C is a fixed-width two's-complement
/// integer; `Bool` is a one-bit unsigned integer holding 0 or 1.
enum class Type : std::uint8_t {
  Void,
  Bool,    // 1 bit
  Int8,    // char
  UInt8,   // unsigned char
  Int16,   // short / int
  UInt16,  // unsigned short / unsigned int
  Int32,   // long
  UInt32,  // unsigned long
};

/// Bit width of a type's value representation (0 for Void).
constexpr int type_bits(Type t) {
  switch (t) {
    case Type::Void: return 0;
    case Type::Bool: return 1;
    case Type::Int8:
    case Type::UInt8: return 8;
    case Type::Int16:
    case Type::UInt16: return 16;
    case Type::Int32:
    case Type::UInt32: return 32;
  }
  return 0;
}

constexpr bool type_is_signed(Type t) {
  return t == Type::Int8 || t == Type::Int16 || t == Type::Int32;
}

constexpr bool type_is_integer(Type t) {
  return t != Type::Void;
}

/// Smallest representable value of the type.
constexpr std::int64_t type_min(Type t) {
  if (!type_is_signed(t)) return 0;
  return -(std::int64_t{1} << (type_bits(t) - 1));
}

/// Largest representable value of the type.
constexpr std::int64_t type_max(Type t) {
  const int bits = type_bits(t);
  if (bits == 0) return 0;
  if (type_is_signed(t)) return (std::int64_t{1} << (bits - 1)) - 1;
  if (bits >= 63) return (std::int64_t{1} << 62);  // unreachable in practice
  return (std::int64_t{1} << bits) - 1;
}

/// C-like spelling, e.g. "unsigned int" for UInt16.
inline std::string type_name(Type t) {
  switch (t) {
    case Type::Void: return "void";
    case Type::Bool: return "bool";
    case Type::Int8: return "char";
    case Type::UInt8: return "unsigned char";
    case Type::Int16: return "int";
    case Type::UInt16: return "unsigned int";
    case Type::Int32: return "long";
    case Type::UInt32: return "unsigned long";
  }
  return "?";
}

/// Usual-arithmetic-conversion result of combining two operand types:
/// promote to the wider operand; on equal width prefer unsigned (C rules,
/// collapsed to this subset). Bool promotes to Int16 (the `int` of the
/// 16-bit target).
constexpr Type arith_result(Type a, Type b) {
  if (a == Type::Bool) a = Type::Int16;
  if (b == Type::Bool) b = Type::Int16;
  const int wa = type_bits(a), wb = type_bits(b);
  if (wa < wb) return b;
  if (wb < wa) return a;
  if (!type_is_signed(a)) return a;
  return b;
}

/// Truncates/wraps a 64-bit value to the representation of `t` and
/// re-extends it (sign- or zero-) back to int64. This is THE definition of
/// mini-C's wraparound semantics; the interpreter, the target VM and the
/// bit-blaster all agree with it.
constexpr std::int64_t wrap_to_type(std::int64_t v, Type t) {
  const int bits = type_bits(t);
  if (bits == 0 || bits >= 64) return v;
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
  if (type_is_signed(t) && (u >> (bits - 1)) != 0) {
    u |= ~mask;  // sign-extend
  }
  return static_cast<std::int64_t>(u);
}

}  // namespace tmg::minic
