#include "minic/lexer.h"

#include <cctype>
#include <unordered_map>

namespace tmg::minic {

namespace {

const std::unordered_map<std::string_view, Tok>& keyword_map() {
  static const std::unordered_map<std::string_view, Tok> map = {
      {"void", Tok::KwVoid},       {"bool", Tok::KwBool},
      {"char", Tok::KwChar},       {"short", Tok::KwShort},
      {"int", Tok::KwInt},         {"long", Tok::KwLong},
      {"unsigned", Tok::KwUnsigned}, {"signed", Tok::KwSigned},
      {"if", Tok::KwIf},           {"else", Tok::KwElse},
      {"while", Tok::KwWhile},     {"for", Tok::KwFor},
      {"do", Tok::KwDo},           {"switch", Tok::KwSwitch},
      {"case", Tok::KwCase},       {"default", Tok::KwDefault},
      {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
      {"return", Tok::KwReturn},   {"extern", Tok::KwExtern},
      {"true", Tok::KwTrue},       {"false", Tok::KwFalse},
      {"__input", Tok::KwInput},   {"__loopbound", Tok::KwLoopbound},
      {"__cost", Tok::KwCost},
  };
  return map;
}

class Lexer {
 public:
  Lexer(std::string_view src, DiagnosticEngine& diags)
      : src_(src), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_trivia();
      Token t = next();
      out.push_back(t);
      if (t.kind == Tok::Eof) break;
    }
    return out;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t off = 0) const {
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] SourceLoc here() const { return SourceLoc{line_, col_}; }

  void skip_trivia() {
    for (;;) {
      while (!at_end() && std::isspace(static_cast<unsigned char>(peek())))
        advance();
      if (peek() == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        const SourceLoc open = here();
        advance();
        advance();
        bool closed = false;
        while (!at_end()) {
          if (peek() == '*' && peek(1) == '/') {
            advance();
            advance();
            closed = true;
            break;
          }
          advance();
        }
        if (!closed) diags_.error(open, "unterminated block comment");
        continue;
      }
      break;
    }
  }

  Token make(Tok kind, std::size_t start, SourceLoc loc) const {
    return Token{kind, loc, src_.substr(start, pos_ - start), 0};
  }

  Token next() {
    const SourceLoc loc = here();
    const std::size_t start = pos_;
    if (at_end()) return Token{Tok::Eof, loc, {}, 0};

    const char c = advance();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        advance();
      const std::string_view text = src_.substr(start, pos_ - start);
      const auto& kw = keyword_map();
      if (auto it = kw.find(text); it != kw.end())
        return Token{it->second, loc, text, 0};
      return Token{Tok::Identifier, loc, text, 0};
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return number(start, loc);

    switch (c) {
      case '(': return make(Tok::LParen, start, loc);
      case ')': return make(Tok::RParen, start, loc);
      case '{': return make(Tok::LBrace, start, loc);
      case '}': return make(Tok::RBrace, start, loc);
      case ',': return make(Tok::Comma, start, loc);
      case ';': return make(Tok::Semicolon, start, loc);
      case ':': return make(Tok::Colon, start, loc);
      case '?': return make(Tok::Question, start, loc);
      case '~': return make(Tok::Tilde, start, loc);
      case '+':
        if (peek() == '=') { advance(); return make(Tok::PlusAssign, start, loc); }
        if (peek() == '+') { advance(); return make(Tok::PlusPlus, start, loc); }
        return make(Tok::Plus, start, loc);
      case '-':
        if (peek() == '=') { advance(); return make(Tok::MinusAssign, start, loc); }
        if (peek() == '-') { advance(); return make(Tok::MinusMinus, start, loc); }
        return make(Tok::Minus, start, loc);
      case '*':
        if (peek() == '=') { advance(); return make(Tok::StarAssign, start, loc); }
        return make(Tok::Star, start, loc);
      case '/':
        if (peek() == '=') { advance(); return make(Tok::SlashAssign, start, loc); }
        return make(Tok::Slash, start, loc);
      case '%':
        if (peek() == '=') { advance(); return make(Tok::PercentAssign, start, loc); }
        return make(Tok::Percent, start, loc);
      case '&':
        if (peek() == '&') { advance(); return make(Tok::AmpAmp, start, loc); }
        if (peek() == '=') { advance(); return make(Tok::AmpAssign, start, loc); }
        return make(Tok::Amp, start, loc);
      case '|':
        if (peek() == '|') { advance(); return make(Tok::PipePipe, start, loc); }
        if (peek() == '=') { advance(); return make(Tok::PipeAssign, start, loc); }
        return make(Tok::Pipe, start, loc);
      case '^':
        if (peek() == '=') { advance(); return make(Tok::CaretAssign, start, loc); }
        return make(Tok::Caret, start, loc);
      case '!':
        if (peek() == '=') { advance(); return make(Tok::Ne, start, loc); }
        return make(Tok::Bang, start, loc);
      case '=':
        if (peek() == '=') { advance(); return make(Tok::EqEq, start, loc); }
        return make(Tok::Assign, start, loc);
      case '<':
        if (peek() == '<') {
          advance();
          if (peek() == '=') { advance(); return make(Tok::ShlAssign, start, loc); }
          return make(Tok::Shl, start, loc);
        }
        if (peek() == '=') { advance(); return make(Tok::Le, start, loc); }
        return make(Tok::Lt, start, loc);
      case '>':
        if (peek() == '>') {
          advance();
          if (peek() == '=') { advance(); return make(Tok::ShrAssign, start, loc); }
          return make(Tok::Shr, start, loc);
        }
        if (peek() == '=') { advance(); return make(Tok::Ge, start, loc); }
        return make(Tok::Gt, start, loc);
      default:
        diags_.error(loc, std::string("stray character '") + c + "' in input");
        return make(Tok::Error, start, loc);
    }
  }

  Token number(std::size_t start, SourceLoc loc) {
    // Decimal or 0x hexadecimal literals; no suffixes.
    std::int64_t value = 0;
    bool overflow = false;
    if (src_[start] == '0' && (peek() == 'x' || peek() == 'X')) {
      advance();
      bool any = false;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        const char d = advance();
        any = true;
        const int digit = std::isdigit(static_cast<unsigned char>(d))
                              ? d - '0'
                              : (std::tolower(d) - 'a' + 10);
        if (value > (INT64_MAX - digit) / 16) overflow = true;
        else value = value * 16 + digit;
      }
      if (!any) diags_.error(loc, "hexadecimal literal has no digits");
    } else {
      value = src_[start] - '0';
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        const int digit = advance() - '0';
        if (value > (INT64_MAX - digit) / 10) overflow = true;
        else value = value * 10 + digit;
      }
    }
    if (overflow) diags_.error(loc, "integer literal too large");
    // `123abc` must not silently lex as 123 followed by an identifier:
    // consume the alphanumeric tail and diagnose it as one bad literal.
    if (std::isalpha(static_cast<unsigned char>(peek())) || peek() == '_') {
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        advance();
      diags_.error(loc, "invalid suffix on integer literal '" +
                            std::string(src_.substr(start, pos_ - start)) +
                            "'");
    }
    Token t = make(Tok::IntLiteral, start, loc);
    t.int_value = value;
    return t;
  }

  std::string_view src_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace

std::string tok_name(Tok t) {
  switch (t) {
    case Tok::Identifier: return "identifier";
    case Tok::IntLiteral: return "integer literal";
    case Tok::KwVoid: return "'void'";
    case Tok::KwBool: return "'bool'";
    case Tok::KwChar: return "'char'";
    case Tok::KwShort: return "'short'";
    case Tok::KwInt: return "'int'";
    case Tok::KwLong: return "'long'";
    case Tok::KwUnsigned: return "'unsigned'";
    case Tok::KwSigned: return "'signed'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::KwDo: return "'do'";
    case Tok::KwSwitch: return "'switch'";
    case Tok::KwCase: return "'case'";
    case Tok::KwDefault: return "'default'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwExtern: return "'extern'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::KwInput: return "'__input'";
    case Tok::KwLoopbound: return "'__loopbound'";
    case Tok::KwCost: return "'__cost'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::Comma: return "','";
    case Tok::Semicolon: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Question: return "'?'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Tilde: return "'~'";
    case Tok::Bang: return "'!'";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Assign: return "'='";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::PercentAssign: return "'%='";
    case Tok::AmpAssign: return "'&='";
    case Tok::PipeAssign: return "'|='";
    case Tok::CaretAssign: return "'^='";
    case Tok::ShlAssign: return "'<<='";
    case Tok::ShrAssign: return "'>>='";
    case Tok::PlusPlus: return "'++'";
    case Tok::MinusMinus: return "'--'";
    case Tok::Eof: return "end of input";
    case Tok::Error: return "invalid token";
  }
  return "?";
}

std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags) {
  return Lexer(source, diags).run();
}

}  // namespace tmg::minic
