// Abstract syntax tree for mini-C.
//
// Design notes:
//  * Nodes are immutable after semantic analysis except for the fields sema
//    fills in (expression types, resolved symbols, folded case labels).
//  * `&&` and `||` evaluate BOTH operands (eagerly). Conditions in mini-C
//    are side-effect free (sema rejects calls inside conditions), so this
//    is observationally equivalent to C short-circuiting, and it keeps the
//    CFG's decision nodes atomic — one decision node per `if`/`while`/
//    `switch`, which is what the paper's partitioning operates on.
//  * Division semantics are total: x / 0 == 0 and x % 0 == x. The AST
//    interpreter, the target VM and the BMC bit-blaster all implement this
//    same definition.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "minic/type.h"
#include "support/diagnostics.h"

namespace tmg::minic {

// ---------------------------------------------------------------- Symbols

enum class SymbolKind : std::uint8_t {
  Global,  // file-scope variable (state; has an initial value, default 0)
  Param,   // function parameter (always an analysis input)
  Local,   // block-scope variable
  Extern,  // external leaf function with a fixed cycle cost
};

/// A named entity. Owned by the Program; AST nodes hold raw pointers.
struct Symbol {
  std::uint32_t id = 0;  // dense index, unique per Program
  std::string name;
  SymbolKind kind = SymbolKind::Local;
  Type type = Type::Int16;
  SourceLoc loc;

  /// Globals: declared with `__input`, i.e. unconstrained at analysis time.
  /// Params are implicitly inputs regardless of this flag.
  bool is_input = false;

  /// Optional `__input(lo, hi)` value range — the code generator's domain
  /// annotation the paper relies on for variable range analysis. Applies to
  /// inputs; bounds are inclusive.
  std::optional<std::pair<std::int64_t, std::int64_t>> input_range;

  /// Declared or annotated value range of this symbol (annotation if
  /// present, otherwise the full type range).
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> value_range() const {
    if (input_range) return *input_range;
    return {type_min(type), type_max(type)};
  }

  /// Globals: compile-time initial value (0 when none written).
  std::int64_t init_value = 0;

  /// Externs: cycle cost of one call (`__cost(N)` attribute, default 0 means
  /// "use the target cost model's default external call cost").
  std::int64_t call_cost = 0;
  /// Externs: declared return type; parameter types of the extern.
  std::vector<Type> param_types;

  [[nodiscard]] bool is_function() const { return kind == SymbolKind::Extern; }
  [[nodiscard]] bool is_analysis_input() const {
    return kind == SymbolKind::Param || is_input;
  }
};

// ------------------------------------------------------------ Expressions

enum class ExprKind : std::uint8_t { IntLit, VarRef, Unary, Binary, Cond, Call };

enum class UnOp : std::uint8_t { Neg, LogicalNot, BitNot, Plus };

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  BitAnd, BitOr, BitXor, Shl, Shr,
  Eq, Ne, Lt, Le, Gt, Ge,
  LogicalAnd, LogicalOr,
};

/// True for operators whose result is Bool (0/1).
constexpr bool binop_is_boolean(BinOp op) {
  switch (op) {
    case BinOp::Eq: case BinOp::Ne:
    case BinOp::Lt: case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
    case BinOp::LogicalAnd: case BinOp::LogicalOr:
      return true;
    default:
      return false;
  }
}

std::string binop_spelling(BinOp op);
std::string unop_spelling(UnOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  SourceLoc loc;
  Type type = Type::Void;  // filled by sema

  // IntLit
  std::int64_t int_value = 0;
  // VarRef / Call
  Symbol* sym = nullptr;
  // Unary
  UnOp un_op = UnOp::Plus;
  // Binary
  BinOp bin_op = BinOp::Add;
  // children: Unary uses [0]; Binary uses [0],[1]; Cond uses [0..2];
  // Call uses all as arguments.
  std::vector<ExprPtr> children;

  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}

  [[nodiscard]] const Expr& child(std::size_t i) const { return *children[i]; }
  [[nodiscard]] Expr& child(std::size_t i) { return *children[i]; }

  /// Deep structural copy (symbols shared, not cloned).
  [[nodiscard]] ExprPtr clone() const;
};

ExprPtr make_int_lit(std::int64_t v, SourceLoc loc = {});
ExprPtr make_var_ref(Symbol* sym, SourceLoc loc = {});
ExprPtr make_unary(UnOp op, ExprPtr e, SourceLoc loc = {});
ExprPtr make_binary(BinOp op, ExprPtr l, ExprPtr r, SourceLoc loc = {});
ExprPtr make_cond(ExprPtr c, ExprPtr t, ExprPtr f, SourceLoc loc = {});
ExprPtr make_call(Symbol* callee, std::vector<ExprPtr> args, SourceLoc loc = {});

// -------------------------------------------------------------- Statements

enum class StmtKind : std::uint8_t {
  Expr,      // expression statement (a call)
  Assign,    // target = / op= value
  Decl,      // local declaration with optional initialiser
  Block,     // { ... }
  If,
  While,     // `for` is desugared to While by the parser
  DoWhile,
  Switch,
  Break,
  Continue,
  Return,
  Empty,     // ';'
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One `case`/`default` arm of a switch. `body` statements run until a
/// break/return or fall through to the next arm.
struct SwitchCase {
  std::optional<std::int64_t> label;  // nullopt == default; folded by sema
  ExprPtr label_expr;                 // as parsed; null for default
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  // Expr / Return: children[0] (Return may have none).
  // Assign: target symbol in `sym`, RHS in children[0]; `assign_op` is the
  //   compound operator (nullopt for plain '=').
  // Decl: symbol in `sym`, optional init in children[0].
  // If: cond in `cond`, then in body[0], else in body[1] (may be null).
  // While/DoWhile: cond in `cond`, body in body[0]; body[1] (optional) is
  //   the step statement of a desugared `for` (target of `continue`).
  // Switch: selector in `cond`, arms in `cases`.
  // Block: statements in `body`.
  Symbol* sym = nullptr;
  std::optional<BinOp> assign_op;
  ExprPtr cond;
  std::vector<ExprPtr> children;
  std::vector<StmtPtr> body;
  std::vector<SwitchCase> cases;

  /// Loops: maximal iteration count from `__loopbound(N)`; nullopt when the
  /// loop carries no annotation (WCET computation then fails loudly).
  std::optional<std::uint32_t> loop_bound;

  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
};

StmtPtr make_stmt(StmtKind k, SourceLoc loc = {});

// --------------------------------------------------------------- Functions

/// A function definition: `ret_type name(params) { body }`.
struct FunctionDef {
  std::string name;
  Type return_type = Type::Void;
  std::vector<Symbol*> params;
  StmtPtr body;  // always a Block
  SourceLoc loc;
};

/// One mini-C translation unit: globals, extern declarations and function
/// definitions, plus ownership of all symbols.
struct Program {
  std::vector<std::unique_ptr<Symbol>> symbols;
  std::vector<Symbol*> globals;   // subset of symbols, in declaration order
  std::vector<Symbol*> externs;   // subset of symbols
  std::vector<std::unique_ptr<FunctionDef>> functions;

  Symbol* new_symbol(std::string name, SymbolKind kind, Type type,
                     SourceLoc loc = {});
  [[nodiscard]] const FunctionDef* find_function(std::string_view name) const;
  [[nodiscard]] Symbol* find_global(std::string_view name) const;

  /// All analysis inputs of `fn`: its parameters plus every `__input` global,
  /// in a deterministic order (params first, then globals by declaration).
  [[nodiscard]] std::vector<Symbol*> inputs_of(const FunctionDef& fn) const;
};

}  // namespace tmg::minic
