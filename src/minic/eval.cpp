#include "minic/eval.h"

namespace tmg::minic {

std::int64_t eval_binop(BinOp op, std::int64_t lhs, std::int64_t rhs,
                        Type operand_type, Type result_type) {
  const int bits = type_bits(operand_type);
  const bool is_signed = type_is_signed(operand_type);
  const auto ul = static_cast<std::uint64_t>(lhs);
  const auto ur = static_cast<std::uint64_t>(rhs);
  std::int64_t r = 0;
  switch (op) {
    case BinOp::Add: r = static_cast<std::int64_t>(ul + ur); break;
    case BinOp::Sub: r = static_cast<std::int64_t>(ul - ur); break;
    case BinOp::Mul: r = static_cast<std::int64_t>(ul * ur); break;
    case BinOp::Div:
      if (rhs == 0) {
        r = 0;  // total division: x / 0 == 0
      } else if (is_signed) {
        // lhs/rhs are sign-extended; INT_MIN/-1 wraps like the hardware.
        if (lhs == type_min(operand_type) && rhs == -1)
          r = lhs;
        else
          r = lhs / rhs;
      } else {
        r = static_cast<std::int64_t>(ul / ur);
      }
      break;
    case BinOp::Rem:
      if (rhs == 0) {
        r = lhs;  // total remainder: x % 0 == x
      } else if (is_signed) {
        if (lhs == type_min(operand_type) && rhs == -1)
          r = 0;
        else
          r = lhs % rhs;
      } else {
        r = static_cast<std::int64_t>(ul % ur);
      }
      break;
    case BinOp::BitAnd: r = static_cast<std::int64_t>(ul & ur); break;
    case BinOp::BitOr: r = static_cast<std::int64_t>(ul | ur); break;
    case BinOp::BitXor: r = static_cast<std::int64_t>(ul ^ ur); break;
    case BinOp::Shl:
      if (rhs < 0 || rhs >= bits)
        r = 0;
      else
        r = static_cast<std::int64_t>(ul << rhs);
      break;
    case BinOp::Shr: {
      const bool fill = is_signed && lhs < 0;
      if (rhs < 0 || rhs >= bits) {
        r = fill ? -1 : 0;
      } else if (is_signed) {
        r = lhs >> rhs;  // arithmetic shift on sign-extended value
      } else {
        const std::uint64_t mask =
            bits >= 64 ? ~0ULL : ((std::uint64_t{1} << bits) - 1);
        r = static_cast<std::int64_t>((ul & mask) >> rhs);
      }
      break;
    }
    case BinOp::Eq: return lhs == rhs ? 1 : 0;
    case BinOp::Ne: return lhs != rhs ? 1 : 0;
    case BinOp::Lt: return (is_signed ? lhs < rhs : ul < ur) ? 1 : 0;
    case BinOp::Le: return (is_signed ? lhs <= rhs : ul <= ur) ? 1 : 0;
    case BinOp::Gt: return (is_signed ? lhs > rhs : ul > ur) ? 1 : 0;
    case BinOp::Ge: return (is_signed ? lhs >= rhs : ul >= ur) ? 1 : 0;
    case BinOp::LogicalAnd: return (lhs != 0 && rhs != 0) ? 1 : 0;
    case BinOp::LogicalOr: return (lhs != 0 || rhs != 0) ? 1 : 0;
  }
  return wrap_to_type(r, result_type);
}

std::int64_t eval_unop(UnOp op, std::int64_t v, Type /*operand_type*/,
                       Type result_type) {
  switch (op) {
    case UnOp::Neg:
      return wrap_to_type(-v, result_type);
    case UnOp::LogicalNot:
      return v == 0 ? 1 : 0;
    case UnOp::BitNot:
      return wrap_to_type(~v, result_type);
    case UnOp::Plus:
      return wrap_to_type(v, result_type);
  }
  return 0;
}

}  // namespace tmg::minic
