// Word-level to CNF bit-blasting (Tseitin encoding) with mini-C semantics:
// two's-complement wraparound, total division (x/0 = 0, x%0 = x), shift
// amounts >= width give 0 / sign fill.
#pragma once

#include <cstdint>
#include <vector>

#include "minic/type.h"
#include "sat/solver.h"

namespace tmg::bmc {

/// A bit-vector of SAT literals, LSB first.
struct BitVec {
  std::vector<sat::Lit> bits;
  bool is_signed = false;  // interpretation for extension/comparison

  [[nodiscard]] int width() const { return static_cast<int>(bits.size()); }
};

/// Circuit builder over a SAT solver. All methods allocate fresh Tseitin
/// variables as needed and add the defining clauses immediately.
class BitBlaster {
 public:
  explicit BitBlaster(sat::Solver& solver);

  sat::Solver& solver() { return solver_; }

  /// Literals for the constants true/false.
  [[nodiscard]] sat::Lit true_lit() const { return true_; }
  [[nodiscard]] sat::Lit false_lit() const { return ~true_; }

  /// Constant of the given width (two's complement).
  BitVec constant(std::int64_t v, int width, bool is_signed);
  /// Fresh unconstrained vector.
  BitVec fresh(int width, bool is_signed);

  // ------------------------------------------------------------- gates
  sat::Lit and_gate(sat::Lit a, sat::Lit b);
  /// Conjunction of arbitrarily many literals through ONE fresh selector
  /// variable (n + 1 clauses instead of a 3n and_gate chain); true_lit()
  /// for the empty set. Used per unroll step by the decision-schedule
  /// window encoding, where every step offset gets its own selector.
  sat::Lit and_all(const std::vector<sat::Lit>& ls);
  sat::Lit or_gate(sat::Lit a, sat::Lit b);
  sat::Lit xor_gate(sat::Lit a, sat::Lit b);
  sat::Lit mux_gate(sat::Lit sel, sat::Lit t, sat::Lit f);

  // ---------------------------------------------------------- word ops
  /// Resizes to `width`: truncate or sign/zero-extend per a.is_signed.
  BitVec resize(const BitVec& a, int width);
  /// Re-tags signedness without changing bits.
  static BitVec retag(BitVec a, bool is_signed) {
    a.is_signed = is_signed;
    return a;
  }

  BitVec add(const BitVec& a, const BitVec& b);
  BitVec sub(const BitVec& a, const BitVec& b);
  BitVec neg(const BitVec& a);
  BitVec mul(const BitVec& a, const BitVec& b);
  /// Division/remainder with mini-C total semantics.
  BitVec div(const BitVec& a, const BitVec& b);
  BitVec rem(const BitVec& a, const BitVec& b);

  BitVec bit_and(const BitVec& a, const BitVec& b);
  BitVec bit_or(const BitVec& a, const BitVec& b);
  BitVec bit_xor(const BitVec& a, const BitVec& b);
  BitVec bit_not(const BitVec& a);

  /// Shifts by a (possibly signed) variable amount; amounts < 0 or >= width
  /// produce 0 (shl, logical shr) or sign fill (arithmetic shr).
  BitVec shl(const BitVec& a, const BitVec& amount);
  BitVec shr(const BitVec& a, const BitVec& amount);

  sat::Lit eq(const BitVec& a, const BitVec& b);
  sat::Lit ne(const BitVec& a, const BitVec& b) { return ~eq(a, b); }
  /// a < b respecting the (common) signedness of the operands.
  sat::Lit lt(const BitVec& a, const BitVec& b);
  sat::Lit le(const BitVec& a, const BitVec& b);

  /// a != 0.
  sat::Lit reduce_or(const BitVec& a);
  BitVec mux(sat::Lit sel, const BitVec& t, const BitVec& f);

  /// Bool (width 1) from a condition literal.
  BitVec from_lit(sat::Lit l) { return BitVec{{l}, false}; }

  /// Decodes a model value (after Sat) as a signed 64-bit integer.
  [[nodiscard]] std::int64_t decode(const BitVec& a) const;

 private:
  /// (a + b + cin), returns sum bits and writes the final carry.
  BitVec adder(const BitVec& a, const BitVec& b, sat::Lit cin,
               sat::Lit* carry_out);
  /// Unsigned comparison a < b via subtract borrow.
  sat::Lit ult(const BitVec& a, const BitVec& b);
  /// Unsigned restoring division; quotient and remainder of |width| bits.
  void udivrem(const BitVec& a, const BitVec& b, BitVec* quot, BitVec* rem);
  BitVec abs_value(const BitVec& a);

  sat::Solver& solver_;
  sat::Lit true_;
};

}  // namespace tmg::bmc
