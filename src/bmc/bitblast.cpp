#include "bmc/bitblast.h"

#include <cassert>

namespace tmg::bmc {

using sat::Lit;

BitBlaster::BitBlaster(sat::Solver& solver) : solver_(solver) {
  true_ = sat::pos(solver_.new_var());
  solver_.add_clause(true_);
}

BitVec BitBlaster::constant(std::int64_t v, int width, bool is_signed) {
  BitVec out;
  out.is_signed = is_signed;
  out.bits.reserve(width);
  for (int i = 0; i < width; ++i)
    out.bits.push_back(((v >> i) & 1) ? true_ : ~true_);
  return out;
}

BitVec BitBlaster::fresh(int width, bool is_signed) {
  BitVec out;
  out.is_signed = is_signed;
  out.bits.reserve(width);
  for (int i = 0; i < width; ++i) out.bits.push_back(sat::pos(solver_.new_var()));
  return out;
}

// ------------------------------------------------------------------ gates

Lit BitBlaster::and_gate(Lit a, Lit b) {
  if (a == true_) return b;
  if (b == true_) return a;
  if (a == ~true_ || b == ~true_) return ~true_;
  if (a == b) return a;
  if (a == ~b) return ~true_;
  const Lit o = sat::pos(solver_.new_var());
  solver_.add_clause(~o, a);
  solver_.add_clause(~o, b);
  solver_.add_clause(o, ~a, ~b);
  return o;
}

Lit BitBlaster::and_all(const std::vector<Lit>& ls) {
  std::vector<Lit> kept;
  kept.reserve(ls.size());
  for (const Lit l : ls) {
    if (l == true_) continue;
    if (l == ~true_) return ~true_;
    kept.push_back(l);
  }
  if (kept.empty()) return true_;
  if (kept.size() == 1) return kept.front();
  const Lit o = sat::pos(solver_.new_var());
  std::vector<Lit> back{o};
  for (const Lit l : kept) {
    solver_.add_clause(~o, l);
    back.push_back(~l);
  }
  solver_.add_clause(std::move(back));
  return o;
}

Lit BitBlaster::or_gate(Lit a, Lit b) { return ~and_gate(~a, ~b); }

Lit BitBlaster::xor_gate(Lit a, Lit b) {
  if (a == true_) return ~b;
  if (b == true_) return ~a;
  if (a == ~true_) return b;
  if (b == ~true_) return a;
  if (a == b) return ~true_;
  if (a == ~b) return true_;
  const Lit o = sat::pos(solver_.new_var());
  solver_.add_clause(~o, a, b);
  solver_.add_clause(~o, ~a, ~b);
  solver_.add_clause(o, ~a, b);
  solver_.add_clause(o, a, ~b);
  return o;
}

Lit BitBlaster::mux_gate(Lit sel, Lit t, Lit f) {
  if (sel == true_) return t;
  if (sel == ~true_) return f;
  if (t == f) return t;
  const Lit o = sat::pos(solver_.new_var());
  solver_.add_clause(~sel, ~t, o);
  solver_.add_clause(~sel, t, ~o);
  solver_.add_clause(sel, ~f, o);
  solver_.add_clause(sel, f, ~o);
  return o;
}

// --------------------------------------------------------------- word ops

BitVec BitBlaster::resize(const BitVec& a, int width) {
  BitVec out;
  out.is_signed = a.is_signed;
  out.bits.reserve(width);
  const Lit fill = a.is_signed && !a.bits.empty() ? a.bits.back() : ~true_;
  for (int i = 0; i < width; ++i)
    out.bits.push_back(i < a.width() ? a.bits[i] : fill);
  return out;
}

BitVec BitBlaster::adder(const BitVec& a, const BitVec& b, Lit cin,
                         Lit* carry_out) {
  assert(a.width() == b.width());
  BitVec out;
  out.is_signed = a.is_signed;
  Lit carry = cin;
  for (int i = 0; i < a.width(); ++i) {
    const Lit axb = xor_gate(a.bits[i], b.bits[i]);
    out.bits.push_back(xor_gate(axb, carry));
    // carry' = (a & b) | (carry & (a ^ b))
    carry = or_gate(and_gate(a.bits[i], b.bits[i]), and_gate(carry, axb));
  }
  if (carry_out) *carry_out = carry;
  return out;
}

BitVec BitBlaster::add(const BitVec& a, const BitVec& b) {
  return adder(a, b, ~true_, nullptr);
}

BitVec BitBlaster::sub(const BitVec& a, const BitVec& b) {
  return adder(a, bit_not(b), true_, nullptr);
}

BitVec BitBlaster::neg(const BitVec& a) {
  return adder(bit_not(a), constant(0, a.width(), a.is_signed), true_,
               nullptr);
}

BitVec BitBlaster::mul(const BitVec& a, const BitVec& b) {
  const int w = a.width();
  BitVec acc = constant(0, w, a.is_signed);
  for (int i = 0; i < w; ++i) {
    // row_i = b[i] ? (a << i) : 0, truncated to w bits
    BitVec row;
    row.is_signed = a.is_signed;
    for (int k = 0; k < w; ++k)
      row.bits.push_back(k < i ? ~true_ : and_gate(a.bits[k - i], b.bits[i]));
    acc = add(acc, row);
  }
  return acc;
}

Lit BitBlaster::ult(const BitVec& a, const BitVec& b) {
  // a < b  <=>  borrow out of (a - b)  <=>  NOT carry of a + ~b + 1
  Lit carry = true_;
  for (int i = 0; i < a.width(); ++i) {
    const Lit nb = ~b.bits[i];
    const Lit axb = xor_gate(a.bits[i], nb);
    carry = or_gate(and_gate(a.bits[i], nb), and_gate(carry, axb));
  }
  return ~carry;
}

Lit BitBlaster::lt(const BitVec& a, const BitVec& b) {
  assert(a.width() == b.width());
  if (!a.is_signed && !b.is_signed) return ult(a, b);
  // signed: flip sign bits and compare unsigned
  BitVec af = a, bf = b;
  af.bits.back() = ~af.bits.back();
  bf.bits.back() = ~bf.bits.back();
  return ult(af, bf);
}

Lit BitBlaster::le(const BitVec& a, const BitVec& b) { return ~lt(b, a); }

Lit BitBlaster::eq(const BitVec& a, const BitVec& b) {
  assert(a.width() == b.width());
  Lit acc = true_;
  for (int i = 0; i < a.width(); ++i)
    acc = and_gate(acc, ~xor_gate(a.bits[i], b.bits[i]));
  return acc;
}

BitVec BitBlaster::bit_and(const BitVec& a, const BitVec& b) {
  BitVec out;
  out.is_signed = a.is_signed;
  for (int i = 0; i < a.width(); ++i)
    out.bits.push_back(and_gate(a.bits[i], b.bits[i]));
  return out;
}

BitVec BitBlaster::bit_or(const BitVec& a, const BitVec& b) {
  BitVec out;
  out.is_signed = a.is_signed;
  for (int i = 0; i < a.width(); ++i)
    out.bits.push_back(or_gate(a.bits[i], b.bits[i]));
  return out;
}

BitVec BitBlaster::bit_xor(const BitVec& a, const BitVec& b) {
  BitVec out;
  out.is_signed = a.is_signed;
  for (int i = 0; i < a.width(); ++i)
    out.bits.push_back(xor_gate(a.bits[i], b.bits[i]));
  return out;
}

BitVec BitBlaster::bit_not(const BitVec& a) {
  BitVec out;
  out.is_signed = a.is_signed;
  for (const Lit& l : a.bits) out.bits.push_back(~l);
  return out;
}

BitVec BitBlaster::mux(Lit sel, const BitVec& t, const BitVec& f) {
  assert(t.width() == f.width());
  BitVec out;
  out.is_signed = t.is_signed;
  for (int i = 0; i < t.width(); ++i)
    out.bits.push_back(mux_gate(sel, t.bits[i], f.bits[i]));
  return out;
}

Lit BitBlaster::reduce_or(const BitVec& a) {
  Lit acc = ~true_;
  for (const Lit& l : a.bits) acc = or_gate(acc, l);
  return acc;
}

BitVec BitBlaster::shl(const BitVec& a, const BitVec& amount) {
  const int w = a.width();
  // barrel shifter over the low bits of `amount`
  BitVec cur = a;
  int stage_bits = 0;
  while ((1 << stage_bits) < w) ++stage_bits;
  for (int s = 0; s < stage_bits && s < amount.width(); ++s) {
    const int shift = 1 << s;
    BitVec shifted;
    shifted.is_signed = a.is_signed;
    for (int i = 0; i < w; ++i)
      shifted.bits.push_back(i < shift ? ~true_ : cur.bits[i - shift]);
    cur = mux(amount.bits[s], shifted, cur);
  }
  // out-of-range (amount >= w or negative) -> 0
  Lit big = ~true_;
  for (int i = stage_bits; i < amount.width(); ++i)
    big = or_gate(big, amount.bits[i]);
  if (amount.is_signed && amount.width() > 0)
    big = or_gate(big, amount.bits.back());
  // also: amount bits within stage range encoding >= w exactly
  BitVec low_amt;
  low_amt.is_signed = false;
  for (int s = 0; s < stage_bits && s < amount.width(); ++s)
    low_amt.bits.push_back(amount.bits[s]);
  while (low_amt.width() < stage_bits + 1) low_amt.bits.push_back(~true_);
  const Lit ge_w = ~ult(low_amt, constant(w, stage_bits + 1, false));
  big = or_gate(big, ge_w);
  return mux(big, constant(0, w, a.is_signed), cur);
}

BitVec BitBlaster::shr(const BitVec& a, const BitVec& amount) {
  const int w = a.width();
  const Lit fill = a.is_signed ? a.bits.back() : ~true_;
  BitVec cur = a;
  int stage_bits = 0;
  while ((1 << stage_bits) < w) ++stage_bits;
  for (int s = 0; s < stage_bits && s < amount.width(); ++s) {
    const int shift = 1 << s;
    BitVec shifted;
    shifted.is_signed = a.is_signed;
    for (int i = 0; i < w; ++i)
      shifted.bits.push_back(i + shift < w ? cur.bits[i + shift] : fill);
    cur = mux(amount.bits[s], shifted, cur);
  }
  Lit big = ~true_;
  for (int i = stage_bits; i < amount.width(); ++i)
    big = or_gate(big, amount.bits[i]);
  if (amount.is_signed && amount.width() > 0)
    big = or_gate(big, amount.bits.back());
  BitVec low_amt;
  low_amt.is_signed = false;
  for (int s = 0; s < stage_bits && s < amount.width(); ++s)
    low_amt.bits.push_back(amount.bits[s]);
  while (low_amt.width() < stage_bits + 1) low_amt.bits.push_back(~true_);
  const Lit ge_w = ~ult(low_amt, constant(w, stage_bits + 1, false));
  big = or_gate(big, ge_w);
  BitVec fill_vec;
  fill_vec.is_signed = a.is_signed;
  for (int i = 0; i < w; ++i) fill_vec.bits.push_back(fill);
  return mux(big, fill_vec, cur);
}

BitVec BitBlaster::abs_value(const BitVec& a) {
  if (!a.is_signed) return a;
  return mux(a.bits.back(), neg(a), a);
}

void BitBlaster::udivrem(const BitVec& a, const BitVec& b, BitVec* quot,
                         BitVec* rem_out) {
  const int w = a.width();
  // restoring division, MSB first
  BitVec r = constant(0, w, false);
  std::vector<Lit> qbits(w, ~true_);
  for (int i = w - 1; i >= 0; --i) {
    // r = (r << 1) | a[i]
    BitVec r2;
    r2.is_signed = false;
    r2.bits.push_back(a.bits[i]);
    for (int k = 0; k + 1 < w; ++k) r2.bits.push_back(r.bits[k]);
    const Lit fits = ~ult(r2, b);  // r2 >= b
    const BitVec sub_r = sub(r2, b);
    r = mux(fits, sub_r, r2);
    qbits[i] = fits;
  }
  if (quot) {
    quot->bits = std::move(qbits);
    quot->is_signed = false;
  }
  if (rem_out) *rem_out = r;
}

BitVec BitBlaster::div(const BitVec& a, const BitVec& b) {
  const int w = a.width();
  const BitVec ua = abs_value(a);
  const BitVec ub = abs_value(b);
  BitVec q;
  udivrem(retag(ua, false), retag(ub, false), &q, nullptr);
  q.is_signed = a.is_signed;
  if (a.is_signed) {
    const Lit flip = xor_gate(a.bits.back(), b.bits.back());
    q = mux(flip, neg(q), q);
  }
  // x / 0 == 0
  const Lit bz = ~reduce_or(b);
  return mux(bz, constant(0, w, a.is_signed), q);
}

BitVec BitBlaster::rem(const BitVec& a, const BitVec& b) {
  const BitVec ua = abs_value(a);
  const BitVec ub = abs_value(b);
  BitVec r;
  udivrem(retag(ua, false), retag(ub, false), nullptr, &r);
  r.is_signed = a.is_signed;
  if (a.is_signed) {
    // remainder takes the dividend's sign
    r = mux(a.bits.back(), neg(r), r);
  }
  // x % 0 == x
  const Lit bz = ~reduce_or(b);
  return mux(bz, a, r);
}

std::int64_t BitBlaster::decode(const BitVec& a) const {
  std::uint64_t v = 0;
  for (int i = 0; i < a.width(); ++i)
    if (solver_.value(a.bits[i].var()) != a.bits[i].sign()) v |= 1ULL << i;
  if (a.is_signed && a.width() < 64 && (v >> (a.width() - 1)) != 0)
    v |= ~((std::uint64_t{1} << a.width()) - 1);
  return static_cast<std::int64_t>(v);
}

}  // namespace tmg::bmc
