// Incremental BMC sessions: one SAT solver + bit-blaster per
// (transition system, options) that keeps the unrolled transition relation
// across queries. Every query — whole-run exact path, global decision
// policy, anchored schedule window, and the witness-minimisation pins —
// becomes a solve(assumptions) call against shared activation literals, so
// the per-function circuit is asserted once and each query pays only its
// own delta.
//
// Determinism contract (relied on by driver::Pipeline): for every default
// report field, Session::solve(query) on a WARM session returns exactly
// what a FRESH session (and hence bmc::solve, which is now a thin wrapper
// constructing one) returns for the same query:
//   - status is decided by a complete search (no conflict budget), so it
//     is a semantic property of (ts, query, opts);
//   - witnesses are minimised to the unique preference-minimal model,
//     independent of solver heuristics and learned clauses;
//   - steps / decision_trace replay the witness deterministically;
//   - cnf_vars / cnf_clauses are computed from per-artifact accounting
//     (base circuit prefix + the query's activation artifacts), not from
//     live solver totals, so a warm session reports the same numbers a
//     fresh one would.
// Only `seconds`, `memory_bytes` and the solver_* effort deltas depend on
// session history; the driver surfaces those under --stats/bench only.
// With a finite conflict_budget the verdict itself may depend on learned
// clauses; callers that need determinism must not reuse sessions then
// (the pipeline falls back to fresh solving when a budget is set).
//
// A Session is NOT thread-safe; engine::SessionPool hands each worker its
// own instance.
#pragma once

#include <memory>

#include "bmc/bmc.h"

namespace tmg::bmc {

/// Aggregated SAT effort over every query answered by one session.
struct SessionStats {
  std::uint64_t queries = 0;
  std::uint64_t solver_decisions = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_conflicts = 0;
  std::uint64_t solver_restarts = 0;
};

class Session {
 public:
  /// The session captures references to `ts`; it must outlive the session
  /// and stay unmutated (same aliasing rule as bmc::solve).
  Session(const tsys::TransitionSystem& ts, const BmcOptions& opts);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Answers one query incrementally. See the determinism contract above.
  BmcResult solve(const BmcQuery& query);

  [[nodiscard]] const SessionStats& stats() const { return stats_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  SessionStats stats_;
};

}  // namespace tmg::bmc
