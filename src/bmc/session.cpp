#include "bmc/session.h"

#include <cassert>
#include <chrono>
#include <deque>
#include <map>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "bmc/bitblast.h"
#include "support/trace.h"

namespace tmg::bmc {

using minic::Type;
using sat::Lit;
using tsys::TExpr;
using tsys::TExprKind;
using tsys::Transition;
using tsys::TransitionSystem;
using tsys::VarId;
using tsys::VarInfo;

namespace {

/// Bit-blasts transition-system expressions against a per-step frame of
/// variable bit-vectors.
class ExprBlaster {
 public:
  ExprBlaster(BitBlaster& bb, const std::vector<BitVec>& frame,
              const TransitionSystem& ts)
      : bb_(bb), frame_(frame), ts_(ts) {}

  /// Value of `e` as a bit-vector of its type's width.
  BitVec value(const TExpr& e) {
    const int w = minic::type_bits(e.type);
    const bool sg = minic::type_is_signed(e.type);
    switch (e.kind) {
      case TExprKind::Const:
        return bb_.constant(e.value, w, sg);
      case TExprKind::Var: {
        // variables are stored at their (possibly narrowed) encoding width
        BitVec enc = frame_[e.var];
        enc.is_signed = ts_.vars[e.var].is_signed_encoding();
        BitVec v = bb_.resize(enc, w);
        v.is_signed = sg;
        return v;
      }
      case TExprKind::Unary: {
        BitVec a = value(*e.args[0]);
        switch (e.un_op) {
          case minic::UnOp::Neg:
            return BitBlaster::retag(bb_.resize(bb_.neg(promote(a, e.type)), w), sg);
          case minic::UnOp::BitNot:
            return BitBlaster::retag(bb_.bit_not(promote(a, e.type)), sg);
          case minic::UnOp::Plus:
            return BitBlaster::retag(bb_.resize(a, w), sg);
          case minic::UnOp::LogicalNot:
            return bb_.from_lit(~bb_.reduce_or(a));
        }
        break;
      }
      case TExprKind::Binary:
        return binary(e);
      case TExprKind::Cond: {
        const Lit c = bb_.reduce_or(value(*e.args[0]));
        BitVec t = bb_.resize(value(*e.args[1]), w);
        BitVec f = bb_.resize(value(*e.args[2]), w);
        return BitBlaster::retag(bb_.mux(c, t, f), sg);
      }
    }
    return bb_.constant(0, w, sg);
  }

  /// Condition literal for `e != 0`.
  Lit truth(const TExpr& e) { return bb_.reduce_or(value(e)); }

 private:
  /// Extends `a` to the width of `type`, keeping a's signedness for fill.
  BitVec promote(const BitVec& a, Type type) {
    return bb_.resize(a, minic::type_bits(type));
  }

  BitVec binary(const TExpr& e) {
    using minic::BinOp;
    const int w = minic::type_bits(e.type);
    const bool sg = minic::type_is_signed(e.type);

    if (e.bin_op == BinOp::LogicalAnd || e.bin_op == BinOp::LogicalOr) {
      const Lit l = truth(*e.args[0]);
      const Lit r = truth(*e.args[1]);
      return bb_.from_lit(e.bin_op == BinOp::LogicalAnd ? bb_.and_gate(l, r)
                                                        : bb_.or_gate(l, r));
    }

    // promote operands to their common arithmetic type
    const Type ot =
        minic::arith_result(e.args[0]->type, e.args[1]->type);
    const int ow = minic::type_bits(ot);
    const bool osg = minic::type_is_signed(ot);
    BitVec a = bb_.resize(value(*e.args[0]), ow);
    BitVec b = bb_.resize(value(*e.args[1]), ow);
    a.is_signed = osg;
    b.is_signed = osg;

    switch (e.bin_op) {
      case BinOp::Add:
        return BitBlaster::retag(bb_.resize(bb_.add(a, b), w), sg);
      case BinOp::Sub:
        return BitBlaster::retag(bb_.resize(bb_.sub(a, b), w), sg);
      case BinOp::Mul:
        return BitBlaster::retag(bb_.resize(bb_.mul(a, b), w), sg);
      case BinOp::Div:
        return BitBlaster::retag(bb_.resize(bb_.div(a, b), w), sg);
      case BinOp::Rem:
        return BitBlaster::retag(bb_.resize(bb_.rem(a, b), w), sg);
      case BinOp::BitAnd:
        return BitBlaster::retag(bb_.resize(bb_.bit_and(a, b), w), sg);
      case BinOp::BitOr:
        return BitBlaster::retag(bb_.resize(bb_.bit_or(a, b), w), sg);
      case BinOp::BitXor:
        return BitBlaster::retag(bb_.resize(bb_.bit_xor(a, b), w), sg);
      case BinOp::Shl: {
        // shift ops promote the LEFT operand only
        BitVec base = bb_.resize(value(*e.args[0]),
                                 minic::type_bits(e.type));
        base.is_signed = sg;
        BitVec amt = value(*e.args[1]);
        amt.is_signed = minic::type_is_signed(e.args[1]->type);
        return BitBlaster::retag(bb_.shl(base, amt), sg);
      }
      case BinOp::Shr: {
        BitVec base = bb_.resize(value(*e.args[0]),
                                 minic::type_bits(e.type));
        base.is_signed = minic::type_is_signed(e.args[0]->type);
        BitVec amt = value(*e.args[1]);
        amt.is_signed = minic::type_is_signed(e.args[1]->type);
        BitVec r = bb_.shr(base, amt);
        return BitBlaster::retag(bb_.resize(r, w), sg);
      }
      case BinOp::Eq:
        return bb_.from_lit(bb_.eq(a, b));
      case BinOp::Ne:
        return bb_.from_lit(bb_.ne(a, b));
      case BinOp::Lt:
        return bb_.from_lit(bb_.lt(a, b));
      case BinOp::Le:
        return bb_.from_lit(bb_.le(a, b));
      case BinOp::Gt:
        return bb_.from_lit(bb_.lt(b, a));
      case BinOp::Ge:
        return bb_.from_lit(bb_.le(b, a));
      default:
        break;
    }
    return bb_.constant(0, w, sg);
  }

  BitBlaster& bb_;
  const std::vector<BitVec>& frame_;
  const TransitionSystem& ts_;
};

int loc_bits(const TransitionSystem& ts) {
  int bits = 1;
  while ((std::uint64_t{1} << bits) < ts.num_locs) ++bits;
  return bits;
}

/// Comparison literals the witness minimisation has already built, keyed
/// by (step-0 variable, constant). Pin circuits are pure functions of
/// their key, so a session reuses them across queries instead of adding
/// a fresh copy of every anchor/bound comparison to the solver each time
/// — without this, a warm solver's formula (and with it every later
/// solve's propagation trail) grows linearly with the query count.
using PinCache = std::map<std::pair<std::size_t, std::int64_t>, Lit>;

/// Witness minimisation (BmcOptions::minimize_witness): greedily pins
/// every free variable, in VarId order, to its preferred value — 0 when
/// the domain contains it, else the smallest feasible value found by
/// binary search — re-solving under assumption pins so earlier choices
/// constrain later ones. The query's own activation assumptions (`base`)
/// stay asserted under every pin so the minimisation explores exactly the
/// query's model set. `model` holds the current SAT model's step-0 values
/// and is updated in place; on conflict-budget exhaustion the (still
/// valid, prefix-minimised) current model is kept.
void minimize_witness(sat::Solver& solver, BitBlaster& bb,
                      const TransitionSystem& ts,
                      const std::vector<BitVec>& frame0,
                      const BmcOptions& opts,
                      const std::vector<Lit>& base, PinCache& eq_cache,
                      PinCache& le_cache,
                      std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                          artifact_ranges,
                      std::vector<std::int64_t>& model) {
  std::vector<Lit> pins(base.begin(), base.end());
  const auto snapshot = [&] {
    for (std::size_t v = 0; v < ts.vars.size(); ++v)
      model[v] = bb.decode(frame0[v]);
  };

  for (std::size_t v = 0; v < ts.vars.size(); ++v) {
    const VarInfo& vi = ts.vars[v];
    if (!vi.is_input && vi.has_init) continue;  // constant, nothing to pin
    const int w = vi.bits();
    const bool sg = vi.is_signed_encoding();
    // Fresh pin circuits register as artifacts too: once this query is
    // done they are dead weight for the next one and belong in its
    // deferred decision tier.
    const auto pin_eq = [&](std::int64_t value) {
      const auto key = std::make_pair(v, value);
      const auto it = eq_cache.find(key);
      if (it != eq_cache.end()) return it->second;
      const auto v0 = static_cast<std::uint32_t>(solver.num_vars());
      const Lit l = bb.eq(frame0[v], bb.constant(value, w, sg));
      const auto v1 = static_cast<std::uint32_t>(solver.num_vars());
      if (v1 > v0) artifact_ranges.emplace_back(v0, v1);
      return eq_cache.emplace(key, l).first->second;
    };
    const auto pin_le = [&](std::int64_t bound) {
      const auto key = std::make_pair(v, bound);
      const auto it = le_cache.find(key);
      if (it != le_cache.end()) return it->second;
      const auto v0 = static_cast<std::uint32_t>(solver.num_vars());
      const Lit l = bb.le(frame0[v], bb.constant(bound, w, sg));
      const auto v1 = static_cast<std::uint32_t>(solver.num_vars());
      if (v1 > v0) artifact_ranges.emplace_back(v0, v1);
      return le_cache.emplace(key, l).first->second;
    };

    const std::int64_t dom_lo = vi.init_lo();
    const std::int64_t dom_hi = vi.init_hi();
    const std::int64_t anchor = (dom_lo <= 0 && dom_hi >= 0) ? 0 : dom_lo;
    if (model[v] == anchor) {
      pins.push_back(pin_eq(anchor));
      continue;
    }

    pins.push_back(pin_eq(anchor));
    const sat::Result ra = solver.solve(pins, opts.conflict_budget);
    if (ra == sat::Result::Sat) {
      snapshot();
      continue;
    }
    pins.pop_back();
    if (ra == sat::Result::Unknown) return;  // budget: keep current model

    // The anchor is infeasible under the earlier pins; find the smallest
    // feasible value. Invariant: some feasible value lies in [lo, hi]
    // (the current model's value does).
    std::int64_t lo = dom_lo;
    std::int64_t hi = model[v];
    while (lo < hi) {
      // Unsigned midpoint: `hi - lo` would overflow signed arithmetic on
      // a full-int64 domain (same defence as mc::explore's cardinality).
      const std::int64_t mid = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(lo) +
          (static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo)) /
              2);
      pins.push_back(pin_le(mid));
      const sat::Result rm = solver.solve(pins, opts.conflict_budget);
      pins.pop_back();
      if (rm == sat::Result::Sat) {
        snapshot();
        hi = model[v];  // the fresh model is feasible and <= mid
      } else if (rm == sat::Result::Unsat) {
        lo = mid + 1;
      } else {
        return;  // budget: keep current model
      }
    }
    if (lo != model[v]) {
      pins.push_back(pin_eq(lo));
      if (solver.solve(pins, opts.conflict_budget) != sat::Result::Sat) {
        pins.pop_back();  // cannot happen semantically; stay safe
        return;
      }
      snapshot();
    } else {
      pins.push_back(pin_eq(lo));
    }
  }
}

/// A per-iteration schedule degenerates to a global forced-choice policy
/// only when it never revisits a decision block with a different outcome.
bool schedule_conflicts(const std::vector<cfg::EdgeRef>& choices) {
  std::unordered_map<cfg::BlockId, std::uint32_t> seen;
  for (const cfg::EdgeRef& c : choices) {
    auto [it, inserted] = seen.emplace(c.from, c.succ_index);
    if (!inserted && it->second != c.succ_index) return true;
  }
  return false;
}

/// (vars, requested clauses) snapshot of a solver. Both counters are
/// independent of the solver's assignment/learned-clause history — new_var
/// always appends and clauses_requested() counts pre-simplification — so
/// differencing snapshots yields identical circuit costs on warm and fresh
/// solvers. That is what keeps reported cnf_vars/cnf_clauses deterministic
/// across session reuse.
struct Counts {
  std::uint64_t vars = 0;
  std::uint64_t clauses = 0;
};

Counts mark(const sat::Solver& s) {
  return Counts{s.num_vars(), s.clauses_requested()};
}

Counts delta(const Counts& from, const Counts& to) {
  return Counts{to.vars - from.vars, to.clauses - from.clauses};
}

void accumulate(Counts& into, const Counts& c) {
  into.vars += c.vars;
  into.clauses += c.clauses;
}

/// An activation guard plus the circuit cost of building it. The lit is
/// always a PURE fresh variable (one-directional clauses only: `lit =>
/// artifact`), so a query may safely assume it either way — positively to
/// switch the artifact on, negatively to switch it off without
/// constraining the underlying circuit. Circuit gate outputs (which are
/// biconditional) are never used directly; guard() wraps them first.
/// Variable index range [first, second) owned by one artifact's circuits.
using VarRange = std::pair<std::uint32_t, std::uint32_t>;

struct Activation {
  Lit lit;
  Counts cost;
  /// The solver variables this artifact's circuits own. Queries hand the
  /// ranges of the artifacts they activate to run_query, which parks every
  /// other artifact's variables in the solver's deferred decision tier:
  /// branching a retired circuit's gate variables early constrains live
  /// state backwards through the dead circuit — conflicts a fresh solver
  /// never sees.
  std::vector<VarRange> ranges;
};

}  // namespace

// ---------------------------------------------------------------- session

struct Session::Impl {
  /// Shared shape of both incremental contexts: a solver, its circuit
  /// builder, and the symbolic step-0 frame (test-data variables).
  struct Ctx {
    sat::Solver solver;
    BitBlaster bb;
    std::vector<BitVec> frame0;
    /// Witness-minimisation comparison circuits, shared across queries
    /// (see PinCache).
    PinCache pin_eq_cache;
    PinCache pin_le_cache;
    /// Every artifact circuit's variable range, in construction order —
    /// the universe run_query defers before exempting the current query's
    /// own artifacts (Activation::ranges).
    std::vector<VarRange> artifact_ranges;
    Ctx() : bb(solver) {}
  };

  /// Exact-path context: one functional path condition per whole-run
  /// transition sequence, switched by a per-path activation literal.
  struct ExactCtx : Ctx {
    Counts base;
    std::map<std::vector<std::uint32_t>, Activation> paths;
    /// Construction cache over path prefixes: the symbolic frame, the
    /// guard conjuncts and the cumulative circuit cost after executing a
    /// prefix. Sibling paths of one segment share long prefixes, so a
    /// warm session builds each prefix's step circuits only once. The
    /// cached cost is the full as-if-fresh build cost (each step's cost
    /// is context-independent — the blaster never shares gates), which
    /// keeps reported CNF sizes identical to a cold session's.
    struct Prefix {
      std::vector<BitVec> frame;
      std::vector<Lit> guards;
      Counts cost;
      /// Variable ranges of every step circuit on this prefix (inherited
      /// from the parent prefix plus the extending step's own range).
      std::vector<VarRange> ranges;
    };
    std::map<std::vector<std::uint32_t>, Prefix> prefixes;
  };

  /// Pc-unrolled context: the transition relation unrolled lazily to the
  /// deepest depth any query has needed, with the per-step fire literals
  /// and per-depth pc vectors kept for artifact construction. Goals and
  /// policy prunings are cached activation artifacts keyed by what they
  /// constrain, so every query is a pure assumption set.
  struct PcCtx : Ctx {
    std::vector<BitVec> frame;  // symbolic frame after depth_built steps
    BitVec pc;                  // pc after depth_built steps
    BitVec final_pc;
    std::uint32_t depth_built = 0;
    std::vector<std::vector<Lit>> fires;  // [step][transition id]
    std::vector<BitVec> pcs;              // pcs[d] = pc after d steps
    std::vector<Counts> prefix;           // circuit cost through d steps
    std::map<std::uint32_t, Activation> term;  // run ends by depth d
    std::map<std::pair<std::uint32_t, std::uint32_t>, Activation>
        disallow;  // (transition, depth): transition never fires
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
             Activation>
        took;  // (block, succ, depth): decision edge fired at least once
    std::map<std::pair<std::vector<std::uint32_t>, std::uint32_t>, Activation>
        window;  // (sequence, depth): some offset fires it consecutively
  };

  const TransitionSystem& ts;
  const BmcOptions opts;
  const std::uint32_t full_depth;
  const int pcw;
  std::unique_ptr<ExactCtx> exact;
  std::unique_ptr<PcCtx> pc;
  std::vector<std::uint32_t> dist;  // BFS steps initial -> location

  Impl(const TransitionSystem& system, const BmcOptions& options)
      : ts(system),
        opts(options),
        full_depth(options.max_steps > 0 ? options.max_steps
                                         : system.num_locs + 1),
        pcw(loc_bits(system)) {}

  std::vector<BitVec> build_frame0(sat::Solver& solver, BitBlaster& bb) const {
    std::vector<BitVec> frame;
    frame.reserve(ts.vars.size());
    for (const VarInfo& v : ts.vars) {
      const int w = v.bits();
      const bool sg = v.is_signed_encoding();
      if (!v.is_input && v.has_init) {
        frame.push_back(bb.constant(v.init, w, sg));
        continue;
      }
      BitVec x = bb.fresh(w, sg);
      // Constrain the free initial value to the declared domain (the
      // encoding may admit more values — it must cover later stores too,
      // but test data and uninitialised state start inside the domain).
      const BitVec lo = bb.constant(v.init_lo(), w, sg);
      const BitVec hi = bb.constant(v.init_hi(), w, sg);
      solver.add_clause(bb.le(lo, x));
      solver.add_clause(bb.le(x, hi));
      frame.push_back(std::move(x));
    }
    return frame;
  }

  /// Wraps a circuit output in a fresh guard with the single
  /// one-directional clause `guard => gate`. The gate itself is a Tseitin
  /// biconditional — branching (or assuming) its NEGATION asserts real
  /// semantics (e.g. "the run is not at the final pc"), whereas the pure
  /// guard is harmless at either polarity once its query retires (see
  /// run_query's phase reset). Fresh vars start with a default-off
  /// saved phase, so an unused guard never switches its artifact on.
  static Lit guard(Ctx& cx, Lit gate) {
    const Lit s = sat::pos(cx.solver.new_var());
    cx.solver.add_clause(~s, gate);
    return s;
  }

  void ensure_exact() {
    if (exact) return;
    exact = std::make_unique<ExactCtx>();
    exact->frame0 = build_frame0(exact->solver, exact->bb);
    exact->base = mark(exact->solver);
  }

  /// Path condition of one whole-run transition sequence: functional frame
  /// substitution per step, guards conjoined into one activation literal.
  const Activation& exact_path_activation(
      const std::vector<std::uint32_t>& seq) {
    ExactCtx& cx = *exact;
    const auto it = cx.paths.find(seq);
    if (it != cx.paths.end()) return it->second;

    // Resume from the longest already-built prefix of this sequence.
    std::vector<BitVec> frame;
    std::vector<Lit> guards;
    Counts cost;
    std::vector<VarRange> ranges;
    std::size_t built = 0;
    {
      std::vector<std::uint32_t> probe = seq;
      while (!probe.empty()) {
        const auto pit = cx.prefixes.find(probe);
        if (pit != cx.prefixes.end()) {
          frame = pit->second.frame;
          guards = pit->second.guards;
          cost = pit->second.cost;
          ranges = pit->second.ranges;
          built = probe.size();
          break;
        }
        probe.pop_back();
      }
      if (built == 0) frame = cx.frame0;
    }

    std::vector<std::uint32_t> prefix(seq.begin(),
                                      seq.begin() +
                                          static_cast<std::ptrdiff_t>(built));
    for (std::size_t k = built; k < seq.size(); ++k) {
      const std::uint32_t tid = seq[k];
      const Counts s0 = mark(cx.solver);
      const std::uint32_t v0 = var_mark(cx);
      const Transition& t = ts.transitions[tid];
      ExprBlaster eb(cx.bb, frame, ts);
      if (t.guard) guards.push_back(eb.truth(*t.guard));
      std::vector<BitVec> next = frame;
      for (const tsys::Update& u : t.updates) {
        const VarInfo& v = ts.vars[u.var];
        BitVec enc = cx.bb.resize(eb.value(*u.value), v.bits());
        enc.is_signed = v.is_signed_encoding();
        next[u.var] = std::move(enc);
      }
      frame = std::move(next);
      accumulate(cost, delta(s0, mark(cx.solver)));
      const std::uint32_t v1 = var_mark(cx);
      if (v1 > v0) {
        ranges.emplace_back(v0, v1);
        cx.artifact_ranges.emplace_back(v0, v1);
      }
      prefix.push_back(tid);
      cx.prefixes.emplace(prefix,
                          ExactCtx::Prefix{frame, guards, cost, ranges});
    }

    const Counts g0 = mark(cx.solver);
    const std::uint32_t gv0 = var_mark(cx);
    Activation a;
    // and_all yields true_lit() for a guard-free path; the wrap still
    // applies so every path is switched by its own pure guard.
    a.lit = guard(cx, cx.bb.and_all(guards));
    a.cost = cost;
    accumulate(a.cost, delta(g0, mark(cx.solver)));
    a.ranges = std::move(ranges);
    record_range(cx, a, gv0);
    return cx.paths.emplace(seq, a).first->second;
  }

  void ensure_pc() {
    if (pc) return;
    pc = std::make_unique<PcCtx>();
    PcCtx& cx = *pc;
    cx.frame0 = build_frame0(cx.solver, cx.bb);
    cx.frame = cx.frame0;
    cx.pc = cx.bb.constant(ts.initial, pcw, false);
    cx.final_pc = cx.bb.constant(ts.final, pcw, false);
    cx.pcs.push_back(cx.pc);
    cx.prefix.push_back(mark(cx.solver));
  }

  /// Unrolls the transition relation through `depth` steps. Unlike the
  /// one-shot encoding this never prunes fire literals per query — policy
  /// prunings are separate activation artifacts — so the base circuit is
  /// identical for every query at the same depth.
  void extend_unroll(std::uint32_t depth) {
    PcCtx& cx = *pc;
    while (cx.depth_built < depth) {
      // prefix[d] must be prefix[d-1] plus THIS step's own build cost, not
      // a cumulative solver mark: steps are built lazily, so a cumulative
      // mark taken now would absorb activation artifacts earlier queries
      // added in between, making reported CNF sizes depend on query order.
      const Counts step0 = mark(cx.solver);
      ExprBlaster eb(cx.bb, cx.frame, ts);

      // fire literal per transition
      std::vector<Lit> fire(ts.transitions.size());
      for (std::size_t i = 0; i < ts.transitions.size(); ++i) {
        const Transition& t = ts.transitions[i];
        const Lit at = cx.bb.eq(cx.pc, cx.bb.constant(t.from, pcw, false));
        const Lit g = t.guard ? eb.truth(*t.guard) : cx.bb.true_lit();
        fire[i] = cx.bb.and_gate(at, g);
      }

      // next-state: default stutter, overridden by firing transitions
      std::vector<BitVec> next = cx.frame;
      BitVec next_pc = cx.pc;
      for (std::size_t i = 0; i < ts.transitions.size(); ++i) {
        const Transition& t = ts.transitions[i];
        next_pc = cx.bb.mux(fire[i], cx.bb.constant(t.to, pcw, false),
                            next_pc);
        for (const tsys::Update& u : t.updates) {
          const VarInfo& v = ts.vars[u.var];
          BitVec rhs = eb.value(*u.value);
          BitVec enc = cx.bb.resize(rhs, v.bits());
          enc.is_signed = v.is_signed_encoding();
          next[u.var] = cx.bb.mux(fire[i], enc, next[u.var]);
        }
      }
      cx.fires.push_back(std::move(fire));
      cx.frame = std::move(next);
      cx.pc = std::move(next_pc);
      ++cx.depth_built;
      cx.pcs.push_back(cx.pc);
      Counts through = cx.prefix.back();
      accumulate(through, delta(step0, mark(cx.solver)));
      cx.prefix.push_back(through);
    }
  }

  /// Closes an artifact's construction window: records the variable range
  /// [v0, num_vars) on the activation and in the context's registry.
  static void record_range(Ctx& cx, Activation& a, std::uint32_t v0) {
    const auto v1 = static_cast<std::uint32_t>(cx.solver.num_vars());
    if (v1 > v0) {
      a.ranges.emplace_back(v0, v1);
      cx.artifact_ranges.emplace_back(v0, v1);
    }
  }

  static std::uint32_t var_mark(const Ctx& cx) {
    return static_cast<std::uint32_t>(cx.solver.num_vars());
  }

  /// Goal "the run reaches the final location within d steps".
  const Activation& term_activation(std::uint32_t d) {
    PcCtx& cx = *pc;
    const auto it = cx.term.find(d);
    if (it != cx.term.end()) return it->second;
    const Counts m0 = mark(cx.solver);
    const std::uint32_t v0 = var_mark(cx);
    Activation a;
    a.lit = guard(cx, cx.bb.eq(cx.pcs[d], cx.final_pc));
    a.cost = delta(m0, mark(cx.solver));
    record_range(cx, a, v0);
    return cx.term.emplace(d, a).first->second;
  }

  /// Policy pruning "transition i never fires in the first d steps".
  const Activation& disallow_activation(std::uint32_t i, std::uint32_t d) {
    PcCtx& cx = *pc;
    const auto key = std::make_pair(i, d);
    const auto it = cx.disallow.find(key);
    if (it != cx.disallow.end()) return it->second;
    const Counts m0 = mark(cx.solver);
    const std::uint32_t v0 = var_mark(cx);
    const Lit s = sat::pos(cx.solver.new_var());
    for (std::uint32_t step = 0; step < d; ++step)
      cx.solver.add_clause(~s, ~cx.fires[step][i]);
    Activation a;
    a.lit = s;
    a.cost = delta(m0, mark(cx.solver));
    record_range(cx, a, v0);
    return cx.disallow.emplace(key, a).first->second;
  }

  /// Goal "decision edge (block, succ) fires at least once in d steps".
  const Activation& took_activation(std::uint32_t block, std::uint32_t succ,
                                    std::uint32_t d) {
    PcCtx& cx = *pc;
    const auto key = std::make_tuple(block, succ, d);
    const auto it = cx.took.find(key);
    if (it != cx.took.end()) return it->second;
    const Counts m0 = mark(cx.solver);
    const std::uint32_t v0 = var_mark(cx);
    Lit taken = cx.bb.false_lit();
    for (std::uint32_t step = 0; step < d; ++step)
      for (std::size_t i = 0; i < ts.transitions.size(); ++i) {
        const Transition& t = ts.transitions[i];
        if (t.origin_block == block && t.origin_succ == succ)
          taken = cx.bb.or_gate(taken, cx.fires[step][i]);
      }
    Activation a;
    a.lit = guard(cx, taken);
    a.cost = delta(m0, mark(cx.solver));
    record_range(cx, a, v0);
    return cx.took.emplace(key, a).first->second;
  }

  /// Anchored window "some step offset fires `seq` consecutively within d
  /// steps". Caller guarantees seq fits (seq.size() <= d).
  const Activation& window_activation(const std::vector<std::uint32_t>& seq,
                                      std::uint32_t d) {
    PcCtx& cx = *pc;
    const auto key = std::make_pair(seq, d);
    const auto it = cx.window.find(key);
    if (it != cx.window.end()) return it->second;
    const Counts m0 = mark(cx.solver);
    const std::uint32_t v0 = var_mark(cx);
    // Each step fires at most one transition, so a satisfied window is a
    // real consecutive execution of the walk.
    std::vector<Lit> picks;
    std::vector<Lit> window(seq.size());
    for (std::size_t t = 0; t + seq.size() <= d; ++t) {
      for (std::size_t j = 0; j < seq.size(); ++j)
        window[j] = cx.fires[t + j][seq[j]];
      picks.push_back(cx.bb.and_all(window));
    }
    const Lit s = sat::pos(cx.solver.new_var());
    std::vector<Lit> clause{~s};
    clause.insert(clause.end(), picks.begin(), picks.end());
    cx.solver.add_clause(std::move(clause));
    Activation a;
    a.lit = s;
    a.cost = delta(m0, mark(cx.solver));
    record_range(cx, a, v0);
    return cx.window.emplace(key, a).first->second;
  }

  /// Schedule-aware depth for an anchored window: the window's first
  /// decision cannot fire before BFS-many steps from the initial location,
  /// so `distance + window length` bounds the shallowest unroll that can
  /// contain it at its earliest offset. Unreachable anchors keep the full
  /// depth (the solver then proves the window infeasible there).
  std::uint32_t shallow_depth(const std::vector<std::uint32_t>& seq) {
    if (dist.empty()) {
      dist.assign(ts.num_locs, UINT32_MAX);
      std::vector<std::vector<tsys::Loc>> adj(ts.num_locs);
      for (const Transition& t : ts.transitions) adj[t.from].push_back(t.to);
      std::deque<tsys::Loc> queue;
      dist[ts.initial] = 0;
      queue.push_back(ts.initial);
      while (!queue.empty()) {
        const tsys::Loc cur = queue.front();
        queue.pop_front();
        for (const tsys::Loc nxt : adj[cur])
          if (dist[nxt] == UINT32_MAX) {
            dist[nxt] = dist[cur] + 1;
            queue.push_back(nxt);
          }
      }
    }
    const std::uint32_t d = dist[ts.transitions[seq[0]].from];
    if (d == UINT32_MAX) return full_depth;
    const std::uint64_t want = std::uint64_t{d} + seq.size();
    return want >= full_depth ? full_depth
                              : static_cast<std::uint32_t>(want);
  }

  /// One solver round: solve under assumptions, fill the result's status,
  /// CNF accounting, witness (minimised under the same assumptions) and
  /// replay. Solver effort deltas accumulate so escalating queries report
  /// the total across phases.
  void run_query(Ctx& cx, const std::vector<Lit>& assumptions,
                 const Counts& cnf, std::uint64_t replay_cap,
                 const std::vector<VarRange>& active, BmcResult& result) {
    // Park every artifact circuit this query does not activate in the
    // deferred decision tier: their variables are then assigned by
    // propagation (or last, trivially) instead of being branched early,
    // where a dead gate output constrains live state backwards through
    // its circuit. On a fresh session the registry equals the active set,
    // so this is a no-op and warm query 1 matches fresh exactly.
    for (const VarRange& r : cx.artifact_ranges)
      for (std::uint32_t v = r.first; v < r.second; ++v)
        cx.solver.set_deferred(static_cast<sat::Var>(v), true);
    for (const VarRange& r : active)
      for (std::uint32_t v = r.first; v < r.second; ++v)
        cx.solver.set_deferred(static_cast<sat::Var>(v), false);
    // Start each query from fresh-solver heuristics (the minimisation
    // solves inside the query then evolve them normally): carried-over
    // activities and phases belong to a different query's artifacts and
    // demonstrably cost conflicts rather than saving them.
    cx.solver.reset_heuristics();
    const sat::SolverStats before = cx.solver.stats();
    const sat::Result r = cx.solver.solve(assumptions, opts.conflict_budget);
    result.cnf_vars = cnf.vars;
    result.cnf_clauses = cnf.clauses;
    result.memory_bytes = cx.solver.stats().memory_bytes;

    if (r == sat::Result::Unknown) {
      result.status = BmcStatus::Unknown;
    } else if (r == sat::Result::Unsat) {
      result.status = BmcStatus::Infeasible;
    } else {
      result.status = BmcStatus::TestData;
      result.initial_values.resize(ts.vars.size());
      for (std::size_t v = 0; v < ts.vars.size(); ++v)
        result.initial_values[v] = cx.bb.decode(cx.frame0[v]);
      // Stabilise the test datum: CNF statistics were captured above, so
      // the minimisation's extra comparison circuits and solver calls do
      // not perturb the reported numbers.
      if (opts.minimize_witness)
        minimize_witness(cx.solver, cx.bb, ts, cx.frame0, opts, assumptions,
                         cx.pin_eq_cache, cx.pin_le_cache, cx.artifact_ranges,
                         result.initial_values);
      replay(result, replay_cap);
    }
    // Retire the query's activation guards: solving just saved their
    // phases as ON, so without this later queries would branch stale
    // guards back on and drag finished artifacts' constraints into
    // unrelated searches. Reset to the harmless polarity, making a stale
    // guard one cheap default-off decision.
    for (const Lit a : assumptions) cx.solver.set_phase(a.var(), a.sign());

    const sat::SolverStats& after = cx.solver.stats();
    result.solver_decisions += after.decisions - before.decisions;
    result.solver_propagations += after.propagations - before.propagations;
    result.solver_conflicts += after.conflicts - before.conflicts;
    result.solver_restarts += after.restarts - before.restarts;
  }

  /// Counts witness steps by executing the deterministic system from the
  /// initial values, recording the per-iteration decision trace as we go.
  void replay(BmcResult& result, std::uint64_t replay_cap) const {
    result.steps = 0;
    result.decision_trace.clear();
    std::vector<std::int64_t> env = result.initial_values;
    tsys::Loc cur = ts.initial;
    const auto out = ts.out_index();
    std::uint64_t guard_steps = 0;
    while (cur != ts.final && guard_steps++ < replay_cap) {
      const Transition* taken = nullptr;
      for (const Transition* t : out[cur]) {
        if (!t->guard || tsys::eval_texpr(*t->guard, env) != 0) {
          taken = t;
          break;
        }
      }
      if (!taken) break;
      if (taken->is_decision())
        result.decision_trace.push_back(
            cfg::EdgeRef{taken->origin_block, taken->origin_succ});
      std::vector<std::int64_t> next_env = env;
      for (const tsys::Update& u : taken->updates)
        next_env[u.var] =
            minic::wrap_to_type(tsys::eval_texpr(*u.value, env),
                                ts.vars[u.var].type);
      env = std::move(next_env);
      cur = taken->to;
      ++result.steps;
    }
    // A truncated replay (never at a complete depth) has no trustworthy
    // trace; drop it rather than hand callers a prefix.
    if (cur != ts.final) result.decision_trace.clear();
  }
};

Session::Session(const TransitionSystem& ts, const BmcOptions& opts)
    : impl_(std::make_unique<Impl>(ts, opts)) {}

Session::~Session() = default;

BmcResult Session::solve(const BmcQuery& query) {
  const auto t_start = std::chrono::steady_clock::now();
  Impl& im = *impl_;
  BmcResult result;

  trace::TraceSpan span("bmc.query", "bmc");
  const std::uint32_t depth = im.full_depth;
  result.unroll_depth = depth;
  const auto finish = [&]() -> BmcResult& {
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();
    ++stats_.queries;
    stats_.solver_decisions += result.solver_decisions;
    stats_.solver_propagations += result.solver_propagations;
    stats_.solver_conflicts += result.solver_conflicts;
    stats_.solver_restarts += result.solver_restarts;
    if (trace::enabled()) {
      span.arg("function", im.ts.name);
      span.arg("segment", trace::current_segment());
      span.arg("depth", static_cast<std::int64_t>(result.unroll_depth));
      span.arg("verdict", result.status == BmcStatus::TestData ? "feasible"
                          : result.status == BmcStatus::Infeasible
                              ? "infeasible"
                              : "unknown");
      span.arg("conflicts",
               static_cast<std::int64_t>(result.solver_conflicts));
    }
    // Aggregate view for serve `metrics` / `--progress`; the per-session
    // stats_ above stay the report source (determinism contract in
    // support/trace.h).
    trace::MetricsRegistry& reg = trace::MetricsRegistry::instance();
    static trace::Counter& queries = reg.counter("session.queries");
    static trace::Counter& decisions = reg.counter("solver.decisions");
    static trace::Counter& propagations = reg.counter("solver.propagations");
    static trace::Counter& conflicts = reg.counter("solver.conflicts");
    static trace::Counter& restarts = reg.counter("solver.restarts");
    queries.add();
    decisions.add(result.solver_decisions);
    propagations.add(result.solver_propagations);
    conflicts.add(result.solver_conflicts);
    restarts.add(result.solver_restarts);
    return result;
  };

  // Resolve a per-iteration schedule into its unique transition sequence.
  // The walk knows the exact number of steps the schedule needs, so with
  // an automatic depth it is capped only structurally (every inter-choice
  // stretch is acyclic, hence shorter than num_locs); a user-forced
  // max_steps stays a hard budget. A failed walk falls back to the legacy
  // forced-choice policy; when the schedule revisits a decision with
  // differing outcomes that policy cannot express it, so the query is
  // conclusively inconclusive.
  std::optional<std::vector<std::uint32_t>> seq;
  std::vector<cfg::EdgeRef> policy = query.forced_choices;
  if (query.schedule) {
    const std::uint64_t walk_cap =
        im.opts.max_steps > 0
            ? depth
            : static_cast<std::uint64_t>(im.ts.num_locs + 1) *
                  (query.schedule->choices.size() + 2);
    seq = walk_schedule(im.ts, *query.schedule, walk_cap);
    if (!seq) {
      if (schedule_conflicts(query.schedule->choices)) return finish();
      policy = query.schedule->choices;  // degenerate schedule: global pins
    }
  }

  if (seq && !query.schedule->anchored) {
    // ------------------------------------------------- exact path encoding
    // The whole-run schedule pins the complete transition sequence, so no
    // program counter is needed: step t executes transition seq[t] — the
    // conjoined guards become the path's activation literal and its
    // updates apply unconditionally. The CNF is exactly the path
    // condition over the symbolic initial state; UNSAT proves the path
    // infeasible at any depth.
    im.ensure_exact();
    Session::Impl::ExactCtx& cx = *im.exact;
    const Activation& act = im.exact_path_activation(*seq);
    result.unroll_depth = seq->size();
    result.exact_path = true;
    result.schedule_realised = true;
    Counts total = cx.base;
    accumulate(total, act.cost);
    im.run_query(cx, {act.lit}, total,
                 std::max<std::uint64_t>(depth, result.unroll_depth),
                 act.ranges, result);
    return finish();
  }

  const bool anchored_run = seq.has_value();
  if (anchored_run && seq->size() > depth)
    return finish();  // window longer than the unroll

  im.ensure_pc();
  Session::Impl::PcCtx& cx = *im.pc;

  if (!anchored_run) {
    // ----------------------------------------- global policy encoding
    // Goal: the run terminates within the unroll and the must-take edge
    // fired; disallowed decision edges (same origin block as a forced
    // choice, different successor) never fire.
    im.extend_unroll(depth);
    Counts total = cx.prefix[depth];
    std::vector<Lit> assumptions;
    std::vector<VarRange> active;
    const Activation& term = im.term_activation(depth);
    assumptions.push_back(term.lit);
    accumulate(total, term.cost);
    active.insert(active.end(), term.ranges.begin(), term.ranges.end());
    for (std::size_t i = 0; i < im.ts.transitions.size(); ++i) {
      const Transition& t = im.ts.transitions[i];
      if (!t.is_decision()) continue;
      bool disallowed = false;
      for (const cfg::EdgeRef& c : policy)
        if (t.origin_block == c.from && t.origin_succ != c.succ_index) {
          disallowed = true;
          break;
        }
      if (!disallowed) continue;
      const Activation& a =
          im.disallow_activation(static_cast<std::uint32_t>(i), depth);
      assumptions.push_back(a.lit);
      accumulate(total, a.cost);
      active.insert(active.end(), a.ranges.begin(), a.ranges.end());
    }
    if (query.must_take) {
      const Activation& a = im.took_activation(
          query.must_take->from, query.must_take->succ_index, depth);
      assumptions.push_back(a.lit);
      accumulate(total, a.cost);
      active.insert(active.end(), a.ranges.begin(), a.ranges.end());
    }
    im.run_query(cx, assumptions, total, depth, active, result);
    return finish();
  }

  // ------------------------------------------- anchored window encoding
  // Anchored window: SOME traversal follows the schedule — at least one
  // step offset fires the walked transitions consecutively. When the
  // caller proved every run terminates within the full depth
  // (opts.runs_terminate) the termination conjunct is redundant and the
  // window is first tried at the schedule-aware shallow depth; UNSAT
  // there proves nothing (the window may fire later), so it escalates to
  // the full depth, where UNSAT is conclusive.
  std::vector<std::uint32_t> phases;
  if (im.opts.runs_terminate) {
    const std::uint32_t d0 = im.shallow_depth(*seq);
    if (d0 < depth) phases.push_back(d0);
  }
  phases.push_back(depth);
  result.schedule_realised = true;
  Counts window_cost;
  for (std::size_t pi = 0; pi < phases.size(); ++pi) {
    const std::uint32_t d = phases[pi];
    im.extend_unroll(d);
    const Activation& w = im.window_activation(*seq, d);
    accumulate(window_cost, w.cost);
    Counts total = cx.prefix[d];
    accumulate(total, window_cost);
    std::vector<Lit> assumptions{w.lit};
    std::vector<VarRange> active(w.ranges);
    if (!im.opts.runs_terminate) {
      const Activation& term = im.term_activation(d);
      assumptions.push_back(term.lit);
      accumulate(total, term.cost);
      active.insert(active.end(), term.ranges.begin(), term.ranges.end());
    }
    result.unroll_depth = d;
    im.run_query(cx, assumptions, total,
                 std::max<std::uint64_t>(depth, d), active, result);
    if (result.status != BmcStatus::Infeasible || pi + 1 == phases.size())
      break;
  }
  return finish();
}

}  // namespace tmg::bmc
