#include "bmc/bmc.h"

#include <cassert>
#include <chrono>
#include <unordered_map>

#include "bmc/bitblast.h"

namespace tmg::bmc {

using minic::Type;
using sat::Lit;
using tsys::TExpr;
using tsys::TExprKind;
using tsys::Transition;
using tsys::TransitionSystem;
using tsys::VarId;
using tsys::VarInfo;

namespace {

/// Bit-blasts transition-system expressions against a per-step frame of
/// variable bit-vectors.
class ExprBlaster {
 public:
  ExprBlaster(BitBlaster& bb, const std::vector<BitVec>& frame,
              const TransitionSystem& ts)
      : bb_(bb), frame_(frame), ts_(ts) {}

  /// Value of `e` as a bit-vector of its type's width.
  BitVec value(const TExpr& e) {
    const int w = minic::type_bits(e.type);
    const bool sg = minic::type_is_signed(e.type);
    switch (e.kind) {
      case TExprKind::Const:
        return bb_.constant(e.value, w, sg);
      case TExprKind::Var: {
        // variables are stored at their (possibly narrowed) encoding width
        BitVec enc = frame_[e.var];
        enc.is_signed = ts_.vars[e.var].is_signed_encoding();
        BitVec v = bb_.resize(enc, w);
        v.is_signed = sg;
        return v;
      }
      case TExprKind::Unary: {
        BitVec a = value(*e.args[0]);
        switch (e.un_op) {
          case minic::UnOp::Neg:
            return BitBlaster::retag(bb_.resize(bb_.neg(promote(a, e.type)), w), sg);
          case minic::UnOp::BitNot:
            return BitBlaster::retag(bb_.bit_not(promote(a, e.type)), sg);
          case minic::UnOp::Plus:
            return BitBlaster::retag(bb_.resize(a, w), sg);
          case minic::UnOp::LogicalNot:
            return bb_.from_lit(~bb_.reduce_or(a));
        }
        break;
      }
      case TExprKind::Binary:
        return binary(e);
      case TExprKind::Cond: {
        const Lit c = bb_.reduce_or(value(*e.args[0]));
        BitVec t = bb_.resize(value(*e.args[1]), w);
        BitVec f = bb_.resize(value(*e.args[2]), w);
        return BitBlaster::retag(bb_.mux(c, t, f), sg);
      }
    }
    return bb_.constant(0, w, sg);
  }

  /// Condition literal for `e != 0`.
  Lit truth(const TExpr& e) { return bb_.reduce_or(value(e)); }

 private:
  /// Extends `a` to the width of `type`, keeping a's signedness for fill.
  BitVec promote(const BitVec& a, Type type) {
    return bb_.resize(a, minic::type_bits(type));
  }

  BitVec binary(const TExpr& e) {
    using minic::BinOp;
    const int w = minic::type_bits(e.type);
    const bool sg = minic::type_is_signed(e.type);

    if (e.bin_op == BinOp::LogicalAnd || e.bin_op == BinOp::LogicalOr) {
      const Lit l = truth(*e.args[0]);
      const Lit r = truth(*e.args[1]);
      return bb_.from_lit(e.bin_op == BinOp::LogicalAnd ? bb_.and_gate(l, r)
                                                        : bb_.or_gate(l, r));
    }

    // promote operands to their common arithmetic type
    const Type ot =
        minic::arith_result(e.args[0]->type, e.args[1]->type);
    const int ow = minic::type_bits(ot);
    const bool osg = minic::type_is_signed(ot);
    BitVec a = bb_.resize(value(*e.args[0]), ow);
    BitVec b = bb_.resize(value(*e.args[1]), ow);
    a.is_signed = osg;
    b.is_signed = osg;

    switch (e.bin_op) {
      case BinOp::Add:
        return BitBlaster::retag(bb_.resize(bb_.add(a, b), w), sg);
      case BinOp::Sub:
        return BitBlaster::retag(bb_.resize(bb_.sub(a, b), w), sg);
      case BinOp::Mul:
        return BitBlaster::retag(bb_.resize(bb_.mul(a, b), w), sg);
      case BinOp::Div:
        return BitBlaster::retag(bb_.resize(bb_.div(a, b), w), sg);
      case BinOp::Rem:
        return BitBlaster::retag(bb_.resize(bb_.rem(a, b), w), sg);
      case BinOp::BitAnd:
        return BitBlaster::retag(bb_.resize(bb_.bit_and(a, b), w), sg);
      case BinOp::BitOr:
        return BitBlaster::retag(bb_.resize(bb_.bit_or(a, b), w), sg);
      case BinOp::BitXor:
        return BitBlaster::retag(bb_.resize(bb_.bit_xor(a, b), w), sg);
      case BinOp::Shl: {
        // shift ops promote the LEFT operand only
        BitVec base = bb_.resize(value(*e.args[0]),
                                 minic::type_bits(e.type));
        base.is_signed = sg;
        BitVec amt = value(*e.args[1]);
        amt.is_signed = minic::type_is_signed(e.args[1]->type);
        return BitBlaster::retag(bb_.shl(base, amt), sg);
      }
      case BinOp::Shr: {
        BitVec base = bb_.resize(value(*e.args[0]),
                                 minic::type_bits(e.type));
        base.is_signed = minic::type_is_signed(e.args[0]->type);
        BitVec amt = value(*e.args[1]);
        amt.is_signed = minic::type_is_signed(e.args[1]->type);
        BitVec r = bb_.shr(base, amt);
        return BitBlaster::retag(bb_.resize(r, w), sg);
      }
      case BinOp::Eq:
        return bb_.from_lit(bb_.eq(a, b));
      case BinOp::Ne:
        return bb_.from_lit(bb_.ne(a, b));
      case BinOp::Lt:
        return bb_.from_lit(bb_.lt(a, b));
      case BinOp::Le:
        return bb_.from_lit(bb_.le(a, b));
      case BinOp::Gt:
        return bb_.from_lit(bb_.lt(b, a));
      case BinOp::Ge:
        return bb_.from_lit(bb_.le(b, a));
      default:
        break;
    }
    return bb_.constant(0, w, sg);
  }

  BitBlaster& bb_;
  const std::vector<BitVec>& frame_;
  const TransitionSystem& ts_;
};

int loc_bits(const TransitionSystem& ts) {
  int bits = 1;
  while ((std::uint64_t{1} << bits) < ts.num_locs) ++bits;
  return bits;
}

/// Witness minimisation (BmcOptions::minimize_witness): greedily pins
/// every free variable, in VarId order, to its preferred value — 0 when
/// the domain contains it, else the smallest feasible value found by
/// binary search — re-solving under assumption pins so earlier choices
/// constrain later ones. `model` holds the current SAT model's step-0
/// values and is updated in place; on conflict-budget exhaustion the
/// (still valid, prefix-minimised) current model is kept.
void minimize_witness(sat::Solver& solver, BitBlaster& bb,
                      const TransitionSystem& ts,
                      const std::vector<BitVec>& frame0,
                      const BmcOptions& opts,
                      std::vector<std::int64_t>& model) {
  std::vector<Lit> pins;
  const auto snapshot = [&] {
    for (std::size_t v = 0; v < ts.vars.size(); ++v)
      model[v] = bb.decode(frame0[v]);
  };

  for (std::size_t v = 0; v < ts.vars.size(); ++v) {
    const VarInfo& vi = ts.vars[v];
    if (!vi.is_input && vi.has_init) continue;  // constant, nothing to pin
    const int w = vi.bits();
    const bool sg = vi.is_signed_encoding();
    const auto pin_eq = [&](std::int64_t value) {
      return bb.eq(frame0[v], bb.constant(value, w, sg));
    };

    const std::int64_t dom_lo = vi.init_lo();
    const std::int64_t dom_hi = vi.init_hi();
    const std::int64_t anchor = (dom_lo <= 0 && dom_hi >= 0) ? 0 : dom_lo;
    if (model[v] == anchor) {
      pins.push_back(pin_eq(anchor));
      continue;
    }

    pins.push_back(pin_eq(anchor));
    const sat::Result ra = solver.solve(pins, opts.conflict_budget);
    if (ra == sat::Result::Sat) {
      snapshot();
      continue;
    }
    pins.pop_back();
    if (ra == sat::Result::Unknown) return;  // budget: keep current model

    // The anchor is infeasible under the earlier pins; find the smallest
    // feasible value. Invariant: some feasible value lies in [lo, hi]
    // (the current model's value does).
    std::int64_t lo = dom_lo;
    std::int64_t hi = model[v];
    while (lo < hi) {
      // Unsigned midpoint: `hi - lo` would overflow signed arithmetic on
      // a full-int64 domain (same defence as mc::explore's cardinality).
      const std::int64_t mid = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(lo) +
          (static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo)) /
              2);
      pins.push_back(bb.le(frame0[v], bb.constant(mid, w, sg)));
      const sat::Result rm = solver.solve(pins, opts.conflict_budget);
      pins.pop_back();
      if (rm == sat::Result::Sat) {
        snapshot();
        hi = model[v];  // the fresh model is feasible and <= mid
      } else if (rm == sat::Result::Unsat) {
        lo = mid + 1;
      } else {
        return;  // budget: keep current model
      }
    }
    if (lo != model[v]) {
      pins.push_back(pin_eq(lo));
      if (solver.solve(pins, opts.conflict_budget) != sat::Result::Sat) {
        pins.pop_back();  // cannot happen semantically; stay safe
        return;
      }
      snapshot();
    } else {
      pins.push_back(pin_eq(lo));
    }
  }
}

/// A per-iteration schedule degenerates to a global forced-choice policy
/// only when it never revisits a decision block with a different outcome.
bool schedule_conflicts(const std::vector<cfg::EdgeRef>& choices) {
  std::unordered_map<cfg::BlockId, std::uint32_t> seen;
  for (const cfg::EdgeRef& c : choices) {
    auto [it, inserted] = seen.emplace(c.from, c.succ_index);
    if (!inserted && it->second != c.succ_index) return true;
  }
  return false;
}

}  // namespace

std::optional<std::vector<std::uint32_t>> walk_schedule(
    const TransitionSystem& ts, const DecisionSchedule& schedule,
    std::uint64_t max_len) {
  const auto out = ts.out_index();
  std::vector<std::uint32_t> seq;
  std::size_t k = 0;

  tsys::Loc loc = ts.initial;
  if (schedule.anchored) {
    // Anchored walks start at the schedule's first decision transition
    // (the region is single entry, so firing that decision implies the
    // region was entered and the decision-free prefix inside it is the
    // unique one).
    if (schedule.choices.empty()) return std::nullopt;
    const Transition* first = nullptr;
    for (const Transition& t : ts.transitions) {
      if (!t.is_decision() || t.origin_block != schedule.choices[0].from ||
          t.origin_succ != schedule.choices[0].succ_index)
        continue;
      if (first != nullptr) return std::nullopt;  // ambiguous provenance
      first = &t;
    }
    if (first == nullptr) return std::nullopt;
    seq.push_back(first->id);
    loc = first->to;
    k = 1;
  }

  while (true) {
    if (schedule.anchored) {
      if (k == schedule.choices.size()) break;  // window complete
    } else if (loc == ts.final) {
      break;
    }
    if (seq.size() >= max_len) return std::nullopt;
    const std::vector<const Transition*>& outs = out[loc];
    if (outs.empty()) return std::nullopt;  // stuck before the goal
    const Transition* taken = nullptr;
    if (outs[0]->is_decision()) {
      if (k == schedule.choices.size()) return std::nullopt;
      const cfg::EdgeRef& want = schedule.choices[k];
      for (const Transition* t : outs) {
        if (!t->is_decision() || t->origin_block != want.from ||
            t->origin_succ != want.succ_index)
          continue;
        if (taken != nullptr) return std::nullopt;  // ambiguous provenance
        taken = t;
      }
      if (taken == nullptr) return std::nullopt;  // structural mismatch
      ++k;
    } else {
      if (outs.size() != 1) return std::nullopt;  // translation invariant
      taken = outs[0];
    }
    seq.push_back(taken->id);
    loc = taken->to;
  }
  if (k != schedule.choices.size()) return std::nullopt;
  return seq;
}

BmcResult solve(const TransitionSystem& ts, const BmcQuery& query,
                const BmcOptions& opts) {
  const auto t_start = std::chrono::steady_clock::now();
  BmcResult result;

  const std::uint32_t depth =
      opts.max_steps > 0 ? opts.max_steps : ts.num_locs + 1;
  result.unroll_depth = depth;
  const auto finish = [&]() -> BmcResult& {
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();
    return result;
  };

  // Resolve a per-iteration schedule into its unique transition sequence.
  // The walk knows the exact number of steps the schedule needs, so with
  // an automatic depth it is capped only structurally (every inter-choice
  // stretch is acyclic, hence shorter than num_locs); a user-forced
  // max_steps stays a hard budget. A failed walk falls back to the legacy
  // forced-choice policy; when the schedule revisits a decision with
  // differing outcomes that policy cannot express it, so the query is
  // conclusively inconclusive.
  std::optional<std::vector<std::uint32_t>> seq;
  std::vector<cfg::EdgeRef> policy = query.forced_choices;
  if (query.schedule) {
    const std::uint64_t walk_cap =
        opts.max_steps > 0
            ? depth
            : static_cast<std::uint64_t>(ts.num_locs + 1) *
                  (query.schedule->choices.size() + 2);
    seq = walk_schedule(ts, *query.schedule, walk_cap);
    if (!seq) {
      if (schedule_conflicts(query.schedule->choices)) return finish();
      policy = query.schedule->choices;  // degenerate schedule: global pins
    }
  }

  sat::Solver solver;
  BitBlaster bb(solver);

  const int pcw = loc_bits(ts);

  // ------------------------------------------------------------ frame 0
  std::vector<BitVec> frame;
  frame.reserve(ts.vars.size());
  for (const VarInfo& v : ts.vars) {
    const int w = v.bits();
    const bool sg = v.is_signed_encoding();
    if (!v.is_input && v.has_init) {
      frame.push_back(bb.constant(v.init, w, sg));
      continue;
    }
    BitVec x = bb.fresh(w, sg);
    // Constrain the free initial value to the declared domain (the
    // encoding may admit more values — it must cover later stores too,
    // but test data and uninitialised state start inside the domain).
    const BitVec lo = bb.constant(v.init_lo(), w, sg);
    const BitVec hi = bb.constant(v.init_hi(), w, sg);
    solver.add_clause(bb.le(lo, x));
    solver.add_clause(bb.le(x, hi));
    frame.push_back(std::move(x));
  }
  const std::vector<BitVec> frame0 = frame;  // for test-data extraction

  if (seq && !query.schedule->anchored) {
    // ------------------------------------------------- exact path encoding
    // The whole-run schedule pins the complete transition sequence, so no
    // program counter is needed: step t executes transition seq[t] — its
    // guard becomes a hard clause and its updates apply unconditionally.
    // The CNF is exactly the path condition over the symbolic initial
    // state; UNSAT proves the path infeasible at any depth.
    for (const std::uint32_t tid : *seq) {
      const Transition& t = ts.transitions[tid];
      ExprBlaster eb(bb, frame, ts);
      if (t.guard) solver.add_clause(eb.truth(*t.guard));
      std::vector<BitVec> next = frame;
      for (const tsys::Update& u : t.updates) {
        const VarInfo& v = ts.vars[u.var];
        BitVec enc = bb.resize(eb.value(*u.value), v.bits());
        enc.is_signed = v.is_signed_encoding();
        next[u.var] = std::move(enc);
      }
      frame = std::move(next);
    }
    result.unroll_depth = seq->size();
    result.exact_path = true;
    result.schedule_realised = true;
  } else {
    BitVec pc = bb.constant(ts.initial, pcw, false);
    const BitVec final_pc = bb.constant(ts.final, pcw, false);
    const bool anchored_run = seq.has_value();

    // Disallowed decision edges: same origin block as a forced choice but
    // a different successor index. Only the policy encoding prunes edges;
    // an anchored schedule leaves every step free outside its window.
    auto is_disallowed = [&](const Transition& t) {
      if (anchored_run || !t.is_decision()) return false;
      for (const cfg::EdgeRef& c : policy)
        if (t.origin_block == c.from && t.origin_succ != c.succ_index)
          return true;
      return false;
    };
    auto is_must_take = [&](const Transition& t) {
      return !anchored_run && query.must_take &&
             t.origin_block == query.must_take->from &&
             t.origin_succ == query.must_take->succ_index;
    };

    Lit must_taken =
        !anchored_run && query.must_take ? bb.false_lit() : bb.true_lit();

    // ------------------------------------------------------------ unroll
    std::vector<std::vector<Lit>> fires;
    fires.reserve(anchored_run ? depth : 0);
    for (std::uint32_t step = 0; step < depth; ++step) {
      ExprBlaster eb(bb, frame, ts);

      // fire literal per transition
      std::vector<Lit> fire(ts.transitions.size());
      for (std::size_t i = 0; i < ts.transitions.size(); ++i) {
        const Transition& t = ts.transitions[i];
        const Lit at = bb.eq(pc, bb.constant(t.from, pcw, false));
        Lit g = t.guard ? eb.truth(*t.guard) : bb.true_lit();
        fire[i] = bb.and_gate(at, g);
        if (is_disallowed(t)) {
          solver.add_clause(~fire[i]);
          fire[i] = bb.false_lit();
        }
        if (is_must_take(t)) must_taken = bb.or_gate(must_taken, fire[i]);
      }

      // next-state: default stutter, overridden by firing transitions
      std::vector<BitVec> next = frame;
      BitVec next_pc = pc;
      for (std::size_t i = 0; i < ts.transitions.size(); ++i) {
        const Transition& t = ts.transitions[i];
        next_pc = bb.mux(fire[i], bb.constant(t.to, pcw, false), next_pc);
        for (const tsys::Update& u : t.updates) {
          const VarInfo& v = ts.vars[u.var];
          BitVec rhs = eb.value(*u.value);
          BitVec enc = bb.resize(rhs, v.bits());
          enc.is_signed = v.is_signed_encoding();
          next[u.var] = bb.mux(fire[i], enc, next[u.var]);
        }
      }
      if (anchored_run) fires.push_back(std::move(fire));
      frame = std::move(next);
      pc = std::move(next_pc);
    }

    // goal: the run terminates and the must-take edge fired
    solver.add_clause(bb.eq(pc, final_pc));
    solver.add_clause(must_taken);

    if (anchored_run) {
      // Anchored window: SOME traversal follows the schedule — at least
      // one step offset fires the walked transitions consecutively.
      // (Each step fires at most one transition, so a satisfied window is
      // a real consecutive execution of the walk.)
      std::vector<Lit> picks;
      std::vector<Lit> window(seq->size());
      for (std::size_t t = 0; t + seq->size() <= depth; ++t) {
        for (std::size_t j = 0; j < seq->size(); ++j)
          window[j] = fires[t + j][(*seq)[j]];
        picks.push_back(bb.and_all(window));
      }
      if (picks.empty()) return finish();  // window longer than the unroll
      solver.add_clause(std::move(picks));
      result.schedule_realised = true;
    }
  }

  const sat::Result r = solver.solve({}, opts.conflict_budget);
  result.cnf_vars = solver.num_vars();
  result.cnf_clauses = solver.num_clauses();
  result.memory_bytes = solver.stats().memory_bytes;

  if (r == sat::Result::Unknown) {
    result.status = BmcStatus::Unknown;
  } else if (r == sat::Result::Unsat) {
    result.status = BmcStatus::Infeasible;
  } else {
    result.status = BmcStatus::TestData;
    result.initial_values.resize(ts.vars.size());
    for (std::size_t v = 0; v < ts.vars.size(); ++v)
      result.initial_values[v] = bb.decode(frame0[v]);
    // Stabilise the test datum: CNF statistics were captured above, so
    // the minimisation's extra comparison circuits and solver calls do
    // not perturb the reported solver memory proxy.
    if (opts.minimize_witness)
      minimize_witness(solver, bb, ts, frame0, opts, result.initial_values);
    // steps: replay the model's pc trace would need per-step storage; we
    // recover it by re-walking the system concretely in the caller if
    // needed. Here we count transitions by executing the deterministic
    // system from the initial values, recording the per-iteration
    // decision trace of the witness as we go.
    result.steps = 0;
    std::vector<std::int64_t> env = result.initial_values;
    tsys::Loc cur = ts.initial;
    const auto out = ts.out_index();
    std::uint64_t guard_steps = 0;
    const std::uint64_t replay_cap = std::max<std::uint64_t>(
        depth, result.unroll_depth);
    while (cur != ts.final && guard_steps++ < replay_cap) {
      const Transition* taken = nullptr;
      for (const Transition* t : out[cur]) {
        if (!t->guard || tsys::eval_texpr(*t->guard, env) != 0) {
          taken = t;
          break;
        }
      }
      if (!taken) break;
      if (taken->is_decision())
        result.decision_trace.push_back(
            cfg::EdgeRef{taken->origin_block, taken->origin_succ});
      std::vector<std::int64_t> next_env = env;
      for (const tsys::Update& u : taken->updates)
        next_env[u.var] =
            minic::wrap_to_type(tsys::eval_texpr(*u.value, env),
                                ts.vars[u.var].type);
      env = std::move(next_env);
      cur = taken->to;
      ++result.steps;
    }
    // A truncated replay (never at a complete depth) has no trustworthy
    // trace; drop it rather than hand callers a prefix.
    if (cur != ts.final) result.decision_trace.clear();
  }

  return finish();
}

}  // namespace tmg::bmc
