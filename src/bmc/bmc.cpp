#include "bmc/bmc.h"

#include "bmc/session.h"

namespace tmg::bmc {

using tsys::Transition;
using tsys::TransitionSystem;

std::optional<std::vector<std::uint32_t>> walk_schedule(
    const TransitionSystem& ts, const DecisionSchedule& schedule,
    std::uint64_t max_len) {
  const auto out = ts.out_index();
  std::vector<std::uint32_t> seq;
  std::size_t k = 0;

  tsys::Loc loc = ts.initial;
  if (schedule.anchored) {
    // Anchored walks start at the schedule's first decision transition
    // (the region is single entry, so firing that decision implies the
    // region was entered and the decision-free prefix inside it is the
    // unique one).
    if (schedule.choices.empty()) return std::nullopt;
    const Transition* first = nullptr;
    for (const Transition& t : ts.transitions) {
      if (!t.is_decision() || t.origin_block != schedule.choices[0].from ||
          t.origin_succ != schedule.choices[0].succ_index)
        continue;
      if (first != nullptr) return std::nullopt;  // ambiguous provenance
      first = &t;
    }
    if (first == nullptr) return std::nullopt;
    seq.push_back(first->id);
    loc = first->to;
    k = 1;
  }

  while (true) {
    if (schedule.anchored) {
      if (k == schedule.choices.size()) break;  // window complete
    } else if (loc == ts.final) {
      break;
    }
    if (seq.size() >= max_len) return std::nullopt;
    const std::vector<const Transition*>& outs = out[loc];
    if (outs.empty()) return std::nullopt;  // stuck before the goal
    const Transition* taken = nullptr;
    if (outs[0]->is_decision()) {
      if (k == schedule.choices.size()) return std::nullopt;
      const cfg::EdgeRef& want = schedule.choices[k];
      for (const Transition* t : outs) {
        if (!t->is_decision() || t->origin_block != want.from ||
            t->origin_succ != want.succ_index)
          continue;
        if (taken != nullptr) return std::nullopt;  // ambiguous provenance
        taken = t;
      }
      if (taken == nullptr) return std::nullopt;  // structural mismatch
      ++k;
    } else {
      if (outs.size() != 1) return std::nullopt;  // translation invariant
      taken = outs[0];
    }
    seq.push_back(taken->id);
    loc = taken->to;
  }
  if (k != schedule.choices.size()) return std::nullopt;
  return seq;
}

BmcResult solve(const TransitionSystem& ts, const BmcQuery& query,
                const BmcOptions& opts) {
  // The one-shot entry point is now a throwaway incremental session: one
  // query against a fresh solver. Session::solve's determinism contract
  // (see session.h) is what keeps this byte-identical to a warm session
  // answering the same query.
  Session session(ts, opts);
  return session.solve(query);
}

}  // namespace tmg::bmc
