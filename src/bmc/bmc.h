// Bounded model checking over transition systems: the engine that replaces
// SAL in the paper's test-data generation flow (Section 3).
//
// The system is unrolled k steps with an explicit program counter; the
// query constrains decision outcomes ("whenever decision D fires it takes
// edge s") plus one must-take edge (the program segment's entry). A SAT
// model yields the input assignment — the test datum; UNSAT at full depth
// proves the path infeasible (complete for loop-free systems, which is what
// the paper's generated automotive code is).
//
// Concurrency contract (relied on by engine::Scheduler): solve() is a pure
// function of (ts, query, opts). It builds a fresh sat::Solver and
// BitBlaster per call, touches no global or static mutable state, and only
// reads the transition system. Concurrent solve() calls are therefore safe
// as long as no thread mutates `ts` while any call is in flight — distinct
// TransitionSystem instances OR one shared read-only instance both work.
// Determinism: the same (ts, query, opts) always yields the same status,
// witness (`initial_values`), steps and CNF sizes; only `seconds` varies.
// With the default witness minimisation the witness is stronger than
// deterministic: it is the unique preference-minimal model, independent
// even of the solver's search heuristics (see BmcOptions).
#pragma once

#include <optional>
#include <type_traits>
#include <vector>

#include "cfg/cfg.h"
#include "tsys/tsys.h"

namespace tmg::bmc {

struct BmcOptions {
  /// Unroll depth; 0 = automatic (num_locs + 1, sufficient and complete
  /// for loop-free systems).
  std::uint32_t max_steps = 0;
  /// Conflict budget handed to the SAT solver; -1 = unlimited.
  std::int64_t conflict_budget = -1;
  /// Post-pass on SAT witnesses: per free variable (VarId order), prefer
  /// 0 when the domain contains it, otherwise the smallest feasible value
  /// (domain-lower-bound direction, found by binary search under the pins
  /// of earlier variables). The result is the unique minimal model under
  /// that preference order — a pure function of the *semantics* of
  /// (ts, query), stable across SAT-solver heuristic changes — so
  /// generated test data survives solver upgrades byte-identically.
  bool minimize_witness = true;
  /// Caller-supplied promise that EVERY run of the system reaches the
  /// final location within the unroll depth (the pipeline sets this from
  /// its depth-completeness proof). Anchored-window queries then drop the
  /// termination conjunct and try a schedule-aware shallow depth first —
  /// BFS distance to the window's first decision plus the window length —
  /// escalating to the full depth only on UNSAT. Without the promise the
  /// window is solved at full depth with the termination goal, as before.
  bool runs_terminate = false;
};

/// Per-iteration decision schedule: the decision edges of one control path
/// in execution order. Unlike the global forced-choice policy below, a
/// schedule may revisit the same decision block with *different* outcomes
/// (one per loop iteration), which is what makes loop paths conclusive.
///
/// Whole-run schedules (`anchored == false`) describe the complete decision
/// trace from the initial to the final location; the solver derives the
/// unique transition sequence realising it (see walk_schedule) and checks
/// that exact path — UNSAT is then a depth-independent infeasibility proof.
/// Anchored schedules (`anchored == true`) describe one traversal of a
/// single-entry region (e.g. one loop-body iteration): the query asks
/// whether SOME terminating execution contains the scheduled decision
/// sequence as a consecutive firing window.
struct DecisionSchedule {
  std::vector<cfg::EdgeRef> choices;
  bool anchored = false;
};

/// What to search for.
struct BmcQuery {
  /// Decision policy: whenever the decision block of one of these edges
  /// fires, it must take exactly this edge. (Loop-free systems hit each
  /// decision at most once, making this equivalent to "the execution
  /// follows the selected path".) Ignored while `schedule` is in effect;
  /// still honoured as the degenerate same-choice-every-iteration fallback
  /// when the schedule cannot be realised structurally.
  std::vector<cfg::EdgeRef> forced_choices;
  /// An edge that must be taken at least once (e.g. the segment entry).
  /// Ignored while `schedule` is in effect — a realised whole-run
  /// schedule pins the complete path (the walk decides which edges
  /// fire), and an anchored window replaces the must-take goal with its
  /// own existential window constraint. Like forced_choices it is only
  /// honoured by the degenerate fallback when the walk fails.
  std::optional<cfg::EdgeRef> must_take;
  /// Per-iteration decision schedule; see DecisionSchedule.
  std::optional<DecisionSchedule> schedule;
};

enum class BmcStatus : std::uint8_t {
  TestData,    // SAT: inputs found
  Infeasible,  // UNSAT at complete depth
  Unknown,     // budget exhausted
};

struct BmcResult {
  BmcStatus status = BmcStatus::Unknown;
  /// Value per transition-system variable at step 0 (only input variables
  /// are meaningful test data; the rest document the witness).
  std::vector<std::int64_t> initial_values;
  /// Per-iteration decision trace of the witness: the (origin block,
  /// successor index) of every decision transition the deterministic
  /// replay of `initial_values` executes, in execution order. Empty when
  /// there is no witness or the replay did not reach the final location.
  /// Replaying the witness through the reference interpreter must
  /// reproduce this trace exactly (the pipeline's replay cross-check).
  std::vector<cfg::EdgeRef> decision_trace;
  /// The verdict came from the exact path encoding (a realised
  /// whole-run schedule): UNSAT then proves infeasibility regardless of
  /// the caller's unroll-depth completeness.
  bool exact_path = false;
  /// The query's schedule walk succeeded and the per-iteration encoding
  /// (exact or anchored-window) answered the query. False when solve fell
  /// back to the degenerate global-policy encoding — callers that need
  /// traversal semantics must then treat SAT conservatively.
  bool schedule_realised = false;
  /// Transitions executed until the final location, from the SAT model
  /// (the paper's "steps" column in Table 2).
  std::uint64_t steps = 0;
  std::uint64_t unroll_depth = 0;
  std::uint64_t cnf_vars = 0;
  std::uint64_t cnf_clauses = 0;
  std::uint64_t memory_bytes = 0;
  double seconds = 0.0;
  /// SAT solver effort for this query (deltas over the underlying solver's
  /// counters, including witness minimisation). On a warm Session these
  /// depend on what the solver learned from earlier queries, so they are
  /// diagnostics (--stats / bench), never part of the deterministic report.
  std::uint64_t solver_decisions = 0;
  std::uint64_t solver_propagations = 0;
  std::uint64_t solver_conflicts = 0;
  std::uint64_t solver_restarts = 0;
};

/// Runs one query against one transition system. Safe to call concurrently
/// from multiple threads (see the concurrency contract above).
BmcResult solve(const tsys::TransitionSystem& ts, const BmcQuery& query,
                const BmcOptions& opts = {});

/// Structural walk realising a decision schedule: the unique transition-id
/// sequence that consumes `schedule.choices` in order. Whole-run walks
/// start at ts.initial and must end at ts.final with every choice
/// consumed; anchored walks start at the schedule's first decision
/// transition and stop once the last choice is consumed. Relies on the
/// translation invariant that every location either has exactly one
/// unguarded successor or fans out into decision transitions (preserved
/// by the Section 3.2 passes — two decisions never merge). Returns
/// nullopt when the schedule cannot be realised structurally or the walk
/// exceeds `max_len` transitions.
std::optional<std::vector<std::uint32_t>> walk_schedule(
    const tsys::TransitionSystem& ts, const DecisionSchedule& schedule,
    std::uint64_t max_len);

// Results cross thread boundaries by value when the engine merges job
// slots; the vector member keeps BmcResult non-trivially-copyable, so pin
// the pieces the merge copies element-wise instead.
static_assert(std::is_trivially_copyable_v<BmcStatus> &&
                  std::is_trivially_copyable_v<BmcOptions>,
              "BMC status/options must stay plain data for the engine's "
              "cross-thread result merge");

}  // namespace tmg::bmc
