// Explicit-state model checking for closed (or small-input) transition
// systems: breadth-first reachability with hashed state storage. Used for
// exhaustive state-space exploration (the wiper controller's 9-state chart)
// and as an oracle that optimisation passes preserve reachability.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tsys/tsys.h"

namespace tmg::mc {

struct ExploreOptions {
  /// Abort after visiting this many distinct states.
  std::uint64_t max_states = 1 << 20;
  /// Abort if the initial-state set (product of input/uninitialised
  /// variable domains) exceeds this.
  std::uint64_t max_initial_states = 1 << 16;
};

struct ExploreResult {
  bool complete = false;       // fixpoint reached within limits
  bool goal_reached = false;   // a goal location was visited
  std::uint64_t goal_depth = 0;  // BFS depth of the first goal hit
  std::uint64_t states = 0;      // distinct states visited
  std::uint64_t transitions_fired = 0;
  std::uint64_t initial_states = 0;
  /// State-store estimate for a packed representation: states *
  /// ceil(state_bits / 8), i.e. the encoded width (data + pc bits), not
  /// the unpacked in-memory vectors.
  std::uint64_t memory_bytes = 0;
  /// Distinct locations visited (useful to compare reachable control flow
  /// before/after an optimisation pass).
  std::vector<bool> locations_seen;
};

/// Explores the reachable state space; stops early when `goal` is reached
/// (if given) only in the sense of recording it — exploration continues to
/// the fixpoint unless limits bite.
ExploreResult explore(const tsys::TransitionSystem& ts,
                      std::optional<tsys::Loc> goal = std::nullopt,
                      const ExploreOptions& opts = {});

}  // namespace tmg::mc
