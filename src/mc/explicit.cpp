#include "mc/explicit.h"

#include <deque>
#include <unordered_set>

#include "minic/eval.h"

namespace tmg::mc {

using tsys::Transition;
using tsys::TransitionSystem;
using tsys::VarInfo;

namespace {

struct State {
  tsys::Loc loc;
  std::vector<std::int64_t> vals;

  bool operator==(const State& o) const {
    return loc == o.loc && vals == o.vals;
  }
};

struct StateHash {
  std::size_t operator()(const State& s) const {
    std::size_t h = s.loc * 0x9e3779b97f4a7c15ULL;
    for (std::int64_t v : s.vals) {
      h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

}  // namespace

ExploreResult explore(const TransitionSystem& ts,
                      std::optional<tsys::Loc> goal,
                      const ExploreOptions& opts) {
  ExploreResult result;
  result.locations_seen.assign(ts.num_locs, false);

  // ----------------------------------------------------- initial states
  // Free variables (inputs and uninitialised state) range over their
  // domains; compute the product cardinality first.
  std::vector<std::size_t> free_vars;
  std::uint64_t product = 1;
  for (const VarInfo& v : ts.vars) {
    if (!v.is_input && v.has_init) continue;
    // Free initial values range over the declared domain (init_lo/hi),
    // which the encoding range over-approximates. Unsigned subtraction so
    // [INT64_MIN, INT64_MAX] doesn't overflow; the full 64-bit domain
    // wraps the count to 0, which stands for 2^64 — saturate and refuse
    // instead of dividing by it below.
    const std::uint64_t card = static_cast<std::uint64_t>(v.init_hi()) -
                               static_cast<std::uint64_t>(v.init_lo()) + 1;
    free_vars.push_back(v.id);
    if (card == 0 || card > opts.max_initial_states ||
        product > opts.max_initial_states / card) {
      result.initial_states = UINT64_MAX;
      return result;  // incomplete: initial set too large
    }
    product *= card;
  }
  result.initial_states = product;

  std::unordered_set<State, StateHash> seen;
  std::deque<std::pair<State, std::uint64_t>> queue;  // state, depth

  State base;
  base.loc = ts.initial;
  base.vals.assign(ts.vars.size(), 0);
  for (const VarInfo& v : ts.vars)
    if (!v.is_input && v.has_init)
      base.vals[v.id] = minic::wrap_to_type(v.init, v.type);

  // enumerate the free-variable product
  std::vector<std::int64_t> cursor(free_vars.size());
  for (std::size_t i = 0; i < free_vars.size(); ++i)
    cursor[i] = ts.vars[free_vars[i]].init_lo();
  for (std::uint64_t n = 0; n < product; ++n) {
    State s = base;
    for (std::size_t i = 0; i < free_vars.size(); ++i)
      s.vals[free_vars[i]] = cursor[i];
    if (seen.insert(s).second) queue.emplace_back(std::move(s), 0);
    // advance cursor
    for (std::size_t i = 0; i < free_vars.size(); ++i) {
      if (++cursor[i] <= ts.vars[free_vars[i]].init_hi()) break;
      cursor[i] = ts.vars[free_vars[i]].init_lo();
    }
  }

  const auto out = ts.out_index();

  // ------------------------------------------------------------- search
  bool limit_hit = false;
  while (!queue.empty()) {
    auto [s, depth] = std::move(queue.front());
    queue.pop_front();
    result.locations_seen[s.loc] = true;
    if (goal && s.loc == *goal && !result.goal_reached) {
      result.goal_reached = true;
      result.goal_depth = depth;
    }
    for (const Transition* t : out[s.loc]) {
      if (t->guard && tsys::eval_texpr(*t->guard, s.vals) == 0) continue;
      ++result.transitions_fired;
      State next;
      next.loc = t->to;
      next.vals = s.vals;
      for (const tsys::Update& u : t->updates)
        next.vals[u.var] = minic::wrap_to_type(
            tsys::eval_texpr(*u.value, s.vals), ts.vars[u.var].type);
      // Already-visited successors never trip the state limit: a frontier
      // of only seen states means the fixpoint is reached, and reporting
      // it incomplete would be wrong. Only a genuinely new state counts.
      if (seen.contains(next)) continue;
      if (seen.size() >= opts.max_states) {
        limit_hit = true;
        break;
      }
      queue.emplace_back(next, depth + 1);
      seen.insert(std::move(next));
    }
    if (limit_hit) break;
  }

  result.states = seen.size();
  result.complete = !limit_hit;
  // State-store estimate for a packed representation: one state needs the
  // encoded data bits of every variable plus the pc bits — exactly the
  // paper's state-vector width — rounded up to whole bytes. The in-memory
  // std::vector<int64> layout is larger, but the honest number for
  // comparing optimisation passes (and sizing a packed store) is the
  // encoding width, not our container overhead.
  const std::uint64_t bytes_per_state =
      (static_cast<std::uint64_t>(ts.state_bits()) + 7) / 8;
  result.memory_bytes = result.states * bytes_per_state;
  return result;
}

}  // namespace tmg::mc
