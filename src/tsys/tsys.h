// Guarded-command transition system — our stand-in for the SAL language the
// paper translates C into. A system is a set of ranged variables, a program
// counter over locations, and guarded transitions with parallel updates.
//
// Metrics exposed here mirror the paper's Table 2 instrumentation: state
// bits (variable encoding width + pc), transition count, and — via the BMC
// engine — time / memory / steps per query.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "tsys/texpr.h"

namespace tmg::tsys {

using Loc = std::uint32_t;
inline constexpr Loc kNoLoc = UINT32_MAX;

/// One state variable with its value range. The range drives the encoding
/// width: range analysis narrows [lo, hi], which shrinks the state vector
/// ("1 bit vs 16 bits for boolean expressions", Section 3.2.4).
struct VarInfo {
  VarId id = kNoVar;
  std::string name;
  minic::Type type = minic::Type::Int16;
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  /// Inputs keep a free initial value in [lo, hi]; they are the test data.
  bool is_input = false;
  /// Non-inputs: when set, the initial value is fixed to `init` (Section
  /// 3.2.5 Variable Initialisation); when unset the model checker may pick
  /// any value in range (the paper's default: uninitialised).
  bool has_init = false;
  std::int64_t init = 0;

  /// The C-semantic initial value (global initialiser / 0 for locals),
  /// recorded by the translator so the Variable Initialisation pass can pin
  /// uninitialised variables to their real values.
  std::int64_t semantic_init = 0;
  /// The declared C value range (domain annotation when present, else the
  /// type's range) — the hard bound Range Analysis may clamp to even when
  /// the encoding was pessimistically widened, and the domain free
  /// *initial* values are drawn from (init_lo/init_hi below).
  std::int64_t decl_lo = 0;
  std::int64_t decl_hi = 0;

  /// Encoding width in bits for [lo, hi] (two's complement when lo < 0).
  /// [lo, hi] must over-approximate every storable value: the translator
  /// widens it past a domain annotation when the function assigns values
  /// outside it (assignments wrap to the *type*, and the bit-level BMC
  /// encoding must agree with the type-level interpreter semantics).
  [[nodiscard]] int bits() const;
  [[nodiscard]] bool is_signed_encoding() const { return lo < 0; }

  /// Free-initial-value domain: the encoding range intersected with the
  /// declared range (falls back to the encoding range if disjoint, which
  /// only hand-mutated systems can produce). Inputs draw their test data
  /// from here; uninitialised state starts anywhere in here.
  [[nodiscard]] std::int64_t init_lo() const {
    const std::int64_t l = lo > decl_lo ? lo : decl_lo;
    const std::int64_t h = hi < decl_hi ? hi : decl_hi;
    return l <= h ? l : lo;
  }
  [[nodiscard]] std::int64_t init_hi() const {
    const std::int64_t l = lo > decl_lo ? lo : decl_lo;
    const std::int64_t h = hi < decl_hi ? hi : decl_hi;
    return l <= h ? h : hi;
  }
};

/// A parallel assignment var' = value.
struct Update {
  VarId var = kNoVar;
  TExprPtr value;
};

/// One guarded transition `from --[guard]--> to / updates`.
struct Transition {
  std::uint32_t id = 0;
  Loc from = kNoLoc;
  Loc to = kNoLoc;
  TExprPtr guard;  // nullptr == true
  std::vector<Update> updates;

  /// Provenance for path-directed queries: the CFG block this transition
  /// was generated from, and — for decision transitions — the successor
  /// index of the branch it encodes.
  cfg::BlockId origin_block = cfg::kInvalidBlock;
  std::uint32_t origin_succ = UINT32_MAX;

  [[nodiscard]] bool is_decision() const { return origin_succ != UINT32_MAX; }
};

/// The transition system for one function.
struct TransitionSystem {
  std::string name;
  std::vector<VarInfo> vars;
  std::vector<Transition> transitions;
  Loc num_locs = 0;
  Loc initial = kNoLoc;
  Loc final = kNoLoc;

  VarId add_var(std::string name, minic::Type type, std::int64_t lo,
                std::int64_t hi);

  /// Bits of one encoded state: sum of variable widths plus pc bits.
  /// This is the paper's "number of bits required to encode the state
  /// vector" (it recommends <= 700 for acceptable SAL performance).
  [[nodiscard]] int state_bits() const;
  /// Bits of the variable part only (excluding pc).
  [[nodiscard]] int data_bits() const;
  [[nodiscard]] int pc_bits() const;

  /// Outgoing transitions per location (index rebuilt on demand).
  [[nodiscard]] std::vector<std::vector<const Transition*>> out_index() const;

  /// Variable names (indexed by VarId) for printing.
  [[nodiscard]] std::vector<std::string> var_names() const;

  /// SAL-flavoured textual export of the whole module.
  [[nodiscard]] std::string to_sal() const;
};

}  // namespace tmg::tsys
