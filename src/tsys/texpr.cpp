#include "tsys/texpr.h"

#include <sstream>

#include "minic/eval.h"

namespace tmg::tsys {

using minic::BinOp;
using minic::Type;
using minic::UnOp;

TExprPtr TExpr::clone() const {
  auto e = std::make_unique<TExpr>();
  e->kind = kind;
  e->type = type;
  e->value = value;
  e->var = var;
  e->un_op = un_op;
  e->bin_op = bin_op;
  e->args.reserve(args.size());
  for (const TExprPtr& a : args) e->args.push_back(a->clone());
  return e;
}

bool TExpr::equals(const TExpr& o) const {
  if (kind != o.kind || type != o.type) return false;
  switch (kind) {
    case TExprKind::Const:
      if (value != o.value) return false;
      break;
    case TExprKind::Var:
      if (var != o.var) return false;
      break;
    case TExprKind::Unary:
      if (un_op != o.un_op) return false;
      break;
    case TExprKind::Binary:
      if (bin_op != o.bin_op) return false;
      break;
    case TExprKind::Cond:
      break;
  }
  if (args.size() != o.args.size()) return false;
  for (std::size_t i = 0; i < args.size(); ++i)
    if (!args[i]->equals(*o.args[i])) return false;
  return true;
}

std::size_t TExpr::size() const {
  std::size_t n = 1;
  for (const TExprPtr& a : args) n += a->size();
  return n;
}

void TExpr::collect_vars(std::vector<VarId>& out) const {
  if (kind == TExprKind::Var) out.push_back(var);
  for (const TExprPtr& a : args) a->collect_vars(out);
}

bool TExpr::references(VarId v) const {
  if (kind == TExprKind::Var) return var == v;
  for (const TExprPtr& a : args)
    if (a->references(v)) return true;
  return false;
}

TExprPtr t_const(std::int64_t v, Type type) {
  auto e = std::make_unique<TExpr>();
  e->kind = TExprKind::Const;
  e->type = type;
  e->value = minic::wrap_to_type(v, type);
  return e;
}

TExprPtr t_var(VarId v, Type type) {
  auto e = std::make_unique<TExpr>();
  e->kind = TExprKind::Var;
  e->type = type;
  e->var = v;
  return e;
}

TExprPtr t_unary(UnOp op, TExprPtr a, Type type) {
  auto e = std::make_unique<TExpr>();
  e->kind = TExprKind::Unary;
  e->type = type;
  e->un_op = op;
  e->args.push_back(std::move(a));
  return e;
}

TExprPtr t_binary(BinOp op, TExprPtr l, TExprPtr r, Type type) {
  auto e = std::make_unique<TExpr>();
  e->kind = TExprKind::Binary;
  e->type = type;
  e->bin_op = op;
  e->args.push_back(std::move(l));
  e->args.push_back(std::move(r));
  return e;
}

TExprPtr t_cond(TExprPtr c, TExprPtr t, TExprPtr f, Type type) {
  auto e = std::make_unique<TExpr>();
  e->kind = TExprKind::Cond;
  e->type = type;
  e->args.push_back(std::move(c));
  e->args.push_back(std::move(t));
  e->args.push_back(std::move(f));
  return e;
}

TExprPtr t_not(TExprPtr e) {
  return t_unary(UnOp::LogicalNot, std::move(e), Type::Bool);
}

std::int64_t eval_texpr(const TExpr& e, const std::vector<std::int64_t>& env) {
  switch (e.kind) {
    case TExprKind::Const:
      return e.value;
    case TExprKind::Var:
      return minic::wrap_to_type(env[e.var], e.type);
    case TExprKind::Unary: {
      const std::int64_t v = eval_texpr(*e.args[0], env);
      return minic::eval_unop(e.un_op, v, e.args[0]->type, e.type);
    }
    case TExprKind::Binary: {
      const std::int64_t l = eval_texpr(*e.args[0], env);
      const std::int64_t r = eval_texpr(*e.args[1], env);
      const Type ot = minic::arith_result(e.args[0]->type, e.args[1]->type);
      return minic::eval_binop(e.bin_op, minic::wrap_to_type(l, ot),
                               minic::wrap_to_type(r, ot), ot, e.type);
    }
    case TExprKind::Cond: {
      const std::int64_t c = eval_texpr(*e.args[0], env);
      return minic::wrap_to_type(
          eval_texpr(*e.args[c != 0 ? 1 : 2], env), e.type);
    }
  }
  return 0;
}

std::size_t substitute(TExprPtr& e, VarId var, const TExpr& replacement) {
  if (e->kind == TExprKind::Var && e->var == var) {
    // Preserve the use-site type: wrap the replacement if types differ.
    const Type use_type = e->type;
    e = replacement.clone();
    if (e->type != use_type)
      e = t_unary(UnOp::Plus, std::move(e), use_type);  // explicit conversion
    return 1;
  }
  std::size_t n = 0;
  for (TExprPtr& a : e->args) n += substitute(a, var, replacement);
  return n;
}

namespace {
void to_string_rec(const TExpr& e, const std::vector<std::string>& names,
                   std::ostringstream& os) {
  switch (e.kind) {
    case TExprKind::Const:
      os << e.value;
      break;
    case TExprKind::Var:
      os << (e.var < names.size() ? names[e.var]
                                  : "v" + std::to_string(e.var));
      break;
    case TExprKind::Unary:
      if (e.un_op == UnOp::LogicalNot) {
        os << "NOT (";
        to_string_rec(*e.args[0], names, os);
        os << ")";
      } else {
        os << minic::unop_spelling(e.un_op) << '(';
        to_string_rec(*e.args[0], names, os);
        os << ')';
      }
      break;
    case TExprKind::Binary: {
      std::string op = minic::binop_spelling(e.bin_op);
      if (e.bin_op == BinOp::LogicalAnd) op = "AND";
      if (e.bin_op == BinOp::LogicalOr) op = "OR";
      if (e.bin_op == BinOp::Eq) op = "=";
      if (e.bin_op == BinOp::Ne) op = "/=";
      os << '(';
      to_string_rec(*e.args[0], names, os);
      os << ' ' << op << ' ';
      to_string_rec(*e.args[1], names, os);
      os << ')';
      break;
    }
    case TExprKind::Cond:
      os << "IF ";
      to_string_rec(*e.args[0], names, os);
      os << " THEN ";
      to_string_rec(*e.args[1], names, os);
      os << " ELSE ";
      to_string_rec(*e.args[2], names, os);
      os << " ENDIF";
      break;
  }
}
}  // namespace

std::string texpr_to_string(const TExpr& e,
                            const std::vector<std::string>& var_names) {
  std::ostringstream os;
  to_string_rec(e, var_names, os);
  return os.str();
}

}  // namespace tmg::tsys
