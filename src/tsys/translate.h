// mini-C -> transition-system translation (the paper's C-to-SAL converter).
//
// Baseline translation, before any optimisation pass (Section 3.1/3.3):
//  * every global and parameter becomes a state variable, including unused
//    ones (the paper's evaluation example deliberately carries three unused
//    variables);
//  * every statement becomes one transition ("a single statement in each
//    transition" — statement concatenation later merges them);
//  * variables that are not inputs are left uninitialised — the model
//    checker may choose any in-range value (Variable Initialisation later
//    pins them);
//  * every variable is as wide as its C type (range analysis later narrows).
#pragma once

#include <memory>

#include "cfg/structure.h"
#include "support/diagnostics.h"
#include "tsys/tsys.h"

namespace tmg::tsys {

struct TranslationResult {
  TransitionSystem ts;
  /// VarId for each mini-C symbol id (kNoVar when not part of the system,
  /// e.g. extern functions).
  std::vector<VarId> var_of_symbol;
};

struct TranslateOptions {
  /// Mimic the paper's translator default: "all variables created by our C
  /// to SAL translator are 16 bit signed integers". Booleans and bytes are
  /// widened to the full 16-bit signed range; Variable Range Analysis
  /// recovers the narrow encodings. Off by default (declared type ranges).
  bool pessimistic_widths = false;
};

/// Translates one function (with its program context for globals).
/// Reports unsupported constructs (value-returning extern calls inside
/// expressions) to `diags`; returns nullptr if any error was reported.
std::unique_ptr<TranslationResult> translate(const minic::Program& program,
                                             const cfg::FunctionCfg& f,
                                             DiagnosticEngine& diags,
                                             const TranslateOptions& opts = {});

}  // namespace tmg::tsys
