#include "tsys/translate.h"

#include <algorithm>
#include <cassert>

#include "minic/eval.h"

namespace tmg::tsys {

using cfg::BasicBlock;
using cfg::BlockId;
using cfg::EdgeKind;
using cfg::TermKind;
using minic::Expr;
using minic::ExprKind;
using minic::Stmt;
using minic::StmtKind;
using minic::Symbol;
using minic::Type;

namespace {

class Translator {
 public:
  Translator(const minic::Program& program, const cfg::FunctionCfg& f,
             DiagnosticEngine& diags, const TranslateOptions& opts)
      : program_(program), f_(f), diags_(diags), opts_(opts),
        result_(std::make_unique<TranslationResult>()) {}

  std::unique_ptr<TranslationResult> run() {
    make_variables();
    allocate_locations();
    emit_transitions();
    result_->ts.name = f_.fn->name;
    if (!diags_.ok()) return nullptr;
    return std::move(result_);
  }

 private:
  TransitionSystem& ts() { return result_->ts; }

  // -------------------------------------------------------------- variables

  /// Widens `lo`/`hi` of an annotated symbol to cover every value this
  /// function's assignments can store into it. The `__input(lo, hi)`
  /// annotation is a *domain* of initial values, not an invariant: the
  /// program may assign past it (b4-style state machines stay inside, but
  /// nothing forces that), and assignments wrap to the TYPE. An encoding
  /// narrowed to the annotation would silently truncate such stores at
  /// the bit level — diverging from the interpreter, run_concrete and
  /// mc::explore, which all use type semantics. Constant stores widen by
  /// exactly the constant (keeps b4's 2-bit state); anything else widens
  /// to the full type range.
  void widen_for_stores(const Stmt& s, const Symbol& sym, std::int64_t& lo,
                        std::int64_t& hi) const {
    if (s.kind == StmtKind::Assign && s.sym == &sym) {
      if (!s.assign_op && !s.children.empty() && s.children[0] &&
          s.children[0]->kind == ExprKind::IntLit) {
        const std::int64_t v =
            minic::wrap_to_type(s.children[0]->int_value, sym.type);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      } else {
        lo = std::min(lo, minic::type_min(sym.type));
        hi = std::max(hi, minic::type_max(sym.type));
      }
    }
    for (const minic::StmtPtr& child : s.body)
      if (child) widen_for_stores(*child, sym, lo, hi);
    for (const minic::SwitchCase& c : s.cases)
      for (const minic::StmtPtr& child : c.body)
        if (child) widen_for_stores(*child, sym, lo, hi);
  }

  void make_variables() {
    result_->var_of_symbol.assign(program_.symbols.size(), kNoVar);

    auto add = [&](const Symbol& sym, bool input) {
      auto [lo, hi] = sym.value_range();
      const std::int64_t decl_lo = lo, decl_hi = hi;
      if (opts_.pessimistic_widths && !sym.input_range) {
        // paper default: every variable is a 16-bit signed integer unless
        // the code generator annotated its domain
        lo = std::min<std::int64_t>(lo, minic::type_min(Type::Int16));
        hi = std::max<std::int64_t>(hi, minic::type_max(Type::Int16));
      }
      if (sym.input_range) widen_for_stores(*f_.fn->body, sym, lo, hi);
      const VarId v = ts().add_var(sym.name, sym.type, lo, hi);
      ts().vars[v].is_input = input;
      ts().vars[v].semantic_init = sym.init_value;
      ts().vars[v].decl_lo = decl_lo;
      ts().vars[v].decl_hi = decl_hi;
      result_->var_of_symbol[sym.id] = v;
      return v;
    };

    // Parameters are inputs; globals are inputs iff marked __input; all
    // other globals and this function's locals are plain (uninitialised)
    // state.
    for (const Symbol* p : f_.fn->params) add(*p, /*input=*/true);
    for (const Symbol* g : program_.globals) add(*g, g->is_input);
    std::vector<const Symbol*> locals;
    collect_locals(*f_.fn->body, locals);
    for (const Symbol* l : locals) add(*l, /*input=*/false);
    if (f_.fn->return_type != Type::Void) {
      const Type rt = f_.fn->return_type;
      ret_var_ = ts().add_var("__ret", rt, minic::type_min(rt),
                              minic::type_max(rt));
      ts().vars[ret_var_].decl_lo = minic::type_min(rt);
      ts().vars[ret_var_].decl_hi = minic::type_max(rt);
    }
  }

  VarId var_of(const Symbol& sym) {
    const VarId v = result_->var_of_symbol[sym.id];
    assert(v != kNoVar && "symbol without transition-system variable");
    return v;
  }

  /// Declared local symbols of this function, in declaration order.
  static void collect_locals(const Stmt& s, std::vector<const Symbol*>& out) {
    if (s.kind == StmtKind::Decl) out.push_back(s.sym);
    for (const auto& inner : s.body)
      if (inner) collect_locals(*inner, out);
    for (const auto& arm : s.cases)
      for (const auto& inner : arm.body)
        if (inner) collect_locals(*inner, out);
  }

  // -------------------------------------------------------------- locations
  /// True when the statement produces a transition.
  static bool stmt_emits(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign:
      case StmtKind::Expr:
      case StmtKind::Return:
        return true;
      case StmtKind::Decl:
        return !s.children.empty();  // only initialised decls assign
      default:
        return false;
    }
  }

  std::size_t emitting_count(const BasicBlock& b) const {
    std::size_t n = 0;
    for (const Stmt* s : b.stmts)
      if (stmt_emits(*s)) ++n;
    return n;
  }

  void allocate_locations() {
    const auto& g = f_.graph;
    loc_in_.assign(g.size(), kNoLoc);
    // The exit block is the final location.
    Loc next = 0;
    final_ = next++;

    // Pass 1: fresh locations for blocks that anchor one (non-aliased).
    for (BlockId b : g.topo_order()) {
      if (b == g.exit_block()) {
        loc_in_[b] = final_;
        continue;
      }
      const BasicBlock& blk = g.block(b);
      const bool aliases =
          emitting_count(blk) == 0 && blk.term == TermKind::Jump;
      if (!aliases) loc_in_[b] = next++;
    }
    // Pass 2: resolve alias chains (empty jump blocks point at their
    // successor's location). Chains terminate because every cycle in the
    // CFG contains a decision block.
    for (BlockId b = 0; b < g.size(); ++b) {
      if (loc_in_[b] != kNoLoc) continue;
      BlockId cur = b;
      std::vector<BlockId> chain;
      while (loc_in_[cur] == kNoLoc) {
        chain.push_back(cur);
        assert(!g.block(cur).succs.empty());
        cur = g.block(cur).succs[0].to;
      }
      for (BlockId c : chain) loc_in_[c] = loc_in_[cur];
    }
    ts().num_locs = next;
    ts().initial = loc_in_[g.entry()];
    ts().final = final_;
  }

  Loc fresh_loc() {
    const Loc l = ts().num_locs;
    ++ts().num_locs;
    return l;
  }

  // ------------------------------------------------------------ transitions
  void add_transition(Loc from, Loc to, TExprPtr guard,
                      std::vector<Update> updates, BlockId origin,
                      std::uint32_t origin_succ = UINT32_MAX) {
    Transition t;
    t.id = static_cast<std::uint32_t>(ts().transitions.size());
    t.from = from;
    t.to = to;
    t.guard = std::move(guard);
    t.updates = std::move(updates);
    t.origin_block = origin;
    t.origin_succ = origin_succ;
    ts().transitions.push_back(std::move(t));
  }

  void emit_transitions() {
    const auto& g = f_.graph;
    for (BlockId b = 0; b < g.size(); ++b) {
      const BasicBlock& blk = g.block(b);
      std::vector<const Stmt*> emitting;
      for (const Stmt* s : blk.stmts)
        if (stmt_emits(*s)) emitting.push_back(s);

      // Where control goes after the block's statements.
      Loc after = kNoLoc;
      switch (blk.term) {
        case TermKind::Jump:
          if (!blk.succs.empty()) after = loc_in_[blk.succs[0].to];
          break;
        case TermKind::Return:
          after = final_;
          break;
        case TermKind::Branch:
        case TermKind::Switch:
          after = loc_in_[b];  // decisions branch from the block entry
          break;
        case TermKind::Exit:
          break;
      }

      // Statement chain.
      Loc cur = loc_in_[b];
      for (std::size_t i = 0; i < emitting.size(); ++i) {
        const bool last = i + 1 == emitting.size();
        const Loc to = last ? after : fresh_loc();
        emit_stmt(*emitting[i], cur, to, b);
        cur = to;
      }

      // Decision fan-out.
      if (blk.term == TermKind::Branch) {
        assert(emitting.empty() && "decision blocks carry no statements");
        TExprPtr cond = convert(*blk.decision);
        for (std::uint32_t i = 0; i < blk.succs.size(); ++i) {
          const auto& e = blk.succs[i];
          TExprPtr guard = e.kind == EdgeKind::True ? cond->clone()
                                                    : t_not(cond->clone());
          add_transition(loc_in_[b], loc_in_[e.to], std::move(guard), {}, b,
                         i);
        }
      } else if (blk.term == TermKind::Switch) {
        assert(emitting.empty());
        TExprPtr sel = convert(*blk.decision);
        for (std::uint32_t i = 0; i < blk.succs.size(); ++i) {
          const auto& e = blk.succs[i];
          TExprPtr guard;
          if (e.kind == EdgeKind::Case) {
            guard = t_binary(minic::BinOp::Eq, sel->clone(),
                             t_const(e.case_label, sel->type), Type::Bool);
          } else {
            // default: none of the labels matched
            for (const auto& other : blk.succs) {
              if (other.kind != EdgeKind::Case) continue;
              TExprPtr ne =
                  t_binary(minic::BinOp::Ne, sel->clone(),
                           t_const(other.case_label, sel->type), Type::Bool);
              guard = guard ? t_binary(minic::BinOp::LogicalAnd,
                                       std::move(guard), std::move(ne),
                                       Type::Bool)
                            : std::move(ne);
            }
            if (!guard) guard = t_const(1, Type::Bool);
          }
          add_transition(loc_in_[b], loc_in_[e.to], std::move(guard), {}, b,
                         i);
        }
      }
    }
  }

  void emit_stmt(const Stmt& s, Loc from, Loc to, BlockId origin) {
    std::vector<Update> updates;
    switch (s.kind) {
      case StmtKind::Assign: {
        const VarId v = var_of(*s.sym);
        TExprPtr rhs = convert(*s.children[0]);
        if (s.assign_op) {
          // x op= e  ==>  x' = x op e (with mini-C promotion semantics)
          TExprPtr lhs_ref = t_var(v, s.sym->type);
          const Type ot = s.assign_op == minic::BinOp::Shl ||
                                  s.assign_op == minic::BinOp::Shr
                              ? minic::arith_result(s.sym->type, s.sym->type)
                              : minic::arith_result(s.sym->type, rhs->type);
          rhs = t_binary(*s.assign_op, std::move(lhs_ref), std::move(rhs),
                         ot);
        }
        updates.push_back(Update{v, coerce(std::move(rhs), s.sym->type)});
        break;
      }
      case StmtKind::Decl: {
        const VarId v = var_of(*s.sym);
        updates.push_back(
            Update{v, coerce(convert(*s.children[0]), s.sym->type)});
        break;
      }
      case StmtKind::Expr:
        // A leaf call: no state effect, but it is a statement, hence a
        // transition (its cost matters on the target, not in the model).
        if (s.children[0]->kind != ExprKind::Call)
          diags_.warning(s.loc, "effect-free expression statement");
        break;
      case StmtKind::Return:
        if (!s.children.empty() && ret_var_ != kNoVar)
          updates.push_back(Update{
              ret_var_, coerce(convert(*s.children[0]), f_.fn->return_type)});
        break;
      default:
        assert(false && "non-emitting statement");
    }
    add_transition(from, to, nullptr, std::move(updates), origin);
  }

  /// Wraps `e` to exactly `type` (no-op if already that type).
  TExprPtr coerce(TExprPtr e, Type type) {
    if (e->type == type) return e;
    return t_unary(minic::UnOp::Plus, std::move(e), type);
  }

  TExprPtr convert(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return t_const(e.int_value, e.type);
      case ExprKind::VarRef:
        return t_var(var_of(*e.sym), e.sym->type);
      case ExprKind::Unary:
        return t_unary(e.un_op, convert(e.child(0)), e.type);
      case ExprKind::Binary:
        return t_binary(e.bin_op, convert(e.child(0)), convert(e.child(1)),
                        e.type);
      case ExprKind::Cond:
        return t_cond(convert(e.child(0)), convert(e.child(1)),
                      convert(e.child(2)), e.type);
      case ExprKind::Call:
        diags_.error(e.loc,
                     "value-returning extern call inside an expression "
                     "cannot be modelled; assign inputs explicitly");
        return t_const(0, e.type == Type::Void ? Type::Int16 : e.type);
    }
    return t_const(0, Type::Int16);
  }

  const minic::Program& program_;
  const cfg::FunctionCfg& f_;
  DiagnosticEngine& diags_;
  TranslateOptions opts_;
  std::unique_ptr<TranslationResult> result_;

  std::vector<Loc> loc_in_;
  Loc final_ = kNoLoc;
  VarId ret_var_ = kNoVar;
};

}  // namespace

std::unique_ptr<TranslationResult> translate(const minic::Program& program,
                                             const cfg::FunctionCfg& f,
                                             DiagnosticEngine& diags,
                                             const TranslateOptions& opts) {
  return Translator(program, f, diags, opts).run();
}

}  // namespace tmg::tsys
