// Expression IR of the transition system. Separate from the mini-C AST so
// that the Section-3.2 optimisation passes can rewrite expressions freely
// (reverse CSE substitutes variables by their defining expressions, range
// analysis re-types, dead-code elimination drops updates).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minic/ast.h"

namespace tmg::tsys {

/// Dense transition-system variable index.
using VarId = std::uint32_t;
inline constexpr VarId kNoVar = UINT32_MAX;

enum class TExprKind : std::uint8_t { Const, Var, Unary, Binary, Cond };

struct TExpr;
using TExprPtr = std::unique_ptr<TExpr>;

/// Typed expression tree over transition-system variables. Evaluation
/// semantics are exactly mini-C's (see minic/eval.h): every node's value is
/// wrapped to its `type`.
struct TExpr {
  TExprKind kind = TExprKind::Const;
  minic::Type type = minic::Type::Int16;

  std::int64_t value = 0;                 // Const
  VarId var = kNoVar;                     // Var
  minic::UnOp un_op = minic::UnOp::Plus;  // Unary
  minic::BinOp bin_op = minic::BinOp::Add;  // Binary
  std::vector<TExprPtr> args;             // children

  [[nodiscard]] TExprPtr clone() const;
  [[nodiscard]] bool equals(const TExpr& o) const;
  /// Number of nodes in the tree (size accounting for the optimiser).
  [[nodiscard]] std::size_t size() const;
  /// Collects every variable referenced (with multiplicity).
  void collect_vars(std::vector<VarId>& out) const;
  [[nodiscard]] bool references(VarId v) const;
};

TExprPtr t_const(std::int64_t v, minic::Type type = minic::Type::Int16);
TExprPtr t_var(VarId v, minic::Type type);
TExprPtr t_unary(minic::UnOp op, TExprPtr a, minic::Type type);
TExprPtr t_binary(minic::BinOp op, TExprPtr l, TExprPtr r, minic::Type type);
TExprPtr t_cond(TExprPtr c, TExprPtr t, TExprPtr f, minic::Type type);
/// !e with Bool type.
TExprPtr t_not(TExprPtr e);

/// Evaluates under a valuation (indexed by VarId). Values in `env` must
/// already be wrapped to their variables' types.
std::int64_t eval_texpr(const TExpr& e, const std::vector<std::int64_t>& env);

/// Replaces every reference to `var` with a clone of `replacement`.
/// Returns the number of substitutions performed.
std::size_t substitute(TExprPtr& e, VarId var, const TExpr& replacement);

/// Renders as SAL-flavoured text (infix, variables by name via callback).
std::string texpr_to_string(
    const TExpr& e, const std::vector<std::string>& var_names);

}  // namespace tmg::tsys
