#include "tsys/tsys.h"

#include <cmath>
#include <sstream>

namespace tmg::tsys {

namespace {
/// Bits to represent all integers in [lo, hi]; two's complement if lo < 0.
int range_bits(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return 1;  // constant or single value still occupies a bit
  int bits = 1;
  if (lo < 0) {
    // need bits such that -(2^(b-1)) <= lo and hi <= 2^(b-1)-1
    while (-(std::int64_t{1} << (bits - 1)) > lo ||
           hi > (std::int64_t{1} << (bits - 1)) - 1)
      ++bits;
  } else {
    while (hi > (std::int64_t{1} << bits) - 1) ++bits;
  }
  return bits;
}
}  // namespace

int VarInfo::bits() const { return range_bits(lo, hi); }

VarId TransitionSystem::add_var(std::string n, minic::Type type,
                                std::int64_t lo, std::int64_t hi) {
  VarInfo v;
  v.id = static_cast<VarId>(vars.size());
  v.name = std::move(n);
  v.type = type;
  v.lo = lo;
  v.hi = hi;
  // Sane default for hand-built systems: the declared range is the whole
  // domain (the translator overwrites it with the C declaration's range).
  v.decl_lo = lo;
  v.decl_hi = hi;
  vars.push_back(std::move(v));
  return vars.back().id;
}

int TransitionSystem::data_bits() const {
  int bits = 0;
  for (const VarInfo& v : vars) bits += v.bits();
  return bits;
}

int TransitionSystem::pc_bits() const {
  int bits = 1;
  while ((std::uint64_t{1} << bits) < num_locs) ++bits;
  return bits;
}

int TransitionSystem::state_bits() const { return data_bits() + pc_bits(); }

std::vector<std::vector<const Transition*>> TransitionSystem::out_index()
    const {
  std::vector<std::vector<const Transition*>> out(num_locs);
  for (const Transition& t : transitions) out[t.from].push_back(&t);
  return out;
}

std::vector<std::string> TransitionSystem::var_names() const {
  std::vector<std::string> names;
  names.reserve(vars.size());
  for (const VarInfo& v : vars) names.push_back(v.name);
  return names;
}

std::string TransitionSystem::to_sal() const {
  const std::vector<std::string> names = var_names();
  std::ostringstream os;
  os << name << ": MODULE =\nBEGIN\n";
  for (const VarInfo& v : vars) {
    os << (v.is_input ? "  INPUT  " : "  LOCAL  ") << v.name << " : ["
       << v.lo << ".." << v.hi << "]   % " << v.bits() << " bit(s)\n";
  }
  os << "  LOCAL  pc : [0.." << (num_locs - 1) << "]   % " << pc_bits()
     << " bit(s)\n";
  os << "  INITIALIZATION\n    pc = " << initial;
  for (const VarInfo& v : vars)
    if (v.has_init) os << ";\n    " << v.name << " = " << v.init;
  os << "\n  TRANSITION\n  [\n";
  bool first = true;
  for (const Transition& t : transitions) {
    if (!first) os << "  []\n";
    first = false;
    os << "    pc = " << t.from;
    if (t.guard) os << " AND " << texpr_to_string(*t.guard, names);
    os << " -->\n";
    for (const Update& u : t.updates)
      os << "      " << names[u.var] << "' = "
         << texpr_to_string(*u.value, names) << ";\n";
    os << "      pc' = " << t.to << "\n";
  }
  os << "  ]\nEND;   % state bits: " << state_bits() << ", transitions: "
     << transitions.size() << "\n";
  return os.str();
}

}  // namespace tmg::tsys
